// Quickstart: the paper's running example end-to-end.
//
// Builds the computer-retailer database of Figure 1, poses the example
// table of Figure 2 (partially specified cells, one fully empty cell per
// row), and asks the library to discover the minimal valid project-join
// queries. The expected outcome, per Example 3, is exactly one valid query:
// Sales joining Customer, Device and App with CustName/DevName/AppName
// projected as columns A/B/C.

#include <cstdio>

#include "core/discovery.h"
#include "datagen/retailer.h"

int main() {
  qbe::Database db = qbe::MakeRetailerDatabase();
  qbe::ExampleTable et = qbe::MakeFigure2ExampleTable();

  std::printf("Example table (Figure 2):\n");
  for (int r = 0; r < et.num_rows(); ++r) {
    for (int c = 0; c < et.num_columns(); ++c) {
      std::printf("  %-10s", et.cell(r, c).IsEmpty()
                                 ? "(empty)"
                                 : et.cell(r, c).text.c_str());
    }
    std::printf("\n");
  }

  qbe::DiscoveryOptions options;
  options.algorithm = qbe::Algorithm::kFilter;
  qbe::DiscoveryResult result = qbe::DiscoverQueries(db, et, options);

  std::printf("\nCandidate queries considered: %zu\n", result.num_candidates);
  std::printf("Verifications executed:       %lld\n",
              static_cast<long long>(result.counters.verifications));
  std::printf("Valid minimal queries:        %zu\n\n", result.queries.size());
  for (const qbe::DiscoveredQuery& q : result.queries) {
    std::printf("  score=%.3f  %s\n", q.score, q.sql.c_str());
  }

  // The same discovery through every verification algorithm must agree.
  for (qbe::Algorithm algo :
       {qbe::Algorithm::kVerifyAll, qbe::Algorithm::kSimplePrune,
        qbe::Algorithm::kFilterExact, qbe::Algorithm::kWeave}) {
    qbe::DiscoveryOptions alt = options;
    alt.algorithm = algo;
    qbe::DiscoveryResult r2 = qbe::DiscoverQueries(db, et, alt);
    if (r2.queries.size() != result.queries.size()) {
      std::printf("ERROR: algorithm disagreement!\n");
      return 1;
    }
  }
  std::printf("\nAll verification algorithms agree on the valid set.\n");
  return 0;
}
