// Query discovery over CSV files — the "bring your own data" path. Loads
// every .csv given on the command line as a relation (header = column
// names, integer columns become id columns), infers foreign keys by the
// usual warehouse convention (a column named exactly like another
// relation's first column references it), builds the indexes, and
// discovers queries for an example table supplied as trailing arguments.
//
// Usage:
//   csv_discovery [file.csv ...] [--et "cell,cell,..." ...]
//
// With no arguments a demo dataset is written to a temp directory and a
// demo example table is used, so the binary is runnable out of the box.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "storage/csv.h"
#include "util/string_util.h"

namespace {

void WriteDemoCsvs(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "authors.csv")
      << "author_id,author_name\n"
         "1,Ann Leckie\n2,Ted Chiang\n3,Ursula Le Guin\n";
  std::ofstream(dir / "books.csv")
      << "book_id,title\n"
         "1,Ancillary Justice\n2,Stories of Your Life\n3,The Dispossessed\n"
         "4,Exhalation\n";
  std::ofstream(dir / "wrote.csv")
      << "wrote_id,author_id,book_id\n"
         "1,1,1\n2,2,2\n3,3,3\n4,2,4\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> csv_paths;
  std::vector<std::vector<std::string>> et_rows;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--et") == 0 && i + 1 < argc) {
      et_rows.push_back(qbe::SplitString(argv[++i], ','));
    } else {
      csv_paths.emplace_back(argv[i]);
    }
  }
  if (csv_paths.empty()) {
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "qbe_csv_demo";
    WriteDemoCsvs(dir);
    for (const char* name : {"authors.csv", "books.csv", "wrote.csv"}) {
      csv_paths.push_back((dir / name).string());
    }
    et_rows = {{"Leckie", "Ancillary"}, {"Chiang", ""}};
    std::printf("no CSVs given; using demo data in %s\n\n",
                dir.string().c_str());
  }

  qbe::Database db;
  for (const std::string& path : csv_paths) {
    std::string name = std::filesystem::path(path).stem().string();
    auto relation = qbe::LoadRelationFromCsv(name, path);
    if (!relation.has_value()) {
      std::fprintf(stderr, "failed to load %s\n", path.c_str());
      return 1;
    }
    std::printf("loaded %-12s %5u rows, %d columns\n", name.c_str(),
                relation->num_rows(), relation->num_columns());
    db.AddRelation(std::move(*relation));
  }

  // Foreign keys by naming convention: relation R's column named like
  // relation S's first (primary key) column references S.
  for (int r = 0; r < db.num_relations(); ++r) {
    const qbe::Relation& from = db.relation(r);
    for (int c = 1; c < from.num_columns(); ++c) {
      if (from.columns()[c].type != qbe::ColumnType::kId) continue;
      for (int s = 0; s < db.num_relations(); ++s) {
        if (s == r) continue;
        const qbe::Relation& to = db.relation(s);
        if (to.num_columns() > 0 &&
            to.columns()[0].name == from.columns()[c].name) {
          db.AddForeignKey(from.name(), from.columns()[c].name, to.name(),
                           to.columns()[0].name);
          std::printf("foreign key: %s.%s -> %s\n", from.name().c_str(),
                      from.columns()[c].name.c_str(), to.name().c_str());
        }
      }
    }
  }
  db.BuildIndexes();

  if (et_rows.empty()) {
    std::fprintf(stderr, "no --et rows given\n");
    return 1;
  }
  qbe::ExampleTable et =
      qbe::ExampleTable::WithColumns(static_cast<int>(et_rows[0].size()));
  for (auto& row : et_rows) {
    row.resize(et_rows[0].size());
    et.AddRow(row);
  }

  qbe::DiscoveryResult result = qbe::DiscoverQueries(db, et);
  std::printf("\n%zu candidates, %lld verifications, %zu valid queries\n",
              result.num_candidates,
              static_cast<long long>(result.counters.verifications),
              result.queries.size());
  for (const qbe::DiscoveredQuery& q : result.queries) {
    std::printf("  score=%.3f  %s\n", q.score, q.sql.c_str());
  }
  return 0;
}
