// Schema exploration on a large warehouse: a user who has never seen the
// IMDB-like schema provides example tuples (an actor and a movie they
// remember) and the system locates the relevant tables and join paths for
// them. Demonstrates: every verification algorithm side by side with its
// cost, result ranking, and the relaxed-validity extension
// (min_row_support) for when one remembered tuple is wrong.

#include <cstdio>

#include "core/discovery.h"
#include "datagen/imdb_like.h"
#include "util/stopwatch.h"

namespace {

const char* AlgoLabel(qbe::Algorithm algo) {
  switch (algo) {
    case qbe::Algorithm::kVerifyAll:
      return "VerifyAll";
    case qbe::Algorithm::kSimplePrune:
      return "SimplePrune";
    case qbe::Algorithm::kFilter:
      return "Filter";
    case qbe::Algorithm::kFilterExact:
      return "Filter(exact)";
    case qbe::Algorithm::kWeave:
      return "Weave";
  }
  return "?";
}

}  // namespace

int main() {
  qbe::ImdbConfig config;
  config.scale = 0.5;
  qbe::Database db = qbe::MakeImdbLikeDatabase(config);
  std::printf("IMDB-like warehouse: %d relations, %zu foreign keys, %d "
              "text columns\n\n",
              db.num_relations(), db.foreign_keys().size(),
              db.TotalTextColumns());

  // The user remembers two people and fragments of movie titles. Values
  // are pulled from the generated data the way a user would remember them.
  int person = db.RelationIdByName("person");
  int title = db.RelationIdByName("title");
  qbe::ExampleTable et({"who", "movie"});
  et.AddRow({std::string(db.relation(person).TextAt(1, 10)),
             std::string(db.relation(title).TextAt(1, 20))});
  et.AddRow({std::string(db.relation(person).TextAt(1, 11)), ""});

  std::printf("Example table:\n");
  for (int r = 0; r < et.num_rows(); ++r) {
    for (int c = 0; c < et.num_columns(); ++c) {
      std::printf("  %-22s", et.cell(r, c).IsEmpty()
                                 ? "(empty)"
                                 : et.cell(r, c).text.c_str());
    }
    std::printf("\n");
  }

  std::printf("\nalgorithm comparison (same valid set, different cost):\n");
  size_t expected = SIZE_MAX;
  for (qbe::Algorithm algo :
       {qbe::Algorithm::kVerifyAll, qbe::Algorithm::kSimplePrune,
        qbe::Algorithm::kFilter, qbe::Algorithm::kFilterExact,
        qbe::Algorithm::kWeave}) {
    qbe::DiscoveryOptions options;
    options.algorithm = algo;
    qbe::Stopwatch timer;
    qbe::DiscoveryResult result = qbe::DiscoverQueries(db, et, options);
    std::printf("  %-14s %4lld verifications  cost %5lld  %7.2f ms  "
                "(%zu candidates -> %zu valid)\n",
                AlgoLabel(algo),
                static_cast<long long>(result.counters.verifications),
                static_cast<long long>(result.counters.estimated_cost),
                timer.ElapsedMillis(), result.num_candidates,
                result.queries.size());
    if (expected == SIZE_MAX) {
      expected = result.queries.size();
    } else if (result.queries.size() != expected) {
      std::printf("ERROR: algorithms disagree!\n");
      return 1;
    }
  }

  qbe::DiscoveryOptions options;
  qbe::DiscoveryResult result = qbe::DiscoverQueries(db, et, options);
  std::printf("\ntop discovered queries (ranked):\n");
  for (size_t i = 0; i < result.queries.size() && i < 5; ++i) {
    std::printf("  score=%.3f  %s\n", result.queries[i].score,
                result.queries[i].sql.c_str());
  }

  // Relaxed validity: add a bogus third row; strict discovery returns
  // nothing, min_row_support=2 recovers the queries for the good rows.
  qbe::ExampleTable with_typo({"who", "movie"});
  with_typo.AddRow({std::string(db.relation(person).TextAt(1, 10)),
                    std::string(db.relation(title).TextAt(1, 20))});
  with_typo.AddRow({std::string(db.relation(person).TextAt(1, 11)), ""});
  with_typo.AddRow({"noSuchPerson xq", "noSuchMovie zz"});
  qbe::DiscoveryOptions strict;
  qbe::DiscoveryOptions relaxed;
  relaxed.min_row_support = 2;
  size_t strict_count = qbe::DiscoverQueries(db, with_typo, strict)
                            .queries.size();
  size_t relaxed_count = qbe::DiscoverQueries(db, with_typo, relaxed)
                             .queries.size();
  std::printf("\nwith one impossible row: strict finds %zu queries, "
              "min_row_support=2 finds %zu\n",
              strict_count, relaxed_count);
  return 0;
}
