// Interactive discovery session (REPL): type example rows one at a time —
// the way the paper's information worker actually works — and watch the
// candidate queries narrow. Uses DiscoverySession, so verifications from
// earlier rows are served from the outcome cache.
//
// Commands:
//   <cell>|<cell>|...   add a row (empty cells allowed: "Mike||Office")
//   undo                remove the last row
//   explain             print the full pipeline trace for the current ET
//   quit
//
// Runs against the Figure 1 retailer database by default; pass --imdb for
// the 21-relation IMDB-like warehouse.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/explain.h"
#include "core/session.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  bool use_imdb = argc > 1 && std::strcmp(argv[1], "--imdb") == 0;
  qbe::Database db;
  if (use_imdb) {
    qbe::ImdbConfig config;
    config.scale = 0.5;
    db = qbe::MakeImdbLikeDatabase(config);
    std::printf("IMDB-like warehouse loaded (%d relations).\n",
                db.num_relations());
  } else {
    db = qbe::MakeScaledRetailerDatabase(80, 40, 25, 20, 300, 150, 60, 7);
    std::printf("Retailer database loaded (%d relations). Try: "
                "Mike|laptop|\n",
                db.num_relations());
  }

  qbe::DiscoverySession session(db);
  std::string line;
  std::printf("> ");
  while (std::getline(std::cin, line)) {
    std::string_view trimmed = qbe::StripWhitespace(line);
    if (trimmed == "quit" || trimmed == "exit") break;
    if (trimmed.empty()) {
      std::printf("> ");
      continue;
    }
    if (trimmed == "undo") {
      if (session.num_rows() > 0) {
        session.RemoveLastRow();
        std::printf("removed last row (%d rows remain)\n",
                    session.num_rows());
      }
      std::printf("> ");
      continue;
    }
    if (trimmed == "explain") {
      if (session.num_rows() == 0) {
        std::printf("no rows yet\n> ");
        continue;
      }
      std::printf("%s> ",
                  qbe::ExplainDiscovery(db, session.table()).ToString()
                      .c_str());
      continue;
    }
    std::vector<std::string> cells =
        qbe::SplitString(std::string(trimmed), '|');
    bool has_value = false;
    for (const std::string& cell : cells) has_value |= !cell.empty();
    if (!has_value) {
      std::printf("row needs at least one non-empty cell\n> ");
      continue;
    }
    if (session.num_rows() > 0 &&
        static_cast<int>(cells.size()) != session.table().num_columns()) {
      std::printf("expected %d cells\n> ", session.table().num_columns());
      continue;
    }
    session.AddRow(cells);
    qbe::DiscoveryResult result = session.Discover();
    if (!result.ok()) {
      std::printf("cannot discover yet: %s\n> ", result.error.c_str());
      continue;
    }
    std::printf("%d rows; %zu candidates; %zu valid queries "
                "(%lld verifications this session, %lld cache hits)\n",
                session.num_rows(), result.num_candidates,
                result.queries.size(),
                static_cast<long long>(session.total_verifications()),
                static_cast<long long>(session.cache_hits()));
    for (size_t i = 0; i < result.queries.size() && i < 5; ++i) {
      std::printf("  [%zu] %s\n", i, result.queries[i].sql.c_str());
    }
    if (result.queries.size() > 5) {
      std::printf("  ... %zu more\n", result.queries.size() - 5);
    }
    std::printf("> ");
  }
  std::printf("bye\n");
  return 0;
}
