// Example 1's end-to-end scenario: a sales executive at a computer
// retailer needs a report of which customers bought which devices with
// which apps, but only remembers fragments of a few sales. She types the
// fragments into a spreadsheet-style example table, the library discovers
// the minimal valid project-join queries, and the top-ranked query is then
// executed to produce the full report — the workflow the paper's
// introduction motivates.

#include <cstdio>

#include "core/discovery.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"

int main() {
  // A retailer database with a few hundred rows (Figure 1's schema).
  qbe::Database db = qbe::MakeScaledRetailerDatabase(
      /*customers=*/120, /*employees=*/60, /*devices=*/40, /*apps=*/30,
      /*sales=*/500, /*owners=*/200, /*esrs=*/80, /*seed=*/2014);

  // Fragments the executive remembers: partial customer names, partial
  // device names, one remembered app; several cells left empty.
  int customer = db.RelationIdByName("Customer");
  int device = db.RelationIdByName("Device");
  int sales = db.RelationIdByName("Sales");
  int app = db.RelationIdByName("App");
  // First token only — she does not know full names (Example 1).
  auto first_token = [](std::string_view s) {
    return std::string(s.substr(0, s.find(' ')));
  };
  // Fragments of two actual sales (so the target query is non-empty).
  auto sale_fragment = [&](uint32_t sale_row, int* cust_out) {
    int64_t cust_id = db.relation(sales).IdAt(1, sale_row);
    *cust_out = static_cast<int>(
        db.PkLookup(customer, 0, cust_id));
    return sale_row;
  };
  int cust_row1 = 0, cust_row2 = 0;
  uint32_t sale1 = sale_fragment(3, &cust_row1);
  uint32_t sale2 = sale_fragment(11, &cust_row2);
  int dev_row1 = static_cast<int>(
      db.PkLookup(device, 0, db.relation(sales).IdAt(2, sale1)));
  int app_row2 = static_cast<int>(
      db.PkLookup(app, 0, db.relation(sales).IdAt(3, sale2)));

  qbe::ExampleTable et({"customer", "device", "app"});
  et.AddRow({first_token(db.relation(customer).TextAt(1, cust_row1)),
             first_token(db.relation(device).TextAt(1, dev_row1)), ""});
  et.AddRow({first_token(db.relation(customer).TextAt(1, cust_row2)), "",
             first_token(db.relation(app).TextAt(1, app_row2))});

  std::printf("Example table typed by the executive:\n");
  for (int r = 0; r < et.num_rows(); ++r) {
    for (int c = 0; c < et.num_columns(); ++c) {
      std::printf("  %-12s", et.cell(r, c).IsEmpty()
                                 ? "(empty)"
                                 : et.cell(r, c).text.c_str());
    }
    std::printf("\n");
  }

  qbe::DiscoveryOptions options;
  options.algorithm = qbe::Algorithm::kFilter;
  qbe::DiscoveryResult result = qbe::DiscoverQueries(db, et, options);
  std::printf("\n%zu candidate queries, %zu valid, %lld verifications\n",
              result.num_candidates, result.queries.size(),
              static_cast<long long>(result.counters.verifications));
  if (result.queries.empty()) {
    std::printf("no valid query found\n");
    return 1;
  }
  for (size_t i = 0; i < result.queries.size(); ++i) {
    std::printf("  [%zu] score=%.3f  %s\n", i, result.queries[i].score,
                result.queries[i].sql.c_str());
  }

  // Execute the top-ranked query to build the report.
  const qbe::DiscoveredQuery& best = result.queries[0];
  qbe::SchemaGraph graph(db);
  qbe::Executor exec(db, graph);
  auto rows =
      exec.Materialize(best.query.tree, {}, best.query.projection, 10);
  std::printf("\nreport preview (first %zu rows of the chosen query):\n",
              rows.size());
  for (const auto& row : rows) {
    std::printf("  %-24s %-24s %-24s\n", row[0].c_str(), row[1].c_str(),
                row[2].c_str());
  }
  return 0;
}
