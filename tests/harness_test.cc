#include "harness/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table_printer.h"

namespace qbe {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter printer({"algo", "#verifications"});
  printer.AddRow({"VerifyAll", "120"});
  printer.AddRow({"Filter", "24"});
  std::ostringstream out;
  printer.Print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("| algo      |"), std::string::npos);
  EXPECT_NE(text.find("| Filter    |"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(3.5 * 1024 * 1024), "3.50 MB");
  EXPECT_EQ(FormatBytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
}

TEST(BenchArgsTest, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  BenchArgs args = ParseBenchArgs(1, argv, 50, 1.0);
  EXPECT_EQ(args.ets_per_point, 50);
  EXPECT_DOUBLE_EQ(args.scale, 1.0);
  EXPECT_EQ(args.seed, 7u);
}

TEST(BenchArgsTest, Overrides) {
  char prog[] = "bench";
  char ets[] = "--ets=10";
  char scale[] = "--scale=0.25";
  char seed[] = "--seed=99";
  char* argv[] = {prog, ets, scale, seed};
  BenchArgs args = ParseBenchArgs(4, argv, 50, 1.0);
  EXPECT_EQ(args.ets_per_point, 10);
  EXPECT_DOUBLE_EQ(args.scale, 0.25);
  EXPECT_EQ(args.seed, 99u);
}

TEST(ExperimentTest, AlgoNamesStable) {
  EXPECT_EQ(AlgoName(AlgoKind::kVerifyAll), "VerifyAll");
  EXPECT_EQ(AlgoName(AlgoKind::kSimplePrune), "SimplePrune");
  EXPECT_EQ(AlgoName(AlgoKind::kFilter), "Filter");
  EXPECT_EQ(AlgoName(AlgoKind::kWeave), "Weave");
}

TEST(ExperimentTest, RunPointOnImdbSample) {
  Bundle bundle = MakeBundle(DatasetKind::kImdb, 0.1, 7);
  ASSERT_GT(bundle.ets->num_matrices(), 0);
  EtParams params;
  std::vector<ExampleTable> ets = bundle.ets->SampleMany(params, 3, 5);
  ExperimentPoint point =
      RunPoint(bundle, ets,
               {AlgoKind::kVerifyAll, AlgoKind::kSimplePrune,
                AlgoKind::kFilter},
               /*max_join_length=*/4, /*seed=*/5);
  ASSERT_EQ(point.algos.size(), 3u);
  EXPECT_GT(point.avg_candidates, 0.0);
  for (const AlgoAggregate& agg : point.algos) {
    EXPECT_GT(agg.avg_verifications, 0.0);
    EXPECT_GT(agg.avg_cost, 0.0);
    EXPECT_EQ(agg.per_case_verifications.size(), ets.size());
  }
  // Valid queries are a subset of candidates (usually a small one).
  EXPECT_LE(point.avg_valid, point.avg_candidates);
}

TEST(ExperimentTest, RetailerBundleWorks) {
  Bundle bundle = MakeBundle(DatasetKind::kRetailer, 1.0, 3);
  EXPECT_EQ(bundle.db->num_relations(), 7);
}

}  // namespace
}  // namespace qbe
