// Tests for the request-scoped tracing layer (obs/, DESIGN.md §13): span
// tree invariants, bounded-capacity drops, deterministic sampling, golden
// exporter output (Prometheus text, Chrome trace JSON, slow-query JSON),
// the loopback metrics endpoint, and end-to-end trace coverage of a real
// discovery request — both standalone and through DiscoveryService.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/discovery.h"
#include "datagen/retailer.h"
#include "kernels/kernels.h"
#include "obs/metrics_http.h"
#include "obs/prom.h"
#include "obs/slow_log.h"
#include "service/discovery_service.h"
#include "service/metrics.h"

namespace qbe {
namespace {

// Injectable test clock: a plain function reading a global, because
// TraceConfig::clock is a bare function pointer (hot-path cheapness).
std::atomic<int64_t> g_fake_now_ns{0};
int64_t FakeClock() { return g_fake_now_ns.load(std::memory_order_relaxed); }

TraceConfig FakeClockConfig() {
  TraceConfig config;
  config.clock = &FakeClock;
  return config;
}

TEST(TraceContextTest, NestedSpansFormAWellFormedTree) {
  g_fake_now_ns = 0;
  TraceContext ctx(FakeClockConfig());
  g_fake_now_ns = 100;
  SpanRef root = ctx.OpenSpan(SpanKind::kRequest);
  g_fake_now_ns = 200;
  SpanRef gen = ctx.OpenSpan(SpanKind::kCandidateGen);
  g_fake_now_ns = 350;
  ctx.CloseSpan(gen);
  g_fake_now_ns = 400;
  SpanRef verify = ctx.OpenSpan(SpanKind::kFilter);
  g_fake_now_ns = 900;
  ctx.CloseSpan(verify);
  g_fake_now_ns = 1000;
  ctx.CloseSpan(root);

  Trace trace = ctx.Stitch();
  std::string why;
  EXPECT_TRUE(trace.WellFormed(&why)) << why;
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].kind, SpanKind::kRequest);
  EXPECT_EQ(trace.spans[0].parent, -1);
  EXPECT_EQ(trace.spans[1].parent, 0);  // candidate_gen under request
  EXPECT_EQ(trace.spans[2].parent, 0);  // verify under request
  EXPECT_EQ(trace.PhaseNs(SpanKind::kRequest), 900);
  EXPECT_EQ(trace.PhaseNs(SpanKind::kCandidateGen), 150);
  EXPECT_EQ(trace.PhaseNs(SpanKind::kFilter), 500);
  EXPECT_EQ(trace.PhaseCount(SpanKind::kCandidateGen), 1u);
  EXPECT_EQ(trace.PhaseCount(SpanKind::kEvalExec), 0u);
}

TEST(TraceContextTest, NullContextScopedSpanIsANoop) {
  // Every instrumentation site passes nullptr when tracing is off; the
  // RAII wrapper must tolerate it.
  ScopedSpan span(nullptr, SpanKind::kEvalExec);
  EXPECT_EQ(span.ref(), kNullSpan);
}

TEST(TraceContextTest, UnclosedSpanIsDetected) {
  g_fake_now_ns = 0;
  TraceContext ctx(FakeClockConfig());
  ctx.OpenSpan(SpanKind::kCandidateGen);
  Trace trace = ctx.Stitch();
  std::string why;
  EXPECT_FALSE(trace.WellFormed(&why));
  EXPECT_NE(why.find("unclosed"), std::string::npos);
}

TEST(TraceContextTest, ChildEscapingItsParentIsDetected) {
  g_fake_now_ns = 0;
  TraceContext ctx(FakeClockConfig());
  g_fake_now_ns = 10;
  SpanRef a = ctx.OpenSpan(SpanKind::kRequest);
  g_fake_now_ns = 20;
  SpanRef b = ctx.OpenSpan(SpanKind::kFilter);
  g_fake_now_ns = 30;
  ctx.CloseSpan(a);  // parent closed while the child is still open
  g_fake_now_ns = 40;
  ctx.CloseSpan(b);
  Trace trace = ctx.Stitch();
  std::string why;
  EXPECT_FALSE(trace.WellFormed(&why));
  EXPECT_NE(why.find("escapes parent"), std::string::npos);
}

TEST(TraceContextTest, FullLaneDropsAndCountsSpans) {
  TraceConfig config = FakeClockConfig();
  config.max_spans_per_lane = 4;
  g_fake_now_ns = 0;
  TraceContext ctx(config);
  for (int i = 0; i < 10; ++i) {
    g_fake_now_ns += 10;
    SpanRef ref = ctx.OpenSpan(SpanKind::kEvalExec);
    g_fake_now_ns += 10;
    ctx.CloseSpan(ref);  // no-op for the dropped (null) refs
  }
  Trace trace = ctx.Stitch();
  EXPECT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.dropped_spans, 6);
  EXPECT_EQ(trace.counter(TraceCounter::kDroppedSpans), 6);
  std::string why;
  EXPECT_TRUE(trace.WellFormed(&why)) << why;  // what was recorded is sound
}

TEST(TraceContextTest, CrossThreadSpansAttachViaParentHint) {
  g_fake_now_ns = 0;
  TraceContext ctx(FakeClockConfig());
  g_fake_now_ns = 100;
  SpanRef verify = ctx.OpenSpan(SpanKind::kFilter);
  std::thread worker([&ctx, verify] {
    // A verify-pool worker's lane has no enclosing span; the hint makes
    // its evaluations children of the request's verify span.
    g_fake_now_ns = 200;
    ScopedSpan eval(&ctx, SpanKind::kEvalExec, verify);
    g_fake_now_ns = 300;
  });
  worker.join();
  g_fake_now_ns = 400;
  ctx.CloseSpan(verify);

  Trace trace = ctx.Stitch();
  std::string why;
  EXPECT_TRUE(trace.WellFormed(&why)) << why;
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].kind, SpanKind::kEvalExec);
  EXPECT_EQ(trace.spans[1].parent, 0);
  EXPECT_NE(trace.spans[0].lane, trace.spans[1].lane);
}

TEST(TraceContextTest, EnclosingSpanWinsOverParentHint) {
  g_fake_now_ns = 0;
  TraceContext ctx(FakeClockConfig());
  SpanRef a = ctx.OpenSpan(SpanKind::kRequest);
  SpanRef b = ctx.OpenSpan(SpanKind::kEvalExec, /*parent_hint=*/kNullSpan);
  g_fake_now_ns = 50;
  ctx.CloseSpan(b);
  ctx.CloseSpan(a);
  Trace trace = ctx.Stitch();
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].parent, 0);  // nested under a, hint ignored
}

TEST(TraceContextTest, CountersSumAcrossLanes) {
  TraceContext ctx;
  ctx.Count(TraceCounter::kQueriesVerified, 3);
  std::thread worker([&ctx] {
    ctx.Count(TraceCounter::kQueriesVerified, 4);
    ctx.Count(TraceCounter::kEvalCacheHits, 1);
  });
  worker.join();
  Trace trace = ctx.Stitch();
  EXPECT_EQ(trace.counter(TraceCounter::kQueriesVerified), 7);
  EXPECT_EQ(trace.counter(TraceCounter::kEvalCacheHits), 1);
}

TEST(TraceSamplerTest, DeterministicAndRateProportional) {
  TraceSampler sampler{0.3, 1234};
  TraceSampler again{0.3, 1234};
  int sampled = 0;
  for (uint64_t n = 0; n < 10000; ++n) {
    bool hit = sampler.Sample(n);
    EXPECT_EQ(hit, again.Sample(n)) << n;  // same (seed, n) → same decision
    sampled += hit ? 1 : 0;
  }
  EXPECT_NEAR(sampled / 10000.0, 0.3, 0.03);

  TraceSampler off{0.0, 1234};
  TraceSampler all{1.0, 1234};
  for (uint64_t n = 0; n < 100; ++n) {
    EXPECT_FALSE(off.Sample(n));
    EXPECT_TRUE(all.Sample(n));
  }

  // A different seed samples a different subset.
  TraceSampler other{0.3, 99};
  bool any_difference = false;
  for (uint64_t n = 0; n < 1000 && !any_difference; ++n) {
    any_difference = sampler.Sample(n) != other.Sample(n);
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChromeTraceJsonTest, GoldenOutput) {
  g_fake_now_ns = 0;
  TraceContext ctx(FakeClockConfig());
  ctx.set_request_id(7);
  g_fake_now_ns = 1000;
  SpanRef root = ctx.OpenSpan(SpanKind::kRequest);
  g_fake_now_ns = 2000;
  SpanRef gen = ctx.OpenSpan(SpanKind::kCandidateGen);
  g_fake_now_ns = 3000;
  ctx.CloseSpan(gen);
  g_fake_now_ns = 3500;
  SpanRef exec = ctx.OpenSpan(SpanKind::kEvalExec);
  g_fake_now_ns = 4000;
  ctx.CloseSpan(exec);
  g_fake_now_ns = 5000;
  ctx.CloseSpan(root);

  // Kernel-bound spans (eval_exec, text_match) carry the dispatch level as
  // a trace-event arg; the level is whatever this process runs under.
  const std::string level = KernelLevelName(ActiveKernelLevel());
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"request\",\"cat\":\"qbe\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":4.000,\"pid\":7,\"tid\":0},\n"
      "{\"name\":\"candidate_gen\",\"cat\":\"qbe\",\"ph\":\"X\","
      "\"ts\":2.000,\"dur\":1.000,\"pid\":7,\"tid\":0},\n"
      "{\"name\":\"eval_exec\",\"cat\":\"qbe\",\"ph\":\"X\","
      "\"ts\":3.500,\"dur\":0.500,\"pid\":7,\"tid\":0,"
      "\"args\":{\"kernel_level\":\"" + level + "\"}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(ChromeTraceJson(ctx.Stitch()), expected);
}

TEST(PrometheusTextTest, GoldenOutput) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total").Increment(3);
  registry.SetGauge("queue_depth", 2.5);
  Histogram& hist = registry.GetHistogram("lat", {0.001, 0.01});
  hist.Observe(0.0005);
  hist.Observe(0.5);  // overflow

  const std::string expected =
      "# TYPE qbe_requests_total counter\n"
      "qbe_requests_total 3\n"
      "# TYPE qbe_queue_depth gauge\n"
      "qbe_queue_depth 2.5\n"
      "# TYPE qbe_lat histogram\n"
      "qbe_lat_bucket{le=\"0.001\"} 1\n"
      "qbe_lat_bucket{le=\"0.01\"} 1\n"
      "qbe_lat_bucket{le=\"+Inf\"} 2\n"
      "qbe_lat_sum 0.5005\n"
      "qbe_lat_count 2\n";
  EXPECT_EQ(PrometheusText(registry), expected);
}

TEST(PrometheusTextTest, SanitizesMetricNames) {
  MetricsRegistry registry;
  registry.GetCounter("phase_seconds_verify:filter").Increment();
  std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("qbe_phase_seconds_verify_filter 1"),
            std::string::npos);
  EXPECT_EQ(text.find(':'), std::string::npos);
}

TEST(SlowQueryJsonTest, GoldenOutput) {
  SlowQueryRecord record;
  record.request_id = 42;
  record.status = "ok";
  record.latency_seconds = 0.012345;
  record.queue_seconds = 0.001;
  record.et_rows = 3;
  record.et_cols = 2;
  record.candidates = 17;
  record.verifications = 5;
  record.queries = 1;
  record.kernel_level = "avx2";
  record.traced = true;
  record.phases = {{"candidate_gen", 0.001}, {"verify:filter", 0.0105}};

  const std::string expected =
      "{\"event\":\"slow_query\",\"request_id\":42,\"status\":\"ok\","
      "\"latency_ms\":12.345,\"queue_ms\":1.000,"
      "\"et_rows\":3,\"et_cols\":2,\"candidates\":17,"
      "\"verifications\":5,\"queries\":1,"
      "\"kernel_level\":\"avx2\",\"traced\":true,"
      "\"phases\":{\"candidate_gen\":1.000,\"verify:filter\":10.500}}";
  EXPECT_EQ(SlowQueryJson(record), expected);
}

TEST(SlowQueryJsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(TraceDiscoveryTest, SampledRequestCoversAllPhases) {
  Database db = MakeRetailerDatabase();
  ExampleTable et = MakeFigure2ExampleTable();
  EvalCache cache;
  TraceContext trace;
  DiscoveryOptions options;
  options.cache = &cache;
  options.trace = &trace;
  DiscoveryResult result = DiscoverQueries(db, et, options);
  ASSERT_TRUE(result.ok());

  Trace stitched = trace.Stitch();
  std::string why;
  EXPECT_TRUE(stitched.WellFormed(&why)) << why;
  // The acceptance criterion: candidate-gen, verify, text-match and cache
  // phases all present in one sampled request's tree.
  EXPECT_EQ(stitched.PhaseCount(SpanKind::kCandidateGen), 1u);
  EXPECT_EQ(stitched.PhaseCount(SpanKind::kFilter), 1u);
  EXPECT_GE(stitched.PhaseCount(SpanKind::kTextMatch), 1u);
  EXPECT_GE(stitched.PhaseCount(SpanKind::kEvalCacheLookup), 1u);
  EXPECT_GE(stitched.PhaseCount(SpanKind::kEvalExec), 1u);
  EXPECT_EQ(stitched.PhaseCount(SpanKind::kRank), 1u);
  // Counters agree with the result's own accounting.
  EXPECT_EQ(stitched.counter(TraceCounter::kCandidatesGenerated),
            static_cast<int64_t>(result.num_candidates));
  EXPECT_EQ(stitched.counter(TraceCounter::kQueriesVerified),
            result.counters.verifications);
  EXPECT_EQ(stitched.counter(TraceCounter::kValidQueries),
            static_cast<int64_t>(result.queries.size()));
  EXPECT_EQ(stitched.dropped_spans, 0);
}

TEST(TraceDiscoveryTest, TracingDoesNotChangeOutcomes) {
  // The deep off/sampled/full differential (1/2/8 threads, cache key sets)
  // lives in trace_overhead_test.cc; this is the fast tier-1 smoke.
  Database db = MakeRetailerDatabase();
  ExampleTable et = MakeFigure2ExampleTable();
  DiscoveryResult plain = DiscoverQueries(db, et);

  TraceContext trace;
  DiscoveryOptions traced_options;
  traced_options.trace = &trace;
  DiscoveryResult traced = DiscoverQueries(db, et, traced_options);

  ASSERT_EQ(plain.queries.size(), traced.queries.size());
  for (size_t i = 0; i < plain.queries.size(); ++i) {
    EXPECT_EQ(plain.queries[i].sql, traced.queries[i].sql);
    EXPECT_EQ(plain.queries[i].score, traced.queries[i].score);
  }
  EXPECT_EQ(plain.counters.verifications, traced.counters.verifications);
  EXPECT_EQ(plain.num_candidates, traced.num_candidates);
}

std::string HttpGetOnce(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

/// Minimal HTTP GET against 127.0.0.1:port; retries transient connect
/// failures (parallel ctest can starve loopback accepts briefly).
std::string HttpGet(uint16_t port, const std::string& path) {
  std::string response;
  for (int attempt = 0; attempt < 5 && response.empty(); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20 << attempt));
    }
    response = HttpGetOnce(port, path);
  }
  return response;
}

TEST(MetricsHttpServerTest, ServesHandlerBodyAndFourOhFours) {
  MetricsHttpServer server(0, [](const std::string& path,
                                 std::string* content_type) -> std::string {
    if (path == "/metrics") {
      *content_type = "text/plain";
      return "qbe_up 1\n";
    }
    return {};
  });
  if (!server.ok()) {
    GTEST_SKIP() << "cannot bind loopback socket: " << server.error();
  }
  std::string response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("qbe_up 1"), std::string::npos);
  std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.Stop();
}

TEST(ServiceTracingTest, SampledRequestsYieldTracesMetricsAndSlowLog) {
  std::mutex log_mu;
  std::vector<std::string> log_lines;
  ServiceOptions options;
  options.num_workers = 1;  // serial: deterministic request_id order
  options.trace_sample = 1.0;
  options.slow_query_ms = 0.0;  // log every request
  options.slow_query_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mu);
    log_lines.push_back(line);
  };
  DiscoveryService service(MakeRetailerDatabase(), options);
  for (int i = 0; i < 3; ++i) {
    ServiceResponse response = service.Discover(MakeFigure2ExampleTable());
    ASSERT_EQ(response.status, RequestStatus::kOk);
  }

  std::vector<Trace> traces = service.RecentTraces();
  ASSERT_EQ(traces.size(), 3u);
  for (const Trace& trace : traces) {
    std::string why;
    EXPECT_TRUE(trace.WellFormed(&why)) << why;
    EXPECT_EQ(trace.PhaseCount(SpanKind::kRequest), 1u);
    EXPECT_EQ(trace.PhaseCount(SpanKind::kCandidateGen), 1u);
  }
  EXPECT_EQ(traces[0].request_id, 0u);
  EXPECT_EQ(traces[2].request_id, 2u);
  EXPECT_EQ(service.metrics().GetCounter("requests_traced").Value(), 3);

  ASSERT_EQ(log_lines.size(), 3u);
  for (const std::string& line : log_lines) {
    EXPECT_EQ(line.find("{\"event\":\"slow_query\""), 0u) << line;
    EXPECT_NE(line.find("\"traced\":true"), std::string::npos);
    EXPECT_NE(line.find("\"kernel_level\":\""), std::string::npos);
    EXPECT_NE(line.find("\"phases\":{"), std::string::npos);
  }

  std::string prom = service.PrometheusMetrics();
  EXPECT_NE(prom.find("qbe_requests_traced 3"), std::string::npos);
  EXPECT_NE(prom.find("qbe_phase_seconds_candidate_gen_count"),
            std::string::npos);
  EXPECT_NE(prom.find("qbe_latency_seconds_bucket"), std::string::npos);

  std::string chrome = service.ChromeTraces();
  EXPECT_EQ(chrome.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(chrome.find("\"name\":\"candidate_gen\""), std::string::npos);
}

TEST(ServiceTracingTest, TraceRingKeepsOnlyTheNewest) {
  ServiceOptions options;
  options.num_workers = 1;
  options.trace_sample = 1.0;
  options.trace_keep = 2;
  DiscoveryService service(MakeRetailerDatabase(), options);
  ExampleTable et = ExampleTable::WithColumns(1);
  et.AddRow({"Mike"});
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(service.Discover(et).status, RequestStatus::kOk);
  }
  std::vector<Trace> traces = service.RecentTraces();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].request_id, 3u);
  EXPECT_EQ(traces[1].request_id, 4u);
}

TEST(ServiceTracingTest, UnsampledServiceRecordsNothing) {
  DiscoveryService service(MakeRetailerDatabase(), ServiceOptions{});
  ASSERT_EQ(service.Discover(MakeFigure2ExampleTable()).status,
            RequestStatus::kOk);
  EXPECT_TRUE(service.RecentTraces().empty());
  EXPECT_EQ(service.metrics().GetCounter("requests_traced").Value(), 0);
}

}  // namespace
}  // namespace qbe
