#include "datagen/et_gen.h"

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"

namespace qbe {
namespace {

class EtGenTest : public ::testing::Test {
 protected:
  EtGenTest()
      : db_(MakeImdbLikeDatabase(SmallConfig())),
        graph_(db_),
        exec_(db_, graph_),
        source_(db_, graph_, exec_, 11) {}

  static ImdbConfig SmallConfig() {
    ImdbConfig config;
    config.scale = 0.1;
    return config;
  }

  Database db_;
  SchemaGraph graph_;
  Executor exec_;
  EtSource source_;
};

TEST_F(EtGenTest, BuildsTenMatrices) {
  EXPECT_EQ(source_.num_matrices(), 10);
  for (int i = 0; i < source_.num_matrices(); ++i) {
    EXPECT_GE(source_.matrix_rows(i), 12u);
  }
}

TEST_F(EtGenTest, SampleRespectsShapeParameters) {
  EtParams params;
  params.m = 4;
  params.n = 5;
  params.s = 0.3;
  params.v = 2;
  Rng rng(3);
  std::optional<ExampleTable> et = source_.Sample(params, 0, rng);
  ASSERT_TRUE(et.has_value());
  EXPECT_EQ(et->num_rows(), 4);
  EXPECT_EQ(et->num_columns(), 5);
  EXPECT_TRUE(et->IsWellFormed());
  // Exactly floor(m*n*s) = 6 blank cells.
  int blanks = 0;
  for (int r = 0; r < et->num_rows(); ++r) {
    blanks += et->num_columns() - et->NonEmptyCellCount(r);
  }
  EXPECT_EQ(blanks, static_cast<int>(4 * 5 * 0.3));
}

TEST_F(EtGenTest, CellValueLengthBounded) {
  EtParams params;
  params.v = 1;
  Rng rng(5);
  std::optional<ExampleTable> et = source_.Sample(params, 1, rng);
  ASSERT_TRUE(et.has_value());
  for (int r = 0; r < et->num_rows(); ++r) {
    for (int c = 0; c < et->num_columns(); ++c) {
      if (!et->cell(r, c).IsEmpty()) {
        EXPECT_EQ(et->CellTokens(r, c).size(), 1u);
      }
    }
  }
}

TEST_F(EtGenTest, ZeroSparsityMeansNoEmptyCells) {
  EtParams params;
  params.s = 0.0;
  Rng rng(7);
  std::optional<ExampleTable> et = source_.Sample(params, 2, rng);
  ASSERT_TRUE(et.has_value());
  for (int r = 0; r < et->num_rows(); ++r) {
    EXPECT_EQ(et->NonEmptyCellCount(r), et->num_columns());
  }
}

TEST_F(EtGenTest, SampleManyReturnsRequestedCount) {
  EtParams params;
  std::vector<ExampleTable> ets = source_.SampleMany(params, 25, 13);
  EXPECT_EQ(ets.size(), 25u);
  for (const ExampleTable& et : ets) EXPECT_TRUE(et.IsWellFormed());
}

TEST_F(EtGenTest, SampleManyDeterministic) {
  EtParams params;
  std::vector<ExampleTable> a = source_.SampleMany(params, 5, 17);
  std::vector<ExampleTable> b = source_.SampleMany(params, 5, 17);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (int r = 0; r < a[i].num_rows(); ++r) {
      for (int c = 0; c < a[i].num_columns(); ++c) {
        EXPECT_EQ(a[i].cell(r, c).text, b[i].cell(r, c).text);
      }
    }
  }
}

TEST_F(EtGenTest, GeneratedEtsYieldValidQueries) {
  // By construction an ET drawn from a join matrix should admit at least
  // one valid query when the discovery join-length bound covers the source
  // tree (sanity for the whole experimental pipeline). We check candidates
  // exist; validity is exercised by the verifier tests.
  EtParams params;
  params.s = 0.0;
  std::vector<ExampleTable> ets = source_.SampleMany(params, 5, 19);
  for (const ExampleTable& et : ets) {
    auto cols = RetrieveCandidateColumns(db_, et);
    for (const auto& options : cols) {
      EXPECT_FALSE(options.empty());
    }
  }
}

TEST_F(EtGenTest, RetailerTooSmallForMatrices) {
  // The Figure 1 database has tiny join results; EtSource should simply
  // produce fewer (possibly zero) matrices rather than crash.
  Database db = MakeRetailerDatabase();
  SchemaGraph graph(db);
  Executor exec(db, graph);
  EtSource::Options options;
  options.min_matrix_rows = 2;
  EtSource source(db, graph, exec, 3, options);
  SUCCEED();
}

}  // namespace
}  // namespace qbe
