// Tracing observation-only differential (DESIGN.md §13): discovery output,
// verification counts, and eval-cache key sets must be bit-identical with
// tracing off, sampled (50%), and at 100%, at 1, 2 and 8 verify threads.
// Runs under both sanitizer CI legs (labels: slow trace).
//
// Two comparison surfaces:
//  - cache-free runs compare verification counts exactly — without a cache
//    the batched engine's counts are thread-deterministic, so any drift
//    here is tracing perturbing control flow;
//  - cached runs compare the *set* of eval-cache keys ever looked up.
//    Concurrent workers may race a miss on a shared key (both evaluate),
//    so raw counts are timing-dependent there — but every evaluation
//    performs its lookup first and cached outcomes equal computed ones,
//    making the lookup key set deterministic and tracing-independent.

#include <gtest/gtest.h>

#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/discovery.h"
#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "obs/trace.h"

namespace qbe {
namespace {

constexpr int kNumEts = 6;

/// Thread-safe EvalCacheBase that records every key ever looked up.
class RecordingEvalCache : public EvalCacheBase {
 public:
  std::optional<bool> Lookup(const std::string& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_.insert(key);
    ++lookups_;
    auto it = outcomes_.find(key);
    if (it == outcomes_.end()) return std::nullopt;
    ++hits_;
    return it->second;
  }

  void Insert(const std::string& key, bool outcome) override {
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_.emplace(key, outcome);
  }

  int64_t hits() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  int64_t lookups() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return lookups_;
  }
  size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return outcomes_.size();
  }

  std::set<std::string> keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_;
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, bool> outcomes_;
  std::set<std::string> keys_;
  int64_t hits_ = 0;
  int64_t lookups_ = 0;
};

enum class TraceMode { kOff, kSampled, kFull };

const char* ModeName(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff: return "off";
    case TraceMode::kSampled: return "sampled";
    case TraceMode::kFull: return "full";
  }
  return "?";
}

struct Workload {
  Workload()
      : db(MakeScaledRetailerDatabase(30, 30, 12, 12, 120, 120, 50, 7)),
        graph(db),
        exec(db, graph) {
    EtSource::Options options;
    options.num_matrices = 4;
    options.min_text_cols = 3;
    options.min_matrix_rows = 6;
    EtSource source(db, graph, exec, 7, options);
    EtParams params;
    params.m = 3;
    params.n = 3;
    params.s = 0.3;
    params.v = 1;
    ets = source.SampleMany(params, kNumEts, 7 * 131 + 7);
  }

  Database db;
  SchemaGraph graph;
  Executor exec;
  std::vector<ExampleTable> ets;
};

Workload& SharedWorkload() {
  static Workload* workload = new Workload();
  return *workload;
}

/// Everything that must be invariant under tracing for one run.
struct RunOutcome {
  std::vector<std::vector<std::string>> sql;     // per ET, ranked order
  std::vector<std::vector<double>> scores;       // per ET, ranked order
  std::vector<size_t> num_candidates;            // per ET
  std::vector<int64_t> verifications;            // per ET
  std::set<std::string> cache_keys;              // whole run (cached only)
};

RunOutcome RunWorkload(int threads, TraceMode mode, bool with_cache) {
  Workload& wl = SharedWorkload();
  RecordingEvalCache cache;
  TraceSampler sampler{0.5, 2026};
  RunOutcome outcome;
  for (size_t i = 0; i < wl.ets.size(); ++i) {
    bool traced = mode == TraceMode::kFull ||
                  (mode == TraceMode::kSampled && sampler.Sample(i));
    TraceContext trace;
    DiscoveryOptions options;
    options.verify.threads = threads;
    options.verify.batch_size = 4;
    if (with_cache) options.cache = &cache;
    if (traced) options.trace = &trace;
    DiscoveryResult result = DiscoverQueries(wl.db, wl.ets[i], options);
    EXPECT_TRUE(result.ok()) << result.error;

    outcome.sql.emplace_back();
    outcome.scores.emplace_back();
    for (const DiscoveredQuery& q : result.queries) {
      outcome.sql.back().push_back(q.sql);
      outcome.scores.back().push_back(q.score);
    }
    outcome.num_candidates.push_back(result.num_candidates);
    outcome.verifications.push_back(result.counters.verifications);

    if (traced) {
      Trace stitched = trace.Stitch();
      std::string why;
      EXPECT_TRUE(stitched.WellFormed(&why))
          << why << " (et " << i << ", " << threads << " threads)";
      EXPECT_EQ(stitched.counter(TraceCounter::kValidQueries),
                static_cast<int64_t>(result.queries.size()));
    }
  }
  outcome.cache_keys = cache.keys();
  return outcome;
}

void ExpectSameResults(const RunOutcome& a, const RunOutcome& b,
                       int threads, TraceMode mode) {
  EXPECT_EQ(a.sql, b.sql)
      << "discovered queries drift with tracing " << ModeName(mode) << " at "
      << threads << " threads";
  EXPECT_EQ(a.scores, b.scores)
      << "ranking scores drift with tracing " << ModeName(mode) << " at "
      << threads << " threads";
  EXPECT_EQ(a.num_candidates, b.num_candidates);
}

class TraceOverheadTest : public ::testing::TestWithParam<int> {};

// Cache-free: results AND exact verification counts are identical across
// tracing modes (counts are thread-deterministic without a cache).
TEST_P(TraceOverheadTest, CacheFreeRunsAreBitIdenticalAcrossTracingModes) {
  int threads = GetParam();
  RunOutcome off = RunWorkload(threads, TraceMode::kOff, false);
  for (TraceMode mode : {TraceMode::kSampled, TraceMode::kFull}) {
    RunOutcome on = RunWorkload(threads, mode, false);
    ExpectSameResults(off, on, threads, mode);
    EXPECT_EQ(off.verifications, on.verifications)
        << "verification counts drift with tracing " << ModeName(mode)
        << " at " << threads << " threads";
  }
}

// Cached: results and the set of eval-cache keys looked up are identical
// across tracing modes; counts are additionally exact when serial.
TEST_P(TraceOverheadTest, CachedRunsLookUpIdenticalKeySets) {
  int threads = GetParam();
  RunOutcome off = RunWorkload(threads, TraceMode::kOff, true);
  EXPECT_FALSE(off.cache_keys.empty());
  for (TraceMode mode : {TraceMode::kSampled, TraceMode::kFull}) {
    RunOutcome on = RunWorkload(threads, mode, true);
    ExpectSameResults(off, on, threads, mode);
    EXPECT_EQ(off.cache_keys, on.cache_keys)
        << "eval-cache key set drifts with tracing " << ModeName(mode)
        << " at " << threads << " threads";
    if (threads == 1) {
      EXPECT_EQ(off.verifications, on.verifications)
          << "serial cached verification counts drift with tracing "
          << ModeName(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, TraceOverheadTest,
                         ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace qbe
