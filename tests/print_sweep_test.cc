#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "harness/experiment.h"
#include "harness/table_printer.h"

namespace qbe {
namespace {

TEST(PrintSweepTest, RendersAllPanels) {
  // Capture stdout around PrintSweep.
  ExperimentPoint point;
  point.avg_candidates = 12.5;
  point.avg_valid = 2.0;
  AlgoAggregate a;
  a.name = "VerifyAll";
  a.avg_verifications = 30;
  a.avg_millis = 1.5;
  a.avg_cost = 120;
  AlgoAggregate b = a;
  b.name = "Filter";
  b.avg_verifications = 10;
  point.algos = {a, b};

  testing::internal::CaptureStdout();
  PrintSweep("Test sweep", "m", {"3"}, {point});
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Test sweep"), std::string::npos);
  EXPECT_NE(out.find("(a) #verifications"), std::string::npos);
  EXPECT_NE(out.find("(b) execution time (ms)"), std::string::npos);
  EXPECT_NE(out.find("(c) total estimated cost"), std::string::npos);
  EXPECT_NE(out.find("VerifyAll"), std::string::npos);
  EXPECT_NE(out.find("Filter"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);  // candidates column
}

TEST(PrintSweepTest, MultiplePointsOneRowEach) {
  ExperimentPoint p1, p2;
  AlgoAggregate a;
  a.name = "X";
  p1.algos = {a};
  p2.algos = {a};
  testing::internal::CaptureStdout();
  PrintSweep("t", "s", {"0.2", "0.5"}, {p1, p2});
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| 0.2"), std::string::npos);
  EXPECT_NE(out.find("| 0.5"), std::string::npos);
}

}  // namespace
}  // namespace qbe
