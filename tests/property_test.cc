// Property-based suites for the paper's central invariants:
//
//  1. Every verification algorithm — VERIFYALL, SIMPLEPRUNE, FILTER (exact
//     and lazy), WEAVE (join-tree and tuple-tree) — computes the same valid
//     set on the same input (§2.3: "All techniques considered in this paper
//     produce the same output; they differ only in efficiency").
//  2. The dependency lemmas hold semantically: whenever the structural
//     side-conditions of Lemmas 1, 3 and 4 hold, the implied evaluation
//     outcome matches what the executor reports.
//  3. Corollary 1: every valid query is a candidate (validity implies the
//     per-column constraints used for candidate generation).

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/filter_universe.h"
#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "core/weave.h"
#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace qbe {
namespace {

struct Workbench {
  explicit Workbench(uint64_t seed)
      : db(MakeScaledRetailerDatabase(40, 40, 15, 15, 150, 150, 60, seed)),
        graph(db),
        exec(db, graph) {}

  Database db;
  SchemaGraph graph;
  Executor exec;
};

/// Random ETs drawn from actual join results of the scaled retailer, so a
/// healthy mix of valid and invalid candidates arises.
std::vector<ExampleTable> RandomEts(Workbench& wb, uint64_t seed, int count) {
  EtSource::Options options;
  options.num_matrices = 4;
  options.min_text_cols = 3;
  options.min_matrix_rows = 8;
  EtSource source(wb.db, wb.graph, wb.exec, seed, options);
  EtParams params;
  params.m = 3;
  params.n = 3;
  params.s = 0.3;
  params.v = 1;
  return source.SampleMany(params, count, seed * 31 + 1);
}

class AgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AgreementTest, AllAlgorithmsComputeTheSameValidSet) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  for (const ExampleTable& et : RandomEts(wb, seed + 100, 6)) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(wb.db, wb.graph, et, {});
    if (candidates.empty()) continue;
    VerifyContext ctx{wb.db, wb.graph, wb.exec, et, candidates, seed};

    VerifyAll verify_all(RowOrder::kDenseFirst);
    VerificationCounters c0;
    std::vector<bool> reference = verify_all.Verify(ctx, &c0);

    VerifyAll verify_all_random(RowOrder::kRandom);
    SimplePrune simple_prune;
    FilterVerifier filter_exact(0.5, false);
    FilterVerifier filter_lazy(0.5, true);
    FilterVerifier filter_prior0(0.0, false);
    JoinTreeWeave weave;
    TupleTreeWeave tuple_weave;
    CandidateVerifier* algos[] = {&verify_all_random, &simple_prune,
                                  &filter_exact,      &filter_lazy,
                                  &filter_prior0,     &weave,
                                  &tuple_weave};
    for (CandidateVerifier* algo : algos) {
      VerificationCounters counters;
      EXPECT_EQ(algo->Verify(ctx, &counters), reference)
          << algo->name() << " disagrees (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class LemmaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaTest, FilterDependencyLemmasHoldSemantically) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  Rng rng(seed * 7 + 3);
  for (const ExampleTable& et : RandomEts(wb, seed + 200, 2)) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(wb.db, wb.graph, et, {});
    if (candidates.empty()) continue;
    FilterUniverse u = BuildFilterUniverse(wb.graph, et, candidates);
    // Evaluate a bounded random sample of filters.
    std::vector<int> ids(u.num_filters());
    for (int i = 0; i < u.num_filters(); ++i) ids[i] = i;
    rng.Shuffle(ids);
    ids.resize(std::min<size_t>(ids.size(), 40));
    std::vector<int> outcome(u.num_filters(), -1);  // -1 unknown
    auto eval = [&](int f) {
      if (outcome[f] < 0) {
        outcome[f] = wb.exec.Exists(u.filters[f].tree,
                                    FilterPredicates(u.filters[f], et))
                         ? 1
                         : 0;
      }
      return outcome[f] == 1;
    };
    for (int f : ids) {
      bool ok = eval(f);
      if (ok) {
        // Lemma 4: success implies success of all sub-filters.
        for (int sub : u.subs_of[f]) {
          EXPECT_TRUE(eval(sub)) << "Lemma 4 violated (seed " << seed << ")";
        }
      } else {
        // Lemma 3: failure implies failure of all super-filters.
        for (int super : u.supers_of[f]) {
          EXPECT_FALSE(eval(super))
              << "Lemma 3 violated (seed " << seed << ")";
        }
        // Lemma 2: every candidate containing f is invalid.
        for (int q : u.queries_of_filter[f]) {
          bool candidate_valid = true;
          for (int r = 0; r < et.num_rows() && candidate_valid; ++r) {
            candidate_valid = wb.exec.Exists(
                candidates[q].tree, RowPredicates(candidates[q], et, r));
          }
          EXPECT_FALSE(candidate_valid)
              << "Lemma 2 violated (seed " << seed << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaTest, ::testing::Values(11, 12, 13, 14));

class Corollary1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Corollary1Test, ValidQueriesSatisfyColumnConstraints) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  for (const ExampleTable& et : RandomEts(wb, seed + 300, 3)) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(wb.db, wb.graph, et, {});
    VerifyContext ctx{wb.db, wb.graph, wb.exec, et, candidates, seed};
    VerifyAll verify_all;
    VerificationCounters counters;
    std::vector<bool> valid = verify_all.Verify(ctx, &counters);
    auto candidate_cols = RetrieveCandidateColumns(wb.db, et);
    for (size_t q = 0; q < candidates.size(); ++q) {
      if (!valid[q]) continue;
      // A valid query's projection columns must be candidate projection
      // columns (Eq. 2 holds for each column when Eq. 1 holds for all
      // rows) — the containment that makes candidate generation complete.
      for (int c = 0; c < et.num_columns(); ++c) {
        const std::vector<ColumnRef>& options = candidate_cols[c];
        EXPECT_NE(std::find(options.begin(), options.end(),
                            candidates[q].projection[c]),
                  options.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Corollary1Test,
                         ::testing::Values(21, 22, 23));

// ---------------------------------------------------------------------------
// Tokenizer / phrase-containment properties (Definition 2 Remarks). The
// token model underpins every containment check, so its edge cases — empty
// cells, punctuation-only strings, repeated phrases, whole-tuple cells —
// get their own property suite.
// ---------------------------------------------------------------------------

/// Random "word": 1-6 lowercase/uppercase alphanumeric chars.
std::string RandomWord(Rng& rng) {
  static const char kAlpha[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  int len = static_cast<int>(rng.NextInRange(1, 6));
  std::string w;
  for (int i = 0; i < len; ++i) {
    w.push_back(kAlpha[rng.NextBounded(sizeof(kAlpha) - 1)]);
  }
  return w;
}

/// Random inter-token separator: whitespace and/or punctuation.
std::string RandomSeparator(Rng& rng) {
  static const char kSep[] = " \t.,;:!?-()[]'\"/";
  int len = static_cast<int>(rng.NextInRange(1, 3));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s.push_back(kSep[rng.NextBounded(sizeof(kSep) - 1)]);
  }
  return s;
}

/// Joins `tokens[lo, hi)` with fresh random separators, so the string form
/// differs from the original while the token sequence is identical.
std::string JoinSlice(const std::vector<std::string>& tokens, size_t lo,
                      size_t hi, Rng& rng) {
  std::string out;
  for (size_t i = lo; i < hi; ++i) {
    if (i > lo) out += RandomSeparator(rng);
    out += tokens[i];
  }
  return out;
}

class TokenizerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerPropertyTest, ContainmentEdgeCases) {
  Rng rng(GetParam() * 9176 + 5);
  for (int iter = 0; iter < 200; ++iter) {
    int n = static_cast<int>(rng.NextInRange(1, 8));
    std::vector<std::string> words;
    for (int i = 0; i < n; ++i) words.push_back(RandomWord(rng));
    std::string text = JoinSlice(words, 0, words.size(), rng);
    std::vector<std::string> tokens = Tokenize(text);

    // Tokenization normalizes case and strips separators: re-joining the
    // tokens with different separators re-tokenizes to the same sequence.
    EXPECT_EQ(Tokenize(JoinSlice(tokens, 0, tokens.size(), rng)), tokens);

    // Containment is reflexive, and any consecutive slice is contained —
    // even when re-punctuated and re-cased.
    EXPECT_TRUE(ContainsPhrase(text, text));
    size_t lo = rng.NextBounded(tokens.size() + 1);
    size_t hi = lo + rng.NextBounded(tokens.size() - lo + 1);
    std::string slice = JoinSlice(tokens, lo, hi, rng);
    EXPECT_TRUE(ContainsPhrase(text, slice))
        << "slice [" << lo << "," << hi << ") of \"" << text << "\"";

    // The empty cell ("") and punctuation-only cells tokenize to nothing
    // and are therefore contained in everything (Definition 2: an empty
    // needle matches any haystack).
    EXPECT_TRUE(ContainsPhrase(text, ""));
    std::string punct = RandomSeparator(rng);
    EXPECT_TRUE(Tokenize(punct).empty());
    EXPECT_TRUE(ContainsPhrase(text, punct));
    EXPECT_TRUE(ContainsPhrase(punct, punct));
    EXPECT_EQ(ContainsPhrase(punct, text), tokens.empty());

    // Repeated phrases: doubling the haystack preserves containment of the
    // phrase and of its doubling, while the doubled phrase exceeds a single
    // copy whenever the phrase has at least one token.
    std::string doubled = text + RandomSeparator(rng) + text;
    EXPECT_TRUE(ContainsPhrase(doubled, text));
    EXPECT_TRUE(ContainsPhrase(doubled, doubled));
    EXPECT_EQ(ContainsPhrase(text, doubled), tokens.empty());

    // Containment is monotone in the haystack: extending it on either side
    // cannot break a match.
    std::string extended =
        RandomWord(rng) + RandomSeparator(rng) + text + " " + RandomWord(rng);
    EXPECT_TRUE(ContainsPhrase(extended, slice));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerPropertyTest,
                         ::testing::Values(31, 32, 33, 34));

/// Collects non-empty text values of the workbench database, for building
/// hand-crafted ETs out of real tuple content.
std::vector<std::string> SampleTexts(const Database& db, int limit) {
  std::vector<std::string> texts;
  for (int r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    for (int c = 0; c < rel.num_columns(); ++c) {
      if (rel.columns()[c].type != ColumnType::kText) continue;
      for (uint32_t row = 0; row < rel.num_rows() && texts.size() <
                                 static_cast<size_t>(limit); ++row) {
        if (!rel.TextAt(c, row).empty()) {
          texts.emplace_back(rel.TextAt(c, row));
        }
      }
    }
  }
  return texts;
}

/// Runs every verifier — serial and the parallel batched engine — over the
/// ET and asserts they agree; returns the number of candidates so callers
/// can assert the scenario was not vacuous.
size_t ExpectAllVerifiersAgree(Workbench& wb, const ExampleTable& et,
                               uint64_t seed) {
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(wb.db, wb.graph, et, {});
  if (candidates.empty()) return 0;
  VerifyContext ctx{wb.db, wb.graph, wb.exec, et, candidates, seed};

  VerifyAll verify_all(RowOrder::kDenseFirst);
  VerificationCounters c0;
  std::vector<bool> reference = verify_all.Verify(ctx, &c0);

  SimplePrune simple_prune;
  FilterVerifier filter_lazy(0.1, true);
  CandidateVerifier* algos[] = {&simple_prune, &filter_lazy, &verify_all};
  for (CandidateVerifier* algo : algos) {
    for (int threads : {1, 4}) {
      VerifyContext par_ctx = ctx;
      par_ctx.verify.threads = threads;
      par_ctx.verify.batch_size = 2;
      VerificationCounters counters;
      EXPECT_EQ(algo->Verify(par_ctx, &counters), reference)
          << algo->name() << " at " << threads << " threads";
    }
  }
  return candidates.size();
}

class EtEdgeCaseTest : public ::testing::TestWithParam<uint64_t> {};

// Hand-crafted ETs around the tokenizer edge cases must flow through the
// whole pipeline — candidate generation and every verifier, serial and
// parallel — without crashes and with all algorithms agreeing.
TEST_P(EtEdgeCaseTest, PipelineHandlesDegenerateCells) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  std::vector<std::string> texts = SampleTexts(wb.db, 64);
  ASSERT_GE(texts.size(), 4u);

  // Empty cells: a sparse two-column ET of real values.
  {
    ExampleTable et = ExampleTable::WithColumns(2);
    et.AddRow({texts[0], ""});
    et.AddRow({"", texts[1]});
    ASSERT_TRUE(et.IsWellFormed());
    ExpectAllVerifiersAgree(wb, et, seed);
  }

  // Punctuation-only cell: non-empty text, zero tokens. The ET is
  // structurally well-formed (the cell is not empty), yet the cell behaves
  // as "contained in everything" during verification.
  {
    ExampleTable et = ExampleTable::WithColumns(2);
    et.AddRow({texts[0], "?!..."});
    ASSERT_TRUE(et.IsWellFormed());
    EXPECT_FALSE(et.cell(0, 1).IsEmpty());
    EXPECT_TRUE(et.CellTokens(0, 1).empty());
    ExpectAllVerifiersAgree(wb, et, seed);
  }

  // Repeated phrase: "w w" only matches cells where the word really occurs
  // twice in a row — strictly stronger than "w".
  {
    std::vector<std::string> tokens = Tokenize(texts[2]);
    ASSERT_FALSE(tokens.empty());
    ExampleTable et = ExampleTable::WithColumns(1);
    et.AddRow({tokens[0] + " " + tokens[0]});
    ExpectAllVerifiersAgree(wb, et, seed);
  }

  // Cell equal to a whole tuple's text: concatenating every text column of
  // one tuple yields a phrase that no single column need contain. The
  // pipeline must treat it as an ordinary (likely unsatisfiable) phrase.
  {
    const Relation& rel = wb.db.relation(0);
    std::string whole;
    for (int c = 0; c < rel.num_columns(); ++c) {
      if (rel.columns()[c].type != ColumnType::kText) continue;
      if (!whole.empty()) whole += " ";
      whole += rel.TextAt(c, 0);
    }
    ASSERT_FALSE(whole.empty());
    ExampleTable et = ExampleTable::WithColumns(1);
    et.AddRow({whole});
    ExpectAllVerifiersAgree(wb, et, seed);
  }

  // A single-word ET drawn from a dense column — guaranteed to produce
  // candidates, so the agreement helper above is exercised non-vacuously
  // at least once per seed.
  {
    std::vector<std::string> tokens = Tokenize(texts[3]);
    ASSERT_FALSE(tokens.empty());
    ExampleTable et = ExampleTable::WithColumns(1);
    et.AddRow({tokens[0]});
    EXPECT_GT(ExpectAllVerifiersAgree(wb, et, seed), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EtEdgeCaseTest, ::testing::Values(41, 42));

}  // namespace
}  // namespace qbe
