// Property-based suites for the paper's central invariants:
//
//  1. Every verification algorithm — VERIFYALL, SIMPLEPRUNE, FILTER (exact
//     and lazy), WEAVE (join-tree and tuple-tree) — computes the same valid
//     set on the same input (§2.3: "All techniques considered in this paper
//     produce the same output; they differ only in efficiency").
//  2. The dependency lemmas hold semantically: whenever the structural
//     side-conditions of Lemmas 1, 3 and 4 hold, the implied evaluation
//     outcome matches what the executor reports.
//  3. Corollary 1: every valid query is a candidate (validity implies the
//     per-column constraints used for candidate generation).

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/filter_universe.h"
#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "core/weave.h"
#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "util/rng.h"

namespace qbe {
namespace {

struct Workbench {
  explicit Workbench(uint64_t seed)
      : db(MakeScaledRetailerDatabase(40, 40, 15, 15, 150, 150, 60, seed)),
        graph(db),
        exec(db, graph) {}

  Database db;
  SchemaGraph graph;
  Executor exec;
};

/// Random ETs drawn from actual join results of the scaled retailer, so a
/// healthy mix of valid and invalid candidates arises.
std::vector<ExampleTable> RandomEts(Workbench& wb, uint64_t seed, int count) {
  EtSource::Options options;
  options.num_matrices = 4;
  options.min_text_cols = 3;
  options.min_matrix_rows = 8;
  EtSource source(wb.db, wb.graph, wb.exec, seed, options);
  EtParams params;
  params.m = 3;
  params.n = 3;
  params.s = 0.3;
  params.v = 1;
  return source.SampleMany(params, count, seed * 31 + 1);
}

class AgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AgreementTest, AllAlgorithmsComputeTheSameValidSet) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  for (const ExampleTable& et : RandomEts(wb, seed + 100, 6)) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(wb.db, wb.graph, et, {});
    if (candidates.empty()) continue;
    VerifyContext ctx{wb.db, wb.graph, wb.exec, et, candidates, seed};

    VerifyAll verify_all(RowOrder::kDenseFirst);
    VerificationCounters c0;
    std::vector<bool> reference = verify_all.Verify(ctx, &c0);

    VerifyAll verify_all_random(RowOrder::kRandom);
    SimplePrune simple_prune;
    FilterVerifier filter_exact(0.5, false);
    FilterVerifier filter_lazy(0.5, true);
    FilterVerifier filter_prior0(0.0, false);
    JoinTreeWeave weave;
    TupleTreeWeave tuple_weave;
    CandidateVerifier* algos[] = {&verify_all_random, &simple_prune,
                                  &filter_exact,      &filter_lazy,
                                  &filter_prior0,     &weave,
                                  &tuple_weave};
    for (CandidateVerifier* algo : algos) {
      VerificationCounters counters;
      EXPECT_EQ(algo->Verify(ctx, &counters), reference)
          << algo->name() << " disagrees (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class LemmaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaTest, FilterDependencyLemmasHoldSemantically) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  Rng rng(seed * 7 + 3);
  for (const ExampleTable& et : RandomEts(wb, seed + 200, 2)) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(wb.db, wb.graph, et, {});
    if (candidates.empty()) continue;
    FilterUniverse u = BuildFilterUniverse(wb.graph, et, candidates);
    // Evaluate a bounded random sample of filters.
    std::vector<int> ids(u.num_filters());
    for (int i = 0; i < u.num_filters(); ++i) ids[i] = i;
    rng.Shuffle(ids);
    ids.resize(std::min<size_t>(ids.size(), 40));
    std::vector<int> outcome(u.num_filters(), -1);  // -1 unknown
    auto eval = [&](int f) {
      if (outcome[f] < 0) {
        outcome[f] = wb.exec.Exists(u.filters[f].tree,
                                    FilterPredicates(u.filters[f], et))
                         ? 1
                         : 0;
      }
      return outcome[f] == 1;
    };
    for (int f : ids) {
      bool ok = eval(f);
      if (ok) {
        // Lemma 4: success implies success of all sub-filters.
        for (int sub : u.subs_of[f]) {
          EXPECT_TRUE(eval(sub)) << "Lemma 4 violated (seed " << seed << ")";
        }
      } else {
        // Lemma 3: failure implies failure of all super-filters.
        for (int super : u.supers_of[f]) {
          EXPECT_FALSE(eval(super))
              << "Lemma 3 violated (seed " << seed << ")";
        }
        // Lemma 2: every candidate containing f is invalid.
        for (int q : u.queries_of_filter[f]) {
          bool candidate_valid = true;
          for (int r = 0; r < et.num_rows() && candidate_valid; ++r) {
            candidate_valid = wb.exec.Exists(
                candidates[q].tree, RowPredicates(candidates[q], et, r));
          }
          EXPECT_FALSE(candidate_valid)
              << "Lemma 2 violated (seed " << seed << ")";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaTest, ::testing::Values(11, 12, 13, 14));

class Corollary1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Corollary1Test, ValidQueriesSatisfyColumnConstraints) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  for (const ExampleTable& et : RandomEts(wb, seed + 300, 3)) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(wb.db, wb.graph, et, {});
    VerifyContext ctx{wb.db, wb.graph, wb.exec, et, candidates, seed};
    VerifyAll verify_all;
    VerificationCounters counters;
    std::vector<bool> valid = verify_all.Verify(ctx, &counters);
    auto candidate_cols = RetrieveCandidateColumns(wb.db, et);
    for (size_t q = 0; q < candidates.size(); ++q) {
      if (!valid[q]) continue;
      // A valid query's projection columns must be candidate projection
      // columns (Eq. 2 holds for each column when Eq. 1 holds for all
      // rows) — the containment that makes candidate generation complete.
      for (int c = 0; c < et.num_columns(); ++c) {
        const std::vector<ColumnRef>& options = candidate_cols[c];
        EXPECT_NE(std::find(options.begin(), options.end(),
                            candidates[q].projection[c]),
                  options.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Corollary1Test,
                         ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace qbe
