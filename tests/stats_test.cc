#include "exec/stats.h"

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/execute_all.h"
#include "core/filter_verifier.h"
#include "core/verify_all.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace qbe {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest()
      : db_(MakeRetailerDatabase()),
        graph_(db_),
        exec_(db_, graph_),
        stats_(db_) {}

  Database db_;
  SchemaGraph graph_;
  Executor exec_;
  Statistics stats_;
};

TEST_F(StatsTest, RelationRows) {
  EXPECT_EQ(stats_.relation_rows(db_.RelationIdByName("Customer")), 3.0);
  EXPECT_EQ(stats_.relation_rows(db_.RelationIdByName("ESR")), 2.0);
}

TEST_F(StatsTest, EdgeFanout) {
  // Sales -> Customer: 3 referencing rows over 3 distinct keys = 1.0.
  EXPECT_DOUBLE_EQ(stats_.edge_fanout(0), 1.0);
}

TEST_F(StatsTest, PhraseMatchesAreTokenMinimum) {
  ColumnRef desc = test::Col(db_, "ESR.Desc");
  // 'office' appears in 1 Desc row; 'crash' in 1; phrase bound = 1.
  EXPECT_DOUBLE_EQ(stats_.EstimatePhraseMatches(desc, {"office"}), 1.0);
  EXPECT_DOUBLE_EQ(
      stats_.EstimatePhraseMatches(desc, {"office", "crash"}), 1.0);
  EXPECT_DOUBLE_EQ(stats_.EstimatePhraseMatches(desc, {"zelda"}), 0.0);
  // Empty phrase = whole column.
  EXPECT_DOUBLE_EQ(stats_.EstimatePhraseMatches(desc, {}), 2.0);
}

TEST_F(StatsTest, PredicateSelectivityBounded) {
  PhrasePredicate p{test::Col(db_, "Customer.CustName"), {"mike"}, false};
  double sel = stats_.PredicateSelectivity(p);
  EXPECT_GT(sel, 0.0);
  EXPECT_LE(sel, 1.0);
  EXPECT_DOUBLE_EQ(sel, 1.0 / 3.0);
}

TEST_F(StatsTest, JoinCardinalityMatchesTinyTruth) {
  // Sales ⋈ Customer: |Sales| × |Customer| / |Customer| = 3.
  JoinTree tree = test::Tree(db_, graph_, {"Sales", "Customer"});
  EXPECT_DOUBLE_EQ(stats_.EstimateJoinCardinality(graph_, tree, {}), 3.0);
  // With a predicate matching one customer: 1.
  PhrasePredicate p{test::Col(db_, "Customer.CustName"), {"mike"}, false};
  EXPECT_DOUBLE_EQ(stats_.EstimateJoinCardinality(graph_, tree, {p}), 1.0);
}

TEST_F(StatsTest, ProbeCostGrowsWithTreeSize) {
  JoinTree small = test::Tree(db_, graph_, {"Sales", "Customer"});
  JoinTree large =
      test::Tree(db_, graph_, {"Sales", "Customer", "Device", "App"});
  PhrasePredicate p{test::Col(db_, "Customer.CustName"), {"mike"}, false};
  EXPECT_LT(stats_.EstimateProbeCost(graph_, small, {p}),
            stats_.EstimateProbeCost(graph_, large, {p}));
  EXPECT_GE(stats_.EstimateProbeCost(graph_, small, {}), 1.0);
}

TEST_F(StatsTest, EstimatedCostModelAgreesOnValidSet) {
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions gen;
  gen.max_join_tree_size = 5;
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db_, graph_, et, gen);
  VerifyContext ctx{db_, graph_, exec_, et, candidates, 1};
  VerifyAll reference;
  VerificationCounters c0;
  std::vector<bool> expected = reference.Verify(ctx, &c0);

  FilterVerifier::Options options;
  options.cost_model = FilterCostModel::kEstimated;
  options.stats = &stats_;
  FilterVerifier filter(options);
  VerificationCounters c1;
  EXPECT_EQ(filter.Verify(ctx, &c1), expected);
  EXPECT_GT(c1.verifications, 0);
}

TEST_F(StatsTest, ExecuteAllAgreesAndChargesOutputSize) {
  ExampleTable et = MakeFigure2ExampleTable();
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db_, graph_, et, {});
  VerifyContext ctx{db_, graph_, exec_, et, candidates, 1};
  VerifyAll reference;
  VerificationCounters c0;
  std::vector<bool> expected = reference.Verify(ctx, &c0);

  ExecuteAll execute_all;
  VerificationCounters c1;
  EXPECT_EQ(execute_all.Verify(ctx, &c1), expected);
  // One verification per candidate, but cost counts whole outputs: the
  // Sales and Owner candidates produce 3 tuples each, the ESR-based one 2
  // (only employees e1 and e2 filed service requests) — 8 tuples over
  // 4-relation trees.
  EXPECT_EQ(c1.verifications, static_cast<int64_t>(candidates.size()));
  EXPECT_EQ(c1.estimated_cost, 8 * 4);
}

TEST_F(StatsTest, ExecuteAllFallbackUnderTinyCap) {
  ExampleTable et = MakeFigure2ExampleTable();
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db_, graph_, et, {});
  VerifyContext ctx{db_, graph_, exec_, et, candidates, 1};
  VerifyAll reference;
  VerificationCounters c0;
  std::vector<bool> expected = reference.Verify(ctx, &c0);
  ExecuteAll tiny_cap(/*output_cap=*/1);
  VerificationCounters c1;
  EXPECT_EQ(tiny_cap.Verify(ctx, &c1), expected);
}

TEST_F(StatsTest, ExecuteAllWithExactCells) {
  ExampleTable et({"A"});
  et.AddRowCells({EtCell{"Office", true}});  // never a whole cell
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db_, graph_, et, {});
  if (candidates.empty()) GTEST_SKIP();
  VerifyContext ctx{db_, graph_, exec_, et, candidates, 1};
  ExecuteAll execute_all;
  VerificationCounters c;
  for (bool v : execute_all.Verify(ctx, &c)) EXPECT_FALSE(v);
}

}  // namespace
}  // namespace qbe
