// DiscoveryService integration tests: the 8-thread stress runs assert that
// serving discovery concurrently from one shared service — one worker
// pool, one sharded verification cache — returns bit-identical query sets
// to single-threaded DiscoverQueries on the same inputs. Run these under
// -DQBE_SANITIZE=thread as well as plain builds.

#include "service/discovery_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "datagen/et_gen.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"
#include "service/concurrent_eval_cache.h"
#include "service/serve_args.h"

namespace qbe {
namespace {

std::vector<std::string> SqlList(const DiscoveryResult& result) {
  std::vector<std::string> sql;
  sql.reserve(result.queries.size());
  for (const DiscoveredQuery& q : result.queries) sql.push_back(q.sql);
  return sql;
}

ExampleTable Et(const std::vector<std::vector<std::string>>& rows) {
  ExampleTable et = ExampleTable::WithColumns(static_cast<int>(rows[0].size()));
  for (const std::vector<std::string>& row : rows) et.AddRow(row);
  return et;
}

std::vector<ExampleTable> RetailerWorkload() {
  return {
      MakeFigure2ExampleTable(),
      Et({{"Mike", "ThinkPad", "Office"}}),
      Et({{"Mike"}}),
      Et({{"Mary", "iPad"}}),
      Et({{"Mike", "ThinkPad", "Office"}, {"Mary", "iPad", ""}}),
      Et({{"Bob", "", "Dropbox"}, {"Mike", "ThinkPad", "Office"}}),
  };
}

/// Hammers `service` from `num_threads` clients, each replaying the whole
/// workload `repeat` times (offset per client), and asserts every response
/// is kOk with exactly the expected SQL list.
void StressAndCompare(DiscoveryService& service,
                      const std::vector<ExampleTable>& workload,
                      const std::vector<std::vector<std::string>>& expected,
                      int num_threads, int repeat) {
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < num_threads; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < repeat; ++r) {
        for (size_t q = 0; q < workload.size(); ++q) {
          size_t pick = (q + static_cast<size_t>(c)) % workload.size();
          ServiceResponse response = service.Discover(workload[pick]);
          if (response.status != RequestStatus::kOk ||
              SqlList(response.result) != expected[pick]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentEvalCacheTest, LookupAndInsert) {
  ConcurrentEvalCache cache(4);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", true);
  cache.Insert("k2", false);
  ASSERT_TRUE(cache.Lookup("k1").has_value());
  EXPECT_TRUE(*cache.Lookup("k1"));
  EXPECT_FALSE(*cache.Lookup("k2"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookups(), 4);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_GT(cache.HitRate(), 0.7);
}

TEST(ConcurrentEvalCacheTest, FirstInsertWinsLikeSingleThreaded) {
  // emplace semantics: a duplicate insert must not overwrite — outcomes
  // are deterministic anyway, but the contract matches EvalCache.
  ConcurrentEvalCache cache(2);
  cache.Insert("k", true);
  cache.Insert("k", false);
  EXPECT_TRUE(*cache.Lookup("k"));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ConcurrentEvalCacheTest, ConcurrentMixedUseKeepsEveryOutcome) {
  ConcurrentEvalCache cache(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "key-" + std::to_string(i);
        if (std::optional<bool> hit = cache.Lookup(key)) {
          // Outcomes must never be corrupted by concurrent writers.
          EXPECT_EQ(*hit, i % 2 == 0) << "thread " << t;
        } else {
          cache.Insert(key, i % 2 == 0);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), 500u);
  EXPECT_EQ(cache.lookups(), 8 * 500);
}

TEST(ServiceStressTest, EightThreadsMatchSingleThreadedOnRetailer) {
  std::vector<ExampleTable> workload = RetailerWorkload();
  ServiceOptions options;
  options.num_workers = 4;
  options.max_queue_depth = 256;
  DiscoveryService service(MakeRetailerDatabase(), options);

  // Ground truth: plain single-threaded DiscoverQueries, no cache.
  std::vector<std::vector<std::string>> expected;
  for (const ExampleTable& et : workload) {
    DiscoveryResult result = DiscoverQueries(service.db(), et);
    ASSERT_TRUE(result.ok());
    expected.push_back(SqlList(result));
  }

  StressAndCompare(service, workload, expected, /*num_threads=*/8,
                   /*repeat=*/5);

  // The whole point of the shared cache: later requests are served from
  // outcomes computed by other sessions.
  EXPECT_GT(service.cache().hits(), 0);
  EXPECT_GT(service.cache().HitRate(), 0.5);
  EXPECT_EQ(service.metrics().GetCounter("requests_completed").Value(),
            8 * 5 * static_cast<int64_t>(workload.size()));
  std::string dump = service.MetricsDump();
  EXPECT_NE(dump.find("eval_cache_hit_rate"), std::string::npos);
  EXPECT_NE(dump.find("latency_seconds"), std::string::npos);
}

TEST(ServiceStressTest, EightThreadsMatchSingleThreadedOnImdb) {
  ImdbConfig config;
  config.scale = 0.1;
  DiscoveryService service(MakeImdbLikeDatabase(config), ServiceOptions{});

  // Sample a workload of ETs from the database's own join matrices.
  SchemaGraph graph(service.db());
  Executor exec(service.db(), graph);
  EtSource source(service.db(), graph, exec, /*seed=*/7);
  EtParams params;
  params.m = 2;
  params.n = 2;
  params.s = 0.0;
  std::vector<ExampleTable> workload = source.SampleMany(params, 6, 11);

  std::vector<std::vector<std::string>> expected;
  for (const ExampleTable& et : workload) {
    DiscoveryResult result = DiscoverQueries(service.db(), et);
    ASSERT_TRUE(result.ok());
    expected.push_back(SqlList(result));
  }

  StressAndCompare(service, workload, expected, /*num_threads=*/8,
                   /*repeat=*/3);
  EXPECT_GT(service.cache().hits(), 0);
}

TEST(ServiceTest, RejectsWhenQueueIsFull) {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> worker_entered{false};
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  options.on_request_start = [&] {
    worker_entered.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  };
  DiscoveryService service(MakeRetailerDatabase(), options);
  ExampleTable et = Et({{"Mike"}});

  // The first request is dequeued by the single worker, which then blocks
  // in the gate — from here on admission is deterministic: one queue slot
  // free, and nobody draining it.
  std::future<ServiceResponse> running = service.Submit(et);
  while (!worker_entered.load()) std::this_thread::yield();

  std::future<ServiceResponse> queued = service.Submit(et);  // fills slot
  std::future<ServiceResponse> rejected = service.Submit(et);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rejected.get().status, RequestStatus::kRejected);
  EXPECT_EQ(service.metrics().GetCounter("requests_rejected").Value(), 1);
  EXPECT_EQ(service.metrics().GetCounter("requests_admitted").Value(), 2);

  {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
  }
  cv.notify_all();
  EXPECT_EQ(running.get().status, RequestStatus::kOk);
  EXPECT_EQ(queued.get().status, RequestStatus::kOk);
}

TEST(ServiceTest, ExpiredDeadlineTimesOutWithoutPoisoningCache) {
  DiscoveryService service(MakeRetailerDatabase(), ServiceOptions{});
  ExampleTable et = MakeFigure2ExampleTable();

  // A negative budget is already expired at admission: deterministic
  // timeout regardless of machine speed.
  ServiceResponse timed_out =
      service.Discover(et, std::chrono::milliseconds(-1));
  EXPECT_EQ(timed_out.status, RequestStatus::kTimedOut);
  EXPECT_TRUE(timed_out.result.timed_out);
  EXPECT_TRUE(timed_out.result.queries.empty());
  EXPECT_FALSE(timed_out.result.ok());
  EXPECT_EQ(service.metrics().GetCounter("requests_timed_out").Value(), 1);

  // The aborted run must not have written fabricated outcomes into the
  // shared cache: the same request without a deadline returns exactly the
  // fresh single-threaded answer.
  ServiceResponse ok = service.Discover(et);
  ASSERT_EQ(ok.status, RequestStatus::kOk);
  DiscoveryResult fresh = DiscoverQueries(service.db(), et);
  EXPECT_EQ(SqlList(ok.result), SqlList(fresh));
  EXPECT_FALSE(ok.result.queries.empty());
}

TEST(ServiceTest, GenerousDeadlineStillCompletes) {
  DiscoveryService service(MakeRetailerDatabase(), ServiceOptions{});
  ServiceResponse response = service.Discover(
      MakeFigure2ExampleTable(), std::chrono::milliseconds(60000));
  EXPECT_EQ(response.status, RequestStatus::kOk);
  EXPECT_FALSE(response.result.queries.empty());
}

TEST(ServiceTest, MalformedTableFails) {
  DiscoveryService service(MakeRetailerDatabase(), ServiceOptions{});
  ExampleTable empty_row = ExampleTable::WithColumns(2);
  empty_row.AddRow({"", ""});
  ServiceResponse response = service.Discover(empty_row);
  EXPECT_EQ(response.status, RequestStatus::kFailed);
  EXPECT_FALSE(response.result.ok());
  EXPECT_EQ(service.metrics().GetCounter("requests_failed").Value(), 1);
}

TEST(ServiceTest, GracefulShutdownDrainsInFlightRequests) {
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue_depth = 64;
  DiscoveryService service(MakeRetailerDatabase(), options);
  std::vector<std::future<ServiceResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(service.Submit(MakeFigure2ExampleTable()));
  }
  service.Shutdown();
  for (std::future<ServiceResponse>& f : futures) {
    ServiceResponse response = f.get();  // every promise resolved
    EXPECT_TRUE(response.status == RequestStatus::kOk ||
                response.status == RequestStatus::kRejected);
  }
  // After shutdown, new submissions fast-fail with kShutdown.
  EXPECT_EQ(service.Discover(MakeFigure2ExampleTable()).status,
            RequestStatus::kShutdown);
  EXPECT_GE(service.metrics().GetCounter("requests_shutdown").Value(), 1);
}

#ifndef NDEBUG
TEST(EvalCacheDeathTest, SecondThreadUseAbortsInDebugBuilds) {
  // The raw single-threaded EvalCache pins itself to its first user's
  // thread; any cross-thread use is a contract violation caught in debug
  // builds (release builds must use ConcurrentEvalCache for sharing).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        EvalCache cache;
        cache.Insert("k", true);
        std::thread second([&cache] { cache.Insert("k2", false); });
        second.join();
      },
      "EvalCache used from a second thread");
}
#endif

TEST(ServiceTest, SessionsShareServiceCache) {
  // Two DiscoverySessions on different "users" sharing one concurrent
  // cache: the second session's first discovery is served largely from
  // outcomes the first session computed.
  Database db = MakeRetailerDatabase();
  ConcurrentEvalCache shared(8);
  DiscoverySession first(db, DiscoveryOptions{}, &shared);
  first.SetTable(MakeFigure2ExampleTable());
  DiscoveryResult from_first = first.Discover();
  int64_t hits_before = shared.hits();

  DiscoverySession second(db, DiscoveryOptions{}, &shared);
  second.SetTable(MakeFigure2ExampleTable());
  DiscoveryResult from_second = second.Discover();
  EXPECT_GT(shared.hits(), hits_before);
  EXPECT_EQ(SqlList(from_first), SqlList(from_second));

  // And the answers match a cacheless batch run.
  DiscoveryResult batch = DiscoverQueries(db, MakeFigure2ExampleTable());
  EXPECT_EQ(SqlList(from_second), SqlList(batch));
}

// ---------------------------------------------------------------------------
// qbe_serve command-line parsing (service/serve_args.h). The parser is
// strict: unknown flags, missing values, and out-of-range values fail
// naming the flag instead of being silently ignored.

ServeArgs Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "qbe_serve");
  return ParseServeArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ServeArgsTest, ParsesAFullCommandLine) {
  ServeArgs args = Parse({"--dataset", "imdb", "--scale", "0.5",
                          "--clients", "2", "--workers", "3",
                          "--algorithm", "weave", "--metrics-port", "0",
                          "--trace-sample", "0.25", "--slow-query-ms", "10",
                          "--trace-out", "/tmp/t.json"});
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.dataset, "imdb");
  EXPECT_DOUBLE_EQ(args.scale, 0.5);
  EXPECT_EQ(args.clients, 2);
  EXPECT_EQ(args.workers, 3);
  EXPECT_EQ(args.algorithm, "weave");
  EXPECT_EQ(args.metrics_port, 0);
  EXPECT_DOUBLE_EQ(args.trace_sample, 0.25);
  EXPECT_DOUBLE_EQ(args.slow_query_ms, 10.0);
  EXPECT_EQ(args.trace_out, "/tmp/t.json");
  EXPECT_FALSE(args.show_usage);
}

TEST(ServeArgsTest, RejectsUnknownFlagNamingIt) {
  ServeArgs args = Parse({"--clients", "2", "--bogus-flag", "--workers", "3"});
  EXPECT_FALSE(args.ok());
  EXPECT_EQ(args.error, "unknown flag --bogus-flag");
}

TEST(ServeArgsTest, RejectsMissingValue) {
  ServeArgs args = Parse({"--clients"});
  EXPECT_FALSE(args.ok());
  EXPECT_EQ(args.error, "missing value for --clients");
}

TEST(ServeArgsTest, RejectsOutOfRangeAndMalformedValues) {
  EXPECT_EQ(Parse({"--trace-sample", "1.5"}).error,
            "bad value for --trace-sample: 1.5");
  EXPECT_EQ(Parse({"--clients", "0"}).error, "bad value for --clients: 0");
  EXPECT_EQ(Parse({"--workers", "4x"}).error, "bad value for --workers: 4x");
  EXPECT_EQ(Parse({"--metrics-port", "70000"}).error,
            "bad value for --metrics-port: 70000");
  EXPECT_EQ(Parse({"--timeout-ms", "-2"}).error,
            "bad value for --timeout-ms: -2");
  // -1 stays accepted: an already-expired deadline drives the timeout path.
  EXPECT_TRUE(Parse({"--timeout-ms", "-1"}).ok());
}

TEST(ServeArgsTest, RejectsUnknownDatasetAndAlgorithm) {
  EXPECT_EQ(Parse({"--dataset", "tpch"}).error, "unknown dataset tpch");
  EXPECT_EQ(Parse({"--algorithm", "magic"}).error, "unknown algorithm magic");
}

TEST(ServeArgsTest, HelpSetsShowUsage) {
  EXPECT_TRUE(Parse({"--help"}).show_usage);
  EXPECT_TRUE(Parse({"-h"}).show_usage);
  EXPECT_FALSE(ServeUsage().empty());
}

TEST(ServiceTest, InjectedLatencyBucketsShapeTheHistograms) {
  ServiceOptions options;
  options.num_workers = 1;
  options.latency_buckets = {1e-6, 1e-5, 1e-4, 1e-3, 1.0};
  DiscoveryService service(MakeRetailerDatabase(), options);
  ASSERT_EQ(service.Discover(MakeFigure2ExampleTable()).status,
            RequestStatus::kOk);
  // The empty-bounds lookup returns the already-registered histogram; its
  // layout must be the injected one, not the 100µs-start default.
  Histogram& latency = service.metrics().GetHistogram("latency_seconds", {});
  ASSERT_EQ(latency.bounds().size(), 5u);
  EXPECT_DOUBLE_EQ(latency.bounds()[0], 1e-6);
  EXPECT_EQ(latency.TotalCount(), 1);
}

}  // namespace
}  // namespace qbe
