#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "datagen/retailer.h"
#include "test_util.h"

namespace qbe {
namespace {

class RelaxedRetrievalTest : public ::testing::Test {
 protected:
  RelaxedRetrievalTest() : db_(MakeRetailerDatabase()) {}
  Database db_;
};

TEST_F(RelaxedRetrievalTest, FullSupportEqualsStrictRetrieval) {
  ExampleTable et = MakeFigure2ExampleTable();
  EXPECT_EQ(RetrieveCandidateColumnsRelaxed(db_, et, et.num_rows()),
            RetrieveCandidateColumns(db_, et));
}

TEST_F(RelaxedRetrievalTest, OneBadRowRecoveredAtLowerSupport) {
  ExampleTable et({"A"});
  et.AddRow({"Mike"});
  et.AddRow({"Mary"});
  et.AddRow({"Zelda"});  // matches nothing
  // Strict: no column contains all three values.
  EXPECT_TRUE(RetrieveCandidateColumns(db_, et)[0].empty());
  // Support 2: CustName and EmpName both contain Mike and Mary.
  auto relaxed = RetrieveCandidateColumnsRelaxed(db_, et, 2);
  EXPECT_EQ(relaxed[0],
            (std::vector<ColumnRef>{test::Col(db_, "Customer.CustName"),
                                    test::Col(db_, "Employee.EmpName")}));
}

TEST_F(RelaxedRetrievalTest, EmptyCellsCountAsCompatible) {
  ExampleTable et({"A", "B"});
  et.AddRow({"Mike", "ThinkPad"});
  et.AddRow({"", "Nexus"});
  // Column A has one empty cell: with support 2 a column qualifies with a
  // single contained value.
  auto relaxed = RetrieveCandidateColumnsRelaxed(db_, et, 2);
  EXPECT_EQ(relaxed[0].size(), 2u);  // CustName, EmpName
  EXPECT_EQ(relaxed[1].size(), 1u);  // DevName
}

TEST_F(RelaxedRetrievalTest, SupportLargerThanRowsClamps) {
  ExampleTable et({"A"});
  et.AddRow({"Mike"});
  auto relaxed = RetrieveCandidateColumnsRelaxed(db_, et, 99);
  EXPECT_EQ(relaxed, RetrieveCandidateColumns(db_, et));
}

TEST_F(RelaxedRetrievalTest, SupportZeroAdmitsEveryColumn) {
  ExampleTable et({"A"});
  et.AddRow({"Zelda"});
  auto relaxed = RetrieveCandidateColumnsRelaxed(db_, et, 0);
  EXPECT_EQ(relaxed[0].size(),
            static_cast<size_t>(db_.TotalTextColumns()));
}

TEST_F(RelaxedRetrievalTest, RelaxedIsSupersetOfStrict) {
  ExampleTable et = MakeFigure2ExampleTable();
  auto strict = RetrieveCandidateColumns(db_, et);
  for (int k = 0; k <= et.num_rows(); ++k) {
    auto relaxed = RetrieveCandidateColumnsRelaxed(db_, et, k);
    for (size_t c = 0; c < strict.size(); ++c) {
      for (const ColumnRef& col : strict[c]) {
        EXPECT_NE(std::find(relaxed[c].begin(), relaxed[c].end(), col),
                  relaxed[c].end());
      }
    }
  }
}

}  // namespace
}  // namespace qbe
