// Differential test suite for the verification algorithms and the parallel
// batched engine (DESIGN.md §9).
//
// Over ≥ 200 seeded random database/ET instances it asserts:
//
//  1. FILTER (lazy and exact), VERIFYALL and SIMPLEPRUNE return identical
//     minimal-valid-query sets (the paper's §2.3 invariant), and
//  2. the parallel engine at 1, 2 and 8 threads is bit-identical to the
//     serial output — same validity vector AND, for a fixed batch size,
//     the same number of evaluated existence queries at every thread count
//     (the determinism contract: thread count never changes anything).
//
// Instances are drawn as 20 seeded scaled-retailer databases × 10 random
// ETs each = 200 (database, ET) pairs, sharded into gtest params so
// failures name the offending seed.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/candidate_gen.h"
#include "core/discovery.h"
#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "core/weave.h"
#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "exec/executor.h"

namespace qbe {
namespace {

constexpr int kEtsPerSeed = 10;

struct Workbench {
  explicit Workbench(uint64_t seed)
      : db(MakeScaledRetailerDatabase(30, 30, 12, 12, 120, 120, 50, seed)),
        graph(db),
        exec(db, graph) {}

  Database db;
  SchemaGraph graph;
  Executor exec;
};

std::vector<ExampleTable> RandomEts(Workbench& wb, uint64_t seed) {
  EtSource::Options options;
  options.num_matrices = 4;
  options.min_text_cols = 3;
  options.min_matrix_rows = 6;
  EtSource source(wb.db, wb.graph, wb.exec, seed, options);
  EtParams params;
  params.m = 3;
  params.n = 3;
  params.s = 0.3;
  params.v = 1;
  return source.SampleMany(params, kEtsPerSeed, seed * 131 + 7);
}

VerifyOptions Engine(int threads, int batch = 4) {
  VerifyOptions verify;
  verify.threads = threads;
  verify.batch_size = batch;
  return verify;
}

/// Runs `algo` under `verify` and returns (valid set, #verifications).
std::pair<std::vector<bool>, int64_t> RunEngine(const Workbench& wb,
                                                const ExampleTable& et,
                                                const std::vector<
                                                    CandidateQuery>& cands,
                                                CandidateVerifier& algo,
                                                VerifyOptions verify,
                                                uint64_t seed) {
  VerifyContext ctx{wb.db, wb.graph, wb.exec, et, cands, seed};
  ctx.verify = verify;
  VerificationCounters counters;
  std::vector<bool> valid = algo.Verify(ctx, &counters);
  return {std::move(valid), counters.verifications};
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// Part 1: algorithm agreement — all verifiers compute the same minimal
// valid set on every instance.
TEST_P(DifferentialTest, AlgorithmsAgreeOnRandomInstances) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  int instances = 0;
  for (const ExampleTable& et : RandomEts(wb, seed + 1000)) {
    ++instances;
    std::vector<CandidateQuery> cands =
        GenerateCandidates(wb.db, wb.graph, et, {});
    if (cands.empty()) continue;

    VerifyAll verify_all(RowOrder::kDenseFirst);
    auto [reference, ref_verifs] =
        RunEngine(wb, et, cands, verify_all, Engine(1), seed);

    SimplePrune simple_prune(RowOrder::kDenseFirst);
    FilterVerifier filter_lazy(0.1, true);
    FilterVerifier filter_exact(0.1, false);
    CandidateVerifier* algos[] = {&simple_prune, &filter_lazy, &filter_exact};
    for (CandidateVerifier* algo : algos) {
      auto [valid, verifs] =
          RunEngine(wb, et, cands, *algo, Engine(1), seed);
      EXPECT_EQ(valid, reference)
          << algo->name() << " disagrees with VerifyAll (seed " << seed
          << ", instance " << instances << ")";
    }
  }
  EXPECT_EQ(instances, kEtsPerSeed);
}

// Part 2: thread-count determinism — for each verifier, 1/2/8 threads
// produce the serial validity vector, and 2 vs 8 threads (the batched
// engine) spend the identical number of verifications.
TEST_P(DifferentialTest, ParallelEngineIsBitIdenticalAcrossThreadCounts) {
  uint64_t seed = GetParam();
  Workbench wb(seed);
  for (const ExampleTable& et : RandomEts(wb, seed + 2000)) {
    std::vector<CandidateQuery> cands =
        GenerateCandidates(wb.db, wb.graph, et, {});
    if (cands.empty()) continue;

    VerifyAll verify_all(RowOrder::kDenseFirst);
    SimplePrune simple_prune(RowOrder::kDenseFirst);
    FilterVerifier filter_lazy(0.1, true);
    FilterVerifier filter_exact(0.1, false);
    CandidateVerifier* algos[] = {&verify_all, &simple_prune, &filter_lazy,
                                  &filter_exact};
    for (CandidateVerifier* algo : algos) {
      auto [serial, serial_verifs] =
          RunEngine(wb, et, cands, *algo, Engine(1), seed);
      int64_t batched_verifs = -1;
      for (int threads : {1, 2, 8}) {
        auto [valid, verifs] =
            RunEngine(wb, et, cands, *algo, Engine(threads), seed);
        EXPECT_EQ(valid, serial)
            << algo->name() << " at " << threads
            << " threads diverges from serial (seed " << seed << ")";
        if (threads == 1) {
          // threads == 1 runs the serial reference path itself.
          EXPECT_EQ(verifs, serial_verifs) << algo->name();
        } else if (batched_verifs < 0) {
          batched_verifs = verifs;
        } else {
          EXPECT_EQ(verifs, batched_verifs)
              << algo->name() << " verification count depends on the "
              << "thread count (seed " << seed << ")";
        }
      }
      // VerifyAll fans out strictly independent work, so its batched
      // engine must also match the serial verification count exactly.
      if (algo == &verify_all && batched_verifs >= 0) {
        EXPECT_EQ(batched_verifs, serial_verifs) << algo->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

// Part 3: verification-count regression harness. The serial per-algorithm
// verification counts over all 200 seeded instances are snapshotted into
// tests/golden/verify_counts.json (key "sNN.eNN.algo"); any drift fails.
// Counts are the paper's cost currency (Table 4, Figure 9): a pruning or
// filter-scheduling regression shows up here even when the valid sets —
// which parts 1 and 2 pin — still agree. Regenerate intentionally with
//   QBE_UPDATE_GOLDEN=1 ctest -R differential_test

using CountMap = std::map<std::string, int64_t>;

std::string InstanceKey(uint64_t seed, int et, const char* algo) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "s%02llu.e%02d.%s",
                static_cast<unsigned long long>(seed), et, algo);
  return buf;
}

CountMap CollectVerifyCounts() {
  CountMap counts;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Workbench wb(seed);
    int e = 0;
    for (const ExampleTable& et : RandomEts(wb, seed + 1000)) {
      std::vector<CandidateQuery> cands =
          GenerateCandidates(wb.db, wb.graph, et, {});
      ++e;
      if (cands.empty()) continue;
      VerifyAll verify_all(RowOrder::kDenseFirst);
      SimplePrune simple_prune(RowOrder::kDenseFirst);
      FilterVerifier filter_lazy(0.1, true);
      FilterVerifier filter_exact(0.1, false);
      JoinTreeWeave weave;
      std::pair<const char*, CandidateVerifier*> algos[] = {
          {"verifyall", &verify_all},   {"simpleprune", &simple_prune},
          {"filter", &filter_lazy},     {"filterexact", &filter_exact},
          {"weave", &weave}};
      for (auto [name, algo] : algos) {
        auto [valid, verifs] =
            RunEngine(wb, et, cands, *algo, Engine(1), seed);
        (void)valid;
        counts[InstanceKey(seed, e - 1, name)] = verifs;
      }
    }
  }
  return counts;
}

std::string GoldenPath() {
  return std::string(QBE_GOLDEN_DIR) + "/verify_counts.json";
}

void WriteGolden(const CountMap& counts) {
  std::ofstream out(GoldenPath());
  ASSERT_TRUE(out.is_open()) << "cannot write " << GoldenPath();
  out << "{\n";
  size_t i = 0;
  for (const auto& [key, value] : counts) {
    out << "  \"" << key << "\": " << value
        << (++i == counts.size() ? "\n" : ",\n");
  }
  out << "}\n";
}

/// Parses the flat {"key": int, ...} golden file; false on read failure.
bool ReadGolden(CountMap* counts) {
  std::ifstream in(GoldenPath());
  if (!in.is_open()) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) return false;
    std::string key = text.substr(pos + 1, end - pos - 1);
    size_t colon = text.find(':', end);
    if (colon == std::string::npos) return false;
    (*counts)[key] = std::strtoll(text.c_str() + colon + 1, nullptr, 10);
    pos = end + 1;
  }
  return !counts->empty();
}

TEST(VerifyCountGoldenTest, CountsMatchGoldenSnapshot) {
  CountMap counts = CollectVerifyCounts();
  ASSERT_FALSE(counts.empty());

  if (std::getenv("QBE_UPDATE_GOLDEN") != nullptr) {
    WriteGolden(counts);
    GTEST_LOG_(INFO) << "wrote " << counts.size() << " counts to "
                     << GoldenPath();
    return;
  }

  CountMap golden;
  ASSERT_TRUE(ReadGolden(&golden))
      << GoldenPath() << " missing or unreadable; regenerate with "
      << "QBE_UPDATE_GOLDEN=1";

  // Compare both directions with per-key messages: a bare map EXPECT_EQ
  // would drown the signal in one giant diff.
  for (const auto& [key, value] : golden) {
    auto it = counts.find(key);
    if (it == counts.end()) {
      ADD_FAILURE() << "instance " << key
                    << " missing from this run (golden has " << value << ")";
    } else {
      EXPECT_EQ(it->second, value)
          << "verification count drift on " << key;
    }
  }
  for (const auto& [key, value] : counts) {
    EXPECT_TRUE(golden.count(key))
        << "new instance " << key << " (" << value
        << " verifications) absent from golden; regenerate if intended";
  }
}

// End-to-end determinism: DiscoverQueries with the parallel engine returns
// the same ranked queries (SQL and order) as the serial engine.
TEST(DifferentialDiscoveryTest, DiscoverQueriesMatchesSerialEndToEnd) {
  Workbench wb(99);
  for (const ExampleTable& et : RandomEts(wb, 4242)) {
    DiscoveryOptions serial;
    DiscoveryResult reference = DiscoverQueries(wb.db, et, serial);

    for (int threads : {2, 8}) {
      DiscoveryOptions par;
      par.verify.threads = threads;
      par.verify.batch_size = 4;
      DiscoveryResult result = DiscoverQueries(wb.db, et, par);
      ASSERT_EQ(result.ok(), reference.ok());
      ASSERT_EQ(result.queries.size(), reference.queries.size());
      for (size_t i = 0; i < result.queries.size(); ++i) {
        EXPECT_EQ(result.queries[i].sql, reference.queries[i].sql);
        EXPECT_EQ(result.queries[i].score, reference.queries[i].score);
      }
    }
  }
}

}  // namespace
}  // namespace qbe
