#include "ingest/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace qbe {
namespace {

class WalTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    std::string path = testing::TempDir() + "/wal_" + name + ".qbel";
    std::filesystem::remove(path);
    return path;
  }

  static std::vector<WalRecord> SampleRecords() {
    std::vector<WalRecord> records;
    WalRecord append1;
    append1.kind = WalRecord::kAppend;
    append1.rel = 0;
    append1.values = {Value{int64_t{42}}, Value{std::string("laptop bag")}};
    records.push_back(append1);

    WalRecord tombstone;
    tombstone.kind = WalRecord::kTombstone;
    tombstone.rel = 1;
    tombstone.row = 7;
    records.push_back(tombstone);

    WalRecord append2;
    append2.kind = WalRecord::kAppend;
    append2.rel = 2;
    append2.values = {Value{std::string("")}, Value{int64_t{-5}},
                      Value{std::string("pad thai with peanuts")}};
    records.push_back(append2);
    return records;
  }

  /// The raw on-disk image of header + `records`.
  static std::string EncodeLog(const std::vector<WalRecord>& records) {
    std::string bytes = EncodeWalHeader();
    for (const WalRecord& record : records) EncodeWalRecord(record, &bytes);
    return bytes;
  }

  /// Byte offsets at which a record ends (i.e. clean truncation points),
  /// including the bare header.
  static std::vector<size_t> RecordBoundaries(
      const std::vector<WalRecord>& records) {
    std::vector<size_t> boundaries;
    std::string bytes = EncodeWalHeader();
    boundaries.push_back(bytes.size());
    for (const WalRecord& record : records) {
      EncodeWalRecord(record, &bytes);
      boundaries.push_back(bytes.size());
    }
    return boundaries;
  }

  static void WriteBytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
};

TEST_F(WalTest, MissingFileReadsAsEmptyLog) {
  WalReadResult result = ReadWal(TempPath("missing"));
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.records.empty());
  EXPECT_FALSE(result.truncated_tail);
}

TEST_F(WalTest, WriterRoundTrip) {
  std::string path = TempPath("roundtrip");
  std::vector<WalRecord> records = SampleRecords();
  {
    WalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.Open(path, &error)) << error;
    for (const WalRecord& record : records) {
      ASSERT_TRUE(writer.Append(record, &error)) << error;
    }
    ASSERT_TRUE(writer.Sync(&error)) << error;
  }
  WalReadResult result = ReadWal(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.truncated_tail);
  EXPECT_EQ(result.records, records);
}

TEST_F(WalTest, ReopenAppendsWithoutDuplicatingHeader) {
  std::string path = TempPath("reopen");
  std::vector<WalRecord> records = SampleRecords();
  std::string error;
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, &error)) << error;
    ASSERT_TRUE(writer.Append(records[0], &error)) << error;
    ASSERT_TRUE(writer.Sync(&error)) << error;
  }
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(path, &error)) << error;
    ASSERT_TRUE(writer.Append(records[1], &error)) << error;
    ASSERT_TRUE(writer.Append(records[2], &error)) << error;
    ASSERT_TRUE(writer.Sync(&error)) << error;
  }
  WalReadResult result = ReadWal(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records, records);
}

TEST_F(WalTest, TruncateReplacesContentsAtomically) {
  std::string path = TempPath("truncate");
  std::vector<WalRecord> records = SampleRecords();
  std::string error;
  WalWriter writer;
  ASSERT_TRUE(writer.Open(path, &error)) << error;
  for (const WalRecord& record : records) {
    ASSERT_TRUE(writer.Append(record, &error)) << error;
  }
  ASSERT_TRUE(writer.Sync(&error)) << error;

  // Keep only the tail record (a compaction that merged the first two).
  std::vector<WalRecord> keep = {records[2]};
  ASSERT_TRUE(writer.Truncate(keep, &error)) << error;
  WalReadResult after = ReadWal(path);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_EQ(after.records, keep);

  // The writer stays usable on the new log.
  ASSERT_TRUE(writer.Append(records[0], &error)) << error;
  ASSERT_TRUE(writer.Sync(&error)) << error;
  after = ReadWal(path);
  ASSERT_TRUE(after.ok) << after.error;
  std::vector<WalRecord> expected = {records[2], records[0]};
  EXPECT_EQ(after.records, expected);
}

// The crash matrix, part 1: a write can tear at ANY byte boundary. Every
// truncation must either be rejected cleanly (shorter than the header) or
// replay exactly the complete-record prefix with truncated_tail set for
// partial frames — never a record that was not fully written, never a
// spurious hard error (mirrors snapshot_test.cc's corruption matrix).
TEST_F(WalTest, EveryByteTruncationYieldsExactPrefixOrCleanRejection) {
  std::string path = TempPath("truncation_matrix");
  std::vector<WalRecord> records = SampleRecords();
  std::string bytes = EncodeLog(records);
  std::vector<size_t> boundaries = RecordBoundaries(records);

  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteBytes(path, bytes.substr(0, len));
    WalReadResult result = ReadWal(path);
    if (len < boundaries[0]) {
      // Shorter than the 16-byte header: unusable, hard rejection.
      EXPECT_FALSE(result.ok) << "len=" << len;
      EXPECT_FALSE(result.error.empty()) << "len=" << len;
      continue;
    }
    // Complete records that fit entirely within `len`.
    size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= len) {
      ++complete;
    }
    ASSERT_TRUE(result.ok) << "len=" << len << ": " << result.error;
    ASSERT_EQ(result.records.size(), complete) << "len=" << len;
    for (size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(result.records[i], records[i]) << "len=" << len;
    }
    const bool at_boundary = len == boundaries[complete];
    EXPECT_EQ(result.truncated_tail, !at_boundary) << "len=" << len;
  }
}

// The crash matrix, part 2: flip one bit at every byte position. The reader
// must never deliver the full log as-written: either a hard checksum /
// header rejection, or (when a flipped length field makes the final frame
// look torn) the exact prefix of records before the damage. The only
// exception is the header's reserved field, which is documented as ignored.
TEST_F(WalTest, EveryByteFlipIsRejectedOrYieldsStrictPrefix) {
  std::string path = TempPath("flip_matrix");
  std::vector<WalRecord> records = SampleRecords();
  std::string bytes = EncodeLog(records);

  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x01);
    WriteBytes(path, damaged);
    WalReadResult result = ReadWal(path);

    if (pos >= 12 && pos < 16) {
      // Reserved header bytes: not interpreted, log reads back intact.
      EXPECT_TRUE(result.ok) << "pos=" << pos << ": " << result.error;
      EXPECT_EQ(result.records, records) << "pos=" << pos;
      continue;
    }
    if (pos < 12) {
      // Magic or version damage: hard rejection.
      EXPECT_FALSE(result.ok) << "pos=" << pos;
      continue;
    }
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty()) << "pos=" << pos;
      continue;  // checksum / kind / payload rejection — clean failure
    }
    // Accepted despite damage: only legal as a strict prefix replay (a
    // flipped length prefix pushed the frame past EOF → torn tail).
    EXPECT_TRUE(result.truncated_tail) << "pos=" << pos;
    ASSERT_LT(result.records.size(), records.size()) << "pos=" << pos;
    for (size_t i = 0; i < result.records.size(); ++i) {
      EXPECT_EQ(result.records[i], records[i]) << "pos=" << pos;
    }
  }
}

TEST_F(WalTest, UnknownRecordKindIsRejected) {
  std::string path = TempPath("bad_kind");
  WalRecord bogus;
  bogus.kind = 3;  // not a valid Kind; EncodeWalRecord frames it anyway
  bogus.rel = 0;
  bogus.row = 1;
  std::string bytes = EncodeWalHeader();
  EncodeWalRecord(bogus, &bytes);
  WriteBytes(path, bytes);
  WalReadResult result = ReadWal(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown kind"), std::string::npos)
      << result.error;
}

}  // namespace
}  // namespace qbe
