// Edge-case behaviours pinned down as tests: tokenizer byte handling,
// empty-cell indexing, database move semantics, degenerate candidate
// inputs, and counter accounting invariants.

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/filter_verifier.h"
#include "core/verify_all.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "text/inverted_index.h"
#include "text/tokenizer.h"

namespace qbe {
namespace {

TEST(TokenizerEdgeTest, NonAsciiBytesAreSeparators) {
  // The tokenizer is ASCII-only by contract: multi-byte UTF-8 sequences
  // act as separators, so accented names degrade to their ASCII runs
  // rather than corrupting tokens.
  std::vector<std::string> tokens = Tokenize("caf\xc3\xa9 noir");
  EXPECT_EQ(tokens, (std::vector<std::string>{"caf", "noir"}));
}

TEST(TokenizerEdgeTest, LongRunsAndMixedAlnum) {
  EXPECT_EQ(Tokenize("x1y2z3"), (std::vector<std::string>{"x1y2z3"}));
  EXPECT_EQ(Tokenize("a-b_c.d"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(InvertedIndexEdgeTest, EmptyCellsIndexedAsNoTokens) {
  InvertedIndex index;
  index.Build({"", "hello", ""});
  EXPECT_EQ(index.num_rows(), 3u);
  EXPECT_EQ(index.MatchPhrase({"hello"}), (std::vector<uint32_t>{1}));
  // Empty phrase matches all rows including empty cells.
  EXPECT_EQ(index.MatchPhrase({}).size(), 3u);
}

TEST(InvertedIndexEdgeTest, BuildIsIdempotent) {
  InvertedIndex index;
  index.Build({"a b", "c"});
  index.Build({"x"});
  EXPECT_EQ(index.num_rows(), 1u);
  EXPECT_TRUE(index.MatchPhrase({"a"}).empty());
  EXPECT_EQ(index.MatchPhrase({"x"}).size(), 1u);
}

TEST(DatabaseEdgeTest, MoveSemanticsPreserveIndexes) {
  Database db = MakeRetailerDatabase();
  Database moved = std::move(db);
  EXPECT_EQ(moved.num_relations(), 7);
  int customer = moved.RelationIdByName("Customer");
  EXPECT_EQ(moved.PkLookup(customer, 0, 1), 0);
  EXPECT_EQ(moved.column_index().ColumnsContaining({"mike"}).size(), 2u);
}

TEST(CandidateGenEdgeTest, SingleColumnSingleRow) {
  Database db = MakeRetailerDatabase();
  SchemaGraph graph(db);
  ExampleTable et({"A"});
  et.AddRow({"Evernote"});
  auto candidates = GenerateCandidates(db, graph, et, {});
  // Evernote is never referenced by Sales/Owner rows? It is (app 2 sold
  // and owned). Candidates include the App singleton at minimum.
  ASSERT_FALSE(candidates.empty());
  for (const CandidateQuery& q : candidates) {
    EXPECT_TRUE(IsMinimalCandidate(q, graph));
  }
}

TEST(CandidateGenEdgeTest, MaxJoinTreeSizeOne) {
  Database db = MakeRetailerDatabase();
  SchemaGraph graph(db);
  ExampleTable et({"A", "B"});
  et.AddRow({"Office", "crash"});
  CandidateGenOptions options;
  options.max_join_tree_size = 1;
  for (const CandidateQuery& q : GenerateCandidates(db, graph, et, options)) {
    EXPECT_EQ(q.tree.NumVertices(), 1);
  }
}

TEST(CounterEdgeTest, EstimatedCostIsSumOfTreeSizes) {
  Database db = MakeRetailerDatabase();
  SchemaGraph graph(db);
  Executor exec(db, graph);
  ExampleTable et = MakeFigure2ExampleTable();
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db, graph, et, {});
  VerifyContext ctx{db, graph, exec, et, candidates, 1};
  VerifyAll verify_all(RowOrder::kGiven);
  VerificationCounters counters;
  verify_all.Verify(ctx, &counters);
  // All Figure 2 candidates have 4-relation trees, so the total estimated
  // cost must be 4 × #verifications.
  EXPECT_EQ(counters.estimated_cost, 4 * counters.verifications);
}

TEST(FilterVerifierEdgeTest, AllCandidatesInvalid) {
  Database db = MakeRetailerDatabase();
  SchemaGraph graph(db);
  Executor exec(db, graph);
  // (Mike, Evernote): nobody named Mike bought/owns Evernote.
  ExampleTable et({"A", "B"});
  et.AddRow({"Mike", "Evernote"});
  et.AddRow({"Mary", "Office"});
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db, graph, et, {});
  if (candidates.empty()) GTEST_SKIP();
  VerifyContext ctx{db, graph, exec, et, candidates, 1};
  FilterVerifier filter;
  VerificationCounters counters;
  std::vector<bool> valid = filter.Verify(ctx, &counters);
  VerifyAll reference;
  VerificationCounters c2;
  EXPECT_EQ(valid, reference.Verify(ctx, &c2));
}

TEST(FilterVerifierEdgeTest, DeterministicAcrossRuns) {
  Database db = MakeRetailerDatabase();
  SchemaGraph graph(db);
  Executor exec(db, graph);
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions gen;
  gen.max_join_tree_size = 5;
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db, graph, et, gen);
  VerifyContext ctx{db, graph, exec, et, candidates, 1};
  FilterVerifier filter;
  VerificationCounters c1, c2;
  std::vector<bool> v1 = filter.Verify(ctx, &c1);
  std::vector<bool> v2 = filter.Verify(ctx, &c2);
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(c1.verifications, c2.verifications);
  EXPECT_EQ(c1.estimated_cost, c2.estimated_cost);
}

}  // namespace
}  // namespace qbe
