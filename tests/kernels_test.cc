// Differential test suite for the runtime-dispatched SIMD kernel layer
// (src/kernels/, DESIGN.md §14).
//
// The layer's whole contract is bit-identity: whatever CPU level dispatch
// picks (scalar, SSE4.2, AVX2), every kernel must produce byte-for-byte the
// output of the portable scalar oracle. This suite enforces that at three
// granularities:
//
//  1. raw kernel differentials — every KernelOps entry of every supported
//     level against an independent std:: oracle, across sizes 0..1k,
//     overlap densities, the 16x gallop-boundary shapes, block-unaligned
//     tails, and adversarial bit patterns;
//  2. wrapper semantics — the IntersectSorted*/IntersectShifted*/Bitmap*
//     wrappers under ForceKernelLevel, including the gallop hybrid and the
//     zero-extension rule of BitmapAnd;
//  3. end-to-end — 20 seeded scaled-retailer databases × 10 random ETs =
//     200 discovery instances run under every supported level: ranked
//     query sets, scores, candidate counts and verification counts must
//     all match the scalar run exactly.
//
// Plus unit tests for the QBE_KERNEL parsing / dispatch plumbing itself.

#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"

namespace qbe {
namespace {

std::vector<KernelLevel> SupportedLevels() {
  std::vector<KernelLevel> levels;
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kSse, KernelLevel::kAvx2}) {
    if (KernelLevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

/// RAII guard: forces a level for one scope, restores the previous one.
class ScopedLevel {
 public:
  explicit ScopedLevel(KernelLevel level) : prev_(ActiveKernelLevel()) {
    ForceKernelLevel(level);
  }
  ~ScopedLevel() { ForceKernelLevel(prev_); }

 private:
  KernelLevel prev_;
};

std::vector<uint32_t> RandomSortedUnique32(std::mt19937_64& rng, size_t n,
                                           uint32_t universe) {
  std::vector<uint32_t> v;
  v.reserve(n);
  std::uniform_int_distribution<uint32_t> dist(0, universe);
  for (size_t i = 0; i < n; ++i) v.push_back(dist(rng));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<uint64_t> RandomSortedUnique64(std::mt19937_64& rng, size_t n,
                                           uint64_t universe) {
  std::vector<uint64_t> v;
  v.reserve(n);
  std::uniform_int_distribution<uint64_t> dist(0, universe);
  for (size_t i = 0; i < n; ++i) v.push_back(dist(rng));
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// 1. Raw kernel differentials vs independent std:: oracles.

/// Checks ops.intersect_u32 on (a, b) against std::set_intersection,
/// in both argument orders (the kernel must be symmetric in its result).
void CheckIntersectU32(const KernelOps& ops, const char* level_name,
                       const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  std::vector<uint32_t> expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
  for (int order = 0; order < 2; ++order) {
    const auto& x = order == 0 ? a : b;
    const auto& y = order == 0 ? b : a;
    std::vector<uint32_t> out(std::min(x.size(), y.size()) + kIntersectPad32,
                              0xDEADBEEFu);
    size_t n = ops.intersect_u32(x.data(), x.size(), y.data(), y.size(),
                                 out.data());
    ASSERT_EQ(n, expected.size())
        << level_name << " |a|=" << x.size() << " |b|=" << y.size();
    out.resize(n);
    EXPECT_EQ(out, expected)
        << level_name << " |a|=" << x.size() << " |b|=" << y.size();
  }
}

TEST(IntersectU32Test, AllLevelsMatchOracleAcrossSizesAndDensities) {
  std::mt19937_64 rng(20260808);
  // Sizes straddle every SIMD block boundary (4 for SSE, 8 for AVX2) plus
  // zero/one/odd tails and up-to-1k bulk.
  const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17,
                           31, 32, 33, 63, 64, 65, 100, 127, 128, 129,
                           255, 256, 257, 500, 1000};
  // Universe width controls overlap density: tight universe → dense
  // overlap, wide universe → sparse.
  const uint32_t kUniverses[] = {16, 256, 4096, 1u << 20};
  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = KernelOpsFor(level);
    for (size_t na : kSizes) {
      for (size_t nb : kSizes) {
        if (na > nb) continue;  // CheckIntersectU32 runs both orders
        for (uint32_t universe : kUniverses) {
          CheckIntersectU32(ops, KernelLevelName(level),
                            RandomSortedUnique32(rng, na, universe),
                            RandomSortedUnique32(rng, nb, universe));
        }
      }
    }
  }
}

TEST(IntersectU32Test, AdversarialPatterns) {
  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = KernelOpsFor(level);
    const char* name = KernelLevelName(level);
    // Identical inputs: everything survives.
    std::vector<uint32_t> ramp(100);
    for (uint32_t i = 0; i < 100; ++i) ramp[i] = i * 3 + 1;
    CheckIntersectU32(ops, name, ramp, ramp);
    // Disjoint interleaved (evens vs odds): nothing survives, but every
    // SIMD comparison block is "almost equal".
    std::vector<uint32_t> evens, odds;
    for (uint32_t i = 0; i < 64; ++i) {
      evens.push_back(2 * i);
      odds.push_back(2 * i + 1);
    }
    CheckIntersectU32(ops, name, evens, odds);
    // Block-max ties: values repeat at exactly the 4/8-lane stride so the
    // amax==bmax advance-both path triggers.
    std::vector<uint32_t> strided_a, strided_b;
    for (uint32_t i = 0; i < 96; ++i) strided_a.push_back(i);
    for (uint32_t i = 0; i < 96; i += 8) strided_b.push_back(i + 7);
    CheckIntersectU32(ops, name, strided_a, strided_b);
    // Extreme values incl. sign-bit patterns (kernels must be unsigned).
    std::vector<uint32_t> hi = {0u, 1u, 0x7FFFFFFFu, 0x80000000u,
                                0xFFFFFFFEu, 0xFFFFFFFFu};
    CheckIntersectU32(ops, name, hi, hi);
    CheckIntersectU32(ops, name, hi, {0x7FFFFFFFu, 0x80000001u});
  }
}

TEST(IntersectU32Test, UnalignedTailsViaOffsetSubspans) {
  std::mt19937_64 rng(7);
  std::vector<uint32_t> a = RandomSortedUnique32(rng, 300, 2048);
  std::vector<uint32_t> b = RandomSortedUnique32(rng, 300, 2048);
  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = KernelOpsFor(level);
    for (size_t off_a : {0u, 1u, 3u, 5u, 7u}) {
      for (size_t off_b : {0u, 2u, 6u}) {
        std::vector<uint32_t> sub_a(a.begin() + off_a, a.end());
        std::vector<uint32_t> sub_b(b.begin() + off_b, b.end() - off_b);
        CheckIntersectU32(ops, KernelLevelName(level), sub_a, sub_b);
      }
    }
  }
}

void CheckShiftedU64(const KernelOps& ops, const char* level_name,
                     const std::vector<uint64_t>& cand,
                     const std::vector<uint64_t>& span, uint64_t shift) {
  std::vector<uint64_t> expected;
  for (uint64_t c : cand) {
    if (std::binary_search(span.begin(), span.end(), c + shift)) {
      expected.push_back(c);
    }
  }
  std::vector<uint64_t> out(cand.size() + kIntersectPad64,
                            0xFEEDFACEFEEDFACEull);
  size_t n = ops.intersect_shifted_u64(cand.data(), cand.size(), span.data(),
                                       span.size(), shift, out.data());
  ASSERT_EQ(n, expected.size())
      << level_name << " |cand|=" << cand.size() << " |span|=" << span.size()
      << " shift=" << shift;
  out.resize(n);
  EXPECT_EQ(out, expected) << level_name << " shift=" << shift;
}

TEST(IntersectShiftedU64Test, AllLevelsMatchOracle) {
  std::mt19937_64 rng(99);
  const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 8, 9, 16, 17, 33, 64, 100, 257};
  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = KernelOpsFor(level);
    for (size_t nc : kSizes) {
      for (size_t ns : kSizes) {
        for (uint64_t shift : {0ull, 1ull, 2ull, 5ull}) {
          // Posting-shaped values (row<<32 | pos) with a small position
          // universe so shifted hits actually occur.
          std::vector<uint64_t> cand, span;
          for (uint64_t v : RandomSortedUnique64(rng, nc, 500)) {
            cand.push_back(((v >> 4) << 32) | (v & 15));
          }
          for (uint64_t v : RandomSortedUnique64(rng, ns, 500)) {
            span.push_back(((v >> 4) << 32) | (v & 15));
          }
          std::sort(cand.begin(), cand.end());
          cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
          std::sort(span.begin(), span.end());
          span.erase(std::unique(span.begin(), span.end()), span.end());
          CheckShiftedU64(ops, KernelLevelName(level), cand, span, shift);
        }
      }
    }
  }
}

TEST(IntersectShiftedU64Test, SelfShiftAndHighBitPatterns) {
  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = KernelOpsFor(level);
    const char* name = KernelLevelName(level);
    // shift=0 over identical arrays: everything survives.
    std::vector<uint64_t> ramp;
    for (uint64_t i = 0; i < 70; ++i) ramp.push_back(i * 7);
    CheckShiftedU64(ops, name, ramp, ramp, 0);
    // Consecutive positions: cand+1 ∈ cand for all but the last.
    std::vector<uint64_t> consecutive;
    for (uint64_t i = 0; i < 70; ++i) consecutive.push_back(i);
    CheckShiftedU64(ops, name, consecutive, consecutive, 1);
    // Values with the sign bit set: _mm_cmpeq_epi64 is bit-exact, but the
    // advance logic must stay unsigned.
    std::vector<uint64_t> hi = {0ull, 1ull, 0x7FFFFFFFFFFFFFFFull,
                                0x8000000000000000ull, 0x8000000000000001ull,
                                0xFFFFFFFFFFFFFFFEull};
    CheckShiftedU64(ops, name, hi, hi, 0);
    CheckShiftedU64(ops, name, hi, hi, 1);
  }
}

TEST(BitmapKernelsTest, AndAndEmitMatchOracle) {
  std::mt19937_64 rng(4242);
  const size_t kWordCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 40};
  for (KernelLevel level : SupportedLevels()) {
    const KernelOps& ops = KernelOpsFor(level);
    for (size_t nw : kWordCounts) {
      // Density sweep incl. all-zero and all-ones words; long zero runs
      // exercise the wide levels' 256-bit block skip.
      for (int density = 0; density < 4; ++density) {
        std::vector<uint64_t> words(nw), other(nw);
        for (size_t i = 0; i < nw; ++i) {
          switch (density) {
            case 0: words[i] = 0; other[i] = rng(); break;
            case 1: words[i] = ~0ull; other[i] = ~0ull; break;
            case 2:  // sparse: a few bits, zero runs between
              words[i] = (i % 3 == 0) ? (1ull << (i % 64)) : 0;
              other[i] = (i % 5 == 0) ? words[i] : ~0ull;
              break;
            default: words[i] = rng(); other[i] = rng();
          }
        }
        // bitmap_and vs scalar loop.
        std::vector<uint64_t> got = words;
        ops.bitmap_and(got.data(), other.data(), nw);
        std::vector<uint64_t> expected = words;
        for (size_t i = 0; i < nw; ++i) expected[i] &= other[i];
        EXPECT_EQ(got, expected)
            << KernelLevelName(level) << " nw=" << nw << " d=" << density;
        // bitmap_emit vs bit loop.
        std::vector<uint32_t> rows_expected;
        for (size_t i = 0; i < nw; ++i) {
          for (int b = 0; b < 64; ++b) {
            if ((expected[i] >> b) & 1) {
              rows_expected.push_back(static_cast<uint32_t>(i * 64 + b));
            }
          }
        }
        std::vector<uint32_t> rows(nw * 64 + 1, 0xABABABABu);
        size_t n = ops.bitmap_emit(expected.data(), nw, rows.data());
        ASSERT_EQ(n, rows_expected.size()) << KernelLevelName(level);
        rows.resize(n);
        EXPECT_EQ(rows, rows_expected)
            << KernelLevelName(level) << " nw=" << nw << " d=" << density;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Wrapper semantics under ForceKernelLevel.

TEST(WrapperTest, IntersectSortedGallopBoundary) {
  std::mt19937_64 rng(11);
  // Small=4 against large sizes straddling the 16x gallop threshold: 63
  // (dense merge), 64 (boundary), 65/128/1000 (gallop). All must agree
  // with the oracle at every level.
  for (KernelLevel level : SupportedLevels()) {
    ScopedLevel scoped(level);
    for (size_t small_n : {1u, 3u, 4u, 5u}) {
      for (size_t large_n : {16u, 60u, 63u, 64u, 65u, 66u, 128u, 1000u}) {
        std::vector<uint32_t> small =
            RandomSortedUnique32(rng, small_n, 4 * large_n);
        std::vector<uint32_t> large =
            RandomSortedUnique32(rng, large_n, 4 * large_n);
        std::vector<uint32_t> expected;
        std::set_intersection(small.begin(), small.end(), large.begin(),
                              large.end(), std::back_inserter(expected));
        std::vector<uint32_t> out;
        kernels::IntersectSortedInto(small, large, &out);
        EXPECT_EQ(out, expected)
            << KernelLevelName(level) << " " << small_n << "x" << large_n;
        kernels::IntersectSortedInto(large, small, &out);
        EXPECT_EQ(out, expected) << KernelLevelName(level) << " swapped";
        // In-place variant.
        std::vector<uint32_t> acc = small;
        std::vector<uint32_t> scratch;
        kernels::IntersectSortedInPlace(&acc, large, &scratch);
        EXPECT_EQ(acc, expected) << KernelLevelName(level) << " in-place";
      }
    }
  }
}

TEST(WrapperTest, IntOverloadsMatchUnsigned) {
  std::mt19937_64 rng(5);
  for (KernelLevel level : SupportedLevels()) {
    ScopedLevel scoped(level);
    std::vector<int> a, b;
    for (uint32_t v : RandomSortedUnique32(rng, 200, 1000)) {
      a.push_back(static_cast<int>(v));
    }
    for (uint32_t v : RandomSortedUnique32(rng, 150, 1000)) {
      b.push_back(static_cast<int>(v));
    }
    std::vector<int> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    std::vector<int> out;
    kernels::IntersectSortedInto(std::span<const int>(a),
                                 std::span<const int>(b), &out);
    EXPECT_EQ(out, expected) << KernelLevelName(level);
    std::vector<int> acc = a;
    std::vector<int> scratch;
    kernels::IntersectSortedInPlace(&acc, b, &scratch);
    EXPECT_EQ(acc, expected) << KernelLevelName(level);
  }
}

TEST(WrapperTest, IntersectShiftedInPlaceMatchesOracle) {
  std::mt19937_64 rng(13);
  for (KernelLevel level : SupportedLevels()) {
    ScopedLevel scoped(level);
    for (size_t ns : {8u, 100u, 2000u}) {  // 2000: gallop side of 16x
      std::vector<uint64_t> span = RandomSortedUnique64(rng, ns, 4 * ns);
      std::vector<uint64_t> cand = RandomSortedUnique64(rng, 50, 4 * ns);
      for (uint64_t shift : {0ull, 1ull, 3ull}) {
        std::vector<uint64_t> expected;
        for (uint64_t c : cand) {
          if (std::binary_search(span.begin(), span.end(), c + shift)) {
            expected.push_back(c);
          }
        }
        std::vector<uint64_t> acc = cand;
        std::vector<uint64_t> scratch;
        kernels::IntersectShiftedInPlace(&acc, span, shift, &scratch);
        EXPECT_EQ(acc, expected)
            << KernelLevelName(level) << " ns=" << ns << " shift=" << shift;
      }
    }
  }
}

TEST(WrapperTest, BitmapHelpersRoundTrip) {
  std::mt19937_64 rng(17);
  for (KernelLevel level : SupportedLevels()) {
    ScopedLevel scoped(level);
    const size_t kNumRows = 700;  // not a multiple of 64: partial last word
    std::vector<uint32_t> rows;
    std::uniform_int_distribution<uint32_t> dist(0, kNumRows - 1);
    for (int i = 0; i < 300; ++i) rows.push_back(dist(rng));  // dups ok
    std::vector<uint64_t> bits;
    kernels::BitmapClear(&bits, kNumRows);
    kernels::BitmapSetBatch(&bits, rows);
    for (uint32_t r : rows) EXPECT_TRUE(kernels::BitmapTest(bits, r));
    // Emit = sorted distinct rows.
    std::vector<uint32_t> sorted = rows;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<uint32_t> emitted;
    kernels::BitmapEmitInto(bits, &emitted);
    EXPECT_EQ(emitted, sorted) << KernelLevelName(level);
    // BitmapAnd zero-extends a shorter `other`: surviving rows are those
    // under 128 that the mask also has.
    std::vector<uint64_t> mask;
    kernels::BitmapClear(&mask, 128);
    for (uint32_t r : sorted) {
      if (r < 128 && r % 2 == 0) kernels::BitmapSet(&mask, r);
    }
    kernels::BitmapAnd(&bits, mask);
    std::vector<uint32_t> expected_and;
    for (uint32_t r : sorted) {
      if (r < 128 && r % 2 == 0) expected_and.push_back(r);
    }
    kernels::BitmapEmitInto(bits, &emitted);
    EXPECT_EQ(emitted, expected_and)
        << KernelLevelName(level) << " BitmapAnd zero-extension";
  }
}

// ---------------------------------------------------------------------------
// 3. Dispatch plumbing.

TEST(DispatchTest, ParseKernelLevel) {
  KernelLevel level;
  EXPECT_TRUE(ParseKernelLevel("scalar", &level));
  EXPECT_EQ(level, KernelLevel::kScalar);
  EXPECT_TRUE(ParseKernelLevel("sse", &level));
  EXPECT_EQ(level, KernelLevel::kSse);
  EXPECT_TRUE(ParseKernelLevel("avx2", &level));
  EXPECT_EQ(level, KernelLevel::kAvx2);
  EXPECT_FALSE(ParseKernelLevel("", &level));
  EXPECT_FALSE(ParseKernelLevel("avx512", &level));
  EXPECT_FALSE(ParseKernelLevel("SCALAR", &level));  // case-sensitive
  EXPECT_FALSE(ParseKernelLevel("scalar ", &level));
}

TEST(DispatchTest, LevelNamesRoundTrip) {
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kSse, KernelLevel::kAvx2}) {
    KernelLevel parsed;
    ASSERT_TRUE(ParseKernelLevel(KernelLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(DispatchTest, ScalarAlwaysSupportedAndForceable) {
  EXPECT_TRUE(KernelLevelSupported(KernelLevel::kScalar));
  KernelLevel prev = ActiveKernelLevel();
  ForceKernelLevel(KernelLevel::kScalar);
  EXPECT_EQ(ActiveKernelLevel(), KernelLevel::kScalar);
  EXPECT_EQ(&ActiveKernelOps(), &KernelOpsFor(KernelLevel::kScalar));
  ForceKernelLevel(prev);
  EXPECT_EQ(ActiveKernelLevel(), prev);
}

TEST(DispatchTest, WiderLevelsImplyNarrower) {
  // The CPUID lattice: AVX2 machines always have SSE4.2.
  if (KernelLevelSupported(KernelLevel::kAvx2)) {
    EXPECT_TRUE(KernelLevelSupported(KernelLevel::kSse));
  }
}

// ---------------------------------------------------------------------------
// 4. End-to-end: 200 discovery instances bit-identical across levels.

constexpr int kEtsPerSeed = 10;

struct Workbench {
  explicit Workbench(uint64_t seed)
      : db(MakeScaledRetailerDatabase(30, 30, 12, 12, 120, 120, 50, seed)),
        graph(db),
        exec(db, graph) {}

  Database db;
  SchemaGraph graph;
  Executor exec;
};

std::vector<ExampleTable> RandomEts(Workbench& wb, uint64_t seed) {
  EtSource::Options options;
  options.num_matrices = 4;
  options.min_text_cols = 3;
  options.min_matrix_rows = 6;
  EtSource source(wb.db, wb.graph, wb.exec, seed, options);
  EtParams params;
  params.m = 3;
  params.n = 3;
  params.s = 0.3;
  params.v = 1;
  return source.SampleMany(params, kEtsPerSeed, seed * 131 + 7);
}

/// Everything a discovery run outputs that a kernel bug could perturb.
struct InstanceOutcome {
  std::vector<std::string> sqls;
  std::vector<double> scores;
  size_t num_candidates = 0;
  int64_t verifications = 0;

  bool operator==(const InstanceOutcome&) const = default;
};

std::vector<InstanceOutcome> RunAllInstances(int threads) {
  std::vector<InstanceOutcome> outcomes;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Workbench wb(seed);
    for (const ExampleTable& et : RandomEts(wb, seed + 1000)) {
      DiscoveryOptions options;
      options.verify.threads = threads;
      options.verify.batch_size = 4;
      DiscoveryResult result = DiscoverQueries(wb.db, et, options);
      InstanceOutcome outcome;
      for (const auto& q : result.queries) {
        outcome.sqls.push_back(q.sql);
        outcome.scores.push_back(q.score);
      }
      outcome.num_candidates = result.num_candidates;
      outcome.verifications = result.counters.verifications;
      outcomes.push_back(std::move(outcome));
    }
  }
  return outcomes;
}

TEST(KernelEndToEndTest, DiscoveryBitIdenticalAcrossLevelsAndThreads) {
  std::vector<InstanceOutcome> reference;
  {
    ScopedLevel scoped(KernelLevel::kScalar);
    reference = RunAllInstances(/*threads=*/1);
  }
  ASSERT_EQ(reference.size(), 200u);

  for (KernelLevel level : SupportedLevels()) {
    ScopedLevel scoped(level);
    for (int threads : {1, 2, 8}) {
      // Thread counts >1 may schedule verification differently but must
      // still return identical queries; the serial runs must also match
      // verification counts exactly.
      std::vector<InstanceOutcome> got = RunAllInstances(threads);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].sqls, reference[i].sqls)
            << KernelLevelName(level) << " t=" << threads << " inst " << i;
        EXPECT_EQ(got[i].scores, reference[i].scores)
            << KernelLevelName(level) << " t=" << threads << " inst " << i;
        EXPECT_EQ(got[i].num_candidates, reference[i].num_candidates)
            << KernelLevelName(level) << " t=" << threads << " inst " << i;
        if (threads == 1) {
          EXPECT_EQ(got[i].verifications, reference[i].verifications)
              << KernelLevelName(level) << " verification-count drift on "
              << "instance " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace qbe
