#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace qbe {
namespace {

/// Reusable latch: tasks block in Wait() until the test calls Release(),
/// letting tests pin workers deterministically.
class Gate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(ThreadPoolTest, RunsEveryTask) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4, 128);
    for (int i = 1; i <= 100; ++i) {
      ASSERT_TRUE(pool.Submit([&sum, i] {
        sum.fetch_add(i, std::memory_order_relaxed);
      }));
    }
  }  // destructor drains
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, TrySubmitFastFailsWhenFull) {
  Gate gate;
  ThreadPool pool(1, 2);
  // Pin the single worker, then fill the 2-slot queue.
  ASSERT_TRUE(pool.TrySubmit([&gate] { gate.Wait(); }));
  // The pinned task may still be in the queue; poll until the worker has
  // dequeued it so exactly 2 slots are free.
  while (pool.QueueDepth() > 0) std::this_thread::yield();
  ASSERT_TRUE(pool.TrySubmit([] {}));
  ASSERT_TRUE(pool.TrySubmit([] {}));
  // Queue now holds 2 tasks: full.
  EXPECT_FALSE(pool.TrySubmit([] {}));
  gate.Release();
  pool.Shutdown();
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, SubmitBlocksForBackPressure) {
  Gate gate;
  std::atomic<int> ran{0};
  ThreadPool pool(1, 1);
  ASSERT_TRUE(pool.TrySubmit([&gate] { gate.Wait(); }));
  while (pool.QueueDepth() > 0) std::this_thread::yield();
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));  // fills queue
  // A blocking Submit from another thread must wait, then succeed once the
  // gate opens and the queue drains.
  std::thread submitter([&] {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(), 0);  // still gated, submitter still blocked
  gate.Release();
  submitter.join();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  Gate gate;
  std::atomic<int> ran{0};
  ThreadPool pool(1, 16);
  ASSERT_TRUE(pool.TrySubmit([&gate] { gate.Wait(); }));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  }
  gate.Release();
  pool.Shutdown();  // must run all 10 queued tasks before joining
  EXPECT_EQ(ran.load(), 10);
  // After shutdown both submission paths refuse.
  EXPECT_FALSE(pool.TrySubmit([] {}));
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ManyConcurrentSubmitters) {
  std::atomic<int> ran{0};
  ThreadPool pool(4, 8);
  std::vector<std::thread> submitters;
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 400);
}

}  // namespace
}  // namespace qbe
