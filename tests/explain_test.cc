#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/keyword_search.h"
#include "datagen/retailer.h"

namespace qbe {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : db_(MakeRetailerDatabase()) {}
  Database db_;
};

TEST_F(ExplainTest, Figure2Explain) {
  DiscoveryExplain explain =
      ExplainDiscovery(db_, MakeFigure2ExampleTable());
  ASSERT_EQ(explain.et_columns.size(), 3u);
  EXPECT_EQ(explain.et_columns[0].name, "A");
  EXPECT_EQ(explain.et_columns[0].candidate_columns,
            (std::vector<std::string>{"Customer.CustName",
                                      "Employee.EmpName"}));
  EXPECT_EQ(explain.et_columns[1].candidate_columns,
            (std::vector<std::string>{"Device.DevName"}));
  EXPECT_EQ(explain.num_candidates, 3u);
  EXPECT_EQ(explain.num_valid, 1u);
  EXPECT_GT(explain.num_filters, 0u);
  EXPECT_GT(explain.num_trivial_filters, 0u);
  EXPECT_LT(explain.num_trivial_filters, explain.num_filters);
  // All three candidates have 4-relation trees.
  EXPECT_EQ(explain.candidates_by_tree_size.at(4), 3u);
}

TEST_F(ExplainTest, MatchesPlainDiscovery) {
  DiscoveryOptions options;
  DiscoveryExplain explain =
      ExplainDiscovery(db_, MakeFigure2ExampleTable(), options);
  DiscoveryResult plain =
      DiscoverQueries(db_, MakeFigure2ExampleTable(), options);
  ASSERT_EQ(explain.queries.size(), plain.queries.size());
  for (size_t i = 0; i < plain.queries.size(); ++i) {
    EXPECT_EQ(explain.queries[i].sql, plain.queries[i].sql);
  }
}

TEST_F(ExplainTest, ToStringMentionsEveryStage) {
  std::string text =
      ExplainDiscovery(db_, MakeFigure2ExampleTable()).ToString();
  EXPECT_NE(text.find("candidate projection columns"), std::string::npos);
  EXPECT_NE(text.find("Customer.CustName"), std::string::npos);
  EXPECT_NE(text.find("filter universe"), std::string::npos);
  EXPECT_NE(text.find("valid queries: 1"), std::string::npos);
  EXPECT_NE(text.find("SELECT"), std::string::npos);
}

TEST_F(ExplainTest, UnmatchableColumnShowsNone) {
  ExampleTable et({"A"});
  et.AddRow({"Zelda"});
  DiscoveryExplain explain = ExplainDiscovery(db_, et);
  EXPECT_TRUE(explain.et_columns[0].candidate_columns.empty());
  EXPECT_NE(explain.ToString().find("(none)"), std::string::npos);
}

TEST_F(ExplainTest, KeywordSearchSingleRow) {
  // m = 1: single-tuple keyword search (related-work mode).
  DiscoveryResult result = DiscoverByKeywords(db_, {"Mike", "ThinkPad"});
  ASSERT_FALSE(result.queries.empty());
  // The top query joins Sales or Owner; all results must contain both
  // keywords in one joined row, which Sales row 1 does.
  EXPECT_NE(result.queries[0].sql.find("SELECT"), std::string::npos);
  for (const DiscoveredQuery& q : result.queries) {
    EXPECT_EQ(q.matched_rows, 1);
  }
}

TEST_F(ExplainTest, KeywordSearchNoMatch) {
  EXPECT_TRUE(DiscoverByKeywords(db_, {"Zelda"}).queries.empty());
}

}  // namespace
}  // namespace qbe
