#include "core/candidate_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/retailer.h"
#include "test_util.h"

namespace qbe {
namespace {

class CandidateGenTest : public ::testing::Test {
 protected:
  CandidateGenTest() : db_(MakeRetailerDatabase()), graph_(db_) {}

  Database db_;
  SchemaGraph graph_;
};

TEST_F(CandidateGenTest, Figure2CandidateColumns) {
  // §3.2's worked example: A -> {Customer.CustName, Employee.EmpName},
  // B -> {Device.DevName}, C -> {App.AppName, ESR.Desc}.
  ExampleTable et = MakeFigure2ExampleTable();
  auto cols = RetrieveCandidateColumns(db_, et);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], (std::vector<ColumnRef>{
                         test::Col(db_, "Customer.CustName"),
                         test::Col(db_, "Employee.EmpName")}));
  EXPECT_EQ(cols[1],
            (std::vector<ColumnRef>{test::Col(db_, "Device.DevName")}));
  EXPECT_EQ(cols[2], (std::vector<ColumnRef>{test::Col(db_, "App.AppName"),
                                             test::Col(db_, "ESR.Desc")}));
}

TEST_F(CandidateGenTest, ColumnConstraintIntersectsOverRows) {
  // 'Evernote' appears only in App.AppName; 'crash' only in ESR.Desc; an ET
  // column containing both values has no candidate projection column.
  ExampleTable et({"A"});
  et.AddRow({"Evernote"});
  et.AddRow({"crash"});
  auto cols = RetrieveCandidateColumns(db_, et);
  EXPECT_TRUE(cols[0].empty());
  // And candidate generation yields nothing.
  EXPECT_TRUE(GenerateCandidates(db_, graph_, et, {}).empty());
}

TEST_F(CandidateGenTest, Figure2CandidatesAtDefaultJoinLength) {
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions options;  // l = 4
  auto candidates = GenerateCandidates(db_, graph_, et, options);
  ASSERT_EQ(candidates.size(), 3u);
  // CQ1 (Figure 2's valid query) must be among them.
  JoinTree cq1_tree =
      test::Tree(db_, graph_, {"Sales", "Customer", "Device", "App"});
  bool found_cq1 = false;
  for (const CandidateQuery& q : candidates) {
    if (q.tree == cq1_tree &&
        q.projection[0] == test::Col(db_, "Customer.CustName") &&
        q.projection[1] == test::Col(db_, "Device.DevName") &&
        q.projection[2] == test::Col(db_, "App.AppName")) {
      found_cq1 = true;
    }
  }
  EXPECT_TRUE(found_cq1);
}

TEST_F(CandidateGenTest, AllCandidatesAreMinimal) {
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions options;
  options.max_join_tree_size = 5;
  for (const CandidateQuery& q : GenerateCandidates(db_, graph_, et, options)) {
    EXPECT_TRUE(IsMinimalCandidate(q, graph_));
    EXPECT_EQ(q.tree.NumEdges(), q.tree.NumVertices() - 1);
    EXPECT_LE(q.tree.NumVertices(), 5);
    // Every ET column is mapped into the tree.
    for (const ColumnRef& col : q.projection) {
      EXPECT_TRUE(q.tree.verts.Test(col.rel));
    }
  }
}

TEST_F(CandidateGenTest, LargerJoinLengthGrowsCandidateSet) {
  // Figure 13's premise: higher l admits more candidates.
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions l4, l5;
  l4.max_join_tree_size = 4;
  l5.max_join_tree_size = 5;
  size_t n4 = GenerateCandidates(db_, graph_, et, l4).size();
  size_t n5 = GenerateCandidates(db_, graph_, et, l5).size();
  EXPECT_GT(n5, n4);
}

TEST_F(CandidateGenTest, NoDuplicateCandidates) {
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions options;
  options.max_join_tree_size = 5;
  auto candidates = GenerateCandidates(db_, graph_, et, options);
  for (size_t i = 0; i < candidates.size(); ++i) {
    for (size_t j = i + 1; j < candidates.size(); ++j) {
      EXPECT_FALSE(candidates[i] == candidates[j]);
    }
  }
}

TEST_F(CandidateGenTest, MaxCandidatesCapRespected) {
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions options;
  options.max_join_tree_size = 5;
  options.max_candidates = 2;
  EXPECT_EQ(GenerateCandidates(db_, graph_, et, options).size(), 2u);
}

TEST_F(CandidateGenTest, SingleRelationCandidate) {
  // An ET whose two columns both map into ESR alone.
  ExampleTable et({"A", "B"});
  et.AddRow({"crash", "crash"});
  auto candidates = GenerateCandidates(db_, graph_, et, {});
  bool found_single = false;
  for (const CandidateQuery& q : candidates) {
    if (q.tree.NumVertices() == 1 &&
        q.tree.verts.Test(db_.RelationIdByName("ESR"))) {
      found_single = true;
    }
  }
  EXPECT_TRUE(found_single);
}

TEST_F(CandidateGenTest, MinimalityRejectsUnmappedLeaf) {
  // Hand-built non-minimal query: CQ1's tree but everything mapped to
  // Customer — Device and App are unmapped leaves.
  CandidateQuery q;
  q.tree = test::Tree(db_, graph_, {"Sales", "Customer", "Device", "App"});
  q.projection = {test::Col(db_, "Customer.CustName"),
                  test::Col(db_, "Customer.CustName"),
                  test::Col(db_, "Customer.CustName")};
  EXPECT_FALSE(IsMinimalCandidate(q, graph_));
}

TEST_F(CandidateGenTest, CandidatesAreSupersetOfValidQueries) {
  // Corollary 1 sanity at generation level: the valid CQ1 satisfies the
  // candidate column constraints by construction (checked structurally in
  // Figure2CandidatesAtDefaultJoinLength); here we confirm every candidate
  // satisfies the per-column constraint (Eq. 2's necessary condition).
  ExampleTable et = MakeFigure2ExampleTable();
  auto cols = RetrieveCandidateColumns(db_, et);
  for (const CandidateQuery& q : GenerateCandidates(db_, graph_, et, {})) {
    for (int c = 0; c < et.num_columns(); ++c) {
      bool in_candidate_cols = false;
      for (const ColumnRef& option : cols[c]) {
        if (option == q.projection[c]) in_candidate_cols = true;
      }
      EXPECT_TRUE(in_candidate_cols);
    }
  }
}

}  // namespace
}  // namespace qbe
