// Integration sweep on the CUST-like dataset: all verification algorithms
// must agree on ETs drawn from its matrices (the retailer-based property
// tests cover a different schema shape — CUST adds wide fact tables,
// standalone aux relations and status-style low-cardinality columns).

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "core/weave.h"
#include "datagen/cust_like.h"
#include "datagen/et_gen.h"
#include "exec/executor.h"

namespace qbe {
namespace {

class CustIntegrationTest : public ::testing::Test {
 protected:
  CustIntegrationTest() {
    CustConfig config;
    config.scale = 0.08;
    db_ = std::make_unique<Database>(MakeCustLikeDatabase(config));
    graph_ = std::make_unique<SchemaGraph>(*db_);
    exec_ = std::make_unique<Executor>(*db_, *graph_);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<SchemaGraph> graph_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(CustIntegrationTest, MatricesExist) {
  EtSource::Options options;
  options.min_matrix_rows = 8;
  EtSource source(*db_, *graph_, *exec_, 3, options);
  EXPECT_GT(source.num_matrices(), 0);
}

TEST_F(CustIntegrationTest, AllAlgorithmsAgreeOnCustWorkload) {
  EtSource::Options source_options;
  source_options.min_matrix_rows = 8;
  EtSource source(*db_, *graph_, *exec_, 3, source_options);
  ASSERT_GT(source.num_matrices(), 0);
  EtParams params;
  for (const ExampleTable& et : source.SampleMany(params, 6, 17)) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(*db_, *graph_, et, {});
    if (candidates.empty()) continue;
    VerifyContext ctx{*db_, *graph_, *exec_, et, candidates, 11};
    VerifyAll verify_all(RowOrder::kRandom);
    VerificationCounters c0;
    std::vector<bool> reference = verify_all.Verify(ctx, &c0);

    SimplePrune simple_prune;
    FilterVerifier filter_lazy;  // default: lazy greedy
    FilterVerifier filter_exact(0.1, false);
    JoinTreeWeave weave;
    CandidateVerifier* algos[] = {&simple_prune, &filter_lazy, &filter_exact,
                                  &weave};
    for (CandidateVerifier* algo : algos) {
      VerificationCounters counters;
      EXPECT_EQ(algo->Verify(ctx, &counters), reference) << algo->name();
      EXPECT_GT(counters.verifications, 0);
    }
  }
}

TEST_F(CustIntegrationTest, AuxRelationsStayOutOfJoins) {
  // Standalone aux relations have no FK edges: any candidate containing an
  // aux relation must be a single-vertex query.
  EtSource::Options source_options;
  source_options.min_matrix_rows = 8;
  EtSource source(*db_, *graph_, *exec_, 3, source_options);
  EtParams params;
  for (const ExampleTable& et : source.SampleMany(params, 4, 23)) {
    for (const CandidateQuery& q :
         GenerateCandidates(*db_, *graph_, et, {})) {
      bool has_aux = false;
      q.tree.verts.ForEach([&](int v) {
        has_aux |= db_->relation(v).name().substr(0, 4) == "aux_";
      });
      if (has_aux) EXPECT_EQ(q.tree.NumVertices(), 1);
    }
  }
}

}  // namespace
}  // namespace qbe
