#include "core/session.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"

namespace qbe {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : db_(MakeRetailerDatabase()) {}
  Database db_;
};

TEST_F(SessionTest, IncrementalRefinementNarrowsResults) {
  DiscoverySession session(db_);
  // One row "Mike": ambiguous — customer or employee queries both valid.
  session.AddRow({"Mike"});
  DiscoveryResult first = session.Discover();
  ASSERT_GT(first.queries.size(), 1u);
  // Adding "Mary" then "Bob" keeps both name columns alive; adding a
  // device narrows the join structure.
  session.RemoveLastRow();
  session.AddRow({"Mike"});
  EXPECT_EQ(session.num_rows(), 1);
}

TEST_F(SessionTest, MatchesBatchDiscovery) {
  DiscoverySession session(db_);
  session.SetTable(MakeFigure2ExampleTable());
  DiscoveryResult incremental = session.Discover();
  DiscoveryResult batch = DiscoverQueries(db_, MakeFigure2ExampleTable());
  ASSERT_EQ(incremental.queries.size(), batch.queries.size());
  for (size_t i = 0; i < batch.queries.size(); ++i) {
    EXPECT_EQ(incremental.queries[i].sql, batch.queries[i].sql);
  }
}

TEST_F(SessionTest, CacheReusedAcrossSteps) {
  ExampleTable et = MakeFigure2ExampleTable();
  DiscoverySession session(db_);
  session.AddRow({"Mike", "ThinkPad", "Office"});
  session.Discover();
  int64_t after_first = session.total_verifications();
  EXPECT_GT(after_first, 0);
  EXPECT_GT(session.cache_size(), 0u);

  session.AddRow({"Mary", "iPad", ""});
  session.Discover();
  // Row-1 verifications must come from the cache.
  EXPECT_GT(session.cache_hits(), 0);

  session.AddRow({"Bob", "", "Dropbox"});
  DiscoveryResult final_result = session.Discover();
  // Same answer as batch discovery over the whole ET.
  DiscoveryResult batch = DiscoverQueries(db_, et);
  EXPECT_EQ(final_result.queries.size(), batch.queries.size());
}

TEST_F(SessionTest, RerunIsFullyCached) {
  DiscoverySession session(db_);
  session.SetTable(MakeFigure2ExampleTable());
  session.Discover();
  int64_t once = session.total_verifications();
  session.Discover();
  // Second identical run executes nothing new.
  EXPECT_EQ(session.total_verifications(), once);
}

TEST_F(SessionTest, RemoveThenAddDifferentRowServesFreshOutcomes) {
  // Regression guard for the cache's reuse contract: outcomes are keyed by
  // (join tree, predicate values), never by row position — so replacing
  // the last row with a different one must not serve the removed row's
  // outcomes for the new row, while still reusing the surviving rows'.
  DiscoverySession session(db_);
  session.AddRow({"Mike", "ThinkPad", "Office"});
  EXPECT_FALSE(session.Discover().queries.empty());  // caches Mike's outcomes
  session.AddRow({"Zelda", "", ""});  // matches nothing
  EXPECT_TRUE(session.Discover().queries.empty());

  session.RemoveLastRow();
  session.AddRow({"Mary", "iPad", ""});
  DiscoveryResult refined = session.Discover();
  // "Zelda failed" must not leak into Mary's verifications...
  EXPECT_FALSE(refined.queries.empty());

  // ...and the answer is exactly the cacheless batch answer for the
  // current table.
  ExampleTable current = ExampleTable::WithColumns(3);
  current.AddRow({"Mike", "ThinkPad", "Office"});
  current.AddRow({"Mary", "iPad", ""});
  DiscoveryResult batch = DiscoverQueries(db_, current);
  ASSERT_EQ(refined.queries.size(), batch.queries.size());
  for (size_t i = 0; i < batch.queries.size(); ++i) {
    EXPECT_EQ(refined.queries[i].sql, batch.queries[i].sql);
  }
  // Mike's outcomes were reused across the row swap.
  EXPECT_GT(session.cache_hits(), 0);
}

TEST_F(SessionTest, RemoveLastRowUndoes) {
  DiscoverySession session(db_);
  session.AddRow({"Mike", "ThinkPad", "Office"});
  session.AddRow({"Zelda", "", ""});  // matches nothing
  EXPECT_TRUE(session.Discover().queries.empty());
  session.RemoveLastRow();
  EXPECT_FALSE(session.Discover().queries.empty());
}

TEST_F(SessionTest, SetTableResetsShape) {
  DiscoverySession session(db_);
  session.AddRow({"Mike"});
  ExampleTable two_cols({"A", "B"});
  two_cols.AddRow({"Mike", "ThinkPad"});
  session.SetTable(two_cols);
  EXPECT_EQ(session.table().num_columns(), 2);
  EXPECT_FALSE(session.Discover().queries.empty());
}

TEST_F(SessionTest, CacheKeyIgnoresPredicateOrder) {
  SchemaGraph graph(db_);
  JoinTree tree = JoinTree::Single(db_.RelationIdByName("Customer"));
  int customer = db_.RelationIdByName("Customer");
  PhrasePredicate a{ColumnRef{customer, 1}, {"mike"}, false};
  PhrasePredicate b{ColumnRef{customer, 1}, {"jones"}, false};
  EXPECT_EQ(EvalCacheKey(db_, tree, {a, b}), EvalCacheKey(db_, tree, {b, a}));
  EXPECT_NE(EvalCacheKey(db_, tree, {a}), EvalCacheKey(db_, tree, {b}));
  // Exactness is part of the key.
  PhrasePredicate a_exact = a;
  a_exact.exact = true;
  EXPECT_NE(EvalCacheKey(db_, tree, {a}), EvalCacheKey(db_, tree, {a_exact}));
}

}  // namespace
}  // namespace qbe
