#include "core/filter.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"
#include "exec/executor.h"
#include "test_util.h"

namespace qbe {
namespace {

class FilterTest : public ::testing::Test {
 protected:
  FilterTest()
      : db_(MakeRetailerDatabase()),
        graph_(db_),
        et_(MakeFigure2ExampleTable()) {
    // CQ2 of Figure 4: Owner joining Employee, Device, App with
    // A -> Employee.EmpName, B -> Device.DevName, C -> App.AppName.
    cq2_.tree = test::Tree(db_, graph_, {"Owner", "Employee", "Device",
                                         "App"});
    cq2_.projection = {test::Col(db_, "Employee.EmpName"),
                       test::Col(db_, "Device.DevName"),
                       test::Col(db_, "App.AppName")};
  }

  Database db_;
  SchemaGraph graph_;
  ExampleTable et_;
  CandidateQuery cq2_;
};

TEST_F(FilterTest, Figure7FilterF1) {
  // F1: sub-join tree {Owner, Employee, Device} of CQ2 on row 1.
  // φ'(A)=EmpName, φ'(B)=DevName, φ'(C)=* (App outside the subtree).
  JoinTree sub = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  Filter f1 = MakeFilter(cq2_, sub, et_, 0);
  EXPECT_EQ(f1.phi[0], test::Col(db_, "Employee.EmpName"));
  EXPECT_EQ(f1.phi[1], test::Col(db_, "Device.DevName"));
  EXPECT_FALSE(f1.phi[2].valid());  // '*'
  EXPECT_EQ(f1.NumConstrainedCells(), 2);
  EXPECT_EQ(f1.Cost(), 3);
  // Predicates: Mike on EmpName, ThinkPad on DevName (row 1 cells).
  auto preds = FilterPredicates(f1, et_);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].tokens, (std::vector<std::string>{"mike"}));
  EXPECT_EQ(preds[1].tokens, (std::vector<std::string>{"thinkpad"}));
}

TEST_F(FilterTest, Figure7BasicFilterF2) {
  Filter f2 = MakeFilter(cq2_, cq2_.tree, et_, 0);
  EXPECT_TRUE(f2.phi[2].valid());
  EXPECT_EQ(f2.NumConstrainedCells(), 3);
  EXPECT_EQ(f2.Cost(), 4);
}

TEST_F(FilterTest, EmptyCellsAreUnconstrained) {
  // Row 2 (Mary, iPad, —): C is empty, so even the basic filter constrains
  // only two cells.
  Filter f = MakeFilter(cq2_, cq2_.tree, et_, 1);
  EXPECT_EQ(f.NumConstrainedCells(), 2);
  EXPECT_EQ(FilterPredicates(f, et_).size(), 2u);
}

TEST_F(FilterTest, Example8DependencyBetweenF1AndF2) {
  // Example 8: F1 ≻− F2 and F2 ≻+ F1 — both directions of the single
  // sub-filter relation.
  JoinTree sub = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  Filter f1 = MakeFilter(cq2_, sub, et_, 0);
  Filter f2 = MakeFilter(cq2_, cq2_.tree, et_, 0);
  EXPECT_TRUE(IsSubFilterOf(f1, f2));
  EXPECT_FALSE(IsSubFilterOf(f2, f1));
}

TEST_F(FilterTest, NoDependencyAcrossRows) {
  JoinTree sub = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  Filter f1 = MakeFilter(cq2_, sub, et_, 0);
  Filter f2 = MakeFilter(cq2_, cq2_.tree, et_, 1);
  EXPECT_FALSE(IsSubFilterOf(f1, f2));
}

TEST_F(FilterTest, NoDependencyWhenProjectionsDisagree) {
  // Same subtree {Owner, Device, App} but the C mapping differs between a
  // candidate mapping C->App.AppName and one mapping C->ESR.Desc restricted
  // to this subtree... here: compare against CQ2 with A mapped elsewhere.
  CandidateQuery cq_other = cq2_;
  cq_other.projection[0] = test::Col(db_, "Customer.CustName");
  // (Not a real candidate — Customer isn't in the tree — but MakeFilter
  // handles it: φ'(A) becomes undefined.)
  Filter f_other = MakeFilter(cq_other, cq2_.tree, et_, 0);
  Filter f2 = MakeFilter(cq2_, cq2_.tree, et_, 0);
  // f_other constrains {B, C}; f2 constrains {A, B, C} and they agree
  // there, so f_other is a sub-filter of f2 but not vice versa.
  EXPECT_TRUE(IsSubFilterOf(f_other, f2));
  EXPECT_FALSE(IsSubFilterOf(f2, f_other));
}

TEST_F(FilterTest, SubFilterRelationIsTransitive) {
  JoinTree sub1 = JoinTree::Single(db_.RelationIdByName("Device"));
  JoinTree sub2 = test::Tree(db_, graph_, {"Owner", "Device"});
  Filter a = MakeFilter(cq2_, sub1, et_, 0);
  Filter b = MakeFilter(cq2_, sub2, et_, 0);
  Filter c = MakeFilter(cq2_, cq2_.tree, et_, 0);
  EXPECT_TRUE(IsSubFilterOf(a, b));
  EXPECT_TRUE(IsSubFilterOf(b, c));
  EXPECT_TRUE(IsSubFilterOf(a, c));
}

TEST_F(FilterTest, FilterIdentityAndHash) {
  JoinTree sub = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  Filter a = MakeFilter(cq2_, sub, et_, 0);
  Filter b = MakeFilter(cq2_, sub, et_, 0);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  Filter c = MakeFilter(cq2_, sub, et_, 1);
  EXPECT_FALSE(a == c);
}

TEST_F(FilterTest, SharedFilterAcrossCandidates) {
  // §5.1 Remark: two candidates sharing the same restriction within J'
  // yield the *same* filter. CQ3 (Figure 4): Owner-Employee-Device + ESR
  // with C -> ESR.Desc shares the {Owner, Employee, Device} filter with
  // CQ2.
  CandidateQuery cq3;
  cq3.tree = test::Tree(db_, graph_, {"Owner", "Employee", "Device", "ESR"});
  cq3.projection = {test::Col(db_, "Employee.EmpName"),
                    test::Col(db_, "Device.DevName"),
                    test::Col(db_, "ESR.Desc")};
  JoinTree shared = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  Filter from_cq2 = MakeFilter(cq2_, shared, et_, 1);
  Filter from_cq3 = MakeFilter(cq3, shared, et_, 1);
  EXPECT_TRUE(from_cq2 == from_cq3);
}

TEST_F(FilterTest, Lemma3SemanticSoundness) {
  // The Example 2 pruning story: the shared {Owner, Employee, Device}
  // filter fails on row 2, and so do the basic filters of CQ2 and CQ3.
  Executor exec(db_, graph_);
  JoinTree shared = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  Filter small = MakeFilter(cq2_, shared, et_, 1);
  Filter big = MakeFilter(cq2_, cq2_.tree, et_, 1);
  ASSERT_TRUE(IsSubFilterOf(small, big));
  bool small_ok = exec.Exists(small.tree, FilterPredicates(small, et_));
  bool big_ok = exec.Exists(big.tree, FilterPredicates(big, et_));
  EXPECT_FALSE(small_ok);
  // Lemma 3: failure of the sub-filter implies failure of the super-filter.
  EXPECT_FALSE(big_ok);
}

TEST_F(FilterTest, QueryFailureImpliesLemma1) {
  // Example 6: CQ2 = {Owner, Employee, Device} failing row 2 implies CQ5 =
  // {Owner, Employee, Device, App} (same mappings for A and B) fails row 2.
  CandidateQuery small;
  small.tree = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  small.projection = {test::Col(db_, "Employee.EmpName"),
                      test::Col(db_, "Device.DevName"),
                      test::Col(db_, "Device.DevName")};
  CandidateQuery big = cq2_;
  big.projection[2] = test::Col(db_, "Device.DevName");
  // Row 2's non-empty cells are A and B; C may differ (it is empty).
  EXPECT_TRUE(QueryFailureImplies(small, big, et_, 1));
  // Row 1 has a non-empty C cell and the C mappings differ? Here they are
  // equal, so implication also holds for row 1 structurally.
  EXPECT_TRUE(QueryFailureImplies(small, big, et_, 0));
  // Disagreement on a non-empty cell kills the implication.
  CandidateQuery other = big;
  other.projection[0] = test::Col(db_, "Customer.CustName");
  EXPECT_FALSE(QueryFailureImplies(small, other, et_, 1));
}

}  // namespace
}  // namespace qbe
