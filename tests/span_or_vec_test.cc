// SpanOrVec is the storage dual behind every array the snapshot can map:
// owned vector (build path) or borrowed span (mmap path). The property that
// matters is that query kernels cannot tell the modes apart — this suite
// drives the CSR span-intersection kernels (util/intersect.h) with the same
// data in both modes and requires identical output, across the merge and
// galloping regimes. Plus the XXH64 checksum primitive the snapshot format
// builds on.

#include "util/span_or_vec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "util/hash64.h"
#include "util/intersect.h"

namespace qbe {
namespace {

TEST(SpanOrVecTest, OwnedModeBasics) {
  SpanOrVec<uint32_t> v(std::vector<uint32_t>{1, 2, 3});
  EXPECT_FALSE(v.is_mapped());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2u);
  EXPECT_EQ(v.back(), 3u);
  EXPECT_GT(v.OwnedBytes(), 0u);
  v.MutableVec().push_back(4);
  EXPECT_EQ(v.size(), 4u);
}

TEST(SpanOrVecTest, MappedModeAliasesWithoutOwning) {
  std::vector<uint32_t> backing = {5, 6, 7};
  SpanOrVec<uint32_t> v =
      SpanOrVec<uint32_t>::Mapped(std::span<const uint32_t>(backing));
  EXPECT_TRUE(v.is_mapped());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), backing.data());  // zero-copy: same address
  EXPECT_EQ(v.OwnedBytes(), 0u);
}

TEST(SpanOrVecDeathTest, MutableVecForbiddenInMappedMode) {
  std::vector<uint32_t> backing = {1};
  SpanOrVec<uint32_t> v =
      SpanOrVec<uint32_t>::Mapped(std::span<const uint32_t>(backing));
  EXPECT_DEATH(v.MutableVec(), "mapped");
}

TEST(SpanOrVecTest, AssigningVectorLeavesMappedMode) {
  std::vector<uint32_t> backing = {1, 2};
  SpanOrVec<uint32_t> v =
      SpanOrVec<uint32_t>::Mapped(std::span<const uint32_t>(backing));
  v = std::vector<uint32_t>{9};
  EXPECT_FALSE(v.is_mapped());
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 9u);
}

/// Sorted-unique random row set, the invariant every CSR posting list and
/// semijoin row set maintains.
std::vector<uint32_t> RandomRowSet(std::mt19937_64* rng, size_t max_size,
                                   uint32_t universe) {
  std::uniform_int_distribution<size_t> size_dist(0, max_size);
  std::uniform_int_distribution<uint32_t> val_dist(0, universe - 1);
  std::set<uint32_t> rows;
  size_t want = size_dist(*rng);
  while (rows.size() < want) rows.insert(val_dist(*rng));
  return std::vector<uint32_t>(rows.begin(), rows.end());
}

TEST(SpanOrVecTest, IntersectionKernelsIdenticalAcrossModesProperty) {
  std::mt19937_64 rng(20140622);
  for (int trial = 0; trial < 300; ++trial) {
    // Vary the size ratio to hit both the linear-merge regime and the
    // galloping regime (one side >= 16x smaller).
    bool skewed = trial % 3 == 0;
    std::vector<uint32_t> a =
        RandomRowSet(&rng, skewed ? 4 : 200, /*universe=*/1000);
    std::vector<uint32_t> b = RandomRowSet(&rng, 400, /*universe=*/1000);

    SpanOrVec<uint32_t> owned_a(a), owned_b(b);
    SpanOrVec<uint32_t> mapped_a =
        SpanOrVec<uint32_t>::Mapped(std::span<const uint32_t>(a));
    SpanOrVec<uint32_t> mapped_b =
        SpanOrVec<uint32_t>::Mapped(std::span<const uint32_t>(b));

    std::vector<uint32_t> from_owned, from_mapped, from_mixed;
    IntersectSortedInto(owned_a.span(), owned_b.span(), &from_owned);
    IntersectSortedInto(mapped_a.span(), mapped_b.span(), &from_mapped);
    IntersectSortedInto(owned_a.span(), mapped_b.span(), &from_mixed);
    EXPECT_EQ(from_owned, from_mapped) << "trial " << trial;
    EXPECT_EQ(from_owned, from_mixed) << "trial " << trial;

    // Reference: naive set intersection.
    std::vector<uint32_t> expected;
    std::set<uint32_t> in_b(b.begin(), b.end());
    for (uint32_t v : a) {
      if (in_b.count(v) > 0) expected.push_back(v);
    }
    EXPECT_EQ(from_owned, expected) << "trial " << trial;

    // In-place variant against a mapped right-hand side.
    std::vector<uint32_t> acc = a, scratch;
    IntersectSortedInPlace(&acc, mapped_b.span(), &scratch);
    EXPECT_EQ(acc, expected) << "trial " << trial;
  }
}

TEST(Hash64Test, MatchesXxh64ReferenceVectors) {
  // Official XXH64 test vectors (seed 0).
  EXPECT_EQ(Hash64(nullptr, 0), 0xef46db3751d8e999ULL);
  const char abc[] = {'a', 'b', 'c'};
  EXPECT_EQ(Hash64(abc, 3), 0x44bc2cf5ad770999ULL);
}

TEST(Hash64Test, SensitiveToEveryByte) {
  std::vector<char> data(1000);
  std::mt19937_64 rng(99);
  for (char& c : data) c = static_cast<char>(rng());
  const uint64_t base = Hash64(data.data(), data.size());
  EXPECT_EQ(Hash64(data.data(), data.size()), base);  // deterministic
  for (size_t i : {size_t{0}, size_t{31}, size_t{500}, data.size() - 1}) {
    data[i] ^= 1;
    EXPECT_NE(Hash64(data.data(), data.size()), base) << "byte " << i;
    data[i] ^= 1;
  }
  EXPECT_NE(Hash64(data.data(), data.size() - 1), base);
}

}  // namespace
}  // namespace qbe
