#include "storage/catalog_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/discovery.h"
#include "datagen/retailer.h"
#include "storage/csv.h"

namespace qbe {
namespace {

class CatalogIoTest : public ::testing::Test {
 protected:
  std::string TempDir(const std::string& name) {
    std::string dir = testing::TempDir() + "/catalog_io_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }
};

TEST_F(CatalogIoTest, RoundTripPreservesSchemaAndData) {
  Database original = MakeRetailerDatabase();
  std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(SaveDatabase(original, dir));
  std::optional<Database> loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_relations(), original.num_relations());
  EXPECT_EQ(loaded->foreign_keys().size(), original.foreign_keys().size());
  EXPECT_EQ(loaded->TotalColumns(), original.TotalColumns());
  EXPECT_EQ(loaded->TotalTextColumns(), original.TotalTextColumns());
  for (int r = 0; r < original.num_relations(); ++r) {
    const Relation& a = original.relation(r);
    int lid = loaded->RelationIdByName(a.name());
    ASSERT_GE(lid, 0);
    const Relation& b = loaded->relation(lid);
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (int c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.columns()[c].name, b.columns()[c].name);
      EXPECT_EQ(a.columns()[c].type, b.columns()[c].type);
    }
  }
}

TEST_F(CatalogIoTest, RoundTripDiscoveryEquivalent) {
  Database original = MakeRetailerDatabase();
  std::string dir = TempDir("discovery");
  ASSERT_TRUE(SaveDatabase(original, dir));
  std::optional<Database> loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.has_value());
  ExampleTable et = MakeFigure2ExampleTable();
  DiscoveryResult a = DiscoverQueries(original, et);
  DiscoveryResult b = DiscoverQueries(*loaded, et);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].sql, b.queries[i].sql);
  }
}

TEST_F(CatalogIoTest, ManifestOverridesCsvTypeInference) {
  // A text column whose every value happens to be numeric would be
  // inferred as id by the CSV loader; the manifest pins it to text.
  std::string dir = TempDir("retype");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/codes.csv") << "code_id,label\n1,12345\n2,67890\n";
  std::ofstream(dir + "/schema.manifest")
      << "relation codes codes.csv id,text\n";
  std::optional<Database> db = LoadDatabase(dir);
  ASSERT_TRUE(db.has_value());
  const Relation& rel = db->relation(0);
  EXPECT_EQ(rel.columns()[1].type, ColumnType::kText);
  EXPECT_EQ(rel.TextAt(1, 0), "12345");
}

TEST_F(CatalogIoTest, MissingManifestFails) {
  EXPECT_FALSE(LoadDatabase(TempDir("missing")).has_value());
}

TEST_F(CatalogIoTest, ErrorsDistinguishBadPathFromParseFailure) {
  // A wrong path and a malformed manifest are different operator mistakes;
  // the error text must make clear which one happened (and where).
  std::string missing = TempDir("err_path");
  std::string error;
  EXPECT_FALSE(LoadDatabase(missing, &error).has_value());
  EXPECT_NE(error.find("does not exist"), std::string::npos) << error;
  EXPECT_NE(error.find(missing), std::string::npos) << error;

  std::string dir = TempDir("err_parse");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/schema.manifest") << "relation broken\n";
  error.clear();
  EXPECT_FALSE(LoadDatabase(dir, &error).has_value());
  EXPECT_NE(error.find("schema.manifest:1:"), std::string::npos) << error;
  EXPECT_NE(error.find("relation"), std::string::npos) << error;
}

TEST_F(CatalogIoTest, RaggedCsvRowErrorNamesRelationAndRow) {
  // A ragged data row must be reported with the relation's name and the
  // offending row number, not just "parse failed" — on a million-row CSV
  // the operator needs to know where to look.
  std::string dir = TempDir("ragged");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/orders.csv")
      << "order_id,item\n1,apple\n2,pear,EXTRA\n3,plum\n";
  std::ofstream(dir + "/schema.manifest")
      << "relation orders orders.csv id,text\n";
  std::string error;
  EXPECT_FALSE(LoadDatabase(dir, &error).has_value());
  EXPECT_NE(error.find("relation 'orders'"), std::string::npos) << error;
  EXPECT_NE(error.find("row 2 (line 3)"), std::string::npos) << error;
  EXPECT_NE(error.find("3 fields, expected 2"), std::string::npos) << error;

  // The same diagnostics flow from LoadRelationFromCsv directly.
  error.clear();
  EXPECT_FALSE(
      LoadRelationFromCsv("orders", dir + "/orders.csv", &error).has_value());
  EXPECT_NE(error.find("relation 'orders'"), std::string::npos) << error;
  EXPECT_NE(error.find("row 2 (line 3)"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(
      LoadRelationFromCsv("ghost", dir + "/nope.csv", &error).has_value());
  EXPECT_NE(error.find("relation 'ghost'"), std::string::npos) << error;
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST_F(CatalogIoTest, BadManifestLinesFail) {
  std::string dir = TempDir("bad");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/schema.manifest") << "nonsense here\n";
  EXPECT_FALSE(LoadDatabase(dir).has_value());

  std::ofstream(dir + "/schema.manifest")
      << "relation ghost ghost.csv id\n";  // file does not exist
  EXPECT_FALSE(LoadDatabase(dir).has_value());
}

TEST_F(CatalogIoTest, FkToUnknownRelationFails) {
  std::string dir = TempDir("badfk");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/a.csv") << "a_id,t\n1,x\n";
  std::ofstream(dir + "/schema.manifest")
      << "relation a a.csv id,text\nfk a.a_id -> missing.b_id\n";
  EXPECT_FALSE(LoadDatabase(dir).has_value());
}

TEST_F(CatalogIoTest, CommentsAndBlankLinesIgnored) {
  std::string dir = TempDir("comments");
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/a.csv") << "a_id,t\n1,hello\n";
  std::ofstream(dir + "/schema.manifest")
      << "# a comment\n\nrelation a a.csv id,text\n";
  ASSERT_TRUE(LoadDatabase(dir).has_value());
}

}  // namespace
}  // namespace qbe
