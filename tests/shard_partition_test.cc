// Partitioner unit tests (DESIGN.md §15): FK co-location over every edge,
// full deterministic coverage, split integrity (rows, order, catalog),
// empty/skewed shards, append routing (constraints, conflicts, the
// orphan-children-then-parent sequence), and shardset manifest round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "datagen/retailer.h"
#include "ingest/db_view.h"
#include "ingest/live_db.h"
#include "shard/partition.h"
#include "shard_test_util.h"

namespace qbe {
namespace {

void ExpectFkCoLocation(const Database& db, const PartitionPlan& plan) {
  for (const ForeignKey& fk : db.foreign_keys()) {
    const uint32_t rows = db.relation(fk.from_rel).num_rows();
    for (uint32_t row = 0; row < rows; ++row) {
      const int32_t parent = db.ParentRowOf(fk.id, row);
      if (parent < 0) continue;
      EXPECT_EQ(plan.shard_of[fk.from_rel][row],
                plan.shard_of[fk.to_rel][parent])
          << "edge " << fk.label << " crosses shards at child row " << row;
    }
  }
}

TEST(PartitionPlanTest, CoversEveryRowExactlyOnceAndIsDeterministic) {
  Database db = MakeShardableDatabase(40, 3, 2, 7);
  for (PartitionMode mode : {PartitionMode::kHashPk, PartitionMode::kRowRange}) {
    PartitionOptions options;
    options.num_shards = 4;
    options.mode = mode;
    options.seed = 11;
    PartitionPlan plan = ComputePartitionPlan(db, options);
    ASSERT_EQ(static_cast<int>(plan.shard_of.size()), db.num_relations());
    uint64_t total = 0;
    for (int r = 0; r < db.num_relations(); ++r) {
      ASSERT_EQ(plan.shard_of[r].size(), db.relation(r).num_rows());
      for (uint32_t s : plan.shard_of[r]) {
        EXPECT_LT(s, 4u);
        ++total;
      }
    }
    EXPECT_EQ(total, 40u + 120u + 240u);
    uint64_t per_shard_total = 0;
    for (uint64_t n : plan.RowsPerShard()) per_shard_total += n;
    EXPECT_EQ(per_shard_total, total);

    PartitionPlan again = ComputePartitionPlan(db, options);
    EXPECT_EQ(plan.shard_of, again.shard_of);
  }
}

TEST(PartitionPlanTest, FkCoLocationHoldsOnEveryEdge) {
  Database chain = MakeShardableDatabase(40, 3, 2, 7);
  Database retailer =
      MakeScaledRetailerDatabase(30, 30, 12, 12, 120, 120, 50, 5);
  for (Database* db : {&chain, &retailer}) {
    for (PartitionMode mode :
         {PartitionMode::kHashPk, PartitionMode::kRowRange}) {
      PartitionOptions options;
      options.num_shards = 4;
      options.mode = mode;
      options.seed = 3;
      ExpectFkCoLocation(*db, ComputePartitionPlan(*db, options));
    }
  }
}

TEST(PartitionPlanTest, HashModeSpreadsComponentsAndSeedMatters) {
  Database db = MakeShardableDatabase(40, 3, 2, 7);
  PartitionOptions options;
  options.num_shards = 4;
  options.mode = PartitionMode::kHashPk;
  options.seed = 0;
  PartitionPlan plan = ComputePartitionPlan(db, options);
  int non_empty = 0;
  for (uint64_t n : plan.RowsPerShard()) non_empty += n > 0 ? 1 : 0;
  // 40 independent components hashed into 4 shards: all occupied.
  EXPECT_EQ(non_empty, 4);

  options.seed = 1;
  PartitionPlan reseeded = ComputePartitionPlan(db, options);
  EXPECT_NE(plan.shard_of, reseeded.shard_of)
      << "placement hash ignores the seed";
}

TEST(PartitionPlanTest, RowRangePacksComponentsInOrder) {
  Database db = MakeShardableDatabase(40, 3, 2, 7);
  PartitionOptions options;
  options.num_shards = 4;
  options.mode = PartitionMode::kRowRange;
  PartitionPlan plan = ComputePartitionPlan(db, options);
  // Components are packed in representative order, and every component's
  // representative is a Customer row (the minimum global id of its chain),
  // so customer shard ids must be non-decreasing.
  for (size_t c = 1; c < plan.shard_of[0].size(); ++c) {
    EXPECT_LE(plan.shard_of[0][c - 1], plan.shard_of[0][c]);
  }
  for (uint64_t n : plan.RowsPerShard()) EXPECT_GT(n, 0u);
}

TEST(PartitionPlanTest, SingleGiantComponentLeavesOtherShardsEmpty) {
  // Every order references customer 0: one indivisible component.
  Database db = MakeShardableDatabase(1, 50, 2, 7);
  PartitionOptions options;
  options.num_shards = 4;
  options.mode = PartitionMode::kHashPk;
  PartitionPlan plan = ComputePartitionPlan(db, options);
  int non_empty = 0;
  for (uint64_t n : plan.RowsPerShard()) non_empty += n > 0 ? 1 : 0;
  EXPECT_EQ(non_empty, 1);
  ExpectFkCoLocation(db, plan);
  // Splitting still yields four well-formed databases.
  std::vector<Database> shards = SplitDatabase(db, plan);
  ASSERT_EQ(shards.size(), 4u);
}

TEST(SplitDatabaseTest, PreservesRowsOrderAndCatalog) {
  Database db = MakeShardableDatabase(40, 3, 2, 7);
  PartitionOptions options;
  options.num_shards = 3;
  options.mode = PartitionMode::kHashPk;
  options.seed = 9;
  PartitionPlan plan = ComputePartitionPlan(db, options);
  std::vector<Database> shards = SplitDatabase(db, plan);
  ASSERT_EQ(shards.size(), 3u);

  for (const Database& shard : shards) {
    ASSERT_EQ(shard.num_relations(), db.num_relations());
    ASSERT_EQ(shard.foreign_keys().size(), db.foreign_keys().size());
    for (int r = 0; r < db.num_relations(); ++r) {
      EXPECT_EQ(shard.relation(r).name(), db.relation(r).name());
      EXPECT_EQ(shard.relation(r).num_columns(),
                db.relation(r).num_columns());
    }
  }

  // Walking original rows in order and appending to their assigned shard
  // must reproduce each shard relation cell for cell (the deterministic
  // shard-local order contract).
  for (int r = 0; r < db.num_relations(); ++r) {
    const Relation& source = db.relation(r);
    std::vector<uint32_t> next(3, 0);
    for (uint32_t row = 0; row < source.num_rows(); ++row) {
      const uint32_t s = plan.shard_of[r][row];
      const Relation& out = shards[s].relation(r);
      const uint32_t pos = next[s]++;
      ASSERT_LT(pos, out.num_rows());
      for (int c = 0; c < source.num_columns(); ++c) {
        if (source.columns()[c].type == ColumnType::kId) {
          EXPECT_EQ(out.IdAt(c, pos), source.IdAt(c, row));
        } else {
          EXPECT_EQ(out.TextAt(c, pos), source.TextAt(c, row));
        }
      }
    }
    uint64_t shard_rows = 0;
    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(next[s], shards[s].relation(r).num_rows());
      shard_rows += shards[s].relation(r).num_rows();
    }
    EXPECT_EQ(shard_rows, source.num_rows());
  }

  // Join edges resolve inside each shard exactly as often as in the
  // original: co-location loses no parent links.
  for (const ForeignKey& fk : db.foreign_keys()) {
    uint64_t original_links = 0;
    for (uint32_t row = 0; row < db.relation(fk.from_rel).num_rows(); ++row) {
      original_links += db.ParentRowOf(fk.id, row) >= 0 ? 1 : 0;
    }
    uint64_t shard_links = 0;
    for (const Database& shard : shards) {
      for (uint32_t row = 0; row < shard.relation(fk.from_rel).num_rows();
           ++row) {
        shard_links += shard.ParentRowOf(fk.id, row) >= 0 ? 1 : 0;
      }
    }
    EXPECT_EQ(shard_links, original_links) << "edge " << fk.label;
  }
}

class RouteAppendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database db = MakeShardableDatabase(40, 3, 2, 7);
    PartitionOptions options;
    options.num_shards = 4;
    options.mode = PartitionMode::kHashPk;
    options.seed = kSeed;
    plan_ = ComputePartitionPlan(db, options);
    for (Database& shard : SplitDatabase(db, plan_)) {
      lives_.push_back(std::make_unique<LiveDatabase>(std::move(shard)));
    }
  }

  std::vector<DbView> Views() {
    versions_.clear();
    std::vector<DbView> views;
    for (const auto& live : lives_) {
      versions_.push_back(live->Pin());
      views.push_back(versions_.back().view());
    }
    return views;
  }

  static constexpr uint64_t kSeed = 13;
  PartitionPlan plan_;
  std::vector<std::unique_ptr<LiveDatabase>> lives_;
  std::vector<DbVersion> versions_;
};

TEST_F(RouteAppendTest, ChildFollowsItsParentShard) {
  // A new order for existing customer 17 must land in 17's shard.
  std::vector<DbView> views = Views();
  std::string error;
  int shard = RouteAppend(views, /*rel=*/1, {int64_t{9000}, int64_t{17},
                                            std::string("laptop")},
                          kSeed, &error);
  EXPECT_EQ(shard, static_cast<int>(plan_.shard_of[0][17])) << error;
}

TEST_F(RouteAppendTest, ConflictingParentsAreRejected) {
  // Find two customers placed in different shards, then forge a row in a
  // two-parent relation referencing both. The chain schema has no such
  // relation, so build the conflict through Shipment → Order: an order in
  // shard A plus a (would-be) child shipment also referencing... a single
  // FK cannot conflict, so instead conflict parent-vs-children: customer
  // row whose CustId already has live orders in one shard while a same-pk
  // customer parent is... — the realistic conflict is an order naming a
  // customer in shard A while orders with the same OrderId PK have
  // children in shard B. Simulate: append an orphan shipment for a new
  // order id, then route that order under a customer pinned elsewhere.
  std::vector<DbView> views = Views();
  std::string error;
  const int64_t new_order_id = 7777;
  int orphan_shard = RouteAppend(
      views, /*rel=*/2, {int64_t{9100}, new_order_id, std::string("gift")},
      kSeed, &error);
  ASSERT_GE(orphan_shard, 0) << error;
  ASSERT_TRUE(lives_[orphan_shard]->Append(
      2, {int64_t{9100}, new_order_id, std::string("gift")}, &error))
      << error;

  // A customer whose shard differs from the orphan's.
  int other_customer = -1;
  for (uint32_t c = 0; c < plan_.shard_of[0].size(); ++c) {
    if (static_cast<int>(plan_.shard_of[0][c]) != orphan_shard) {
      other_customer = static_cast<int>(c);
      break;
    }
  }
  ASSERT_GE(other_customer, 0);

  views = Views();
  int shard = RouteAppend(views, /*rel=*/1,
                          {new_order_id, int64_t{other_customer},
                           std::string("tablet")},
                          kSeed, &error);
  EXPECT_EQ(shard, -1);
  EXPECT_NE(error.find("cross-shard"), std::string::npos) << error;
}

TEST_F(RouteAppendTest, OrphanChildrenThenParentCoLocate) {
  // Shipments for a not-yet-appended order, then the order itself, then
  // the order's customer-constrained placement: the whole future component
  // must converge on one shard.
  std::vector<DbView> views = Views();
  std::string error;
  const int64_t order_id = 8888;
  int s1 = RouteAppend(views, 2, {int64_t{9200}, order_id,
                                  std::string("express")},
                       kSeed, &error);
  ASSERT_GE(s1, 0) << error;
  ASSERT_TRUE(lives_[s1]->Append(2, {int64_t{9200}, order_id,
                                     std::string("express")},
                                 &error))
      << error;

  // A second orphan shipment for the same order routes to the same shard
  // even before the order exists (consistent component-key hashing).
  views = Views();
  int s2 = RouteAppend(views, 2, {int64_t{9201}, order_id,
                                  std::string("fragile")},
                       kSeed, &error);
  EXPECT_EQ(s2, s1);

  // The parent order must follow its live children. Reference a customer
  // in the same shard so the constraints agree (the conflict case is
  // covered above); a fresh customer id exerts no parent constraint.
  const int64_t fresh_customer = 40404;
  views = Views();
  int s3 = RouteAppend(views, 1, {order_id, fresh_customer,
                                  std::string("camera")},
                       kSeed, &error);
  EXPECT_EQ(s3, s1) << error;
}

TEST_F(RouteAppendTest, UnconstrainedParentHashMatchesFutureChildren) {
  // A brand-new customer routes by its PK hash; a later order for it must
  // resolve to the same shard whether or not the customer row is live yet.
  std::vector<DbView> views = Views();
  std::string error;
  const int64_t cust_id = 50505;
  int parent_shard = RouteAppend(
      views, 0, {cust_id, std::string("alice"), std::string("lima")}, kSeed,
      &error);
  ASSERT_GE(parent_shard, 0) << error;
  // Unappended parent: the child hashes the same (relation, key) component
  // key the parent did.
  int child_shard = RouteAppend(
      views, 1, {int64_t{9300}, cust_id, std::string("phone")}, kSeed,
      &error);
  EXPECT_EQ(child_shard, parent_shard);

  ASSERT_TRUE(lives_[parent_shard]->Append(
      0, {cust_id, std::string("alice"), std::string("lima")}, &error))
      << error;
  views = Views();
  int constrained = RouteAppend(
      views, 1, {int64_t{9300}, cust_id, std::string("phone")}, kSeed,
      &error);
  EXPECT_EQ(constrained, parent_shard);
}

TEST(ShardSetTest, ManifestRoundTripsAndResolvesRelativePaths) {
  std::string dir = ::testing::TempDir();
  std::string path = dir + "/test.shardset";
  ShardSet set;
  set.mode = PartitionMode::kRowRange;
  set.seed = 42;
  set.paths = {"a.qbes", "/abs/b.qbes"};
  std::string error;
  ASSERT_TRUE(WriteShardSet(path, set, &error)) << error;

  std::optional<ShardSet> read = ReadShardSet(path, &error);
  ASSERT_TRUE(read.has_value()) << error;
  EXPECT_EQ(read->mode, PartitionMode::kRowRange);
  EXPECT_EQ(read->seed, 42u);
  ASSERT_EQ(read->num_shards(), 2);
  EXPECT_EQ(read->paths[0], dir + "/a.qbes");  // resolved against manifest
  EXPECT_EQ(read->paths[1], "/abs/b.qbes");    // absolute kept verbatim

  EXPECT_FALSE(ReadShardSet(dir + "/missing.shardset", &error).has_value());
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not-a-shardset\n", f);
  std::fclose(f);
  EXPECT_FALSE(ReadShardSet(path, &error).has_value());
  EXPECT_NE(error.find("qbe-shardset-v1"), std::string::npos);
}

TEST(PartitionModeTest, NamesRoundTrip) {
  EXPECT_STREQ(PartitionModeName(PartitionMode::kHashPk), "hash");
  EXPECT_STREQ(PartitionModeName(PartitionMode::kRowRange), "range");
  EXPECT_EQ(ParsePartitionMode("hash"), PartitionMode::kHashPk);
  EXPECT_EQ(ParsePartitionMode("range"), PartitionMode::kRowRange);
  EXPECT_FALSE(ParsePartitionMode("bogus").has_value());
}

}  // namespace
}  // namespace qbe
