#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/hash64.h"

namespace qbe {
namespace {

WireRequest SampleRequest() {
  WireRequest request;
  request.id = 0x0123456789abcdefULL;
  request.deadline_ms = 250;
  request.column_names = {"person", "device", ""};
  request.rows = {
      {{"Mike", false}, {"ThinkPad", true}, {"", false}},
      {{"Mary", false}, {"", false}, {"Dropbox", false}},
  };
  return request;
}

WireResponse SampleResponse() {
  WireResponse response;
  response.id = 7;
  response.status = "ok";
  response.timed_out = false;
  response.latency_seconds = 0.004125;
  response.queue_seconds = 0.000031;
  response.num_candidates = 19;
  response.verifications = 12;
  response.estimated_cost = 3400;
  response.pruned_without_verification = 7;
  response.queries = {
      {"SELECT * FROM a JOIN b ON a.x = b.y", 3, 0.75},
      {"SELECT * FROM a", 2, 0.5},
  };
  return response;
}

WireErrorMsg SampleError() {
  return {42, WireFault::kShuttingDown, "server is draining"};
}

/// Extraction helper asserting the buffer holds exactly one valid frame.
FrameView MustExtract(const std::string& bytes) {
  FrameView frame;
  WireFault fault = WireFault::kNone;
  std::string detail;
  FrameStatus status =
      TryExtractFrame(bytes.data(), bytes.size(), &frame, &fault, &detail);
  EXPECT_EQ(status, FrameStatus::kFrame) << detail;
  EXPECT_EQ(frame.frame_bytes, bytes.size());
  return frame;
}

TEST(WireTest, RequestRoundTrip) {
  WireRequest request = SampleRequest();
  std::string bytes;
  EncodeRequestFrame(request, &bytes);
  FrameView frame = MustExtract(bytes);
  ASSERT_EQ(frame.type, WireType::kDiscoverRequest);

  WireRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequestPayload(frame.payload, frame.payload_bytes,
                                   &decoded, &error))
      << error;
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.column_names, request.column_names);
  ASSERT_EQ(decoded.rows.size(), request.rows.size());
  for (size_t r = 0; r < request.rows.size(); ++r) {
    ASSERT_EQ(decoded.rows[r].size(), request.rows[r].size());
    for (size_t c = 0; c < request.rows[r].size(); ++c) {
      EXPECT_EQ(decoded.rows[r][c].text, request.rows[r][c].text);
      EXPECT_EQ(decoded.rows[r][c].exact, request.rows[r][c].exact);
    }
  }
}

TEST(WireTest, RequestExampleTableRoundTrip) {
  ExampleTable et({"person", "device", "appliance"});
  et.AddRowCells({{"Mike", false}, {"ThinkPad", true}, {"", false}});
  et.AddRowCells({{"Mary", false}, {"iPad", false}, {"", false}});

  WireRequest request = WireRequest::FromExampleTable(et, 5, 100);
  ExampleTable back = request.ToExampleTable();
  ASSERT_EQ(back.num_rows(), et.num_rows());
  ASSERT_EQ(back.num_columns(), et.num_columns());
  for (int c = 0; c < et.num_columns(); ++c) {
    EXPECT_EQ(back.column_name(c), et.column_name(c));
  }
  for (int r = 0; r < et.num_rows(); ++r) {
    for (int c = 0; c < et.num_columns(); ++c) {
      EXPECT_EQ(back.cell(r, c).text, et.cell(r, c).text);
      EXPECT_EQ(back.cell(r, c).exact, et.cell(r, c).exact);
    }
  }
}

TEST(WireTest, ResponseRoundTrip) {
  WireResponse response = SampleResponse();
  std::string bytes;
  EncodeResponseFrame(response, &bytes);
  FrameView frame = MustExtract(bytes);
  ASSERT_EQ(frame.type, WireType::kDiscoverResponse);

  WireResponse decoded;
  std::string error;
  ASSERT_TRUE(DecodeResponsePayload(frame.payload, frame.payload_bytes,
                                    &decoded, &error))
      << error;
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_EQ(decoded.timed_out, response.timed_out);
  // Doubles travel as their IEEE-754 bytes: bit-exact, not approximate.
  EXPECT_EQ(decoded.latency_seconds, response.latency_seconds);
  EXPECT_EQ(decoded.queue_seconds, response.queue_seconds);
  EXPECT_EQ(decoded.num_candidates, response.num_candidates);
  EXPECT_EQ(decoded.verifications, response.verifications);
  EXPECT_EQ(decoded.estimated_cost, response.estimated_cost);
  EXPECT_EQ(decoded.pruned_without_verification,
            response.pruned_without_verification);
  ASSERT_EQ(decoded.queries.size(), response.queries.size());
  for (size_t i = 0; i < response.queries.size(); ++i) {
    EXPECT_EQ(decoded.queries[i].sql, response.queries[i].sql);
    EXPECT_EQ(decoded.queries[i].matched_rows,
              response.queries[i].matched_rows);
    EXPECT_EQ(decoded.queries[i].score, response.queries[i].score);
  }
}

TEST(WireTest, ErrorRoundTrip) {
  WireErrorMsg error_msg = SampleError();
  std::string bytes;
  EncodeErrorFrame(error_msg, &bytes);
  FrameView frame = MustExtract(bytes);
  ASSERT_EQ(frame.type, WireType::kError);

  WireErrorMsg decoded;
  std::string error;
  ASSERT_TRUE(DecodeErrorPayload(frame.payload, frame.payload_bytes, &decoded,
                                 &error))
      << error;
  EXPECT_EQ(decoded.id, error_msg.id);
  EXPECT_EQ(decoded.fault, error_msg.fault);
  EXPECT_EQ(decoded.message, error_msg.message);
}

TEST(WireTest, PipelinedFramesExtractInOrder) {
  std::string bytes;
  WireRequest first = SampleRequest();
  first.id = 1;
  EncodeRequestFrame(first, &bytes);
  size_t first_len = bytes.size();
  WireRequest second = SampleRequest();
  second.id = 2;
  EncodeRequestFrame(second, &bytes);

  FrameView frame;
  WireFault fault = WireFault::kNone;
  ASSERT_EQ(TryExtractFrame(bytes.data(), bytes.size(), &frame, &fault),
            FrameStatus::kFrame);
  ASSERT_EQ(frame.frame_bytes, first_len);
  WireRequest decoded;
  std::string error;
  ASSERT_TRUE(DecodeRequestPayload(frame.payload, frame.payload_bytes,
                                   &decoded, &error));
  EXPECT_EQ(decoded.id, 1u);

  ASSERT_EQ(TryExtractFrame(bytes.data() + first_len,
                            bytes.size() - first_len, &frame, &fault),
            FrameStatus::kFrame);
  ASSERT_TRUE(DecodeRequestPayload(frame.payload, frame.payload_bytes,
                                   &decoded, &error));
  EXPECT_EQ(decoded.id, 2u);
}

// --- corruption matrix -----------------------------------------------------
//
// The wal_test.cc discipline applied to the wire: every truncation length
// and every single-byte flip of a valid frame must decode to kNeedMore or
// a typed kFault — never a crash and never a false kFrame.

std::vector<std::string> SampleFrames() {
  std::vector<std::string> frames(3);
  EncodeRequestFrame(SampleRequest(), &frames[0]);
  EncodeResponseFrame(SampleResponse(), &frames[1]);
  EncodeErrorFrame(SampleError(), &frames[2]);
  return frames;
}

TEST(WireCorruptionTest, EveryTruncationIsNeedMoreOrFault) {
  for (const std::string& frame_bytes : SampleFrames()) {
    for (size_t len = 0; len < frame_bytes.size(); ++len) {
      FrameView frame;
      WireFault fault = WireFault::kNone;
      FrameStatus status =
          TryExtractFrame(frame_bytes.data(), len, &frame, &fault);
      EXPECT_NE(status, FrameStatus::kFrame) << "truncated to " << len;
      if (status == FrameStatus::kFault) {
        EXPECT_NE(fault, WireFault::kNone) << "truncated to " << len;
      }
    }
  }
}

TEST(WireCorruptionTest, EveryByteFlipIsRejectedOrIncomplete) {
  for (const std::string& pristine : SampleFrames()) {
    for (size_t i = 0; i < pristine.size(); ++i) {
      for (uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
        std::string corrupt = pristine;
        corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
        FrameView frame;
        WireFault fault = WireFault::kNone;
        FrameStatus status =
            TryExtractFrame(corrupt.data(), corrupt.size(), &frame, &fault);
        // A flipped length field may read as a longer frame (kNeedMore) —
        // a stream cannot tell corruption from an unfinished send. What
        // must never happen is a flipped frame passing as valid: the
        // checksum covers header + payload.
        EXPECT_NE(status, FrameStatus::kFrame)
            << "byte " << i << " flipped with 0x" << std::hex
            << static_cast<int>(flip);
        if (status == FrameStatus::kFault) {
          EXPECT_NE(fault, WireFault::kNone);
        }
      }
    }
  }
}

TEST(WireCorruptionTest, PayloadBitFlipsYieldBadChecksum) {
  // Flips strictly inside the payload can't be confused for framing
  // trouble: the declared length still matches, so the checksum is what
  // catches them.
  std::string bytes;
  EncodeResponseFrame(SampleResponse(), &bytes);
  for (size_t i = kWireHeaderBytes; i < bytes.size() - kWireTrailerBytes;
       ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    FrameView frame;
    WireFault fault = WireFault::kNone;
    ASSERT_EQ(TryExtractFrame(corrupt.data(), corrupt.size(), &frame, &fault),
              FrameStatus::kFault)
        << "payload byte " << i;
    EXPECT_EQ(fault, WireFault::kBadChecksum) << "payload byte " << i;
  }
}

TEST(WireCorruptionTest, BadMagicDetectedEarly) {
  std::string bytes;
  EncodeRequestFrame(SampleRequest(), &bytes);
  bytes[0] = 'X';
  FrameView frame;
  WireFault fault = WireFault::kNone;
  // Only 4 bytes are enough to spot a stream that isn't this protocol.
  EXPECT_EQ(TryExtractFrame(bytes.data(), 4, &frame, &fault),
            FrameStatus::kFault);
  EXPECT_EQ(fault, WireFault::kBadMagic);
}

TEST(WireCorruptionTest, OversizedLengthRejectedBeforeBuffering) {
  std::string bytes;
  EncodeRequestFrame(SampleRequest(), &bytes);
  // Declare a payload over the cap; only the header is present, yet the
  // frame must be rejected now rather than waiting for 2 GiB that will
  // never arrive.
  uint32_t huge = static_cast<uint32_t>(kMaxWirePayload) + 1;
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  FrameView frame;
  WireFault fault = WireFault::kNone;
  EXPECT_EQ(TryExtractFrame(bytes.data(), kWireHeaderBytes, &frame, &fault),
            FrameStatus::kFault);
  EXPECT_EQ(fault, WireFault::kTooLarge);
}

TEST(WireCorruptionTest, WrongVersionIsTyped) {
  std::string bytes;
  EncodeRequestFrame(SampleRequest(), &bytes);
  // Bump the version and fix up the checksum so only the version differs:
  // the fault must be kBadVersion, not kBadChecksum.
  uint16_t v2 = kWireVersion + 1;
  std::memcpy(&bytes[4], &v2, sizeof(v2));
  std::string rehashed = bytes.substr(0, bytes.size() - kWireTrailerBytes);
  uint64_t checksum = Hash64(rehashed.data(), rehashed.size());
  std::memcpy(&bytes[bytes.size() - kWireTrailerBytes], &checksum,
              sizeof(checksum));
  FrameView frame;
  WireFault fault = WireFault::kNone;
  EXPECT_EQ(TryExtractFrame(bytes.data(), bytes.size(), &frame, &fault),
            FrameStatus::kFault);
  EXPECT_EQ(fault, WireFault::kBadVersion);
}

TEST(WireCorruptionTest, UnknownTypeIsTyped) {
  std::string bytes;
  EncodeRequestFrame(SampleRequest(), &bytes);
  uint16_t bogus = 99;
  std::memcpy(&bytes[6], &bogus, sizeof(bogus));
  std::string rehashed = bytes.substr(0, bytes.size() - kWireTrailerBytes);
  uint64_t checksum = Hash64(rehashed.data(), rehashed.size());
  std::memcpy(&bytes[bytes.size() - kWireTrailerBytes], &checksum,
              sizeof(checksum));
  FrameView frame;
  WireFault fault = WireFault::kNone;
  EXPECT_EQ(TryExtractFrame(bytes.data(), bytes.size(), &frame, &fault),
            FrameStatus::kFault);
  EXPECT_EQ(fault, WireFault::kBadType);
}

// --- payload validation ----------------------------------------------------

TEST(WirePayloadTest, TrailingGarbageRejected) {
  std::string bytes;
  EncodeRequestFrame(SampleRequest(), &bytes);
  FrameView frame = MustExtract(bytes);
  std::string padded(frame.payload, frame.payload_bytes);
  padded.push_back('\0');
  WireRequest decoded;
  std::string error;
  EXPECT_FALSE(
      DecodeRequestPayload(padded.data(), padded.size(), &decoded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WirePayloadTest, EveryRequestPayloadTruncationRejected) {
  std::string bytes;
  EncodeRequestFrame(SampleRequest(), &bytes);
  FrameView frame = MustExtract(bytes);
  for (size_t len = 0; len < frame.payload_bytes; ++len) {
    WireRequest decoded;
    std::string error;
    EXPECT_FALSE(DecodeRequestPayload(frame.payload, len, &decoded, &error))
        << "payload truncated to " << len;
  }
}

TEST(WirePayloadTest, EveryResponsePayloadTruncationRejected) {
  std::string bytes;
  EncodeResponseFrame(SampleResponse(), &bytes);
  FrameView frame = MustExtract(bytes);
  for (size_t len = 0; len < frame.payload_bytes; ++len) {
    WireResponse decoded;
    std::string error;
    EXPECT_FALSE(DecodeResponsePayload(frame.payload, len, &decoded, &error))
        << "payload truncated to " << len;
  }
}

TEST(WirePayloadTest, ImplausibleCountsRejectedWithoutAllocation) {
  // A request payload claiming 2^31 columns in a 20-byte payload must be
  // rejected by the count-vs-size plausibility check, not by an OOM.
  std::string payload;
  payload.resize(20, '\0');
  uint64_t id = 1;
  std::memcpy(&payload[0], &id, sizeof(id));
  uint32_t deadline = 0;
  std::memcpy(&payload[8], &deadline, sizeof(deadline));
  uint32_t columns = 0x80000000u;
  std::memcpy(&payload[12], &columns, sizeof(columns));
  WireRequest decoded;
  std::string error;
  EXPECT_FALSE(
      DecodeRequestPayload(payload.data(), payload.size(), &decoded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WirePayloadTest, ErrorPayloadFaultCodeRangeChecked) {
  std::string bytes;
  EncodeErrorFrame(SampleError(), &bytes);
  FrameView frame = MustExtract(bytes);
  std::string payload(frame.payload, frame.payload_bytes);
  uint16_t bogus = 200;  // beyond kShuttingDown
  std::memcpy(&payload[8], &bogus, sizeof(bogus));
  WireErrorMsg decoded;
  std::string error;
  EXPECT_FALSE(
      DecodeErrorPayload(payload.data(), payload.size(), &decoded, &error));
}

}  // namespace
}  // namespace qbe
