// Completeness and correctness of join materialization: the executor's
// MaterializeAssignments must return *exactly* the satisfying row
// combinations the brute-force reference finds, including under dangling
// foreign keys (rows with no join partner must never appear).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/retailer.h"
#include "exec/executor.h"
#include "schema/subtree_enum.h"
#include "test_util.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace qbe {
namespace {

/// Brute-force enumeration of satisfying assignments, as (vertex -> row)
/// maps serialized for comparison.
std::set<std::vector<uint32_t>> BruteForceAssignments(
    const Database& db, const JoinTree& tree,
    const std::vector<PhrasePredicate>& predicates,
    const std::vector<int>& vertex_order) {
  std::set<std::vector<uint32_t>> results;
  std::vector<int> vertices = tree.Vertices();
  std::vector<uint32_t> current(vertices.size(), 0);
  auto vertex_pos = [&](int rel) {
    return static_cast<int>(std::find(vertices.begin(), vertices.end(), rel) -
                            vertices.begin());
  };
  for (;;) {
    bool ok = true;
    for (int e : tree.EdgeIds()) {
      const ForeignKey& fk = db.foreign_key(e);
      if (db.relation(fk.from_rel)
              .IdAt(fk.from_col, current[vertex_pos(fk.from_rel)]) !=
          db.relation(fk.to_rel)
              .IdAt(fk.to_col, current[vertex_pos(fk.to_rel)])) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const PhrasePredicate& pred : predicates) {
        const std::string_view cell =
            db.relation(pred.column.rel)
                .TextAt(pred.column.col, current[vertex_pos(pred.column.rel)]);
        if (!IsTokenSubsequence(pred.tokens, Tokenize(cell))) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      // Reorder to the executor's vertex order.
      std::vector<uint32_t> reordered;
      for (int v : vertex_order) {
        reordered.push_back(current[vertex_pos(v)]);
      }
      results.insert(std::move(reordered));
    }
    size_t pos = 0;
    while (pos < vertices.size()) {
      if (++current[pos] < db.relation(vertices[pos]).num_rows()) break;
      current[pos] = 0;
      ++pos;
    }
    if (pos == vertices.size()) break;
  }
  return results;
}

TEST(ExecutorMaterializeTest, PropertyMatchesBruteForceExactly) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Database db = MakeScaledRetailerDatabase(5, 5, 4, 4, 12, 12, 6, seed);
    SchemaGraph graph(db);
    Executor exec(db, graph);
    Rng rng(seed * 7);
    std::vector<JoinTree> trees = EnumerateSubtrees(graph, 4);
    for (int trial = 0; trial < 25; ++trial) {
      const JoinTree& tree = trees[rng.NextBounded(trees.size())];
      // Occasionally constrain with a predicate from actual data.
      std::vector<PhrasePredicate> predicates;
      if (rng.NextBool(0.5)) {
        std::vector<int> vertices = tree.Vertices();
        int v = vertices[rng.NextBounded(vertices.size())];
        const Relation& rel = db.relation(v);
        for (int c = 0; c < rel.num_columns(); ++c) {
          if (rel.columns()[c].type == ColumnType::kText &&
              rel.num_rows() > 0) {
            const std::string_view cell =
                rel.TextAt(c, rng.NextBounded(rel.num_rows()));
            std::vector<std::string> tokens = Tokenize(cell);
            predicates.push_back(PhrasePredicate{
                ColumnRef{v, c},
                {tokens[rng.NextBounded(tokens.size())]},
                false});
            break;
          }
        }
      }
      std::vector<int> order;
      std::vector<std::vector<uint32_t>> got =
          exec.MaterializeAssignments(tree, predicates, 100000, &order);
      std::set<std::vector<uint32_t>> got_set(got.begin(), got.end());
      EXPECT_EQ(got_set.size(), got.size()) << "duplicate assignments";
      EXPECT_EQ(got_set,
                BruteForceAssignments(db, tree, predicates, order));
    }
  }
}

TEST(ExecutorMaterializeTest, DanglingForeignKeysExcluded) {
  // Fact rows referencing missing dim rows must not join.
  Database db;
  Relation dim("Dim", {{"id", ColumnType::kId}, {"t", ColumnType::kText}});
  dim.AppendRow({int64_t{1}, std::string("alpha")});
  dim.AppendRow({int64_t{2}, std::string("beta")});
  Relation fact("Fact", {{"fid", ColumnType::kId},
                         {"id", ColumnType::kId},
                         {"note", ColumnType::kText}});
  fact.AppendRow({int64_t{1}, int64_t{1}, std::string("ok one")});
  fact.AppendRow({int64_t{2}, int64_t{99}, std::string("dangling")});
  fact.AppendRow({int64_t{3}, int64_t{2}, std::string("ok two")});
  db.AddRelation(std::move(dim));
  db.AddRelation(std::move(fact));
  db.AddForeignKey("Fact", "id", "Dim", "id");
  db.BuildIndexes();
  SchemaGraph graph(db);
  Executor exec(db, graph);

  JoinTree tree = ExtendTree(JoinTree::Single(0), graph, 0);
  std::vector<int> order;
  auto assignments = exec.MaterializeAssignments(tree, {}, 100, &order);
  EXPECT_EQ(assignments.size(), 2u);  // dangling row excluded

  // Existence with a predicate that only the dangling row satisfies.
  int fact_rel = db.RelationIdByName("Fact");
  EXPECT_FALSE(exec.Exists(
      tree, {{ColumnRef{fact_rel, 2}, Tokenize("dangling"), false}}));
  EXPECT_TRUE(exec.Exists(
      tree, {{ColumnRef{fact_rel, 2}, Tokenize("ok"), false}}));
}

TEST(ExecutorMaterializeTest, LimitTruncatesDeterministically) {
  Database db = MakeScaledRetailerDatabase(10, 10, 5, 5, 40, 40, 10, 3);
  SchemaGraph graph(db);
  Executor exec(db, graph);
  JoinTree tree = test::Tree(db, graph, {"Sales", "Customer"});
  std::vector<int> order;
  auto all = exec.MaterializeAssignments(tree, {}, 100000, &order);
  ASSERT_GT(all.size(), 5u);
  auto limited = exec.MaterializeAssignments(tree, {}, 5, &order);
  ASSERT_EQ(limited.size(), 5u);
  // The limited prefix is a prefix of the full enumeration.
  for (size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited[i], all[i]);
  }
}

}  // namespace
}  // namespace qbe
