#include "core/weave.h"

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/verify_all.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "test_util.h"

namespace qbe {
namespace {

class WeaveTest : public ::testing::Test {
 protected:
  WeaveTest()
      : db_(MakeRetailerDatabase()),
        graph_(db_),
        exec_(db_, graph_),
        et_(MakeFigure2ExampleTable()) {
    candidates_ = GenerateCandidates(db_, graph_, et_, {});
  }

  VerifyContext Ctx() {
    return VerifyContext{db_, graph_, exec_, et_, candidates_, 42};
  }

  Database db_;
  SchemaGraph graph_;
  Executor exec_;
  ExampleTable et_;
  std::vector<CandidateQuery> candidates_;
};

TEST_F(WeaveTest, JoinTreeWeaveAgreesWithVerifyAll) {
  VerifyAll reference;
  JoinTreeWeave weave;
  VerificationCounters c1, c2;
  VerifyContext ctx = Ctx();
  EXPECT_EQ(reference.Verify(ctx, &c1), weave.Verify(ctx, &c2));
}

TEST_F(WeaveTest, JoinTreeWeaveRowMajorAccounting) {
  // Row-major: 3 candidates verified on row 1 (all pass), then on row 2
  // (Owner-based fail), then the survivor on row 3: 3 + 3 + 1 = 7.
  JoinTreeWeave weave;
  VerificationCounters counters;
  VerifyContext ctx = Ctx();
  weave.Verify(ctx, &counters);
  EXPECT_EQ(counters.verifications, 7);
}

TEST_F(WeaveTest, TupleTreeWeaveAgrees) {
  VerifyAll reference;
  TupleTreeWeave weave;
  VerificationCounters c1, c2;
  VerifyContext ctx = Ctx();
  EXPECT_EQ(reference.Verify(ctx, &c1), weave.Verify(ctx, &c2));
}

TEST_F(WeaveTest, TupleTreeWeaveTracksMemory) {
  TupleTreeWeave weave;
  VerificationCounters counters;
  VerifyContext ctx = Ctx();
  weave.Verify(ctx, &counters);
  // The surviving CQ1 materializes one tuple tree per row; peak memory
  // must reflect retained trees.
  EXPECT_GT(counters.peak_memory_bytes, 0u);
}

TEST_F(WeaveTest, TupleTreeWeaveMemoryGrowsWithData) {
  // On a larger database, Weave's materialized tuple trees grow — the
  // §6.3/Figure 16 pathology in miniature.
  Database big = MakeScaledRetailerDatabase(50, 50, 20, 20, 400, 400, 100,
                                            777);
  SchemaGraph graph(big);
  Executor exec(big, graph);
  ExampleTable et({"A", "B"});
  // A sparse, low-selectivity ET: common first names.
  et.AddRow({"Mike", ""});
  et.AddRow({"", "laptop"});
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(big, graph, et, {});
  if (candidates.empty()) GTEST_SKIP() << "no candidates for this seed";
  VerifyContext ctx{big, graph, exec, et, candidates, 42};
  TupleTreeWeave weave;
  VerificationCounters counters;
  weave.Verify(ctx, &counters);
  TupleTreeWeave small_cap(/*per_query_row_cap=*/2);
  VerificationCounters capped;
  small_cap.Verify(ctx, &capped);
  EXPECT_GE(counters.peak_memory_bytes, capped.peak_memory_bytes);
}

TEST_F(WeaveTest, EmptyCandidates) {
  std::vector<CandidateQuery> none;
  VerifyContext ctx{db_, graph_, exec_, et_, none, 42};
  JoinTreeWeave weave;
  VerificationCounters counters;
  EXPECT_TRUE(weave.Verify(ctx, &counters).empty());
}

}  // namespace
}  // namespace qbe
