// Concurrency differential suite for the live-ingestion subsystem
// (DESIGN.md §12): a writer appends (and tombstones) while discoveries at
// 1, 2 and 8 verify-threads pin epochs, and a compactor races both. Every
// pinned epoch's discovery output must be bit-identical to a from-scratch
// load of that epoch's materialized data — regardless of what published
// after the pin. Run under TSan in CI (label: slow, ingest).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/discovery.h"
#include "datagen/retailer.h"
#include "ingest/db_view.h"
#include "ingest/live_db.h"

namespace qbe {
namespace {

struct CanonQuery {
  std::string sql;
  int matched_rows;

  friend bool operator==(const CanonQuery& a, const CanonQuery& b) {
    return a.sql == b.sql && a.matched_rows == b.matched_rows;
  }
};

std::vector<CanonQuery> Canon(const DiscoveryResult& result) {
  std::vector<CanonQuery> out;
  out.reserve(result.queries.size());
  for (const DiscoveredQuery& q : result.queries) {
    out.push_back({q.sql, q.matched_rows});
  }
  std::sort(out.begin(), out.end(),
            [](const CanonQuery& a, const CanonQuery& b) {
              return a.sql < b.sql;
            });
  return out;
}

/// One discovery observed mid-flight: the pin (which keeps the epoch's
/// base + delta alive however many versions publish after it) plus what
/// discovery returned against it.
struct Sample {
  DbVersion pin;
  int threads;
  std::vector<CanonQuery> result;
};

DiscoveryOptions Options(int threads) {
  DiscoveryOptions options;
  options.verify.threads = threads;
  return options;
}

/// The writer: appends customers (some wired into Sales so they join to
/// ThinkPad + Office and genuinely change the Figure-2 valid set), and
/// tombstones the newest live customer every third op. With
/// `racing_compaction` a tombstone may lose the race against a concurrent
/// renumbering Compact — that rejection is benign and skipped; without
/// compaction every mutation must be admitted.
void RunWriter(LiveDatabase& live, int customer_rel, int sales_rel, int ops,
               bool racing_compaction, std::atomic<bool>& failed) {
  std::string error;
  for (int op = 0; op < ops; ++op) {
    bool ok = true;
    if (op % 3 == 2) {
      // Victim: the highest-id live customer at pin time. Compaction can
      // renumber between the pin and the Tombstone; the row id then either
      // names a different live row (still a valid kill) or misses.
      const DbVersion pin = live.Pin();
      const DbView view = pin.view();
      int64_t victim = -1;
      for (int64_t row = view.TotalRows(customer_rel) - 1; row >= 0; --row) {
        if (view.IsLive(customer_rel, static_cast<uint32_t>(row))) {
          victim = row;
          break;
        }
      }
      ASSERT_GE(victim, 0);  // the base rows alone guarantee a live row
      ok = live.Tombstone(customer_rel, static_cast<uint32_t>(victim), &error);
      if (!ok && racing_compaction) continue;  // lost the renumbering race
    } else {
      const int64_t cust_id = 1000 + op;
      ok = live.Append(customer_rel,
                       {cust_id, std::string("Mike Clone ") +
                                     std::to_string(op)},
                       &error);
      if (ok) {
        // Half the clones buy ThinkPad X1 + Office 2013 (device 1, app 1).
        if (op % 2 == 0) {
          ok = live.Append(sales_rel,
                           {int64_t{5000 + op}, cust_id, int64_t{1},
                            int64_t{1}},
                           &error);
        }
      }
    }
    if (!ok) {
      ADD_FAILURE() << "writer op " << op << ": " << error;
      failed.store(true);
      return;
    }
    std::this_thread::yield();
  }
}

/// A reader: repeatedly pin the current epoch, discover at `threads`
/// verify-threads, and record (pin, result) for post-hoc verification.
void RunReader(LiveDatabase& live, const ExampleTable& et, int threads,
               int iterations, std::mutex& mu, std::vector<Sample>& samples) {
  for (int i = 0; i < iterations; ++i) {
    DbVersion pin = live.Pin();
    DiscoveryResult result =
        DiscoverQueries(pin.view(), et, Options(threads), pin.epoch);
    ASSERT_TRUE(result.ok()) << result.error;
    std::lock_guard<std::mutex> lock(mu);
    samples.push_back({std::move(pin), threads, Canon(result)});
  }
}

/// Post-hoc: every sample must match a cold load of its pinned epoch, and
/// samples of the same epoch must agree with each other across thread
/// counts (thread count never changes the valid set).
void VerifySamples(const ExampleTable& et, std::vector<Sample>& samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              return a.pin.epoch < b.pin.epoch;
            });
  size_t cold_loads = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    if (i > 0 && samples[i - 1].pin.epoch == s.pin.epoch) {
      // Same epoch already verified against its cold load: cross-check
      // the two observations directly (cheap).
      EXPECT_EQ(samples[i - 1].result, s.result)
          << "epoch " << s.pin.epoch << ": " << samples[i - 1].threads
          << "-thread and " << s.threads << "-thread discovery disagree";
      continue;
    }
    ++cold_loads;
    Database cold = MaterializeDatabase(s.pin.view());
    std::vector<CanonQuery> fresh = Canon(DiscoverQueries(cold, et));
    EXPECT_EQ(s.result, fresh)
        << "epoch " << s.pin.epoch << " at " << s.threads
        << " threads diverges from its from-scratch load";
  }
  // The run must have actually observed concurrent epochs.
  EXPECT_GT(cold_loads, 1u);
}

class IngestConcurrencyTest : public ::testing::Test {};

TEST_F(IngestConcurrencyTest, DiscoveryPinsBitIdenticalEpochsDuringAppends) {
  LiveDatabase live(MakeRetailerDatabase());
  const ExampleTable et = MakeFigure2ExampleTable();
  const DbVersion v0 = live.Pin();
  const int customer = v0.base->RelationIdByName("Customer");
  const int sales = v0.base->RelationIdByName("Sales");
  ASSERT_GE(customer, 0);
  ASSERT_GE(sales, 0);

  std::atomic<bool> failed{false};
  std::mutex mu;
  std::vector<Sample> samples;
  std::thread writer(
      [&] { RunWriter(live, customer, sales, 45, false, failed); });
  std::vector<std::thread> readers;
  for (int threads : {1, 2, 8}) {
    readers.emplace_back(
        [&, threads] { RunReader(live, et, threads, 8, mu, samples); });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(failed.load());

  // One final sample of the settled end state from each thread count.
  for (int threads : {1, 2, 8}) RunReader(live, et, threads, 1, mu, samples);
  VerifySamples(et, samples);
}

TEST_F(IngestConcurrencyTest, CompactionRacesDiscoveryWithoutTearingPins) {
  LiveDatabase live(MakeRetailerDatabase());
  const ExampleTable et = MakeFigure2ExampleTable();
  const DbVersion v0 = live.Pin();
  const int customer = v0.base->RelationIdByName("Customer");
  const int sales = v0.base->RelationIdByName("Sales");

  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::mutex mu;
  std::vector<Sample> samples;
  std::thread writer([&] {
    RunWriter(live, customer, sales, 45, true, failed);
    done.store(true);
  });
  // The compactor repeatedly folds whatever overlay exists mid-stream.
  // Old pins must stay readable: their shared_ptrs outlive the swap.
  std::thread compactor([&] {
    std::string error;
    int compactions = 0;
    while (!done.load()) {
      if (!live.Compact("", &error)) {
        ADD_FAILURE() << "compaction: " << error;
        failed.store(true);
        return;
      }
      ++compactions;
      std::this_thread::yield();
    }
    EXPECT_GT(compactions, 0);
  });
  std::vector<std::thread> readers;
  for (int threads : {1, 2, 8}) {
    readers.emplace_back(
        [&, threads] { RunReader(live, et, threads, 8, mu, samples); });
  }
  writer.join();
  compactor.join();
  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(failed.load());

  for (int threads : {1, 2, 8}) RunReader(live, et, threads, 1, mu, samples);
  VerifySamples(et, samples);

  // After the dust settles: one more compaction, then the end state still
  // equals its cold load.
  std::string error;
  ASSERT_TRUE(live.Compact("", &error)) << error;
  DbVersion end = live.Pin();
  EXPECT_TRUE(end.view().plain());
  std::vector<CanonQuery> a =
      Canon(DiscoverQueries(end.view(), et, {}, end.epoch));
  Database cold = MaterializeDatabase(end.view());
  std::vector<CanonQuery> b = Canon(DiscoverQueries(cold, et));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace qbe
