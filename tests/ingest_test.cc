// Live-ingestion subsystem tests (DESIGN.md §12): overlay reads, epoch
// pinning, WAL replay, validation, and compaction. The central invariant,
// asserted throughout: discovery over a pinned (base + delta) epoch is
// bit-identical to discovery over a from-scratch load of that epoch's
// merged data.

#include "ingest/live_db.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "datagen/retailer.h"
#include "ingest/db_view.h"
#include "ingest/wal.h"
#include "storage/database.h"

namespace qbe {
namespace {

class IngestTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    std::string path = testing::TempDir() + "/ingest_" + name;
    std::filesystem::remove(path);
    return path;
  }

  static int RelId(const DbVersion& v, const std::string& name) {
    int rel = v.base->RelationIdByName(name);
    EXPECT_GE(rel, 0) << name;
    return rel;
  }

  /// Discovery results in a comparable canonical order (sorted by SQL).
  struct CanonQuery {
    std::string sql;
    int matched_rows;
    double score;
  };
  static std::vector<CanonQuery> Canon(const DiscoveryResult& result) {
    std::vector<CanonQuery> out;
    out.reserve(result.queries.size());
    for (const DiscoveredQuery& q : result.queries) {
      out.push_back({q.sql, q.matched_rows, q.score});
    }
    std::sort(out.begin(), out.end(),
              [](const CanonQuery& a, const CanonQuery& b) {
                return a.sql < b.sql;
              });
    return out;
  }

  /// The invariant: discovery over the pinned epoch == discovery over a
  /// cold load of MaterializeDatabase(epoch), queries and counts alike.
  static void ExpectDiscoveryMatchesColdLoad(const DbVersion& v,
                                             const ExampleTable& et,
                                             const DiscoveryOptions& options =
                                                 {}) {
    DiscoveryResult live = DiscoverQueries(v.view(), et, options, v.epoch);
    Database cold = MaterializeDatabase(v.view());
    DiscoveryResult fresh = DiscoverQueries(cold, et, options);
    ASSERT_EQ(live.ok(), fresh.ok()) << live.error << " vs " << fresh.error;
    std::vector<CanonQuery> a = Canon(live);
    std::vector<CanonQuery> b = Canon(fresh);
    ASSERT_EQ(a.size(), b.size()) << "epoch " << v.epoch;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].sql, b[i].sql) << "epoch " << v.epoch;
      EXPECT_EQ(a[i].matched_rows, b[i].matched_rows) << a[i].sql;
      EXPECT_DOUBLE_EQ(a[i].score, b[i].score) << a[i].sql;
    }
  }

  /// A mutation mix touching appends, tombstones and a PK reinsert:
  /// a new customer who buys a ThinkPad, a tombstoned base customer
  /// (Bob Evans), and Bob's CustId reused by a different customer.
  static void ApplyStandardMutations(LiveDatabase& live) {
    const DbVersion v = live.Pin();
    const int customer = RelId(v, "Customer");
    const int sales = RelId(v, "Sales");
    std::string error;
    ASSERT_TRUE(live.Append(
        customer, {int64_t{4}, std::string("Mike Tyson")}, &error))
        << error;
    // Sales(SId, CustId, DevId, AppId): new customer 4 buys device 1
    // (ThinkPad X1) with app 1 (Office 2013).
    ASSERT_TRUE(live.Append(
        sales, {int64_t{100}, int64_t{4}, int64_t{1}, int64_t{1}}, &error))
        << error;
    ASSERT_TRUE(live.Tombstone(customer, 2, &error)) << error;  // Bob Evans
    ASSERT_TRUE(live.Append(
        customer, {int64_t{3}, std::string("Bob Marley")}, &error))
        << error;  // reinsert of the tombstoned CustId 3
  }
};

TEST_F(IngestTest, OverlayReadsMatchMaterializedColdLoad) {
  LiveDatabase live(MakeRetailerDatabase());
  ApplyStandardMutations(live);
  const DbVersion v = live.Pin();
  const DbView view = v.view();
  ASSERT_FALSE(view.plain());

  Database cold = MaterializeDatabase(view);
  ASSERT_EQ(cold.num_relations(), view.num_relations());
  for (int r = 0; r < view.num_relations(); ++r) {
    const Relation& cold_rel = cold.relation(r);
    ASSERT_EQ(cold_rel.num_rows(), view.LiveRows(r)) << cold_rel.name();
    // Live rows in ascending global order must read back cell-identical.
    uint32_t cold_row = 0;
    for (uint32_t row = 0; row < view.TotalRows(r); ++row) {
      if (!view.IsLive(r, row)) continue;
      for (int c = 0; c < cold_rel.num_columns(); ++c) {
        if (cold_rel.columns()[c].type == ColumnType::kId) {
          EXPECT_EQ(view.IdAt(r, c, row), cold_rel.IdAt(c, cold_row));
        } else {
          EXPECT_EQ(view.TextAt(r, c, row), cold_rel.TextAt(c, cold_row));
        }
      }
      ++cold_row;
    }
    ASSERT_EQ(cold_row, cold_rel.num_rows());
  }

  // Tokens introduced only by appended rows resolve through the view.
  EXPECT_NE(view.FindToken("tyson"), TokenDict::kNoToken);
  EXPECT_NE(view.FindToken("marley"), TokenDict::kNoToken);
  EXPECT_EQ(view.FindToken("nosuchtokenanywhere"), TokenDict::kNoToken);
}

TEST_F(IngestTest, DiscoveryOverOverlayMatchesColdLoadAtEveryStep) {
  LiveDatabase live(MakeRetailerDatabase());
  const ExampleTable et = MakeFigure2ExampleTable();
  const DbVersion v0 = live.Pin();
  const int customer = RelId(v0, "Customer");
  const int sales = RelId(v0, "Sales");

  // Epoch 0: plain view, must equal the classic Database overload exactly.
  ExpectDiscoveryMatchesColdLoad(live.Pin(), et);

  std::string error;
  ASSERT_TRUE(live.Append(
      customer, {int64_t{4}, std::string("Mike Rivers")}, &error))
      << error;
  ExpectDiscoveryMatchesColdLoad(live.Pin(), et);

  // A Sales row joining the appended customer to ThinkPad + Office makes
  // customer 4 a genuine Figure-2 match through the overlay join edges.
  ASSERT_TRUE(live.Append(
      sales, {int64_t{100}, int64_t{4}, int64_t{1}, int64_t{1}}, &error))
      << error;
  ExpectDiscoveryMatchesColdLoad(live.Pin(), et);

  // Killing base customer Mike Jones (row 0) removes an original match.
  ASSERT_TRUE(live.Tombstone(customer, 0, &error)) << error;
  ExpectDiscoveryMatchesColdLoad(live.Pin(), et);

  // Reinserting the freed CustId 1 with a different name.
  ASSERT_TRUE(live.Append(
      customer, {int64_t{1}, std::string("Mike Stone Jr")}, &error))
      << error;
  ExpectDiscoveryMatchesColdLoad(live.Pin(), et);

  // The invariant holds across verification algorithms and thread counts.
  for (Algorithm algo : {Algorithm::kVerifyAll, Algorithm::kWeave}) {
    DiscoveryOptions options;
    options.algorithm = algo;
    ExpectDiscoveryMatchesColdLoad(live.Pin(), et, options);
  }
  DiscoveryOptions threaded;
  threaded.verify.threads = 2;
  ExpectDiscoveryMatchesColdLoad(live.Pin(), et, threaded);
}

TEST_F(IngestTest, PinnedEpochsAreImmutableUnderLaterMutations) {
  LiveDatabase live(MakeRetailerDatabase());
  const ExampleTable et = MakeFigure2ExampleTable();
  const DbVersion v0 = live.Pin();
  const int customer = RelId(v0, "Customer");
  const DiscoveryResult before = DiscoverQueries(v0.view(), et, {}, v0.epoch);

  ApplyStandardMutations(live);
  const DbVersion v1 = live.Pin();
  EXPECT_GT(v1.epoch, v0.epoch);

  // The old pin still reads epoch-0 data: three customers, Bob Evans alive.
  EXPECT_EQ(v0.view().LiveRows(customer), 3u);
  EXPECT_EQ(v0.view().TextAt(customer, 1, 2), "Bob Evans");
  EXPECT_EQ(v1.view().LiveRows(customer), 4u);

  // Discovery over the old pin is unchanged and still cold-load identical.
  const DiscoveryResult after = DiscoverQueries(v0.view(), et, {}, v0.epoch);
  EXPECT_EQ(Canon(before).size(), Canon(after).size());
  for (size_t i = 0; i < Canon(before).size(); ++i) {
    EXPECT_EQ(Canon(before)[i].sql, Canon(after)[i].sql);
  }
  ExpectDiscoveryMatchesColdLoad(v0, et);
  ExpectDiscoveryMatchesColdLoad(v1, et);
}

TEST_F(IngestTest, InvalidMutationsAreRejectedWithoutPublishing) {
  LiveDatabase live(MakeRetailerDatabase());
  const DbVersion v0 = live.Pin();
  const int customer = RelId(v0, "Customer");
  const uint64_t epoch0 = live.epoch();
  std::string error;

  EXPECT_FALSE(live.Append(99, {int64_t{1}}, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  EXPECT_FALSE(live.Append(customer, {int64_t{9}}, &error));  // arity
  EXPECT_NE(error.find("got 1 cells, want 2"), std::string::npos) << error;

  EXPECT_FALSE(live.Append(
      customer, {std::string("nine"), std::string("Kim")}, &error));
  EXPECT_NE(error.find("wants id, got text"), std::string::npos) << error;

  // CustId 2 (Mary Smith) is live: PK duplicate.
  EXPECT_FALSE(live.Append(
      customer, {int64_t{2}, std::string("Imposter")}, &error));
  EXPECT_NE(error.find("duplicate key 2"), std::string::npos) << error;

  EXPECT_FALSE(live.Tombstone(customer, 999, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;

  // AppendBatch is all-or-nothing: a duplicate inside the batch (two rows
  // claiming CustId 7) rejects the whole batch.
  EXPECT_FALSE(live.AppendBatch(
      customer,
      {{int64_t{7}, std::string("First")}, {int64_t{7}, std::string("Second")}},
      &error));
  EXPECT_NE(error.find("duplicate key 7"), std::string::npos) << error;

  // Nothing was published: same epoch, no overlay.
  EXPECT_EQ(live.epoch(), epoch0);
  EXPECT_EQ(live.delta_rows(), 0u);
  EXPECT_TRUE(live.Pin().view().plain());

  // Double tombstone: the second kill of the same row is rejected.
  ASSERT_TRUE(live.Tombstone(customer, 1, &error)) << error;
  EXPECT_FALSE(live.Tombstone(customer, 1, &error));
  EXPECT_NE(error.find("already dead"), std::string::npos) << error;

  // But the freed PK (CustId 2) can now be reinserted.
  EXPECT_TRUE(live.Append(
      customer, {int64_t{2}, std::string("Mary Shelley")}, &error))
      << error;
}

TEST_F(IngestTest, WalReplayRestoresTheOverlayExactly) {
  const std::string wal_path = TempPath("replay.qbel");
  const ExampleTable et = MakeFigure2ExampleTable();
  std::string error;
  {
    LiveDatabase live(MakeRetailerDatabase());
    ASSERT_TRUE(live.AttachWal(wal_path, &error)) << error;
    EXPECT_TRUE(live.has_wal());
    ApplyStandardMutations(live);
    ASSERT_TRUE(live.Flush(&error)) << error;
    EXPECT_EQ(live.delta_ops(), 4u);
  }

  LiveDatabase replayed(MakeRetailerDatabase());
  ASSERT_TRUE(replayed.AttachWal(wal_path, &error)) << error;
  EXPECT_EQ(replayed.delta_ops(), 4u);
  EXPECT_EQ(replayed.delta_rows(), 3u);
  EXPECT_EQ(replayed.tombstones(), 1u);

  // Same mutations applied without a WAL: overlay state must be identical.
  LiveDatabase direct(MakeRetailerDatabase());
  ApplyStandardMutations(direct);
  const DbVersion a = replayed.Pin();
  const DbVersion b = direct.Pin();
  ExpectDiscoveryMatchesColdLoad(a, et);
  DiscoveryResult ra = DiscoverQueries(a.view(), et, {}, a.epoch);
  DiscoveryResult rb = DiscoverQueries(b.view(), et, {}, b.epoch);
  std::vector<CanonQuery> ca = Canon(ra);
  std::vector<CanonQuery> cb = Canon(rb);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].sql, cb[i].sql);
    EXPECT_EQ(ca[i].matched_rows, cb[i].matched_rows);
  }

  // The replayed instance keeps logging: mutate, reopen, both ops present.
  const int customer = RelId(a, "Customer");
  ASSERT_TRUE(replayed.Append(
      customer, {int64_t{8}, std::string("Grace Ives")}, &error))
      << error;
  ASSERT_TRUE(replayed.Flush(&error)) << error;
  WalReadResult log = ReadWal(wal_path);
  ASSERT_TRUE(log.ok) << log.error;
  EXPECT_EQ(log.records.size(), 5u);
}

TEST_F(IngestTest, WalTornTailIsTruncatedOnAttach) {
  const std::string wal_path = TempPath("torn.qbel");
  std::string error;
  {
    LiveDatabase live(MakeRetailerDatabase());
    ASSERT_TRUE(live.AttachWal(wal_path, &error)) << error;
    const int customer = RelId(live.Pin(), "Customer");
    ASSERT_TRUE(live.Append(
        customer, {int64_t{4}, std::string("Torn Tail")}, &error))
        << error;
    ASSERT_TRUE(live.Flush(&error)) << error;
  }
  {  // Simulate a crash mid-write: half a frame dangling off the end.
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out.write("\x20\x00\x00\x00\x01\x00", 6);
  }
  LiveDatabase live(MakeRetailerDatabase());
  ASSERT_TRUE(live.AttachWal(wal_path, &error)) << error;
  EXPECT_EQ(live.delta_ops(), 1u);  // the complete record survived

  // Attach healed the log in place: a fresh read sees no torn tail.
  WalReadResult log = ReadWal(wal_path);
  ASSERT_TRUE(log.ok) << log.error;
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.records.size(), 1u);
}

TEST_F(IngestTest, CorruptOrInconsistentWalIsRefused) {
  const std::string wal_path = TempPath("corrupt.qbel");
  std::string error;
  {
    LiveDatabase live(MakeRetailerDatabase());
    ASSERT_TRUE(live.AttachWal(wal_path, &error)) << error;
    const int customer = RelId(live.Pin(), "Customer");
    ASSERT_TRUE(live.Append(
        customer, {int64_t{4}, std::string("Flip Target")}, &error))
        << error;
    ASSERT_TRUE(live.Flush(&error)) << error;
  }
  {  // Flip one payload byte of the record: checksum must catch it.
    std::fstream f(wal_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekp(size - 12);  // inside the payload, before the 8-byte checksum
    char c;
    f.seekg(size - 12);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x01);
    f.seekp(size - 12);
    f.write(&c, 1);
  }
  {
    LiveDatabase live(MakeRetailerDatabase());
    EXPECT_FALSE(live.AttachWal(wal_path, &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  }

  // A well-formed log that does not apply to the base (bad relation id)
  // is also refused, with the offending record named.
  const std::string bad_path = TempPath("badrel.qbel");
  {
    WalWriter writer;
    ASSERT_TRUE(writer.Open(bad_path, &error)) << error;
    WalRecord record;
    record.kind = WalRecord::kTombstone;
    record.rel = 99;
    record.row = 0;
    ASSERT_TRUE(writer.Append(record, &error)) << error;
    ASSERT_TRUE(writer.Sync(&error)) << error;
  }
  {
    LiveDatabase live(MakeRetailerDatabase());
    EXPECT_FALSE(live.AttachWal(bad_path, &error));
    EXPECT_NE(error.find("record 0"), std::string::npos) << error;
    EXPECT_NE(error.find("relation id out of range"), std::string::npos)
        << error;
  }
}

TEST_F(IngestTest, CompactFoldsOverlayIntoFreshBase) {
  LiveDatabase live(MakeRetailerDatabase());
  const ExampleTable et = MakeFigure2ExampleTable();
  ApplyStandardMutations(live);
  const DbVersion before = live.Pin();
  const DiscoveryResult r_before =
      DiscoverQueries(before.view(), et, {}, before.epoch);

  CompactionStats stats;
  std::string error;
  ASSERT_TRUE(live.Compact("", &error, &stats)) << error;
  EXPECT_EQ(stats.epoch, before.epoch + 1);
  EXPECT_EQ(stats.merged_appends, 3u);
  EXPECT_EQ(stats.merged_tombstones, 1u);
  EXPECT_EQ(stats.remaining_ops, 0u);
  EXPECT_FALSE(stats.snapshot_written);

  // The new epoch is a plain base again — no overlay on the read path.
  const DbVersion after = live.Pin();
  EXPECT_EQ(after.epoch, stats.epoch);
  EXPECT_TRUE(after.view().plain());
  EXPECT_EQ(live.delta_rows(), 0u);
  EXPECT_EQ(live.delta_ops(), 0u);

  // Discovery is unchanged by compaction, and the pre-compaction pin
  // still reads its own epoch.
  const DiscoveryResult r_after =
      DiscoverQueries(after.view(), et, {}, after.epoch);
  std::vector<CanonQuery> a = Canon(r_before);
  std::vector<CanonQuery> b = Canon(r_after);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sql, b[i].sql);
    EXPECT_EQ(a[i].matched_rows, b[i].matched_rows);
  }
  EXPECT_FALSE(before.view().plain());
  ExpectDiscoveryMatchesColdLoad(before, et);

  // Compacting an empty overlay is a no-op.
  const uint64_t epoch = live.epoch();
  ASSERT_TRUE(live.Compact("", &error)) << error;
  EXPECT_EQ(live.epoch(), epoch);

  // Mutation continues on the compacted base with fresh global row ids.
  const int customer = RelId(after, "Customer");
  ASSERT_TRUE(live.Append(
      customer, {int64_t{9}, std::string("Post Compact")}, &error))
      << error;
  ExpectDiscoveryMatchesColdLoad(live.Pin(), et);
}

TEST_F(IngestTest, CompactWithWalWritesSnapshotAndTruncatesLog) {
  const std::string wal_path = TempPath("compact.qbel");
  const std::string snap_path = TempPath("compact.qbes");
  const ExampleTable et = MakeFigure2ExampleTable();
  std::string error;

  LiveDatabase live(MakeRetailerDatabase());
  ASSERT_TRUE(live.AttachWal(wal_path, &error)) << error;
  ApplyStandardMutations(live);

  // With a WAL attached, compaction must insist on a durable snapshot.
  EXPECT_FALSE(live.Compact("", &error));
  EXPECT_NE(error.find("snapshot"), std::string::npos) << error;

  CompactionStats stats;
  ASSERT_TRUE(live.Compact(snap_path, &error, &stats)) << error;
  EXPECT_TRUE(stats.snapshot_written);

  // The log was truncated: replaying it atop the snapshot is a no-op.
  WalReadResult log = ReadWal(wal_path);
  ASSERT_TRUE(log.ok) << log.error;
  EXPECT_TRUE(log.records.empty());

  // Cold-starting from the snapshot + WAL reproduces the live state —
  // the crash-recovery story end to end.
  std::optional<Database> reopened = Database::OpenSnapshot(snap_path, &error);
  ASSERT_TRUE(reopened.has_value()) << error;
  LiveDatabase restarted(std::move(*reopened));
  ASSERT_TRUE(restarted.AttachWal(wal_path, &error)) << error;
  const DbVersion a = live.Pin();
  const DbVersion b = restarted.Pin();
  DiscoveryResult ra = DiscoverQueries(a.view(), et, {}, a.epoch);
  DiscoveryResult rb = DiscoverQueries(b.view(), et, {}, b.epoch);
  std::vector<CanonQuery> ca = Canon(ra);
  std::vector<CanonQuery> cb = Canon(rb);
  ASSERT_EQ(ca.size(), cb.size());
  for (size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].sql, cb[i].sql);
    EXPECT_EQ(ca[i].matched_rows, cb[i].matched_rows);
  }
}

}  // namespace
}  // namespace qbe
