#ifndef QBE_TESTS_TEST_UTIL_H_
#define QBE_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "exec/predicate.h"
#include "schema/join_tree.h"
#include "schema/schema_graph.h"
#include "storage/database.h"
#include "text/tokenizer.h"
#include "util/check.h"

namespace qbe {
namespace test {

/// ColumnRef from a "Relation.Column" string.
inline ColumnRef Col(const Database& db, const std::string& qualified) {
  size_t dot = qualified.find('.');
  QBE_CHECK(dot != std::string::npos);
  int rel = db.RelationIdByName(qualified.substr(0, dot));
  QBE_CHECK(rel >= 0);
  int col = db.relation(rel).ColumnIndexByName(qualified.substr(dot + 1));
  QBE_CHECK(col >= 0);
  return ColumnRef{rel, col};
}

/// Join tree from relation names, connected greedily via schema edges.
inline JoinTree Tree(const Database& db, const SchemaGraph& graph,
                     const std::vector<std::string>& names) {
  JoinTree tree = JoinTree::Single(db.RelationIdByName(names[0]));
  std::vector<int> wanted;
  for (size_t i = 1; i < names.size(); ++i) {
    wanted.push_back(db.RelationIdByName(names[i]));
  }
  while (!wanted.empty()) {
    bool advanced = false;
    for (size_t i = 0; i < wanted.size() && !advanced; ++i) {
      for (int e = 0; e < graph.num_edges() && !advanced; ++e) {
        const SchemaGraph::Edge& edge = graph.edge(e);
        bool from_in = tree.verts.Test(edge.from);
        bool to_in = tree.verts.Test(edge.to);
        if (from_in == to_in) continue;
        int other = from_in ? edge.to : edge.from;
        if (other != wanted[i]) continue;
        tree = ExtendTree(tree, graph, e);
        wanted.erase(wanted.begin() + i);
        advanced = true;
      }
    }
    QBE_CHECK_MSG(advanced, "relations not connectable into a tree");
  }
  return tree;
}

/// Reference (index-free, exponential) implementation of the existence
/// query: enumerates every combination of rows over the tree's relations
/// and checks all join conditions and phrase predicates. Only usable on
/// tiny databases; validates the executor's semijoin algorithm.
inline bool BruteForceExists(const Database& db, const SchemaGraph& graph,
                             const JoinTree& tree,
                             const std::vector<PhrasePredicate>& predicates) {
  (void)graph;
  std::vector<int> vertices = tree.Vertices();
  std::vector<int> edge_ids = tree.EdgeIds();
  std::vector<uint32_t> assignment(vertices.size(), 0);
  auto vertex_pos = [&](int rel) {
    for (size_t i = 0; i < vertices.size(); ++i) {
      if (vertices[i] == rel) return static_cast<int>(i);
    }
    return -1;
  };
  // Odometer over the cartesian product.
  for (;;) {
    bool ok = true;
    for (int e : edge_ids) {
      const ForeignKey& fk = db.foreign_key(e);
      int64_t lhs = db.relation(fk.from_rel)
                        .IdAt(fk.from_col, assignment[vertex_pos(fk.from_rel)]);
      int64_t rhs = db.relation(fk.to_rel)
                        .IdAt(fk.to_col, assignment[vertex_pos(fk.to_rel)]);
      if (lhs != rhs) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const PhrasePredicate& pred : predicates) {
        const std::string_view cell =
            db.relation(pred.column.rel)
                .TextAt(pred.column.col,
                        assignment[vertex_pos(pred.column.rel)]);
        std::vector<std::string> cell_tokens = Tokenize(cell);
        bool match = pred.exact ? cell_tokens == pred.tokens
                                : IsTokenSubsequence(pred.tokens, cell_tokens);
        if (!match) {
          ok = false;
          break;
        }
      }
    }
    if (ok) return true;
    // Advance odometer.
    size_t pos = 0;
    while (pos < vertices.size()) {
      if (++assignment[pos] < db.relation(vertices[pos]).num_rows()) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == vertices.size()) return false;
  }
}

}  // namespace test
}  // namespace qbe

#endif  // QBE_TESTS_TEST_UTIL_H_
