#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace qbe {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("ThinkPad X1"), (std::vector<std::string>{"thinkpad",
                                                               "x1"}));
}

TEST(TokenizerTest, PunctuationSeparates) {
  EXPECT_EQ(Tokenize("Dropbox can't sync!"),
            (std::vector<std::string>{"dropbox", "can", "t", "sync"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t--- ").empty());
}

TEST(TokenizerTest, DigitsAreTokens) {
  EXPECT_EQ(Tokenize("Office 2013"),
            (std::vector<std::string>{"office", "2013"}));
}

TEST(SubsequenceTest, EmptyNeedleMatchesEverything) {
  EXPECT_TRUE(IsTokenSubsequence({}, {}));
  EXPECT_TRUE(IsTokenSubsequence({}, {"a"}));
}

TEST(SubsequenceTest, ExactMatch) {
  EXPECT_TRUE(IsTokenSubsequence({"a", "b"}, {"a", "b"}));
}

TEST(SubsequenceTest, MustBeConsecutive) {
  // Definition 2 remark: tokens must appear consecutively.
  EXPECT_TRUE(IsTokenSubsequence({"b", "c"}, {"a", "b", "c", "d"}));
  EXPECT_FALSE(IsTokenSubsequence({"a", "c"}, {"a", "b", "c"}));
}

TEST(SubsequenceTest, NeedleLongerThanHaystack) {
  EXPECT_FALSE(IsTokenSubsequence({"a", "b"}, {"a"}));
}

TEST(SubsequenceTest, RepeatedTokens) {
  EXPECT_TRUE(IsTokenSubsequence({"a", "a"}, {"b", "a", "a"}));
  EXPECT_FALSE(IsTokenSubsequence({"a", "a"}, {"a", "b", "a"}));
}

TEST(ContainsPhraseTest, PaperExamples) {
  // From Example 3: 'Mike' is contained in 'Mike Jones', 'ThinkPad' in
  // 'ThinkPad X1', 'Office' in 'Office 2013'.
  EXPECT_TRUE(ContainsPhrase("Mike Jones", "Mike"));
  EXPECT_TRUE(ContainsPhrase("ThinkPad X1", "ThinkPad"));
  EXPECT_TRUE(ContainsPhrase("Office 2013", "Office"));
  EXPECT_FALSE(ContainsPhrase("Mike Jones", "Mary"));
}

TEST(ContainsPhraseTest, CaseInsensitive) {
  EXPECT_TRUE(ContainsPhrase("MIKE JONES", "mike jones"));
}

TEST(ContainsPhraseTest, MultiTokenPhrase) {
  EXPECT_TRUE(ContainsPhrase("the silent river runs", "silent river"));
  EXPECT_FALSE(ContainsPhrase("the silent blue river", "silent river"));
}

}  // namespace
}  // namespace qbe
