#include "text/inverted_index.h"

#include <gtest/gtest.h>

#include "datagen/text_gen.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace qbe {
namespace {

InvertedIndex BuildIndex(const std::vector<std::string>& cells) {
  InvertedIndex index;
  index.Build(cells);
  return index;
}

TEST(InvertedIndexTest, SingleTokenMatch) {
  InvertedIndex index =
      BuildIndex({"Mike Jones", "Mary Smith", "Bob Evans", "Mike Stone"});
  EXPECT_EQ(index.MatchPhrase({"mike"}), (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(index.MatchPhrase({"smith"}), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(index.MatchPhrase({"zelda"}).empty());
}

TEST(InvertedIndexTest, PhraseRequiresConsecutivePositions) {
  InvertedIndex index = BuildIndex(
      {"the silent river", "silent blue river", "river silent"});
  EXPECT_EQ(index.MatchPhrase({"silent", "river"}),
            (std::vector<uint32_t>{0}));
}

TEST(InvertedIndexTest, EmptyPhraseMatchesAllRows) {
  InvertedIndex index = BuildIndex({"a", "b", "c"});
  EXPECT_EQ(index.MatchPhrase({}).size(), 3u);
}

TEST(InvertedIndexTest, RowDeduplicatedOnRepeatedTokens) {
  InvertedIndex index = BuildIndex({"go go go"});
  EXPECT_EQ(index.MatchPhrase({"go"}), (std::vector<uint32_t>{0}));
  EXPECT_EQ(index.MatchPhrase({"go", "go"}), (std::vector<uint32_t>{0}));
}

TEST(InvertedIndexTest, ConjunctionOfPhrases) {
  InvertedIndex index = BuildIndex(
      {"red fox jumps", "red dog sleeps", "blue fox jumps"});
  EXPECT_EQ(index.MatchAllPhrases({{"red"}, {"fox"}}),
            (std::vector<uint32_t>{0}));
  EXPECT_TRUE(index.MatchAllPhrases({{"red"}, {"blue"}}).empty());
  EXPECT_EQ(index.MatchAllPhrases({}).size(), 3u);
}

TEST(InvertedIndexTest, AnyMatch) {
  InvertedIndex index = BuildIndex({"alpha beta", "gamma"});
  EXPECT_TRUE(index.AnyMatch({"alpha", "beta"}));
  EXPECT_FALSE(index.AnyMatch({"beta", "alpha"}));
  EXPECT_TRUE(index.AnyMatch({}));
}

TEST(InvertedIndexTest, TokenRowCountCountsDistinctRows) {
  InvertedIndex index = BuildIndex({"a a b", "a c", "d"});
  EXPECT_EQ(index.TokenRowCount("a"), 2u);
  EXPECT_EQ(index.TokenRowCount("d"), 1u);
  EXPECT_EQ(index.TokenRowCount("zzz"), 0u);
}

TEST(InvertedIndexTest, MemoryBytesPositiveAfterBuild) {
  InvertedIndex index = BuildIndex({"some text here"});
  EXPECT_GT(index.MemoryBytes(), 0u);
}

/// Property: the index agrees with the reference string-containment
/// implementation on randomized synthetic cells and phrases.
TEST(InvertedIndexTest, PropertyAgreesWithReferenceContainment) {
  Rng rng(99);
  TextGenerator text;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> cells;
    for (int i = 0; i < 60; ++i) cells.push_back(text.NotePhrase(rng, 1, 6));
    InvertedIndex index = BuildIndex(cells);
    for (int p = 0; p < 30; ++p) {
      // Half the probes are substrings of actual cells, half random.
      std::string probe;
      if (p % 2 == 0) {
        const std::string& src = cells[rng.NextBounded(cells.size())];
        std::vector<std::string> tokens = Tokenize(src);
        size_t start = rng.NextBounded(tokens.size());
        size_t len = 1 + rng.NextBounded(tokens.size() - start);
        for (size_t i = start; i < start + len; ++i) {
          if (i > start) probe += ' ';
          probe += tokens[i];
        }
      } else {
        probe = text.NotePhrase(rng, 1, 3);
      }
      std::vector<uint32_t> got = index.MatchPhrase(Tokenize(probe));
      std::vector<uint32_t> want;
      for (uint32_t row = 0; row < cells.size(); ++row) {
        if (ContainsPhrase(cells[row], probe)) want.push_back(row);
      }
      EXPECT_EQ(got, want) << "probe: " << probe;
    }
  }
}

}  // namespace
}  // namespace qbe
