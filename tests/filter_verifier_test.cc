#include "core/filter_verifier.h"

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/verify_all.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "test_util.h"

namespace qbe {
namespace {

class FilterVerifierTest : public ::testing::Test {
 protected:
  FilterVerifierTest()
      : db_(MakeRetailerDatabase()),
        graph_(db_),
        exec_(db_, graph_),
        et_(MakeFigure2ExampleTable()) {
    candidates_ = GenerateCandidates(db_, graph_, et_, {});
  }

  VerifyContext Ctx() {
    return VerifyContext{db_, graph_, exec_, et_, candidates_, 42};
  }

  Database db_;
  SchemaGraph graph_;
  Executor exec_;
  ExampleTable et_;
  std::vector<CandidateQuery> candidates_;
};

TEST_F(FilterVerifierTest, AgreesWithVerifyAll) {
  VerifyAll reference;
  FilterVerifier filter;
  VerificationCounters c1, c2;
  VerifyContext ctx = Ctx();
  EXPECT_EQ(reference.Verify(ctx, &c1), filter.Verify(ctx, &c2));
}

TEST_F(FilterVerifierTest, LazyGreedyAgreesToo) {
  VerifyAll reference;
  FilterVerifier lazy(0.5, true);
  VerificationCounters c1, c2;
  VerifyContext ctx = Ctx();
  EXPECT_EQ(reference.Verify(ctx, &c1), lazy.Verify(ctx, &c2));
}

TEST_F(FilterVerifierTest, RobustToFailurePrior) {
  VerifyContext ctx = Ctx();
  VerifyAll reference;
  VerificationCounters c0;
  std::vector<bool> expected = reference.Verify(ctx, &c0);
  for (double prior : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    FilterVerifier filter(prior, false);
    VerificationCounters c;
    EXPECT_EQ(filter.Verify(ctx, &c), expected) << "prior " << prior;
  }
}

TEST_F(FilterVerifierTest, HandlesEmptyCandidateSet) {
  std::vector<CandidateQuery> none;
  VerifyContext ctx{db_, graph_, exec_, et_, none, 42};
  FilterVerifier filter;
  VerificationCounters counters;
  EXPECT_TRUE(filter.Verify(ctx, &counters).empty());
  EXPECT_EQ(counters.verifications, 0);
}

TEST_F(FilterVerifierTest, SingleValidCandidateEvaluatesBasicFilters) {
  // Only CQ1 — valid — so every row's basic filter must be confirmed
  // (directly or via success dependency): at least one verification, and
  // the result is valid.
  std::vector<CandidateQuery> only_cq1;
  for (const CandidateQuery& q : candidates_) {
    if (q.tree ==
        test::Tree(db_, graph_, {"Sales", "Customer", "Device", "App"})) {
      only_cq1.push_back(q);
    }
  }
  ASSERT_EQ(only_cq1.size(), 1u);
  VerifyContext ctx{db_, graph_, exec_, et_, only_cq1, 42};
  FilterVerifier filter;
  VerificationCounters counters;
  std::vector<bool> valid = filter.Verify(ctx, &counters);
  EXPECT_TRUE(valid[0]);
  EXPECT_GE(counters.verifications, 1);
}

TEST_F(FilterVerifierTest, SharedFilterPruningBeatsPerCandidateWork) {
  // The Example 2 scenario: many candidates sharing a failing subtree. The
  // filter approach should resolve all Owner-based candidates without
  // evaluating each one per row. Build an inflated candidate set by using
  // max join length 5 (14 candidates on this database).
  CandidateGenOptions options;
  options.max_join_tree_size = 5;
  std::vector<CandidateQuery> many =
      GenerateCandidates(db_, graph_, et_, options);
  ASSERT_GT(many.size(), 10u);
  VerifyContext ctx{db_, graph_, exec_, et_, many, 42};
  VerifyAll reference;
  FilterVerifier filter;
  VerificationCounters c_ref, c_filter;
  std::vector<bool> expected = reference.Verify(ctx, &c_ref);
  EXPECT_EQ(filter.Verify(ctx, &c_filter), expected);
  // The headline claim: fewer verifications than VERIFYALL.
  EXPECT_LT(c_filter.verifications, c_ref.verifications);
}

TEST_F(FilterVerifierTest, LazyAndExactEvaluateSameNumberOfFilters) {
  // Lazy greedy is an exact accelerated argmax; with deterministic
  // tie-breaking differences the evaluation *sets* may differ slightly,
  // but both must stay correct. We assert correctness and comparable cost.
  CandidateGenOptions options;
  options.max_join_tree_size = 5;
  std::vector<CandidateQuery> many =
      GenerateCandidates(db_, graph_, et_, options);
  VerifyContext ctx{db_, graph_, exec_, et_, many, 42};
  FilterVerifier exact(0.5, false);
  FilterVerifier lazy(0.5, true);
  VerificationCounters c_exact, c_lazy;
  std::vector<bool> v1 = exact.Verify(ctx, &c_exact);
  std::vector<bool> v2 = lazy.Verify(ctx, &c_lazy);
  EXPECT_EQ(v1, v2);
  EXPECT_LE(c_lazy.verifications, 2 * c_exact.verifications + 4);
  EXPECT_LE(c_exact.verifications, 2 * c_lazy.verifications + 4);
}

}  // namespace
}  // namespace qbe
