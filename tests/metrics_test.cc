#include "service/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace qbe {
namespace {

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), 80000);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // <= 1
  histogram.Observe(1.0);    // <= 1 (bounds are inclusive)
  histogram.Observe(5.0);    // <= 10
  histogram.Observe(1000.0); // overflow
  std::vector<int64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 0);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(histogram.TotalCount(), 4);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 1006.5);
}

TEST(HistogramTest, QuantilesAtBucketResolution) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 90; ++i) histogram.Observe(0.5);
  for (int i = 0; i < 10; ++i) histogram.Observe(3.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.89), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 4.0);
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  Histogram histogram(ExponentialBuckets(1e-3, 2.0, 10));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < 5000; ++i) histogram.Observe(0.01);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.TotalCount(), 40000);
}

TEST(HistogramTest, InjectedSubMillisecondBucketsResolveFastRequests) {
  // The old service default started at 100 µs, flattening anything faster
  // into one bucket; latency bounds are injectable precisely so a cached
  // in-memory workload can see sub-millisecond structure.
  Histogram histogram(ExponentialBuckets(1e-6, 10.0, 6));  // 1 µs … 100 ms
  for (int i = 0; i < 90; ++i) histogram.Observe(5e-6);   // ~5 µs: cached
  for (int i = 0; i < 10; ++i) histogram.Observe(5e-4);   // ~500 µs: miss
  std::vector<int64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 7u);
  EXPECT_EQ(counts[1], 90);  // <= 10 µs
  EXPECT_EQ(counts[3], 10);  // <= 1 ms
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 1e-5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.95), 1e-3);
}

TEST(ExponentialBucketsTest, GeometricSeries) {
  std::vector<double> bounds = ExponentialBuckets(1.0, 10.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 1000.0);
}

TEST(MetricsRegistryTest, GetReturnsSameMetricForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests");
  Counter& b = registry.GetCounter("requests");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.Value(), 3);
  Histogram& h1 = registry.GetHistogram("latency", {1.0, 2.0});
  Histogram& h2 = registry.GetHistogram("latency", {99.0});
  EXPECT_EQ(&h1, &h2);  // first caller fixed the layout
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, DumpIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("zebra").Increment(7);
  registry.GetCounter("alpha").Increment(1);
  registry.SetGauge("mid_gauge", 0.5);
  registry.GetHistogram("beta_hist", {1.0}).Observe(0.2);
  std::string dump = registry.Dump();
  EXPECT_NE(dump.find("counter   alpha 1"), std::string::npos);
  EXPECT_NE(dump.find("counter   zebra 7"), std::string::npos);
  EXPECT_NE(dump.find("gauge     mid_gauge 0.5"), std::string::npos);
  EXPECT_NE(dump.find("histogram beta_hist count=1"), std::string::npos);
  // Name-sorted regardless of metric kind.
  EXPECT_LT(dump.find("alpha"), dump.find("beta_hist"));
  EXPECT_LT(dump.find("beta_hist"), dump.find("mid_gauge"));
  EXPECT_LT(dump.find("mid_gauge"), dump.find("zebra"));
}

TEST(MetricsRegistryTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared").Increment();
        registry.GetHistogram("shared_hist", {1.0}).Observe(0.1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared").Value(), 8000);
  EXPECT_EQ(registry.GetHistogram("shared_hist", {1.0}).TotalCount(), 8000);
}

}  // namespace
}  // namespace qbe
