#include "core/filter_universe.h"

#include <gtest/gtest.h>

#include <set>

#include "core/candidate_gen.h"
#include "datagen/retailer.h"
#include "test_util.h"

namespace qbe {
namespace {

class FilterUniverseTest : public ::testing::Test {
 protected:
  FilterUniverseTest()
      : db_(MakeRetailerDatabase()),
        graph_(db_),
        et_(MakeFigure2ExampleTable()) {
    candidates_ = GenerateCandidates(db_, graph_, et_, {});
    universe_ = BuildFilterUniverse(graph_, et_, candidates_);
  }

  Database db_;
  SchemaGraph graph_;
  ExampleTable et_;
  std::vector<CandidateQuery> candidates_;
  FilterUniverse universe_;
};

TEST_F(FilterUniverseTest, EveryCandidateHasOneBasicFilterPerRow) {
  ASSERT_EQ(universe_.basic_filters_of_query.size(), candidates_.size());
  for (size_t q = 0; q < candidates_.size(); ++q) {
    EXPECT_EQ(universe_.basic_filters_of_query[q].size(),
              static_cast<size_t>(et_.num_rows()));
    for (int f : universe_.basic_filters_of_query[q]) {
      EXPECT_TRUE(universe_.filters[f].tree == candidates_[q].tree);
    }
  }
}

TEST_F(FilterUniverseTest, FiltersAreDeduplicated) {
  std::set<size_t> hashes;
  for (size_t i = 0; i < universe_.filters.size(); ++i) {
    for (size_t j = i + 1; j < universe_.filters.size(); ++j) {
      EXPECT_FALSE(universe_.filters[i] == universe_.filters[j]);
    }
  }
  // Sharing happened: strictly fewer filters than candidate×subtree×row
  // combinations (all 3 candidates share e.g. the Device singleton filter).
  size_t upper_bound = 0;
  for (size_t q = 0; q < candidates_.size(); ++q) {
    upper_bound += universe_.filters_of_query[q].size();
  }
  EXPECT_LT(universe_.filters.size(), upper_bound);
}

TEST_F(FilterUniverseTest, MembershipIsConsistent) {
  for (int f = 0; f < universe_.num_filters(); ++f) {
    for (int q : universe_.queries_of_filter[f]) {
      const std::vector<int>& fq = universe_.filters_of_query[q];
      EXPECT_NE(std::find(fq.begin(), fq.end(), f), fq.end());
    }
  }
  for (size_t q = 0; q < candidates_.size(); ++q) {
    for (int f : universe_.filters_of_query[q]) {
      const std::vector<int>& qf = universe_.queries_of_filter[f];
      EXPECT_NE(std::find(qf.begin(), qf.end(), static_cast<int>(q)),
                qf.end());
    }
  }
}

TEST_F(FilterUniverseTest, FilterTreesAreSubtreesOfTheirCandidates) {
  for (size_t q = 0; q < candidates_.size(); ++q) {
    for (int f : universe_.filters_of_query[q]) {
      EXPECT_TRUE(universe_.filters[f].tree.IsSubtreeOf(candidates_[q].tree));
    }
  }
}

TEST_F(FilterUniverseTest, DependencyListsMatchPairwisePredicate) {
  // Exhaustive cross-check of supers_of/subs_of against IsSubFilterOf.
  for (int f1 = 0; f1 < universe_.num_filters(); ++f1) {
    for (int f2 = 0; f2 < universe_.num_filters(); ++f2) {
      if (f1 == f2) continue;
      bool is_sub = IsSubFilterOf(universe_.filters[f1],
                                  universe_.filters[f2]);
      const std::vector<int>& supers = universe_.supers_of[f1];
      const std::vector<int>& subs = universe_.subs_of[f2];
      bool listed_super =
          std::find(supers.begin(), supers.end(), f2) != supers.end();
      bool listed_sub =
          std::find(subs.begin(), subs.end(), f1) != subs.end();
      EXPECT_EQ(is_sub, listed_super);
      EXPECT_EQ(is_sub, listed_sub);
    }
  }
}

TEST_F(FilterUniverseTest, SharedSubtreeFilterServesMultipleCandidates) {
  // The Example 2 insight: some filter is contained in several candidates.
  bool found_shared = false;
  for (int f = 0; f < universe_.num_filters(); ++f) {
    if (universe_.queries_of_filter[f].size() >= 2) found_shared = true;
  }
  EXPECT_TRUE(found_shared);
}

TEST_F(FilterUniverseTest, EmptyCandidateSet) {
  FilterUniverse empty = BuildFilterUniverse(graph_, et_, {});
  EXPECT_EQ(empty.num_filters(), 0);
}

}  // namespace
}  // namespace qbe
