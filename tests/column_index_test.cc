#include "text/column_index.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"
#include "storage/database.h"
#include "text/tokenizer.h"

namespace qbe {
namespace {

class ColumnIndexTest : public ::testing::Test {
 protected:
  ColumnIndexTest() : db_(MakeRetailerDatabase()) {}
  Database db_;
};

TEST_F(ColumnIndexTest, PaperExample1CandidateColumns) {
  // §3.2: candidate projection columns for the Figure 2 ET are
  // CustName+EmpName (Mike/Mary/Bob), DevName (ThinkPad/iPad), and
  // AppName+Desc (Office/Dropbox).
  const ColumnIndex& ci = db_.column_index();
  auto names = [&](const std::vector<int>& gids) {
    std::vector<std::string> out;
    for (int gid : gids)
      out.push_back(db_.QualifiedColumnName(db_.TextColumnByGid(gid)));
    return out;
  };
  EXPECT_EQ(names(ci.ColumnsContaining({"mike"})),
            (std::vector<std::string>{"Customer.CustName",
                                      "Employee.EmpName"}));
  EXPECT_EQ(names(ci.ColumnsContaining({"thinkpad"})),
            (std::vector<std::string>{"Device.DevName"}));
  EXPECT_EQ(names(ci.ColumnsContaining({"office"})),
            (std::vector<std::string>{"App.AppName", "ESR.Desc"}));
  EXPECT_EQ(names(ci.ColumnsContaining({"dropbox"})),
            (std::vector<std::string>{"App.AppName", "ESR.Desc"}));
}

TEST_F(ColumnIndexTest, UnknownTokenMatchesNothing) {
  EXPECT_TRUE(db_.column_index().ColumnsContaining({"nonexistent"}).empty());
}

TEST_F(ColumnIndexTest, MultiTokenPhraseVerifiedPerColumn) {
  // "office crash" appears only in ESR.Desc, even though both tokens
  // appear (separately) in other columns too.
  std::vector<int> cols =
      db_.column_index().ColumnsContaining({"office", "crash"});
  ASSERT_EQ(cols.size(), 1u);
  EXPECT_EQ(db_.QualifiedColumnName(db_.TextColumnByGid(cols[0])),
            "ESR.Desc");
}

TEST_F(ColumnIndexTest, EmptyPhraseMatchesAllNonEmptyColumns) {
  // All 5 text columns of Figure 1 have rows.
  EXPECT_EQ(db_.column_index().ColumnsContaining({}).size(), 5u);
}

TEST_F(ColumnIndexTest, ResultsAreSortedAscending) {
  std::vector<int> cols = db_.column_index().ColumnsContaining({"mike"});
  for (size_t i = 1; i < cols.size(); ++i) EXPECT_LT(cols[i - 1], cols[i]);
}

}  // namespace
}  // namespace qbe
