#include "schema/schema_graph.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"
#include "schema/join_tree.h"
#include "schema/subtree_enum.h"

namespace qbe {
namespace {

class SchemaTest : public ::testing::Test {
 protected:
  SchemaTest() : db_(MakeRetailerDatabase()), graph_(db_) {}

  int Rel(const std::string& name) const {
    return db_.RelationIdByName(name);
  }

  /// Builds a join tree from relation names, connecting them greedily via
  /// any schema edge between an in-tree and out-of-tree relation.
  JoinTree Tree(const std::vector<std::string>& names) const {
    JoinTree tree = JoinTree::Single(Rel(names[0]));
    std::vector<int> wanted;
    for (size_t i = 1; i < names.size(); ++i) wanted.push_back(Rel(names[i]));
    while (!wanted.empty()) {
      bool advanced = false;
      for (size_t i = 0; i < wanted.size(); ++i) {
        for (int e = 0; e < graph_.num_edges(); ++e) {
          const SchemaGraph::Edge& edge = graph_.edge(e);
          bool from_in = tree.verts.Test(edge.from);
          bool to_in = tree.verts.Test(edge.to);
          if (from_in == to_in) continue;
          int other = from_in ? edge.to : edge.from;
          if (other != wanted[i]) continue;
          tree = ExtendTree(tree, graph_, e);
          wanted.erase(wanted.begin() + i);
          advanced = true;
          break;
        }
        if (advanced) break;
      }
      if (!advanced) ADD_FAILURE() << "could not connect tree";
      if (!advanced) break;
    }
    return tree;
  }

  Database db_;
  SchemaGraph graph_;
};

TEST_F(SchemaTest, GraphShape) {
  EXPECT_EQ(graph_.num_vertices(), 7);
  EXPECT_EQ(graph_.num_edges(), 8);
  // Sales has 3 outgoing FK edges.
  EXPECT_EQ(graph_.IncidentEdges(Rel("Sales")).size(), 3u);
  // Device is referenced by Sales and Owner.
  EXPECT_EQ(graph_.IncidentEdges(Rel("Device")).size(), 2u);
}

TEST_F(SchemaTest, OtherEnd) {
  const SchemaGraph::Edge& e = graph_.edge(0);
  EXPECT_EQ(graph_.OtherEnd(0, e.from), e.to);
  EXPECT_EQ(graph_.OtherEnd(0, e.to), e.from);
}

TEST_F(SchemaTest, SingleVertexTree) {
  JoinTree t = JoinTree::Single(Rel("Sales"));
  EXPECT_EQ(t.NumVertices(), 1);
  EXPECT_EQ(t.NumEdges(), 0);
  EXPECT_EQ(t.LeafVertices(graph_), (std::vector<int>{Rel("Sales")}));
}

TEST_F(SchemaTest, ExtendTreeAddsVertexAndEdge) {
  JoinTree t = JoinTree::Single(Rel("Sales"));
  JoinTree t2 = ExtendTree(t, graph_, 0);  // Sales->Customer
  EXPECT_EQ(t2.NumVertices(), 2);
  EXPECT_EQ(t2.NumEdges(), 1);
  EXPECT_TRUE(t2.verts.Test(Rel("Customer")));
  EXPECT_TRUE(t.IsSubtreeOf(t2));
  EXPECT_FALSE(t2.IsSubtreeOf(t));
}

TEST_F(SchemaTest, DegreesAndLeaves) {
  JoinTree cq1 = Tree({"Sales", "Customer", "Device", "App"});
  EXPECT_EQ(cq1.NumVertices(), 4);
  EXPECT_EQ(cq1.Degree(graph_, Rel("Sales")), 3);
  EXPECT_EQ(cq1.Degree(graph_, Rel("Customer")), 1);
  std::vector<int> leaves = cq1.LeafVertices(graph_);
  EXPECT_EQ(leaves.size(), 3u);  // Customer, Device, App
  EXPECT_EQ(std::count(leaves.begin(), leaves.end(), Rel("Sales")), 0);
}

TEST_F(SchemaTest, SubtreeRelationIsReflexiveAndAntisymmetricOnSize) {
  JoinTree a = Tree({"Owner", "Employee", "Device"});
  EXPECT_TRUE(a.IsSubtreeOf(a));
  JoinTree b = Tree({"Owner", "Employee", "Device", "App"});
  EXPECT_TRUE(a.IsSubtreeOf(b));
  EXPECT_FALSE(b.IsSubtreeOf(a));
  // Disjoint-rooted trees are unrelated.
  JoinTree c = Tree({"Sales", "Customer"});
  EXPECT_FALSE(c.IsSubtreeOf(b));
}

TEST_F(SchemaTest, EnumerateSubtreesSizeOne) {
  std::vector<JoinTree> trees = EnumerateSubtrees(graph_, 1);
  EXPECT_EQ(trees.size(), 7u);  // one per relation
}

TEST_F(SchemaTest, EnumerateSubtreesSizeTwoMatchesEdges) {
  std::vector<JoinTree> trees = EnumerateSubtrees(graph_, 2);
  // 7 singletons + 8 edges (all edges connect distinct relations).
  EXPECT_EQ(trees.size(), 7u + 8u);
}

TEST_F(SchemaTest, EnumerateSubtreesRespectsRequiredSet) {
  RelationSet required;
  required.Set(Rel("ESR"));
  std::vector<JoinTree> trees = EnumerateSubtrees(graph_, 3, &required);
  for (const JoinTree& t : trees) {
    EXPECT_TRUE(t.verts.Test(Rel("ESR")));
  }
  // ESR alone; ESR+Employee; ESR+App; and all 3-vertex trees through ESR:
  // ESR-Employee-Owner, ESR-App-Sales, ESR-App-Owner, ESR-Employee-App(x via
  // ESR itself: Employee-ESR-App), ESR-Employee + ESR-App is that same tree.
  EXPECT_GE(trees.size(), 5u);
}

TEST_F(SchemaTest, EnumerateSubtreesNoDuplicates) {
  std::vector<JoinTree> trees = EnumerateSubtrees(graph_, 4);
  for (size_t i = 0; i < trees.size(); ++i) {
    for (size_t j = i + 1; j < trees.size(); ++j) {
      EXPECT_FALSE(trees[i] == trees[j]);
    }
  }
}

TEST_F(SchemaTest, EnumerateSubtreesAllAreTrees) {
  for (const JoinTree& t : EnumerateSubtrees(graph_, 5)) {
    EXPECT_EQ(t.NumEdges(), t.NumVertices() - 1);
    EXPECT_LE(t.NumVertices(), 5);
  }
}

TEST_F(SchemaTest, EnumerateSubtreesOfTree) {
  // A path of 3 vertices has 3 + 2 + 1 = 6 connected subtrees.
  JoinTree path = Tree({"Customer", "Sales", "Device"});
  std::vector<JoinTree> subs = EnumerateSubtreesOfTree(path, graph_);
  EXPECT_EQ(subs.size(), 6u);
  for (const JoinTree& s : subs) EXPECT_TRUE(s.IsSubtreeOf(path));
}

TEST_F(SchemaTest, EnumerateSubtreesOfStarTree) {
  // Star with center Sales and 3 leaves: subtrees = 4 singles + 3 edges +
  // 3 two-edge + 1 full = 11.
  JoinTree star = Tree({"Sales", "Customer", "Device", "App"});
  EXPECT_EQ(EnumerateSubtreesOfTree(star, graph_).size(), 11u);
}

TEST_F(SchemaTest, JoinTreeToStringMentionsRelations) {
  JoinTree t = Tree({"Sales", "Customer"});
  std::string s = JoinTreeToString(t, graph_, db_);
  EXPECT_NE(s.find("Sales"), std::string::npos);
  EXPECT_NE(s.find("Customer"), std::string::npos);
}

}  // namespace
}  // namespace qbe
