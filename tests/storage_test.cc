#include "storage/database.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"
#include "storage/relation.h"

namespace qbe {
namespace {

TEST(RelationTest, AppendAndAccess) {
  Relation r("R", {{"id", ColumnType::kId}, {"name", ColumnType::kText}});
  r.AppendRow({int64_t{7}, std::string("hello world")});
  r.AppendRow({int64_t{9}, std::string("bye")});
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.num_columns(), 2);
  EXPECT_EQ(r.IdAt(0, 0), 7);
  EXPECT_EQ(r.IdAt(0, 1), 9);
  EXPECT_EQ(r.TextAt(1, 0), "hello world");
  EXPECT_EQ(r.TextColumn(1).size(), 2u);
  EXPECT_EQ(r.IdColumn(0).size(), 2u);
}

TEST(RelationTest, ColumnIndexByName) {
  Relation r("R", {{"id", ColumnType::kId}, {"name", ColumnType::kText}});
  EXPECT_EQ(r.ColumnIndexByName("id"), 0);
  EXPECT_EQ(r.ColumnIndexByName("name"), 1);
  EXPECT_EQ(r.ColumnIndexByName("missing"), -1);
}

TEST(RelationTest, MemoryBytesGrowsWithData) {
  Relation r("R", {{"id", ColumnType::kId}, {"name", ColumnType::kText}});
  size_t before = r.MemoryBytes();
  r.AppendRow({int64_t{1}, std::string("some text content")});
  EXPECT_GT(r.MemoryBytes(), before);
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(MakeRetailerDatabase()) {}
  Database db_;
};

TEST_F(DatabaseTest, CatalogStatistics) {
  EXPECT_EQ(db_.num_relations(), 7);
  EXPECT_EQ(db_.foreign_keys().size(), 8u);
  EXPECT_EQ(db_.TotalColumns(), 20);
  EXPECT_EQ(db_.TotalTextColumns(), 5);
}

TEST_F(DatabaseTest, RelationIdByName) {
  EXPECT_GE(db_.RelationIdByName("Sales"), 0);
  EXPECT_EQ(db_.RelationIdByName("Nope"), -1);
}

TEST_F(DatabaseTest, TextColumnGids) {
  int customer = db_.RelationIdByName("Customer");
  int name_col = db_.relation(customer).ColumnIndexByName("CustName");
  int gid = db_.TextColumnGid(ColumnRef{customer, name_col});
  ASSERT_GE(gid, 0);
  EXPECT_EQ(db_.TextColumnByGid(gid), (ColumnRef{customer, name_col}));
  // Id columns have no gid.
  int id_col = db_.relation(customer).ColumnIndexByName("CustId");
  EXPECT_EQ(db_.TextColumnGid(ColumnRef{customer, id_col}), -1);
}

TEST_F(DatabaseTest, PkLookup) {
  int customer = db_.RelationIdByName("Customer");
  int pk = db_.relation(customer).ColumnIndexByName("CustId");
  EXPECT_EQ(db_.PkLookup(customer, pk, 1), 0);
  EXPECT_EQ(db_.PkLookup(customer, pk, 3), 2);
  EXPECT_EQ(db_.PkLookup(customer, pk, 99), -1);
}

TEST_F(DatabaseTest, FkLookup) {
  // Sales.CustId -> Customer.CustId is edge 0; each customer has one sale.
  const std::vector<uint32_t>* rows = db_.FkLookup(0, 2);
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(*rows, (std::vector<uint32_t>{1}));
  EXPECT_EQ(db_.FkLookup(0, 42), nullptr);
}

TEST_F(DatabaseTest, ReferencedRowsAndDangling) {
  // Every Customer row is referenced by Sales; no dangling FKs in Figure 1.
  EXPECT_EQ(db_.ReferencedRows(0).size(), 3u);
  for (size_t e = 0; e < db_.foreign_keys().size(); ++e) {
    EXPECT_TRUE(db_.EdgeHasNoDangling(static_cast<int>(e)));
  }
  // ESR references only employees 1 and 2 (rows 0 and 1).
  int esr_emp_edge = 6;
  const ForeignKey& fk = db_.foreign_key(esr_emp_edge);
  EXPECT_EQ(db_.relation(fk.from_rel).name(), "ESR");
  EXPECT_EQ(db_.relation(fk.to_rel).name(), "Employee");
  std::span<const uint32_t> referenced = db_.ReferencedRows(esr_emp_edge);
  EXPECT_EQ(std::vector<uint32_t>(referenced.begin(), referenced.end()),
            (std::vector<uint32_t>{0, 1}));
}

TEST_F(DatabaseTest, DanglingForeignKeyDetected) {
  Database db;
  Relation dim("Dim", {{"id", ColumnType::kId}, {"t", ColumnType::kText}});
  dim.AppendRow({int64_t{1}, std::string("x")});
  Relation fact("Fact", {{"fid", ColumnType::kId}, {"id", ColumnType::kId}});
  fact.AppendRow({int64_t{1}, int64_t{1}});
  fact.AppendRow({int64_t{2}, int64_t{99}});  // dangling
  db.AddRelation(std::move(dim));
  db.AddRelation(std::move(fact));
  int edge = db.AddForeignKey("Fact", "id", "Dim", "id");
  db.BuildIndexes();
  EXPECT_FALSE(db.EdgeHasNoDangling(edge));
  auto to_vec = [](std::span<const uint32_t> s) {
    return std::vector<uint32_t>(s.begin(), s.end());
  };
  EXPECT_EQ(to_vec(db.ValidFromRows(edge)), (std::vector<uint32_t>{0}));
  EXPECT_EQ(to_vec(db.ReferencedRows(edge)), (std::vector<uint32_t>{0}));
}

TEST_F(DatabaseTest, QualifiedColumnName) {
  int customer = db_.RelationIdByName("Customer");
  EXPECT_EQ(db_.QualifiedColumnName(ColumnRef{customer, 1}),
            "Customer.CustName");
}

TEST_F(DatabaseTest, TextIndexReachable) {
  int app = db_.RelationIdByName("App");
  int col = db_.relation(app).ColumnIndexByName("AppName");
  const InvertedIndex& index = db_.TextIndex(ColumnRef{app, col});
  EXPECT_EQ(index.MatchPhrase({"dropbox"}).size(), 1u);
}

TEST_F(DatabaseTest, MemoryBytesPositive) {
  EXPECT_GT(db_.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace qbe
