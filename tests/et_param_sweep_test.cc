// Parameterized property sweep over the ET-generation grid of Table 3:
// every (m, n, s, v) combination in the paper's ranges must yield
// well-formed example tables with exactly the requested shape, the floor
// ⌊m·n·s⌋ blank cells, and cells of at most v tokens — and the downstream
// discovery pipeline must accept each of them.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/candidate_gen.h"
#include "datagen/et_gen.h"
#include "datagen/imdb_like.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"

namespace qbe {
namespace {

struct SweepFixture {
  SweepFixture() {
    ImdbConfig config;
    config.scale = 0.15;
    db = std::make_unique<Database>(MakeImdbLikeDatabase(config));
    graph = std::make_unique<SchemaGraph>(*db);
    exec = std::make_unique<Executor>(*db, *graph);
    source = std::make_unique<EtSource>(*db, *graph, *exec, 31);
  }
  std::unique_ptr<Database> db;
  std::unique_ptr<SchemaGraph> graph;
  std::unique_ptr<Executor> exec;
  std::unique_ptr<EtSource> source;
};

SweepFixture& Fixture() {
  static SweepFixture& fixture = *new SweepFixture();
  return fixture;
}

using SweepParam = std::tuple<int, int, double, int>;  // m, n, s, v

class EtSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EtSweepTest, SampledTablesHonourParameters) {
  auto [m, n, s, v] = GetParam();
  // Covering every row and column needs at least max(m, n) filled cells;
  // combinations blanking more than that are infeasible by construction
  // (the paper's sweeps never hit them since they vary one parameter from
  // the defaults at a time).
  int filled = m * n - static_cast<int>(m * n * s);
  if (filled < std::max(m, n)) {
    GTEST_SKIP() << "infeasible parameter combination";
  }
  EtParams params;
  params.m = m;
  params.n = n;
  params.s = s;
  params.v = v;
  SweepFixture& fx = Fixture();
  Rng rng(1000 + m * 100 + n * 10 + v);
  int produced = 0;
  for (int matrix = 0; matrix < fx.source->num_matrices(); ++matrix) {
    std::optional<ExampleTable> et = fx.source->Sample(params, matrix, rng);
    if (!et.has_value()) continue;  // matrix too small for these params
    ++produced;
    EXPECT_EQ(et->num_rows(), m);
    EXPECT_EQ(et->num_columns(), n);
    EXPECT_TRUE(et->IsWellFormed());
    int blanks = 0;
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < n; ++c) {
        const EtCell& cell = et->cell(r, c);
        if (cell.IsEmpty()) {
          ++blanks;
        } else {
          EXPECT_LE(et->CellTokens(r, c).size(), static_cast<size_t>(v));
          EXPECT_GE(et->CellTokens(r, c).size(), 1u);
        }
      }
    }
    EXPECT_EQ(blanks, static_cast<int>(m * n * s));
    // The pipeline front-end must accept the table.
    auto cols = RetrieveCandidateColumns(*fx.db, *et);
    EXPECT_EQ(cols.size(), static_cast<size_t>(n));
  }
  EXPECT_GT(produced, 0) << "no matrix supported m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Table3Grid, EtSweepTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6),   // m
                       ::testing::Values(2, 3, 4, 5, 6),   // n
                       ::testing::Values(0.0, 0.2, 0.3, 0.5, 0.7),  // s
                       ::testing::Values(1, 2, 3)),        // v
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      // No structured bindings here: commas inside [] are not protected
      // from the preprocessor within a macro argument.
      return "m" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 10)) +
             "_v" + std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace qbe
