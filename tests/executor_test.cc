#include "exec/executor.h"

#include <gtest/gtest.h>

#include "datagen/names.h"
#include "datagen/retailer.h"
#include "datagen/text_gen.h"
#include "exec/sql_render.h"
#include "schema/subtree_enum.h"
#include "test_util.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace qbe {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : db_(MakeRetailerDatabase()), graph_(db_), exec_(db_, graph_) {}

  PhrasePredicate Pred(const std::string& col, const std::string& phrase,
                       bool exact = false) {
    return PhrasePredicate{test::Col(db_, col), Tokenize(phrase), exact};
  }

  Database db_;
  SchemaGraph graph_;
  Executor exec_;
};

TEST_F(ExecutorTest, SingleRelationExists) {
  JoinTree t = JoinTree::Single(db_.RelationIdByName("Customer"));
  EXPECT_TRUE(exec_.Exists(t, {Pred("Customer.CustName", "Mike")}));
  EXPECT_FALSE(exec_.Exists(t, {Pred("Customer.CustName", "Zelda")}));
  EXPECT_TRUE(exec_.Exists(t, {}));  // relation non-empty
}

TEST_F(ExecutorTest, PaperCq1VerificationRow2) {
  // §4.1's example SQL: CQ1 verified for ET row 2 (Mary, iPad) succeeds —
  // Mary Smith bought the iPad Air.
  JoinTree cq1 = test::Tree(db_, graph_,
                            {"Sales", "Customer", "Device", "App"});
  EXPECT_TRUE(exec_.Exists(cq1, {Pred("Customer.CustName", "Mary"),
                                 Pred("Device.DevName", "iPad")}));
}

TEST_F(ExecutorTest, PaperCq2FailsForRow2) {
  // Example 5/6: the Owner-based candidates fail for row 2 — no employee
  // 'Mary' owns an 'iPad' (Mary Lee owns the Nexus 7).
  JoinTree cq2 = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  EXPECT_FALSE(exec_.Exists(cq2, {Pred("Employee.EmpName", "Mary"),
                                  Pred("Device.DevName", "iPad")}));
  // ...but succeeds for row 1: Mike Stone owns the ThinkPad X1.
  EXPECT_TRUE(exec_.Exists(cq2, {Pred("Employee.EmpName", "Mike"),
                                 Pred("Device.DevName", "ThinkPad")}));
}

TEST_F(ExecutorTest, ConjunctionOnSameRelation) {
  JoinTree t = JoinTree::Single(db_.RelationIdByName("Customer"));
  EXPECT_TRUE(exec_.Exists(t, {Pred("Customer.CustName", "Mike"),
                               Pred("Customer.CustName", "Jones")}));
  EXPECT_FALSE(exec_.Exists(t, {Pred("Customer.CustName", "Mike"),
                                Pred("Customer.CustName", "Smith")}));
}

TEST_F(ExecutorTest, ExactMatchPredicate) {
  JoinTree t = JoinTree::Single(db_.RelationIdByName("App"));
  // 'Dropbox' is the entire cell for app 3; 'Office' is not a whole cell.
  EXPECT_TRUE(exec_.Exists(t, {Pred("App.AppName", "Dropbox", true)}));
  EXPECT_FALSE(exec_.Exists(t, {Pred("App.AppName", "Office", true)}));
  EXPECT_TRUE(exec_.Exists(t, {Pred("App.AppName", "Office 2013", true)}));
}

TEST_F(ExecutorTest, FiveRelationChain) {
  // ESR -> Employee <- Owner -> Device plus Owner -> App.
  JoinTree t = test::Tree(db_, graph_,
                          {"ESR", "Employee", "Owner", "Device", "App"});
  // Mike Stone filed 'Office crash' and owns ThinkPad X1 with Office 2013.
  EXPECT_TRUE(exec_.Exists(t, {Pred("ESR.Desc", "Office"),
                               Pred("Device.DevName", "ThinkPad"),
                               Pred("App.AppName", "Office")}));
  // Bob Nash filed no service request at all.
  EXPECT_FALSE(exec_.Exists(t, {Pred("Employee.EmpName", "Bob")}));
}

TEST_F(ExecutorTest, PredicateOnIntermediateRelation) {
  JoinTree t = test::Tree(db_, graph_, {"Sales", "Customer", "Device"});
  // Predicate only on the device; join must still hold.
  EXPECT_TRUE(exec_.Exists(t, {Pred("Device.DevName", "Nexus")}));
}

TEST_F(ExecutorTest, MaterializeProjectsJoinResult) {
  JoinTree cq1 = test::Tree(db_, graph_,
                            {"Sales", "Customer", "Device", "App"});
  std::vector<ColumnRef> projection = {test::Col(db_, "Customer.CustName"),
                                       test::Col(db_, "Device.DevName"),
                                       test::Col(db_, "App.AppName")};
  auto rows = exec_.Materialize(cq1, {}, projection, 100);
  ASSERT_EQ(rows.size(), 3u);  // three sales
  // Each sale joins its own customer/device/app (ids align in Figure 1).
  bool found = false;
  for (const auto& row : rows) {
    if (row[0] == "Mike Jones" && row[1] == "ThinkPad X1" &&
        row[2] == "Office 2013") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ExecutorTest, MaterializeRespectsLimit) {
  JoinTree t = JoinTree::Single(db_.RelationIdByName("Customer"));
  auto rows =
      exec_.Materialize(t, {}, {test::Col(db_, "Customer.CustName")}, 2);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(ExecutorTest, MaterializeWithPredicates) {
  JoinTree t = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  auto rows = exec_.Materialize(
      t, {Pred("Employee.EmpName", "Mary")},
      {test::Col(db_, "Employee.EmpName"), test::Col(db_, "Device.DevName")},
      100);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "Mary Lee");
  EXPECT_EQ(rows[0][1], "Nexus 7");
}

TEST_F(ExecutorTest, MaterializeAssignmentsShapes) {
  JoinTree t = test::Tree(db_, graph_, {"Sales", "Customer"});
  std::vector<int> order;
  auto assignments = exec_.MaterializeAssignments(t, {}, 100, &order);
  EXPECT_EQ(order.size(), 2u);
  EXPECT_EQ(assignments.size(), 3u);
  for (const auto& a : assignments) EXPECT_EQ(a.size(), 2u);
}

/// Property: the semijoin executor agrees with the brute-force reference on
/// randomized scaled retailer databases and random predicate sets.
TEST_F(ExecutorTest, PropertyAgreesWithBruteForce) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Database db = MakeScaledRetailerDatabase(6, 6, 5, 5, 10, 10, 6, seed);
    SchemaGraph graph(db);
    Executor exec(db, graph);
    Rng rng(seed * 101);
    std::vector<JoinTree> trees = EnumerateSubtrees(graph, 4);
    TextGenerator text;
    for (int trial = 0; trial < 40; ++trial) {
      const JoinTree& tree = trees[rng.NextBounded(trees.size())];
      // Random predicates on random text columns of the tree.
      std::vector<PhrasePredicate> predicates;
      tree.verts.ForEach([&](int v) {
        const Relation& rel = db.relation(v);
        for (int c = 0; c < rel.num_columns(); ++c) {
          if (rel.columns()[c].type != ColumnType::kText) continue;
          if (!rng.NextBool(0.5)) continue;
          // Half the time probe with a value drawn from the column itself.
          std::string phrase;
          if (rng.NextBool(0.5) && rel.num_rows() > 0) {
            const std::string_view cell =
                rel.TextAt(c, rng.NextBounded(rel.num_rows()));
            std::vector<std::string> tokens = Tokenize(cell);
            phrase = tokens[rng.NextBounded(tokens.size())];
          } else {
            phrase = std::string(text.Word(rng, FirstNames()));
          }
          predicates.push_back(
              PhrasePredicate{ColumnRef{v, c}, Tokenize(phrase), false});
        }
      });
      EXPECT_EQ(exec.Exists(tree, predicates),
                test::BruteForceExists(db, graph, tree, predicates))
          << RenderVerificationSql(db, graph, tree, predicates);
    }
  }
}

TEST_F(ExecutorTest, SqlRenderingMatchesPaperStyle) {
  JoinTree cq1 = test::Tree(db_, graph_,
                            {"Sales", "Customer", "Device", "App"});
  std::string sql = RenderVerificationSql(
      db_, graph_, cq1,
      {Pred("Customer.CustName", "Mary"), Pred("Device.DevName", "iPad")});
  EXPECT_NE(sql.find("SELECT TOP 1 *"), std::string::npos);
  EXPECT_NE(sql.find("Sales.CustId = Customer.CustId"), std::string::npos);
  EXPECT_NE(sql.find("CONTAINS(Customer.CustName, 'mary')"),
            std::string::npos);
}

}  // namespace
}  // namespace qbe
