#ifndef QBE_TESTS_SHARD_TEST_UTIL_H_
#define QBE_TESTS_SHARD_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <utility>

#include "storage/database.h"
#include "util/rng.h"

namespace qbe {

/// A genuinely decomposable schema for the shard tests: Customer ← Order ←
/// Shipment chains with no shared dimensions, so every customer (plus their
/// orders and shipments) is its own join component and a partitioner can
/// actually spread the data. Text is drawn from small shared pools so
/// phrases recur across components — and, after partitioning, across shards
/// (candidate retrieval and verification genuinely exercise the merge).
inline Database MakeShardableDatabase(int customers, int orders_per_customer,
                                      int shipments_per_order,
                                      uint64_t seed) {
  const char* names[] = {"mike", "mary", "bob", "alice", "dave"};
  const char* cities[] = {"berlin", "tokyo", "lima"};
  const char* items[] = {"laptop", "tablet", "phone", "camera"};
  const char* notes[] = {"express", "fragile", "gift"};
  Rng rng(seed);

  Relation customer("Customer", {{"CustId", ColumnType::kId},
                                 {"Name", ColumnType::kText},
                                 {"City", ColumnType::kText}});
  Relation order("Order", {{"OrderId", ColumnType::kId},
                           {"CustId", ColumnType::kId},
                           {"Item", ColumnType::kText}});
  Relation shipment("Shipment", {{"ShipId", ColumnType::kId},
                                 {"OrderId", ColumnType::kId},
                                 {"Note", ColumnType::kText}});
  int64_t next_order = 0;
  int64_t next_ship = 0;
  for (int64_t c = 0; c < customers; ++c) {
    customer.AppendRow({c, std::string(names[rng.NextBounded(5)]),
                        std::string(cities[rng.NextBounded(3)])});
    for (int o = 0; o < orders_per_customer; ++o) {
      int64_t oid = next_order++;
      order.AppendRow({oid, c, std::string(items[rng.NextBounded(4)])});
      for (int s = 0; s < shipments_per_order; ++s) {
        shipment.AppendRow(
            {next_ship++, oid, std::string(notes[rng.NextBounded(3)])});
      }
    }
  }
  Database db;
  db.AddRelation(std::move(customer));
  db.AddRelation(std::move(order));
  db.AddRelation(std::move(shipment));
  db.AddForeignKey("Order", "CustId", "Customer", "CustId");
  db.AddForeignKey("Shipment", "OrderId", "Order", "OrderId");
  db.BuildIndexes();
  return db;
}

}  // namespace qbe

#endif  // QBE_TESTS_SHARD_TEST_UTIL_H_
