#include "core/discovery.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"
#include "test_util.h"

namespace qbe {
namespace {

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest() : db_(MakeRetailerDatabase()) {}
  Database db_;
};

TEST_F(DiscoveryTest, Figure2EndToEnd) {
  ExampleTable et = MakeFigure2ExampleTable();
  DiscoveryResult result = DiscoverQueries(db_, et);
  EXPECT_EQ(result.num_candidates, 3u);
  ASSERT_EQ(result.queries.size(), 1u);
  const DiscoveredQuery& q = result.queries[0];
  EXPECT_EQ(q.matched_rows, 3);
  // The unique valid query of Example 3.
  EXPECT_NE(q.sql.find("Customer.CustName AS A"), std::string::npos);
  EXPECT_NE(q.sql.find("Device.DevName AS B"), std::string::npos);
  EXPECT_NE(q.sql.find("App.AppName AS C"), std::string::npos);
  EXPECT_NE(q.sql.find("Sales.CustId = Customer.CustId"), std::string::npos);
  // Candidate column statistics per ET column: 2, 1, 2.
  EXPECT_EQ(result.candidate_columns_per_et_column,
            (std::vector<size_t>{2, 1, 2}));
}

TEST_F(DiscoveryTest, AllAlgorithmsProduceSameQueries) {
  ExampleTable et = MakeFigure2ExampleTable();
  DiscoveryOptions base;
  DiscoveryResult reference = DiscoverQueries(db_, et, base);
  for (Algorithm algo : {Algorithm::kVerifyAll, Algorithm::kSimplePrune,
                         Algorithm::kFilterExact, Algorithm::kWeave}) {
    DiscoveryOptions options = base;
    options.algorithm = algo;
    DiscoveryResult result = DiscoverQueries(db_, et, options);
    ASSERT_EQ(result.queries.size(), reference.queries.size());
    for (size_t i = 0; i < result.queries.size(); ++i) {
      EXPECT_EQ(result.queries[i].sql, reference.queries[i].sql);
    }
  }
}

TEST_F(DiscoveryTest, RankingPrefersSmallerTrees) {
  // A single-cell ET matched by both a 1-relation query and larger joins:
  // the singleton must rank first.
  ExampleTable et({"A"});
  et.AddRow({"Evernote"});
  DiscoveryResult result = DiscoverQueries(db_, et);
  ASSERT_GE(result.queries.size(), 1u);
  for (size_t i = 1; i < result.queries.size(); ++i) {
    EXPECT_GE(result.queries[0].score, result.queries[i].score);
    EXPECT_LE(result.queries[0].query.tree.NumVertices(),
              result.queries[i].query.tree.NumVertices());
  }
}

TEST_F(DiscoveryTest, MinRowSupportRelaxation) {
  // An ET whose third row is impossible: strict discovery returns nothing,
  // min_row_support = 2 resurrects the queries satisfying two rows.
  ExampleTable et({"A", "B"});
  et.AddRow({"Mike", "ThinkPad"});
  et.AddRow({"Mary", "iPad"});
  et.AddRow({"Mike", "Nexus"});  // no Mike bought/owns a Nexus
  DiscoveryOptions strict;
  DiscoveryResult none = DiscoverQueries(db_, et, strict);
  EXPECT_TRUE(none.queries.empty());

  DiscoveryOptions relaxed;
  relaxed.min_row_support = 2;
  DiscoveryResult some = DiscoverQueries(db_, et, relaxed);
  ASSERT_FALSE(some.queries.empty());
  for (const DiscoveredQuery& q : some.queries) {
    EXPECT_GE(q.matched_rows, 2);
  }
}

TEST_F(DiscoveryTest, ExactMatchCells) {
  // 'Office' appears as a token but never as a whole AppName cell; with an
  // exact cell the App-based query disappears while Desc-based queries
  // containing exactly "Office crash"... also fail. Expect zero from
  // AppName; with the non-exact cell there are valid queries.
  ExampleTable loose({"A"});
  loose.AddRow({"Evernote"});
  EXPECT_FALSE(DiscoverQueries(db_, loose).queries.empty());

  ExampleTable exact({"A"});
  exact.AddRowCells({EtCell{"Office", true}});
  DiscoveryResult result = DiscoverQueries(db_, exact);
  EXPECT_TRUE(result.queries.empty());

  ExampleTable exact_full({"A"});
  exact_full.AddRowCells({EtCell{"Office 2013", true}});
  EXPECT_FALSE(DiscoverQueries(db_, exact_full).queries.empty());
}

TEST_F(DiscoveryTest, UnmatchableValueYieldsNoCandidates) {
  ExampleTable et({"A"});
  et.AddRow({"Zelda"});
  DiscoveryResult result = DiscoverQueries(db_, et);
  EXPECT_EQ(result.num_candidates, 0u);
  EXPECT_TRUE(result.queries.empty());
}

TEST_F(DiscoveryTest, NoRankingWhenDisabled) {
  ExampleTable et({"A"});
  et.AddRow({"Evernote"});
  DiscoveryOptions options;
  options.rank_results = false;
  for (const DiscoveredQuery& q : DiscoverQueries(db_, et, options).queries) {
    EXPECT_EQ(q.score, 0.0);
  }
}

TEST_F(DiscoveryTest, IllFormedTableReturnsError) {
  ExampleTable et({"A", "B"});
  et.AddRow({"Mike", ""});  // column B fully empty
  DiscoveryResult result = DiscoverQueries(db_, et);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.queries.empty());
  EXPECT_EQ(result.num_candidates, 0u);

  ExampleTable good({"A", "B"});
  good.AddRow({"Mike", "ThinkPad"});
  EXPECT_TRUE(DiscoverQueries(db_, good).ok());
}

TEST_F(DiscoveryTest, CountersPopulated) {
  ExampleTable et = MakeFigure2ExampleTable();
  DiscoveryResult result = DiscoverQueries(db_, et);
  EXPECT_GT(result.counters.verifications, 0);
  EXPECT_GT(result.counters.estimated_cost, 0);
  EXPECT_GE(result.candidate_gen_seconds, 0.0);
}

}  // namespace
}  // namespace qbe
