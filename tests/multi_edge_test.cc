// Parallel foreign keys between the same pair of relations (§2.1: "there
// can be multiple edges from Rj to Rk, labeled with the corresponding
// foreign key's attribute name"). The IMDB-like schema has a real case:
// movie_link references title twice (movie_id and linked_movie_id). These
// edges yield *distinct* join trees over the same vertex set, distinct
// candidates, and distinct verification outcomes.

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "exec/executor.h"
#include "exec/sql_render.h"
#include "schema/subtree_enum.h"
#include "storage/database.h"
#include "text/tokenizer.h"

namespace qbe {
namespace {

/// A two-relation database with parallel edges: Game references Team twice
/// (home and away). Values are arranged so that "Lions" only ever plays
/// home and "Bears" only away.
Database MakeSportsDb() {
  Database db;
  Relation team("Team", {{"team_id", ColumnType::kId},
                         {"tname", ColumnType::kText}});
  team.AppendRow({int64_t{1}, std::string("Lions")});
  team.AppendRow({int64_t{2}, std::string("Bears")});
  team.AppendRow({int64_t{3}, std::string("Hawks")});
  Relation game("Game", {{"game_id", ColumnType::kId},
                         {"home_id", ColumnType::kId},
                         {"away_id", ColumnType::kId},
                         {"venue", ColumnType::kText}});
  game.AppendRow({int64_t{1}, int64_t{1}, int64_t{2}, std::string("north")});
  game.AppendRow({int64_t{2}, int64_t{1}, int64_t{3}, std::string("south")});
  game.AppendRow({int64_t{3}, int64_t{3}, int64_t{2}, std::string("north")});
  db.AddRelation(std::move(team));
  db.AddRelation(std::move(game));
  db.AddForeignKey("Game", "home_id", "Team", "team_id");
  db.AddForeignKey("Game", "away_id", "Team", "team_id");
  db.BuildIndexes();
  return db;
}

class MultiEdgeTest : public ::testing::Test {
 protected:
  MultiEdgeTest() : db_(MakeSportsDb()), graph_(db_), exec_(db_, graph_) {}
  Database db_;
  SchemaGraph graph_;
  Executor exec_;
};

TEST_F(MultiEdgeTest, TwoEdgesBetweenSamePair) {
  EXPECT_EQ(graph_.num_edges(), 2);
  EXPECT_EQ(graph_.edge(0).from, graph_.edge(1).from);
  EXPECT_EQ(graph_.edge(0).to, graph_.edge(1).to);
}

TEST_F(MultiEdgeTest, DistinctTreesOverSameVertexSet) {
  std::vector<JoinTree> trees = EnumerateSubtrees(graph_, 2);
  // 2 singletons + 2 distinct two-vertex trees (one per edge).
  ASSERT_EQ(trees.size(), 4u);
  int two_vertex = 0;
  for (const JoinTree& t : trees) two_vertex += t.NumVertices() == 2;
  EXPECT_EQ(two_vertex, 2);
}

TEST_F(MultiEdgeTest, EdgesHaveDifferentSemantics) {
  int game = db_.RelationIdByName("Game");
  int team = db_.RelationIdByName("Team");
  JoinTree home = JoinTree::Single(game);
  home = ExtendTree(home, graph_, 0);  // home_id edge
  JoinTree away = JoinTree::Single(game);
  away = ExtendTree(away, graph_, 1);  // away_id edge
  PhrasePredicate lions{ColumnRef{team, 1}, Tokenize("Lions"), false};
  PhrasePredicate bears{ColumnRef{team, 1}, Tokenize("Bears"), false};
  // Lions play home only; Bears away only.
  EXPECT_TRUE(exec_.Exists(home, {lions}));
  EXPECT_FALSE(exec_.Exists(home, {bears}));
  EXPECT_FALSE(exec_.Exists(away, {lions}));
  EXPECT_TRUE(exec_.Exists(away, {bears}));
}

TEST_F(MultiEdgeTest, CandidatesDistinguishParallelEdges) {
  // ET: (team, venue). "Lions/north" is satisfied by the home edge
  // (game 1), not the away edge; "Hawks/north" by the away... Hawks play
  // home at south (game 2) and away at north (game 3).
  ExampleTable et({"team", "venue"});
  et.AddRow({"Lions", "north"});
  auto candidates = GenerateCandidates(db_, graph_, et, {});
  // Both parallel-edge candidates pass the column constraints.
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_FALSE(candidates[0].tree == candidates[1].tree);
  // Verify: only the home-edge candidate is valid for (Lions, north).
  int valid = 0;
  for (const CandidateQuery& q : candidates) {
    valid += exec_.Exists(q.tree, RowPredicates(q, et, 0));
  }
  EXPECT_EQ(valid, 1);
}

TEST_F(MultiEdgeTest, ReferencedRowsPerEdge) {
  // Edge 0 (home): teams 1 and 3 host; edge 1 (away): teams 2 and 3 visit.
  auto to_vec = [](std::span<const uint32_t> s) {
    return std::vector<uint32_t>(s.begin(), s.end());
  };
  EXPECT_EQ(to_vec(db_.ReferencedRows(0)), (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(to_vec(db_.ReferencedRows(1)), (std::vector<uint32_t>{1, 2}));
}

TEST_F(MultiEdgeTest, SqlRendersBothJoinConditionsDistinctly) {
  int game = db_.RelationIdByName("Game");
  JoinTree home = ExtendTree(JoinTree::Single(game), graph_, 0);
  JoinTree away = ExtendTree(JoinTree::Single(game), graph_, 1);
  std::string home_sql = RenderVerificationSql(db_, graph_, home, {});
  std::string away_sql = RenderVerificationSql(db_, graph_, away, {});
  EXPECT_NE(home_sql.find("Game.home_id = Team.team_id"), std::string::npos);
  EXPECT_NE(away_sql.find("Game.away_id = Team.team_id"), std::string::npos);
  EXPECT_NE(home_sql, away_sql);
}

}  // namespace
}  // namespace qbe
