#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"
#include "util/small_bitset.h"
#include "util/string_util.h"
#include "util/zipf.h"

namespace qbe {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

TEST(SmallBitsetTest, SetTestReset) {
  RelationSet s;
  EXPECT_TRUE(s.Empty());
  s.Set(0);
  s.Set(63);
  s.Set(64);
  s.Set(127);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(63));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(127));
  EXPECT_FALSE(s.Test(1));
  EXPECT_EQ(s.Count(), 4);
  s.Reset(63);
  EXPECT_FALSE(s.Test(63));
  EXPECT_EQ(s.Count(), 3);
}

TEST(SmallBitsetTest, SubsetAndIntersect) {
  RelationSet a, b;
  a.Set(3);
  a.Set(70);
  b.Set(3);
  b.Set(70);
  b.Set(100);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  RelationSet c;
  c.Set(5);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(c.IsSubsetOf(c));
}

TEST(SmallBitsetTest, SetOperations) {
  RelationSet a, b;
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  EXPECT_EQ(a.Union(b).Count(), 3);
  EXPECT_EQ(a.Intersect(b).Count(), 1);
  EXPECT_TRUE(a.Intersect(b).Test(2));
  EXPECT_EQ(a.Minus(b).Count(), 1);
  EXPECT_TRUE(a.Minus(b).Test(1));
}

TEST(SmallBitsetTest, IterationAscending) {
  EdgeSet s;
  s.Set(5);
  s.Set(64);
  s.Set(130);
  std::vector<int> seen;
  s.ForEach([&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{5, 64, 130}));
  EXPECT_EQ(s.First(), 5);
  EXPECT_EQ(s.Next(5), 64);
  EXPECT_EQ(s.Next(64), 130);
  EXPECT_EQ(s.Next(130), -1);
}

TEST(SmallBitsetTest, EqualityAndHash) {
  RelationSet a, b;
  a.Set(10);
  b.Set(10);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Set(11);
  EXPECT_FALSE(a == b);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(29);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) counts[zipf.Sample(rng)] += 1;
  for (int c : counts) EXPECT_NEAR(c / 40000.0, 0.25, 0.03);
}

TEST(ZipfTest, SkewedWhenThetaPositive) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(31);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)] += 1;
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("MiKe JoNeS 42"), "mike jones 42");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilTest, SplitString) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

}  // namespace
}  // namespace qbe
