// Differential test for the interned-token CSR text index (DESIGN.md §10).
//
// Part 1 checks the index against a naive tokenize-and-scan oracle on
// seeded random corpora: MatchPhrase, MatchAllPhrases, TokenRowCount,
// MatchExactIds, and the equivalence of the string API with the id API
// under a shared dictionary (including multi-column ColumnIndex lookups).
//
// Part 2 checks the end-to-end determinism contract around interning:
// DiscoverQueries returns bit-identical ranked queries and verification
// counts with the match cache on or off, at 1, 2 and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "datagen/text_gen.h"
#include "exec/executor.h"
#include "text/column_index.h"
#include "text/inverted_index.h"
#include "text/token_dict.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace qbe {
namespace {

// --- naive oracle over tokenized cells -------------------------------------

bool OracleCellContains(const std::vector<std::string>& cell_tokens,
                        const std::vector<std::string>& phrase) {
  if (phrase.empty()) return true;
  if (phrase.size() > cell_tokens.size()) return false;
  for (size_t start = 0; start + phrase.size() <= cell_tokens.size();
       ++start) {
    if (std::equal(phrase.begin(), phrase.end(),
                   cell_tokens.begin() + start)) {
      return true;
    }
  }
  return false;
}

std::vector<uint32_t> OracleMatchPhrase(
    const std::vector<std::vector<std::string>>& corpus_tokens,
    const std::vector<std::string>& phrase) {
  std::vector<uint32_t> rows;
  for (uint32_t row = 0; row < corpus_tokens.size(); ++row) {
    if (OracleCellContains(corpus_tokens[row], phrase)) rows.push_back(row);
  }
  return rows;
}

size_t OracleTokenRowCount(
    const std::vector<std::vector<std::string>>& corpus_tokens,
    const std::string& token) {
  size_t n = 0;
  for (const std::vector<std::string>& cell : corpus_tokens) {
    if (std::find(cell.begin(), cell.end(), token) != cell.end()) ++n;
  }
  return n;
}

std::vector<uint32_t> OracleExactMatch(
    const std::vector<std::vector<std::string>>& corpus_tokens,
    const std::vector<std::string>& phrase) {
  std::vector<uint32_t> rows;
  for (uint32_t row = 0; row < corpus_tokens.size(); ++row) {
    if (corpus_tokens[row] == phrase) rows.push_back(row);
  }
  return rows;
}

/// A corpus with deliberate pathologies: empty cells, punctuation-only
/// cells, heavy token repetition, and ordinary generated phrases.
std::vector<std::string> RandomCorpus(Rng& rng, TextGenerator& text,
                                      int rows) {
  std::vector<std::string> cells;
  cells.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    switch (rng.NextBounded(8)) {
      case 0:
        cells.push_back("");
        break;
      case 1:
        cells.push_back("... !!! ,,,");
        break;
      case 2: {
        // Repeat one token to stress position handling ("go go go").
        std::string token = text.NotePhrase(rng, 1, 1);
        std::string cell = token;
        for (uint64_t k = rng.NextBounded(4); k > 0; --k) {
          cell += ' ';
          cell += token;
        }
        cells.push_back(cell);
        break;
      }
      default:
        cells.push_back(text.NotePhrase(rng, 1, 6));
    }
  }
  return cells;
}

/// A probe phrase: usually a token window of a real cell, sometimes random
/// (likely absent), sometimes with a token swapped out.
std::vector<std::string> RandomPhrase(
    Rng& rng, TextGenerator& text,
    const std::vector<std::vector<std::string>>& corpus_tokens) {
  std::vector<std::string> phrase;
  const std::vector<std::string>* src = nullptr;
  for (int attempts = 0; attempts < 20 && src == nullptr; ++attempts) {
    const std::vector<std::string>& cell =
        corpus_tokens[rng.NextBounded(corpus_tokens.size())];
    if (!cell.empty()) src = &cell;
  }
  if (src == nullptr || rng.NextBounded(4) == 0) {
    size_t len = 1 + rng.NextBounded(3);
    for (size_t i = 0; i < len; ++i) {
      phrase.push_back(Tokenize(text.NotePhrase(rng, 1, 1))[0]);
    }
    return phrase;
  }
  size_t start = rng.NextBounded(src->size());
  size_t len = 1 + rng.NextBounded(src->size() - start);
  phrase.assign(src->begin() + start, src->begin() + start + len);
  if (rng.NextBounded(4) == 0) {
    phrase[rng.NextBounded(phrase.size())] = "zzyzx";  // unindexed token
  }
  return phrase;
}

class TextIndexDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(TextIndexDifferentialTest, CsrIndexAgreesWithTokenizeAndScanOracle) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  TextGenerator text;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<std::string> cells = RandomCorpus(rng, text, 80);
    std::vector<std::vector<std::string>> corpus_tokens;
    for (const std::string& cell : cells) {
      corpus_tokens.push_back(Tokenize(cell));
    }

    TokenDict dict;
    InvertedIndex index;
    index.Build(cells, &dict);
    ASSERT_EQ(&index.dict(), &dict);

    for (uint32_t row = 0; row < cells.size(); ++row) {
      ASSERT_EQ(index.RowTokenCount(row), corpus_tokens[row].size());
    }

    for (int probe = 0; probe < 40; ++probe) {
      std::vector<std::string> phrase =
          RandomPhrase(rng, text, corpus_tokens);
      std::vector<uint32_t> want = OracleMatchPhrase(corpus_tokens, phrase);
      EXPECT_EQ(index.MatchPhrase(phrase), want)
          << "seed " << seed << " trial " << trial;

      // String API ≡ id API.
      std::vector<uint32_t> ids = dict.IdsOf(phrase);
      EXPECT_EQ(index.MatchPhraseIds(ids), want);
      EXPECT_EQ(index.AnyMatchIds(ids), !want.empty());

      std::vector<uint32_t> exact;
      index.MatchExactIdsInto(ids, &exact);
      EXPECT_EQ(exact, OracleExactMatch(corpus_tokens, phrase));

      for (const std::string& token : phrase) {
        EXPECT_EQ(index.TokenRowCount(token),
                  OracleTokenRowCount(corpus_tokens, token));
      }

      // Conjunction against a second independent phrase.
      std::vector<std::string> other =
          RandomPhrase(rng, text, corpus_tokens);
      std::vector<uint32_t> both;
      std::vector<uint32_t> other_rows =
          OracleMatchPhrase(corpus_tokens, other);
      std::set_intersection(want.begin(), want.end(), other_rows.begin(),
                            other_rows.end(), std::back_inserter(both));
      EXPECT_EQ(index.MatchAllPhrases({phrase, other}), both);
    }

    // Empty phrase and empty-cell exact match.
    EXPECT_EQ(index.MatchPhrase({}).size(), cells.size());
    std::vector<uint32_t> empty_exact;
    index.MatchExactIdsInto({}, &empty_exact);
    EXPECT_EQ(empty_exact, OracleExactMatch(corpus_tokens, {}));
  }
}

TEST_P(TextIndexDifferentialTest, SharedDictColumnIndexAgreesWithOracle) {
  uint64_t seed = GetParam();
  Rng rng(seed * 977 + 5);
  TextGenerator text;
  constexpr int kColumns = 4;

  std::vector<std::vector<std::string>> columns(kColumns);
  std::vector<std::vector<std::vector<std::string>>> column_tokens(kColumns);
  TokenDict dict;
  std::vector<InvertedIndex> indexes(kColumns);
  ColumnIndex ci;
  for (int c = 0; c < kColumns; ++c) {
    columns[c] = RandomCorpus(rng, text, 40);
    for (const std::string& cell : columns[c]) {
      column_tokens[c].push_back(Tokenize(cell));
    }
    indexes[c].Build(columns[c], &dict);
    ci.RegisterColumn(c, &indexes[c]);
  }

  for (int probe = 0; probe < 60; ++probe) {
    int src_col = static_cast<int>(rng.NextBounded(kColumns));
    std::vector<std::string> phrase =
        RandomPhrase(rng, text, column_tokens[src_col]);
    std::vector<int> want;
    for (int c = 0; c < kColumns; ++c) {
      if (!OracleMatchPhrase(column_tokens[c], phrase).empty()) {
        want.push_back(c);
      }
    }
    EXPECT_EQ(ci.ColumnsContaining(phrase), want) << "seed " << seed;
    EXPECT_EQ(ci.ColumnsContainingIds(dict.IdsOf(phrase)), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextIndexDifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

// --- end-to-end bit-identity around interning ------------------------------

TEST(TextIndexEndToEndTest, DiscoveryBitIdenticalAcrossThreadsAndMatchCache) {
  Database db = MakeScaledRetailerDatabase(30, 30, 12, 12, 120, 120, 50, 7);
  SchemaGraph graph(db);
  Executor exec(db, graph);
  EtSource::Options source_options;
  source_options.num_matrices = 4;
  source_options.min_text_cols = 3;
  source_options.min_matrix_rows = 6;
  EtSource source(db, graph, exec, 7, source_options);
  EtParams params;
  params.m = 3;
  params.n = 3;
  params.s = 0.3;
  params.v = 1;

  int64_t total_verifications = 0;
  int64_t total_cache_lookups = 0;
  for (const ExampleTable& et : source.SampleMany(params, 6, 4242)) {
    DiscoveryOptions base;
    base.use_match_cache = false;
    DiscoveryResult reference = DiscoverQueries(db, et, base);
    total_verifications += reference.counters.verifications;

    // verifications per thread count, indexed by [cache]; the batched
    // engine (threads > 1) may legitimately spend a different count than
    // the serial greedy, but the count must not depend on the match cache
    // or (for a fixed batch size) on the thread count.
    for (int threads : {1, 2, 8}) {
      int64_t uncached_verifications = -1;
      for (bool cache : {false, true}) {
        DiscoveryOptions options;
        options.use_match_cache = cache;
        options.verify.threads = threads;
        options.verify.batch_size = 4;
        DiscoveryResult result = DiscoverQueries(db, et, options);
        ASSERT_EQ(result.ok(), reference.ok());
        // The match cache and thread count are execution-cost knobs only:
        // the ranked query list is bit-identical to the serial uncached
        // reference in every configuration.
        ASSERT_EQ(result.queries.size(), reference.queries.size())
            << "cache=" << cache << " threads=" << threads;
        for (size_t i = 0; i < result.queries.size(); ++i) {
          EXPECT_EQ(result.queries[i].sql, reference.queries[i].sql);
          EXPECT_EQ(result.queries[i].score, reference.queries[i].score);
          EXPECT_EQ(result.queries[i].matched_rows,
                    reference.queries[i].matched_rows);
        }
        if (cache) {
          EXPECT_EQ(result.counters.verifications, uncached_verifications)
              << "match cache changed the verification count at "
              << threads << " threads";
          total_cache_lookups += result.counters.match_cache_lookups;
        } else {
          uncached_verifications = result.counters.verifications;
          EXPECT_EQ(result.counters.match_cache_lookups, 0);
        }
        if (threads == 1 && !cache) {
          EXPECT_EQ(result.counters.verifications,
                    reference.counters.verifications);
          EXPECT_EQ(result.counters.estimated_cost,
                    reference.counters.estimated_cost);
        }
      }
    }
  }
  // Guard against a degenerate instance set silently passing the matrix.
  EXPECT_GT(total_verifications, 0);
  EXPECT_GT(total_cache_lookups, 0);
}

}  // namespace
}  // namespace qbe
