// Sharded DiscoveryService tests (DESIGN.md §15): a service over
// FK-co-located shards returns bit-identical responses to an unsharded
// service on the same data — under concurrent clients — routes appends to
// the shard holding their relatives (rejecting cross-shard conflicts),
// scopes tombstones per shard, and exports the per-shard scatter-gather
// metrics.

#include "service/discovery_service.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/discovery.h"
#include "datagen/et_gen.h"
#include "ingest/db_view.h"
#include "ingest/live_db.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"
#include "shard/partition.h"
#include "shard_test_util.h"

namespace qbe {
namespace {

constexpr uint64_t kDbSeed = 11;
constexpr uint64_t kShardSeed = 5;

std::vector<Database> MakeShards(int num_shards) {
  Database db = MakeShardableDatabase(40, 3, 2, kDbSeed);
  PartitionOptions options;
  options.num_shards = num_shards;
  options.mode = PartitionMode::kHashPk;
  options.seed = kShardSeed;
  return SplitDatabase(db, ComputePartitionPlan(db, options));
}

std::vector<ExampleTable> Workload() {
  Database db = MakeShardableDatabase(40, 3, 2, kDbSeed);
  SchemaGraph graph(db);
  Executor exec(db, graph);
  EtSource::Options options;
  options.num_matrices = 4;
  options.min_text_cols = 3;
  options.min_matrix_rows = 6;
  EtSource source(db, graph, exec, kDbSeed, options);
  EtParams params;
  params.m = 2;
  params.n = 2;
  params.s = 0.3;
  params.v = 1;
  return source.SampleMany(params, /*count=*/6, /*seed=*/99);
}

std::vector<std::string> SqlList(const DiscoveryResult& result) {
  std::vector<std::string> sql;
  sql.reserve(result.queries.size());
  for (const DiscoveredQuery& q : result.queries) sql.push_back(q.sql);
  return sql;
}

TEST(ShardServiceTest, ShardedServiceIsBitIdenticalUnderConcurrency) {
  const std::vector<ExampleTable> workload = Workload();

  ServiceOptions options;
  options.num_workers = 4;
  options.discovery.verify.threads = 4;
  options.discovery.verify.batch_size = 4;

  DiscoveryService unsharded(MakeShardableDatabase(40, 3, 2, kDbSeed),
                             options);
  options.shard_seed = kShardSeed;
  DiscoveryService sharded(MakeShards(4), options);
  ASSERT_EQ(sharded.num_shards(), 4);

  // Reference responses from the unsharded service (itself pinned by
  // service_test.cc against serial DiscoverQueries).
  std::vector<DiscoveryResult> expected;
  for (const ExampleTable& et : workload) {
    ServiceResponse response = unsharded.Discover(et);
    ASSERT_TRUE(response.ok());
    expected.push_back(std::move(response.result));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < 3; ++r) {
        for (size_t q = 0; q < workload.size(); ++q) {
          const size_t pick = (q + static_cast<size_t>(c)) % workload.size();
          ServiceResponse response = sharded.Discover(workload[pick]);
          const DiscoveryResult& want = expected[pick];
          // Verification COUNTS are not compared here: each service owns a
          // shared eval cache that warms across requests, making counts
          // execution-order-dependent (same as the unsharded service —
          // see service_test.cc). The count identity against the
          // cacheless engine is pinned by shard_differential_test.
          if (response.status != RequestStatus::kOk ||
              SqlList(response.result) != SqlList(want) ||
              response.result.num_candidates != want.num_candidates) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Scores are exact doubles; spot-check one full response serially.
  ServiceResponse response = sharded.Discover(workload[0]);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.result.queries.size(), expected[0].queries.size());
  for (size_t i = 0; i < response.result.queries.size(); ++i) {
    EXPECT_EQ(response.result.queries[i].score, expected[0].queries[i].score);
  }

  // Per-shard observability: probes counted, straggler gauge present.
  const std::string dump = sharded.MetricsDump();
  EXPECT_NE(dump.find("shard_probes_s0"), std::string::npos);
  EXPECT_NE(dump.find("shard_probes_s3"), std::string::npos);
  EXPECT_NE(dump.find("shard_straggler_ratio"), std::string::npos);
  EXPECT_NE(dump.find("num_shards 4"), std::string::npos);
  int64_t probes = 0;
  for (int s = 0; s < 4; ++s) {
    probes += sharded.metrics()
                  .GetCounter("shard_probes_s" + std::to_string(s))
                  .Value();
  }
  EXPECT_GT(probes, 0);
}

TEST(ShardServiceTest, AppendsRouteToTheRelativesShard) {
  ServiceOptions options;
  options.shard_seed = kShardSeed;
  DiscoveryService service(MakeShards(4), options);

  // New order for existing customer 17: must land in 17's shard — verified
  // by a follow-up discovery finding the joined row. First locate 17.
  Database whole = MakeShardableDatabase(40, 3, 2, kDbSeed);
  PartitionOptions poptions;
  poptions.num_shards = 4;
  poptions.mode = PartitionMode::kHashPk;
  poptions.seed = kShardSeed;
  PartitionPlan plan = ComputePartitionPlan(whole, poptions);
  const int cust_shard = static_cast<int>(plan.shard_of[0][17]);

  std::string error;
  ASSERT_TRUE(service.Append(
      1, {int64_t{9000}, int64_t{17}, std::string("zeppelin")}, &error))
      << error;
  EXPECT_EQ(service.live_shard(cust_shard).delta_rows(), 1u)
      << "append landed on the wrong shard";

  // A child of the new order co-locates with it.
  ASSERT_TRUE(service.Append(
      2, {int64_t{9100}, int64_t{9000}, std::string("airmail")}, &error))
      << error;
  EXPECT_EQ(service.live_shard(cust_shard).delta_rows(), 2u);

  // Cross-shard conflict: an order whose PK already has a live child in
  // cust_shard but referencing a customer in a different shard.
  int other_customer = -1;
  for (uint32_t c = 0; c < plan.shard_of[0].size(); ++c) {
    if (static_cast<int>(plan.shard_of[0][c]) != cust_shard) {
      other_customer = static_cast<int>(c);
      break;
    }
  }
  ASSERT_GE(other_customer, 0);
  // Route the orphan child (of future order 9001) ourselves first so we
  // know its shard, then append it through the service.
  std::vector<DbVersion> versions;
  std::vector<DbView> views;
  for (int s = 0; s < 4; ++s) {
    versions.push_back(service.live_shard(s).Pin());
    views.push_back(versions.back().view());
  }
  const std::vector<Value> orphan = {int64_t{9101}, int64_t{9001},
                                     std::string("pigeon")};
  const int orphan_shard = RouteAppend(views, 2, orphan, kShardSeed, &error);
  ASSERT_GE(orphan_shard, 0) << error;
  ASSERT_TRUE(service.Append(2, orphan, &error)) << error;
  // Pick a customer NOT in the orphan's shard to force the conflict.
  int conflict_customer = -1;
  for (uint32_t c = 0; c < plan.shard_of[0].size(); ++c) {
    if (static_cast<int>(plan.shard_of[0][c]) != orphan_shard) {
      conflict_customer = static_cast<int>(c);
      break;
    }
  }
  ASSERT_GE(conflict_customer, 0);
  error.clear();
  EXPECT_FALSE(service.Append(
      1, {int64_t{9001}, int64_t{conflict_customer}, std::string("tandem")},
      &error));
  EXPECT_NE(error.find("cross-shard"), std::string::npos) << error;
  EXPECT_GE(service.metrics().GetCounter("appends_rejected").Value(), 1);

  // The sharded discovery sees routed appends: a phrase only present in
  // the appended rows is discoverable joined with its parent's name.
  const Relation& customer = whole.relation(0);
  std::string cust17_name(customer.TextAt(1, 17));
  ExampleTable et = ExampleTable::WithColumns(2);
  et.AddRow({cust17_name, "zeppelin"});
  ServiceResponse response = service.Discover(et);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(response.result.queries.size(), 0u)
      << "appended row not reachable through the shard-local join";
}

TEST(ShardServiceTest, TombstonesAreShardScoped) {
  ServiceOptions options;
  options.shard_seed = kShardSeed;
  DiscoveryService service(MakeShards(2), options);

  std::string error;
  EXPECT_FALSE(service.Tombstone(0, 0, &error));
  EXPECT_NE(error.find("TombstoneAt"), std::string::npos) << error;

  // Shard-local row 0 of Customer exists in whichever shard is non-empty.
  int target = service.live_shard(0).Pin().view().LiveRows(0) > 0 ? 0 : 1;
  ASSERT_TRUE(service.TombstoneAt(target, 0, 0, &error)) << error;
  EXPECT_FALSE(service.TombstoneAt(7, 0, 0, &error));
  EXPECT_NE(error.find("no such shard"), std::string::npos) << error;
}

TEST(ShardServiceTest, SingleElementVectorBehavesUnsharded) {
  std::vector<Database> one;
  one.push_back(MakeShardableDatabase(40, 3, 2, kDbSeed));
  DiscoveryService service(std::move(one), ServiceOptions{});
  EXPECT_EQ(service.num_shards(), 1);

  std::string error;
  EXPECT_TRUE(service.Append(
      0, {int64_t{777}, std::string("zoe"), std::string("quito")}, &error))
      << error;
  // Plain Tombstone works in unsharded mode (row 0 of Customer).
  EXPECT_TRUE(service.Tombstone(0, 0, &error)) << error;

  ServiceResponse response = service.Discover(Workload()[0]);
  EXPECT_TRUE(response.ok());
}

}  // namespace
}  // namespace qbe
