#include "text/token_dict.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"
#include "storage/database.h"
#include "text/inverted_index.h"

namespace qbe {
namespace {

TEST(TokenDictTest, InternAssignsDenseIdsInFirstOccurrenceOrder) {
  TokenDict dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(dict.Intern("gamma"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TokenDictTest, FindReturnsNoTokenForUnseen) {
  TokenDict dict;
  dict.Intern("alpha");
  EXPECT_EQ(dict.Find("alpha"), 0u);
  EXPECT_EQ(dict.Find("missing"), TokenDict::kNoToken);
  EXPECT_EQ(dict.Find(""), TokenDict::kNoToken);
}

TEST(TokenDictTest, TokenizeInternAndTokenizeIdsRoundTrip) {
  TokenDict dict;
  std::vector<uint32_t> ids;
  EXPECT_EQ(dict.TokenizeIntern("Mike Jones, Mike!", &ids), 3u);
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, 1, 0}));

  std::vector<uint32_t> again;
  dict.TokenizeIds("mike JONES unknown", &again);
  EXPECT_EQ(again, (std::vector<uint32_t>{0, 1, TokenDict::kNoToken}));
}

TEST(TokenDictTest, IdsOfKeepsPhrasePositionsAligned) {
  TokenDict dict;
  dict.Intern("red");
  dict.Intern("fox");
  std::vector<uint32_t> ids = dict.IdsOf({"red", "nope", "fox"});
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, TokenDict::kNoToken, 1}));

  std::vector<uint32_t> into{7, 7, 7};
  dict.IdsOfInto({"fox"}, &into);
  EXPECT_EQ(into, (std::vector<uint32_t>{1}));
}

TEST(TokenDictTest, MemoryBytesGrowsWithEntries) {
  TokenDict dict;
  size_t empty = dict.MemoryBytes();
  dict.Intern("some");
  dict.Intern("tokens");
  EXPECT_GT(dict.MemoryBytes(), empty);
}

TEST(TokenDictTest, DatabaseSharesOneDictAcrossAllIndexes) {
  Database db = MakeRetailerDatabase();
  const TokenDict& dict = db.token_dict();
  EXPECT_GT(dict.size(), 0u);
  for (int gid = 0; gid < db.TotalTextColumns(); ++gid) {
    const InvertedIndex& index = db.TextIndex(db.TextColumnByGid(gid));
    EXPECT_EQ(&index.dict(), &dict) << "gid " << gid;
    // Every distinct token id of every column is a real dictionary id.
    for (uint32_t id : index.distinct_token_ids()) {
      EXPECT_LT(id, dict.size());
    }
  }
}

TEST(TokenDictTest, StandaloneIndexOwnsPrivateDict) {
  InvertedIndex index;
  index.Build({"solo build mode"});
  EXPECT_EQ(index.dict().size(), 3u);
  EXPECT_EQ(index.MatchPhrase({"solo"}), (std::vector<uint32_t>{0}));
}

}  // namespace
}  // namespace qbe
