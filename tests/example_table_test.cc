#include "core/example_table.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"

namespace qbe {
namespace {

TEST(ExampleTableTest, Figure2Shape) {
  ExampleTable et = MakeFigure2ExampleTable();
  EXPECT_EQ(et.num_rows(), 3);
  EXPECT_EQ(et.num_columns(), 3);
  EXPECT_TRUE(et.IsWellFormed());
  EXPECT_EQ(et.cell(0, 0).text, "Mike");
  EXPECT_TRUE(et.cell(1, 2).IsEmpty());
  EXPECT_TRUE(et.cell(2, 1).IsEmpty());
}

TEST(ExampleTableTest, TokensCached) {
  ExampleTable et({"A"});
  et.AddRow({"ThinkPad X1 Carbon"});
  EXPECT_EQ(et.CellTokens(0, 0),
            (std::vector<std::string>{"thinkpad", "x1", "carbon"}));
}

TEST(ExampleTableTest, NonEmptyCountsAndMasks) {
  ExampleTable et = MakeFigure2ExampleTable();
  EXPECT_EQ(et.NonEmptyCellCount(0), 3);
  EXPECT_EQ(et.NonEmptyCellCount(1), 2);
  EXPECT_EQ(et.NonEmptyMask(0), 0b111u);
  EXPECT_EQ(et.NonEmptyMask(1), 0b011u);
  EXPECT_EQ(et.NonEmptyMask(2), 0b101u);
}

TEST(ExampleTableTest, Sparsity) {
  ExampleTable et = MakeFigure2ExampleTable();
  EXPECT_DOUBLE_EQ(et.Sparsity(), 2.0 / 9.0);
}

TEST(ExampleTableTest, EmptyRowViolatesWellFormedness) {
  ExampleTable et({"A", "B"});
  et.AddRow({"x", ""});
  et.AddRow({"", ""});
  EXPECT_FALSE(et.IsWellFormed());
}

TEST(ExampleTableTest, EmptyColumnViolatesWellFormedness) {
  ExampleTable et({"A", "B"});
  et.AddRow({"x", ""});
  et.AddRow({"y", ""});
  EXPECT_FALSE(et.IsWellFormed());
}

TEST(ExampleTableTest, NoRowsIsIllFormed) {
  ExampleTable et({"A"});
  EXPECT_FALSE(et.IsWellFormed());
}

TEST(ExampleTableTest, ExactCellsPreserved) {
  ExampleTable et({"A"});
  et.AddRowCells({EtCell{"42", true}});
  EXPECT_TRUE(et.cell(0, 0).exact);
}

TEST(ExampleTableTest, WithColumnsUnnamed) {
  ExampleTable et = ExampleTable::WithColumns(4);
  EXPECT_EQ(et.num_columns(), 4);
  EXPECT_EQ(et.column_name(0), "");
}

}  // namespace
}  // namespace qbe
