// End-to-end tests of the networked serving layer (DESIGN.md §16): a real
// NetServer on an ephemeral loopback port, driven through NetClient and
// raw sockets. The core assertion is bit-identity: discovery served over
// the wire returns exactly the SQL, scores and per-request verification
// counts that the in-process DiscoveryService returns for the same
// workload. Run under both sanitizers as well as plain builds.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "net/client.h"
#include "net/wire.h"
#include "service/discovery_service.h"
#include "util/socket.h"

namespace qbe {
namespace {

ExampleTable Et(const std::vector<std::vector<std::string>>& rows) {
  ExampleTable et = ExampleTable::WithColumns(static_cast<int>(rows[0].size()));
  for (const std::vector<std::string>& row : rows) et.AddRow(row);
  return et;
}

std::vector<ExampleTable> RetailerWorkload() {
  return {
      MakeFigure2ExampleTable(),
      Et({{"Mike", "ThinkPad", "Office"}}),
      Et({{"Mike"}}),
      Et({{"Mary", "iPad"}}),
      Et({{"Mike", "ThinkPad", "Office"}, {"Mary", "iPad", ""}}),
      Et({{"Bob", "", "Dropbox"}, {"Mike", "ThinkPad", "Office"}}),
  };
}

ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  return options;
}

/// The deterministic projection of a response: everything except wall
/// times. Two runs over fresh, identically-configured services must agree
/// on every field here, networked or not.
struct ResultKey {
  std::string status;
  std::vector<std::string> sql;
  std::vector<double> scores;
  std::vector<uint32_t> matched;
  uint64_t num_candidates = 0;
  int64_t verifications = 0;
  int64_t estimated_cost = 0;
  int64_t pruned = 0;

  bool operator==(const ResultKey& other) const {
    return status == other.status && sql == other.sql &&
           scores == other.scores && matched == other.matched &&
           num_candidates == other.num_candidates &&
           verifications == other.verifications &&
           estimated_cost == other.estimated_cost && pruned == other.pruned;
  }
};

ResultKey KeyOf(const ServiceResponse& response) {
  ResultKey key;
  key.status = ToString(response.status);
  for (const DiscoveredQuery& q : response.result.queries) {
    key.sql.push_back(q.sql);
    key.scores.push_back(q.score);
    key.matched.push_back(static_cast<uint32_t>(q.matched_rows));
  }
  key.num_candidates = response.result.num_candidates;
  key.verifications = response.result.counters.verifications;
  key.estimated_cost = response.result.counters.estimated_cost;
  key.pruned = response.result.counters.pruned_without_verification;
  return key;
}

ResultKey KeyOf(const WireResponse& response) {
  ResultKey key;
  key.status = response.status;
  for (const WireQuery& q : response.queries) {
    key.sql.push_back(q.sql);
    key.scores.push_back(q.score);
    key.matched.push_back(q.matched_rows);
  }
  key.num_candidates = response.num_candidates;
  key.verifications = response.verifications;
  key.estimated_cost = response.estimated_cost;
  key.pruned = response.pruned_without_verification;
  return key;
}

TEST(NetLoopbackTest, SequentialResultsBitIdenticalToInProcess) {
  // Two fresh services with identical options: one driven in-process, one
  // over the wire. Sequential replay keeps the shared eval cache's
  // request order identical, so even the verification counts — which are
  // cache-history-dependent — must match bit-for-bit.
  std::vector<ExampleTable> workload = RetailerWorkload();

  DiscoveryService direct(MakeRetailerDatabase(), SmallServiceOptions());
  std::vector<ResultKey> expected;
  for (const ExampleTable& et : workload) {
    expected.push_back(KeyOf(direct.Discover(et)));
  }

  DiscoveryService served(MakeRetailerDatabase(), SmallServiceOptions());
  NetServer server(&served);
  ASSERT_TRUE(server.ok()) << server.error();
  NetClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.error();
  for (size_t i = 0; i < workload.size(); ++i) {
    WireRequest request =
        WireRequest::FromExampleTable(workload[i], /*id=*/i + 1);
    ClientReply reply;
    ASSERT_TRUE(client.Call(request, &reply)) << client.error();
    ASSERT_FALSE(reply.is_error) << reply.error.message;
    EXPECT_EQ(reply.response.id, i + 1);  // ids echo verbatim
    EXPECT_TRUE(KeyOf(reply.response) == expected[i]) << "request " << i;
  }
  server.Stop();
}

TEST(NetLoopbackTest, EightConcurrentClientsMatchInProcessResults) {
  // Concurrency makes eval-cache history — and with it the verification
  // counts — order-dependent, so here the assertion is the SQL sets,
  // scores and matched-row counts: the paper-visible output.
  std::vector<ExampleTable> workload = RetailerWorkload();

  DiscoveryService direct(MakeRetailerDatabase(), SmallServiceOptions());
  std::vector<std::vector<std::string>> expected_sql;
  std::vector<std::vector<double>> expected_scores;
  for (const ExampleTable& et : workload) {
    ServiceResponse response = direct.Discover(et);
    ASSERT_EQ(response.status, RequestStatus::kOk);
    ResultKey key = KeyOf(response);
    expected_sql.push_back(key.sql);
    expected_scores.push_back(key.scores);
  }

  ServiceOptions options = SmallServiceOptions();
  options.num_workers = 4;
  DiscoveryService served(MakeRetailerDatabase(), options);
  NetServer server(&served);
  ASSERT_TRUE(server.ok()) << server.error();

  constexpr int kClients = 8;
  constexpr int kRepeat = 3;
  std::atomic<int> mismatches{0};
  std::atomic<int> transport_errors{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      NetClient client("127.0.0.1", server.port());
      if (!client.ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRepeat; ++r) {
        for (size_t q = 0; q < workload.size(); ++q) {
          size_t pick = (q + static_cast<size_t>(c)) % workload.size();
          WireRequest request =
              WireRequest::FromExampleTable(workload[pick], /*id=*/pick);
          ClientReply reply;
          if (!client.Call(request, &reply)) {
            transport_errors.fetch_add(1);
            return;
          }
          if (reply.is_error || reply.response.status != "ok") {
            mismatches.fetch_add(1);
            continue;
          }
          ResultKey key = KeyOf(reply.response);
          if (key.sql != expected_sql[pick] ||
              key.scores != expected_scores[pick]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  server.Stop();
}

TEST(NetLoopbackTest, PipelinedResponsesArriveInRequestOrder) {
  std::vector<ExampleTable> workload = RetailerWorkload();
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServer server(&service);
  ASSERT_TRUE(server.ok()) << server.error();

  NetClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.error();
  // Stream every request before reading a single reply; replies must come
  // back in exactly the order sent, whatever the worker pool did.
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(client.Send(
        WireRequest::FromExampleTable(workload[i], /*id=*/100 + i)))
        << client.error();
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    ClientReply reply;
    ASSERT_TRUE(client.Receive(&reply)) << client.error();
    ASSERT_FALSE(reply.is_error);
    EXPECT_EQ(reply.response.id, 100 + i);
    EXPECT_EQ(reply.response.status, "ok");
  }
  server.Stop();
}

TEST(NetLoopbackTest, QueueFullRejectionTravelsAsTypedResponse) {
  // Admission control must reach the remote client as a "rejected"
  // response, not a dropped connection: gate the single worker, fill the
  // depth-1 queue, and pipeline one more request.
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;

  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue_depth = 1;
  options.on_request_start = [&] {
    std::unique_lock<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  DiscoveryService service(MakeRetailerDatabase(), options);
  NetServer server(&service);
  ASSERT_TRUE(server.ok()) << server.error();

  NetClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.error();
  ExampleTable et = Et({{"Mike"}});

  ASSERT_TRUE(client.Send(WireRequest::FromExampleTable(et, 1)));
  {
    // The worker now owns request 1; the queue is empty.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  ASSERT_TRUE(client.Send(WireRequest::FromExampleTable(et, 2)));
  // Give request 2 time to cross the loopback and occupy the queue slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(client.Send(WireRequest::FromExampleTable(et, 3)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  std::vector<std::string> statuses;
  for (uint64_t expect_id = 1; expect_id <= 3; ++expect_id) {
    ClientReply reply;
    ASSERT_TRUE(client.Receive(&reply)) << client.error();
    ASSERT_FALSE(reply.is_error);
    EXPECT_EQ(reply.response.id, expect_id);  // rejection kept its place
    statuses.push_back(reply.response.status);
  }
  EXPECT_EQ(statuses[0], "ok");
  EXPECT_EQ(statuses[1], "ok");
  EXPECT_EQ(statuses[2], "rejected");
  server.Stop();
}

/// Reads one frame from a raw socket (blocking), asserting it is a typed
/// error, and returns it.
WireErrorMsg ReadErrorFrame(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    FrameView frame;
    WireFault fault = WireFault::kNone;
    std::string detail;
    FrameStatus status = TryExtractFrame(buffer.data(), buffer.size(), &frame,
                                         &fault, &detail);
    EXPECT_NE(status, FrameStatus::kFault) << detail;
    if (status == FrameStatus::kFrame) {
      EXPECT_EQ(frame.type, WireType::kError);
      WireErrorMsg error;
      std::string decode_error;
      EXPECT_TRUE(DecodeErrorPayload(frame.payload, frame.payload_bytes,
                                     &error, &decode_error))
          << decode_error;
      return error;
    }
    ssize_t n = ReadRetry(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      ADD_FAILURE() << "connection closed before an error frame arrived";
      return {};
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

/// True once the peer has closed: read returns 0 (any stray bytes first
/// are drained).
bool ReadsEof(int fd) {
  char chunk[4096];
  for (;;) {
    ssize_t n = ReadRetry(fd, chunk, sizeof(chunk));
    if (n == 0) return true;
    if (n < 0) return false;
  }
}

TEST(NetLoopbackTest, GarbageBytesGetTypedErrorThenClose) {
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServer server(&service);
  ASSERT_TRUE(server.ok()) << server.error();

  std::string error;
  int fd = ConnectTcp("127.0.0.1", server.port(), &error);
  ASSERT_GE(fd, 0) << error;
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(WriteAll(fd, garbage, sizeof(garbage) - 1));
  WireErrorMsg wire_error = ReadErrorFrame(fd);
  EXPECT_EQ(wire_error.fault, WireFault::kBadMagic);
  EXPECT_TRUE(ReadsEof(fd));
  CloseFd(&fd);
  server.Stop();
}

TEST(NetLoopbackTest, CorruptFrameGetsBadChecksumThenClose) {
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServer server(&service);
  ASSERT_TRUE(server.ok()) << server.error();

  std::string frame;
  EncodeRequestFrame(WireRequest::FromExampleTable(Et({{"Mike"}}), 1),
                     &frame);
  frame[kWireHeaderBytes] =
      static_cast<char>(frame[kWireHeaderBytes] ^ 0x40);  // payload flip

  std::string error;
  int fd = ConnectTcp("127.0.0.1", server.port(), &error);
  ASSERT_GE(fd, 0) << error;
  ASSERT_TRUE(WriteAll(fd, frame.data(), frame.size()));
  WireErrorMsg wire_error = ReadErrorFrame(fd);
  EXPECT_EQ(wire_error.fault, WireFault::kBadChecksum);
  EXPECT_TRUE(ReadsEof(fd));
  CloseFd(&fd);
  server.Stop();
}

TEST(NetLoopbackTest, StructurallyInvalidPayloadIsBadPayload) {
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServer server(&service);
  ASSERT_TRUE(server.ok()) << server.error();

  // Framing-valid, structurally invalid: one row but zero columns.
  WireRequest bad;
  bad.id = 9;
  bad.rows.push_back({});
  std::string frame;
  EncodeRequestFrame(bad, &frame);

  std::string error;
  int fd = ConnectTcp("127.0.0.1", server.port(), &error);
  ASSERT_GE(fd, 0) << error;
  ASSERT_TRUE(WriteAll(fd, frame.data(), frame.size()));
  WireErrorMsg wire_error = ReadErrorFrame(fd);
  EXPECT_EQ(wire_error.fault, WireFault::kBadPayload);
  EXPECT_TRUE(ReadsEof(fd));
  CloseFd(&fd);
  server.Stop();
}

TEST(NetLoopbackTest, ConnectionCapAnswersServerBusy) {
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServerOptions net_options;
  net_options.max_connections = 1;
  NetServer server(&service, net_options);
  ASSERT_TRUE(server.ok()) << server.error();

  NetClient first("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok()) << first.error();
  // A round trip guarantees the server has registered the connection.
  ClientReply reply;
  ASSERT_TRUE(first.Call(WireRequest::FromExampleTable(Et({{"Mike"}}), 1),
                         &reply));
  ASSERT_FALSE(reply.is_error);

  NetClient second("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok()) << second.error();
  ClientReply busy;
  ASSERT_TRUE(second.Receive(&busy)) << second.error();
  ASSERT_TRUE(busy.is_error);
  EXPECT_EQ(busy.error.fault, WireFault::kServerBusy);
  EXPECT_FALSE(second.Receive(&busy));  // and then the socket closes

  // The surviving connection keeps working.
  ASSERT_TRUE(first.Call(WireRequest::FromExampleTable(Et({{"Mary"}}), 2),
                         &reply));
  EXPECT_FALSE(reply.is_error);
  server.Stop();
}

TEST(NetLoopbackTest, IdleConnectionGetsTypedTimeout) {
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServerOptions net_options;
  net_options.idle_timeout_ms = 100;
  NetServer server(&service, net_options);
  ASSERT_TRUE(server.ok()) << server.error();

  NetClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.error();
  ClientReply reply;
  ASSERT_TRUE(client.Call(WireRequest::FromExampleTable(Et({{"Mike"}}), 1),
                          &reply));
  ASSERT_FALSE(reply.is_error);

  // Now go quiet; the sweep must close us with a typed reason.
  ASSERT_TRUE(client.Receive(&reply)) << client.error();
  ASSERT_TRUE(reply.is_error);
  EXPECT_EQ(reply.error.fault, WireFault::kIdleTimeout);
  EXPECT_FALSE(client.Receive(&reply));
  server.Stop();
}

TEST(NetLoopbackTest, GracefulStopDeliversInFlightResponse) {
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;

  ServiceOptions options;
  options.num_workers = 1;
  options.on_request_start = [&] {
    std::unique_lock<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  DiscoveryService service(MakeRetailerDatabase(), options);
  NetServer server(&service);
  ASSERT_TRUE(server.ok()) << server.error();

  NetClient client("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.error();
  ASSERT_TRUE(client.Send(WireRequest::FromExampleTable(Et({{"Mike"}}), 1)));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }

  // Stop while the request is mid-flight: drain must hold the connection
  // open until the response lands on the client.
  std::thread stopper([&] { server.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  ClientReply reply;
  ASSERT_TRUE(client.Receive(&reply)) << client.error();
  ASSERT_FALSE(reply.is_error);
  EXPECT_EQ(reply.response.status, "ok");
  EXPECT_EQ(reply.response.id, 1u);
  stopper.join();
  EXPECT_FALSE(client.Receive(&reply));  // drained and closed
}

TEST(NetLoopbackTest, NetMetricsAreRecorded) {
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServer server(&service);
  ASSERT_TRUE(server.ok()) << server.error();
  {
    NetClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.error();
    ClientReply reply;
    ASSERT_TRUE(client.Call(WireRequest::FromExampleTable(Et({{"Mike"}}), 1),
                            &reply));
  }
  server.Stop();
  MetricsRegistry& metrics = service.metrics();
  EXPECT_EQ(metrics.GetCounter("net_connections_accepted").Value(), 1);
  EXPECT_EQ(metrics.GetCounter("net_requests").Value(), 1);
  EXPECT_EQ(metrics.GetCounter("net_responses").Value(), 1);
  EXPECT_EQ(metrics.GetCounter("net_connections_closed").Value(), 1);
  EXPECT_GT(metrics.GetCounter("net_bytes_read").Value(), 0);
  EXPECT_GT(metrics.GetCounter("net_bytes_written").Value(), 0);
}

TEST(NetLoopbackTest, SampledConnectionsRecordNetSpans) {
  DiscoveryService service(MakeRetailerDatabase(), SmallServiceOptions());
  NetServerOptions net_options;
  net_options.trace_sample = 1.0;
  NetServer server(&service, net_options);
  ASSERT_TRUE(server.ok()) << server.error();
  {
    NetClient client("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.error();
    ClientReply reply;
    ASSERT_TRUE(client.Call(WireRequest::FromExampleTable(Et({{"Mike"}}), 1),
                            &reply));
  }
  server.Stop();
  std::vector<Trace> traces = server.RecentNetTraces();
  ASSERT_EQ(traces.size(), 1u);
  std::string why;
  EXPECT_TRUE(traces[0].WellFormed(&why)) << why;
  EXPECT_GE(traces[0].PhaseCount(SpanKind::kNetRead), 1u);
  EXPECT_GE(traces[0].PhaseCount(SpanKind::kNetWrite), 1u);
}

}  // namespace
}  // namespace qbe
