#include <gtest/gtest.h>

#include <map>
#include <set>

#include "datagen/cust_like.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "datagen/text_gen.h"
#include "util/rng.h"

namespace qbe {
namespace {

void ExpectReferentialIntegrity(const Database& db) {
  for (const ForeignKey& fk : db.foreign_keys()) {
    EXPECT_TRUE(db.EdgeHasNoDangling(fk.id))
        << db.relation(fk.from_rel).name() << " -> "
        << db.relation(fk.to_rel).name();
  }
}

TEST(RetailerTest, Figure1Content) {
  Database db = MakeRetailerDatabase();
  EXPECT_EQ(db.num_relations(), 7);
  int customer = db.RelationIdByName("Customer");
  EXPECT_EQ(db.relation(customer).num_rows(), 3u);
  EXPECT_EQ(db.relation(customer).TextAt(1, 0), "Mike Jones");
  int esr = db.RelationIdByName("ESR");
  EXPECT_EQ(db.relation(esr).num_rows(), 2u);
  EXPECT_EQ(db.relation(esr).TextAt(3, 1), "Dropbox can't sync");
  ExpectReferentialIntegrity(db);
}

TEST(RetailerTest, ScaledInstanceShape) {
  Database db = MakeScaledRetailerDatabase(10, 12, 5, 6, 30, 25, 8, 3);
  EXPECT_EQ(db.relation(db.RelationIdByName("Customer")).num_rows(), 10u);
  EXPECT_EQ(db.relation(db.RelationIdByName("Sales")).num_rows(), 30u);
  ExpectReferentialIntegrity(db);
}

TEST(ImdbLikeTest, Table2Statistics) {
  ImdbConfig config;
  config.scale = 0.05;  // schema statistics are scale-invariant
  Database db = MakeImdbLikeDatabase(config);
  EXPECT_EQ(db.num_relations(), kImdbRelations);
  EXPECT_EQ(static_cast<int>(db.foreign_keys().size()), kImdbEdges);
  EXPECT_EQ(db.TotalColumns(), kImdbColumns);
  EXPECT_EQ(db.TotalTextColumns(), kImdbTextColumns);
}

TEST(ImdbLikeTest, ReferentialIntegrity) {
  ImdbConfig config;
  config.scale = 0.05;
  ExpectReferentialIntegrity(MakeImdbLikeDatabase(config));
}

TEST(ImdbLikeTest, DeterministicForSeed) {
  ImdbConfig config;
  config.scale = 0.02;
  Database a = MakeImdbLikeDatabase(config);
  Database b = MakeImdbLikeDatabase(config);
  int person = a.RelationIdByName("person");
  ASSERT_EQ(a.relation(person).num_rows(), b.relation(person).num_rows());
  for (uint32_t r = 0; r < a.relation(person).num_rows(); ++r) {
    EXPECT_EQ(a.relation(person).TextAt(1, r), b.relation(person).TextAt(1, r));
  }
}

TEST(ImdbLikeTest, CrossColumnNameAmbiguity) {
  // The Example 1 property: person names must also appear in char_name and
  // aka_name so that candidate projection columns are ambiguous.
  ImdbConfig config;
  config.scale = 0.2;
  Database db = MakeImdbLikeDatabase(config);
  const ColumnIndex& ci = db.column_index();
  std::vector<int> cols = ci.ColumnsContaining({"mike"});
  EXPECT_GE(cols.size(), 3u);
}

TEST(ImdbLikeTest, ScaleGrowsRowCounts) {
  ImdbConfig small, large;
  small.scale = 0.05;
  large.scale = 0.1;
  Database a = MakeImdbLikeDatabase(small);
  Database b = MakeImdbLikeDatabase(large);
  int title = a.RelationIdByName("title");
  EXPECT_LT(a.relation(title).num_rows(), b.relation(title).num_rows());
}

TEST(CustLikeTest, Table2Statistics) {
  CustConfig config;
  config.scale = 0.05;
  Database db = MakeCustLikeDatabase(config);
  EXPECT_EQ(db.num_relations(), kCustRelations);
  EXPECT_EQ(static_cast<int>(db.foreign_keys().size()), kCustEdges);
  EXPECT_EQ(db.TotalColumns(), kCustColumns);
  EXPECT_EQ(db.TotalTextColumns(), kCustTextColumns);
}

TEST(CustLikeTest, ReferentialIntegrity) {
  CustConfig config;
  config.scale = 0.05;
  ExpectReferentialIntegrity(MakeCustLikeDatabase(config));
}

TEST(CustLikeTest, FactsReferenceDims) {
  CustConfig config;
  config.scale = 0.05;
  Database db = MakeCustLikeDatabase(config);
  for (const ForeignKey& fk : db.foreign_keys()) {
    EXPECT_EQ(db.relation(fk.from_rel).name().substr(0, 5), "fact_");
    EXPECT_EQ(db.relation(fk.to_rel).name().substr(0, 4), "dim_");
  }
}

TEST(CustLikeTest, DeterministicForSeed) {
  CustConfig config;
  config.scale = 0.03;
  Database a = MakeCustLikeDatabase(config);
  Database b = MakeCustLikeDatabase(config);
  EXPECT_EQ(a.relation(0).num_rows(), b.relation(0).num_rows());
  const Relation& ra = a.relation(0);
  const Relation& rb = b.relation(0);
  for (int c = 0; c < ra.num_columns(); ++c) {
    if (ra.columns()[c].type != ColumnType::kText) continue;
    for (uint32_t r = 0; r < ra.num_rows(); ++r) {
      ASSERT_EQ(ra.TextAt(c, r), rb.TextAt(c, r));
    }
  }
}

TEST(CustLikeTest, StatusColumnsUsePerRelationVocabularies) {
  // Each relation's status column draws from a 4-state workflow subset of
  // the 16-state vocabulary; without this every status column in the
  // schema would match every status value and candidate counts explode.
  CustConfig config;
  config.scale = 0.2;
  Database db = MakeCustLikeDatabase(config);
  int checked = 0;
  for (int r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    int col = rel.ColumnIndexByName("status");
    if (col < 0 || rel.num_rows() < 50) continue;
    std::set<std::string> distinct;
    for (uint32_t row = 0; row < rel.num_rows(); ++row) {
      distinct.insert(std::string(rel.TextAt(col, row)));
    }
    EXPECT_LE(distinct.size(), 4u) << rel.name();
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

TEST(CustLikeTest, RepeatDomainColumnsAreLongTail) {
  // A second person column in the same relation must not mirror the first
  // one's head-heavy distribution (that multiplicity is what blew up the
  // candidate counts); compare top-value frequencies.
  CustConfig config;
  config.scale = 0.5;
  Database db = MakeCustLikeDatabase(config);
  auto top_share = [](const Relation& rel, int col) {
    std::map<std::string, int> counts;
    for (uint32_t row = 0; row < rel.num_rows(); ++row) {
      counts[std::string(rel.TextAt(col, row))] += 1;
    }
    int top = 0;
    for (const auto& [value, count] : counts) top = std::max(top, count);
    return static_cast<double>(top) / rel.num_rows();
  };
  int compared = 0;
  for (int r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    int first = rel.ColumnIndexByName("person");
    int second = rel.ColumnIndexByName("person2");
    if (first < 0 || second < 0 || rel.num_rows() < 150) continue;
    EXPECT_LT(top_share(rel, second), 0.05) << rel.name();
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(TextGeneratorTest, PersonNamesHaveTwoTokens) {
  TextGenerator text;
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    std::string name = text.PersonName(rng);
    EXPECT_NE(name.find(' '), std::string::npos);
  }
}

TEST(TextGeneratorTest, NotePhraseRespectsLengthBounds) {
  TextGenerator text;
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::string note = text.NotePhrase(rng, 2, 4);
    int words = 1;
    for (char ch : note) words += ch == ' ';
    EXPECT_GE(words, 2);
    EXPECT_LE(words, 4);
  }
}

}  // namespace
}  // namespace qbe
