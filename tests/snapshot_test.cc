// Binary snapshot store (DESIGN.md §11): round-trip bit-identity between a
// CSV-built database and its mmap-opened snapshot — same schema, same cell
// values, same discovery outcomes at 1 and 8 verification threads — plus
// corruption handling: a truncated file, a flipped byte in any section, or
// a wrong format version must be rejected cleanly, never crash.

#include "snapshot/snapshot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "snapshot/format.h"
#include "storage/database.h"
#include "util/hash64.h"

namespace qbe {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = testing::TempDir() + "/snapshot_" + name + ".qbes";
  std::filesystem::remove(path);
  return path;
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Discovery outcome fingerprint: the sorted valid-SQL set plus the
/// verification counter — the two things the snapshot must reproduce
/// exactly for the paper's algorithms to be unaffected by the storage mode.
struct Outcome {
  std::vector<std::string> sqls;
  int64_t verifications;
  bool operator==(const Outcome&) const = default;
};

Outcome Discover(const Database& db, const ExampleTable& et, int threads) {
  DiscoveryOptions options;
  options.verify.threads = threads;
  DiscoveryResult result = DiscoverQueries(db, et, options);
  Outcome out;
  for (const auto& q : result.queries) out.sqls.push_back(q.sql);
  std::sort(out.sqls.begin(), out.sqls.end());
  out.verifications = result.counters.verifications;
  return out;
}

class SnapshotTest : public ::testing::Test {
 protected:
  /// Writes `db` to a fresh snapshot and returns the path; asserts success.
  std::string Snapshot(const Database& db, const std::string& name) {
    std::string path = TempPath(name);
    std::string error;
    EXPECT_TRUE(WriteSnapshot(db, path, &error)) << error;
    return path;
  }
};

TEST_F(SnapshotTest, RoundTripPreservesSchemaAndCells) {
  Database original = MakeRetailerDatabase();
  std::string path = Snapshot(original, "cells");
  std::string error;
  std::optional<Database> loaded = Database::OpenSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  ASSERT_EQ(loaded->num_relations(), original.num_relations());
  ASSERT_EQ(loaded->foreign_keys().size(), original.foreign_keys().size());
  EXPECT_EQ(loaded->token_dict().size(), original.token_dict().size());
  for (int r = 0; r < original.num_relations(); ++r) {
    const Relation& a = original.relation(r);
    const Relation& b = loaded->relation(loaded->RelationIdByName(a.name()));
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (int c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.columns()[c].name, b.columns()[c].name);
      ASSERT_EQ(a.columns()[c].type, b.columns()[c].type);
      for (uint32_t row = 0; row < a.num_rows(); ++row) {
        if (a.columns()[c].type == ColumnType::kId) {
          ASSERT_EQ(a.IdAt(c, row), b.IdAt(c, row));
        } else {
          ASSERT_EQ(a.TextAt(c, row), b.TextAt(c, row));
        }
      }
    }
  }
  for (const ForeignKey& fk : original.foreign_keys()) {
    auto to_vec = [](std::span<const uint32_t> s) {
      return std::vector<uint32_t>(s.begin(), s.end());
    };
    EXPECT_EQ(to_vec(loaded->ReferencedRows(fk.id)),
              to_vec(original.ReferencedRows(fk.id)));
    EXPECT_EQ(to_vec(loaded->ValidFromRows(fk.id)),
              to_vec(original.ValidFromRows(fk.id)));
    EXPECT_EQ(loaded->EdgeHasNoDangling(fk.id),
              original.EdgeHasNoDangling(fk.id));
    EXPECT_EQ(loaded->FkDistinctValues(fk.id),
              original.FkDistinctValues(fk.id));
  }
}

TEST_F(SnapshotTest, RoundTripDiscoveryIdenticalAtOneAndEightThreads) {
  Database original = MakeRetailerDatabase();
  std::string path = Snapshot(original, "discovery");
  std::string error;
  std::optional<Database> loaded = Database::OpenSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  ExampleTable et = MakeFigure2ExampleTable();
  for (int threads : {1, 8}) {
    Outcome a = Discover(original, et, threads);
    Outcome b = Discover(*loaded, et, threads);
    EXPECT_FALSE(a.sqls.empty());
    EXPECT_EQ(a, b) << "thread count " << threads;
  }
}

TEST_F(SnapshotTest, RoundTripImdbLikeDiscoveryIdentical) {
  // A second schema shape: 21 relations, parallel edges, shared token
  // dictionary across 42 text columns.
  ImdbConfig config;
  config.scale = 0.1;
  config.seed = 7;
  Database original = MakeImdbLikeDatabase(config);
  std::string path = Snapshot(original, "imdb");
  std::string error;
  std::optional<Database> loaded = Database::OpenSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  ExampleTable et({"A", "B"});
  et.AddRow({"mike", "the"});
  for (int threads : {1, 8}) {
    EXPECT_EQ(Discover(original, et, threads), Discover(*loaded, et, threads))
        << "thread count " << threads;
  }
}

TEST_F(SnapshotTest, KeyLookupsWorkOnMappedDatabase) {
  // PkLookup/FkLookup are built lazily after a snapshot open; they must
  // return the same rows as the eagerly built CSV-path maps.
  Database original = MakeRetailerDatabase();
  std::string path = Snapshot(original, "lookups");
  std::optional<Database> loaded = Database::OpenSnapshot(path);
  ASSERT_TRUE(loaded.has_value());
  const ForeignKey& fk = original.foreign_keys()[0];
  for (uint32_t row = 0; row < original.relation(fk.to_rel).num_rows();
       ++row) {
    int64_t key = original.relation(fk.to_rel).IdAt(fk.to_col, row);
    EXPECT_EQ(loaded->PkLookup(fk.to_rel, fk.to_col, key),
              original.PkLookup(fk.to_rel, fk.to_col, key));
    const std::vector<uint32_t>* a = original.FkLookup(fk.id, key);
    const std::vector<uint32_t>* b = loaded->FkLookup(fk.id, key);
    ASSERT_EQ(a == nullptr, b == nullptr);
    if (a != nullptr) {
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST_F(SnapshotTest, VerifyAcceptsIntactFile) {
  std::string path = Snapshot(MakeRetailerDatabase(), "verify");
  std::string error;
  EXPECT_TRUE(VerifySnapshot(path, &error)) << error;
  std::optional<SnapshotFileInfo> info = ReadSnapshotInfo(path, &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->version, snapshot::kVersion);
  EXPECT_GT(info->sections.size(), 0u);
}

TEST_F(SnapshotTest, MissingFileReportsPath) {
  std::string error;
  EXPECT_FALSE(Database::OpenSnapshot("/no/such/file.qbes", &error));
  EXPECT_NE(error.find("/no/such/file.qbes"), std::string::npos);
}

TEST_F(SnapshotTest, TruncatedFileRejected) {
  std::string path = Snapshot(MakeRetailerDatabase(), "truncated");
  std::vector<char> bytes = ReadFile(path);
  // Every truncation point must fail cleanly: mid-header, mid-directory,
  // and mid-payload.
  for (size_t keep : {size_t{10}, size_t{200}, bytes.size() / 2}) {
    WriteFile(path, std::vector<char>(bytes.begin(), bytes.begin() + keep));
    std::string error;
    EXPECT_FALSE(Database::OpenSnapshot(path, &error).has_value())
        << "accepted a file truncated to " << keep << " bytes";
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(VerifySnapshot(path));
  }
}

TEST_F(SnapshotTest, FlippedByteInEverySectionRejected) {
  std::string path = Snapshot(MakeRetailerDatabase(), "flip");
  const std::vector<char> intact = ReadFile(path);
  std::string error;
  std::optional<SnapshotFileInfo> info = ReadSnapshotInfo(path, &error);
  ASSERT_TRUE(info.has_value()) << error;
  for (const SnapshotSectionInfo& s : info->sections) {
    if (s.bytes == 0) continue;
    std::vector<char> bytes = intact;
    bytes[s.offset + s.bytes / 2] ^= 0x40;
    WriteFile(path, bytes);
    EXPECT_FALSE(Database::OpenSnapshot(path, &error).has_value())
        << "accepted a flipped byte in section " << s.name;
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
    EXPECT_FALSE(VerifySnapshot(path));
  }
  WriteFile(path, intact);
  EXPECT_TRUE(VerifySnapshot(path, &error)) << error;
}

TEST_F(SnapshotTest, WrongVersionRejected) {
  std::string path = Snapshot(MakeRetailerDatabase(), "version");
  std::vector<char> bytes = ReadFile(path);
  // Bump the version and recompute the header checksum so rejection comes
  // from the version gate, not from checksum validation.
  snapshot::FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  header.version = snapshot::kVersion + 1;
  header.header_checksum =
      Hash64(&header, offsetof(snapshot::FileHeader, header_checksum));
  std::memcpy(bytes.data(), &header, sizeof(header));
  WriteFile(path, bytes);
  std::string error;
  EXPECT_FALSE(Database::OpenSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST_F(SnapshotTest, BadMagicRejected) {
  std::string path = TempPath("magic");
  WriteFile(path, std::vector<char>(4096, 'x'));
  std::string error;
  EXPECT_FALSE(Database::OpenSnapshot(path, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(SnapshotTest, WriteRequiresBuiltDatabase) {
  Database db;
  std::string error;
  EXPECT_FALSE(WriteSnapshot(db, TempPath("unbuilt"), &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace qbe
