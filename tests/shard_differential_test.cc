// Sharded-engine differential suite (DESIGN.md §15): DiscoverQueriesSharded
// must be bit-identical to unsharded DiscoverQueries — same SQL set in the
// same order, exact-double scores, matched-row counts, candidate counts,
// and the logical verification counters (verifications / estimated_cost /
// pruned_without_verification are charged once per logical existence query
// regardless of how many shard probes answer it).
//
// 12 seeded decomposable databases × 9 random ETs = 108 instances, each
// checked at shards {1, 2, 4} × threads {1, 8} under both partition modes,
// plus algorithm-coverage (VERIFYALL / SIMPLEPRUNE / relaxed support) and a
// degenerate single-component retailer instance. Run under TSan and ASan by
// the sanitizer CI legs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/discovery.h"
#include "datagen/et_gen.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "ingest/db_view.h"
#include "schema/schema_graph.h"
#include "shard/coordinator.h"
#include "shard/partition.h"
#include "shard_test_util.h"

namespace qbe {
namespace {

constexpr int kEtsPerSeed = 9;

struct ShardWorkbench {
  explicit ShardWorkbench(uint64_t seed)
      : db(MakeShardableDatabase(40, 3, 2, seed)), graph(db), exec(db, graph) {}

  Database db;
  SchemaGraph graph;
  Executor exec;
};

std::vector<ExampleTable> RandomEts(ShardWorkbench& wb, uint64_t seed) {
  EtSource::Options options;
  options.num_matrices = 4;
  options.min_text_cols = 3;
  options.min_matrix_rows = 6;
  EtSource source(wb.db, wb.graph, wb.exec, seed, options);
  EtParams params;
  params.m = 3;
  params.n = 3;
  params.s = 0.3;
  params.v = 1;
  return source.SampleMany(params, kEtsPerSeed, seed * 131 + 7);
}

/// A materialized partition: the shard databases plus views over them.
struct Sharding {
  std::vector<Database> dbs;
  std::vector<DbView> views;
};

Sharding Shard(const Database& db, int num_shards, PartitionMode mode,
               uint64_t seed = 0) {
  PartitionOptions options;
  options.num_shards = num_shards;
  options.mode = mode;
  options.seed = seed;
  Sharding out;
  out.dbs = SplitDatabase(db, ComputePartitionPlan(db, options));
  for (const Database& shard : out.dbs) out.views.emplace_back(shard);
  return out;
}

/// Every observable the deterministic-merge contract covers. `what` names
/// the configuration so a failure pins (seed, mode, shards, threads).
void ExpectBitIdentical(const DiscoveryResult& reference,
                        const DiscoveryResult& sharded,
                        const std::string& what) {
  ASSERT_EQ(sharded.ok(), reference.ok()) << what << ": " << sharded.error;
  EXPECT_EQ(sharded.timed_out, reference.timed_out) << what;
  EXPECT_EQ(sharded.num_candidates, reference.num_candidates) << what;
  EXPECT_EQ(sharded.candidate_columns_per_et_column,
            reference.candidate_columns_per_et_column)
      << what;
  EXPECT_EQ(sharded.counters.verifications, reference.counters.verifications)
      << what;
  EXPECT_EQ(sharded.counters.estimated_cost, reference.counters.estimated_cost)
      << what;
  EXPECT_EQ(sharded.counters.pruned_without_verification,
            reference.counters.pruned_without_verification)
      << what;
  ASSERT_EQ(sharded.queries.size(), reference.queries.size()) << what;
  for (size_t i = 0; i < sharded.queries.size(); ++i) {
    EXPECT_EQ(sharded.queries[i].sql, reference.queries[i].sql)
        << what << " query " << i;
    // Exact double equality: the merged rank inputs are integers summed
    // across shards, then fed through the identical float expression.
    EXPECT_EQ(sharded.queries[i].score, reference.queries[i].score)
        << what << " query " << i;
    EXPECT_EQ(sharded.queries[i].matched_rows,
              reference.queries[i].matched_rows)
        << what << " query " << i;
  }
}

class ShardDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

// The acceptance matrix: shards {1,2,4} × threads {1,8}, both partition
// modes, default (FILTER) algorithm.
TEST_P(ShardDifferentialTest, MatchesUnshardedAcrossShardAndThreadCounts) {
  const uint64_t seed = GetParam();
  ShardWorkbench wb(seed);

  std::vector<std::pair<std::string, Sharding>> shardings;
  for (int shards : {1, 2, 4}) {
    shardings.emplace_back(
        "hash/" + std::to_string(shards),
        Shard(wb.db, shards, PartitionMode::kHashPk, /*seed=*/seed));
    if (shards > 1) {
      shardings.emplace_back("range/" + std::to_string(shards),
                             Shard(wb.db, shards, PartitionMode::kRowRange));
    }
  }
  // The 2-shard hash split must actually occupy both shards, else the
  // suite silently degenerates into testing the 1-shard passthrough.
  {
    const Sharding& two = shardings[1].second;
    ASSERT_EQ(two.dbs.size(), 2u);
    uint64_t rows0 = 0;
    for (int r = 0; r < two.dbs[0].num_relations(); ++r) {
      rows0 += two.dbs[0].relation(r).num_rows();
    }
    ASSERT_GT(rows0, 0u) << "hash/2 left shard 0 empty";
    ASSERT_LT(rows0, 40u + 120u + 240u) << "hash/2 left shard 1 empty";
  }

  int instances = 0;
  for (const ExampleTable& et : RandomEts(wb, seed + 1000)) {
    ++instances;
    // The reference runs the SAME verify configuration unsharded: the
    // batched parallel engine legitimately spends more verifications than
    // the serial path (differential_test.cc part 2 pins that contract), so
    // sharding must be compared apples-to-apples per thread count.
    for (int threads : {1, 8}) {
      DiscoveryOptions options;
      options.verify.threads = threads;
      options.verify.batch_size = 4;
      DiscoveryResult reference = DiscoverQueries(wb.db, et, options);
      for (const auto& [label, sharding] : shardings) {
        DiscoveryResult sharded =
            DiscoverQueriesSharded(sharding.views, et, options);
        ExpectBitIdentical(reference, sharded,
                           "seed " + std::to_string(seed) + " instance " +
                               std::to_string(instances) + " " + label +
                               " threads " + std::to_string(threads));
      }
    }
  }
  EXPECT_EQ(instances, kEtsPerSeed);
}

// Algorithm coverage: the scatter-gather seam sits below every verifier, so
// VERIFYALL and SIMPLEPRUNE (and FILTER's exact variant) must also merge
// bit-identically.
TEST_P(ShardDifferentialTest, AllVerifiersAgreeSharded) {
  const uint64_t seed = GetParam();
  if (seed > 4) GTEST_SKIP() << "algorithm sweep runs on a seed subset";
  ShardWorkbench wb(seed);
  Sharding sharding = Shard(wb.db, 4, PartitionMode::kHashPk, seed);

  for (const ExampleTable& et : RandomEts(wb, seed + 3000)) {
    for (Algorithm algorithm :
         {Algorithm::kVerifyAll, Algorithm::kSimplePrune,
          Algorithm::kFilterExact}) {
      DiscoveryOptions options;
      options.algorithm = algorithm;
      options.verify.threads = 8;
      options.verify.batch_size = 4;
      DiscoveryResult reference = DiscoverQueries(wb.db, et, options);
      DiscoveryResult sharded =
          DiscoverQueriesSharded(sharding.views, et, options);
      ExpectBitIdentical(reference, sharded,
                         "seed " + std::to_string(seed) + " algorithm " +
                             std::to_string(static_cast<int>(algorithm)));
    }
  }
}

// Relaxed validity (min_row_support ≥ 0) takes the relaxed retrieval and
// verification paths — both have their own sharded merge.
TEST_P(ShardDifferentialTest, RelaxedSupportMatchesUnsharded) {
  const uint64_t seed = GetParam();
  if (seed > 4) GTEST_SKIP() << "relaxed sweep runs on a seed subset";
  ShardWorkbench wb(seed);
  Sharding sharding = Shard(wb.db, 4, PartitionMode::kHashPk, seed);

  for (const ExampleTable& et : RandomEts(wb, seed + 4000)) {
    for (int threads : {1, 8}) {
      DiscoveryOptions options;
      options.min_row_support = 2;
      options.verify.threads = threads;
      options.verify.batch_size = 4;
      DiscoveryResult reference = DiscoverQueries(wb.db, et, options);
      DiscoveryResult sharded =
          DiscoverQueriesSharded(sharding.views, et, options);
      ExpectBitIdentical(reference, sharded,
                         "relaxed seed " + std::to_string(seed) +
                             " threads " + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

// Degenerate case: the retailer schema's shared dimensions collapse it into
// one giant join component, so every row lands in a single shard and the
// other shards stay empty. Discovery must still be bit-identical (the
// empty-shard probes are skipped, never executed).
TEST(ShardDifferentialDegenerateTest, SingleComponentDatabaseStillMatches) {
  Database db = MakeScaledRetailerDatabase(30, 30, 12, 12, 120, 120, 50, 7);
  SchemaGraph graph(db);
  Executor exec(db, graph);
  EtSource::Options source_options;
  source_options.num_matrices = 4;
  source_options.min_text_cols = 3;
  source_options.min_matrix_rows = 6;
  EtSource source(db, graph, exec, 7, source_options);
  EtParams params;
  params.m = 3;
  params.n = 3;
  params.s = 0.3;
  params.v = 1;

  Sharding sharding = Shard(db, 4, PartitionMode::kHashPk);
  int occupied = 0;
  for (const Database& shard : sharding.dbs) {
    uint64_t rows = 0;
    for (int r = 0; r < shard.num_relations(); ++r) {
      rows += shard.relation(r).num_rows();
    }
    occupied += rows > 0 ? 1 : 0;
  }
  EXPECT_EQ(occupied, 1) << "retailer should be one join component";

  for (const ExampleTable& et : source.SampleMany(params, 4, 4242)) {
    for (int threads : {1, 8}) {
      DiscoveryOptions options;
      options.verify.threads = threads;
      options.verify.batch_size = 4;
      DiscoveryResult reference = DiscoverQueries(db, et, options);
      DiscoveryResult sharded =
          DiscoverQueriesSharded(sharding.views, et, options);
      ExpectBitIdentical(reference, sharded,
                         "degenerate threads " + std::to_string(threads));
    }
  }
}

// WEAVE materializes tuple trees directly — no scatter-gather form; the
// sharded engine must refuse rather than silently under-report.
TEST(ShardDifferentialDegenerateTest, WeaveIsRejected) {
  ShardWorkbench wb(1);
  Sharding sharding = Shard(wb.db, 2, PartitionMode::kHashPk);
  for (const ExampleTable& et : RandomEts(wb, 5000)) {
    DiscoveryOptions options;
    options.algorithm = Algorithm::kWeave;
    DiscoveryResult result = DiscoverQueriesSharded(sharding.views, et, options);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("WEAVE"), std::string::npos) << result.error;
    break;  // one ET suffices; the gate is input-independent
  }
}

// The owning coordinator wrapper produces the same results as calling the
// free function over caller-held views, and reports shard stats.
TEST(ShardCoordinatorTest, DiscoverMatchesFreeFunctionAndFillsStats) {
  ShardWorkbench wb(3);
  PartitionOptions poptions;
  poptions.num_shards = 4;
  poptions.mode = PartitionMode::kHashPk;
  poptions.seed = 3;
  ShardCoordinator coordinator(
      SplitDatabase(wb.db, ComputePartitionPlan(wb.db, poptions)));
  ASSERT_EQ(coordinator.num_shards(), 4);

  Sharding sharding = Shard(wb.db, 4, PartitionMode::kHashPk, 3);
  for (const ExampleTable& et : RandomEts(wb, 6000)) {
    DiscoveryOptions options;
    ShardStats stats;
    DiscoveryResult via_coordinator = coordinator.Discover(et, options, &stats);
    DiscoveryResult via_views = DiscoverQueriesSharded(sharding.views, et,
                                                       options);
    ExpectBitIdentical(via_views, via_coordinator, "coordinator");

    ASSERT_EQ(stats.per_shard.size(), 4u);
    if (via_coordinator.counters.verifications > 0) {
      int64_t probes = 0;
      for (const auto& shard : stats.per_shard) probes += shard.probes;
      // Short-circuit scatter-gather: at least one probe per logical eval,
      // at most num_shards.
      EXPECT_GE(probes, via_coordinator.counters.verifications);
      EXPECT_LE(probes, via_coordinator.counters.verifications * 4);
      EXPECT_GE(stats.straggler_ratio, 1.0);
    }
    break;  // one ET exercises the wrapper; identity is covered above
  }
}

}  // namespace
}  // namespace qbe
