#include "storage/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace qbe {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, ParseCsvLineBasic) {
  EXPECT_EQ(ParseCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

TEST_F(CsvTest, ParseCsvLineQuoting) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",x"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST_F(CsvTest, LoadInfersTypes) {
  std::string path = TempPath("load.csv");
  WriteFile(path, "id,name,score\n1,Mike Jones,10\n2,Mary Smith,20\n");
  auto rel = LoadRelationFromCsv("People", path);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->name(), "People");
  EXPECT_EQ(rel->num_rows(), 2u);
  EXPECT_EQ(rel->columns()[0].type, ColumnType::kId);
  EXPECT_EQ(rel->columns()[1].type, ColumnType::kText);
  EXPECT_EQ(rel->columns()[2].type, ColumnType::kId);
  EXPECT_EQ(rel->IdAt(0, 1), 2);
  EXPECT_EQ(rel->TextAt(1, 0), "Mike Jones");
}

TEST_F(CsvTest, LoadRejectsRaggedRows) {
  std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,b\n1,2\n3\n");
  EXPECT_FALSE(LoadRelationFromCsv("R", path).has_value());
}

TEST_F(CsvTest, LoadRejectsMissingFile) {
  EXPECT_FALSE(LoadRelationFromCsv("R", TempPath("missing.csv")).has_value());
}

TEST_F(CsvTest, RoundTrip) {
  Relation rel("R", {{"id", ColumnType::kId}, {"txt", ColumnType::kText}});
  rel.AppendRow({int64_t{1}, std::string("plain")});
  rel.AppendRow({int64_t{2}, std::string("with, comma and \"quote\"")});
  std::string path = TempPath("round.csv");
  ASSERT_TRUE(WriteRelationToCsv(rel, path));
  auto loaded = LoadRelationFromCsv("R", path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->IdAt(0, 0), 1);
  EXPECT_EQ(loaded->TextAt(1, 1), "with, comma and \"quote\"");
}

TEST_F(CsvTest, CarriageReturnsStripped) {
  std::string path = TempPath("crlf.csv");
  WriteFile(path, "id,name\r\n1,Mike\r\n");
  auto rel = LoadRelationFromCsv("R", path);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->TextAt(1, 0), "Mike");
}

}  // namespace
}  // namespace qbe
