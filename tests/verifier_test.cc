#include "core/verifier.h"

#include <gtest/gtest.h>

#include "core/candidate_gen.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "test_util.h"

namespace qbe {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : db_(MakeRetailerDatabase()),
        graph_(db_),
        exec_(db_, graph_),
        et_(MakeFigure2ExampleTable()) {
    candidates_ = GenerateCandidates(db_, graph_, et_, {});
  }

  VerifyContext Ctx() {
    return VerifyContext{db_, graph_, exec_, et_, candidates_, 42};
  }

  int ValidCount(const std::vector<bool>& valid) {
    int n = 0;
    for (bool v : valid) n += v;
    return n;
  }

  Database db_;
  SchemaGraph graph_;
  Executor exec_;
  ExampleTable et_;
  std::vector<CandidateQuery> candidates_;
};

TEST_F(VerifierTest, MakeRowOrderGiven) {
  EXPECT_EQ(MakeRowOrder(et_, RowOrder::kGiven, 1),
            (std::vector<int>{0, 1, 2}));
}

TEST_F(VerifierTest, MakeRowOrderDenseFirst) {
  // Row 0 has 3 non-empty cells, rows 1 and 2 have 2 each (stable order).
  EXPECT_EQ(MakeRowOrder(et_, RowOrder::kDenseFirst, 1),
            (std::vector<int>{0, 1, 2}));
}

TEST_F(VerifierTest, MakeRowOrderRandomIsSeededPermutation) {
  std::vector<int> a = MakeRowOrder(et_, RowOrder::kRandom, 5);
  std::vector<int> b = MakeRowOrder(et_, RowOrder::kRandom, 5);
  EXPECT_EQ(a, b);
  std::vector<int> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
}

TEST_F(VerifierTest, VerifyAllFindsOnlyCq1) {
  VerifyAll algo;
  VerificationCounters counters;
  VerifyContext ctx = Ctx();
  std::vector<bool> valid = algo.Verify(ctx, &counters);
  EXPECT_EQ(ValidCount(valid), 1);
  // The valid candidate is the Sales-based CQ1.
  JoinTree cq1 = test::Tree(db_, graph_,
                            {"Sales", "Customer", "Device", "App"});
  for (size_t q = 0; q < candidates_.size(); ++q) {
    if (valid[q]) EXPECT_TRUE(candidates_[q].tree == cq1);
  }
  EXPECT_GT(counters.verifications, 0);
  EXPECT_GT(counters.estimated_cost, 0);
}

TEST_F(VerifierTest, VerifyAllVerificationAccounting) {
  // With the 3 default-l candidates: CQ1 passes all 3 rows (3 checks);
  // the two Owner-based candidates pass row 1 and fail row 2 (2 checks
  // each) under dense-first order = 3 + 2 + 2 = 7.
  VerifyAll algo(RowOrder::kDenseFirst);
  VerificationCounters counters;
  VerifyContext ctx = Ctx();
  algo.Verify(ctx, &counters);
  EXPECT_EQ(counters.verifications, 7);
}

TEST_F(VerifierTest, EvalEngineCachesPredicatelessFilters) {
  VerificationCounters counters;
  VerifyContext ctx = Ctx();
  EvalEngine engine(ctx, &counters);
  Filter f;
  f.tree = test::Tree(db_, graph_, {"Sales", "Customer"});
  f.phi.assign(3, ColumnRef{});
  f.row = 0;
  EXPECT_TRUE(engine.EvaluateFilter(f));
  EXPECT_TRUE(engine.EvaluateFilter(f));
  EXPECT_EQ(counters.verifications, 1);  // second call served from cache
}

TEST_F(VerifierTest, SimplePruneAgreesWithVerifyAll) {
  VerifyAll verify_all;
  SimplePrune simple_prune;
  VerificationCounters c1, c2;
  VerifyContext ctx = Ctx();
  EXPECT_EQ(verify_all.Verify(ctx, &c1), simple_prune.Verify(ctx, &c2));
}

TEST_F(VerifierTest, SimplePrunePrunesViaFailureDependency) {
  // Build the Example 6 pair: small CQ (subtree) ordered before its
  // supertree candidate; the failure on row 2 must prune the supertree
  // without verifying it.
  std::vector<CandidateQuery> pair;
  CandidateQuery small;
  small.tree = test::Tree(db_, graph_, {"Owner", "Employee", "Device"});
  small.projection = {test::Col(db_, "Employee.EmpName"),
                      test::Col(db_, "Device.DevName"),
                      test::Col(db_, "Employee.EmpName")};
  CandidateQuery big;
  big.tree = test::Tree(db_, graph_, {"Owner", "Employee", "Device", "App"});
  big.projection = small.projection;
  pair.push_back(big);    // order in the vector must not matter:
  pair.push_back(small);  // SimplePrune sorts by tree size itself.

  VerifyContext ctx{db_, graph_, exec_, et_, pair, 42};
  VerificationCounters prune_counters, all_counters;
  SimplePrune simple_prune;
  VerifyAll verify_all;
  std::vector<bool> pruned = simple_prune.Verify(ctx, &prune_counters);
  std::vector<bool> reference = verify_all.Verify(ctx, &all_counters);
  EXPECT_EQ(pruned, reference);
  EXPECT_EQ(prune_counters.pruned_without_verification, 1);
  EXPECT_LT(prune_counters.verifications, all_counters.verifications);
}

TEST_F(VerifierTest, CountersAddAggregates) {
  VerificationCounters a, b;
  a.verifications = 3;
  a.estimated_cost = 10;
  a.peak_memory_bytes = 100;
  b.verifications = 2;
  b.estimated_cost = 5;
  b.peak_memory_bytes = 200;
  a.Add(b);
  EXPECT_EQ(a.verifications, 5);
  EXPECT_EQ(a.estimated_cost, 15);
  EXPECT_EQ(a.peak_memory_bytes, 200u);
}

}  // namespace
}  // namespace qbe
