#include "exec/sql_render.h"

#include <gtest/gtest.h>

#include "datagen/retailer.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace qbe {
namespace {

class SqlRenderTest : public ::testing::Test {
 protected:
  SqlRenderTest() : db_(MakeRetailerDatabase()), graph_(db_) {}
  Database db_;
  SchemaGraph graph_;
};

TEST_F(SqlRenderTest, ProjectJoinWithLabels) {
  JoinTree tree = test::Tree(db_, graph_, {"Sales", "Customer", "Device"});
  std::string sql = RenderProjectJoinSql(
      db_, graph_, tree,
      {test::Col(db_, "Customer.CustName"), test::Col(db_, "Device.DevName")},
      {"who", "what"});
  EXPECT_EQ(sql,
            "SELECT Customer.CustName AS who, Device.DevName AS what "
            "FROM Customer, Device, Sales "
            "WHERE Sales.CustId = Customer.CustId AND "
            "Sales.DevId = Device.DevId");
}

TEST_F(SqlRenderTest, DefaultSpreadsheetLabels) {
  JoinTree tree = JoinTree::Single(db_.RelationIdByName("Customer"));
  std::string sql = RenderProjectJoinSql(
      db_, graph_, tree,
      {test::Col(db_, "Customer.CustName"),
       test::Col(db_, "Customer.CustName")});
  EXPECT_NE(sql.find("AS A"), std::string::npos);
  EXPECT_NE(sql.find("AS B"), std::string::npos);
}

TEST_F(SqlRenderTest, EmptyLabelFallsBackToDefault) {
  JoinTree tree = JoinTree::Single(db_.RelationIdByName("Customer"));
  std::string sql = RenderProjectJoinSql(
      db_, graph_, tree, {test::Col(db_, "Customer.CustName")}, {""});
  EXPECT_NE(sql.find("AS A"), std::string::npos);
}

TEST_F(SqlRenderTest, SingleRelationHasNoWhere) {
  JoinTree tree = JoinTree::Single(db_.RelationIdByName("App"));
  std::string sql = RenderProjectJoinSql(db_, graph_, tree,
                                         {test::Col(db_, "App.AppName")});
  EXPECT_EQ(sql.find("WHERE"), std::string::npos);
}

TEST_F(SqlRenderTest, VerificationSqlMatchesPaperSection41) {
  // The paper's §4.1 example: CQ1 verified for row 2 (Mary, iPad).
  JoinTree cq1 =
      test::Tree(db_, graph_, {"Sales", "Customer", "Device", "App"});
  std::string sql = RenderVerificationSql(
      db_, graph_, cq1,
      {{test::Col(db_, "Customer.CustName"), Tokenize("Mary"), false},
       {test::Col(db_, "Device.DevName"), Tokenize("iPad"), false}});
  EXPECT_NE(sql.find("SELECT TOP 1 *"), std::string::npos);
  EXPECT_NE(sql.find("Sales.CustId = Customer.CustId"), std::string::npos);
  EXPECT_NE(sql.find("Sales.DevId = Device.DevId"), std::string::npos);
  EXPECT_NE(sql.find("Sales.AppId = App.AppId"), std::string::npos);
  EXPECT_NE(sql.find("CONTAINS(Customer.CustName, 'mary')"),
            std::string::npos);
  EXPECT_NE(sql.find("CONTAINS(Device.DevName, 'ipad')"), std::string::npos);
}

TEST_F(SqlRenderTest, ExactPredicateRendersAsEquals) {
  JoinTree tree = JoinTree::Single(db_.RelationIdByName("App"));
  std::string sql = RenderVerificationSql(
      db_, graph_, tree,
      {{test::Col(db_, "App.AppName"), Tokenize("Dropbox"), true}});
  EXPECT_NE(sql.find("EQUALS(App.AppName, 'dropbox')"), std::string::npos);
}

TEST_F(SqlRenderTest, MultiTokenPhraseJoined) {
  JoinTree tree = JoinTree::Single(db_.RelationIdByName("ESR"));
  std::string sql = RenderVerificationSql(
      db_, graph_, tree,
      {{test::Col(db_, "ESR.Desc"), Tokenize("Office crash"), false}});
  EXPECT_NE(sql.find("'office crash'"), std::string::npos);
}

}  // namespace
}  // namespace qbe
