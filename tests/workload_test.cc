#include "service/workload.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace qbe {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = testing::TempDir() + "/workload_" + name + ".txt";
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

TEST(ParseRequestLineTest, ParsesRowsAndPadsNarrowOnes) {
  std::optional<ExampleTable> et =
      ParseRequestLine("Mike|ThinkPad|Office;Mary|iPad|;Bob||Dropbox");
  ASSERT_TRUE(et.has_value());
  EXPECT_EQ(et->num_rows(), 3);
  EXPECT_EQ(et->num_columns(), 3);
  EXPECT_EQ(et->cell(0, 0).text, "Mike");
  EXPECT_EQ(et->cell(1, 2).text, "");  // trailing '|' = unconstrained
  EXPECT_EQ(et->cell(2, 1).text, "");
  EXPECT_EQ(et->cell(2, 2).text, "Dropbox");

  // A row shorter than the first is padded, same as a trailing '|'.
  et = ParseRequestLine("Mike|ThinkPad|Office;Mary");
  ASSERT_TRUE(et.has_value());
  EXPECT_EQ(et->num_columns(), 3);
  EXPECT_EQ(et->cell(1, 0).text, "Mary");
  EXPECT_EQ(et->cell(1, 1).text, "");
}

TEST(ParseRequestLineTest, RejectsWideRowNamingIt) {
  std::string error;
  std::optional<ExampleTable> et =
      ParseRequestLine("Mike|ThinkPad;Mary|iPad|Office", &error);
  EXPECT_FALSE(et.has_value());
  EXPECT_NE(error.find("row 2"), std::string::npos) << error;
  EXPECT_NE(error.find("3 cells"), std::string::npos) << error;
}

TEST(ParseRequestLineTest, RejectsAllEmptyCells) {
  std::string error;
  EXPECT_FALSE(ParseRequestLine("||;||", &error).has_value());
  EXPECT_EQ(error, "no non-empty cells");
  EXPECT_FALSE(ParseRequestLine("", &error).has_value());
}

TEST(LoadRequestFileTest, LoadsSkippingCommentsAndBlanks) {
  std::string path = WriteTemp("good",
                               "# workload\n"
                               "\n"
                               "Mike|ThinkPad|Office\n"
                               "Mary|iPad\n");
  std::vector<ExampleTable> requests;
  std::string error;
  ASSERT_TRUE(LoadRequestFile(path, &requests, &error)) << error;
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].num_columns(), 3);
  EXPECT_EQ(requests[1].num_columns(), 2);
}

TEST(LoadRequestFileTest, ErrorNamesLineNumberAndContent) {
  std::string path = WriteTemp("bad",
                               "# comment line\n"
                               "Mike|ThinkPad\n"
                               "\n"
                               "|||\n"
                               "Mary|iPad\n");
  std::vector<ExampleTable> requests;
  std::string error;
  EXPECT_FALSE(LoadRequestFile(path, &requests, &error));
  // The bad line is line 4 of the file (1-based, comments/blanks counted).
  EXPECT_NE(error.find(":4:"), std::string::npos) << error;
  EXPECT_NE(error.find("\"|||\""), std::string::npos) << error;
  EXPECT_NE(error.find(path), std::string::npos) << error;
}

TEST(LoadRequestFileTest, MissingFileIsAnError) {
  std::vector<ExampleTable> requests;
  std::string error;
  EXPECT_FALSE(LoadRequestFile(testing::TempDir() + "/does_not_exist.txt",
                               &requests, &error));
  EXPECT_NE(error.find("does_not_exist"), std::string::npos);
}

}  // namespace
}  // namespace qbe
