// Reproduces Figure 15: case-by-case behaviour over 250 default-parameter
// ETs on IMDB — (a) the number of verifications and (b) execution time per
// individual case. The paper's point is worst-case robustness: FILTER's
// per-case counts stay bounded while VERIFYALL/SIMPLEPRUNE blow up on bad
// cases. We print the per-case distribution (percentiles), the counts of
// cases above thresholds, and the worst cases.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table_printer.h"

namespace {

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  if (values.empty()) return 0;
  size_t index = static_cast<size_t>(p * (values.size() - 1));
  return values[index];
}

int CountAbove(const std::vector<double>& values, double threshold) {
  int n = 0;
  for (double v : values) n += v > threshold;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/250,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  qbe::EtParams params;  // Table 3 defaults
  std::vector<qbe::ExampleTable> ets =
      bundle.ets->SampleMany(params, args.ets_per_point, args.seed);
  qbe::ExperimentPoint point = qbe::RunPoint(
      bundle, ets,
      {qbe::AlgoKind::kVerifyAll, qbe::AlgoKind::kSimplePrune,
       qbe::AlgoKind::kFilter},
      4, args.seed);

  std::printf("Figure 15: case-by-case performance over %d default ETs\n",
              args.ets_per_point);
  std::printf("(a) #verifications distribution\n");
  qbe::TablePrinter verif({"algo", "p50", "p90", "p99", "max",
                           "cases > p90(VerifyAll)"});
  double threshold = Percentile(point.algos[0].per_case_verifications, 0.9);
  for (const qbe::AlgoAggregate& agg : point.algos) {
    verif.AddRow(
        {agg.name, qbe::FormatDouble(Percentile(agg.per_case_verifications, 0.5), 0),
         qbe::FormatDouble(Percentile(agg.per_case_verifications, 0.9), 0),
         qbe::FormatDouble(Percentile(agg.per_case_verifications, 0.99), 0),
         qbe::FormatDouble(agg.max_verifications, 0),
         std::to_string(CountAbove(agg.per_case_verifications, threshold))});
  }
  verif.Print(std::cout);

  std::printf("(b) execution time distribution (ms)\n");
  qbe::TablePrinter times({"algo", "p50", "p90", "p99", "max"});
  for (const qbe::AlgoAggregate& agg : point.algos) {
    times.AddRow({agg.name,
                  qbe::FormatDouble(Percentile(agg.per_case_millis, 0.5), 2),
                  qbe::FormatDouble(Percentile(agg.per_case_millis, 0.9), 2),
                  qbe::FormatDouble(Percentile(agg.per_case_millis, 0.99), 2),
                  qbe::FormatDouble(agg.max_millis, 2)});
  }
  times.Print(std::cout);

  // The worst five cases for VERIFYALL, with FILTER's cost on the same case.
  std::printf("\nworst VerifyAll cases (per-case verifications):\n");
  std::vector<size_t> order(ets.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return point.algos[0].per_case_verifications[a] >
           point.algos[0].per_case_verifications[b];
  });
  for (size_t i = 0; i < std::min<size_t>(5, order.size()); ++i) {
    size_t c = order[i];
    std::printf("  case %3zu: VerifyAll=%5.0f  SimplePrune=%5.0f  "
                "Filter=%5.0f\n",
                c, point.algos[0].per_case_verifications[c],
                point.algos[1].per_case_verifications[c],
                point.algos[2].per_case_verifications[c]);
  }
  return 0;
}
