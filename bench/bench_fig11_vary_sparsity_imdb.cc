// Reproduces Figure 11: varying ET sparsity (s ∈ {0, .2, .3, .5, .7}) on
// IMDB. Expected shape: VERIFYALL degrades sharply with s (looser column
// constraints admit many more candidates) while FILTER stays robust.

#include "harness/experiment.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  std::vector<qbe::AlgoKind> algos = {qbe::AlgoKind::kVerifyAll,
                                      qbe::AlgoKind::kSimplePrune,
                                      qbe::AlgoKind::kFilter};
  std::vector<std::string> labels;
  std::vector<qbe::ExperimentPoint> points;
  int i = 0;
  for (double s : {0.0, 0.2, 0.3, 0.5, 0.7}) {
    qbe::EtParams params;
    params.s = s;
    std::vector<qbe::ExampleTable> ets =
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + ++i);
    points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
    labels.push_back(qbe::FormatDouble(s, 1));
  }
  qbe::PrintSweep("Figure 11: vary sparsity (IMDB)", "s", labels, points);
  return 0;
}
