// Reproduces Figure 16: the memory consumed by WEAVE's in-memory tuple
// trees across individual cases. The paper reports multi-GB footprints on
// its 10/90 GB databases (44 of 100 cases did not even finish in 10
// minutes); on our in-memory substitute the absolute scale is smaller but
// the shape — a heavy-tailed per-case distribution with some cases holding
// orders of magnitude more tuple trees than the median — is what matters.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/100,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  qbe::EtParams params;  // Table 3 defaults
  std::vector<qbe::ExampleTable> ets =
      bundle.ets->SampleMany(params, args.ets_per_point, args.seed);
  qbe::ExperimentPoint point = qbe::RunPoint(
      bundle, ets, {qbe::AlgoKind::kWeaveTuple, qbe::AlgoKind::kFilter}, 4,
      args.seed);

  std::vector<double> bytes = point.algos[0].per_case_peak_bytes;
  std::sort(bytes.begin(), bytes.end());
  std::printf("Figure 16: WEAVE in-memory tuple-tree size across %zu cases\n",
              bytes.size());
  qbe::TablePrinter table({"percentile", "tuple-tree memory"});
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    size_t index = std::min(bytes.size() - 1,
                            static_cast<size_t>(p * bytes.size()));
    table.AddRow({qbe::FormatDouble(100 * p, 0) + "%",
                  qbe::FormatBytes(bytes[index])});
  }
  table.Print(std::cout);
  std::printf("mean peak = %s; FILTER holds no tuple trees at all (its "
              "state is the filter bookkeeping).\n",
              qbe::FormatBytes(point.algos[0].avg_peak_bytes).c_str());
  return 0;
}
