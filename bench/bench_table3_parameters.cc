// Reproduces Table 3 ("Parameter ranges and default values"): the example
// table generation parameters used throughout §6, with the paper's
// underlined defaults. Also validates that the ET generator honours each
// default by sampling and reporting the observed statistics.

#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  std::printf("Table 3: parameter ranges and default values\n");
  qbe::TablePrinter table({"parameter", "description", "range", "default"});
  table.AddRow({"m", "row number", "2,3,4,5,6", "3"});
  table.AddRow({"n", "column number", "2,3,4,5,6", "3"});
  table.AddRow({"s", "sparsity", "0,0.2,0.3,0.5,0.7", "0.3"});
  table.AddRow({"v", "cell value length", "1,2,3", "2"});
  table.AddRow({"l", "maximal join length", "3,4,5", "4"});
  table.Print(std::cout);

  qbe::Bundle imdb =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  qbe::EtParams defaults;
  std::vector<qbe::ExampleTable> ets =
      imdb.ets->SampleMany(defaults, args.ets_per_point, args.seed);
  double sparsity = 0;
  for (const qbe::ExampleTable& et : ets) sparsity += et.Sparsity();
  std::printf(
      "\nsampled %zu default ETs from %d matrices: m=%d n=%d "
      "avg sparsity=%.3f (target %.3f with floor rounding)\n",
      ets.size(), imdb.ets->num_matrices(), ets[0].num_rows(),
      ets[0].num_columns(), sparsity / ets.size(), defaults.s);
  return 0;
}
