// Reproduces Figure 9: varying the number of ET rows (m = 2..6) on IMDB —
// (a) number of verifications and (b) execution time for VERIFYALL,
// SIMPLEPRUNE and FILTER. Expected shape: FILTER needs the fewest
// verifications and is robust to m; VERIFYALL degrades for small m (more
// candidates); SIMPLEPRUNE is U-shaped. The parallel-engine columns
// (VerifyAll(8t), Filter(8t); panel (d) threads / memo hit rate) chart the
// batched engine of DESIGN.md §9 against the serial baselines.

#include "harness/experiment.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  std::vector<qbe::AlgoKind> algos = {qbe::AlgoKind::kVerifyAll,
                                      qbe::AlgoKind::kSimplePrune,
                                      qbe::AlgoKind::kFilter,
                                      qbe::AlgoKind::kVerifyAllPar,
                                      qbe::AlgoKind::kFilterPar};
  std::vector<std::string> labels;
  std::vector<qbe::ExperimentPoint> points;
  for (int m = 2; m <= 6; ++m) {
    qbe::EtParams params;
    params.m = m;
    std::vector<qbe::ExampleTable> ets =
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + m);
    points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
    labels.push_back(std::to_string(m));
  }
  qbe::PrintSweep("Figure 9: vary the number of rows (IMDB)", "m", labels,
                  points);
  if (!args.json_path.empty()) {
    qbe::WriteSweepJson(args.json_path,
                        "Figure 9: vary the number of rows (IMDB)", "m",
                        labels, points);
  }
  return 0;
}
