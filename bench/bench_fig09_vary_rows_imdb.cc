// Reproduces Figure 9: varying the number of ET rows (m = 2..6) on IMDB —
// (a) number of verifications and (b) execution time for VERIFYALL,
// SIMPLEPRUNE and FILTER. Expected shape: FILTER needs the fewest
// verifications and is robust to m; VERIFYALL degrades for small m (more
// candidates); SIMPLEPRUNE is U-shaped. The parallel-engine columns
// (VerifyAll(8t), Filter(8t); panel (d) threads / memo hit rate) chart the
// batched engine of DESIGN.md §9 against the serial baselines.
//
// --kernel-ab=PATH switches to the SIMD kernel A/B mode (DESIGN.md §14):
// the same m = 2..6 sweep runs once per supported dispatch level (scalar,
// SSE4.2, AVX2 — forced in-process, the QBE_KERNEL equivalents), asserting
// that verification counts are bit-identical across levels, plus timed
// micro-kernels for the dense sorted intersection, the phrase shifted-span
// merge and the semijoin bitmap AND+emit. Per-level wall times and
// widest-vs-scalar speedups are written as JSON to PATH (the CI bench leg
// archives it as results/BENCH_PR8.json).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "kernels/kernels.h"
#include "util/check.h"

namespace qbe {
namespace {

std::vector<KernelLevel> SupportedLevels() {
  std::vector<KernelLevel> levels;
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kSse, KernelLevel::kAvx2}) {
    if (KernelLevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

std::vector<uint32_t> SortedUnique32(uint64_t seed, size_t n,
                                     uint32_t universe) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> dist(0, universe);
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = dist(rng);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Best-of-`reps` nanoseconds per call of `body` (min over reps tames
/// scheduler noise on shared runners; each rep times `iters` calls).
template <typename Body>
double BestNsPerCall(int reps, int iters, Body&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body();
    auto end = std::chrono::steady_clock::now();
    double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count() /
        static_cast<double>(iters);
    best = std::min(best, ns);
  }
  return best;
}

/// ns/call of the three micro-kernels at the currently forced level.
struct MicroTimes {
  double dense_intersect_ns = 0;
  double phrase_shift_ns = 0;
  double bitmap_ns = 0;
};

MicroTimes RunMicro() {
  MicroTimes t;
  const KernelOps& ops = ActiveKernelOps();
  // Dense u32 intersection: 4k x 4k, ~25% overlap — the CSR posting /
  // semijoin row-set shape the dense merge kernel exists for. Times the
  // raw kernel into a preallocated buffer; wrapper/resize overhead is
  // level-independent and shows up in the fig09 end-to-end numbers.
  std::vector<uint32_t> a = SortedUnique32(1, 4096, 16384);
  std::vector<uint32_t> b = SortedUnique32(2, 4096, 16384);
  std::vector<uint32_t> out(std::min(a.size(), b.size()) + kIntersectPad32);
  size_t sink = 0;
  t.dense_intersect_ns = BestNsPerCall(9, 400, [&] {
    sink += ops.intersect_u32(a.data(), a.size(), b.data(), b.size(),
                              out.data());
  });
  QBE_CHECK(sink != 0);  // keep the kernel calls observable
  // Phrase shifted-span merge: 2k candidates against a 4k span (dense
  // side of the gallop threshold), packed row<<32|pos like the CSR index.
  std::vector<uint64_t> cand, span;
  for (uint32_t v : SortedUnique32(3, 2048, 1u << 16)) {
    cand.push_back((uint64_t{v >> 4} << 32) | (v & 15));
  }
  for (uint32_t v : SortedUnique32(4, 4096, 1u << 16)) {
    span.push_back((uint64_t{v >> 4} << 32) | (v & 15));
  }
  std::sort(cand.begin(), cand.end());
  std::sort(span.begin(), span.end());
  std::vector<uint64_t> out64(cand.size() + kIntersectPad64);
  t.phrase_shift_ns = BestNsPerCall(9, 400, [&] {
    sink += ops.intersect_shifted_u64(cand.data(), cand.size(), span.data(),
                                      span.size(), 1, out64.data());
  });
  // Semijoin bitmap: set-batch + AND + emit over 64k rows, ~12% dense.
  std::vector<uint32_t> rows = SortedUnique32(5, 8192, 65535);
  std::vector<uint32_t> mask_rows = SortedUnique32(6, 8192, 65535);
  std::vector<uint64_t> bits, mask;
  kernels::BitmapClear(&mask, 65536);
  kernels::BitmapSetBatch(&mask, mask_rows);
  std::vector<uint32_t> emitted;
  t.bitmap_ns = BestNsPerCall(7, 200, [&] {
    kernels::BitmapClear(&bits, 65536);
    kernels::BitmapSetBatch(&bits, rows);
    kernels::BitmapAnd(&bits, mask);
    kernels::BitmapEmitInto(bits, &emitted);
  });
  return t;
}

int RunKernelAb(const BenchArgs& args) {
  std::vector<KernelLevel> levels = SupportedLevels();
  const KernelLevel widest = levels.back();
  const KernelLevel prev = ActiveKernelLevel();

  Bundle bundle = MakeBundle(DatasetKind::kImdb, args.scale, args.seed);
  std::vector<AlgoKind> algos = {AlgoKind::kVerifyAll, AlgoKind::kFilter};

  // Sample every instance once so all levels verify the same work.
  std::vector<std::vector<ExampleTable>> et_batches;
  std::vector<std::string> labels;
  for (int m = 2; m <= 6; ++m) {
    EtParams params;
    params.m = m;
    et_batches.push_back(
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + m));
    labels.push_back(std::to_string(m));
  }

  // Per-level: the full m-sweep, total wall millis, and the per-(point,
  // algo) verification counts for the cross-level identity check.
  std::vector<MicroTimes> micro(levels.size());
  std::vector<double> total_millis(levels.size(), 0.0);
  std::vector<std::vector<double>> verif_counts(levels.size());
  for (size_t li = 0; li < levels.size(); ++li) {
    ForceKernelLevel(levels[li]);
    micro[li] = RunMicro();
    std::vector<ExperimentPoint> points;
    for (size_t p = 0; p < et_batches.size(); ++p) {
      points.push_back(
          RunPoint(bundle, et_batches[p], algos, 4, args.seed));
    }
    for (const ExperimentPoint& point : points) {
      for (const AlgoAggregate& agg : point.algos) {
        total_millis[li] += agg.avg_millis;
        verif_counts[li].push_back(agg.avg_verifications);
      }
    }
    std::printf("level %-6s  fig09 total %8.2f ms  "
                "dense-intersect %7.1f ns  phrase %7.1f ns  bitmap %8.1f ns\n",
                KernelLevelName(levels[li]), total_millis[li],
                micro[li].dense_intersect_ns, micro[li].phrase_shift_ns,
                micro[li].bitmap_ns);
  }
  ForceKernelLevel(prev);

  // The layer's contract: the dispatch level can never change how many
  // verifications any algorithm performs on any instance.
  for (size_t li = 1; li < levels.size(); ++li) {
    QBE_CHECK_MSG(verif_counts[li] == verif_counts[0],
                  "verification counts differ across kernel levels");
  }

  const size_t wi = levels.size() - 1;
  std::FILE* f = std::fopen(args.kernel_ab_path.c_str(), "w");
  QBE_CHECK_MSG(f != nullptr, "cannot open --kernel-ab output path");
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernel_ab\",\n");
  std::fprintf(f, "  \"dataset\": \"imdb\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", args.scale);
  std::fprintf(f, "  \"ets_per_point\": %d,\n", args.ets_per_point);
  std::fprintf(f, "  \"widest_level\": \"%s\",\n", KernelLevelName(widest));
  std::fprintf(f, "  \"verification_counts_identical\": true,\n");
  std::fprintf(f, "  \"micro\": {\n");
  for (size_t li = 0; li < levels.size(); ++li) {
    const char* name = KernelLevelName(levels[li]);
    std::fprintf(f, "    \"dense_intersect_ns_%s\": %.1f,\n", name,
                 micro[li].dense_intersect_ns);
    std::fprintf(f, "    \"phrase_shift_ns_%s\": %.1f,\n", name,
                 micro[li].phrase_shift_ns);
    std::fprintf(f, "    \"bitmap_ns_%s\": %.1f,\n", name,
                 micro[li].bitmap_ns);
  }
  std::fprintf(f, "    \"dense_intersect_speedup\": %.3f,\n",
               micro[0].dense_intersect_ns / micro[wi].dense_intersect_ns);
  std::fprintf(f, "    \"phrase_shift_speedup\": %.3f,\n",
               micro[0].phrase_shift_ns / micro[wi].phrase_shift_ns);
  std::fprintf(f, "    \"bitmap_speedup\": %.3f\n",
               micro[0].bitmap_ns / micro[wi].bitmap_ns);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fig09\": {\n");
  for (size_t li = 0; li < levels.size(); ++li) {
    std::fprintf(f, "    \"total_millis_%s\": %.3f,\n",
                 KernelLevelName(levels[li]), total_millis[li]);
  }
  std::fprintf(f, "    \"speedup\": %.3f\n",
               total_millis[0] / total_millis[wi]);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("kernel A/B: %s is %.2fx scalar on dense intersect, "
              "%.2fx end-to-end (fig09); wrote %s\n",
              KernelLevelName(widest),
              micro[0].dense_intersect_ns / micro[wi].dense_intersect_ns,
              total_millis[0] / total_millis[wi],
              args.kernel_ab_path.c_str());
  return 0;
}

}  // namespace
}  // namespace qbe

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  if (!args.kernel_ab_path.empty()) return qbe::RunKernelAb(args);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  std::vector<qbe::AlgoKind> algos = {qbe::AlgoKind::kVerifyAll,
                                      qbe::AlgoKind::kSimplePrune,
                                      qbe::AlgoKind::kFilter,
                                      qbe::AlgoKind::kVerifyAllPar,
                                      qbe::AlgoKind::kFilterPar};
  std::vector<std::string> labels;
  std::vector<qbe::ExperimentPoint> points;
  for (int m = 2; m <= 6; ++m) {
    qbe::EtParams params;
    params.m = m;
    std::vector<qbe::ExampleTable> ets =
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + m);
    points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
    labels.push_back(std::to_string(m));
  }
  qbe::PrintSweep("Figure 9: vary the number of rows (IMDB)", "m", labels,
                  points);
  if (!args.json_path.empty()) {
    qbe::WriteSweepJson(args.json_path,
                        "Figure 9: vary the number of rows (IMDB)", "m",
                        labels, points);
  }
  return 0;
}
