// Reproduces Table 4: WEAVE vs FILTER at sparsities s ∈ {0, 0.2, 0.5} —
// average number of verifications ("Avg. query#" in the paper), average
// estimated cost (sum of join-tree sizes) and average execution time. The
// paper reports FILTER ~10× fewer verifications and ~4× faster; the
// comparison uses the fair join-tree WEAVE with column constraints pushed
// down (§6.3).

#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/100,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  std::printf("Table 4: comparison between WEAVE and FILTER\n");
  int i = 0;
  for (double s : {0.0, 0.2, 0.5}) {
    qbe::EtParams params;
    params.s = s;
    std::vector<qbe::ExampleTable> ets =
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + ++i);
    qbe::ExperimentPoint point = qbe::RunPoint(
        bundle, ets, {qbe::AlgoKind::kWeave, qbe::AlgoKind::kFilter}, 4,
        args.seed);
    qbe::TablePrinter table(
        {"s = " + qbe::FormatDouble(s, 1), "Avg. query#", "Avg. cost",
         "Avg. time(ms)"});
    for (const qbe::AlgoAggregate& agg : point.algos) {
      table.AddRow({agg.name, qbe::FormatDouble(agg.avg_verifications, 1),
                    qbe::FormatDouble(agg.avg_cost, 1),
                    qbe::FormatDouble(agg.avg_millis, 2)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
