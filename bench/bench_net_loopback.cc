// Networked-serving overhead bench (DESIGN.md §16): the same sequential ET
// workload replayed (a) directly against a DiscoveryService and (b) through
// the full wire path — NetClient → loopback TCP → epoll NetServer → the
// service — on fresh, identically-configured services. Sequential replay
// keeps the shared eval cache's history identical on both sides, so every
// networked response is QBE_CHECKed bit-identical (SQL, scores, matched
// rows, verification counters) to its in-process twin; the table is then
// pure wire overhead: framing + checksum + two loopback hops per request.
// A pipelined pass (depth 4) shows how much of that per-request overhead
// keep-alive pipelining hides.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/check.h"

#include "datagen/et_gen.h"
#include "datagen/imdb_like.h"
#include "exec/executor.h"
#include "harness/experiment.h"
#include "harness/table_printer.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "schema/schema_graph.h"
#include "service/discovery_service.h"
#include "storage/database.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace qbe {
namespace {

constexpr int kRepeat = 8;
constexpr int kPipelineDepth = 4;

/// The deterministic projection of a response — everything except wall
/// times. The direct and networked replays must agree on every field.
struct ResultKey {
  std::string status;
  std::vector<std::string> sql;
  std::vector<double> scores;
  std::vector<uint32_t> matched;
  uint64_t num_candidates = 0;
  int64_t verifications = 0;

  bool operator==(const ResultKey& other) const {
    return status == other.status && sql == other.sql &&
           scores == other.scores && matched == other.matched &&
           num_candidates == other.num_candidates &&
           verifications == other.verifications;
  }
};

ResultKey KeyOf(const ServiceResponse& response) {
  ResultKey key;
  key.status = ToString(response.status);
  for (const DiscoveredQuery& q : response.result.queries) {
    key.sql.push_back(q.sql);
    key.scores.push_back(q.score);
    key.matched.push_back(static_cast<uint32_t>(q.matched_rows));
  }
  key.num_candidates = response.result.num_candidates;
  key.verifications = response.result.counters.verifications;
  return key;
}

ResultKey KeyOf(const WireResponse& response) {
  ResultKey key;
  key.status = response.status;
  for (const WireQuery& q : response.queries) {
    key.sql.push_back(q.sql);
    key.scores.push_back(q.score);
    key.matched.push_back(q.matched_rows);
  }
  key.num_candidates = response.num_candidates;
  key.verifications = response.verifications;
  return key;
}

ServiceOptions BenchServiceOptions() {
  ServiceOptions options;
  options.num_workers = 2;
  return options;
}

struct LatencySummary {
  double seconds = 0;  // total wall
  double p50 = 0;
  double p99 = 0;
  double mean = 0;
};

LatencySummary Summarize(std::vector<double> latencies, double wall) {
  LatencySummary s;
  s.seconds = wall;
  if (latencies.empty()) return s;
  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double q) {
    size_t idx = static_cast<size_t>(q * (latencies.size() - 1));
    return latencies[idx];
  };
  s.p50 = quantile(0.5);
  s.p99 = quantile(0.99);
  double sum = 0;
  for (double v : latencies) sum += v;
  s.mean = sum / static_cast<double>(latencies.size());
  return s;
}

void Run(const BenchArgs& args) {
  ImdbConfig config;
  config.scale = args.scale;
  config.seed = args.seed;
  std::vector<ExampleTable> workload;
  {
    Database db = MakeImdbLikeDatabase(config);
    SchemaGraph graph(db);
    Executor exec(db, graph);
    EtSource source(db, graph, exec, args.seed);
    EtParams params;  // Table 3 defaults
    workload = source.SampleMany(params, args.ets_per_point, args.seed);
  }
  std::printf(
      "Networked serving overhead: %zu ETs x%d sequential over the "
      "IMDB-like dataset (scale %.2f), in-process vs loopback wire\n",
      workload.size(), kRepeat, args.scale);

  // Pass 1: direct. Per-request latencies plus the per-call ResultKey that
  // the networked pass must reproduce bit-for-bit.
  std::vector<ResultKey> expected;
  std::vector<double> direct_latencies;
  double direct_wall = 0;
  {
    DiscoveryService direct(MakeImdbLikeDatabase(config),
                            BenchServiceOptions());
    Stopwatch wall;
    for (int r = 0; r < kRepeat; ++r) {
      for (const ExampleTable& et : workload) {
        Stopwatch sw;
        ServiceResponse response = direct.Discover(et);
        direct_latencies.push_back(sw.ElapsedSeconds());
        expected.push_back(KeyOf(response));
      }
    }
    direct_wall = wall.ElapsedSeconds();
  }

  // Pass 2: networked, one request at a time (call/response). Same request
  // order on a fresh service, so cache history — and with it verification
  // counts — must match exactly.
  std::vector<double> net_latencies;
  double net_wall = 0;
  {
    DiscoveryService served(MakeImdbLikeDatabase(config),
                            BenchServiceOptions());
    NetServer server(&served);
    QBE_CHECK_MSG(server.ok(), "net server failed to start");
    NetClient client("127.0.0.1", server.port());
    QBE_CHECK_MSG(client.ok(), "net client failed to connect");
    Stopwatch wall;
    size_t op = 0;
    for (int r = 0; r < kRepeat; ++r) {
      for (const ExampleTable& et : workload) {
        WireRequest request = WireRequest::FromExampleTable(et, /*id=*/op + 1);
        ClientReply reply;
        Stopwatch sw;
        QBE_CHECK_MSG(client.Call(request, &reply), "wire call failed");
        net_latencies.push_back(sw.ElapsedSeconds());
        QBE_CHECK_MSG(!reply.is_error, "wire call returned a typed error");
        QBE_CHECK_MSG(KeyOf(reply.response) == expected[op],
                      "networked response differs from in-process response");
        ++op;
      }
    }
    net_wall = wall.ElapsedSeconds();
    server.Stop();
  }

  // Pass 3: networked with keep-alive pipelining (depth 4) on one
  // connection — amortizes the round trip; latencies here are
  // send-to-receive and overlap, so only throughput is comparable.
  double pipelined_wall = 0;
  size_t pipelined_ops = 0;
  {
    DiscoveryService served(MakeImdbLikeDatabase(config),
                            BenchServiceOptions());
    NetServer server(&served);
    QBE_CHECK_MSG(server.ok(), "net server failed to start");
    NetClient client("127.0.0.1", server.port());
    QBE_CHECK_MSG(client.ok(), "net client failed to connect");
    Stopwatch wall;
    size_t sent = 0;
    size_t received = 0;
    const size_t total = workload.size() * kRepeat;
    while (received < total) {
      while (sent < total &&
             sent - received < static_cast<size_t>(kPipelineDepth)) {
        WireRequest request = WireRequest::FromExampleTable(
            workload[sent % workload.size()], /*id=*/sent + 1);
        QBE_CHECK_MSG(client.Send(request), "pipelined send failed");
        ++sent;
      }
      ClientReply reply;
      QBE_CHECK_MSG(client.Receive(&reply), "pipelined receive failed");
      QBE_CHECK_MSG(!reply.is_error, "pipelined call returned an error");
      ++received;
    }
    pipelined_wall = wall.ElapsedSeconds();
    pipelined_ops = total;
    server.Stop();
  }

  LatencySummary direct = Summarize(std::move(direct_latencies), direct_wall);
  LatencySummary net = Summarize(std::move(net_latencies), net_wall);
  const double total_ops =
      static_cast<double>(workload.size()) * kRepeat;

  TablePrinter table({"mode", "wall(s)", "req/s", "p50(s)", "p99(s)",
                      "mean(s)", "p50 vs direct"});
  table.AddRow({"in-process", FormatDouble(direct.seconds, 3),
                FormatDouble(total_ops / direct.seconds, 1),
                FormatDouble(direct.p50, 6), FormatDouble(direct.p99, 6),
                FormatDouble(direct.mean, 6), "1.000x"});
  table.AddRow(
      {"wire call/response", FormatDouble(net.seconds, 3),
       FormatDouble(total_ops / net.seconds, 1), FormatDouble(net.p50, 6),
       FormatDouble(net.p99, 6), FormatDouble(net.mean, 6),
       direct.p50 > 0 ? FormatDouble(net.p50 / direct.p50, 3) + "x" : "n/a"});
  table.AddRow({"wire pipelined x" + std::to_string(kPipelineDepth),
                FormatDouble(pipelined_wall, 3),
                FormatDouble(static_cast<double>(pipelined_ops) /
                                 pipelined_wall,
                             1),
                "n/a", "n/a", "n/a", "n/a"});
  table.Print(std::cout);
  std::printf("(all %zu networked responses checked bit-identical to their "
              "in-process twins)\n",
              static_cast<size_t>(total_ops));

  if (!args.json_path.empty()) {
    std::ofstream json(args.json_path);
    QBE_CHECK_MSG(static_cast<bool>(json), "cannot open --json path");
    json << "{\n"
         << "  \"bench\": \"net_loopback_overhead\",\n"
         << "  \"scale\": " << args.scale << ",\n"
         << "  \"ets\": " << workload.size() << ",\n"
         << "  \"repeat\": " << kRepeat << ",\n"
         << "  \"bit_identical\": true,\n"
         << "  \"direct_p50_s\": " << direct.p50 << ",\n"
         << "  \"direct_p99_s\": " << direct.p99 << ",\n"
         << "  \"direct_req_per_s\": " << total_ops / direct.seconds << ",\n"
         << "  \"net_p50_s\": " << net.p50 << ",\n"
         << "  \"net_p99_s\": " << net.p99 << ",\n"
         << "  \"net_req_per_s\": " << total_ops / net.seconds << ",\n"
         << "  \"net_overhead_p50_s\": " << net.p50 - direct.p50 << ",\n"
         << "  \"net_over_direct_p50\": "
         << (direct.p50 > 0 ? net.p50 / direct.p50 : 0.0) << ",\n"
         << "  \"pipelined_depth\": " << kPipelineDepth << ",\n"
         << "  \"pipelined_req_per_s\": "
         << static_cast<double>(pipelined_ops) / pipelined_wall << "\n"
         << "}\n";
    std::printf("wrote %s\n", args.json_path.c_str());
  }
}

}  // namespace
}  // namespace qbe

int main(int argc, char** argv) {
  qbe::BenchArgs args =
      qbe::ParseBenchArgs(argc, argv, /*default_ets=*/10,
                          /*default_scale=*/0.2);
  qbe::Run(args);
  return 0;
}
