// Microbenchmarks (google-benchmark) for the substrates behind the query
// discovery system: tokenizer, FTS index build/probe, master column index,
// the semijoin executor, subtree enumeration, candidate generation and
// filter-universe construction. These quantify the paper's claim that
// candidate generation is "a negligible fraction of the overall query
// processing time" relative to verification.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/candidate_gen.h"
#include "core/filter_universe.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "exec/match_cache.h"
#include "kernels/kernels.h"
#include "schema/subtree_enum.h"
#include "text/tokenizer.h"

namespace qbe {
namespace {

const Database& ImdbDb() {
  static const Database& db = *new Database([] {
    ImdbConfig config;
    config.scale = 0.5;
    return MakeImdbLikeDatabase(config);
  }());
  return db;
}

const SchemaGraph& ImdbGraph() {
  static const SchemaGraph& graph = *new SchemaGraph(ImdbDb());
  return graph;
}

ExampleTable NameTitleEt() {
  ExampleTable et({"A", "B"});
  et.AddRow({"mike jones", "the silent"});
  et.AddRow({"mary smith", "the golden"});
  return et;
}

void BM_Tokenize(benchmark::State& state) {
  std::string text = "The Quick Brown Fox, Jumps Over the Lazy Dog 42!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

void BM_InvertedIndexBuild(benchmark::State& state) {
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const TextColumnStore& cells = db.relation(person).TextColumn(1);
  for (auto _ : state) {
    InvertedIndex index;
    index.Build(cells);
    benchmark::DoNotOptimize(index.num_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cells.size()));
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_PhraseMatch(benchmark::State& state) {
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const InvertedIndex& index = db.TextIndex(ColumnRef{person, 1});
  std::vector<std::string> phrase = {"mike", "jones"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.MatchPhrase(phrase));
  }
}
BENCHMARK(BM_PhraseMatch);

void BM_PhraseMatchIds(benchmark::State& state) {
  // The executor hot path: phrase tokens resolved to dictionary ids once
  // per request, probes reuse one output buffer — no per-probe allocation.
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const InvertedIndex& index = db.TextIndex(ColumnRef{person, 1});
  std::vector<uint32_t> ids = db.token_dict().IdsOf({"mike", "jones"});
  std::vector<uint32_t> rows;
  for (auto _ : state) {
    index.MatchPhraseIdsInto(ids, &rows);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_PhraseMatchIds);

void BM_TokenRowCount(benchmark::State& state) {
  // O(1) precomputed distinct-row count, by id and through the string
  // compat wrapper (heterogeneous dictionary lookup, no string built).
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const InvertedIndex& index = db.TextIndex(ColumnRef{person, 1});
  uint32_t id = db.token_dict().Find("mike");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TokenRowCountId(id));
    benchmark::DoNotOptimize(index.TokenRowCount("mike"));
  }
}
BENCHMARK(BM_TokenRowCount);

void BM_ColumnIndexLookup(benchmark::State& state) {
  const Database& db = ImdbDb();
  std::vector<std::string> phrase = {"mike"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.column_index().ColumnsContaining(phrase));
  }
}
BENCHMARK(BM_ColumnIndexLookup);

void BM_ExecutorExists(benchmark::State& state) {
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  Executor exec(db, graph);
  // person <- cast_info -> title with two predicates.
  int person = db.RelationIdByName("person");
  int cast_info = db.RelationIdByName("cast_info");
  int title = db.RelationIdByName("title");
  JoinTree tree = JoinTree::Single(cast_info);
  for (int e : graph.IncidentEdges(cast_info)) {
    int other = graph.OtherEnd(e, cast_info);
    if ((other == person && !tree.verts.Test(person)) ||
        (other == title && !tree.verts.Test(title))) {
      tree = ExtendTree(tree, graph, e);
    }
  }
  std::vector<PhrasePredicate> predicates = {
      {ColumnRef{person, 1}, {"mike"}, false},
      {ColumnRef{title, 1}, {"silent"}, false}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Exists(tree, predicates));
  }
}
BENCHMARK(BM_ExecutorExists);

void BM_ExecutorExistsCached(benchmark::State& state) {
  // Same probe as BM_ExecutorExists but with pre-resolved predicate ids and
  // the per-request match cache, as DiscoverQueries runs it: after the first
  // iteration every SeedNode probe is a shared-lock lookup.
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  Executor exec(db, graph);
  int person = db.RelationIdByName("person");
  int cast_info = db.RelationIdByName("cast_info");
  int title = db.RelationIdByName("title");
  JoinTree tree = JoinTree::Single(cast_info);
  for (int e : graph.IncidentEdges(cast_info)) {
    int other = graph.OtherEnd(e, cast_info);
    if ((other == person && !tree.verts.Test(person)) ||
        (other == title && !tree.verts.Test(title))) {
      tree = ExtendTree(tree, graph, e);
    }
  }
  std::vector<PhrasePredicate> predicates = {
      {ColumnRef{person, 1}, {"mike"}, false},
      {ColumnRef{title, 1}, {"silent"}, false}};
  for (PhrasePredicate& pred : predicates) {
    pred.ids = db.token_dict().IdsOf(pred.tokens);
  }
  MatchCache match_cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec.Exists(tree, predicates, nullptr, &match_cache));
  }
}
BENCHMARK(BM_ExecutorExistsCached);

void BM_SubtreeEnumeration(benchmark::State& state) {
  const SchemaGraph& graph = ImdbGraph();
  int max_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateSubtrees(graph, max_size));
  }
}
BENCHMARK(BM_SubtreeEnumeration)->Arg(3)->Arg(4)->Arg(5);

void BM_CandidateGeneration(benchmark::State& state) {
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  ExampleTable et = NameTitleEt();
  CandidateGenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(db, graph, et, options));
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_FilterUniverseBuild(benchmark::State& state) {
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  ExampleTable et = NameTitleEt();
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db, graph, et, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildFilterUniverse(graph, et, candidates));
  }
  state.counters["candidates"] = static_cast<double>(candidates.size());
}
BENCHMARK(BM_FilterUniverseBuild);

void BM_RetailerDiscoveryEndToEnd(benchmark::State& state) {
  const Database& db = *new Database(MakeRetailerDatabase());
  const SchemaGraph& graph = *new SchemaGraph(db);
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(db, graph, et, options));
  }
}
BENCHMARK(BM_RetailerDiscoveryEndToEnd);

// ---------------------------------------------------------------------------
// SIMD kernel layer A/B (DESIGN.md §14): each kernel registered once per
// dispatch level this CPU supports, named BM_Kernel*<level>, so one
// google-benchmark run carries the scalar-vs-SSE-vs-AVX2 comparison.
// Levels are forced in-process (the QBE_KERNEL equivalents); every
// benchmark restores the previous level on exit.

std::vector<uint32_t> SortedUnique32(uint64_t seed, size_t n,
                                     uint32_t universe) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> dist(0, universe);
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = dist(rng);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

class ScopedLevel {
 public:
  explicit ScopedLevel(KernelLevel level) : prev_(ActiveKernelLevel()) {
    ForceKernelLevel(level);
  }
  ~ScopedLevel() { ForceKernelLevel(prev_); }

 private:
  KernelLevel prev_;
};

void BM_KernelIntersectDense(benchmark::State& state, KernelLevel level) {
  ScopedLevel scoped(level);
  // 4k x 4k, ~25% overlap: the dense CSR-posting / row-set shape. Raw
  // kernel into a preallocated buffer — wrapper overhead is identical
  // across levels and benched separately via BM_KernelIntersectWrapped.
  std::vector<uint32_t> a = SortedUnique32(1, 4096, 16384);
  std::vector<uint32_t> b = SortedUnique32(2, 4096, 16384);
  std::vector<uint32_t> out(std::min(a.size(), b.size()) + kIntersectPad32);
  const KernelOps& ops = ActiveKernelOps();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.intersect_u32(a.data(), a.size(), b.data(),
                                               b.size(), out.data()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}

void BM_KernelIntersectWrapped(benchmark::State& state, KernelLevel level) {
  ScopedLevel scoped(level);
  // Same shape through the product-facing wrapper (gallop check + resize).
  std::vector<uint32_t> a = SortedUnique32(1, 4096, 16384);
  std::vector<uint32_t> b = SortedUnique32(2, 4096, 16384);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    kernels::IntersectSortedInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}

void BM_KernelIntersectSkewed(benchmark::State& state, KernelLevel level) {
  ScopedLevel scoped(level);
  // 64 x 16k: past the 16x threshold, so this times the gallop path (same
  // at every level — the A/B shows the hybrid never regresses skew).
  std::vector<uint32_t> small = SortedUnique32(3, 64, 1u << 20);
  std::vector<uint32_t> large = SortedUnique32(4, 16384, 1u << 20);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    kernels::IntersectSortedInto(small, large, &out);
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_KernelPhraseShift(benchmark::State& state, KernelLevel level) {
  ScopedLevel scoped(level);
  // Dense shifted-span merge, packed row<<32|pos as in the CSR index.
  std::vector<uint64_t> cand, span;
  for (uint32_t v : SortedUnique32(5, 2048, 1u << 16)) {
    cand.push_back((uint64_t{v >> 4} << 32) | (v & 15));
  }
  for (uint32_t v : SortedUnique32(6, 4096, 1u << 16)) {
    span.push_back((uint64_t{v >> 4} << 32) | (v & 15));
  }
  std::sort(cand.begin(), cand.end());
  std::sort(span.begin(), span.end());
  std::vector<uint64_t> acc, scratch;
  for (auto _ : state) {
    acc = cand;
    kernels::IntersectShiftedInPlace(&acc, span, 1, &scratch);
    benchmark::DoNotOptimize(acc.data());
  }
}

void BM_KernelBitmapSemijoin(benchmark::State& state, KernelLevel level) {
  ScopedLevel scoped(level);
  // The executor's semijoin bitmap cycle: clear, batch-set, AND, emit.
  std::vector<uint32_t> rows = SortedUnique32(7, 8192, 65535);
  std::vector<uint32_t> mask_rows = SortedUnique32(8, 8192, 65535);
  std::vector<uint64_t> bits, mask;
  kernels::BitmapClear(&mask, 65536);
  kernels::BitmapSetBatch(&mask, mask_rows);
  std::vector<uint32_t> emitted;
  for (auto _ : state) {
    kernels::BitmapClear(&bits, 65536);
    kernels::BitmapSetBatch(&bits, rows);
    kernels::BitmapAnd(&bits, mask);
    kernels::BitmapEmitInto(bits, &emitted);
    benchmark::DoNotOptimize(emitted.data());
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}

/// Registers the per-level kernel benchmarks for every supported level.
/// Static-init registration, same as the BENCHMARK macros above.
int RegisterKernelBenches() {
  for (KernelLevel level :
       {KernelLevel::kScalar, KernelLevel::kSse, KernelLevel::kAvx2}) {
    if (!KernelLevelSupported(level)) continue;
    const std::string suffix = std::string("<") + KernelLevelName(level) + ">";
    benchmark::RegisterBenchmark(
        ("BM_KernelIntersectDense" + suffix).c_str(),
        BM_KernelIntersectDense, level);
    benchmark::RegisterBenchmark(
        ("BM_KernelIntersectWrapped" + suffix).c_str(),
        BM_KernelIntersectWrapped, level);
    benchmark::RegisterBenchmark(
        ("BM_KernelIntersectSkewed" + suffix).c_str(),
        BM_KernelIntersectSkewed, level);
    benchmark::RegisterBenchmark(("BM_KernelPhraseShift" + suffix).c_str(),
                                 BM_KernelPhraseShift, level);
    benchmark::RegisterBenchmark(("BM_KernelBitmapSemijoin" + suffix).c_str(),
                                 BM_KernelBitmapSemijoin, level);
  }
  return 0;
}

const int kKernelBenchesRegistered = RegisterKernelBenches();

}  // namespace
}  // namespace qbe

BENCHMARK_MAIN();
