// Microbenchmarks (google-benchmark) for the substrates behind the query
// discovery system: tokenizer, FTS index build/probe, master column index,
// the semijoin executor, subtree enumeration, candidate generation and
// filter-universe construction. These quantify the paper's claim that
// candidate generation is "a negligible fraction of the overall query
// processing time" relative to verification.

#include <benchmark/benchmark.h>

#include "core/candidate_gen.h"
#include "core/filter_universe.h"
#include "datagen/imdb_like.h"
#include "datagen/retailer.h"
#include "exec/executor.h"
#include "exec/match_cache.h"
#include "schema/subtree_enum.h"
#include "text/tokenizer.h"

namespace qbe {
namespace {

const Database& ImdbDb() {
  static const Database& db = *new Database([] {
    ImdbConfig config;
    config.scale = 0.5;
    return MakeImdbLikeDatabase(config);
  }());
  return db;
}

const SchemaGraph& ImdbGraph() {
  static const SchemaGraph& graph = *new SchemaGraph(ImdbDb());
  return graph;
}

ExampleTable NameTitleEt() {
  ExampleTable et({"A", "B"});
  et.AddRow({"mike jones", "the silent"});
  et.AddRow({"mary smith", "the golden"});
  return et;
}

void BM_Tokenize(benchmark::State& state) {
  std::string text = "The Quick Brown Fox, Jumps Over the Lazy Dog 42!";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tokenize(text));
  }
}
BENCHMARK(BM_Tokenize);

void BM_InvertedIndexBuild(benchmark::State& state) {
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const TextColumnStore& cells = db.relation(person).TextColumn(1);
  for (auto _ : state) {
    InvertedIndex index;
    index.Build(cells);
    benchmark::DoNotOptimize(index.num_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cells.size()));
}
BENCHMARK(BM_InvertedIndexBuild);

void BM_PhraseMatch(benchmark::State& state) {
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const InvertedIndex& index = db.TextIndex(ColumnRef{person, 1});
  std::vector<std::string> phrase = {"mike", "jones"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.MatchPhrase(phrase));
  }
}
BENCHMARK(BM_PhraseMatch);

void BM_PhraseMatchIds(benchmark::State& state) {
  // The executor hot path: phrase tokens resolved to dictionary ids once
  // per request, probes reuse one output buffer — no per-probe allocation.
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const InvertedIndex& index = db.TextIndex(ColumnRef{person, 1});
  std::vector<uint32_t> ids = db.token_dict().IdsOf({"mike", "jones"});
  std::vector<uint32_t> rows;
  for (auto _ : state) {
    index.MatchPhraseIdsInto(ids, &rows);
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_PhraseMatchIds);

void BM_TokenRowCount(benchmark::State& state) {
  // O(1) precomputed distinct-row count, by id and through the string
  // compat wrapper (heterogeneous dictionary lookup, no string built).
  const Database& db = ImdbDb();
  int person = db.RelationIdByName("person");
  const InvertedIndex& index = db.TextIndex(ColumnRef{person, 1});
  uint32_t id = db.token_dict().Find("mike");
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TokenRowCountId(id));
    benchmark::DoNotOptimize(index.TokenRowCount("mike"));
  }
}
BENCHMARK(BM_TokenRowCount);

void BM_ColumnIndexLookup(benchmark::State& state) {
  const Database& db = ImdbDb();
  std::vector<std::string> phrase = {"mike"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.column_index().ColumnsContaining(phrase));
  }
}
BENCHMARK(BM_ColumnIndexLookup);

void BM_ExecutorExists(benchmark::State& state) {
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  Executor exec(db, graph);
  // person <- cast_info -> title with two predicates.
  int person = db.RelationIdByName("person");
  int cast_info = db.RelationIdByName("cast_info");
  int title = db.RelationIdByName("title");
  JoinTree tree = JoinTree::Single(cast_info);
  for (int e : graph.IncidentEdges(cast_info)) {
    int other = graph.OtherEnd(e, cast_info);
    if ((other == person && !tree.verts.Test(person)) ||
        (other == title && !tree.verts.Test(title))) {
      tree = ExtendTree(tree, graph, e);
    }
  }
  std::vector<PhrasePredicate> predicates = {
      {ColumnRef{person, 1}, {"mike"}, false},
      {ColumnRef{title, 1}, {"silent"}, false}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Exists(tree, predicates));
  }
}
BENCHMARK(BM_ExecutorExists);

void BM_ExecutorExistsCached(benchmark::State& state) {
  // Same probe as BM_ExecutorExists but with pre-resolved predicate ids and
  // the per-request match cache, as DiscoverQueries runs it: after the first
  // iteration every SeedNode probe is a shared-lock lookup.
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  Executor exec(db, graph);
  int person = db.RelationIdByName("person");
  int cast_info = db.RelationIdByName("cast_info");
  int title = db.RelationIdByName("title");
  JoinTree tree = JoinTree::Single(cast_info);
  for (int e : graph.IncidentEdges(cast_info)) {
    int other = graph.OtherEnd(e, cast_info);
    if ((other == person && !tree.verts.Test(person)) ||
        (other == title && !tree.verts.Test(title))) {
      tree = ExtendTree(tree, graph, e);
    }
  }
  std::vector<PhrasePredicate> predicates = {
      {ColumnRef{person, 1}, {"mike"}, false},
      {ColumnRef{title, 1}, {"silent"}, false}};
  for (PhrasePredicate& pred : predicates) {
    pred.ids = db.token_dict().IdsOf(pred.tokens);
  }
  MatchCache match_cache;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exec.Exists(tree, predicates, nullptr, &match_cache));
  }
}
BENCHMARK(BM_ExecutorExistsCached);

void BM_SubtreeEnumeration(benchmark::State& state) {
  const SchemaGraph& graph = ImdbGraph();
  int max_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateSubtrees(graph, max_size));
  }
}
BENCHMARK(BM_SubtreeEnumeration)->Arg(3)->Arg(4)->Arg(5);

void BM_CandidateGeneration(benchmark::State& state) {
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  ExampleTable et = NameTitleEt();
  CandidateGenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(db, graph, et, options));
  }
}
BENCHMARK(BM_CandidateGeneration);

void BM_FilterUniverseBuild(benchmark::State& state) {
  const Database& db = ImdbDb();
  const SchemaGraph& graph = ImdbGraph();
  ExampleTable et = NameTitleEt();
  std::vector<CandidateQuery> candidates =
      GenerateCandidates(db, graph, et, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildFilterUniverse(graph, et, candidates));
  }
  state.counters["candidates"] = static_cast<double>(candidates.size());
}
BENCHMARK(BM_FilterUniverseBuild);

void BM_RetailerDiscoveryEndToEnd(benchmark::State& state) {
  const Database& db = *new Database(MakeRetailerDatabase());
  const SchemaGraph& graph = *new SchemaGraph(db);
  ExampleTable et = MakeFigure2ExampleTable();
  CandidateGenOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCandidates(db, graph, et, options));
  }
}
BENCHMARK(BM_RetailerDiscoveryEndToEnd);

}  // namespace
}  // namespace qbe

BENCHMARK_MAIN();
