// Reproduces Figure 3: the number of candidate queries vs the number of
// valid queries as the ET row count m grows, on (a) IMDB and (b) CUST. The
// paper's headline observation: more than 90% of candidate queries are
// invalid, and both counts shrink as m grows (more rows = tighter column
// constraints).

#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table_printer.h"

namespace {

void RunDataset(const char* name, qbe::DatasetKind kind,
                const qbe::BenchArgs& args) {
  qbe::Bundle bundle = qbe::MakeBundle(kind, args.scale, args.seed);
  qbe::TablePrinter table(
      {"#rows", "Candidate Queries", "Valid Queries", "invalid %"});
  for (int m = 2; m <= 6; ++m) {
    qbe::EtParams params;
    params.m = m;
    std::vector<qbe::ExampleTable> ets =
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + m);
    qbe::ExperimentPoint point = qbe::RunPoint(
        bundle, ets, {qbe::AlgoKind::kFilter}, /*max_join_length=*/4,
        args.seed);
    double invalid_pct =
        point.avg_candidates == 0
            ? 0
            : 100.0 * (point.avg_candidates - point.avg_valid) /
                  point.avg_candidates;
    table.AddRow({std::to_string(m),
                  qbe::FormatDouble(point.avg_candidates, 1),
                  qbe::FormatDouble(point.avg_valid, 1),
                  qbe::FormatDouble(invalid_pct, 1)});
  }
  std::printf("Figure 3(%s): #candidate vs #valid queries\n", name);
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  RunDataset("a: IMDB", qbe::DatasetKind::kImdb, args);
  RunDataset("b: CUST", qbe::DatasetKind::kCust, args);
  return 0;
}
