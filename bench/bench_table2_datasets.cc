// Reproduces Table 2 ("Datasets"): schema statistics of the experimental
// databases — relations, foreign-key edges, columns and text columns — for
// the synthetic IMDB-like and CUST-like instances (plus the Figure 1
// retailer toy), together with instance sizes at the chosen scale.

#include <cstdio>
#include <iostream>

#include "harness/experiment.h"
#include "harness/table_printer.h"

namespace {

void AddRow(qbe::TablePrinter& table, const std::string& name,
            const qbe::Database& db) {
  size_t rows = 0;
  for (int r = 0; r < db.num_relations(); ++r) {
    rows += db.relation(r).num_rows();
  }
  table.AddRow({name, std::to_string(db.num_relations()),
                std::to_string(db.foreign_keys().size()),
                std::to_string(db.TotalColumns()),
                std::to_string(db.TotalTextColumns()), std::to_string(rows),
                qbe::FormatBytes(static_cast<double>(db.MemoryBytes()))});
}

}  // namespace

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/1,
                                            /*default_scale=*/1.0);
  std::printf("Table 2: datasets (paper: IMDB 21/22/101/42, "
              "CUST 100/63/1263/614)\n");
  qbe::TablePrinter table({"dataset", "Relations", "Edges", "Columns",
                           "Text Columns", "rows", "memory"});
  qbe::Bundle retailer =
      qbe::MakeBundle(qbe::DatasetKind::kRetailer, 1.0, args.seed);
  AddRow(table, "Retailer(Fig.1)", *retailer.db);
  qbe::Bundle imdb =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  AddRow(table, "IMDB", *imdb.db);
  qbe::Bundle cust =
      qbe::MakeBundle(qbe::DatasetKind::kCust, args.scale, args.seed);
  AddRow(table, "CUST", *cust.db);
  table.Print(std::cout);
  return 0;
}
