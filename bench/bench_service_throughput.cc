// Service-layer scaling bench: replays an IMDB-like ET workload from 8
// client threads against one DiscoveryService, sweeping the worker count,
// and reports throughput, latency quantiles, and the shared-cache hit rate.
// The cross-request hit rate is the serving-side payoff of the paper's §5
// filter sharing: concurrent users asking related questions re-use each
// other's verification outcomes.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

#include "datagen/et_gen.h"
#include "datagen/imdb_like.h"
#include "exec/executor.h"
#include "harness/experiment.h"
#include "harness/table_printer.h"
#include "schema/schema_graph.h"
#include "service/discovery_service.h"
#include "shard/partition.h"
#include "storage/database.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace qbe {
namespace {

constexpr int kClients = 8;

/// One per-phase rollup row from the service's phase_seconds_* histograms,
/// which observe each traced request's total time in that phase: `count` is
/// traced requests touching the phase, `total_seconds` the time summed
/// across them.
struct PhaseRollup {
  std::string name;
  int64_t count = 0;
  double total_seconds = 0.0;
};

struct RunResult {
  double seconds = 0;
  double requests_per_second = 0;
  double p50 = 0;
  double p99 = 0;
  double hit_rate = 0;
  std::vector<PhaseRollup> phases;  // traced runs only
};

RunResult RunOnce(Database db, const std::vector<ExampleTable>& workload,
                  int workers, int repeat, int append_mix = 0,
                  double trace_sample = 0.0) {
  ServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 1024;
  options.trace_sample = trace_sample;

  // Catalog sketch for synthetic appends (the service owns the database
  // after the move).
  std::vector<std::vector<ColumnType>> append_schema;
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    std::vector<ColumnType> cols;
    for (const auto& def : db.relation(rel).columns()) cols.push_back(def.type);
    append_schema.push_back(std::move(cols));
  }

  DiscoveryService service(std::move(db), options);

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      long long op = 0;
      for (int r = 0; r < repeat; ++r) {
        for (size_t q = 0; q < workload.size(); ++q, ++op) {
          if (append_mix > 0 && op % 100 < append_mix) {
            // Live-write mix: this op appends a synthetic row (unique PK
            // per client) instead of discovering; each append publishes a
            // new epoch that subsequent reads pin.
            int rel = static_cast<int>(op % append_schema.size());
            long long uniq = 1'000'000'000LL +
                             static_cast<long long>(c) * 10'000'000LL + op;
            std::vector<Value> values;
            for (ColumnType type : append_schema[rel]) {
              if (type == ColumnType::kId) {
                values.emplace_back(static_cast<int64_t>(uniq));
              } else {
                values.emplace_back("ingest bench row " +
                                    std::to_string(uniq));
              }
            }
            std::string error;
            service.Append(rel, std::move(values), &error);
            continue;
          }
          size_t pick = (q + static_cast<size_t>(c)) % workload.size();
          service.Discover(workload[pick]);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  RunResult result;
  result.seconds = wall.ElapsedSeconds();
  double total = static_cast<double>(kClients) * repeat *
                 static_cast<double>(workload.size());
  result.requests_per_second =
      result.seconds > 0 ? total / result.seconds : 0.0;
  // `latency_seconds` only observes Discover requests, so the quantiles
  // below are pure read latencies even under an append mix.
  Histogram& latency = service.metrics().GetHistogram(
      "latency_seconds", ExponentialBuckets(1e-4, 2.0, 21));
  result.p50 = latency.Quantile(0.5);
  result.p99 = latency.Quantile(0.99);
  result.hit_rate = service.cache().HitRate();
  const std::string prefix = "phase_seconds_";
  for (const auto& hist : service.metrics().Snapshot().histograms) {
    if (hist.name.compare(0, prefix.size(), prefix) != 0) continue;
    result.phases.push_back(
        {hist.name.substr(prefix.size()), hist.count, hist.sum});
  }
  return result;
}

/// A decomposable Customer ← Order ← Shipment chain for the sharded sweep:
/// every customer is its own join component, so hash partitioning spreads
/// the data near-evenly and the sweep measures genuine parallel speedup —
/// unlike the IMDB-like schema, whose shared dimensions collapse into one
/// giant component (the degenerate case DESIGN.md §15 calls out). Text is
/// drawn from small shared pools so phrases recur across shards and the
/// scatter-gather merge sees real multi-shard hits.
Database MakeOrderChainDatabase(int customers, uint64_t seed) {
  const char* names[] = {"mike", "mary", "bob", "alice", "dave"};
  const char* cities[] = {"berlin", "tokyo", "lima"};
  const char* items[] = {"laptop", "tablet", "phone", "camera"};
  const char* notes[] = {"express", "fragile", "gift"};
  Rng rng(seed);

  Relation customer("Customer", {{"CustId", ColumnType::kId},
                                 {"Name", ColumnType::kText},
                                 {"City", ColumnType::kText}});
  Relation order("Order", {{"OrderId", ColumnType::kId},
                           {"CustId", ColumnType::kId},
                           {"Item", ColumnType::kText}});
  Relation shipment("Shipment", {{"ShipId", ColumnType::kId},
                                 {"OrderId", ColumnType::kId},
                                 {"Note", ColumnType::kText}});
  int64_t next_order = 0;
  int64_t next_ship = 0;
  for (int64_t c = 0; c < customers; ++c) {
    customer.AppendRow({c, std::string(names[rng.NextBounded(5)]),
                        std::string(cities[rng.NextBounded(3)])});
    for (int o = 0; o < 3; ++o) {
      int64_t oid = next_order++;
      order.AppendRow({oid, c, std::string(items[rng.NextBounded(4)])});
      for (int s = 0; s < 2; ++s) {
        shipment.AppendRow(
            {next_ship++, oid, std::string(notes[rng.NextBounded(3)])});
      }
    }
  }
  Database db;
  db.AddRelation(std::move(customer));
  db.AddRelation(std::move(order));
  db.AddRelation(std::move(shipment));
  db.AddForeignKey("Order", "CustId", "Customer", "CustId");
  db.AddForeignKey("Shipment", "OrderId", "Order", "OrderId");
  db.BuildIndexes();
  return db;
}

/// One point of the sharded sweep: the timed replay plus the full serial
/// response set (SQL + scores per ET) for the cross-shard-count
/// bit-identity check, and the scatter-gather counters.
struct ShardedPoint {
  int shards = 1;
  RunResult run;
  int64_t probes = 0;
  int64_t skipped_empty = 0;
  double straggler = 0.0;  // 0 when unsharded (gauge not set)
  std::vector<std::vector<std::string>> sql;
  std::vector<std::vector<double>> scores;
};

ShardedPoint RunSharded(int num_shards, uint64_t shard_seed, int customers,
                        uint64_t db_seed,
                        const std::vector<ExampleTable>& workload, int workers,
                        int repeat) {
  Database whole = MakeOrderChainDatabase(customers, db_seed);
  PartitionOptions poptions;
  poptions.num_shards = num_shards;
  poptions.mode = PartitionMode::kHashPk;
  poptions.seed = shard_seed;
  std::vector<Database> shards =
      SplitDatabase(whole, ComputePartitionPlan(whole, poptions));

  ServiceOptions options;
  options.num_workers = workers;
  options.max_queue_depth = 1024;
  options.shard_seed = shard_seed;
  DiscoveryService service(std::move(shards), options);

  ShardedPoint point;
  point.shards = num_shards;
  // Serial pass first: record each ET's response for the bit-identity
  // check, and warm the shared cache the same way at every shard count so
  // the timed replay below compares like with like.
  for (const ExampleTable& et : workload) {
    ServiceResponse response = service.Discover(et);
    QBE_CHECK_MSG(response.ok(), "sharded discovery failed");
    std::vector<std::string> sql;
    std::vector<double> scores;
    for (const DiscoveredQuery& q : response.result.queries) {
      sql.push_back(q.sql);
      scores.push_back(q.score);
    }
    point.sql.push_back(std::move(sql));
    point.scores.push_back(std::move(scores));
  }

  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < repeat; ++r) {
        for (size_t q = 0; q < workload.size(); ++q) {
          size_t pick = (q + static_cast<size_t>(c)) % workload.size();
          service.Discover(workload[pick]);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  point.run.seconds = wall.ElapsedSeconds();
  double total = static_cast<double>(kClients) * repeat *
                 static_cast<double>(workload.size());
  point.run.requests_per_second =
      point.run.seconds > 0 ? total / point.run.seconds : 0.0;
  Histogram& latency = service.metrics().GetHistogram(
      "latency_seconds", ExponentialBuckets(1e-4, 2.0, 21));
  point.run.p50 = latency.Quantile(0.5);
  point.run.p99 = latency.Quantile(0.99);
  point.run.hit_rate = service.cache().HitRate();
  for (int s = 0; s < num_shards; ++s) {
    const std::string suffix = "_s" + std::to_string(s);
    point.probes += service.metrics().GetCounter("shard_probes" + suffix)
                        .Value();
    point.skipped_empty +=
        service.metrics().GetCounter("shard_skipped_empty" + suffix).Value();
  }
  for (const auto& gauge : service.metrics().Snapshot().gauges) {
    if (gauge.first == "shard_straggler_ratio") point.straggler = gauge.second;
  }
  return point;
}

void Run(const BenchArgs& args, const std::string& shard_json_path) {
  ImdbConfig config;
  config.scale = args.scale;
  config.seed = args.seed;
  Database db = MakeImdbLikeDatabase(config);
  SchemaGraph graph(db);
  Executor exec(db, graph);
  EtSource source(db, graph, exec, args.seed);
  EtParams params;  // Table 3 defaults
  std::vector<ExampleTable> workload =
      source.SampleMany(params, args.ets_per_point, args.seed);

  std::printf(
      "Service throughput: %d clients replaying %zu ETs x%d over the "
      "IMDB-like dataset (scale %.2f), shared verification cache\n",
      kClients, workload.size(), /*repeat=*/8, args.scale);
  TablePrinter table({"workers", "wall(s)", "req/s", "p50(s)<=", "p99(s)<=",
                      "cache hit rate"});
  for (int workers : {1, 2, 4, 8}) {
    RunResult r =
        RunOnce(MakeImdbLikeDatabase(config), workload, workers, 8);
    table.AddRow({std::to_string(workers), FormatDouble(r.seconds, 3),
                  FormatDouble(r.requests_per_second, 1),
                  FormatDouble(r.p50, 4), FormatDouble(r.p99, 4),
                  FormatDouble(r.hit_rate, 3)});
  }
  table.Print(std::cout);

  // Live-ingestion overhead (DESIGN.md §12): same workload with 5% of
  // client ops turned into row appends. Epoch-pinned reads should keep the
  // read p50 within ~15% of the read-only baseline — appends rebuild the
  // overlay off the read path and publish with one pointer swap.
  std::printf(
      "\nLive-write mix: read latency with 0%% vs 5%% appended ops "
      "(4 workers)\n");
  TablePrinter mix_table({"append mix", "wall(s)", "read p50(s)<=",
                          "read p99(s)<=", "p50 vs read-only"});
  double baseline_p50 = 0.0;
  for (int mix : {0, 5}) {
    RunResult r =
        RunOnce(MakeImdbLikeDatabase(config), workload, /*workers=*/4, 8, mix);
    if (mix == 0) baseline_p50 = r.p50;
    mix_table.AddRow(
        {std::to_string(mix) + "%", FormatDouble(r.seconds, 3),
         FormatDouble(r.p50, 4), FormatDouble(r.p99, 4),
         baseline_p50 > 0 ? FormatDouble(r.p50 / baseline_p50, 3) + "x"
                          : "n/a"});
  }
  mix_table.Print(std::cout);

  // Tracing overhead (DESIGN.md §13): same read-only workload, 4 workers,
  // with request tracing off vs 100% sampled. The acceptance bar is a read
  // p50 regression under 2% when off (bit-identical code path: every site
  // guards on a null TraceContext*) and single-digit % when fully sampled.
  std::printf("\nTracing overhead: read latency untraced vs 100%% sampled "
              "(4 workers)\n");
  TablePrinter trace_table({"trace sample", "wall(s)", "p50(s)<=",
                            "p99(s)<=", "p50 vs untraced"});
  RunResult untraced =
      RunOnce(MakeImdbLikeDatabase(config), workload, /*workers=*/4, 8);
  RunResult traced = RunOnce(MakeImdbLikeDatabase(config), workload,
                             /*workers=*/4, 8, /*append_mix=*/0,
                             /*trace_sample=*/1.0);
  trace_table.AddRow({"0", FormatDouble(untraced.seconds, 3),
                      FormatDouble(untraced.p50, 4),
                      FormatDouble(untraced.p99, 4), "1.000x"});
  trace_table.AddRow(
      {"1.0", FormatDouble(traced.seconds, 3), FormatDouble(traced.p50, 4),
       FormatDouble(traced.p99, 4),
       untraced.p50 > 0 ? FormatDouble(traced.p50 / untraced.p50, 3) + "x"
                        : "n/a"});
  trace_table.Print(std::cout);

  std::printf("\nPer-phase rollup over the traced run (time per request "
              "spent in each phase)\n");
  TablePrinter phase_table({"phase", "requests", "total(s)", "mean(ms)"});
  for (const PhaseRollup& phase : traced.phases) {
    phase_table.AddRow(
        {phase.name, std::to_string(phase.count),
         FormatDouble(phase.total_seconds, 3),
         phase.count > 0
             ? FormatDouble(phase.total_seconds * 1e3 / phase.count, 4)
             : "n/a"});
  }
  phase_table.Print(std::cout);

  if (!args.json_path.empty()) {
    std::ofstream json(args.json_path);
    QBE_CHECK_MSG(static_cast<bool>(json), "cannot open --json path");
    json << "{\n"
         << "  \"bench\": \"service_tracing_overhead\",\n"
         << "  \"scale\": " << args.scale << ",\n"
         << "  \"clients\": " << kClients << ",\n"
         << "  \"workers\": 4,\n"
         << "  \"untraced_p50_s\": " << untraced.p50 << ",\n"
         << "  \"untraced_p99_s\": " << untraced.p99 << ",\n"
         << "  \"traced_p50_s\": " << traced.p50 << ",\n"
         << "  \"traced_p99_s\": " << traced.p99 << ",\n"
         << "  \"traced_over_untraced_p50\": "
         << (untraced.p50 > 0 ? traced.p50 / untraced.p50 : 0.0) << ",\n"
         << "  \"untraced_req_per_s\": " << untraced.requests_per_second
         << ",\n"
         << "  \"traced_req_per_s\": " << traced.requests_per_second << ",\n"
         << "  \"phases\": [\n";
    for (size_t i = 0; i < traced.phases.size(); ++i) {
      const PhaseRollup& phase = traced.phases[i];
      json << "    {\"phase\": \"" << phase.name
           << "\", \"requests\": " << phase.count
           << ", \"total_s\": " << phase.total_seconds << "}"
           << (i + 1 == traced.phases.size() ? "\n" : ",\n");
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", args.json_path.c_str());
  }

  // Sharded scatter-gather sweep (DESIGN.md §15): the same service bench
  // over a decomposable order-chain dataset partitioned into 1/2/4 shards.
  // Every point QBE_CHECKs that its SQL sets and scores are bit-identical
  // to the unsharded point, so the table below is pure overhead-vs-speedup:
  // coordinator fan-out + per-shard probe cost against shard-local work.
  const int customers = std::max(200, static_cast<int>(20000 * args.scale));
  const uint64_t chain_seed = args.seed * 131 + 9;
  std::vector<ExampleTable> chain_workload;
  {
    Database chain = MakeOrderChainDatabase(customers, chain_seed);
    SchemaGraph chain_graph(chain);
    Executor chain_exec(chain, chain_graph);
    EtSource::Options source_options;
    source_options.num_matrices = 4;
    source_options.min_text_cols = 3;
    source_options.min_matrix_rows = 6;
    EtSource chain_source(chain, chain_graph, chain_exec, chain_seed,
                          source_options);
    EtParams chain_params;
    chain_params.m = 2;
    chain_params.n = 2;
    chain_params.s = 0.3;
    chain_params.v = 1;
    chain_workload = chain_source.SampleMany(chain_params, args.ets_per_point,
                                             chain_seed);
  }
  std::printf(
      "\nSharded scatter-gather: %d clients replaying %zu ETs x4 over an "
      "order-chain dataset (%d components, %d rows), 4 workers, hash "
      "partitioning\n",
      kClients, chain_workload.size(), customers, customers * 10);
  std::vector<ShardedPoint> points;
  for (int shards : {1, 2, 4}) {
    points.push_back(RunSharded(shards, /*shard_seed=*/args.seed, customers,
                                chain_seed, chain_workload, /*workers=*/4,
                                /*repeat=*/4));
  }
  // Bit-identity across shard counts — the bench doubles as a differential
  // check, like the kernel A/B sweep.
  for (size_t p = 1; p < points.size(); ++p) {
    QBE_CHECK_MSG(points[p].sql == points[0].sql,
                  "sharded SQL sets differ from unsharded");
    QBE_CHECK_MSG(points[p].scores == points[0].scores,
                  "sharded scores differ from unsharded");
  }
  TablePrinter shard_table({"shards", "wall(s)", "req/s", "p50(s)<=",
                            "p99(s)<=", "probes", "skipped empty",
                            "straggler", "req/s vs 1 shard"});
  for (const ShardedPoint& point : points) {
    double speedup = points[0].run.requests_per_second > 0
                         ? point.run.requests_per_second /
                               points[0].run.requests_per_second
                         : 0.0;
    shard_table.AddRow(
        {std::to_string(point.shards), FormatDouble(point.run.seconds, 3),
         FormatDouble(point.run.requests_per_second, 1),
         FormatDouble(point.run.p50, 4), FormatDouble(point.run.p99, 4),
         std::to_string(point.probes), std::to_string(point.skipped_empty),
         point.shards > 1 ? FormatDouble(point.straggler, 3) : "n/a",
         FormatDouble(speedup, 3) + "x"});
  }
  shard_table.Print(std::cout);
  std::printf("(SQL sets and scores checked bit-identical across shard "
              "counts)\n");

  if (!shard_json_path.empty()) {
    std::ofstream json(shard_json_path);
    QBE_CHECK_MSG(static_cast<bool>(json), "cannot open --shard-json path");
    json << "{\n"
         << "  \"bench\": \"sharded_scatter_gather\",\n"
         << "  \"scale\": " << args.scale << ",\n"
         << "  \"clients\": " << kClients << ",\n"
         << "  \"workers\": 4,\n"
         << "  \"components\": " << customers << ",\n"
         << "  \"rows\": " << customers * 10 << ",\n"
         << "  \"ets\": " << chain_workload.size() << ",\n"
         << "  \"bit_identical\": true,\n"
         << "  \"req_per_s_1shard\": " << points[0].run.requests_per_second
         << ",\n"
         << "  \"req_per_s_4shard\": "
         << points.back().run.requests_per_second << ",\n"
         << "  \"speedup_4_over_1\": "
         << (points[0].run.requests_per_second > 0
                 ? points.back().run.requests_per_second /
                       points[0].run.requests_per_second
                 : 0.0)
         << ",\n"
         << "  \"points\": [\n";
    for (size_t p = 0; p < points.size(); ++p) {
      const ShardedPoint& point = points[p];
      json << "    {\"shards\": " << point.shards
           << ", \"wall_s\": " << point.run.seconds
           << ", \"req_per_s\": " << point.run.requests_per_second
           << ", \"p50_s\": " << point.run.p50
           << ", \"p99_s\": " << point.run.p99
           << ", \"probes\": " << point.probes
           << ", \"skipped_empty\": " << point.skipped_empty
           << ", \"straggler\": " << point.straggler << "}"
           << (p + 1 == points.size() ? "\n" : ",\n");
    }
    json << "  ]\n}\n";
    std::printf("wrote %s\n", shard_json_path.c_str());
  }
}

}  // namespace
}  // namespace qbe

int main(int argc, char** argv) {
  qbe::BenchArgs args =
      qbe::ParseBenchArgs(argc, argv, /*default_ets=*/10,
                          /*default_scale=*/0.2);
  // Bench-local flag (ParseBenchArgs ignores what it doesn't know): write
  // the sharded scatter-gather sweep as machine-readable JSON to this path.
  std::string shard_json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shard-json=", 13) == 0) {
      shard_json_path = argv[i] + 13;
    }
  }
  qbe::Run(args, shard_json_path);
  return 0;
}
