// bench_snapshot_coldstart — cold-start comparison for the binary snapshot
// store (DESIGN.md §11): building the IMDB-like database from its CSV
// catalog directory (parse + tokenize + index build) vs mmap-opening a
// `.qbes` snapshot of the same database (checksum + validation scans only;
// even the key-lookup hash maps are deferred to first use).
//
// Prints both times, the on-disk sizes, and the speedup; doubles as a
// differential check by running a small discovery workload against both
// databases and requiring identical result sets.
//
//   bench_snapshot_coldstart [--scale=X] [--seed=N] [--json=PATH]

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "datagen/et_gen.h"
#include "datagen/imdb_like.h"
#include "exec/executor.h"
#include "harness/experiment.h"
#include "schema/schema_graph.h"
#include "snapshot/snapshot.h"
#include "storage/catalog_io.h"
#include "storage/database.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace {

std::vector<std::string> DiscoverSqls(const qbe::Database& db,
                                      const std::vector<qbe::ExampleTable>& ets) {
  std::vector<std::string> sqls;
  for (const qbe::ExampleTable& et : ets) {
    qbe::DiscoveryResult result = qbe::DiscoverQueries(db, et, {});
    QBE_CHECK_MSG(result.ok(), "discovery failed during differential check");
    for (const auto& q : result.queries) sqls.push_back(q.sql);
  }
  std::sort(sqls.begin(), sqls.end());
  return sqls;
}

uint64_t DirectoryBytes(const std::filesystem::path& dir) {
  uint64_t bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) bytes += entry.file_size();
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/4,
                                            /*default_scale=*/0.5);

  const std::filesystem::path work =
      std::filesystem::temp_directory_path() /
      ("qbe_snapshot_coldstart_" + std::to_string(args.seed));
  const std::filesystem::path csv_dir = work / "csv";
  const std::filesystem::path snap_path = work / "imdb.qbes";
  std::filesystem::create_directories(work);

  std::printf("generating imdb-like database (scale %.2f)...\n", args.scale);
  {
    qbe::Database generated =
        qbe::MakeImdbLikeDatabase({args.scale, args.seed});
    QBE_CHECK_MSG(qbe::SaveDatabase(generated, csv_dir.string()),
                  "cannot write CSV catalog directory");
  }
  const uint64_t csv_bytes = DirectoryBytes(csv_dir);

  // --- cold start 1: CSV parse + tokenize + full index build ---------------
  qbe::Stopwatch csv_timer;
  std::string error;
  std::optional<qbe::Database> from_csv =
      qbe::LoadDatabase(csv_dir.string(), &error);
  QBE_CHECK_MSG(from_csv.has_value(), error.c_str());
  const double csv_seconds = csv_timer.ElapsedSeconds();

  QBE_CHECK_MSG(qbe::WriteSnapshot(*from_csv, snap_path.string(), &error),
                error.c_str());
  const uint64_t snapshot_bytes = std::filesystem::file_size(snap_path);

  // --- cold start 2: mmap + checksums + validation scans -------------------
  // Best of three: steady-state open time with the file in page cache, the
  // case a restarting server actually sees.
  double open_seconds = 1e30;
  std::optional<qbe::Database> from_snapshot;
  for (int run = 0; run < 3; ++run) {
    qbe::Stopwatch open_timer;
    from_snapshot = qbe::Database::OpenSnapshot(snap_path.string(), &error);
    QBE_CHECK_MSG(from_snapshot.has_value(), error.c_str());
    open_seconds = std::min(open_seconds, open_timer.ElapsedSeconds());
  }

  // --- differential check: identical discovery results ---------------------
  std::vector<qbe::ExampleTable> ets;
  {
    qbe::SchemaGraph graph(*from_csv);
    qbe::Executor exec(*from_csv, graph);
    qbe::EtSource source(*from_csv, graph, exec, args.seed);
    qbe::EtParams params;
    params.m = 2;
    params.n = 2;
    params.s = 0.0;
    ets = source.SampleMany(params, args.ets_per_point, args.seed + 1);
  }
  const std::vector<std::string> csv_sqls = DiscoverSqls(*from_csv, ets);
  const std::vector<std::string> snap_sqls = DiscoverSqls(*from_snapshot, ets);
  QBE_CHECK_MSG(csv_sqls == snap_sqls,
                "snapshot-opened database returned different queries");

  const double speedup = open_seconds > 0 ? csv_seconds / open_seconds : 0.0;
  std::printf(
      "cold start, imdb-like at scale %.2f (%d relations, %d text columns):\n"
      "  CSV catalog      %8.1f MB on disk, load+index %8.3f s\n"
      "  snapshot (.qbes) %8.1f MB on disk, mmap open  %8.3f s\n"
      "  speedup: %.1fx   heap: csv %.1f MB, snapshot %.1f MB "
      "(+%.1f MB mapped)\n"
      "  differential check: %zu discovered queries identical\n",
      args.scale, from_csv->num_relations(), from_csv->TotalTextColumns(),
      static_cast<double>(csv_bytes) / 1e6, csv_seconds,
      static_cast<double>(snapshot_bytes) / 1e6, open_seconds, speedup,
      static_cast<double>(from_csv->MemoryBytes()) / 1e6,
      static_cast<double>(from_snapshot->MemoryBytes()) / 1e6,
      static_cast<double>(from_snapshot->MappedBytes()) / 1e6,
      csv_sqls.size());

  if (!args.json_path.empty()) {
    std::ofstream json(args.json_path);
    QBE_CHECK_MSG(static_cast<bool>(json), "cannot open --json path");
    json << "{\n"
         << "  \"title\": \"snapshot_coldstart\",\n"
         << "  \"dataset\": \"imdb\",\n"
         << "  \"scale\": " << args.scale << ",\n"
         << "  \"csv_bytes\": " << csv_bytes << ",\n"
         << "  \"snapshot_bytes\": " << snapshot_bytes << ",\n"
         << "  \"csv_load_seconds\": " << csv_seconds << ",\n"
         << "  \"snapshot_open_seconds\": " << open_seconds << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"csv_heap_bytes\": " << from_csv->MemoryBytes() << ",\n"
         << "  \"snapshot_heap_bytes\": " << from_snapshot->MemoryBytes()
         << ",\n"
         << "  \"snapshot_mapped_bytes\": " << from_snapshot->MappedBytes()
         << ",\n"
         << "  \"differential_queries\": " << csv_sqls.size() << "\n"
         << "}\n";
    std::printf("wrote %s\n", args.json_path.c_str());
  }

  std::error_code ec;
  std::filesystem::remove_all(work, ec);
  return 0;
}
