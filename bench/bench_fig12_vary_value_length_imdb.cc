// Reproduces Figure 12: varying cell value length (v ∈ {1, 2, 3} tokens)
// on IMDB. Expected shape: verification counts fall with v for every
// algorithm (longer values are more selective, fewer candidates), with
// FILTER cheapest throughout.

#include "harness/experiment.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  std::vector<qbe::AlgoKind> algos = {qbe::AlgoKind::kVerifyAll,
                                      qbe::AlgoKind::kSimplePrune,
                                      qbe::AlgoKind::kFilter};
  std::vector<std::string> labels;
  std::vector<qbe::ExperimentPoint> points;
  for (int v = 1; v <= 3; ++v) {
    qbe::EtParams params;
    params.v = v;
    std::vector<qbe::ExampleTable> ets =
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + v);
    points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
    labels.push_back(std::to_string(v));
  }
  qbe::PrintSweep("Figure 12: vary cell value length (IMDB)", "v", labels,
                  points);
  return 0;
}
