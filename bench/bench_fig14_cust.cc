// Reproduces Figure 14: the CUST dataset sweeps — (a) vary rows m,
// (b) vary columns n, (c) vary sparsity s — reporting the number of
// verifications (the paper shows only that metric for CUST; we print time
// and cost too since the harness has them anyway). Expected shape mirrors
// IMDB: FILTER fewest and most robust, with the gap widening at large n
// and s.

#include "harness/experiment.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kCust, args.scale, args.seed);
  std::vector<qbe::AlgoKind> algos = {qbe::AlgoKind::kVerifyAll,
                                      qbe::AlgoKind::kSimplePrune,
                                      qbe::AlgoKind::kFilter};

  {  // (a) vary m
    std::vector<std::string> labels;
    std::vector<qbe::ExperimentPoint> points;
    for (int m = 2; m <= 6; ++m) {
      qbe::EtParams params;
      params.m = m;
      std::vector<qbe::ExampleTable> ets =
          bundle.ets->SampleMany(params, args.ets_per_point, args.seed + m);
      points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
      labels.push_back(std::to_string(m));
    }
    qbe::PrintSweep("Figure 14(a): vary the number of rows (CUST)", "m",
                    labels, points);
  }
  {  // (b) vary n
    std::vector<std::string> labels;
    std::vector<qbe::ExperimentPoint> points;
    for (int n = 2; n <= 6; ++n) {
      qbe::EtParams params;
      params.n = n;
      std::vector<qbe::ExampleTable> ets = bundle.ets->SampleMany(
          params, args.ets_per_point, args.seed + 10 + n);
      points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
      labels.push_back(std::to_string(n));
    }
    qbe::PrintSweep("Figure 14(b): vary the number of columns (CUST)", "n",
                    labels, points);
  }
  {  // (c) vary s
    std::vector<std::string> labels;
    std::vector<qbe::ExperimentPoint> points;
    int i = 0;
    for (double s : {0.0, 0.2, 0.3, 0.5, 0.7}) {
      qbe::EtParams params;
      params.s = s;
      std::vector<qbe::ExampleTable> ets = bundle.ets->SampleMany(
          params, args.ets_per_point, args.seed + 20 + ++i);
      points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
      labels.push_back(qbe::FormatDouble(s, 1));
    }
    qbe::PrintSweep("Figure 14(c): vary sparsity (CUST)", "s", labels,
                    points);
  }
  return 0;
}
