// Reproduces Figure 10: varying the number of ET columns (n = 2..6) on
// IMDB. Expected shape: FILTER's advantage grows with n (larger candidate
// join trees expose more shared sub-join trees to prune with).

#include "harness/experiment.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  std::vector<qbe::AlgoKind> algos = {qbe::AlgoKind::kVerifyAll,
                                      qbe::AlgoKind::kSimplePrune,
                                      qbe::AlgoKind::kFilter};
  std::vector<std::string> labels;
  std::vector<qbe::ExperimentPoint> points;
  for (int n = 2; n <= 6; ++n) {
    qbe::EtParams params;
    params.n = n;
    std::vector<qbe::ExampleTable> ets =
        bundle.ets->SampleMany(params, args.ets_per_point, args.seed + n);
    points.push_back(qbe::RunPoint(bundle, ets, algos, 4, args.seed));
    labels.push_back(std::to_string(n));
  }
  qbe::PrintSweep("Figure 10: vary the number of columns (IMDB)", "n",
                  labels, points);
  return 0;
}
