// Ablation study for the design choices DESIGN.md calls out:
//   * FILTER's failure prior p̂ (the unspecified constant of §5.3.1),
//   * exact vs lazy-greedy selection (accelerated argmax),
//   * the adaptive (online-estimated) prior extension,
//   * baseline row orderings (random vs dense-first, §4.1),
//   * the parallel batched engine (1/2/8 threads) and the shared
//     join-subtree memo (DESIGN.md §9) — threads and memo hit rate are
//     printed per variant so perf regressions show up in bench output.
// All variants return the same valid sets; only cost differs.

#include <cstdio>
#include <iostream>
#include <memory>

#include "core/candidate_gen.h"
#include "core/execute_all.h"
#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "exec/stats.h"
#include "harness/experiment.h"
#include "harness/table_printer.h"

namespace qbe {
namespace {

struct Variant {
  std::string name;
  std::unique_ptr<CandidateVerifier> algo;
  VerifyOptions verify;
};

VerifyOptions Par(int threads, int batch = 8, bool memo = true) {
  VerifyOptions verify;
  verify.threads = threads;
  verify.batch_size = batch;
  verify.subtree_memo = memo;
  return verify;
}

void Run(const BenchArgs& args) {
  Bundle bundle = MakeBundle(DatasetKind::kImdb, args.scale, args.seed);
  Statistics stats(*bundle.db);
  EtParams params;  // Table 3 defaults
  std::vector<ExampleTable> ets =
      bundle.ets->SampleMany(params, args.ets_per_point, args.seed);

  std::vector<Variant> variants;
  variants.push_back({"VerifyAll(random)",
                      std::make_unique<VerifyAll>(RowOrder::kRandom)});
  variants.push_back({"VerifyAll(dense-first)",
                      std::make_unique<VerifyAll>(RowOrder::kDenseFirst)});
  variants.push_back({"SimplePrune(random)",
                      std::make_unique<SimplePrune>(RowOrder::kRandom)});
  variants.push_back({"SimplePrune(dense-first)",
                      std::make_unique<SimplePrune>(RowOrder::kDenseFirst)});
  for (double prior : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    variants.push_back({"Filter(p=" + FormatDouble(prior, 2) + ")",
                        std::make_unique<FilterVerifier>(prior, false)});
  }
  variants.push_back(
      {"Filter(lazy greedy)", std::make_unique<FilterVerifier>(0.1, true)});
  {
    FilterVerifier::Options options;
    options.adaptive_prior = true;
    variants.push_back({"Filter(adaptive prior)",
                        std::make_unique<FilterVerifier>(options)});
  }
  {
    FilterVerifier::Options options;
    options.cost_model = FilterCostModel::kEstimated;
    options.stats = &stats;
    variants.push_back({"Filter(estimated cost)",
                        std::make_unique<FilterVerifier>(options)});
  }
  variants.push_back(
      {"Filter(exact greedy)", std::make_unique<FilterVerifier>(0.1, false)});
  variants.push_back({"ExecuteAll", std::make_unique<ExecuteAll>()});
  // Parallel batched engine ablation: serial vs 2 vs 8 threads, plus the
  // subtree memo switched off to isolate its contribution. These reuse the
  // default-configured algorithms, so rows are directly comparable to the
  // serial entries above.
  variants.push_back({"VerifyAll(no memo)",
                      std::make_unique<VerifyAll>(RowOrder::kDenseFirst),
                      Par(1, 8, /*memo=*/false)});
  variants.push_back({"VerifyAll(2t)",
                      std::make_unique<VerifyAll>(RowOrder::kDenseFirst),
                      Par(2)});
  variants.push_back({"VerifyAll(8t)",
                      std::make_unique<VerifyAll>(RowOrder::kDenseFirst),
                      Par(8)});
  variants.push_back({"SimplePrune(8t)",
                      std::make_unique<SimplePrune>(RowOrder::kDenseFirst),
                      Par(8)});
  variants.push_back(
      {"Filter(2t batch8)", std::make_unique<FilterVerifier>(), Par(2)});
  variants.push_back(
      {"Filter(8t batch8)", std::make_unique<FilterVerifier>(), Par(8)});
  variants.push_back({"Filter(8t no memo)",
                      std::make_unique<FilterVerifier>(),
                      Par(8, 8, /*memo=*/false)});

  CandidateGenOptions gen_options;
  std::vector<VerificationCounters> totals(variants.size());
  for (const ExampleTable& et : ets) {
    std::vector<CandidateQuery> candidates =
        GenerateCandidates(*bundle.db, *bundle.graph, et, gen_options);
    std::vector<bool> reference;
    for (size_t v = 0; v < variants.size(); ++v) {
      VerifyContext ctx{*bundle.db, *bundle.graph, *bundle.exec,
                        et,         candidates,     args.seed};
      ctx.verify = variants[v].verify;
      VerificationCounters counters;
      std::vector<bool> valid = variants[v].algo->Verify(ctx, &counters);
      if (v == 0) {
        reference = valid;
      } else {
        QBE_CHECK_MSG(valid == reference, "ablation variants disagree");
      }
      totals[v].Add(counters);
    }
  }

  double n = static_cast<double>(ets.size());
  std::printf("Ablation: verification variants over %zu default ETs "
              "(IMDB, scale %.2f)\n",
              ets.size(), args.scale);
  TablePrinter table({"variant", "avg #verifications", "avg cost",
                      "avg time(ms)", "threads", "memo hit%"});
  for (size_t v = 0; v < variants.size(); ++v) {
    table.AddRow({variants[v].name,
                  FormatDouble(totals[v].verifications / n, 1),
                  FormatDouble(totals[v].estimated_cost / n, 1),
                  FormatDouble(totals[v].elapsed_seconds * 1e3 / n, 2),
                  std::to_string(totals[v].threads_used),
                  FormatDouble(totals[v].SubtreeMemoHitRate() * 100.0, 1)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace qbe

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  qbe::Run(args);
  return 0;
}
