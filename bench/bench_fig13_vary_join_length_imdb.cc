// Reproduces Figure 13: varying the maximal join length (l ∈ {3, 4, 5}) on
// IMDB. Expected shape: all algorithms pay more as l admits larger (and
// more numerous) candidates; FILTER saves the most (>60% vs VERIFYALL,
// >40% vs SIMPLEPRUNE in the paper).

#include "harness/experiment.h"

int main(int argc, char** argv) {
  qbe::BenchArgs args = qbe::ParseBenchArgs(argc, argv, /*default_ets=*/50,
                                            /*default_scale=*/1.0);
  qbe::Bundle bundle =
      qbe::MakeBundle(qbe::DatasetKind::kImdb, args.scale, args.seed);
  std::vector<qbe::AlgoKind> algos = {qbe::AlgoKind::kVerifyAll,
                                      qbe::AlgoKind::kSimplePrune,
                                      qbe::AlgoKind::kFilter};
  std::vector<std::string> labels;
  std::vector<qbe::ExperimentPoint> points;
  qbe::EtParams params;  // defaults
  std::vector<qbe::ExampleTable> ets =
      bundle.ets->SampleMany(params, args.ets_per_point, args.seed);
  for (int l = 3; l <= 5; ++l) {
    points.push_back(qbe::RunPoint(bundle, ets, algos, l, args.seed));
    labels.push_back(std::to_string(l));
  }
  qbe::PrintSweep("Figure 13: vary maximal join length (IMDB)", "l", labels,
                  points);
  return 0;
}
