#include "storage/catalog_io.h"

#include <filesystem>
#include <fstream>
#include <utility>

#include "storage/csv.h"
#include "util/string_util.h"

namespace qbe {
namespace {

constexpr char kManifestName[] = "schema.manifest";

}  // namespace

bool SaveDatabase(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  std::ofstream manifest(std::filesystem::path(dir) / kManifestName);
  if (!manifest) return false;
  manifest << "# qbe database manifest\n";
  for (int r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    std::string file = rel.name() + ".csv";
    if (!WriteRelationToCsv(rel,
                            (std::filesystem::path(dir) / file).string())) {
      return false;
    }
    manifest << "relation " << rel.name() << " " << file << " ";
    for (int c = 0; c < rel.num_columns(); ++c) {
      if (c > 0) manifest << ",";
      manifest << (rel.columns()[c].type == ColumnType::kId ? "id" : "text");
    }
    manifest << "\n";
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    manifest << "fk " << db.relation(fk.from_rel).name() << "."
             << db.relation(fk.from_rel).columns()[fk.from_col].name
             << " -> " << db.relation(fk.to_rel).name() << "."
             << db.relation(fk.to_rel).columns()[fk.to_col].name << "\n";
  }
  return static_cast<bool>(manifest);
}

std::optional<Database> LoadDatabase(const std::string& dir,
                                     std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<Database> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  const std::string manifest_path =
      (std::filesystem::path(dir) / kManifestName).string();
  if (!std::filesystem::is_directory(dir)) {
    return fail("database directory does not exist: " + dir);
  }
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    return fail("cannot open manifest " + manifest_path +
                " (not a database directory?)");
  }

  Database db;
  std::string line;
  int line_no = 0;
  struct PendingFk {
    std::string from_rel, from_col, to_rel, to_col;
    int line_no;
  };
  std::vector<PendingFk> fks;
  auto at_line = [&](const std::string& message) {
    return manifest_path + ":" + std::to_string(line_no) + ": " + message;
  };

  while (std::getline(manifest, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> parts;
    for (const std::string& piece : SplitString(std::string(stripped), ' ')) {
      if (!piece.empty()) parts.push_back(piece);
    }
    if (parts[0] == "relation") {
      if (parts.size() != 4) {
        return fail(at_line("expected 'relation <name> <file> <types>'"));
      }
      const std::string& name = parts[1];
      std::string path = (std::filesystem::path(dir) / parts[2]).string();
      if (!std::filesystem::exists(path)) {
        return fail(at_line("relation file does not exist: " + path));
      }
      std::string csv_error;
      std::optional<Relation> loaded =
          LoadRelationFromCsv(name, path, &csv_error);
      if (!loaded.has_value()) {
        return fail(at_line("failed to parse CSV " + path + ": " + csv_error));
      }
      // Re-type columns per the manifest: CSV inference can misjudge (an
      // empty text column of digits), the manifest is authoritative.
      std::vector<std::string> types = SplitString(parts[3], ',');
      if (static_cast<int>(types.size()) != loaded->num_columns()) {
        return fail(at_line("manifest declares " +
                            std::to_string(types.size()) + " columns but " +
                            path + " has " +
                            std::to_string(loaded->num_columns())));
      }
      std::vector<ColumnDef> defs;
      for (int c = 0; c < loaded->num_columns(); ++c) {
        if (types[c] != "id" && types[c] != "text") {
          return fail(at_line("unknown column type '" + types[c] +
                              "' (expected id or text)"));
        }
        defs.push_back(ColumnDef{loaded->columns()[c].name,
                                 types[c] == "id" ? ColumnType::kId
                                                  : ColumnType::kText});
      }
      Relation retyped(name, defs);
      for (uint32_t row = 0; row < loaded->num_rows(); ++row) {
        std::vector<Value> values;
        for (int c = 0; c < loaded->num_columns(); ++c) {
          if (defs[c].type == ColumnType::kId) {
            if (loaded->columns()[c].type != ColumnType::kId) {
              // Manifest demands id, data is text.
              return fail(at_line("column '" + defs[c].name + "' of " + name +
                                  " is declared id but holds non-integer "
                                  "values"));
            }
            values.emplace_back(loaded->IdAt(c, row));
          } else if (loaded->columns()[c].type == ColumnType::kId) {
            values.emplace_back(std::to_string(loaded->IdAt(c, row)));
          } else {
            values.emplace_back(std::string(loaded->TextAt(c, row)));
          }
        }
        retyped.AppendRow(values);
      }
      if (db.RelationIdByName(name) >= 0) {
        return fail(at_line("duplicate relation '" + name + "'"));
      }
      db.AddRelation(std::move(retyped));
    } else if (parts[0] == "fk") {
      // fk A.x -> B.y
      if (parts.size() != 4 || parts[2] != "->") {
        return fail(at_line("expected 'fk A.x -> B.y'"));
      }
      auto split_ref = [](const std::string& ref,
                          std::string* rel) -> std::optional<std::string> {
        size_t dot = ref.find('.');
        if (dot == std::string::npos) return std::nullopt;
        *rel = ref.substr(0, dot);
        return ref.substr(dot + 1);
      };
      PendingFk fk;
      auto from_col = split_ref(parts[1], &fk.from_rel);
      auto to_col = split_ref(parts[3], &fk.to_rel);
      if (!from_col || !to_col) {
        return fail(at_line("foreign key reference must be <rel>.<col>"));
      }
      fk.from_col = *from_col;
      fk.to_col = *to_col;
      fk.line_no = line_no;
      fks.push_back(std::move(fk));
    } else {
      return fail(at_line("unknown statement '" + parts[0] + "'"));
    }
  }
  for (const PendingFk& fk : fks) {
    line_no = fk.line_no;
    if (db.RelationIdByName(fk.from_rel) < 0) {
      return fail(at_line("foreign key references unknown relation '" +
                          fk.from_rel + "'"));
    }
    if (db.RelationIdByName(fk.to_rel) < 0) {
      return fail(at_line("foreign key references unknown relation '" +
                          fk.to_rel + "'"));
    }
    for (const auto& [rel, col] : {std::pair(fk.from_rel, fk.from_col),
                                   std::pair(fk.to_rel, fk.to_col)}) {
      const Relation& r = db.relation(db.RelationIdByName(rel));
      int c = r.ColumnIndexByName(col);
      if (c < 0) {
        return fail(at_line("foreign key references unknown column '" + rel +
                            "." + col + "'"));
      }
      if (r.columns()[c].type != ColumnType::kId) {
        return fail(at_line("foreign key column '" + rel + "." + col +
                            "' must have type id"));
      }
    }
    db.AddForeignKey(fk.from_rel, fk.from_col, fk.to_rel, fk.to_col);
  }
  db.BuildIndexes();
  return db;
}

}  // namespace qbe
