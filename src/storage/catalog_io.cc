#include "storage/catalog_io.h"

#include <filesystem>
#include <fstream>

#include "storage/csv.h"
#include "util/string_util.h"

namespace qbe {
namespace {

constexpr char kManifestName[] = "schema.manifest";

}  // namespace

bool SaveDatabase(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  std::ofstream manifest(std::filesystem::path(dir) / kManifestName);
  if (!manifest) return false;
  manifest << "# qbe database manifest\n";
  for (int r = 0; r < db.num_relations(); ++r) {
    const Relation& rel = db.relation(r);
    std::string file = rel.name() + ".csv";
    if (!WriteRelationToCsv(rel,
                            (std::filesystem::path(dir) / file).string())) {
      return false;
    }
    manifest << "relation " << rel.name() << " " << file << " ";
    for (int c = 0; c < rel.num_columns(); ++c) {
      if (c > 0) manifest << ",";
      manifest << (rel.columns()[c].type == ColumnType::kId ? "id" : "text");
    }
    manifest << "\n";
  }
  for (const ForeignKey& fk : db.foreign_keys()) {
    manifest << "fk " << db.relation(fk.from_rel).name() << "."
             << db.relation(fk.from_rel).columns()[fk.from_col].name
             << " -> " << db.relation(fk.to_rel).name() << "."
             << db.relation(fk.to_rel).columns()[fk.to_col].name << "\n";
  }
  return static_cast<bool>(manifest);
}

std::optional<Database> LoadDatabase(const std::string& dir) {
  std::ifstream manifest(std::filesystem::path(dir) / kManifestName);
  if (!manifest) return std::nullopt;

  Database db;
  std::string line;
  struct PendingFk {
    std::string from_rel, from_col, to_rel, to_col;
  };
  std::vector<PendingFk> fks;

  while (std::getline(manifest, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> parts;
    for (const std::string& piece : SplitString(std::string(stripped), ' ')) {
      if (!piece.empty()) parts.push_back(piece);
    }
    if (parts[0] == "relation") {
      if (parts.size() != 4) return std::nullopt;
      const std::string& name = parts[1];
      std::string path = (std::filesystem::path(dir) / parts[2]).string();
      std::optional<Relation> loaded = LoadRelationFromCsv(name, path);
      if (!loaded.has_value()) return std::nullopt;
      // Re-type columns per the manifest: CSV inference can misjudge (an
      // empty text column of digits), the manifest is authoritative.
      std::vector<std::string> types = SplitString(parts[3], ',');
      if (static_cast<int>(types.size()) != loaded->num_columns()) {
        return std::nullopt;
      }
      std::vector<ColumnDef> defs;
      for (int c = 0; c < loaded->num_columns(); ++c) {
        if (types[c] != "id" && types[c] != "text") return std::nullopt;
        defs.push_back(ColumnDef{loaded->columns()[c].name,
                                 types[c] == "id" ? ColumnType::kId
                                                  : ColumnType::kText});
      }
      Relation retyped(name, defs);
      for (uint32_t row = 0; row < loaded->num_rows(); ++row) {
        std::vector<Value> values;
        for (int c = 0; c < loaded->num_columns(); ++c) {
          if (defs[c].type == ColumnType::kId) {
            if (loaded->columns()[c].type != ColumnType::kId) {
              return std::nullopt;  // manifest demands id, data is text
            }
            values.emplace_back(loaded->IdAt(c, row));
          } else if (loaded->columns()[c].type == ColumnType::kId) {
            values.emplace_back(std::to_string(loaded->IdAt(c, row)));
          } else {
            values.emplace_back(loaded->TextAt(c, row));
          }
        }
        retyped.AppendRow(values);
      }
      db.AddRelation(std::move(retyped));
    } else if (parts[0] == "fk") {
      // fk A.x -> B.y
      if (parts.size() != 4 || parts[2] != "->") return std::nullopt;
      auto split_ref = [](const std::string& ref,
                          std::string* rel) -> std::optional<std::string> {
        size_t dot = ref.find('.');
        if (dot == std::string::npos) return std::nullopt;
        *rel = ref.substr(0, dot);
        return ref.substr(dot + 1);
      };
      PendingFk fk;
      auto from_col = split_ref(parts[1], &fk.from_rel);
      auto to_col = split_ref(parts[3], &fk.to_rel);
      if (!from_col || !to_col) return std::nullopt;
      fk.from_col = *from_col;
      fk.to_col = *to_col;
      fks.push_back(std::move(fk));
    } else {
      return std::nullopt;
    }
  }
  for (const PendingFk& fk : fks) {
    if (db.RelationIdByName(fk.from_rel) < 0 ||
        db.RelationIdByName(fk.to_rel) < 0) {
      return std::nullopt;
    }
    db.AddForeignKey(fk.from_rel, fk.from_col, fk.to_rel, fk.to_col);
  }
  db.BuildIndexes();
  return db;
}

}  // namespace qbe
