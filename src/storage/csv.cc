#include "storage/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

namespace qbe {
namespace {

bool ParsesAsInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::string EscapeCsv(std::string_view s) {
  bool needs_quotes = s.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(s);
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::optional<Relation> LoadRelationFromCsv(const std::string& relation_name,
                                            const std::string& path,
                                            std::string* error) {
  auto fail = [&](const std::string& message) -> std::optional<Relation> {
    if (error != nullptr) {
      *error = "relation '" + relation_name + "': " + message;
    }
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return fail("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return fail("missing header row in " + path);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> header = ParseCsvLine(line);
  if (header.empty()) return fail("empty header row in " + path);

  std::vector<std::vector<std::string>> raw_rows;
  int line_no = 1;  // the header was line 1
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(line);
    if (fields.size() != header.size()) {
      return fail("row " + std::to_string(raw_rows.size() + 1) + " (line " +
                  std::to_string(line_no) + ") has " +
                  std::to_string(fields.size()) + " fields, expected " +
                  std::to_string(header.size()));
    }
    raw_rows.push_back(std::move(fields));
  }

  // Infer column types: id iff every value parses as an integer.
  std::vector<ColumnDef> defs;
  for (size_t c = 0; c < header.size(); ++c) {
    bool all_int = !raw_rows.empty();
    int64_t unused;
    for (const auto& row : raw_rows) {
      if (!ParsesAsInt(row[c], &unused)) {
        all_int = false;
        break;
      }
    }
    defs.push_back(
        ColumnDef{header[c], all_int ? ColumnType::kId : ColumnType::kText});
  }

  Relation rel(relation_name, defs);
  for (const auto& raw : raw_rows) {
    std::vector<Value> values;
    values.reserve(raw.size());
    for (size_t c = 0; c < raw.size(); ++c) {
      if (defs[c].type == ColumnType::kId) {
        int64_t v = 0;
        ParsesAsInt(raw[c], &v);
        values.emplace_back(v);
      } else {
        values.emplace_back(raw[c]);
      }
    }
    rel.AppendRow(values);
  }
  return rel;
}

bool WriteRelationToCsv(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const auto& defs = relation.columns();
  for (size_t c = 0; c < defs.size(); ++c) {
    if (c > 0) out << ',';
    out << EscapeCsv(defs[c].name);
  }
  out << '\n';
  for (uint32_t row = 0; row < relation.num_rows(); ++row) {
    for (size_t c = 0; c < defs.size(); ++c) {
      if (c > 0) out << ',';
      if (defs[c].type == ColumnType::kId) {
        out << relation.IdAt(static_cast<int>(c), row);
      } else {
        out << EscapeCsv(relation.TextAt(static_cast<int>(c), row));
      }
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace qbe
