#ifndef QBE_STORAGE_TEXT_COLUMN_H_
#define QBE_STORAGE_TEXT_COLUMN_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "util/check.h"
#include "util/span_or_vec.h"

namespace qbe {

class SnapshotReader;
class SnapshotWriter;

/// One text column stored as a cell arena: all cell bytes concatenated plus
/// a cell-boundary offset array (size() + 1 entries, offsets_[0] == 0).
/// Compared to vector<std::string> this is one allocation instead of one
/// per cell, and — because both arrays are SpanOrVec — a snapshot load can
/// point the column straight into the mapped file with zero copies.
class TextColumnStore {
 public:
  TextColumnStore() = default;

  /// Appends one cell (owned/build mode only).
  void Append(std::string_view cell) {
    std::vector<char>& arena = arena_.MutableVec();
    std::vector<uint32_t>& offsets = offsets_.MutableVec();
    if (offsets.empty()) offsets.push_back(0);
    QBE_CHECK_MSG(arena.size() + cell.size() <= UINT32_MAX,
                  "text column arena exceeds 4 GiB");
    arena.insert(arena.end(), cell.begin(), cell.end());
    offsets.push_back(static_cast<uint32_t>(arena.size()));
  }

  uint32_t size() const {
    return offsets_.size() <= 1 ? 0
                                : static_cast<uint32_t>(offsets_.size() - 1);
  }
  bool empty() const { return size() == 0; }

  std::string_view operator[](uint32_t row) const {
    QBE_DCHECK(row < size());
    return std::string_view(arena_.data() + offsets_[row],
                            offsets_[row + 1] - offsets_[row]);
  }
  std::string_view At(uint32_t row) const { return (*this)[row]; }

  /// Forward iteration over cells as string_views (index-based; the arena
  /// has no per-cell objects to point at).
  class Iterator {
   public:
    Iterator(const TextColumnStore* col, uint32_t row)
        : col_(col), row_(row) {}
    std::string_view operator*() const { return (*col_)[row_]; }
    Iterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return row_ != other.row_; }
    bool operator==(const Iterator& other) const { return row_ == other.row_; }

   private:
    const TextColumnStore* col_;
    uint32_t row_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

  size_t arena_bytes() const { return arena_.size(); }
  size_t MemoryBytes() const {
    return arena_.OwnedBytes() + offsets_.OwnedBytes();
  }

 private:
  friend class SnapshotReader;
  friend class SnapshotWriter;

  SpanOrVec<char> arena_;
  SpanOrVec<uint32_t> offsets_;  // empty, or size()+1 ascending from 0
};

}  // namespace qbe

#endif  // QBE_STORAGE_TEXT_COLUMN_H_
