#ifndef QBE_STORAGE_DATABASE_H_
#define QBE_STORAGE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "text/column_index.h"
#include "text/inverted_index.h"
#include "text/token_dict.h"
#include "util/mmap_file.h"
#include "util/span_or_vec.h"

namespace qbe {

/// A labeled foreign-key reference: `from_rel.from_col` references the
/// primary key `to_rel.to_col`. These are the directed edges of the schema
/// graph (§2.1); multiple edges between the same pair of relations are
/// allowed and distinguished by `label`.
struct ForeignKey {
  int id;
  int from_rel;
  int from_col;
  int to_rel;
  int to_col;
  std::string label;
};

/// Reference to one column of one relation.
struct ColumnRef {
  int rel = -1;
  int col = -1;

  friend bool operator==(const ColumnRef& a, const ColumnRef& b) {
    return a.rel == b.rel && a.col == b.col;
  }
  friend bool operator<(const ColumnRef& a, const ColumnRef& b) {
    return a.rel != b.rel ? a.rel < b.rel : a.col < b.col;
  }
  bool valid() const { return rel >= 0; }
};

/// The in-memory database: relation catalog, foreign keys, and the offline
/// pre-processing artifacts of §3.1 — per-text-column FTS indexes, PK/FK
/// hash indexes for efficient join execution, and the master column index
/// (CI) for candidate generation. Build the content first (AddRelation /
/// AppendRow / AddForeignKey), then call BuildIndexes() exactly once.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers a relation and returns its id.
  int AddRelation(Relation relation);

  /// Declares a foreign key; columns are given by name. Returns the edge id.
  int AddForeignKey(const std::string& from_rel, const std::string& from_col,
                    const std::string& to_rel, const std::string& to_col);

  /// Offline pre-processing (§3.1): PK/FK hash indexes, per-edge join
  /// statistics, FTS indexes on all text columns, and the master column
  /// index CI.
  void BuildIndexes();

  /// Zero-copy cold start: maps a `.qbes` snapshot written by
  /// WriteSnapshot (src/snapshot/) and points relation columns, the token
  /// dictionary, the CSR text indexes and the join indexes at spans into
  /// the mapping. Only the CI directory is rebuilt at load; the key-lookup
  /// hash maps are deferred to the first PkLookup/FkLookup (EnsureKeyMaps).
  /// A corrupt, truncated or version-mismatched snapshot is
  /// rejected cleanly: returns std::nullopt with a description in
  /// `*error`, never crashes. Defined in src/snapshot/reader.cc.
  static std::optional<Database> OpenSnapshot(const std::string& path,
                                              std::string* error = nullptr);

  // --- catalog ------------------------------------------------------------

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const Relation& relation(int rel) const { return relations_[rel]; }
  Relation& mutable_relation(int rel) { return relations_[rel]; }
  int RelationIdByName(const std::string& name) const;

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const ForeignKey& foreign_key(int edge) const { return fks_[edge]; }

  /// Total column count and text column count across all relations
  /// (the "Columns" / "Text Columns" statistics of Table 2).
  int TotalColumns() const;
  int TotalTextColumns() const { return static_cast<int>(text_cols_.size()); }

  // --- text columns and indexes -------------------------------------------

  /// Dense global id of a text column, or -1 if `ref` is not a text column.
  int TextColumnGid(const ColumnRef& ref) const;
  /// Inverse of TextColumnGid.
  const ColumnRef& TextColumnByGid(int gid) const { return text_cols_[gid]; }

  const InvertedIndex& TextIndex(const ColumnRef& ref) const;
  const ColumnIndex& column_index() const { return ci_; }

  /// The database-wide token dictionary all FTS indexes intern into (valid
  /// after BuildIndexes). Heap-allocated so its address survives moves of
  /// the Database — the indexes hold pointers into it.
  const TokenDict& token_dict() const { return *dict_; }

  /// Human-readable "Relation.Column" name.
  std::string QualifiedColumnName(const ColumnRef& ref) const;

  // --- join-support indexes (valid after BuildIndexes) ---------------------

  /// Row of `rel` whose column `col` equals `key`, or -1. Requires the
  /// column to be a declared PK target of some foreign key (unique values).
  int64_t PkLookup(int rel, int col, int64_t key) const;

  /// Rows of `foreign_key(edge).from_rel` whose FK value equals `key`.
  const std::vector<uint32_t>* FkLookup(int edge, int64_t key) const;

  /// Rows of `to_rel` referenced by at least one `from_rel` row via `edge`
  /// (sorted distinct). Backs semijoins against an unfiltered child.
  std::span<const uint32_t> ReferencedRows(int edge) const;

  /// True iff every `from_rel` row's FK value has a matching PK row
  /// (referential integrity holds for this edge).
  bool EdgeHasNoDangling(int edge) const { return edge_no_dangling_[edge]; }

  /// Rows of `from_rel` whose FK value has a matching PK row.
  std::span<const uint32_t> ValidFromRows(int edge) const;

  /// Number of distinct FK values in `edge`'s referencing column — the
  /// denominator of the classic fanout estimate rows(from)/distinct(fk).
  /// Precomputed (and stored in snapshots) so the cardinality-stats path
  /// never forces the value-keyed hash maps to exist.
  size_t FkDistinctValues(int edge) const { return fk_distinct_[edge]; }

  /// Row of `to_rel` that `from_row` references via `edge`, or -1 if the FK
  /// value is dangling. Row-level join index: O(1) array read, no key
  /// extraction or hashing — the semijoin hot path.
  int32_t ParentRowOf(int edge, uint32_t from_row) const {
    return edge_join_[edge].parent_row[from_row];
  }

  /// Rows of `from_rel` referencing `to_row` via `edge`, ascending. O(1).
  std::span<const uint32_t> ChildRowsOf(int edge, uint32_t to_row) const {
    const EdgeJoinIndex& join = edge_join_[edge];
    return std::span<const uint32_t>(
        join.child_rows.data() + join.child_offsets[to_row],
        join.child_offsets[to_row + 1] - join.child_offsets[to_row]);
  }

  size_t MemoryBytes() const;

  /// Bytes of the snapshot file this database is mapped from (0 when built
  /// from source). These bytes are file-backed and evictable — they are
  /// deliberately not part of MemoryBytes().
  size_t MappedBytes() const {
    return mapping_ != nullptr ? mapping_->size() : 0;
  }

 private:
  friend class SnapshotReader;
  friend class SnapshotWriter;

  struct PkIndex {
    std::unordered_map<int64_t, uint32_t> row_by_key;
  };
  struct FkIndex {
    std::unordered_map<int64_t, std::vector<uint32_t>> rows_by_key;
  };
  /// Row-level join index of one FK edge: both directions resolved to row
  /// indexes at build time so semijoins never touch the value-keyed hashes.
  /// SpanOrVec: owned when built, aliased into the snapshot when mapped.
  struct EdgeJoinIndex {
    SpanOrVec<int32_t> parent_row;      // from-row → to-row, -1 dangling
    SpanOrVec<uint32_t> child_offsets;  // to-row → CSR begin; to_rows+1
    SpanOrVec<uint32_t> child_rows;     // referencing from-rows, ascending
  };

  /// Builds pk_indexes_ and fk_indexes_ from the id columns. Returns false
  /// iff `reject_duplicate_pk` and a PK target column holds duplicate
  /// values (a hard error at build time); in lenient mode the first row
  /// wins. Const + mutable targets: the lazy path runs under a const
  /// Database.
  bool BuildKeyMaps(bool reject_duplicate_pk) const;

  /// Lazily builds the value-keyed hash maps behind PkLookup/FkLookup.
  /// Snapshot-opened databases skip them entirely at load time — the
  /// executor only ever touches the mapped row-level join indexes — so the
  /// per-row hashing happens on first lookup, if ever. Thread-safe.
  void EnsureKeyMaps() const;

  // Set only by the snapshot loader: the file mapping every SpanOrVec in
  // mapped mode points into. Declared first so it is destroyed after every
  // structure whose spans alias it.
  std::unique_ptr<MemMap> mapping_;

  bool built_ = false;
  std::vector<Relation> relations_;
  std::unordered_map<std::string, int> rel_by_name_;
  std::vector<ForeignKey> fks_;

  std::vector<ColumnRef> text_cols_;                    // gid -> column
  std::vector<std::vector<int>> text_gid_;              // [rel][col] -> gid
  std::unique_ptr<TokenDict> dict_;                     // shared by all fts_
  std::vector<InvertedIndex> fts_;                      // by gid
  ColumnIndex ci_;

  // Value-keyed lookup maps: built eagerly by BuildIndexes (which needs
  // them to resolve edges anyway), lazily on first use after a snapshot
  // open. `mutable` + once_flag because the lazy build runs under const;
  // the flag lives on the heap so Database stays movable.
  mutable std::unordered_map<int64_t, PkIndex> pk_indexes_;  // rel*4096+col
  mutable std::vector<FkIndex> fk_indexes_;             // by edge id
  mutable bool key_maps_built_ = false;
  mutable std::unique_ptr<std::once_flag> key_maps_once_ =
      std::make_unique<std::once_flag>();
  std::vector<uint32_t> fk_distinct_;                   // by edge id
  std::vector<EdgeJoinIndex> edge_join_;                // by edge id
  std::vector<SpanOrVec<uint32_t>> referenced_rows_;    // by edge id
  std::vector<char> edge_no_dangling_;                  // by edge id
  std::vector<SpanOrVec<uint32_t>> valid_from_rows_;    // by edge id
};

}  // namespace qbe

#endif  // QBE_STORAGE_DATABASE_H_
