#ifndef QBE_STORAGE_RELATION_H_
#define QBE_STORAGE_RELATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "storage/text_column.h"
#include "util/check.h"
#include "util/span_or_vec.h"

namespace qbe {

/// Column type. Id columns hold 64-bit surrogate keys (primary keys and
/// foreign keys); text columns hold free text and are the only columns
/// keyword search — and therefore projection — is allowed on (§2.1).
enum class ColumnType { kId, kText };

struct ColumnDef {
  std::string name;
  ColumnType type;
};

/// Cell value for row construction.
using Value = std::variant<int64_t, std::string>;

/// Column-oriented in-memory relation. Values are stored per column so the
/// verification executor and the index builders touch only the columns they
/// need. Id columns are SpanOrVec and text columns arena-backed
/// TextColumnStore, so a snapshot load can alias every column into the
/// mapped file instead of rebuilding it.
class Relation {
 public:
  Relation(std::string name, std::vector<ColumnDef> columns);

  /// Appends one row; `values` must match the column count and types.
  void AppendRow(const std::vector<Value>& values);

  int64_t IdAt(int col, uint32_t row) const {
    QBE_DCHECK(defs_[col].type == ColumnType::kId);
    return id_store_[slot_[col]][row];
  }

  std::string_view TextAt(int col, uint32_t row) const {
    QBE_DCHECK(defs_[col].type == ColumnType::kText);
    return text_store_[slot_[col]][row];
  }

  /// Whole id column (for index construction).
  std::span<const int64_t> IdColumn(int col) const {
    QBE_DCHECK(defs_[col].type == ColumnType::kId);
    return id_store_[slot_[col]].span();
  }

  /// Whole text column (for index construction).
  const TextColumnStore& TextColumn(int col) const {
    QBE_DCHECK(defs_[col].type == ColumnType::kText);
    return text_store_[slot_[col]];
  }

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return defs_; }
  int num_columns() const { return static_cast<int>(defs_.size()); }
  uint32_t num_rows() const { return num_rows_; }

  /// Index of the column named `name`, or -1.
  int ColumnIndexByName(const std::string& name) const;

  size_t MemoryBytes() const;

 private:
  friend class SnapshotReader;
  friend class SnapshotWriter;

  std::string name_;
  std::vector<ColumnDef> defs_;
  std::vector<int> slot_;  // defs_[i] lives at {id,text}_store_[slot_[i]]
  std::vector<SpanOrVec<int64_t>> id_store_;
  std::vector<TextColumnStore> text_store_;
  uint32_t num_rows_ = 0;
};

}  // namespace qbe

#endif  // QBE_STORAGE_RELATION_H_
