#ifndef QBE_STORAGE_CSV_H_
#define QBE_STORAGE_CSV_H_

#include <optional>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace qbe {

/// Parses one CSV line with standard double-quote escaping.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Loads a relation from a CSV file. The header row provides column names;
/// a column whose every non-header value parses as an integer becomes an id
/// column, everything else a text column. Returns std::nullopt on I/O or
/// parse errors (ragged rows); `*error` then pinpoints the failure with the
/// relation name and the offending row/line number.
std::optional<Relation> LoadRelationFromCsv(const std::string& relation_name,
                                            const std::string& path,
                                            std::string* error = nullptr);

/// Writes `relation` to `path` (header + rows). Returns false on I/O error.
bool WriteRelationToCsv(const Relation& relation, const std::string& path);

}  // namespace qbe

#endif  // QBE_STORAGE_CSV_H_
