#ifndef QBE_STORAGE_CATALOG_IO_H_
#define QBE_STORAGE_CATALOG_IO_H_

#include <optional>
#include <string>

#include "storage/database.h"

namespace qbe {

/// Persists a database to `dir`: one CSV file per relation plus a
/// `schema.manifest` recording relation order, column types and foreign
/// keys. The format is deliberately human-editable — users can point the
/// loader at a directory of hand-made CSVs plus a manifest instead of
/// writing loader code.
///
/// Manifest grammar (one statement per line, '#' comments):
///   relation <name> <file.csv> <type>[,<type>...]   # type: id | text
///   fk <from_rel>.<from_col> -> <to_rel>.<to_col>
bool SaveDatabase(const Database& db, const std::string& dir);

/// Loads a database saved by SaveDatabase (or hand-authored in the same
/// format) and builds its indexes. On failure returns std::nullopt and, if
/// `error` is non-null, a description that distinguishes a bad path
/// (missing directory / manifest / CSV file) from a parse or schema error
/// (with the offending manifest line or file named). Tools surface this in
/// their startup messages.
std::optional<Database> LoadDatabase(const std::string& dir,
                                     std::string* error = nullptr);

}  // namespace qbe

#endif  // QBE_STORAGE_CATALOG_IO_H_
