#include "storage/database.h"

#include <algorithm>

#include "util/check.h"

namespace qbe {
namespace {

int64_t PkIndexKey(int rel, int col) {
  return static_cast<int64_t>(rel) * 4096 + col;
}

}  // namespace

int Database::AddRelation(Relation relation) {
  QBE_CHECK(!built_);
  QBE_CHECK_MSG(rel_by_name_.find(relation.name()) == rel_by_name_.end(),
                "duplicate relation name");
  int id = static_cast<int>(relations_.size());
  rel_by_name_[relation.name()] = id;
  relations_.push_back(std::move(relation));
  return id;
}

int Database::AddForeignKey(const std::string& from_rel,
                            const std::string& from_col,
                            const std::string& to_rel,
                            const std::string& to_col) {
  QBE_CHECK(!built_);
  int fr = RelationIdByName(from_rel);
  int tr = RelationIdByName(to_rel);
  QBE_CHECK_MSG(fr >= 0, from_rel.c_str());
  QBE_CHECK_MSG(tr >= 0, to_rel.c_str());
  int fc = relations_[fr].ColumnIndexByName(from_col);
  int tc = relations_[tr].ColumnIndexByName(to_col);
  QBE_CHECK_MSG(fc >= 0, from_col.c_str());
  QBE_CHECK_MSG(tc >= 0, to_col.c_str());
  QBE_CHECK(relations_[fr].columns()[fc].type == ColumnType::kId);
  QBE_CHECK(relations_[tr].columns()[tc].type == ColumnType::kId);
  int id = static_cast<int>(fks_.size());
  fks_.push_back(ForeignKey{id, fr, fc, tr, tc, from_col});
  return id;
}

int Database::RelationIdByName(const std::string& name) const {
  auto it = rel_by_name_.find(name);
  return it == rel_by_name_.end() ? -1 : it->second;
}

int Database::TotalColumns() const {
  int n = 0;
  for (const Relation& r : relations_) n += r.num_columns();
  return n;
}

void Database::BuildIndexes() {
  QBE_CHECK(!built_);
  built_ = true;

  // Text column gids + FTS + master column index.
  text_gid_.resize(relations_.size());
  for (int rel = 0; rel < num_relations(); ++rel) {
    const Relation& r = relations_[rel];
    text_gid_[rel].assign(r.num_columns(), -1);
    for (int col = 0; col < r.num_columns(); ++col) {
      if (r.columns()[col].type != ColumnType::kText) continue;
      int gid = static_cast<int>(text_cols_.size());
      text_gid_[rel][col] = gid;
      text_cols_.push_back(ColumnRef{rel, col});
    }
  }
  dict_ = std::make_unique<TokenDict>();
  fts_.resize(text_cols_.size());
  for (int gid = 0; gid < static_cast<int>(text_cols_.size()); ++gid) {
    const ColumnRef& ref = text_cols_[gid];
    fts_[gid].Build(relations_[ref.rel].TextColumn(ref.col), dict_.get());
    ci_.RegisterColumn(gid, &fts_[gid]);
  }

  // PK/FK hash indexes on the declared key columns.
  QBE_CHECK_MSG(BuildKeyMaps(/*reject_duplicate_pk=*/true),
                "duplicate primary key value");
  fk_distinct_.resize(fks_.size());
  for (const ForeignKey& fk : fks_) {
    fk_distinct_[fk.id] =
        static_cast<uint32_t>(fk_indexes_[fk.id].rows_by_key.size());
  }

  // Row-level join indexes and per-edge join statistics.
  edge_join_.resize(fks_.size());
  referenced_rows_.resize(fks_.size());
  edge_no_dangling_.assign(fks_.size(), 1);
  valid_from_rows_.resize(fks_.size());
  for (const ForeignKey& fk : fks_) {
    std::span<const int64_t> values =
        relations_[fk.from_rel].IdColumn(fk.from_col);
    const PkIndex& pk = pk_indexes_.at(PkIndexKey(fk.to_rel, fk.to_col));
    EdgeJoinIndex& join = edge_join_[fk.id];
    std::vector<uint32_t>& referenced = referenced_rows_[fk.id].MutableVec();
    std::vector<uint32_t>& valid_from = valid_from_rows_[fk.id].MutableVec();
    std::vector<int32_t> parent_row(values.size(), -1);
    for (uint32_t row = 0; row < values.size(); ++row) {
      auto it = pk.row_by_key.find(values[row]);
      if (it == pk.row_by_key.end()) {
        edge_no_dangling_[fk.id] = 0;
      } else {
        parent_row[row] = static_cast<int32_t>(it->second);
        valid_from.push_back(row);
        referenced.push_back(it->second);
      }
    }
    std::sort(referenced.begin(), referenced.end());
    referenced.erase(std::unique(referenced.begin(), referenced.end()),
                     referenced.end());

    // CSR of the reverse direction (to-row → referencing rows); filling in
    // ascending from-row order leaves each span sorted.
    const size_t to_rows = relations_[fk.to_rel].num_rows();
    std::vector<uint32_t> child_offsets(to_rows + 1, 0);
    for (int32_t parent : parent_row) {
      if (parent >= 0) ++child_offsets[parent + 1];
    }
    for (size_t i = 1; i <= to_rows; ++i) {
      child_offsets[i] += child_offsets[i - 1];
    }
    std::vector<uint32_t> child_rows(child_offsets[to_rows]);
    std::vector<uint32_t> cursor(child_offsets.begin(),
                                 child_offsets.end() - 1);
    for (uint32_t row = 0; row < values.size(); ++row) {
      int32_t parent = parent_row[row];
      if (parent >= 0) child_rows[cursor[parent]++] = row;
    }
    join.parent_row = std::move(parent_row);
    join.child_offsets = std::move(child_offsets);
    join.child_rows = std::move(child_rows);
  }
}

bool Database::BuildKeyMaps(bool reject_duplicate_pk) const {
  for (const ForeignKey& fk : fks_) {
    int64_t key = PkIndexKey(fk.to_rel, fk.to_col);
    if (pk_indexes_.find(key) != pk_indexes_.end()) continue;
    PkIndex index;
    std::span<const int64_t> values =
        relations_[fk.to_rel].IdColumn(fk.to_col);
    index.row_by_key.reserve(values.size());
    for (uint32_t row = 0; row < values.size(); ++row) {
      auto [it, inserted] = index.row_by_key.emplace(values[row], row);
      if (!inserted && reject_duplicate_pk) return false;
    }
    pk_indexes_.emplace(key, std::move(index));
  }
  fk_indexes_.clear();
  fk_indexes_.resize(fks_.size());
  for (const ForeignKey& fk : fks_) {
    std::span<const int64_t> values =
        relations_[fk.from_rel].IdColumn(fk.from_col);
    FkIndex& index = fk_indexes_[fk.id];
    for (uint32_t row = 0; row < values.size(); ++row) {
      index.rows_by_key[values[row]].push_back(row);
    }
  }
  key_maps_built_ = true;
  return true;
}

void Database::EnsureKeyMaps() const {
  std::call_once(*key_maps_once_, [this] {
    // A duplicate PK in a snapshot keeps the first row: the mapped join
    // indexes are the source of truth for joins, and a crafted file must
    // never turn a lookup into a crash.
    if (!key_maps_built_) BuildKeyMaps(/*reject_duplicate_pk=*/false);
  });
}

int Database::TextColumnGid(const ColumnRef& ref) const {
  QBE_DCHECK(built_);
  if (ref.rel < 0 || ref.rel >= num_relations()) return -1;
  const std::vector<int>& gids = text_gid_[ref.rel];
  if (ref.col < 0 || ref.col >= static_cast<int>(gids.size())) return -1;
  return gids[ref.col];
}

const InvertedIndex& Database::TextIndex(const ColumnRef& ref) const {
  int gid = TextColumnGid(ref);
  QBE_CHECK_MSG(gid >= 0, "not a text column");
  return fts_[gid];
}

std::string Database::QualifiedColumnName(const ColumnRef& ref) const {
  return relations_[ref.rel].name() + "." +
         relations_[ref.rel].columns()[ref.col].name;
}

int64_t Database::PkLookup(int rel, int col, int64_t key) const {
  EnsureKeyMaps();
  auto it = pk_indexes_.find(PkIndexKey(rel, col));
  QBE_CHECK_MSG(it != pk_indexes_.end(), "no pk index on column");
  auto row = it->second.row_by_key.find(key);
  if (row == it->second.row_by_key.end()) return -1;
  return static_cast<int64_t>(row->second);
}

const std::vector<uint32_t>* Database::FkLookup(int edge, int64_t key) const {
  EnsureKeyMaps();
  const FkIndex& index = fk_indexes_[edge];
  auto it = index.rows_by_key.find(key);
  return it == index.rows_by_key.end() ? nullptr : &it->second;
}

std::span<const uint32_t> Database::ReferencedRows(int edge) const {
  return referenced_rows_[edge].span();
}

std::span<const uint32_t> Database::ValidFromRows(int edge) const {
  return valid_from_rows_[edge].span();
}

size_t Database::MemoryBytes() const {
  size_t bytes = 0;
  for (const Relation& r : relations_) bytes += r.MemoryBytes();
  for (const InvertedIndex& index : fts_) bytes += index.MemoryBytes();
  if (dict_ != nullptr) bytes += dict_->MemoryBytes();
  bytes += ci_.MemoryBytes();
  for (const EdgeJoinIndex& join : edge_join_) {
    bytes += join.parent_row.OwnedBytes() + join.child_offsets.OwnedBytes() +
             join.child_rows.OwnedBytes();
  }
  for (const auto& rows : referenced_rows_) bytes += rows.OwnedBytes();
  for (const auto& rows : valid_from_rows_) bytes += rows.OwnedBytes();
  return bytes;
}

}  // namespace qbe
