#include "storage/relation.h"

namespace qbe {

Relation::Relation(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), defs_(std::move(columns)) {
  slot_.reserve(defs_.size());
  for (const ColumnDef& def : defs_) {
    if (def.type == ColumnType::kId) {
      slot_.push_back(static_cast<int>(id_store_.size()));
      id_store_.emplace_back();
    } else {
      slot_.push_back(static_cast<int>(text_store_.size()));
      text_store_.emplace_back();
    }
  }
}

void Relation::AppendRow(const std::vector<Value>& values) {
  QBE_CHECK(values.size() == defs_.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (defs_[i].type == ColumnType::kId) {
      QBE_CHECK_MSG(std::holds_alternative<int64_t>(values[i]),
                    defs_[i].name.c_str());
      id_store_[slot_[i]].MutableVec().push_back(std::get<int64_t>(values[i]));
    } else {
      QBE_CHECK_MSG(std::holds_alternative<std::string>(values[i]),
                    defs_[i].name.c_str());
      text_store_[slot_[i]].Append(std::get<std::string>(values[i]));
    }
  }
  ++num_rows_;
}

int Relation::ColumnIndexByName(const std::string& name) const {
  for (size_t i = 0; i < defs_.size(); ++i)
    if (defs_[i].name == name) return static_cast<int>(i);
  return -1;
}

size_t Relation::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : id_store_) bytes += col.OwnedBytes();
  for (const auto& col : text_store_) bytes += col.MemoryBytes();
  return bytes;
}

}  // namespace qbe
