#include "schema/join_tree.h"

#include "util/check.h"

namespace qbe {

int JoinTree::Degree(const SchemaGraph& graph, int vertex) const {
  int degree = 0;
  for (int e : graph.IncidentEdges(vertex)) {
    if (edges.Test(e)) ++degree;
  }
  return degree;
}

std::vector<int> JoinTree::LeafVertices(const SchemaGraph& graph) const {
  std::vector<int> leaves;
  verts.ForEach([&](int v) {
    if (Degree(graph, v) <= 1) leaves.push_back(v);
  });
  return leaves;
}

std::vector<int> JoinTree::Vertices() const {
  std::vector<int> out;
  verts.ForEach([&](int v) { out.push_back(v); });
  return out;
}

std::vector<int> JoinTree::EdgeIds() const {
  std::vector<int> out;
  edges.ForEach([&](int e) { out.push_back(e); });
  return out;
}

JoinTree ExtendTree(const JoinTree& tree, const SchemaGraph& graph,
                    int edge_id) {
  const SchemaGraph::Edge& e = graph.edge(edge_id);
  bool has_from = tree.verts.Test(e.from);
  bool has_to = tree.verts.Test(e.to);
  QBE_CHECK_MSG(has_from != has_to, "edge must reach exactly one new vertex");
  JoinTree out = tree;
  out.edges.Set(edge_id);
  out.verts.Set(has_from ? e.to : e.from);
  return out;
}

std::string JoinTreeToString(const JoinTree& tree, const SchemaGraph& graph,
                             const Database& db) {
  std::string out;
  if (tree.NumEdges() == 0) {
    tree.verts.ForEach(
        [&](int v) { out += db.relation(v).name(); });
    return out;
  }
  bool first = true;
  tree.edges.ForEach([&](int e) {
    if (!first) out += ", ";
    first = false;
    const SchemaGraph::Edge& edge = graph.edge(e);
    out += db.relation(edge.from).name();
    out += "->";
    out += db.relation(edge.to).name();
    out += "[" + db.foreign_key(e).label + "]";
  });
  return out;
}

}  // namespace qbe
