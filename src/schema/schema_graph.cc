#include "schema/schema_graph.h"

#include "util/check.h"

namespace qbe {

SchemaGraph::SchemaGraph(const Database& db)
    : num_vertices_(db.num_relations()) {
  QBE_CHECK_MSG(num_vertices_ <= RelationSet::kCapacity,
                "too many relations for RelationSet capacity");
  QBE_CHECK_MSG(static_cast<int>(db.foreign_keys().size()) <=
                    EdgeSet::kCapacity,
                "too many foreign keys for EdgeSet capacity");
  incident_.resize(num_vertices_);
  for (const ForeignKey& fk : db.foreign_keys()) {
    Edge e{fk.id, fk.from_rel, fk.to_rel};
    edges_.push_back(e);
    incident_[e.from].push_back(e.id);
    if (e.to != e.from) incident_[e.to].push_back(e.id);
  }
}

}  // namespace qbe
