#include "schema/subtree_enum.h"

#include <unordered_set>

namespace qbe {
namespace {

/// Breadth-first growth with global deduplication. Schema graphs are small
/// (≤ ~100 vertices, ≤ ~70 edges in the paper's datasets) and max_vertices
/// is ≤ 6, so the frontier stays tiny; the hash-set dedup keeps the
/// enumeration simple and provably complete (every tree of size k+1 is an
/// extension of one of its size-k subtrees).
void GrowTrees(const SchemaGraph& graph, int max_vertices,
               std::vector<JoinTree>& work,
               std::unordered_set<JoinTree, JoinTreeHash>& seen,
               std::vector<JoinTree>& out) {
  size_t head = 0;
  while (head < work.size()) {
    JoinTree tree = work[head++];
    if (tree.NumVertices() >= max_vertices) continue;
    std::vector<int> vertices = tree.Vertices();
    for (int v : vertices) {
      for (int e : graph.IncidentEdges(v)) {
        const SchemaGraph::Edge& edge = graph.edge(e);
        int other = graph.OtherEnd(e, v);
        if (edge.from == edge.to) continue;       // self-loop: never a tree edge
        if (tree.verts.Test(other)) continue;     // would close a cycle
        JoinTree extended = ExtendTree(tree, graph, e);
        if (seen.insert(extended).second) {
          out.push_back(extended);
          work.push_back(extended);
        }
      }
    }
  }
}

}  // namespace

std::vector<JoinTree> EnumerateSubtrees(const SchemaGraph& graph,
                                        int max_vertices,
                                        const RelationSet* required) {
  std::vector<JoinTree> out;
  if (max_vertices <= 0) return out;
  std::vector<JoinTree> work;
  std::unordered_set<JoinTree, JoinTreeHash> seen;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    if (required != nullptr && !required->Test(v)) continue;
    JoinTree single = JoinTree::Single(v);
    if (seen.insert(single).second) {
      out.push_back(single);
      work.push_back(single);
    }
  }
  GrowTrees(graph, max_vertices, work, seen, out);
  return out;
}

std::vector<JoinTree> EnumerateSubtreesOfTree(const JoinTree& tree,
                                              const SchemaGraph& graph) {
  std::vector<JoinTree> out;
  std::vector<JoinTree> work;
  std::unordered_set<JoinTree, JoinTreeHash> seen;
  tree.verts.ForEach([&](int v) {
    JoinTree single = JoinTree::Single(v);
    if (seen.insert(single).second) {
      out.push_back(single);
      work.push_back(single);
    }
  });
  // Same growth, but restricted to the host tree's edges.
  size_t head = 0;
  while (head < work.size()) {
    JoinTree current = work[head++];
    std::vector<int> vertices = current.Vertices();
    for (int v : vertices) {
      for (int e : graph.IncidentEdges(v)) {
        if (!tree.edges.Test(e)) continue;
        int other = graph.OtherEnd(e, v);
        if (current.verts.Test(other)) continue;
        JoinTree extended = ExtendTree(current, graph, e);
        if (seen.insert(extended).second) {
          out.push_back(extended);
          work.push_back(extended);
        }
      }
    }
  }
  return out;
}

}  // namespace qbe
