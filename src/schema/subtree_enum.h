#ifndef QBE_SCHEMA_SUBTREE_ENUM_H_
#define QBE_SCHEMA_SUBTREE_ENUM_H_

#include <vector>

#include "schema/join_tree.h"
#include "schema/schema_graph.h"

namespace qbe {

/// Enumerates every connected subtree of the schema graph with at most
/// `max_vertices` vertices (join trees with at most `max_vertices − 1`
/// joins — the paper's "maximal join length" l bounds this size). Trees are
/// deduplicated by their (vertex set, edge set) identity; note that a cyclic
/// schema region yields several distinct trees over the same vertex set.
///
/// If `required` is non-null, only trees whose vertex set intersects
/// `required` are seeded (an optimization for candidate generation, where
/// any useful tree must touch a relation holding a candidate projection
/// column).
std::vector<JoinTree> EnumerateSubtrees(const SchemaGraph& graph,
                                        int max_vertices,
                                        const RelationSet* required = nullptr);

/// Enumerates every connected subtree of `tree` (including all single-vertex
/// trees and `tree` itself). This is the filter universe generator of §5.1:
/// each candidate's filters range over its connected sub-join trees.
std::vector<JoinTree> EnumerateSubtreesOfTree(const JoinTree& tree,
                                              const SchemaGraph& graph);

}  // namespace qbe

#endif  // QBE_SCHEMA_SUBTREE_ENUM_H_
