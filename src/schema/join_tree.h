#ifndef QBE_SCHEMA_JOIN_TREE_H_
#define QBE_SCHEMA_JOIN_TREE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "schema/schema_graph.h"
#include "util/small_bitset.h"

namespace qbe {

/// A join tree J ⊆ G: a set of schema-graph vertices plus a set of edges
/// forming an undirected tree over them (Definition 3 condition i). Because
/// J is a *subgraph* of G, each relation appears at most once, which lets us
/// represent a tree as two small bitsets; subtree tests — the workhorse of
/// every dependency lemma — become subset tests.
struct JoinTree {
  RelationSet verts;
  EdgeSet edges;

  /// Single-relation tree.
  static JoinTree Single(int vertex) {
    JoinTree t;
    t.verts.Set(vertex);
    return t;
  }

  int NumVertices() const { return verts.Count(); }
  int NumEdges() const { return edges.Count(); }

  /// Number of joins executed when evaluating this tree.
  int NumJoins() const { return NumEdges(); }

  /// True iff this tree is a (connected) subtree of `other`. Both operands
  /// must be well-formed trees; for trees, vertex-subset + edge-subset is
  /// exactly the subtree relation.
  bool IsSubtreeOf(const JoinTree& other) const {
    return verts.IsSubsetOf(other.verts) && edges.IsSubsetOf(other.edges);
  }

  /// Degree of `vertex` counting only tree edges.
  int Degree(const SchemaGraph& graph, int vertex) const;

  /// Vertices with degree ≤ 1 (the "degree-1 relations" of Definition 3;
  /// a single-vertex tree's vertex is included).
  std::vector<int> LeafVertices(const SchemaGraph& graph) const;

  /// Vertices in ascending id order.
  std::vector<int> Vertices() const;
  /// Edge ids in ascending order.
  std::vector<int> EdgeIds() const;

  friend bool operator==(const JoinTree& a, const JoinTree& b) {
    return a.verts == b.verts && a.edges == b.edges;
  }

  size_t Hash() const { return verts.Hash() * 1000003 + edges.Hash(); }
};

struct JoinTreeHash {
  size_t operator()(const JoinTree& t) const { return t.Hash(); }
};

/// Extends `tree` with `edge_id`, which must have exactly one endpoint in
/// the tree; the other endpoint is added.
JoinTree ExtendTree(const JoinTree& tree, const SchemaGraph& graph,
                    int edge_id);

/// Debug rendering like "Sales-(0)-Customer, Sales-(1)-Device".
std::string JoinTreeToString(const JoinTree& tree, const SchemaGraph& graph,
                             const Database& db);

}  // namespace qbe

#endif  // QBE_SCHEMA_JOIN_TREE_H_
