#ifndef QBE_SCHEMA_SCHEMA_GRAPH_H_
#define QBE_SCHEMA_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "storage/database.h"
#include "util/small_bitset.h"

namespace qbe {

/// The directed schema graph G(V, E) of §2.1: vertices are relations, edges
/// are foreign-key references (possibly several between the same pair of
/// relations, distinguished by label). Join trees treat edges as undirected;
/// the stored direction (from = FK side, to = PK side) drives join
/// execution.
class SchemaGraph {
 public:
  struct Edge {
    int id;
    int from;  // FK-side relation
    int to;    // PK-side relation
  };

  /// Builds the schema graph from the database catalog.
  explicit SchemaGraph(const Database& db);

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const Edge& edge(int id) const { return edges_[id]; }

  /// Edges incident to `vertex` (in either direction).
  const std::vector<int>& IncidentEdges(int vertex) const {
    return incident_[vertex];
  }

  /// The endpoint of `edge_id` that is not `vertex`.
  int OtherEnd(int edge_id, int vertex) const {
    const Edge& e = edges_[edge_id];
    return e.from == vertex ? e.to : e.from;
  }

 private:
  int num_vertices_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> incident_;
};

}  // namespace qbe

#endif  // QBE_SCHEMA_SCHEMA_GRAPH_H_
