#ifndef QBE_QBE_H_
#define QBE_QBE_H_

// Umbrella header for the qbe library's public API: build a Database,
// pose an ExampleTable, call DiscoverQueries (or drive a DiscoverySession
// interactively, or stand up a concurrent DiscoveryService). See README.md
// for a walkthrough and DESIGN.md for the architecture.

#include "core/discovery.h"       // DiscoverQueries, DiscoveryOptions
#include "core/example_table.h"   // ExampleTable, EtCell
#include "core/explain.h"         // ExplainDiscovery
#include "core/keyword_search.h"  // DiscoverByKeywords
#include "core/session.h"         // DiscoverySession
#include "exec/sql_render.h"      // SQL rendering of discovered queries
#include "service/discovery_service.h"  // DiscoveryService, ServiceOptions
#include "service/metrics.h"            // MetricsRegistry
#include "storage/catalog_io.h"   // SaveDatabase / LoadDatabase
#include "storage/csv.h"          // LoadRelationFromCsv
#include "storage/database.h"     // Database, Relation, ForeignKey

#endif  // QBE_QBE_H_
