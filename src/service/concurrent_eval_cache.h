#ifndef QBE_SERVICE_CONCURRENT_EVAL_CACHE_H_
#define QBE_SERVICE_CONCURRENT_EVAL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/verifier.h"

namespace qbe {

/// Thread-safe EvalCacheBase: the outcome map is split into hash-selected
/// shards, each behind its own mutex, so concurrent discovery requests
/// contend only when their keys collide on a shard. One instance is shared
/// by every worker of a DiscoveryService — a verification outcome computed
/// for any request is served to all later requests over the same database,
/// which lifts the paper's §5 filter sharing from one run to the whole
/// serving process.
///
/// Entries are never evicted (outcomes are tiny — key string + bool — and
/// valid as long as the database is immutable, which Executor requires
/// anyway). hits/lookups are relaxed atomics: exact totals, no ordering
/// guarantees against concurrent Insert.
class ConcurrentEvalCache : public EvalCacheBase {
 public:
  explicit ConcurrentEvalCache(size_t num_shards = 16);

  std::optional<bool> Lookup(const std::string& key) override;
  void Insert(const std::string& key, bool outcome) override;

  int64_t hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }
  int64_t lookups() const override {
    return lookups_.load(std::memory_order_relaxed);
  }
  size_t size() const override;

  /// Fraction of lookups served from the cache; 0 before any lookup.
  double HitRate() const;

  size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, bool> outcomes;
  };

  Shard& ShardFor(const std::string& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> lookups_{0};
};

}  // namespace qbe

#endif  // QBE_SERVICE_CONCURRENT_EVAL_CACHE_H_
