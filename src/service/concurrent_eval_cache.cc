#include "service/concurrent_eval_cache.h"

#include <functional>

#include "util/check.h"

namespace qbe {

ConcurrentEvalCache::ConcurrentEvalCache(size_t num_shards) {
  QBE_CHECK(num_shards > 0);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ConcurrentEvalCache::Shard& ConcurrentEvalCache::ShardFor(
    const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<bool> ConcurrentEvalCache::Lookup(const std::string& key) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.outcomes.find(key);
  if (it == shard.outcomes.end()) return std::nullopt;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ConcurrentEvalCache::Insert(const std::string& key, bool outcome) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.outcomes.emplace(key, outcome);
}

size_t ConcurrentEvalCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->outcomes.size();
  }
  return total;
}

double ConcurrentEvalCache::HitRate() const {
  int64_t total = lookups();
  return total == 0 ? 0.0
                    : static_cast<double>(hits()) / static_cast<double>(total);
}

}  // namespace qbe
