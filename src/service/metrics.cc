#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace qbe {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  QBE_CHECK(!bounds_.empty());
  QBE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Mean() const {
  int64_t n = TotalCount();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Quantile(double q) const {
  int64_t n = TotalCount();
  if (n == 0) return 0.0;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::string Histogram::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.6g p50<=%.6g p99<=%.6g",
                static_cast<long long>(TotalCount()), Mean(), Quantile(0.5),
                Quantile(0.99));
  return buf;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  QBE_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, value] : gauges_) {
    snapshot.gauges.emplace_back(name, value);
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.name = name;
    data.bounds = histogram->bounds();
    data.buckets = histogram->BucketCounts();
    data.count = histogram->TotalCount();
    data.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(data));
  }
  return snapshot;
}

std::string MetricsRegistry::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  // The three maps are iterated separately but each is name-sorted; merge
  // into one sorted listing for a stable, greppable dump.
  std::vector<std::pair<std::string, std::string>> lines;
  for (const auto& [name, counter] : counters_) {
    lines.emplace_back(name, "counter   " + name + " " +
                                 std::to_string(counter->Value()));
  }
  for (const auto& [name, value] : gauges_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    lines.emplace_back(name, "gauge     " + name + " " + buf);
  }
  for (const auto& [name, histogram] : histograms_) {
    lines.emplace_back(name,
                       "histogram " + name + " " + histogram->ToString());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [name, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace qbe
