#include "service/workload.h"

#include <fstream>

#include "util/string_util.h"

namespace qbe {

std::optional<ExampleTable> ParseRequestLine(const std::string& line,
                                             std::string* error) {
  std::vector<std::vector<std::string>> rows;
  for (const std::string& row_text : SplitString(line, ';')) {
    rows.push_back(SplitString(row_text, '|'));
  }
  const size_t width = rows[0].size();
  bool any_cell = false;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() > width) {
      if (error != nullptr) {
        *error = "row " + std::to_string(r + 1) + " has " +
                 std::to_string(rows[r].size()) + " cells, wider than the " +
                 std::to_string(width) + "-column first row";
      }
      return std::nullopt;
    }
    for (const std::string& cell : rows[r]) {
      if (!cell.empty()) any_cell = true;
    }
  }
  if (!any_cell) {
    if (error != nullptr) *error = "no non-empty cells";
    return std::nullopt;
  }
  ExampleTable et = ExampleTable::WithColumns(static_cast<int>(width));
  for (std::vector<std::string>& row : rows) {
    row.resize(width);  // narrower rows pad with unconstrained cells
    et.AddRow(row);
  }
  return et;
}

bool LoadRequestFile(const std::string& path, std::vector<ExampleTable>* out,
                     std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "failed to read " + path;
    return false;
  }
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::string reason;
    std::optional<ExampleTable> et = ParseRequestLine(line, &reason);
    if (!et.has_value()) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(line_number) + ": " + reason +
                 ": \"" + line + "\"";
      }
      return false;
    }
    out->push_back(std::move(*et));
  }
  return true;
}

}  // namespace qbe
