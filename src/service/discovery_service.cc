#include "service/discovery_service.h"

#include <cstdio>
#include <utility>

#include "kernels/kernels.h"
#include "obs/prom.h"
#include "obs/slow_log.h"
#include "shard/coordinator.h"
#include "shard/partition.h"
#include "util/deadline.h"
#include "util/hash64.h"
#include "util/stopwatch.h"

namespace qbe {

const char* ToString(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kTimedOut:
      return "timed_out";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

namespace {

/// Work buckets: 1 .. ~1M verifications per request.
std::vector<double> WorkBuckets() { return ExponentialBuckets(1.0, 4.0, 11); }

/// Queue-depth buckets: 1 .. 1024 requests waiting.
std::vector<double> DepthBuckets() { return ExponentialBuckets(1.0, 2.0, 11); }

}  // namespace

std::vector<double> DiscoveryService::LatencyBounds() const {
  // Default: 100 µs .. ~100 s; overridable per deployment.
  return options_.latency_buckets.empty()
             ? ExponentialBuckets(1e-4, 2.0, 21)
             : options_.latency_buckets;
}

/// Everything a request carries through the pool: the input, its deadline
/// token (armed at admission so queue time counts against the SLA), the
/// admission timestamp, and the promise the client's future is bound to.
struct DiscoveryService::Request {
  ExampleTable et;
  DeadlineToken deadline;
  bool has_deadline = false;
  Stopwatch since_admission;
  std::promise<ServiceResponse> promise;
  /// Set for SubmitAsync requests; such a request resolves through the
  /// callback instead of the promise (see Deliver).
  std::function<void(ServiceResponse)> done;
  /// Service-wide submission sequence number (the sampling input).
  uint64_t seq = 0;
  /// Armed iff this request was sampled for tracing.
  std::unique_ptr<TraceContext> trace;

  explicit Request(ExampleTable table) : et(std::move(table)) {}
};

namespace {

std::vector<Database> OneShard(Database db) {
  std::vector<Database> shards;
  shards.push_back(std::move(db));
  return shards;
}

/// Per-shard suffix for WAL/snapshot paths in sharded mode; unsharded
/// deployments keep their paths verbatim.
std::string ShardPath(const std::string& path, int shard, int num_shards) {
  if (path.empty() || num_shards == 1) return path;
  return path + ".shard" + std::to_string(shard);
}

}  // namespace

DiscoveryService::DiscoveryService(Database db, ServiceOptions options)
    : DiscoveryService(OneShard(std::move(db)), std::move(options)) {}

DiscoveryService::DiscoveryService(std::vector<Database> shards,
                                   ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_shards),
      pool_(std::make_unique<ThreadPool>(options_.num_workers,
                                         options_.max_queue_depth)) {
  for (Database& shard : shards) {
    lives_.push_back(std::make_unique<LiveDatabase>(std::move(shard)));
  }
  const int n = num_shards();
  sampler_.rate = options_.trace_sample;
  sampler_.seed = options_.trace_seed;
  if (options_.discovery.verify.threads > 1) {
    // One shared verification pool for all requests; each request's
    // ParallelFor rounds borrow whichever of these workers are idle. The
    // deep queue is back-pressure only — verify tasks never submit to this
    // pool themselves, so it cannot deadlock.
    verify_pool_ = std::make_unique<ThreadPool>(
        options_.discovery.verify.threads, /*max_queue_depth=*/1024);
  }
  if (!options_.wal_path.empty()) {
    // Sharded mode logs each shard's ops into its own WAL (append routing
    // is deterministic, so replaying each shard's log reproduces the same
    // placement).
    for (int s = 0; s < n; ++s) {
      std::string shard_error;
      if (!lives_[s]->AttachWal(ShardPath(options_.wal_path, s, n),
                                &shard_error)) {
        metrics_.GetCounter("wal_attach_failed").Increment();
        if (wal_error_.empty()) wal_error_ = std::move(shard_error);
      }
    }
  }
  if (options_.compact_after_ops > 0) {
    for (int s = 0; s < n; ++s) {
      Compactor::Options co;
      co.ops_threshold = options_.compact_after_ops;
      co.snapshot_path = ShardPath(options_.compact_snapshot_path, s, n);
      co.on_compaction = [this](const CompactionStats& stats) {
        RecordCompaction(stats);
      };
      co.on_error = [this](const std::string&) {
        metrics_.GetCounter("compactions_failed").Increment();
      };
      compactors_.push_back(
          std::make_unique<Compactor>(lives_[s].get(), std::move(co)));
    }
  }
}

DiscoveryService::~DiscoveryService() { Shutdown(); }

std::future<ServiceResponse> DiscoveryService::Submit(
    ExampleTable et, std::optional<std::chrono::milliseconds> timeout) {
  auto request = std::make_shared<Request>(std::move(et));
  std::future<ServiceResponse> future = request->promise.get_future();
  Admit(std::move(request), timeout);
  return future;
}

void DiscoveryService::SubmitAsync(
    ExampleTable et, std::optional<std::chrono::milliseconds> timeout,
    std::function<void(ServiceResponse)> done) {
  auto request = std::make_shared<Request>(std::move(et));
  request->done = std::move(done);
  Admit(std::move(request), timeout);
}

void DiscoveryService::Deliver(Request& request, ServiceResponse&& response) {
  if (request.done) {
    request.done(std::move(response));
  } else {
    request.promise.set_value(std::move(response));
  }
}

void DiscoveryService::Admit(
    std::shared_ptr<Request> request,
    std::optional<std::chrono::milliseconds> timeout) {
  metrics_.GetCounter("requests_received").Increment();

  auto finish_now = [&](RequestStatus status) {
    ServiceResponse response;
    response.status = status;
    Deliver(*request, std::move(response));
  };

  if (!accepting_.load(std::memory_order_acquire)) {
    metrics_.GetCounter("requests_shutdown").Increment();
    finish_now(RequestStatus::kShutdown);
    return;
  }

  std::chrono::milliseconds budget =
      timeout.has_value() ? *timeout : options_.default_timeout;
  if (budget.count() != 0) {
    request->deadline.SetTimeout(budget);
    request->has_deadline = true;
  }

  // The sampling decision is made here, at submission, from the sequence
  // number alone — deterministic for a replayed workload no matter how the
  // worker pool interleaves execution.
  request->seq = request_seq_.fetch_add(1, std::memory_order_relaxed);
  if (options_.trace_sample > 0.0 && sampler_.Sample(request->seq)) {
    request->trace = std::make_unique<TraceContext>();
    request->trace->set_request_id(request->seq);
  }

  bool admitted =
      pool_->TrySubmit([this, request] { Run(request); });
  if (!admitted) {
    // Queue full (or the pool began stopping underneath us): fast-fail.
    metrics_.GetCounter("requests_rejected").Increment();
    finish_now(accepting_.load(std::memory_order_acquire)
                   ? RequestStatus::kRejected
                   : RequestStatus::kShutdown);
    return;
  }
  metrics_.GetCounter("requests_admitted").Increment();
  metrics_.GetHistogram("queue_depth_at_admission", DepthBuckets())
      .Observe(static_cast<double>(pool_->QueueDepth()));
}

ServiceResponse DiscoveryService::Discover(
    const ExampleTable& et, std::optional<std::chrono::milliseconds> timeout) {
  return Submit(et, timeout).get();
}

void DiscoveryService::Run(const std::shared_ptr<Request>& request) {
  double queued = request->since_admission.ElapsedSeconds();
  metrics_.GetHistogram("queue_seconds", LatencyBounds()).Observe(queued);
  if (options_.on_request_start) options_.on_request_start();

  DiscoveryOptions options = options_.discovery;
  options.cache = &cache_;
  options.deadline = request->has_deadline ? &request->deadline : nullptr;
  options.verify_pool = verify_pool_.get();
  TraceContext* trace = request->trace.get();
  options.trace = trace;

  // Root span: everything discovery records on this worker thread nests
  // under it; verify-pool lanes attach via VerifyContext::trace_parent.
  SpanRef request_span =
      trace == nullptr ? kNullSpan : trace->OpenSpan(SpanKind::kRequest);

  // Pin the epoch current right now — every shard's — so the whole
  // discovery reads one consistent base+delta snapshot per shard, kept
  // alive across any concurrent appends or compactions. The (combined)
  // epoch namespaces the shared eval cache, so outcomes never cross data
  // versions.
  std::vector<DbVersion> versions;
  versions.reserve(lives_.size());
  for (const auto& live : lives_) versions.push_back(live->Pin());

  DiscoveryResult result;
  ShardStats shard_stats;
  if (num_shards() == 1) {
    result = DiscoverQueries(versions[0].view(), request->et, options,
                             versions[0].epoch);
  } else {
    // Combined cache epoch: a deterministic digest of the per-shard
    // epochs — 0 (the "pristine" namespace) iff every shard is pristine,
    // else forced nonzero so mutated and pristine states never share
    // cache entries.
    std::vector<uint64_t> epochs;
    epochs.reserve(versions.size());
    bool any_nonzero = false;
    for (const DbVersion& version : versions) {
      epochs.push_back(version.epoch);
      any_nonzero = any_nonzero || version.epoch != 0;
    }
    uint64_t epoch = 0;
    if (any_nonzero) {
      epoch = Hash64(epochs.data(), epochs.size() * sizeof(uint64_t));
      if (epoch == 0) epoch = 1;
    }
    std::vector<DbView> views;
    views.reserve(versions.size());
    for (const DbVersion& version : versions) views.push_back(version.view());
    result = DiscoverQueriesSharded(views, request->et, options, epoch,
                                    &shard_stats);
  }
  if (trace != nullptr) trace->CloseSpan(request_span);

  ServiceResponse response;
  response.queue_seconds = queued;
  response.latency_seconds = request->since_admission.ElapsedSeconds();
  if (result.timed_out) {
    response.status = RequestStatus::kTimedOut;
    metrics_.GetCounter("requests_timed_out").Increment();
  } else if (!result.ok()) {
    response.status = RequestStatus::kFailed;
    metrics_.GetCounter("requests_failed").Increment();
  } else {
    response.status = RequestStatus::kOk;
    metrics_.GetCounter("requests_completed").Increment();
    metrics_.GetCounter("queries_discovered")
        .Increment(static_cast<int64_t>(result.queries.size()));
    metrics_.GetHistogram("verifications_per_request", WorkBuckets())
        .Observe(static_cast<double>(result.counters.verifications));
    metrics_.GetCounter("match_cache_hits")
        .Increment(result.counters.match_cache_hits);
    metrics_.GetCounter("match_cache_lookups")
        .Increment(result.counters.match_cache_lookups);
  }
  // Per-shard scatter-gather traffic and balance (sharded mode only;
  // observation-only, like everything else here).
  for (size_t s = 0; s < shard_stats.per_shard.size(); ++s) {
    const auto& shard = shard_stats.per_shard[s];
    const std::string suffix = "_s" + std::to_string(s);
    metrics_.GetCounter("shard_probes" + suffix).Increment(shard.probes);
    metrics_.GetCounter("shard_hits" + suffix).Increment(shard.hits);
    metrics_.GetCounter("shard_skipped_empty" + suffix)
        .Increment(shard.skipped_empty);
    metrics_.GetHistogram("shard_busy_seconds", LatencyBounds())
        .Observe(shard.busy_seconds);
  }
  if (num_shards() > 1) {
    metrics_.SetGauge("shard_straggler_ratio", shard_stats.straggler_ratio);
  }
  metrics_.GetHistogram("latency_seconds", LatencyBounds())
      .Observe(response.latency_seconds);

  bool traced = false;
  Trace stitched;
  if (trace != nullptr) {
    stitched = trace->Stitch();
    traced = true;
    metrics_.GetCounter("requests_traced").Increment();
    // Per-phase rollups: one latency histogram per span kind observed, so
    // the exporter shows where sampled requests spend their time.
    for (size_t k = 0; k < static_cast<size_t>(SpanKind::kNumKinds); ++k) {
      const SpanKind kind = static_cast<SpanKind>(k);
      const int64_t ns = stitched.PhaseNs(kind);
      if (ns <= 0) continue;
      metrics_
          .GetHistogram(std::string("phase_seconds_") + SpanKindName(kind),
                        LatencyBounds())
          .Observe(static_cast<double>(ns) * 1e-9);
    }
    std::lock_guard<std::mutex> lock(traces_mu_);
    recent_traces_.push_back(stitched);
    while (recent_traces_.size() > options_.trace_keep) {
      recent_traces_.pop_front();
    }
  }

  if (options_.slow_query_ms >= 0.0 &&
      response.latency_seconds * 1000.0 >= options_.slow_query_ms) {
    SlowQueryRecord record;
    record.request_id = request->seq;
    record.status = ToString(response.status);
    record.latency_seconds = response.latency_seconds;
    record.queue_seconds = queued;
    record.et_rows = request->et.num_rows();
    record.et_cols = request->et.num_columns();
    record.candidates = static_cast<int64_t>(result.num_candidates);
    record.verifications = result.counters.verifications;
    record.queries = static_cast<int64_t>(result.queries.size());
    record.kernel_level = KernelLevelName(ActiveKernelLevel());
    record.traced = traced;
    if (traced) {
      for (size_t k = 0; k < static_cast<size_t>(SpanKind::kNumKinds); ++k) {
        const SpanKind kind = static_cast<SpanKind>(k);
        const int64_t ns = stitched.PhaseNs(kind);
        if (ns <= 0) continue;
        record.phases.emplace_back(SpanKindName(kind),
                                   static_cast<double>(ns) * 1e-9);
      }
    }
    const std::string line = SlowQueryJson(record);
    if (options_.slow_query_sink) {
      options_.slow_query_sink(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
    metrics_.GetCounter("slow_queries_logged").Increment();
  }

  response.result = std::move(result);
  Deliver(*request, std::move(response));
}

std::vector<Trace> DiscoveryService::RecentTraces() const {
  std::lock_guard<std::mutex> lock(traces_mu_);
  return {recent_traces_.begin(), recent_traces_.end()};
}

std::string DiscoveryService::ChromeTraces() const {
  return ChromeTraceJson(RecentTraces());
}

bool DiscoveryService::Append(int rel, std::vector<Value> values,
                              std::string* error) {
  if (num_shards() == 1) {
    if (!lives_[0]->Append(rel, std::move(values), error)) {
      metrics_.GetCounter("appends_rejected").Increment();
      return false;
    }
    metrics_.GetCounter("rows_appended").Increment();
    return true;
  }

  // Sharded: route first (RouteAppend pins every shard to inspect live
  // relatives), then append to the chosen shard. The mutex serializes
  // route+append so concurrent appends of related rows see each other.
  std::lock_guard<std::mutex> lock(route_mu_);
  std::vector<DbVersion> versions;
  std::vector<DbView> views;
  versions.reserve(lives_.size());
  views.reserve(lives_.size());
  for (const auto& live : lives_) {
    versions.push_back(live->Pin());
    views.push_back(versions.back().view());
  }
  const int shard =
      RouteAppend(views, rel, values, options_.shard_seed, error);
  if (shard < 0 || !lives_[shard]->Append(rel, std::move(values), error)) {
    metrics_.GetCounter("appends_rejected").Increment();
    return false;
  }
  metrics_.GetCounter("rows_appended").Increment();
  return true;
}

bool DiscoveryService::AppendBatch(int rel,
                                   std::vector<std::vector<Value>> rows,
                                   std::string* error) {
  const int64_t n = static_cast<int64_t>(rows.size());
  if (num_shards() == 1) {
    if (!lives_[0]->AppendBatch(rel, std::move(rows), error)) {
      metrics_.GetCounter("appends_rejected").Increment(n);
      return false;
    }
    metrics_.GetCounter("rows_appended").Increment(n);
    return true;
  }

  // Sharded batches route and apply row by row (a later row may be
  // constrained by an earlier one — e.g. a parent and its children in one
  // batch). Not all-or-nothing across shards: on failure, rows before the
  // offending one stay applied and `*error` says how many.
  for (int64_t i = 0; i < n; ++i) {
    if (!Append(rel, std::move(rows[i]), error)) {
      metrics_.GetCounter("appends_rejected").Increment(n - i - 1);
      if (error != nullptr) {
        *error += " (batch row " + std::to_string(i) + "; prior rows kept)";
      }
      return false;
    }
  }
  return true;
}

bool DiscoveryService::Tombstone(int rel, uint32_t row, std::string* error) {
  if (num_shards() > 1) {
    if (error != nullptr) {
      *error = "row ids are shard-local in sharded mode; use TombstoneAt";
    }
    metrics_.GetCounter("tombstones_rejected").Increment();
    return false;
  }
  return TombstoneAt(0, rel, row, error);
}

bool DiscoveryService::TombstoneAt(int shard, int rel, uint32_t row,
                                   std::string* error) {
  if (shard < 0 || shard >= num_shards()) {
    if (error != nullptr) {
      *error = "no such shard " + std::to_string(shard);
    }
    metrics_.GetCounter("tombstones_rejected").Increment();
    return false;
  }
  if (!lives_[shard]->Tombstone(rel, row, error)) {
    metrics_.GetCounter("tombstones_rejected").Increment();
    return false;
  }
  metrics_.GetCounter("rows_tombstoned").Increment();
  return true;
}

bool DiscoveryService::Flush(std::string* error) {
  for (const auto& live : lives_) {
    if (!live->Flush(error)) return false;
  }
  return true;
}

bool DiscoveryService::CompactNow(std::string* error, CompactionStats* stats) {
  const int n = num_shards();
  for (int s = 0; s < n; ++s) {
    CompactionStats local;
    CompactionStats* out = (stats != nullptr && s == 0) ? stats : &local;
    if (!lives_[s]->Compact(ShardPath(options_.compact_snapshot_path, s, n),
                            error, out)) {
      metrics_.GetCounter("compactions_failed").Increment();
      return false;
    }
    if (out->epoch != 0) RecordCompaction(*out);
  }
  return true;
}

void DiscoveryService::RecordCompaction(const CompactionStats& stats) {
  metrics_.GetCounter("compactions").Increment();
  metrics_.GetCounter("compacted_appends")
      .Increment(static_cast<int64_t>(stats.merged_appends));
  metrics_.GetCounter("compacted_tombstones")
      .Increment(static_cast<int64_t>(stats.merged_tombstones));
  metrics_.GetHistogram("compaction_seconds", LatencyBounds())
      .Observe(stats.seconds);
}

void DiscoveryService::Shutdown() {
  accepting_.store(false, std::memory_order_release);
  // Stop the compactors first: a merge mid-teardown would race the pools'
  // drain (and its epoch publish would be pointless anyway).
  for (const auto& compactor : compactors_) compactor->Stop();
  pool_->Shutdown();  // drains queued + in-flight; their promises resolve
  // Only after every request drained: stop the verification workers.
  if (verify_pool_ != nullptr) verify_pool_->Shutdown();
}

void DiscoveryService::RefreshGauges() {
  metrics_.SetGauge("eval_cache_size", static_cast<double>(cache_.size()));
  metrics_.SetGauge("eval_cache_hit_rate", cache_.HitRate());
  metrics_.SetGauge("eval_cache_lookups",
                    static_cast<double>(cache_.lookups()));
  metrics_.SetGauge("queue_depth", static_cast<double>(pool_->QueueDepth()));
  metrics_.SetGauge("worker_threads",
                    static_cast<double>(pool_->num_threads()));
  metrics_.SetGauge("verify_threads",
                    verify_pool_ == nullptr
                        ? 1.0
                        : static_cast<double>(verify_pool_->num_threads()));
  // Summed across shards (unsharded = the single live database's values).
  double epoch = 0.0, delta_rows = 0.0, tombstones = 0.0;
  bool all_wals = true;
  for (const auto& live : lives_) {
    epoch += static_cast<double>(live->epoch());
    delta_rows += static_cast<double>(live->delta_rows());
    tombstones += static_cast<double>(live->tombstones());
    all_wals = all_wals && live->has_wal();
  }
  metrics_.SetGauge("db_epoch", epoch);
  metrics_.SetGauge("delta_rows", delta_rows);
  metrics_.SetGauge("delta_tombstones", tombstones);
  metrics_.SetGauge("wal_attached", all_wals ? 1.0 : 0.0);
  metrics_.SetGauge("num_shards", static_cast<double>(num_shards()));
  // 0 = scalar, 1 = sse, 2 = avx2 (KernelLevel enum values) — which SIMD
  // dispatch level the verification hot path runs under.
  metrics_.SetGauge("kernel_level",
                    static_cast<double>(ActiveKernelLevel()));
}

std::string DiscoveryService::MetricsDump() {
  RefreshGauges();
  return metrics_.Dump();
}

std::string DiscoveryService::PrometheusMetrics() {
  RefreshGauges();
  return PrometheusText(metrics_);
}

}  // namespace qbe
