#include "service/discovery_service.h"

#include <utility>

#include "util/deadline.h"
#include "util/stopwatch.h"

namespace qbe {

const char* ToString(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kTimedOut:
      return "timed_out";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

namespace {

/// Latency buckets: 100 µs .. ~100 s.
std::vector<double> LatencyBuckets() {
  return ExponentialBuckets(1e-4, 2.0, 21);
}

/// Work buckets: 1 .. ~1M verifications per request.
std::vector<double> WorkBuckets() { return ExponentialBuckets(1.0, 4.0, 11); }

/// Queue-depth buckets: 1 .. 1024 requests waiting.
std::vector<double> DepthBuckets() { return ExponentialBuckets(1.0, 2.0, 11); }

}  // namespace

/// Everything a request carries through the pool: the input, its deadline
/// token (armed at admission so queue time counts against the SLA), the
/// admission timestamp, and the promise the client's future is bound to.
struct DiscoveryService::Request {
  ExampleTable et;
  DeadlineToken deadline;
  bool has_deadline = false;
  Stopwatch since_admission;
  std::promise<ServiceResponse> promise;

  explicit Request(ExampleTable table) : et(std::move(table)) {}
};

DiscoveryService::DiscoveryService(Database db, ServiceOptions options)
    : live_(std::move(db)),
      options_(std::move(options)),
      cache_(options_.cache_shards),
      pool_(std::make_unique<ThreadPool>(options_.num_workers,
                                         options_.max_queue_depth)) {
  if (options_.discovery.verify.threads > 1) {
    // One shared verification pool for all requests; each request's
    // ParallelFor rounds borrow whichever of these workers are idle. The
    // deep queue is back-pressure only — verify tasks never submit to this
    // pool themselves, so it cannot deadlock.
    verify_pool_ = std::make_unique<ThreadPool>(
        options_.discovery.verify.threads, /*max_queue_depth=*/1024);
  }
  if (!options_.wal_path.empty() &&
      !live_.AttachWal(options_.wal_path, &wal_error_)) {
    metrics_.GetCounter("wal_attach_failed").Increment();
  }
  if (options_.compact_after_ops > 0) {
    Compactor::Options co;
    co.ops_threshold = options_.compact_after_ops;
    co.snapshot_path = options_.compact_snapshot_path;
    co.on_compaction = [this](const CompactionStats& stats) {
      RecordCompaction(stats);
    };
    co.on_error = [this](const std::string&) {
      metrics_.GetCounter("compactions_failed").Increment();
    };
    compactor_ = std::make_unique<Compactor>(&live_, std::move(co));
  }
}

DiscoveryService::~DiscoveryService() { Shutdown(); }

std::future<ServiceResponse> DiscoveryService::Submit(
    ExampleTable et, std::optional<std::chrono::milliseconds> timeout) {
  auto request = std::make_shared<Request>(std::move(et));
  std::future<ServiceResponse> future = request->promise.get_future();
  metrics_.GetCounter("requests_received").Increment();

  auto finish_now = [&](RequestStatus status) {
    ServiceResponse response;
    response.status = status;
    request->promise.set_value(std::move(response));
    return std::move(future);
  };

  if (!accepting_.load(std::memory_order_acquire)) {
    metrics_.GetCounter("requests_shutdown").Increment();
    return finish_now(RequestStatus::kShutdown);
  }

  std::chrono::milliseconds budget =
      timeout.has_value() ? *timeout : options_.default_timeout;
  if (budget.count() != 0) {
    request->deadline.SetTimeout(budget);
    request->has_deadline = true;
  }

  bool admitted =
      pool_->TrySubmit([this, request] { Run(request); });
  if (!admitted) {
    // Queue full (or the pool began stopping underneath us): fast-fail.
    metrics_.GetCounter("requests_rejected").Increment();
    return finish_now(accepting_.load(std::memory_order_acquire)
                          ? RequestStatus::kRejected
                          : RequestStatus::kShutdown);
  }
  metrics_.GetCounter("requests_admitted").Increment();
  metrics_.GetHistogram("queue_depth_at_admission", DepthBuckets())
      .Observe(static_cast<double>(pool_->QueueDepth()));
  return future;
}

ServiceResponse DiscoveryService::Discover(
    const ExampleTable& et, std::optional<std::chrono::milliseconds> timeout) {
  return Submit(et, timeout).get();
}

void DiscoveryService::Run(const std::shared_ptr<Request>& request) {
  double queued = request->since_admission.ElapsedSeconds();
  metrics_.GetHistogram("queue_seconds", LatencyBuckets()).Observe(queued);
  if (options_.on_request_start) options_.on_request_start();

  DiscoveryOptions options = options_.discovery;
  options.cache = &cache_;
  options.deadline = request->has_deadline ? &request->deadline : nullptr;
  options.verify_pool = verify_pool_.get();

  // Pin the epoch current right now: the whole discovery reads this one
  // consistent base+delta snapshot, and the pin keeps it alive across any
  // concurrent appends or compactions. The epoch namespaces the shared
  // eval cache, so outcomes never cross data versions.
  const DbVersion version = live_.Pin();
  DiscoveryResult result =
      DiscoverQueries(version.view(), request->et, options, version.epoch);

  ServiceResponse response;
  response.queue_seconds = queued;
  response.latency_seconds = request->since_admission.ElapsedSeconds();
  if (result.timed_out) {
    response.status = RequestStatus::kTimedOut;
    metrics_.GetCounter("requests_timed_out").Increment();
  } else if (!result.ok()) {
    response.status = RequestStatus::kFailed;
    metrics_.GetCounter("requests_failed").Increment();
  } else {
    response.status = RequestStatus::kOk;
    metrics_.GetCounter("requests_completed").Increment();
    metrics_.GetCounter("queries_discovered")
        .Increment(static_cast<int64_t>(result.queries.size()));
    metrics_.GetHistogram("verifications_per_request", WorkBuckets())
        .Observe(static_cast<double>(result.counters.verifications));
    metrics_.GetCounter("match_cache_hits")
        .Increment(result.counters.match_cache_hits);
    metrics_.GetCounter("match_cache_lookups")
        .Increment(result.counters.match_cache_lookups);
  }
  metrics_.GetHistogram("latency_seconds", LatencyBuckets())
      .Observe(response.latency_seconds);
  response.result = std::move(result);
  request->promise.set_value(std::move(response));
}

bool DiscoveryService::Append(int rel, std::vector<Value> values,
                              std::string* error) {
  if (!live_.Append(rel, std::move(values), error)) {
    metrics_.GetCounter("appends_rejected").Increment();
    return false;
  }
  metrics_.GetCounter("rows_appended").Increment();
  return true;
}

bool DiscoveryService::AppendBatch(int rel,
                                   std::vector<std::vector<Value>> rows,
                                   std::string* error) {
  const int64_t n = static_cast<int64_t>(rows.size());
  if (!live_.AppendBatch(rel, std::move(rows), error)) {
    metrics_.GetCounter("appends_rejected").Increment(n);
    return false;
  }
  metrics_.GetCounter("rows_appended").Increment(n);
  return true;
}

bool DiscoveryService::Tombstone(int rel, uint32_t row, std::string* error) {
  if (!live_.Tombstone(rel, row, error)) {
    metrics_.GetCounter("tombstones_rejected").Increment();
    return false;
  }
  metrics_.GetCounter("rows_tombstoned").Increment();
  return true;
}

bool DiscoveryService::Flush(std::string* error) { return live_.Flush(error); }

bool DiscoveryService::CompactNow(std::string* error, CompactionStats* stats) {
  CompactionStats local;
  if (stats == nullptr) stats = &local;
  if (!live_.Compact(options_.compact_snapshot_path, error, stats)) {
    metrics_.GetCounter("compactions_failed").Increment();
    return false;
  }
  if (stats->epoch != 0) RecordCompaction(*stats);
  return true;
}

void DiscoveryService::RecordCompaction(const CompactionStats& stats) {
  metrics_.GetCounter("compactions").Increment();
  metrics_.GetCounter("compacted_appends")
      .Increment(static_cast<int64_t>(stats.merged_appends));
  metrics_.GetCounter("compacted_tombstones")
      .Increment(static_cast<int64_t>(stats.merged_tombstones));
  metrics_.GetHistogram("compaction_seconds", LatencyBuckets())
      .Observe(stats.seconds);
}

void DiscoveryService::Shutdown() {
  accepting_.store(false, std::memory_order_release);
  // Stop the compactor first: a merge mid-teardown would race the pools'
  // drain (and its epoch publish would be pointless anyway).
  if (compactor_ != nullptr) compactor_->Stop();
  pool_->Shutdown();  // drains queued + in-flight; their promises resolve
  // Only after every request drained: stop the verification workers.
  if (verify_pool_ != nullptr) verify_pool_->Shutdown();
}

std::string DiscoveryService::MetricsDump() {
  metrics_.SetGauge("eval_cache_size", static_cast<double>(cache_.size()));
  metrics_.SetGauge("eval_cache_hit_rate", cache_.HitRate());
  metrics_.SetGauge("eval_cache_lookups",
                    static_cast<double>(cache_.lookups()));
  metrics_.SetGauge("queue_depth", static_cast<double>(pool_->QueueDepth()));
  metrics_.SetGauge("worker_threads",
                    static_cast<double>(pool_->num_threads()));
  metrics_.SetGauge("verify_threads",
                    verify_pool_ == nullptr
                        ? 1.0
                        : static_cast<double>(verify_pool_->num_threads()));
  metrics_.SetGauge("db_epoch", static_cast<double>(live_.epoch()));
  metrics_.SetGauge("delta_rows", static_cast<double>(live_.delta_rows()));
  metrics_.SetGauge("delta_tombstones",
                    static_cast<double>(live_.tombstones()));
  metrics_.SetGauge("wal_attached", live_.has_wal() ? 1.0 : 0.0);
  return metrics_.Dump();
}

}  // namespace qbe
