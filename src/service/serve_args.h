#ifndef QBE_SERVICE_SERVE_ARGS_H_
#define QBE_SERVICE_SERVE_ARGS_H_

#include <optional>
#include <string>

#include "core/discovery.h"

namespace qbe {

/// Parsed qbe_serve command line. Extracted from the tool so the parser is
/// unit-testable (tests/service_test.cc) and strict: an unknown flag, a
/// flag missing its value, or an out-of-range value sets `error` (naming
/// the offending flag) instead of being silently ignored.
struct ServeArgs {
  std::string dataset = "retailer";
  std::string snapshot_path;
  std::string requests_file;
  double scale = 0.1;
  int repeat = 4;
  int clients = 8;
  int append_mix = 0;  // percent of client ops that are row appends
  int workers = 4;
  size_t queue_depth = 32;
  long long timeout_ms = 0;  // 0 = none; -1 = expired (timeout test hook)
  std::string wal_path;
  size_t compact_after = 0;
  std::string compact_snapshot;
  int verify_threads = 1;
  std::string algorithm = "filter";

  // --- sharded mode (DESIGN.md §15) ----------------------------------------
  /// Split the built/generated dataset into this many FK-co-located shards
  /// at startup (1 = unsharded).
  int shards = 1;
  /// Partition mode for --shards: "hash" | "range".
  std::string shard_mode = "hash";
  /// Placement-hash seed for --shards (and append routing).
  long long shard_seed = 0;
  /// Serve pre-split per-shard snapshots named by a `qbe_shard split`
  /// manifest instead of splitting at startup. Excludes --shards.
  std::string shardset_path;

  // --- networked serving (DESIGN.md §16) -----------------------------------
  /// Serve the wire protocol on this loopback TCP port instead of replaying
  /// a workload in-process. < 0 = batch-replay mode; 0 = ephemeral port.
  int listen_port = -1;
  /// Write the bound listen port (one decimal line) here once serving —
  /// how CI scripts find an ephemeral --listen 0 port.
  std::string port_file;
  /// Connection cap for --listen; accepts beyond it get a typed
  /// kServerBusy error frame.
  size_t max_conns = 256;
  /// Idle keep-alive connections are closed (typed kIdleTimeout frame)
  /// after this many milliseconds; 0 disables the sweep.
  long long idle_timeout_ms = 60'000;

  // --- observability (DESIGN.md §13) ---------------------------------------
  /// Loopback HTTP port serving GET /metrics (Prometheus text) and
  /// GET /traces (Chrome trace JSON). < 0 = no endpoint; 0 = ephemeral.
  int metrics_port = -1;
  /// Fraction of requests traced (deterministic sampling), in [0, 1].
  double trace_sample = 0.0;
  /// Slow-query log threshold in milliseconds; < 0 = off, 0 = log all.
  double slow_query_ms = -1.0;
  /// Write the run's sampled traces as Chrome trace JSON here at exit.
  std::string trace_out;

  /// --help / -h was given: print usage, exit 0.
  bool show_usage = false;
  /// Empty = parsed OK; otherwise why parsing failed, naming the flag.
  std::string error;

  bool ok() const { return error.empty(); }
};

/// Strictly parses argv (argv[0] is skipped). Never exits or prints.
ServeArgs ParseServeArgs(int argc, const char* const* argv);

/// The usage text qbe_serve prints on --help or a parse error.
std::string ServeUsage();

/// "verifyall" | "simpleprune" | "filter" | "filterexact" | "weave" → the
/// Algorithm, or nullopt.
std::optional<Algorithm> ParseAlgorithmName(const std::string& name);

}  // namespace qbe

#endif  // QBE_SERVICE_SERVE_ARGS_H_
