#ifndef QBE_SERVICE_DISCOVERY_SERVICE_H_
#define QBE_SERVICE_DISCOVERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/example_table.h"
#include "ingest/compactor.h"
#include "ingest/live_db.h"
#include "obs/trace.h"
#include "service/concurrent_eval_cache.h"
#include "service/metrics.h"
#include "storage/database.h"
#include "util/thread_pool.h"

namespace qbe {

/// How a request left the service.
enum class RequestStatus {
  kOk,        // discovery ran to completion
  kRejected,  // fast-fail: the admission queue was full
  kTimedOut,  // the per-request deadline expired mid-verification
  kFailed,    // discovery refused the input (malformed ET, ...)
  kShutdown,  // submitted after Shutdown() began
};

const char* ToString(RequestStatus status);

struct ServiceResponse {
  RequestStatus status = RequestStatus::kOk;
  /// Meaningful only for kOk (and kFailed/kTimedOut, whose `error` is set).
  DiscoveryResult result;
  /// Submit-to-completion wall time (includes queueing); 0 for rejects.
  double latency_seconds = 0.0;
  /// Time spent waiting in the admission queue.
  double queue_seconds = 0.0;

  bool ok() const { return status == RequestStatus::kOk; }
};

struct ServiceOptions {
  /// Worker threads running discoveries.
  int num_workers = 4;
  /// Admission bound: requests beyond this many queued are rejected
  /// immediately (fast-fail), never buffered unboundedly.
  size_t max_queue_depth = 32;
  /// Per-request deadline applied from admission time; zero = none.
  /// Overridable per request in Submit.
  std::chrono::milliseconds default_timeout{0};
  /// Shards of the shared verification-outcome cache.
  size_t cache_shards = 16;
  /// Base discovery options for every request; `cache`, `deadline` and
  /// `verify_pool` are overwritten by the service. Setting
  /// `discovery.verify.threads` > 1 makes the service own one shared
  /// verification pool of that many workers; every request fans its CQ-row
  /// and filter evaluations out over it (idle verify workers are shared
  /// across concurrent requests rather than being spawned per request).
  DiscoveryOptions discovery;
  /// Test seam: runs on the worker thread right before a request's
  /// discovery starts (e.g. a latch that holds the worker busy so
  /// admission-control tests can fill the queue deterministically).
  std::function<void()> on_request_start;

  /// WAL to replay and arm at construction ("" = no WAL). Its ops become
  /// the starting overlay; subsequent Append/Tombstone calls are logged
  /// and durable after Flush. A log inconsistent with the database refuses
  /// to attach: the service still starts (read-only-safe) and wal_error()
  /// carries the reason.
  std::string wal_path;

  /// Background compaction: fold the overlay into a fresh base once this
  /// many ops are logged (0 = background compaction off; CompactNow still
  /// works).
  size_t compact_after_ops = 0;

  /// Snapshot refresh target for compaction. Required (by
  /// LiveDatabase::Compact) whenever a WAL is attached.
  std::string compact_snapshot_path;

  // --- observability (DESIGN.md §13) ---------------------------------------

  /// Fraction of requests traced, in [0, 1]. 0 = tracing off (the default;
  /// plain runs are bit-identical to an uninstrumented build). Sampling is
  /// deterministic: request n — the service-wide submission sequence
  /// number — is traced iff splitmix64(trace_seed, n) < rate·2^64, so a
  /// replayed workload samples the same requests.
  double trace_sample = 0.0;

  /// Seed of the sampling decision (and of nothing else).
  uint64_t trace_seed = 42;

  /// Stitched traces of the most recent sampled requests kept in memory
  /// for RecentTraces()/ChromeTraces() (ring buffer; oldest evicted).
  size_t trace_keep = 16;

  /// Structured slow-query log: a finished request whose end-to-end
  /// latency is >= this many milliseconds emits one JSON line (see
  /// obs/slow_log.h) through `slow_query_sink`. < 0 disables the log
  /// (default); 0 logs every request (useful in tests).
  double slow_query_ms = -1.0;

  /// Receives slow-query JSON lines (one object per call, no trailing
  /// newline). Default (unset): write to stderr. May be called from any
  /// worker thread; the sink must be thread-safe.
  std::function<void(const std::string&)> slow_query_sink;

  /// Upper bounds (seconds, ascending) of every latency-shaped histogram
  /// (queue_seconds, latency_seconds, compaction_seconds, phase_seconds_*).
  /// Empty = the default 100 µs .. ~100 s exponential ladder. Injectable so
  /// sub-millisecond deployments get resolution instead of one fat bucket.
  std::vector<double> latency_buckets;

  // --- sharded mode (DESIGN.md §15) ----------------------------------------

  /// Routing seed for appends in sharded mode; must equal the partition
  /// seed the shards were split with so unconstrained rows hash onto the
  /// same shards their future relatives will.
  uint64_t shard_seed = 0;
};

/// Concurrent discovery server: owns the live database (immutable base +
/// mutable ingestion overlay), a fixed worker pool, a bounded admission
/// queue, a sharded verification cache shared by all requests, and a
/// metrics registry. This is the architectural seam between the
/// single-threaded discovery kernel and a network frontend: Submit is the
/// whole request lifecycle — admission (reject when the queue is full),
/// queueing, deadline-bounded execution, and a future carrying the
/// response. Each request pins the epoch current at execution start and
/// sees that consistent snapshot for its whole run, no matter how many
/// appends, tombstones or compactions land meanwhile.
///
/// Thread safety: Submit/Discover may be called from any number of client
/// threads. Shutdown drains queued and in-flight requests (their futures
/// all resolve) and is idempotent; requests submitted during or after
/// shutdown resolve immediately with kShutdown.
class DiscoveryService {
 public:
  explicit DiscoveryService(Database db, ServiceOptions options = {});

  /// Sharded mode (DESIGN.md §15): one LiveDatabase per FK-co-located
  /// shard (from SplitDatabase or a shardset manifest; all sharing one
  /// catalog). Requests pin every shard's epoch and run the deterministic
  /// scatter-gather engine (DiscoverQueriesSharded) — results are
  /// bit-identical to serving the unpartitioned data. Appends route
  /// through RouteAppend so co-location survives ingestion. A one-element
  /// vector behaves exactly like the unsharded constructor.
  DiscoveryService(std::vector<Database> shards, ServiceOptions options);
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Submits one discovery request. `timeout` overrides the service-wide
  /// default (zero = no deadline). The deadline clock starts now, at
  /// admission — queue time counts against it, as an end-to-end SLA would.
  std::future<ServiceResponse> Submit(
      ExampleTable et,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Callback flavor of Submit for event-driven frontends (the epoll wire
  /// server, DESIGN.md §16): `done` fires exactly once with the response —
  /// on a worker thread for executed requests, or synchronously on the
  /// submitting thread for fast-fail paths (queue full, shutdown). The
  /// same admission control, deadlines, metrics, tracing and graceful
  /// drain apply as for the future flavor.
  void SubmitAsync(ExampleTable et,
                   std::optional<std::chrono::milliseconds> timeout,
                   std::function<void(ServiceResponse)> done);

  /// Blocking convenience wrapper around Submit.
  ServiceResponse Discover(
      const ExampleTable& et,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Stops admitting, drains queued + in-flight requests, joins workers.
  void Shutdown();

  // --- live ingestion (DESIGN.md §12) --------------------------------------
  //
  // Appends/tombstones publish a new epoch immediately; requests already
  // running keep their pinned epoch (consistent snapshots), requests
  // admitted afterwards see the new data. All mutators are thread-safe.

  /// Admits one appended row. On rejection (bad arity/type, duplicate PK)
  /// nothing changes and `*error` explains why.
  bool Append(int rel, std::vector<Value> values, std::string* error);

  /// Admits a batch under one epoch publish (all-or-nothing).
  bool AppendBatch(int rel, std::vector<std::vector<Value>> rows,
                   std::string* error);

  /// Deletes the live row with global id `row` of relation `rel`. In
  /// sharded mode row ids are shard-local, so this fails with an error
  /// directing callers to TombstoneAt.
  bool Tombstone(int rel, uint32_t row, std::string* error);

  /// Sharded-mode tombstone: deletes shard-local row `row` of `rel` in
  /// shard `shard`. Works unsharded too (shard must be 0).
  bool TombstoneAt(int shard, int rel, uint32_t row, std::string* error);

  /// Fsyncs the WAL; appends are durable after this returns (no-op without
  /// a WAL).
  bool Flush(std::string* error);

  /// Synchronously folds the overlay into a fresh base (and refreshes the
  /// snapshot per ServiceOptions::compact_snapshot_path).
  bool CompactNow(std::string* error, CompactionStats* stats = nullptr);

  /// Catalog/data of the currently published epoch (shard 0 in sharded
  /// mode — the catalog is shard-invariant). The reference is stable until
  /// the next compaction swaps the base (fine for single-threaded test
  /// setup; concurrent readers should Pin via live()).
  const Database& db() const { return *lives_[0]->Pin().base; }
  LiveDatabase& live() { return *lives_[0]; }
  int num_shards() const { return static_cast<int>(lives_.size()); }
  LiveDatabase& live_shard(int shard) { return *lives_[shard]; }
  /// Why ServiceOptions::wal_path failed to attach ("" = attached or none).
  const std::string& wal_error() const { return wal_error_; }
  ConcurrentEvalCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Metrics dump with cache gauges (size, hit rate) refreshed; the text
  /// the qbe_serve harness prints.
  std::string MetricsDump();

  /// Prometheus text exposition of the same metrics (gauges refreshed);
  /// what `qbe_serve --metrics-port` serves at GET /metrics.
  std::string PrometheusMetrics();

  /// Stitched traces of the most recent sampled requests, oldest first
  /// (bounded by ServiceOptions::trace_keep).
  std::vector<Trace> RecentTraces() const;

  /// RecentTraces() rendered as Chrome trace-event JSON (GET /traces).
  std::string ChromeTraces() const;

 private:
  struct Request;

  /// Shared admission path of Submit/SubmitAsync: deadline arming, trace
  /// sampling, bounded-queue admission, fast-fail delivery.
  void Admit(std::shared_ptr<Request> request,
             std::optional<std::chrono::milliseconds> timeout);
  /// Resolves the request — through its callback when one is set, else its
  /// promise. Called exactly once per request.
  static void Deliver(Request& request, ServiceResponse&& response);
  void Run(const std::shared_ptr<Request>& request);
  void RecordCompaction(const CompactionStats& stats);
  void RefreshGauges();
  /// Latency-histogram bounds: options_.latency_buckets or the default.
  std::vector<double> LatencyBounds() const;

  // One LiveDatabase per shard (unsharded = one entry); unique_ptr keeps
  // addresses stable across vector growth during construction.
  std::vector<std::unique_ptr<LiveDatabase>> lives_;
  ServiceOptions options_;
  std::string wal_error_;
  // Serializes route-then-append in sharded mode: without it two
  // concurrent appends of related rows could both route unconstrained and
  // land on different shards, severing a future join edge.
  std::mutex route_mu_;
  ConcurrentEvalCache cache_;
  MetricsRegistry metrics_;
  std::atomic<bool> accepting_{true};
  TraceSampler sampler_;
  std::atomic<uint64_t> request_seq_{0};
  mutable std::mutex traces_mu_;
  std::deque<Trace> recent_traces_;  // newest at the back
  // Shared intra-request verification pool (null when
  // discovery.verify.threads <= 1). Declared before pool_ so it outlives
  // the request workers that submit to it.
  std::unique_ptr<ThreadPool> verify_pool_;
  // Declared after the members Run touches so its destructor (which joins
  // workers running Run) fires first, while they are still alive.
  std::unique_ptr<ThreadPool> pool_;
  // Declared last: stopped/destroyed first so no compaction runs while the
  // service tears down. One compactor per shard in sharded mode.
  std::vector<std::unique_ptr<Compactor>> compactors_;
};

}  // namespace qbe

#endif  // QBE_SERVICE_DISCOVERY_SERVICE_H_
