#ifndef QBE_SERVICE_DISCOVERY_SERVICE_H_
#define QBE_SERVICE_DISCOVERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>

#include "core/discovery.h"
#include "core/example_table.h"
#include "service/concurrent_eval_cache.h"
#include "service/metrics.h"
#include "storage/database.h"
#include "util/thread_pool.h"

namespace qbe {

/// How a request left the service.
enum class RequestStatus {
  kOk,        // discovery ran to completion
  kRejected,  // fast-fail: the admission queue was full
  kTimedOut,  // the per-request deadline expired mid-verification
  kFailed,    // discovery refused the input (malformed ET, ...)
  kShutdown,  // submitted after Shutdown() began
};

const char* ToString(RequestStatus status);

struct ServiceResponse {
  RequestStatus status = RequestStatus::kOk;
  /// Meaningful only for kOk (and kFailed/kTimedOut, whose `error` is set).
  DiscoveryResult result;
  /// Submit-to-completion wall time (includes queueing); 0 for rejects.
  double latency_seconds = 0.0;
  /// Time spent waiting in the admission queue.
  double queue_seconds = 0.0;

  bool ok() const { return status == RequestStatus::kOk; }
};

struct ServiceOptions {
  /// Worker threads running discoveries.
  int num_workers = 4;
  /// Admission bound: requests beyond this many queued are rejected
  /// immediately (fast-fail), never buffered unboundedly.
  size_t max_queue_depth = 32;
  /// Per-request deadline applied from admission time; zero = none.
  /// Overridable per request in Submit.
  std::chrono::milliseconds default_timeout{0};
  /// Shards of the shared verification-outcome cache.
  size_t cache_shards = 16;
  /// Base discovery options for every request; `cache`, `deadline` and
  /// `verify_pool` are overwritten by the service. Setting
  /// `discovery.verify.threads` > 1 makes the service own one shared
  /// verification pool of that many workers; every request fans its CQ-row
  /// and filter evaluations out over it (idle verify workers are shared
  /// across concurrent requests rather than being spawned per request).
  DiscoveryOptions discovery;
  /// Test seam: runs on the worker thread right before a request's
  /// discovery starts (e.g. a latch that holds the worker busy so
  /// admission-control tests can fill the queue deterministically).
  std::function<void()> on_request_start;
};

/// Concurrent discovery server: owns the (immutable, indexed) database, a
/// fixed worker pool, a bounded admission queue, a sharded verification
/// cache shared by all requests, and a metrics registry. This is the
/// architectural seam between the single-threaded discovery kernel and a
/// network frontend: Submit is the whole request lifecycle — admission
/// (reject when the queue is full), queueing, deadline-bounded execution,
/// and a future carrying the response.
///
/// Thread safety: Submit/Discover may be called from any number of client
/// threads. Shutdown drains queued and in-flight requests (their futures
/// all resolve) and is idempotent; requests submitted during or after
/// shutdown resolve immediately with kShutdown.
class DiscoveryService {
 public:
  explicit DiscoveryService(Database db, ServiceOptions options = {});
  ~DiscoveryService();

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Submits one discovery request. `timeout` overrides the service-wide
  /// default (zero = no deadline). The deadline clock starts now, at
  /// admission — queue time counts against it, as an end-to-end SLA would.
  std::future<ServiceResponse> Submit(
      ExampleTable et,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Blocking convenience wrapper around Submit.
  ServiceResponse Discover(
      const ExampleTable& et,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Stops admitting, drains queued + in-flight requests, joins workers.
  void Shutdown();

  const Database& db() const { return db_; }
  ConcurrentEvalCache& cache() { return cache_; }
  MetricsRegistry& metrics() { return metrics_; }

  /// Metrics dump with cache gauges (size, hit rate) refreshed; the text
  /// the qbe_serve harness prints.
  std::string MetricsDump();

 private:
  struct Request;

  void Run(const std::shared_ptr<Request>& request);

  Database db_;
  ServiceOptions options_;
  ConcurrentEvalCache cache_;
  MetricsRegistry metrics_;
  std::atomic<bool> accepting_{true};
  // Shared intra-request verification pool (null when
  // discovery.verify.threads <= 1). Declared before pool_ so it outlives
  // the request workers that submit to it.
  std::unique_ptr<ThreadPool> verify_pool_;
  // Declared last so its destructor (which joins workers running Run) fires
  // first, while the members Run touches are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace qbe

#endif  // QBE_SERVICE_DISCOVERY_SERVICE_H_
