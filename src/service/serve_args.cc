#include "service/serve_args.h"

#include <cstdint>
#include <cstdlib>

namespace qbe {

namespace {

bool ParseLong(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

bool ParseDouble(const char* s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

std::string ServeUsage() {
  return
      "usage: qbe_serve [--dataset retailer|imdb] [--scale S]\n"
      "                 [--snapshot FILE.qbes] [--wal FILE.qbel]\n"
      "                 [--requests FILE] [--repeat R]\n"
      "                 [--clients N] [--workers N] [--queue-depth N]\n"
      "                 [--append-mix P] [--compact-after N]\n"
      "                 [--compact-snapshot FILE.qbes]\n"
      "                 [--timeout-ms T] [--verify-threads N]\n"
      "                 [--algorithm "
      "verifyall|simpleprune|filter|filterexact|weave]\n"
      "                 [--listen PORT] [--port-file FILE]\n"
      "                 [--max-conns N] [--idle-timeout-ms T]\n"
      "                 [--metrics-port P] [--trace-sample F]\n"
      "                 [--slow-query-ms T] [--trace-out FILE.json]\n"
      "                 [--shards N] [--shard-mode hash|range]\n"
      "                 [--shard-seed S] [--shardset FILE.shardset]\n";
}

std::optional<Algorithm> ParseAlgorithmName(const std::string& name) {
  if (name == "verifyall") return Algorithm::kVerifyAll;
  if (name == "simpleprune") return Algorithm::kSimplePrune;
  if (name == "filter") return Algorithm::kFilter;
  if (name == "filterexact") return Algorithm::kFilterExact;
  if (name == "weave") return Algorithm::kWeave;
  return std::nullopt;
}

ServeArgs ParseServeArgs(int argc, const char* const* argv) {
  ServeArgs args;
  auto fail = [&](const std::string& why) {
    if (args.error.empty()) args.error = why;
  };

  for (int i = 1; i < argc && args.ok(); ++i) {
    const std::string arg = argv[i];
    // Consumes the flag's value; fails (returning null) when it is absent.
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        fail("missing value for " + arg);
        return nullptr;
      }
      return argv[++i];
    };
    auto long_value = [&](long long lo, long long hi) -> long long {
      const char* v = value();
      long long n = 0;
      if (v == nullptr) return 0;
      if (!ParseLong(v, &n) || n < lo || n > hi) {
        fail("bad value for " + arg + ": " + v);
        return 0;
      }
      return n;
    };
    auto double_value = [&](double lo, double hi) -> double {
      const char* v = value();
      double d = 0.0;
      if (v == nullptr) return 0.0;
      if (!ParseDouble(v, &d) || d < lo || d > hi) {
        fail("bad value for " + arg + ": " + v);
        return 0.0;
      }
      return d;
    };

    if (arg == "--help" || arg == "-h") {
      args.show_usage = true;
    } else if (arg == "--dataset") {
      if (const char* v = value()) args.dataset = v;
    } else if (arg == "--scale") {
      args.scale = double_value(1e-6, 1e6);
    } else if (arg == "--snapshot") {
      if (const char* v = value()) args.snapshot_path = v;
    } else if (arg == "--requests") {
      if (const char* v = value()) args.requests_file = v;
    } else if (arg == "--repeat") {
      args.repeat = static_cast<int>(long_value(1, 1'000'000));
    } else if (arg == "--clients") {
      args.clients = static_cast<int>(long_value(1, 4096));
    } else if (arg == "--workers") {
      args.workers = static_cast<int>(long_value(1, 4096));
    } else if (arg == "--queue-depth") {
      args.queue_depth = static_cast<size_t>(long_value(1, 1'000'000));
    } else if (arg == "--timeout-ms") {
      // -1 = already-expired deadline (drives the timeout path in tests),
      // 0 = no timeout.
      args.timeout_ms = long_value(-1, 86'400'000);
    } else if (arg == "--wal") {
      if (const char* v = value()) args.wal_path = v;
    } else if (arg == "--append-mix") {
      args.append_mix = static_cast<int>(long_value(0, 100));
    } else if (arg == "--compact-after") {
      args.compact_after = static_cast<size_t>(long_value(0, 1'000'000'000));
    } else if (arg == "--compact-snapshot") {
      if (const char* v = value()) args.compact_snapshot = v;
    } else if (arg == "--verify-threads") {
      args.verify_threads = static_cast<int>(long_value(1, 4096));
    } else if (arg == "--algorithm") {
      if (const char* v = value()) args.algorithm = v;
    } else if (arg == "--listen") {
      args.listen_port = static_cast<int>(long_value(0, 65535));
    } else if (arg == "--port-file") {
      if (const char* v = value()) args.port_file = v;
    } else if (arg == "--max-conns") {
      args.max_conns = static_cast<size_t>(long_value(1, 1'000'000));
    } else if (arg == "--idle-timeout-ms") {
      args.idle_timeout_ms = long_value(0, 86'400'000);
    } else if (arg == "--metrics-port") {
      args.metrics_port = static_cast<int>(long_value(0, 65535));
    } else if (arg == "--trace-sample") {
      args.trace_sample = double_value(0.0, 1.0);
    } else if (arg == "--slow-query-ms") {
      args.slow_query_ms = double_value(0.0, 1e9);
    } else if (arg == "--trace-out") {
      if (const char* v = value()) args.trace_out = v;
    } else if (arg == "--shards") {
      args.shards = static_cast<int>(long_value(1, 1024));
    } else if (arg == "--shard-mode") {
      if (const char* v = value()) args.shard_mode = v;
    } else if (arg == "--shard-seed") {
      args.shard_seed = long_value(0, INT64_MAX);
    } else if (arg == "--shardset") {
      if (const char* v = value()) args.shardset_path = v;
    } else {
      fail("unknown flag " + arg);
    }
  }

  if (args.ok() && args.dataset != "retailer" && args.dataset != "imdb") {
    fail("unknown dataset " + args.dataset);
  }
  if (args.ok() && !ParseAlgorithmName(args.algorithm).has_value()) {
    fail("unknown algorithm " + args.algorithm);
  }
  if (args.ok() && args.shard_mode != "hash" && args.shard_mode != "range") {
    fail("unknown shard mode " + args.shard_mode);
  }
  if (args.ok() && args.shards > 1 && !args.shardset_path.empty()) {
    fail("--shards and --shardset are mutually exclusive");
  }
  return args;
}

}  // namespace qbe
