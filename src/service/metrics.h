#ifndef QBE_SERVICE_METRICS_H_
#define QBE_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qbe {

/// Monotonic counter. Increment is a relaxed atomic add — safe from any
/// thread, no ordering guarantees between metrics.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: cumulative-style bucket counts over a sorted
/// list of upper bounds plus an overflow bucket, and sum/count for the
/// mean. Observe is lock-free (one relaxed add per field), so it can sit
/// on the service's request path.
class Histogram {
 public:
  /// `upper_bounds` must be sorted ascending and non-empty; an observation
  /// lands in the first bucket whose bound is >= the value, or overflow.
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  int64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  /// Smallest bucket upper bound covering at least fraction `q` of the
  /// observations (bucket-resolution quantile). Overflow reports the last
  /// bound; 0 observations report 0.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; the final element is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;

  /// "count=12 mean=0.034 p50<=0.05 p99<=0.5" (seconds or whatever unit
  /// the caller observes in).
  std::string ToString() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` bounds starting at `start`, each `factor` times the previous —
/// the usual latency-histogram shape.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count);

/// Point-in-time copy of a registry's contents, for exporters (the
/// Prometheus text formatter in obs/prom.h) and tests. Values are read
/// relaxed — consistent enough for monitoring, never torn.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    std::vector<double> bounds;
    std::vector<int64_t> buckets;  // bounds.size() + 1 (overflow last)
    int64_t count = 0;
    double sum = 0.0;
  };

  std::vector<std::pair<std::string, int64_t>> counters;  // name-sorted
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramData> histograms;
};

/// Registry of named counters and histograms. Get* creates the metric on
/// first use and returns a reference that stays valid for the registry's
/// lifetime, so callers resolve each metric once and update it lock-free;
/// only metric creation and Dump take the registry mutex. Gauges are
/// point-in-time doubles set at dump/snapshot time.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);

  /// First caller fixes the bucket layout; later callers get the existing
  /// histogram regardless of the bounds they pass.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  void SetGauge(const std::string& name, double value);

  MetricsSnapshot Snapshot() const;

  /// One metric per line, sorted by name:
  ///   counter  requests_admitted 128
  ///   gauge    eval_cache_hit_rate 0.82
  ///   histogram latency_seconds count=128 mean=0.004 p50<=0.005 p99<=0.1
  std::string Dump() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, double> gauges_;
};

}  // namespace qbe

#endif  // QBE_SERVICE_METRICS_H_
