#ifndef QBE_SERVICE_WORKLOAD_H_
#define QBE_SERVICE_WORKLOAD_H_

#include <optional>
#include <string>
#include <vector>

#include "core/example_table.h"

namespace qbe {

/// Request-workload parsing shared by qbe_serve and qbe_loadgen.
///
/// File format: one example table per line; rows separated by ';', cells
/// by '|' (the qbe_cli --row syntax). Blank lines and lines starting with
/// '#' are skipped. Example (the paper's Figure 2 ET):
///
///   Mike|ThinkPad|Office;Mary|iPad|;Bob||Dropbox
///
/// Rows narrower than the first row are padded with empty (unconstrained)
/// cells — that's what a trailing '|' means. A row *wider* than the first
/// is rejected: silently dropping cells would verify a different query
/// than the one the user wrote.

/// "Mike|ThinkPad|Office;Mary|iPad|" -> ExampleTable. On a malformed line
/// returns nullopt and (if non-null) sets *error to the reason.
std::optional<ExampleTable> ParseRequestLine(const std::string& line,
                                             std::string* error = nullptr);

/// Loads a request file into *out. On failure returns false with *error
/// naming the file, the 1-based offending line number, its content, and
/// the reason — e.g.
///
///   workload.txt:7: row 2 has 4 cells, wider than the 3-column first row:
///   "Mike|ThinkPad|Office|extra"
bool LoadRequestFile(const std::string& path, std::vector<ExampleTable>* out,
                     std::string* error);

}  // namespace qbe

#endif  // QBE_SERVICE_WORKLOAD_H_
