#ifndef QBE_SNAPSHOT_SNAPSHOT_H_
#define QBE_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace qbe {

class Database;

/// Serializes a built database to a `.qbes` snapshot at `path`: every
/// relation column, the token dictionary arena, the per-column CSR text
/// indexes and the per-edge join indexes, written as page-aligned sections
/// with per-section XXH64 checksums (format.h). The resulting file is what
/// Database::OpenSnapshot maps back in with zero copies. Returns false with
/// a description in `*error` on I/O failure.
bool WriteSnapshot(const Database& db, const std::string& path,
                   std::string* error = nullptr);

/// Full integrity check without constructing a database: header, directory
/// and every section checksum, plus directory bounds. Returns false with
/// the first problem described in `*error`.
bool VerifySnapshot(const std::string& path, std::string* error = nullptr);

/// One row of a snapshot's section directory, decoded for display.
struct SnapshotSectionInfo {
  std::string name;     // SectionKindName(kind)
  uint32_t kind = 0;
  uint32_t a = 0;       // relation / text-column gid / edge id
  uint32_t b = 0;       // column id (id/text column sections)
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint64_t elem_count = 0;
  uint64_t checksum = 0;
};

/// Header + directory summary of a snapshot (the `qbe_snapshot info` dump).
/// Requires a valid header and directory; section payloads are not hashed.
struct SnapshotFileInfo {
  uint32_t version = 0;
  uint32_t page_size = 0;
  uint64_t file_bytes = 0;
  std::vector<SnapshotSectionInfo> sections;
};

std::optional<SnapshotFileInfo> ReadSnapshotInfo(const std::string& path,
                                                 std::string* error = nullptr);

}  // namespace qbe

#endif  // QBE_SNAPSHOT_SNAPSHOT_H_
