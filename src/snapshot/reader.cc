#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "storage/database.h"
#include "util/hash64.h"
#include "util/mmap_file.h"

namespace qbe {
namespace {

using snapshot::FileHeader;
using snapshot::SectionEntry;
using snapshot::SectionKind;

/// Bounds-checked deserializer for the catalog section. Every read can
/// fail; the caller checks and rejects the file — never trusts a length.
struct Cursor {
  const char* p;
  const char* end;

  bool U32(uint32_t* v) {
    if (end - p < static_cast<ptrdiff_t>(sizeof(*v))) return false;
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
    return true;
  }
  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (static_cast<size_t>(end - p) < n) return false;
    s->assign(p, n);
    p += n;
    return true;
  }
};

std::string Desc(SectionKind kind, uint32_t a, uint32_t b) {
  std::string s = snapshot::SectionKindName(static_cast<uint32_t>(kind));
  s += "[" + std::to_string(a) + "," + std::to_string(b) + "]";
  return s;
}

/// Directory lookup + typed span extraction with alignment and size checks.
struct SectionMap {
  const char* base = nullptr;
  std::map<std::tuple<uint32_t, uint32_t, uint32_t>, const SectionEntry*>
      by_key;
  std::string why;

  bool Build(const std::vector<SectionEntry>& dir) {
    for (const SectionEntry& e : dir) {
      if (!by_key.emplace(std::make_tuple(e.kind, e.a, e.b), &e).second) {
        why = "duplicate section " +
              Desc(static_cast<SectionKind>(e.kind), e.a, e.b);
        return false;
      }
    }
    return true;
  }

  template <typename T>
  bool Get(SectionKind kind, uint32_t a, uint32_t b,
           std::span<const T>* out) {
    auto it = by_key.find(
        std::make_tuple(static_cast<uint32_t>(kind), a, b));
    if (it == by_key.end()) {
      why = "missing section " + Desc(kind, a, b);
      return false;
    }
    const SectionEntry& e = *it->second;
    if (e.bytes % sizeof(T) != 0 || e.elem_count != e.bytes / sizeof(T)) {
      why = "section " + Desc(kind, a, b) + " has a malformed size";
      return false;
    }
    if (e.offset % alignof(T) != 0) {
      why = "section " + Desc(kind, a, b) + " is misaligned";
      return false;
    }
    *out = std::span<const T>(reinterpret_cast<const T*>(base + e.offset),
                              e.elem_count);
    return true;
  }
};

bool NonDecreasingFromZero(std::span<const uint32_t> v) {
  if (v.empty() || v[0] != 0) return false;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1]) return false;
  }
  return true;
}

bool StrictlyAscendingBelow(std::span<const uint32_t> v, uint32_t limit) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] >= limit) return false;
    if (i > 0 && v[i] <= v[i - 1]) return false;
  }
  return true;
}

}  // namespace

/// Befriended by the storage/text classes: the loader installs mapped spans
/// directly into their private SpanOrVec storage.
class SnapshotReader {
 public:
  static std::optional<Database> Open(const std::string& path,
                                      std::string* error);
  static bool Verify(const std::string& path, std::string* error);
  static std::optional<SnapshotFileInfo> Info(const std::string& path,
                                              std::string* error);

 private:
  /// Header, directory and (optionally) payload checksum validation —
  /// everything shared by Open, Verify and Info. Returns false with a
  /// description of the first problem found.
  static bool CheckFile(const MemMap& map, bool hash_payloads,
                        FileHeader* header, std::vector<SectionEntry>* dir,
                        std::string* why);
};

bool SnapshotReader::CheckFile(const MemMap& map, bool hash_payloads,
                               FileHeader* header,
                               std::vector<SectionEntry>* dir,
                               std::string* why) {
  if (map.size() < sizeof(FileHeader)) {
    *why = "file too small to hold a snapshot header (truncated?)";
    return false;
  }
  std::memcpy(header, map.data(), sizeof(FileHeader));
  if (header->magic != snapshot::kMagic) {
    *why = "not a qbe snapshot (bad magic)";
    return false;
  }
  if (Hash64(header, offsetof(FileHeader, header_checksum)) !=
      header->header_checksum) {
    *why = "header checksum mismatch (corrupt header)";
    return false;
  }
  if (header->version != snapshot::kVersion) {
    *why = "unsupported snapshot version " + std::to_string(header->version) +
           " (this build reads version " + std::to_string(snapshot::kVersion) +
           ")";
    return false;
  }
  if (header->endian_tag != snapshot::kEndianTag) {
    *why = "snapshot was written on a machine with different endianness";
    return false;
  }
  if (header->file_bytes != map.size()) {
    *why = "file size mismatch: header records " +
           std::to_string(header->file_bytes) + " bytes but the file has " +
           std::to_string(map.size()) + " (truncated?)";
    return false;
  }
  const uint64_t dir_bytes =
      static_cast<uint64_t>(header->section_count) * sizeof(SectionEntry);
  if (header->dir_offset > map.size() ||
      dir_bytes > map.size() - header->dir_offset) {
    *why = "section directory out of bounds (truncated?)";
    return false;
  }
  dir->resize(header->section_count);
  std::memcpy(dir->data(), map.data() + header->dir_offset, dir_bytes);
  if (Hash64(dir->data(), dir_bytes) != header->dir_checksum) {
    *why = "section directory checksum mismatch";
    return false;
  }
  for (const SectionEntry& e : *dir) {
    const std::string name =
        Desc(static_cast<SectionKind>(e.kind), e.a, e.b);
    if (e.offset > map.size() || e.bytes > map.size() - e.offset) {
      *why = "section " + name + " out of bounds (truncated?)";
      return false;
    }
    if (hash_payloads && Hash64(map.data() + e.offset, e.bytes) != e.checksum) {
      *why = "checksum mismatch in section " + name;
      return false;
    }
  }
  return true;
}

std::optional<Database> SnapshotReader::Open(const std::string& path,
                                             std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<Database> {
    if (error != nullptr) *error = path + ": " + why;
    return std::nullopt;
  };
  std::string map_error;
  std::optional<MemMap> map = MemMap::Open(path, &map_error);
  if (!map.has_value()) {
    if (error != nullptr) *error = map_error;
    return std::nullopt;
  }
  FileHeader header;
  std::vector<SectionEntry> dir;
  std::string why;
  if (!CheckFile(*map, /*hash_payloads=*/true, &header, &dir, &why)) {
    return fail(why);
  }

  // The mapping moves into the Database up front: every span created below
  // points into memory the Database now owns (and destroys last).
  Database db;
  db.mapping_ = std::make_unique<MemMap>(std::move(*map));

  SectionMap smap;
  smap.base = db.mapping_->data();
  if (!smap.Build(dir)) return fail(smap.why);

  // --- catalog -------------------------------------------------------------
  std::span<const char> cat;
  if (!smap.Get(SectionKind::kCatalog, 0, 0, &cat)) return fail(smap.why);
  Cursor cur{cat.data(), cat.data() + cat.size()};

  uint32_t num_rels = 0;
  if (!cur.U32(&num_rels) || num_rels > 65535) {
    return fail("catalog: bad relation count");
  }
  for (uint32_t rel = 0; rel < num_rels; ++rel) {
    std::string rel_name;
    uint32_t rows = 0, num_cols = 0;
    if (!cur.Str(&rel_name) || !cur.U32(&rows) || !cur.U32(&num_cols) ||
        num_cols == 0 || num_cols >= 4096) {
      return fail("catalog: malformed relation entry");
    }
    std::vector<ColumnDef> defs;
    defs.reserve(num_cols);
    for (uint32_t col = 0; col < num_cols; ++col) {
      std::string col_name;
      uint32_t type = 0;
      if (!cur.Str(&col_name) || !cur.U32(&type) || type > 1) {
        return fail("catalog: malformed column entry");
      }
      defs.push_back(ColumnDef{
          std::move(col_name), type == 0 ? ColumnType::kId : ColumnType::kText});
    }
    if (db.RelationIdByName(rel_name) >= 0) {
      return fail("catalog: duplicate relation '" + rel_name + "'");
    }
    Relation r(std::move(rel_name), std::move(defs));
    for (uint32_t col = 0; col < num_cols; ++col) {
      if (r.columns()[col].type == ColumnType::kId) {
        std::span<const int64_t> ids;
        if (!smap.Get(SectionKind::kIdColumn, rel, col, &ids)) {
          return fail(smap.why);
        }
        if (ids.size() != rows) {
          return fail("id column section " + Desc(SectionKind::kIdColumn, rel,
                                                  col) +
                      " does not match the catalog row count");
        }
        r.id_store_[r.slot_[col]] = SpanOrVec<int64_t>::Mapped(ids);
      } else {
        std::span<const char> arena;
        std::span<const uint32_t> offsets;
        if (!smap.Get(SectionKind::kTextArena, rel, col, &arena) ||
            !smap.Get(SectionKind::kTextOffsets, rel, col, &offsets)) {
          return fail(smap.why);
        }
        if (offsets.size() != static_cast<size_t>(rows) + 1 ||
            !NonDecreasingFromZero(offsets) ||
            offsets.back() != arena.size()) {
          return fail("text column section " +
                      Desc(SectionKind::kTextOffsets, rel, col) +
                      " has inconsistent cell boundaries");
        }
        TextColumnStore& store = r.text_store_[r.slot_[col]];
        store.arena_ = SpanOrVec<char>::Mapped(arena);
        store.offsets_ = SpanOrVec<uint32_t>::Mapped(offsets);
      }
    }
    r.num_rows_ = rows;
    db.AddRelation(std::move(r));
  }

  uint32_t num_fks = 0;
  if (!cur.U32(&num_fks) || num_fks > 1000000) {
    return fail("catalog: bad foreign key count");
  }
  for (uint32_t i = 0; i < num_fks; ++i) {
    uint32_t from_rel = 0, from_col = 0, to_rel = 0, to_col = 0;
    uint32_t distinct = 0;
    if (!cur.U32(&from_rel) || !cur.U32(&from_col) || !cur.U32(&to_rel) ||
        !cur.U32(&to_col) || !cur.U32(&distinct)) {
      return fail("catalog: malformed foreign key entry");
    }
    auto valid_key_col = [&](uint32_t rel, uint32_t col) {
      return rel < num_rels &&
             col < static_cast<uint32_t>(db.relation(rel).num_columns()) &&
             db.relation(rel).columns()[col].type == ColumnType::kId;
    };
    if (!valid_key_col(from_rel, from_col) || !valid_key_col(to_rel, to_col)) {
      return fail("catalog: foreign key references a non-id column");
    }
    if (distinct > db.relation(from_rel).num_rows()) {
      return fail("catalog: foreign key distinct count exceeds row count");
    }
    db.fk_distinct_.push_back(distinct);
    db.fks_.push_back(ForeignKey{
        static_cast<int>(i), static_cast<int>(from_rel),
        static_cast<int>(from_col), static_cast<int>(to_rel),
        static_cast<int>(to_col),
        db.relation(from_rel).columns()[from_col].name});
  }
  uint32_t token_count = 0;
  if (!cur.U32(&token_count)) return fail("catalog: missing token count");

  // --- token dictionary ----------------------------------------------------
  std::span<const char> token_arena;
  std::span<const uint32_t> token_offsets;
  if (!smap.Get(SectionKind::kTokenArena, 0, 0, &token_arena) ||
      !smap.Get(SectionKind::kTokenOffsets, 0, 0, &token_offsets)) {
    return fail(smap.why);
  }
  if (token_offsets.size() != static_cast<size_t>(token_count) + 1 ||
      !NonDecreasingFromZero(token_offsets) ||
      token_offsets.back() != token_arena.size()) {
    return fail("token dictionary sections have inconsistent boundaries");
  }
  db.dict_ = std::make_unique<TokenDict>();
  db.dict_->LoadMappedArena(token_arena, token_offsets);

  // --- per-column CSR text indexes (mirrors BuildIndexes' gid assignment) --
  db.text_gid_.resize(db.relations_.size());
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& r = db.relation(rel);
    db.text_gid_[rel].assign(r.num_columns(), -1);
    for (int col = 0; col < r.num_columns(); ++col) {
      if (r.columns()[col].type != ColumnType::kText) continue;
      db.text_gid_[rel][col] = static_cast<int>(db.text_cols_.size());
      db.text_cols_.push_back(ColumnRef{rel, col});
    }
  }
  db.fts_.resize(db.text_cols_.size());
  for (uint32_t gid = 0; gid < db.text_cols_.size(); ++gid) {
    const ColumnRef& ref = db.text_cols_[gid];
    const uint32_t rows = db.relation(ref.rel).num_rows();
    std::span<const uint64_t> postings;
    std::span<const uint32_t> token_ids, offsets, row_counts, slot_of_id;
    std::span<const uint16_t> row_token_counts;
    std::span<const uint32_t> long_rows;
    if (!smap.Get(SectionKind::kFtsPostings, gid, 0, &postings) ||
        !smap.Get(SectionKind::kFtsTokenIds, gid, 0, &token_ids) ||
        !smap.Get(SectionKind::kFtsOffsets, gid, 0, &offsets) ||
        !smap.Get(SectionKind::kFtsRowCounts, gid, 0, &row_counts) ||
        !smap.Get(SectionKind::kFtsSlotOfId, gid, 0, &slot_of_id) ||
        !smap.Get(SectionKind::kFtsRowTokenCounts, gid, 0,
                  &row_token_counts) ||
        !smap.Get(SectionKind::kFtsLongRows, gid, 0, &long_rows)) {
      return fail(smap.why);
    }
    const size_t slots = token_ids.size();
    const std::string where = " in text index " + std::to_string(gid);
    if (offsets.size() != slots + 1 || !NonDecreasingFromZero(offsets) ||
        offsets.back() != postings.size()) {
      return fail("inconsistent CSR offsets" + where);
    }
    if (row_counts.size() != slots) {
      return fail("inconsistent row-count table" + where);
    }
    if (!StrictlyAscendingBelow(token_ids,
                                static_cast<uint32_t>(db.dict_->size()))) {
      return fail("token id table not ascending" + where);
    }
    // The dense table is sized to the dictionary as of this column's build
    // (the shared dict keeps growing afterwards), so <= is the invariant;
    // SlotOf treats ids past the end as absent.
    if (slot_of_id.size() > db.dict_->size()) {
      return fail("dense slot table has wrong size" + where);
    }
    for (uint32_t s : slot_of_id) {
      if (s != UINT32_MAX && s >= slots) {
        return fail("dense slot table entry out of range" + where);
      }
    }
    if (row_token_counts.size() != rows) {
      return fail("row token-count table has wrong size" + where);
    }
    if (long_rows.size() % 2 != 0) {
      return fail("long-row overflow table malformed" + where);
    }
    for (size_t i = 0; i + 1 < long_rows.size(); i += 2) {
      if (long_rows[i] >= rows) {
        return fail("long-row overflow entry out of range" + where);
      }
    }
    for (uint64_t p : postings) {
      if (static_cast<uint32_t>(p >> 32) >= rows) {
        return fail("posting row out of range" + where);
      }
    }
    db.fts_[gid].LoadMapped(
        db.dict_.get(), rows, SpanOrVec<uint64_t>::Mapped(postings),
        SpanOrVec<uint32_t>::Mapped(token_ids),
        SpanOrVec<uint32_t>::Mapped(offsets),
        SpanOrVec<uint32_t>::Mapped(row_counts),
        SpanOrVec<uint32_t>::Mapped(slot_of_id),
        SpanOrVec<uint16_t>::Mapped(row_token_counts), long_rows);
    db.ci_.RegisterColumn(static_cast<int>(gid), &db.fts_[gid]);
  }

  // --- per-edge join indexes ----------------------------------------------
  db.edge_join_.resize(db.fks_.size());
  db.referenced_rows_.resize(db.fks_.size());
  db.valid_from_rows_.resize(db.fks_.size());
  for (const ForeignKey& fk : db.fks_) {
    const uint32_t edge = static_cast<uint32_t>(fk.id);
    const uint32_t from_rows = db.relation(fk.from_rel).num_rows();
    const uint32_t to_rows = db.relation(fk.to_rel).num_rows();
    std::span<const int32_t> parent_row;
    std::span<const uint32_t> child_offsets, child_rows, referenced,
        valid_from;
    if (!smap.Get(SectionKind::kEdgeParentRow, edge, 0, &parent_row) ||
        !smap.Get(SectionKind::kEdgeChildOffsets, edge, 0, &child_offsets) ||
        !smap.Get(SectionKind::kEdgeChildRows, edge, 0, &child_rows) ||
        !smap.Get(SectionKind::kEdgeReferenced, edge, 0, &referenced) ||
        !smap.Get(SectionKind::kEdgeValidFrom, edge, 0, &valid_from)) {
      return fail(smap.why);
    }
    const std::string where = " in join index of edge " + std::to_string(edge);
    if (parent_row.size() != from_rows) {
      return fail("parent-row table has wrong size" + where);
    }
    for (int32_t parent : parent_row) {
      if (parent < -1 || parent >= static_cast<int32_t>(to_rows)) {
        return fail("parent-row entry out of range" + where);
      }
    }
    if (child_offsets.size() != static_cast<size_t>(to_rows) + 1 ||
        !NonDecreasingFromZero(child_offsets) ||
        child_offsets.back() != child_rows.size()) {
      return fail("inconsistent child CSR offsets" + where);
    }
    for (uint32_t row : child_rows) {
      if (row >= from_rows) {
        return fail("child-row entry out of range" + where);
      }
    }
    if (!StrictlyAscendingBelow(referenced, to_rows)) {
      return fail("referenced-row table not ascending" + where);
    }
    if (!StrictlyAscendingBelow(valid_from, from_rows)) {
      return fail("valid-from-row table not ascending" + where);
    }
    db.edge_join_[edge].parent_row = SpanOrVec<int32_t>::Mapped(parent_row);
    db.edge_join_[edge].child_offsets =
        SpanOrVec<uint32_t>::Mapped(child_offsets);
    db.edge_join_[edge].child_rows = SpanOrVec<uint32_t>::Mapped(child_rows);
    db.referenced_rows_[edge] = SpanOrVec<uint32_t>::Mapped(referenced);
    db.valid_from_rows_[edge] = SpanOrVec<uint32_t>::Mapped(valid_from);
  }
  std::span<const char> no_dangling;
  if (!smap.Get(SectionKind::kEdgeNoDangling, 0, 0, &no_dangling)) {
    return fail(smap.why);
  }
  if (no_dangling.size() != db.fks_.size()) {
    return fail("referential-integrity flag table has wrong size");
  }
  db.edge_no_dangling_.assign(no_dangling.begin(), no_dangling.end());

  // The value-keyed PK/FK hash maps are NOT rebuilt here: discovery only
  // touches the mapped row-level join indexes, so Database builds them
  // lazily on the first PkLookup/FkLookup instead (EnsureKeyMaps).
  db.built_ = true;
  return db;
}

bool SnapshotReader::Verify(const std::string& path, std::string* error) {
  std::string map_error;
  std::optional<MemMap> map = MemMap::Open(path, &map_error);
  if (!map.has_value()) {
    if (error != nullptr) *error = map_error;
    return false;
  }
  FileHeader header;
  std::vector<SectionEntry> dir;
  std::string why;
  if (!CheckFile(*map, /*hash_payloads=*/true, &header, &dir, &why)) {
    if (error != nullptr) *error = path + ": " + why;
    return false;
  }
  return true;
}

std::optional<SnapshotFileInfo> SnapshotReader::Info(const std::string& path,
                                                     std::string* error) {
  std::string map_error;
  std::optional<MemMap> map = MemMap::Open(path, &map_error);
  if (!map.has_value()) {
    if (error != nullptr) *error = map_error;
    return std::nullopt;
  }
  FileHeader header;
  std::vector<SectionEntry> dir;
  std::string why;
  if (!CheckFile(*map, /*hash_payloads=*/false, &header, &dir, &why)) {
    if (error != nullptr) *error = path + ": " + why;
    return std::nullopt;
  }
  SnapshotFileInfo info;
  info.version = header.version;
  info.page_size = header.page_size;
  info.file_bytes = header.file_bytes;
  info.sections.reserve(dir.size());
  for (const SectionEntry& e : dir) {
    info.sections.push_back(SnapshotSectionInfo{
        snapshot::SectionKindName(e.kind), e.kind, e.a, e.b, e.offset,
        e.bytes, e.elem_count, e.checksum});
  }
  return info;
}

std::optional<Database> Database::OpenSnapshot(const std::string& path,
                                              std::string* error) {
  return SnapshotReader::Open(path, error);
}

bool VerifySnapshot(const std::string& path, std::string* error) {
  return SnapshotReader::Verify(path, error);
}

std::optional<SnapshotFileInfo> ReadSnapshotInfo(const std::string& path,
                                                 std::string* error) {
  return SnapshotReader::Info(path, error);
}

}  // namespace qbe
