#include <algorithm>
#include <cstdint>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/format.h"
#include "snapshot/snapshot.h"
#include "storage/database.h"
#include "util/hash64.h"

namespace qbe {
namespace {

using snapshot::FileHeader;
using snapshot::SectionEntry;
using snapshot::SectionKind;

/// Little serializer for the variable-length catalog section.
struct ByteWriter {
  std::vector<char> out;

  void U32(uint32_t v) {
    const char* p = reinterpret_cast<const char*>(&v);
    out.insert(out.end(), p, p + sizeof(v));
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  }
};

}  // namespace

/// Befriended by Database/Relation/TextColumnStore/TokenDict/InvertedIndex:
/// serialization reads their internals directly instead of widening the
/// public API with accessors only the snapshot layer needs.
class SnapshotWriter {
 public:
  static bool Write(const Database& db, const std::string& path,
                    std::string* error);
};

bool SnapshotWriter::Write(const Database& db, const std::string& path,
                           std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!db.built_) {
    return fail("cannot snapshot a database before BuildIndexes()");
  }

  // Temporary payloads (catalog, token arena, long-row pairs) need stable
  // addresses until the file is written; a deque never relocates elements.
  std::deque<std::vector<char>> char_bufs;
  std::deque<std::vector<uint32_t>> u32_bufs;

  struct Pending {
    SectionEntry entry;  // offset filled in during layout
    const char* data;
    size_t bytes;
  };
  std::vector<Pending> sections;
  auto add = [&](SectionKind kind, uint32_t a, uint32_t b, uint64_t elem_count,
                 const void* data, size_t bytes) {
    Pending p;
    p.entry = SectionEntry{static_cast<uint32_t>(kind), a, b, 0, 0,
                           bytes, elem_count, Hash64(data, bytes)};
    p.data = static_cast<const char*>(data);
    p.bytes = bytes;
    sections.push_back(p);
  };
  auto add_u32_buf = [&](SectionKind kind, uint32_t a, uint32_t b,
                         std::vector<uint32_t> buf) {
    u32_bufs.push_back(std::move(buf));
    const std::vector<uint32_t>& v = u32_bufs.back();
    add(kind, a, b, v.size(), v.data(), v.size() * sizeof(uint32_t));
  };

  // --- catalog -------------------------------------------------------------
  ByteWriter catalog;
  catalog.U32(static_cast<uint32_t>(db.num_relations()));
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& r = db.relation(rel);
    catalog.Str(r.name());
    catalog.U32(r.num_rows());
    catalog.U32(static_cast<uint32_t>(r.num_columns()));
    for (const ColumnDef& def : r.columns()) {
      catalog.Str(def.name);
      catalog.U32(def.type == ColumnType::kId ? 0 : 1);
    }
  }
  catalog.U32(static_cast<uint32_t>(db.fks_.size()));
  for (const ForeignKey& fk : db.fks_) {
    catalog.U32(static_cast<uint32_t>(fk.from_rel));
    catalog.U32(static_cast<uint32_t>(fk.from_col));
    catalog.U32(static_cast<uint32_t>(fk.to_rel));
    catalog.U32(static_cast<uint32_t>(fk.to_col));
    // Distinct FK values feed the fanout stats; storing the count lets a
    // mapped database skip building the value-keyed hash maps entirely.
    catalog.U32(db.fk_distinct_[fk.id]);
  }
  catalog.U32(static_cast<uint32_t>(db.dict_->size()));
  char_bufs.push_back(std::move(catalog.out));
  add(SectionKind::kCatalog, 0, 0, char_bufs.back().size(),
      char_bufs.back().data(), char_bufs.back().size());

  // --- relation columns ----------------------------------------------------
  static const uint32_t kZeroOffset = 0;
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    const Relation& r = db.relation(rel);
    for (int col = 0; col < r.num_columns(); ++col) {
      if (r.columns()[col].type == ColumnType::kId) {
        const SpanOrVec<int64_t>& ids = r.id_store_[r.slot_[col]];
        add(SectionKind::kIdColumn, rel, col, ids.size(), ids.data(),
            ids.size() * sizeof(int64_t));
      } else {
        const TextColumnStore& text = r.text_store_[r.slot_[col]];
        add(SectionKind::kTextArena, rel, col, text.arena_.size(),
            text.arena_.data(), text.arena_.size());
        if (text.offsets_.empty()) {
          // Never-appended column: normalize to the canonical rows+1 form.
          add(SectionKind::kTextOffsets, rel, col, 1, &kZeroOffset,
              sizeof(uint32_t));
        } else {
          add(SectionKind::kTextOffsets, rel, col, text.offsets_.size(),
              text.offsets_.data(), text.offsets_.size() * sizeof(uint32_t));
        }
      }
    }
  }

  // --- token dictionary arena ----------------------------------------------
  {
    std::vector<char> arena;
    std::vector<uint32_t> offsets;
    offsets.reserve(db.dict_->size() + 1);
    offsets.push_back(0);
    for (uint32_t id = 0; id < db.dict_->size(); ++id) {
      std::string_view token = db.dict_->TokenAt(id);
      arena.insert(arena.end(), token.begin(), token.end());
      offsets.push_back(static_cast<uint32_t>(arena.size()));
    }
    char_bufs.push_back(std::move(arena));
    add(SectionKind::kTokenArena, 0, 0, char_bufs.back().size(),
        char_bufs.back().data(), char_bufs.back().size());
    add_u32_buf(SectionKind::kTokenOffsets, 0, 0, std::move(offsets));
  }

  // --- per-column CSR text indexes ----------------------------------------
  for (uint32_t gid = 0; gid < db.fts_.size(); ++gid) {
    const InvertedIndex& fts = db.fts_[gid];
    add(SectionKind::kFtsPostings, gid, 0, fts.postings_.size(),
        fts.postings_.data(), fts.postings_.size() * sizeof(uint64_t));
    add(SectionKind::kFtsTokenIds, gid, 0, fts.token_ids_.size(),
        fts.token_ids_.data(), fts.token_ids_.size() * sizeof(uint32_t));
    add(SectionKind::kFtsOffsets, gid, 0, fts.offsets_.size(),
        fts.offsets_.data(), fts.offsets_.size() * sizeof(uint32_t));
    add(SectionKind::kFtsRowCounts, gid, 0, fts.row_counts_.size(),
        fts.row_counts_.data(), fts.row_counts_.size() * sizeof(uint32_t));
    add(SectionKind::kFtsSlotOfId, gid, 0, fts.slot_of_id_.size(),
        fts.slot_of_id_.data(), fts.slot_of_id_.size() * sizeof(uint32_t));
    add(SectionKind::kFtsRowTokenCounts, gid, 0, fts.row_token_counts_.size(),
        fts.row_token_counts_.data(),
        fts.row_token_counts_.size() * sizeof(uint16_t));
    std::vector<uint32_t> long_rows;
    long_rows.reserve(fts.long_rows_.size() * 2);
    for (const auto& [row, count] : fts.long_rows_) {
      long_rows.push_back(row);
      long_rows.push_back(count);
    }
    // Sort pairs by row for a deterministic (byte-reproducible) file.
    std::vector<size_t> order(long_rows.size() / 2);
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return long_rows[2 * x] < long_rows[2 * y];
    });
    std::vector<uint32_t> sorted;
    sorted.reserve(long_rows.size());
    for (size_t i : order) {
      sorted.push_back(long_rows[2 * i]);
      sorted.push_back(long_rows[2 * i + 1]);
    }
    add_u32_buf(SectionKind::kFtsLongRows, gid, 0, std::move(sorted));
  }

  // --- per-edge join indexes ----------------------------------------------
  for (const ForeignKey& fk : db.fks_) {
    const uint32_t edge = static_cast<uint32_t>(fk.id);
    const auto& join = db.edge_join_[fk.id];
    add(SectionKind::kEdgeParentRow, edge, 0, join.parent_row.size(),
        join.parent_row.data(), join.parent_row.size() * sizeof(int32_t));
    add(SectionKind::kEdgeChildOffsets, edge, 0, join.child_offsets.size(),
        join.child_offsets.data(),
        join.child_offsets.size() * sizeof(uint32_t));
    add(SectionKind::kEdgeChildRows, edge, 0, join.child_rows.size(),
        join.child_rows.data(), join.child_rows.size() * sizeof(uint32_t));
    const SpanOrVec<uint32_t>& referenced = db.referenced_rows_[fk.id];
    add(SectionKind::kEdgeReferenced, edge, 0, referenced.size(),
        referenced.data(), referenced.size() * sizeof(uint32_t));
    const SpanOrVec<uint32_t>& valid_from = db.valid_from_rows_[fk.id];
    add(SectionKind::kEdgeValidFrom, edge, 0, valid_from.size(),
        valid_from.data(), valid_from.size() * sizeof(uint32_t));
  }
  add(SectionKind::kEdgeNoDangling, 0, 0, db.edge_no_dangling_.size(),
      db.edge_no_dangling_.data(), db.edge_no_dangling_.size());

  // --- layout and checksums ------------------------------------------------
  FileHeader header{};
  header.magic = snapshot::kMagic;
  header.version = snapshot::kVersion;
  header.endian_tag = snapshot::kEndianTag;
  header.dir_offset = sizeof(FileHeader);
  header.section_count = static_cast<uint32_t>(sections.size());
  header.page_size = snapshot::kPageSize;

  uint64_t cursor = snapshot::PageAlign(
      header.dir_offset + sections.size() * sizeof(SectionEntry));
  std::vector<SectionEntry> dir;
  dir.reserve(sections.size());
  for (Pending& p : sections) {
    p.entry.offset = cursor;
    cursor = snapshot::PageAlign(cursor + p.bytes);
    dir.push_back(p.entry);
  }
  // file_bytes ends at the last payload byte, not its page-aligned end.
  header.file_bytes = sections.empty()
                          ? header.dir_offset
                          : dir.back().offset + dir.back().bytes;
  header.dir_checksum =
      Hash64(dir.data(), dir.size() * sizeof(SectionEntry));
  header.header_checksum =
      Hash64(&header, offsetof(FileHeader, header_checksum));

  // --- write ---------------------------------------------------------------
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return fail("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(dir.data()),
            dir.size() * sizeof(SectionEntry));
  uint64_t written = header.dir_offset + dir.size() * sizeof(SectionEntry);
  static const char kPad[snapshot::kPageSize] = {};
  for (const Pending& p : sections) {
    out.write(kPad, p.entry.offset - written);
    if (p.bytes > 0) out.write(p.data, p.bytes);
    written = p.entry.offset + p.bytes;
  }
  out.flush();
  if (!out) return fail("write failed for " + path + " (disk full?)");
  return true;
}

bool WriteSnapshot(const Database& db, const std::string& path,
                   std::string* error) {
  return SnapshotWriter::Write(db, path, error);
}

}  // namespace qbe
