#ifndef QBE_SNAPSHOT_FORMAT_H_
#define QBE_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace qbe {
namespace snapshot {

// On-disk layout of a `.qbes` database snapshot (DESIGN.md §11):
//
//   [FileHeader 64B][SectionEntry × section_count][pad][section 0][pad]...
//
// Every section payload starts on a kPageSize boundary, so any array of
// trivially-copyable elements in the file is suitably aligned for a direct
// reinterpret into the mmap (uint64 postings need 8-byte alignment; a page
// boundary gives 4096). Each section carries an XXH64 checksum of its
// payload; the header and directory carry their own. The header records
// the writer's endianness — snapshots are not byte-swapped on load, a
// mismatched reader rejects the file instead.

inline constexpr uint64_t kMagic = 0x3150414E53454251ULL;  // "QBESNAP1"
inline constexpr uint32_t kVersion = 1;
inline constexpr uint32_t kEndianTag = 0x01020304;
inline constexpr uint32_t kPageSize = 4096;

enum class SectionKind : uint32_t {
  kCatalog = 1,      // schema: relations, columns, row counts, foreign keys
  kIdColumn = 2,     // a=rel b=col; int64[rows]
  kTextArena = 3,    // a=rel b=col; char[arena_bytes] (cell bytes, packed)
  kTextOffsets = 4,  // a=rel b=col; uint32[rows+1] cell boundaries
  kTokenArena = 5,   // char[]: TokenDict spellings, id order, packed
  kTokenOffsets = 6,       // uint32[tokens+1] token boundaries
  kFtsPostings = 7,        // a=gid; uint64[]: (row<<32|pos) CSR payload
  kFtsTokenIds = 8,        // a=gid; uint32[slots]: slot → token id, ascending
  kFtsOffsets = 9,         // a=gid; uint32[slots+1]: slot → posting begin
  kFtsRowCounts = 10,      // a=gid; uint32[slots]: distinct-row counts
  kFtsSlotOfId = 11,       // a=gid; uint32[dict] dense map, or empty
  kFtsRowTokenCounts = 12, // a=gid; uint16[rows] clamped token counts
  kFtsLongRows = 13,       // a=gid; uint32 pairs (row, count) overflow
  kEdgeParentRow = 14,     // a=edge; int32[from_rows], -1 = dangling
  kEdgeChildOffsets = 15,  // a=edge; uint32[to_rows+1] CSR begin
  kEdgeChildRows = 16,     // a=edge; uint32[] referencing rows, ascending
  kEdgeReferenced = 17,    // a=edge; uint32[] referenced to-rows, sorted
  kEdgeValidFrom = 18,     // a=edge; uint32[] non-dangling from-rows, sorted
  kEdgeNoDangling = 19,    // uint8[num_edges] referential-integrity flags
};

/// Fixed 64-byte file header at offset 0.
struct FileHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t endian_tag;
  uint64_t file_bytes;      // total snapshot size; mismatch = truncation
  uint64_t dir_offset;      // byte offset of the section directory
  uint32_t section_count;
  uint32_t page_size;       // alignment the writer used (kPageSize)
  uint64_t dir_checksum;    // Hash64 of the directory array
  uint64_t reserved;        // zero; room for future flags
  uint64_t header_checksum; // Hash64 of the 56 bytes preceding this field
};
static_assert(sizeof(FileHeader) == 64, "header layout is part of the format");

/// One directory row. (kind, a, b, c) identifies the section's role: `a`
/// carries the relation/gid/edge id and `b` the column id where relevant.
struct SectionEntry {
  uint32_t kind;
  uint32_t a;
  uint32_t b;
  uint32_t c;          // zero; reserved
  uint64_t offset;     // payload byte offset (page-aligned)
  uint64_t bytes;      // payload byte length
  uint64_t elem_count; // number of elements (bytes / element size)
  uint64_t checksum;   // Hash64 of the payload bytes
};
static_assert(sizeof(SectionEntry) == 48, "entry layout is part of the format");

inline const char* SectionKindName(uint32_t kind) {
  switch (static_cast<SectionKind>(kind)) {
    case SectionKind::kCatalog: return "catalog";
    case SectionKind::kIdColumn: return "id_column";
    case SectionKind::kTextArena: return "text_arena";
    case SectionKind::kTextOffsets: return "text_offsets";
    case SectionKind::kTokenArena: return "token_arena";
    case SectionKind::kTokenOffsets: return "token_offsets";
    case SectionKind::kFtsPostings: return "fts_postings";
    case SectionKind::kFtsTokenIds: return "fts_token_ids";
    case SectionKind::kFtsOffsets: return "fts_offsets";
    case SectionKind::kFtsRowCounts: return "fts_row_counts";
    case SectionKind::kFtsSlotOfId: return "fts_slot_of_id";
    case SectionKind::kFtsRowTokenCounts: return "fts_row_token_counts";
    case SectionKind::kFtsLongRows: return "fts_long_rows";
    case SectionKind::kEdgeParentRow: return "edge_parent_row";
    case SectionKind::kEdgeChildOffsets: return "edge_child_offsets";
    case SectionKind::kEdgeChildRows: return "edge_child_rows";
    case SectionKind::kEdgeReferenced: return "edge_referenced";
    case SectionKind::kEdgeValidFrom: return "edge_valid_from";
    case SectionKind::kEdgeNoDangling: return "edge_no_dangling";
  }
  return "unknown";
}

inline uint64_t PageAlign(uint64_t offset) {
  return (offset + kPageSize - 1) & ~static_cast<uint64_t>(kPageSize - 1);
}

}  // namespace snapshot
}  // namespace qbe

#endif  // QBE_SNAPSHOT_FORMAT_H_
