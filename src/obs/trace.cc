#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "kernels/kernels.h"
#include "util/check.h"

namespace qbe {
namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr size_t kNumCounters =
    static_cast<size_t>(TraceCounter::kNumCounters);

// Thread-local cache of the last (context, lane) pairing so a worker that
// records thousands of spans for one request resolves its lane with one
// integer compare instead of a mutex-guarded map lookup. Keyed on the
// context's process-unique generation, NOT its address: a freed context's
// address can be reused by the next request's context while this thread
// still holds the old lane pointer (generation 0 is never assigned).
struct LaneCacheEntry {
  uint64_t generation = 0;
  void* lane = nullptr;
};
thread_local LaneCacheEntry t_lane_cache;

std::atomic<uint64_t> g_next_generation{1};

inline SpanRef PackRef(uint32_t lane, uint32_t index) {
  return (lane << 20) | (index + 1);
}
inline uint32_t RefLane(SpanRef ref) { return ref >> 20; }
inline uint32_t RefIndex(SpanRef ref) { return (ref & 0xFFFFF) - 1; }

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest: return "request";
    case SpanKind::kCandidateGen: return "candidate_gen";
    case SpanKind::kEtTokenResolve: return "et_token_resolve";
    case SpanKind::kVerifyAll: return "verify:verifyall";
    case SpanKind::kSimplePrune: return "verify:simpleprune";
    case SpanKind::kFilter: return "verify:filter";
    case SpanKind::kFilterExact: return "verify:filterexact";
    case SpanKind::kWeave: return "verify:weave";
    case SpanKind::kRelaxedVerify: return "verify:relaxed";
    case SpanKind::kRank: return "rank";
    case SpanKind::kEvalExec: return "eval_exec";
    case SpanKind::kEvalCacheLookup: return "eval_cache_lookup";
    case SpanKind::kTextMatch: return "text_match";
    case SpanKind::kWalAppend: return "wal_append";
    case SpanKind::kWalReplay: return "wal_replay";
    case SpanKind::kCompaction: return "compaction";
    case SpanKind::kNetRead: return "net_read";
    case SpanKind::kNetWrite: return "net_write";
    case SpanKind::kNumKinds: break;
  }
  return "unknown";
}

const char* TraceCounterName(TraceCounter counter) {
  switch (counter) {
    case TraceCounter::kCandidatesGenerated: return "candidates_generated";
    case TraceCounter::kQueriesVerified: return "queries_verified";
    case TraceCounter::kValidQueries: return "valid_queries";
    case TraceCounter::kEvalCacheHits: return "eval_cache_hits";
    case TraceCounter::kEvalCacheLookups: return "eval_cache_lookups";
    case TraceCounter::kMatchCacheHits: return "match_cache_hits";
    case TraceCounter::kMatchCacheLookups: return "match_cache_lookups";
    case TraceCounter::kSubtreeMemoHits: return "subtree_memo_hits";
    case TraceCounter::kSubtreeMemoLookups: return "subtree_memo_lookups";
    case TraceCounter::kDeltaRows: return "delta_rows";
    case TraceCounter::kDeltaTombstones: return "delta_tombstones";
    case TraceCounter::kShardProbes: return "shard_probes";
    case TraceCounter::kDroppedSpans: return "dropped_spans";
    case TraceCounter::kNumCounters: break;
  }
  return "unknown";
}

int64_t Trace::PhaseNs(SpanKind kind) const {
  int64_t total = 0;
  for (const TraceSpan& span : spans) {
    if (span.kind == kind && span.end_ns >= span.start_ns) {
      total += span.end_ns - span.start_ns;
    }
  }
  return total;
}

size_t Trace::PhaseCount(SpanKind kind) const {
  size_t n = 0;
  for (const TraceSpan& span : spans) {
    if (span.kind == kind) ++n;
  }
  return n;
}

bool Trace::WellFormed(std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  for (size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& span = spans[i];
    if (span.end_ns < 0) {
      return fail(std::string("unclosed span ") + SpanKindName(span.kind));
    }
    if (span.end_ns < span.start_ns) {
      return fail(std::string("non-monotonic span ") +
                  SpanKindName(span.kind));
    }
    if (span.parent >= 0) {
      if (static_cast<size_t>(span.parent) >= spans.size()) {
        return fail("parent index out of range");
      }
      const TraceSpan& parent = spans[span.parent];
      if (parent.start_ns > span.start_ns || parent.end_ns < span.end_ns) {
        return fail(std::string("span ") + SpanKindName(span.kind) +
                    " escapes parent " + SpanKindName(parent.kind));
      }
    }
  }
  return true;
}

TraceContext::TraceContext(TraceConfig config)
    : config_(config),
      generation_(g_next_generation.fetch_add(1, std::memory_order_relaxed)) {
  QBE_CHECK(config_.max_spans_per_lane >= 1 &&
            config_.max_spans_per_lane < (1u << 20));
  QBE_CHECK(config_.max_lanes >= 1 && config_.max_lanes <= (1u << 11));
  epoch_ns_ = config_.clock != nullptr ? config_.clock() : SteadyNowNs();
  lanes_.reserve(config_.max_lanes);
}

TraceContext::~TraceContext() = default;

int64_t TraceContext::NowNs() const {
  return (config_.clock != nullptr ? config_.clock() : SteadyNowNs()) -
         epoch_ns_;
}

TraceContext::Lane* TraceContext::LaneForThisThread() {
  if (t_lane_cache.generation == generation_) {
    return static_cast<Lane*>(t_lane_cache.lane);
  }
  std::lock_guard<std::mutex> lock(lanes_mu_);
  auto it = lane_of_thread_.find(std::this_thread::get_id());
  Lane* lane = nullptr;
  if (it != lane_of_thread_.end()) {
    lane = lanes_[it->second].get();
  } else if (lanes_.size() < config_.max_lanes) {
    auto fresh = std::make_unique<Lane>();
    fresh->spans.reserve(config_.max_spans_per_lane);
    fresh->index = static_cast<uint32_t>(lanes_.size());
    lane = fresh.get();
    lane_of_thread_.emplace(std::this_thread::get_id(), fresh->index);
    lanes_.push_back(std::move(fresh));
  } else {
    // Lane budget exhausted: this thread records nothing (counted).
    unassigned_dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  t_lane_cache = LaneCacheEntry{generation_, lane};
  return lane;
}

SpanRef TraceContext::OpenSpan(SpanKind kind, SpanRef parent_hint) {
  Lane* lane = LaneForThisThread();
  if (lane == nullptr) return kNullSpan;
  if (lane->spans.size() >= config_.max_spans_per_lane ||
      lane->depth >= kMaxDepth) {
    lane->dropped += 1;
    return kNullSpan;
  }
  SpanRec rec;
  rec.kind = kind;
  rec.start_ns = NowNs();
  rec.parent = lane->depth > 0 ? lane->stack[lane->depth - 1] : parent_hint;
  uint32_t index = static_cast<uint32_t>(lane->spans.size());
  lane->spans.push_back(rec);
  SpanRef ref = PackRef(lane->index, index);
  lane->stack[lane->depth++] = ref;
  return ref;
}

void TraceContext::CloseSpan(SpanRef ref) {
  if (ref == kNullSpan) return;
  Lane* lane = LaneForThisThread();
  if (lane == nullptr) return;
  uint32_t index = RefIndex(ref);
  QBE_CHECK(index < lane->spans.size());
  lane->spans[index].end_ns = NowNs();
  if (lane->depth > 0 && lane->stack[lane->depth - 1] == ref) {
    lane->depth -= 1;
  }
}

void TraceContext::AnnotateShard(SpanRef ref, int shard) {
  if (ref == kNullSpan) return;
  Lane* lane = LaneForThisThread();
  if (lane == nullptr) return;
  uint32_t index = RefIndex(ref);
  QBE_CHECK(index < lane->spans.size());
  lane->spans[index].shard = static_cast<int32_t>(shard);
}

void TraceContext::Count(TraceCounter counter, int64_t delta) {
  Lane* lane = LaneForThisThread();
  if (lane == nullptr) return;
  lane->counters[static_cast<size_t>(counter)] += delta;
}

Trace TraceContext::Stitch() const {
  std::lock_guard<std::mutex> lock(lanes_mu_);
  Trace trace;
  trace.request_id = request_id_;
  trace.kernel_level = KernelLevelName(ActiveKernelLevel());
  // Global index of each lane's first span, for parent-ref resolution.
  std::vector<size_t> lane_offset(lanes_.size(), 0);
  size_t total = 0;
  for (size_t l = 0; l < lanes_.size(); ++l) {
    lane_offset[l] = total;
    total += lanes_[l]->spans.size();
  }
  trace.spans.reserve(total);
  for (size_t l = 0; l < lanes_.size(); ++l) {
    const Lane& lane = *lanes_[l];
    for (const SpanRec& rec : lane.spans) {
      TraceSpan span;
      span.kind = rec.kind;
      span.lane = static_cast<uint32_t>(l);
      span.start_ns = rec.start_ns;
      span.end_ns = rec.end_ns;
      span.shard = rec.shard;
      span.parent =
          rec.parent == kNullSpan
              ? -1
              : static_cast<int32_t>(lane_offset[RefLane(rec.parent)] +
                                     RefIndex(rec.parent));
      trace.spans.push_back(span);
    }
    for (size_t c = 0; c < kNumCounters; ++c) {
      trace.counters[c] += lane.counters[c];
    }
    trace.dropped_spans += lane.dropped;
  }
  trace.dropped_spans += unassigned_dropped_.load(std::memory_order_relaxed);
  trace.counters[static_cast<size_t>(TraceCounter::kDroppedSpans)] =
      trace.dropped_spans;
  return trace;
}

bool TraceSampler::Sample(uint64_t n) const {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  uint64_t h = SplitMix64(seed ^ (n * 0x9E3779B97F4A7C15ull));
  return static_cast<double>(h) <
         rate * 18446744073709551616.0 /* 2^64 */;
}

namespace {

void AppendSpanEvent(const Trace& trace, const TraceSpan& span,
                     bool* first, std::string* out) {
  char buf[320];
  double ts_us = static_cast<double>(span.start_ns) / 1000.0;
  double dur_us =
      static_cast<double>(std::max<int64_t>(0, span.end_ns - span.start_ns)) /
      1000.0;
  // Kernel-bound spans carry the dispatch level so A/B traces are
  // attributable to the SIMD level that produced them.
  const bool kernel_bound = span.kind == SpanKind::kTextMatch ||
                            span.kind == SpanKind::kEvalExec;
  char args[96] = "";
  if (kernel_bound && !trace.kernel_level.empty()) {
    if (span.shard >= 0) {
      std::snprintf(args, sizeof(args),
                    ",\"args\":{\"kernel_level\":\"%s\",\"shard\":%d}",
                    trace.kernel_level.c_str(), span.shard);
    } else {
      std::snprintf(args, sizeof(args), ",\"args\":{\"kernel_level\":\"%s\"}",
                    trace.kernel_level.c_str());
    }
  } else if (span.shard >= 0) {
    std::snprintf(args, sizeof(args), ",\"args\":{\"shard\":%d}", span.shard);
  }
  std::snprintf(buf, sizeof(buf),
                "%s\n{\"name\":\"%s\",\"cat\":\"qbe\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%llu,\"tid\":%u%s}",
                *first ? "" : ",", SpanKindName(span.kind), ts_us, dur_us,
                static_cast<unsigned long long>(trace.request_id),
                span.lane, args);
  *first = false;
  out->append(buf);
}

}  // namespace

std::string ChromeTraceJson(const std::vector<Trace>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Trace& trace : traces) {
    for (const TraceSpan& span : trace.spans) {
      AppendSpanEvent(trace, span, &first, &out);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string ChromeTraceJson(const Trace& trace) {
  return ChromeTraceJson(std::vector<Trace>{trace});
}

}  // namespace qbe
