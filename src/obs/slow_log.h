#ifndef QBE_OBS_SLOW_LOG_H_
#define QBE_OBS_SLOW_LOG_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qbe {

/// One slow request, as logged by DiscoveryService when a request's
/// end-to-end latency crosses ServiceOptions::slow_query_ms. Phases are
/// filled from the request's trace when it was sampled; an unsampled slow
/// request still logs the scalar fields.
struct SlowQueryRecord {
  uint64_t request_id = 0;
  std::string status;  // "ok", "timed_out", ...
  double latency_seconds = 0.0;
  double queue_seconds = 0.0;
  int et_rows = 0;
  int et_cols = 0;
  int64_t candidates = 0;
  int64_t verifications = 0;
  int64_t queries = 0;  // discovered queries returned
  /// Active SIMD dispatch level ("scalar", "sse", "avx2"; DESIGN.md §14) —
  /// lets latency regressions in aggregated logs be correlated with the
  /// kernel level the process ran under.
  std::string kernel_level;
  bool traced = false;
  /// Per-phase wall seconds (name → seconds), e.g. {"candidate_gen", 0.01}.
  std::vector<std::pair<std::string, double>> phases;
};

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// One JSON object, single line, no trailing newline; keys in a fixed
/// order so the output is machine-parseable and golden-testable.
std::string SlowQueryJson(const SlowQueryRecord& record);

}  // namespace qbe

#endif  // QBE_OBS_SLOW_LOG_H_
