#ifndef QBE_OBS_TRACE_H_
#define QBE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qbe {

/// Request-scoped tracing & profiling (DESIGN.md §13).
///
/// A TraceContext rides through one discovery request (DiscoveryOptions::
/// trace → VerifyContext::trace → EvalEngine → Executor) and records a tree
/// of nested spans with nanosecond timings plus per-phase counters. The
/// recording path is built for the verify hot loop:
///
///  - per-thread lanes: each recording thread gets its own preallocated
///    span buffer and counter array, so Open/Close/Count never contend and
///    never allocate (lane registration — once per thread per request — is
///    the only mutex touch);
///  - fixed span capacity: a full lane drops further spans (counted in
///    kDroppedSpans) instead of growing, keeping the memory bound hard;
///  - null-context short-circuit: every instrumentation site guards on
///    `trace == nullptr`, so an untraced run costs one predictable branch
///    and is bit-identical to an uninstrumented build.
///
/// At request end Stitch() merges the lanes into one Trace whose span tree
/// satisfies: balanced open/close, monotonic clocks (end >= start), and
/// parent containment (a child's interval lies within its parent's) — the
/// invariants tests/trace_test.cc locks down.

/// Span taxonomy. Fixed at compile time so span records carry one byte
/// instead of a name allocation.
enum class SpanKind : uint8_t {
  kRequest = 0,      // whole service request (root)
  kCandidateGen,     // §3.2 candidate enumeration
  kEtTokenResolve,   // ET-cell token-id resolution against the TokenDict
  kVerifyAll,        // per-algorithm verification phase...
  kSimplePrune,
  kFilter,
  kFilterExact,
  kWeave,
  kRelaxedVerify,    // min_row_support >= 0 row-counting path
  kRank,             // result ranking + SQL rendering
  kEvalExec,         // one executed existence query (eval-cache miss)
  kEvalCacheLookup,  // shared verification-outcome cache probe
  kTextMatch,        // phrase/exact matching inside one SeedNode
  kWalAppend,        // ingest: one WAL-logged mutation commit
  kWalReplay,        // ingest: WAL replay at attach
  kCompaction,       // ingest: overlay fold into a fresh base
  kNetRead,          // net: draining + framing one socket readable event
  kNetWrite,         // net: flushing buffered response bytes to a socket
  kNumKinds
};

const char* SpanKindName(SpanKind kind);

/// Counters accumulated per lane and summed at stitch time.
enum class TraceCounter : uint8_t {
  kCandidatesGenerated = 0,
  kQueriesVerified,   // existence queries actually executed
  kValidQueries,
  kEvalCacheHits,
  kEvalCacheLookups,
  kMatchCacheHits,
  kMatchCacheLookups,
  kSubtreeMemoHits,
  kSubtreeMemoLookups,
  kDeltaRows,        // overlay rows visible to this request's pinned epoch
  kDeltaTombstones,
  kShardProbes,      // shard-local existence-query probes (DESIGN.md §15)
  kDroppedSpans,
  kNumCounters
};

const char* TraceCounterName(TraceCounter counter);

/// Handle to a recorded span: lane index << 20 | (span index + 1).
/// 0 = null (span was dropped or tracing is off); Close on null is a no-op.
using SpanRef = uint32_t;
inline constexpr SpanRef kNullSpan = 0;

struct TraceConfig {
  /// Hard cap on spans recorded per lane; the overflow is dropped and
  /// counted. 2^20-1 is the representable maximum (SpanRef packing).
  uint32_t max_spans_per_lane = 32768;
  /// Hard cap on recording threads; late threads drop their spans.
  uint32_t max_lanes = 32;
  /// Test seam: injectable monotonic nanosecond clock. Null = the real
  /// steady clock. A plain function pointer so the hot path stays cheap.
  int64_t (*clock)() = nullptr;
};

/// One span of a stitched Trace.
struct TraceSpan {
  SpanKind kind = SpanKind::kRequest;
  uint32_t lane = 0;
  int64_t start_ns = 0;
  int64_t end_ns = -1;  // -1: never closed (malformed tree)
  int32_t parent = -1;  // index into Trace::spans; -1 = root
  int32_t shard = -1;   // shard that answered (sharded eval_exec only)
};

/// The stitched, immutable result of one traced request.
struct Trace {
  /// Request sequence number (service-assigned; 0 for standalone runs).
  uint64_t request_id = 0;
  /// Kernel dispatch level (KernelLevelName of DESIGN.md §14's layer) the
  /// process ran this request under, captured at Stitch so speedups in
  /// text_match / eval_exec spans are attributable to the SIMD level that
  /// produced them. Exporters label those spans with it.
  std::string kernel_level;
  std::vector<TraceSpan> spans;
  int64_t counters[static_cast<size_t>(TraceCounter::kNumCounters)] = {};
  int64_t dropped_spans = 0;

  int64_t counter(TraceCounter c) const {
    return counters[static_cast<size_t>(c)];
  }
  /// Total nanoseconds across all (closed) spans of `kind`.
  int64_t PhaseNs(SpanKind kind) const;
  /// Number of spans of `kind`.
  size_t PhaseCount(SpanKind kind) const;
  /// Checks the span-tree invariants: every span closed, end >= start,
  /// parents precede children and contain their intervals. On failure
  /// returns false and (if non-null) writes the reason to `why`.
  bool WellFormed(std::string* why = nullptr) const;
};

/// Live recording context for one request. Thread-safe: any number of
/// threads may open/close spans and bump counters concurrently; each writes
/// only to its own lane. Stitch() must be called after all recording
/// threads are done (the request barrier guarantees this).
class TraceContext {
 public:
  explicit TraceContext(TraceConfig config = {});
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span. `parent_hint` supplies the parent when this thread has
  /// no enclosing open span (fan-out: a verify worker's evaluations hang
  /// off the request's verify span, which lives on another lane); with an
  /// enclosing span on this lane, nesting wins and the hint is ignored.
  SpanRef OpenSpan(SpanKind kind, SpanRef parent_hint = kNullSpan);

  /// Closes `ref` (no-op for kNullSpan). Must be called on the opening
  /// thread in LIFO order — ScopedSpan guarantees both.
  void CloseSpan(SpanRef ref);

  /// Tags `ref` with the shard that answered it (sharded scatter-gather;
  /// DESIGN.md §15). Same discipline as CloseSpan: opening thread, while
  /// the span is open. No-op for kNullSpan.
  void AnnotateShard(SpanRef ref, int shard);

  void Count(TraceCounter counter, int64_t delta);

  /// Nanoseconds since context creation on the configured clock.
  int64_t NowNs() const;

  uint64_t request_id() const { return request_id_; }
  void set_request_id(uint64_t id) { request_id_ = id; }

  /// Merges all lanes into one Trace (see invariants above). Safe to call
  /// repeatedly; recording after a Stitch is allowed but unusual.
  Trace Stitch() const;

 private:
  struct SpanRec {
    int64_t start_ns = 0;
    int64_t end_ns = -1;
    SpanRef parent = kNullSpan;  // packed ref, resolved at stitch
    SpanKind kind = SpanKind::kRequest;
    int32_t shard = -1;
  };

  static constexpr int kMaxDepth = 64;

  struct Lane {
    std::vector<SpanRec> spans;  // reserved up front, never reallocated
    uint32_t stack[kMaxDepth];   // open spans, innermost last
    uint32_t index = 0;          // this lane's slot in lanes_
    int depth = 0;
    int64_t counters[static_cast<size_t>(TraceCounter::kNumCounters)] = {};
    int64_t dropped = 0;
  };

  Lane* LaneForThisThread();

  TraceConfig config_;
  int64_t epoch_ns_;  // absolute clock value at construction
  uint64_t request_id_ = 0;
  /// Process-unique, never-reused id keying the per-thread lane cache.
  /// Keying on `this` would serve a stale freed lane when a context is
  /// destroyed (possibly on another thread) and its address is reused by
  /// the next request's context.
  uint64_t generation_;

  mutable std::mutex lanes_mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unordered_map<std::thread::id, uint32_t> lane_of_thread_;
  std::atomic<int64_t> unassigned_dropped_{0};  // beyond max_lanes
};

/// RAII span; tolerates a null context (records nothing).
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, SpanKind kind, SpanRef parent_hint = kNullSpan)
      : ctx_(ctx),
        ref_(ctx == nullptr ? kNullSpan : ctx->OpenSpan(kind, parent_hint)) {}
  ~ScopedSpan() {
    if (ctx_ != nullptr) ctx_->CloseSpan(ref_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanRef ref() const { return ref_; }

 private:
  TraceContext* ctx_;
  SpanRef ref_;
};

/// Deterministic per-request sampling decision: request n is traced iff
/// splitmix64(seed, n) < rate * 2^64. The same (seed, n) always decides the
/// same way — the determinism tests/trace_test.cc requires — and decisions
/// are independent across n.
struct TraceSampler {
  double rate = 0.0;
  uint64_t seed = 42;

  bool Sample(uint64_t n) const;
};

/// Renders traces as Chrome trace-event JSON ("X" complete events, ts/dur
/// in microseconds), loadable in chrome://tracing or Perfetto. Each trace
/// becomes one process (pid = request id), each lane one thread.
std::string ChromeTraceJson(const std::vector<Trace>& traces);
std::string ChromeTraceJson(const Trace& trace);

}  // namespace qbe

#endif  // QBE_OBS_TRACE_H_
