#include "obs/prom.h"

#include <cstdio>

namespace qbe {
namespace {

std::string Sanitize(const std::string& name) {
  std::string out = "qbe_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = Sanitize(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = Sanitize(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatDouble(value) + "\n";
  }
  for (const MetricsSnapshot::HistogramData& hist : snapshot.histograms) {
    std::string prom = Sanitize(hist.name);
    out += "# TYPE " + prom + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += i < hist.buckets.size() ? hist.buckets[i] : 0;
      out += prom + "_bucket{le=\"" + FormatDouble(hist.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    out += prom + "_sum " + FormatDouble(hist.sum) + "\n";
    out += prom + "_count " + std::to_string(hist.count) + "\n";
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry.Snapshot());
}

}  // namespace qbe
