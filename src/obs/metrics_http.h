#ifndef QBE_OBS_METRICS_HTTP_H_
#define QBE_OBS_METRICS_HTTP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace qbe {

/// Minimal loopback HTTP/1.1 exporter for `qbe_serve --metrics-port`: one
/// accept thread, GET-only, no keep-alive — just enough for a Prometheus
/// scraper or `curl 127.0.0.1:PORT/metrics`. Not a general web server and
/// never bound to a non-loopback interface.
class MetricsHttpServer {
 public:
  /// Called per request with the path (e.g. "/metrics"); returns the body
  /// and sets `*content_type`. An empty return = 404.
  using Handler =
      std::function<std::string(const std::string& path,
                                std::string* content_type)>;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// accept thread. On failure ok() is false and error() says why.
  MetricsHttpServer(uint16_t port, Handler handler);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  uint16_t port() const { return port_; }

  /// Stops accepting and joins the thread. Idempotent.
  void Stop();

 private:
  void Serve();

  Handler handler_;
  std::string error_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  // written to wake the poll loop
  std::thread thread_;
};

}  // namespace qbe

#endif  // QBE_OBS_METRICS_HTTP_H_
