#include "obs/slow_log.h"

#include <cstdio>

namespace qbe {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string SlowQueryJson(const SlowQueryRecord& record) {
  char buf[256];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"event\":\"slow_query\",\"request_id\":%llu,"
                "\"status\":\"%s\",\"latency_ms\":%.3f,\"queue_ms\":%.3f",
                static_cast<unsigned long long>(record.request_id),
                JsonEscape(record.status).c_str(),
                record.latency_seconds * 1e3, record.queue_seconds * 1e3);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"et_rows\":%d,\"et_cols\":%d,\"candidates\":%lld,"
                "\"verifications\":%lld,\"queries\":%lld,"
                "\"kernel_level\":\"%s\",\"traced\":%s",
                record.et_rows, record.et_cols,
                static_cast<long long>(record.candidates),
                static_cast<long long>(record.verifications),
                static_cast<long long>(record.queries),
                JsonEscape(record.kernel_level).c_str(),
                record.traced ? "true" : "false");
  out += buf;
  out += ",\"phases\":{";
  bool first = true;
  for (const auto& [name, seconds] : record.phases) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.3f", first ? "" : ",",
                  JsonEscape(name).c_str(), seconds * 1e3);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace qbe
