#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace qbe {

MetricsHttpServer::MetricsHttpServer(uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error_ = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0 || ::pipe(stop_pipe_) < 0) {
    error_ = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  thread_ = std::thread([this] { Serve(); });
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Stop() {
  if (thread_.joinable()) {
    char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
    thread_.join();
  }
  for (int* fd : {&listen_fd_, &stop_pipe_[0], &stop_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void MetricsHttpServer::Serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // One short read covers any sane "GET /path HTTP/1.1" request line;
    // this exporter never parses bodies or headers.
    char buf[2048];
    ssize_t n = ::read(client, buf, sizeof(buf) - 1);
    std::string response;
    if (n > 0) {
      buf[n] = '\0';
      std::string request(buf);
      std::string path;
      if (request.rfind("GET ", 0) == 0) {
        size_t end = request.find(' ', 4);
        if (end != std::string::npos) path = request.substr(4, end - 4);
      }
      std::string content_type = "text/plain; version=0.0.4";
      std::string body =
          path.empty() ? "" : handler_(path, &content_type);
      if (body.empty()) {
        response =
            "HTTP/1.1 404 Not Found\r\nContent-Length: 10\r\n"
            "Connection: close\r\n\r\nnot found\n";
      } else {
        response = "HTTP/1.1 200 OK\r\nContent-Type: " + content_type +
                   "\r\nContent-Length: " + std::to_string(body.size()) +
                   "\r\nConnection: close\r\n\r\n" + body;
      }
    }
    size_t sent = 0;
    while (sent < response.size()) {
      ssize_t w = ::write(client, response.data() + sent,
                          response.size() - sent);
      if (w <= 0) break;
      sent += static_cast<size_t>(w);
    }
    ::close(client);
  }
}

}  // namespace qbe
