#include "obs/metrics_http.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/socket.h"

namespace qbe {

MetricsHttpServer::MetricsHttpServer(uint16_t port, Handler handler)
    : handler_(std::move(handler)) {
  ListenSocket listener = OpenLoopbackListener(port, /*backlog=*/16);
  if (!listener.ok()) {
    error_ = listener.error;
    return;
  }
  listen_fd_ = listener.fd;
  port_ = listener.port;
  if (::pipe(stop_pipe_) < 0) {
    error_ = std::string("pipe: ") + std::strerror(errno);
    CloseFd(&listen_fd_);
    return;
  }
  thread_ = std::thread([this] { Serve(); });
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Stop() {
  if (thread_.joinable()) {
    char byte = 'x';
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
    thread_.join();
  }
  CloseFd(&listen_fd_);
  CloseFd(&stop_pipe_[0]);
  CloseFd(&stop_pipe_[1]);
}

void MetricsHttpServer::Serve() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = AcceptRetry(listen_fd_);
    if (client < 0) continue;
    // One short read covers any sane "GET /path HTTP/1.1" request line;
    // this exporter never parses bodies or headers.
    char buf[2048];
    ssize_t n = ReadRetry(client, buf, sizeof(buf) - 1);
    std::string response;
    if (n > 0) {
      buf[n] = '\0';
      std::string request(buf);
      std::string path;
      if (request.rfind("GET ", 0) == 0) {
        size_t end = request.find(' ', 4);
        if (end != std::string::npos) path = request.substr(4, end - 4);
      }
      std::string content_type = "text/plain; version=0.0.4";
      std::string body =
          path.empty() ? "" : handler_(path, &content_type);
      if (body.empty()) {
        response =
            "HTTP/1.1 404 Not Found\r\nContent-Length: 10\r\n"
            "Connection: close\r\n\r\nnot found\n";
      } else {
        response = "HTTP/1.1 200 OK\r\nContent-Type: " + content_type +
                   "\r\nContent-Length: " + std::to_string(body.size()) +
                   "\r\nConnection: close\r\n\r\n" + body;
      }
    }
    // WriteAll retries EINTR and short writes — a multi-MB /metrics body
    // no longer truncates at the first partial write.
    WriteAll(client, response.data(), response.size());
    ::close(client);
  }
}

}  // namespace qbe
