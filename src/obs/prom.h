#ifndef QBE_OBS_PROM_H_
#define QBE_OBS_PROM_H_

#include <string>

#include "service/metrics.h"

namespace qbe {

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (v0.0.4): every metric prefixed `qbe_`, names sanitized to
/// [a-zA-Z0-9_], histograms as cumulative `_bucket{le="..."}` series plus
/// `_sum`/`_count`. Deterministic: same snapshot, same bytes (the golden
/// check in tests/trace_test.cc). This is what `qbe_serve --metrics-port`
/// serves at GET /metrics.
std::string PrometheusText(const MetricsSnapshot& snapshot);
std::string PrometheusText(const MetricsRegistry& registry);

}  // namespace qbe

#endif  // QBE_OBS_PROM_H_
