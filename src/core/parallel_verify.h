#ifndef QBE_CORE_PARALLEL_VERIFY_H_
#define QBE_CORE_PARALLEL_VERIFY_H_

#include <functional>
#include <memory>

#include "core/verifier.h"
#include "util/thread_pool.h"

namespace qbe {

/// Resolves where a Verify call's parallelism comes from. threads <= 1 →
/// serial reference path (pool() is null). Otherwise the call borrows
/// VerifyContext::pool — DiscoveryService's shared verify pool, so
/// concurrent requests compete for the same idle workers — or, when none is
/// provided, owns a transient pool for the duration of the call.
class VerifyPoolHandle {
 public:
  explicit VerifyPoolHandle(const VerifyContext& ctx);

  /// Null when the verifier should take the serial path.
  ThreadPool* pool() const { return pool_; }
  int threads() const { return threads_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_ = nullptr;
  int threads_ = 1;
};

/// Runs fn(0), ..., fn(n-1) to completion, fanning the calls out over
/// `pool` (all inline on the calling thread when `pool` is null). Blocks
/// until every call returned. Tasks must confine their writes to disjoint,
/// preallocated slots indexed by their argument; the caller merges slots in
/// canonical index order afterwards — that discipline is what makes the
/// parallel engine's output independent of the thread count.
void ParallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn);

}  // namespace qbe

#endif  // QBE_CORE_PARALLEL_VERIFY_H_
