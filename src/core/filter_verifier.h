#ifndef QBE_CORE_FILTER_VERIFIER_H_
#define QBE_CORE_FILTER_VERIFIER_H_

#include "core/filter_universe.h"
#include "core/verifier.h"
#include "exec/stats.h"

namespace qbe {

/// How cost(F) is computed for the E[W]/cost greedy criterion.
enum class FilterCostModel {
  /// The paper's proxy: join-tree size (§5.2 Remarks — "we use the number
  /// of joins in a filter F to approximate the cost").
  kTreeSize,
  /// Index-statistics estimate (seed selectivity × join expansion) via
  /// exec/stats.h. Extension; compared in bench_ablation_filter.
  kEstimated,
};

/// FILTER (§5): the paper's contribution. Builds the deduplicated filter
/// universe of all candidates, then runs the adaptive verification loop of
/// Algorithm 1: repeatedly evaluate the filter maximizing expected workload
/// per unit cost (Eq. 9), propagate success down the sub-filter order
/// (Lemma 4) and failure up it (Lemma 3), invalidate every candidate owning
/// a failed filter (Lemma 2), and validate a candidate once all its basic
/// filters are known successes — until every candidate is resolved.
///
/// The expected-workload model follows §5.3.1: a filter constraining nF of
/// the ET's n columns fails with probability p(F) = p̂·nF/n where p̂ is the
/// average failure prior; cost(F) is its join-tree size. Greedy selection
/// by E[W]/cost enjoys the adaptive-submodularity guarantee of Theorem 4.
class FilterVerifier : public CandidateVerifier {
 public:
  struct Options {
    /// p̂, the average failure probability constant of the model (§5.3.1
    /// leaves its value open). Empirically a small prior works best: most
    /// weakly-constrained filters succeed, so over-betting on failure
    /// wastes evaluations. The parameter sensitivity is charted by the
    /// ablation micro-bench.
    double failure_prior = 0.1;

    /// When set, p̂ is re-estimated online from observed filter outcomes
    /// (Bayes-smoothed running failure rate), clamped to [0.02, 0.9]. The
    /// model stays "a constant p" in structure; only the constant adapts
    /// to the workload. Extension beyond the paper; off by default.
    bool adaptive_prior = false;

    /// See FilterCostModel; kEstimated requires `stats`.
    FilterCostModel cost_model = FilterCostModel::kTreeSize;

    /// Statistics snapshot for kEstimated (not owned; must outlive the
    /// verifier call).
    const Statistics* stats = nullptr;

    /// Accelerated (lazy) greedy selection: scores are adaptively
    /// diminishing (Lemma 6), so stale priority-queue entries are upper
    /// bounds and can be re-validated on pop instead of rescoring every
    /// filter each round. Identical valid sets and near-identical
    /// evaluation counts, but the selection overhead drops from
    /// O(|F|) per evaluation to amortized O(log |F|) — on heavy-tailed
    /// ETs with thousands of candidates the exact scan dominates wall
    /// time, so lazy is the default; the exact scan remains available for
    /// the ablation study.
    bool lazy_greedy = true;
  };

  FilterVerifier() = default;
  explicit FilterVerifier(Options options) : options_(options) {}

  /// Convenience for the common two-knob construction.
  FilterVerifier(double failure_prior, bool lazy_greedy) {
    options_.failure_prior = failure_prior;
    options_.lazy_greedy = lazy_greedy;
  }

  std::string name() const override {
    return options_.lazy_greedy ? "Filter(lazy)" : "Filter";
  }

  std::vector<bool> Verify(const VerifyContext& ctx,
                           VerificationCounters* counters) override;

 private:
  Options options_;
};

}  // namespace qbe

#endif  // QBE_CORE_FILTER_VERIFIER_H_
