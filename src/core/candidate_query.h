#ifndef QBE_CORE_CANDIDATE_QUERY_H_
#define QBE_CORE_CANDIDATE_QUERY_H_

#include <string>
#include <vector>

#include "core/example_table.h"
#include "exec/predicate.h"
#include "schema/join_tree.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

/// A (minimal) candidate project-join query (Definition 4): a join tree J
/// plus the projection mapping φ from ET columns to text columns of J's
/// relations. `projection[i]` is φ(i) and is always defined (candidates map
/// every ET column; only filters have undefined positions).
struct CandidateQuery {
  JoinTree tree;
  std::vector<ColumnRef> projection;

  friend bool operator==(const CandidateQuery& a, const CandidateQuery& b) {
    return a.tree == b.tree && a.projection == b.projection;
  }
};

/// Minimality (Definition 3 condition ii): every degree-≤1 relation of the
/// join tree hosts at least one mapped ET column — otherwise the leaf (and
/// its join) could be removed while staying valid.
bool IsMinimalCandidate(const CandidateQuery& query, const SchemaGraph& graph);

/// The CQ-row verification predicates for `query` on ET row `row` (§4.1):
/// one CONTAINS conjunct per non-empty cell.
std::vector<PhrasePredicate> RowPredicates(const CandidateQuery& query,
                                           const ExampleTable& et, int row);

/// Allocation-reusing variant: rewrites `*out` in place (existing elements'
/// buffers are reused). With non-null `et_ids`, predicates carry the
/// request's pre-resolved token ids so the executor skips all per-call
/// dictionary lookups.
void RowPredicatesInto(const CandidateQuery& query, const ExampleTable& et,
                       const EtTokenIds* et_ids, int row,
                       std::vector<PhrasePredicate>* out);

/// Debug rendering: join tree plus "EtCol->Relation.Column" mappings.
std::string CandidateToString(const CandidateQuery& query, const Database& db,
                              const SchemaGraph& graph,
                              const ExampleTable& et);

}  // namespace qbe

#endif  // QBE_CORE_CANDIDATE_QUERY_H_
