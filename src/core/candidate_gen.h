#ifndef QBE_CORE_CANDIDATE_GEN_H_
#define QBE_CORE_CANDIDATE_GEN_H_

#include <cstddef>
#include <vector>

#include "core/candidate_query.h"
#include "core/example_table.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

class DbView;

struct CandidateGenOptions {
  /// Maximal join length l: the largest number of relations allowed in a
  /// candidate join tree (Table 3; default 4).
  int max_join_tree_size = 4;

  /// Safety valve against pathological example tables: candidate
  /// enumeration stops after this many candidates.
  size_t max_candidates = 200000;
};

/// Candidate projection-column retrieval (§3.2 step 1, Eq. 3): for each ET
/// column j, the base-table text columns containing *every* non-empty cell
/// value of column j, computed by intersecting master-column-index lookups.
std::vector<std::vector<ColumnRef>> RetrieveCandidateColumns(
    const Database& db, const ExampleTable& et);

/// Relaxed column constraint for the min-row-support extension (paper §8
/// future work): a base column qualifies for ET column j if at least
/// `min_row_support` rows are compatible with it (a row is compatible when
/// its cell is empty or contained in the column). With
/// `min_row_support == et.num_rows()` this reduces to Eq. 3.
std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsRelaxed(
    const Database& db, const ExampleTable& et, int min_row_support);

/// Version-aware retrieval over a pinned live-database epoch: identical to
/// the Database overloads on a plain view; with a delta overlay, phrases
/// and columns only present in appended rows participate. The result may be
/// a superset of a cold load's (a column whose only containing rows are
/// tombstoned can survive retrieval) — verification is exact and eliminates
/// such candidates; retrieval must never underreport.
std::vector<std::vector<ColumnRef>> RetrieveCandidateColumns(
    const DbView& view, const ExampleTable& et);

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsRelaxed(
    const DbView& view, const ExampleTable& et, int min_row_support);

/// Candidate query enumeration (§3.2 step 2): all minimal candidate
/// project-join queries over the schema graph whose projection mapping
/// draws from `candidate_columns` and whose join tree has at most
/// `options.max_join_tree_size` relations. No joins are executed.
std::vector<CandidateQuery> EnumerateCandidateQueries(
    const Database& db, const SchemaGraph& graph, const ExampleTable& et,
    const std::vector<std::vector<ColumnRef>>& candidate_columns,
    const CandidateGenOptions& options);

/// Convenience wrapper running both steps.
std::vector<CandidateQuery> GenerateCandidates(
    const Database& db, const SchemaGraph& graph, const ExampleTable& et,
    const CandidateGenOptions& options);

}  // namespace qbe

#endif  // QBE_CORE_CANDIDATE_GEN_H_
