#ifndef QBE_CORE_FILTER_H_
#define QBE_CORE_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/candidate_query.h"
#include "core/example_table.h"
#include "exec/predicate.h"
#include "schema/join_tree.h"
#include "storage/database.h"

namespace qbe {

/// A filter (Definition 5): a connected sub-join tree J' of some candidate
/// query, the range restriction φ' of the candidate's projection to J', and
/// one ET row. Filters are the verification currency of §5 — a candidate is
/// valid iff all its *basic* filters (J' = J) succeed, and one failed filter
/// invalidates every candidate containing it.
struct Filter {
  JoinTree tree;
  /// φ'(i): the mapped column if its relation lies in `tree`, invalid
  /// ColumnRef for the paper's "*" (undefined).
  std::vector<ColumnRef> phi;
  int row = 0;

  /// Bit i set iff ET cell (row, i) is non-empty AND φ'(i) is defined —
  /// exactly the cells that contribute CONTAINS predicates. Cached because
  /// every dependency test consults it.
  uint32_t constrained_mask = 0;

  /// Subset of `constrained_mask`: cells flagged exact-match (§2.2
  /// Remarks), whose predicates require whole-cell equality.
  uint32_t exact_mask = 0;

  /// nF of §5.3.1: number of constrained cells.
  int NumConstrainedCells() const;

  /// True iff this filter is guaranteed to succeed without evaluation: a
  /// single-relation filter with at most one constrained cell, none of
  /// them exact-match. The column constraint established during candidate
  /// generation (Eq. 2) already proves the cell value is *contained* in
  /// the mapped column, so the TOP-1 existence query cannot be empty.
  /// (Exact-match cells are excluded: the column index proves containment
  /// only.) Algorithm 1 marks such filters known-successful up front
  /// instead of spending verifications on them.
  bool IsTriviallySuccessful() const {
    return tree.NumVertices() == 1 && NumConstrainedCells() <= 1 &&
           exact_mask == 0;
  }

  /// cost(F): join-tree size (the estimated-cost unit used throughout the
  /// paper's experiments is the sum of join tree sizes).
  int Cost() const { return tree.NumVertices(); }

  friend bool operator==(const Filter& a, const Filter& b) {
    return a.row == b.row && a.tree == b.tree && a.phi == b.phi;
  }

  size_t Hash() const;
};

struct FilterHash {
  size_t operator()(const Filter& f) const { return f.Hash(); }
};

/// Builds the filter Q(J', r) of candidate `query` (Definition 5): restricts
/// the projection to `subtree` and records the constrained-cell mask.
Filter MakeFilter(const CandidateQuery& query, const JoinTree& subtree,
                  const ExampleTable& et, int row);

/// The CONTAINS predicates evaluating this filter (Definition 6).
std::vector<PhrasePredicate> FilterPredicates(const Filter& filter,
                                              const ExampleTable& et);

/// Allocation-reusing variant of FilterPredicates (see RowPredicatesInto).
void FilterPredicatesInto(const Filter& filter, const ExampleTable& et,
                          const EtTokenIds* et_ids,
                          std::vector<PhrasePredicate>* out);

/// Sub-filter relation: true iff `sub.tree` ⊆ `super.tree`, rows match, and
/// for every non-empty cell either sub's φ is undefined or equals super's.
/// By Lemmas 3 and 4 this single relation carries both dependencies:
///   failure(sub)  ⇒ failure(super)   (Lemma 3)
///   success(super) ⇒ success(sub)    (Lemma 4)
bool IsSubFilterOf(const Filter& sub, const Filter& super);

/// Lemma 1's candidate-level failure dependency, used by SIMPLEPRUNE:
/// failure of `failed` on row `row` implies failure of `other` on `row` iff
/// failed.tree ⊆ other.tree and the projections agree on every non-empty
/// cell of the row.
bool QueryFailureImplies(const CandidateQuery& failed,
                         const CandidateQuery& other, const ExampleTable& et,
                         int row);

}  // namespace qbe

#endif  // QBE_CORE_FILTER_H_
