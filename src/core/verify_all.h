#ifndef QBE_CORE_VERIFY_ALL_H_
#define QBE_CORE_VERIFY_ALL_H_

#include "core/verifier.h"

namespace qbe {

/// VERIFYALL (§4.1): verifies every candidate for every ET row with one
/// CQ-row SQL query each, eliminating a candidate at its first failing row.
/// Candidate order is irrelevant to the verification count; row order is
/// not — dense rows first tends to fail candidates earlier.
class VerifyAll : public CandidateVerifier {
 public:
  explicit VerifyAll(RowOrder row_order = RowOrder::kDenseFirst)
      : row_order_(row_order) {}

  std::string name() const override { return "VerifyAll"; }

  std::vector<bool> Verify(const VerifyContext& ctx,
                           VerificationCounters* counters) override;

 private:
  RowOrder row_order_;
};

}  // namespace qbe

#endif  // QBE_CORE_VERIFY_ALL_H_
