#ifndef QBE_CORE_SESSION_H_
#define QBE_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/example_table.h"
#include "core/verifier.h"
#include "exec/executor.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

/// Interactive discovery session: the user refines the example table
/// incrementally — typically adding one remembered tuple at a time to
/// narrow the returned queries — and each step reuses the previous steps'
/// verification outcomes. A verification's result depends only on its join
/// tree and predicates, never on which ET row produced them, so when a row
/// is added every evaluation from earlier steps is still valid; only
/// predicates involving the new row's values hit the executor.
///
/// This is the natural system companion to the paper's batch task: §1's
/// information worker rarely types the whole ET up front.
class DiscoverySession {
 public:
  /// The database must outlive the session and have indexes built. The
  /// session owns a private single-threaded EvalCache.
  explicit DiscoverySession(const Database& db,
                            const DiscoveryOptions& options = {});

  /// Shares verification outcomes with other sessions through
  /// `shared_cache` (not owned; must outlive the session). Pass a
  /// thread-safe implementation — typically the ConcurrentEvalCache owned
  /// by a DiscoveryService — when sessions run on different threads.
  DiscoverySession(const Database& db, const DiscoveryOptions& options,
                   EvalCacheBase* shared_cache);

  /// Replaces the example table (keeps the outcome cache).
  void SetTable(ExampleTable et);

  /// Appends one row ("" cells are empty). The column count is fixed by
  /// the first row / SetTable call.
  void AddRow(const std::vector<std::string>& cells);

  /// Removes the last row (undo); cached outcomes are kept.
  void RemoveLastRow();

  /// Arms (null = disarms) request tracing for subsequent Discover calls
  /// (obs/trace.h; observation-only — outcomes and verification counts are
  /// unaffected). Not owned; must outlive the Discover calls it covers.
  void set_trace(TraceContext* trace) { options_.trace = trace; }

  /// Runs discovery for the current table, reusing cached outcomes.
  /// Check-fails if no rows have been provided yet.
  DiscoveryResult Discover();

  const ExampleTable& table() const;
  int num_rows() const;

  /// Cumulative verifications actually executed across all Discover calls.
  int64_t total_verifications() const { return total_verifications_; }
  /// Verifications avoided thanks to the cache. With a shared cache these
  /// are process-wide numbers, not per-session ones.
  int64_t cache_hits() const { return cache_->hits(); }
  size_t cache_size() const { return cache_->size(); }

 private:
  void RebuildTable();

  const Database& db_;
  DiscoveryOptions options_;
  SchemaGraph graph_;
  Executor exec_;
  EvalCache own_cache_;
  EvalCacheBase* cache_;  // own_cache_ or the shared cache
  std::vector<std::string> column_names_;
  std::vector<std::vector<EtCell>> rows_;
  std::unique_ptr<ExampleTable> et_;
  int64_t total_verifications_ = 0;
};

}  // namespace qbe

#endif  // QBE_CORE_SESSION_H_
