#include "core/filter.h"

#include <bit>

namespace qbe {

int Filter::NumConstrainedCells() const {
  return std::popcount(constrained_mask);
}

size_t Filter::Hash() const {
  size_t h = tree.Hash() * 31 + static_cast<size_t>(row);
  for (const ColumnRef& col : phi) {
    h = h * 1000003 + static_cast<size_t>(col.rel + 1) * 4096 +
        static_cast<size_t>(col.col + 1);
  }
  return h;
}

Filter MakeFilter(const CandidateQuery& query, const JoinTree& subtree,
                  const ExampleTable& et, int row) {
  Filter f;
  f.tree = subtree;
  f.row = row;
  f.phi.resize(query.projection.size());
  for (size_t c = 0; c < query.projection.size(); ++c) {
    const ColumnRef& mapped = query.projection[c];
    if (subtree.verts.Test(mapped.rel)) {
      f.phi[c] = mapped;
      const EtCell& cell = et.cell(row, static_cast<int>(c));
      if (!cell.IsEmpty()) {
        f.constrained_mask |= uint32_t{1} << c;
        if (cell.exact) f.exact_mask |= uint32_t{1} << c;
      }
    }
  }
  return f;
}

std::vector<PhrasePredicate> FilterPredicates(const Filter& filter,
                                              const ExampleTable& et) {
  std::vector<PhrasePredicate> predicates;
  FilterPredicatesInto(filter, et, nullptr, &predicates);
  return predicates;
}

void FilterPredicatesInto(const Filter& filter, const ExampleTable& et,
                          const EtTokenIds* et_ids,
                          std::vector<PhrasePredicate>* out) {
  size_t n = 0;
  for (int c = 0; c < et.num_columns(); ++c) {
    if (((filter.constrained_mask >> c) & 1) == 0) continue;
    if (out->size() == n) out->emplace_back();
    PhrasePredicate& pred = (*out)[n++];
    pred.column = filter.phi[c];
    pred.tokens = et.CellTokens(filter.row, c);
    pred.exact = et.cell(filter.row, c).exact;
    if (et_ids != nullptr) {
      pred.ids = et_ids->CellIds(filter.row, c);
    } else {
      pred.ids.clear();
    }
  }
  out->resize(n);
}

bool IsSubFilterOf(const Filter& sub, const Filter& super) {
  if (sub.row != super.row) return false;
  if (!sub.tree.IsSubtreeOf(super.tree)) return false;
  // Lemma 3 condition ii): on every constrained cell of `sub`, the two
  // projections must agree (sub's mask only covers defined, non-empty
  // cells; undefined or empty cells are unconstrained).
  if ((sub.constrained_mask & ~super.constrained_mask) != 0) return false;
  uint32_t mask = sub.constrained_mask;
  while (mask != 0) {
    int c = std::countr_zero(mask);
    mask &= mask - 1;
    if (!(sub.phi[c] == super.phi[c])) return false;
  }
  return true;
}

bool QueryFailureImplies(const CandidateQuery& failed,
                         const CandidateQuery& other, const ExampleTable& et,
                         int row) {
  if (!failed.tree.IsSubtreeOf(other.tree)) return false;
  for (int c = 0; c < et.num_columns(); ++c) {
    if (et.cell(row, c).IsEmpty()) continue;
    if (!(failed.projection[c] == other.projection[c])) return false;
  }
  return true;
}

}  // namespace qbe
