#ifndef QBE_CORE_EXAMPLE_TABLE_H_
#define QBE_CORE_EXAMPLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/token_dict.h"

namespace qbe {

class DbView;

/// One cell of an example table: a string of one or more tokens, or empty
/// (Definition 1). `exact` opts into whole-value matching (the paper's
/// numeric exact-match extension, §2.2 Remarks).
struct EtCell {
  std::string text;
  bool exact = false;

  bool IsEmpty() const { return text.empty(); }
};

/// The user-provided example table T (Definition 1): m rows × n columns of
/// partially specified cells, typically typed into a spreadsheet-style
/// interface. Tokenizations are cached at insertion time since every
/// verification touches them.
class ExampleTable {
 public:
  /// `column_names` fixes the column count; names may be empty strings
  /// (display defaults to A, B, C, …).
  explicit ExampleTable(std::vector<std::string> column_names);

  /// Convenience: n unnamed columns.
  static ExampleTable WithColumns(int n);

  /// Appends a row of cell strings ("" = empty cell).
  void AddRow(const std::vector<std::string>& cells);
  /// Appends a row with exact-match flags.
  void AddRowCells(std::vector<EtCell> cells);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_columns() const { return static_cast<int>(column_names_.size()); }

  const EtCell& cell(int row, int col) const { return rows_[row][col]; }
  const std::vector<std::string>& CellTokens(int row, int col) const {
    return tokens_[row][col];
  }

  const std::string& column_name(int col) const { return column_names_[col]; }

  /// Number of non-empty cells in `row` (VERIFYALL's dense-first ordering
  /// key, §4.1).
  int NonEmptyCellCount(int row) const;

  /// Bitmask over columns with non-empty cells in `row` (bit i = column i).
  uint32_t NonEmptyMask(int row) const { return nonempty_masks_[row]; }

  /// Fraction of empty cells (the sparsity parameter s of §6.1).
  double Sparsity() const;

  /// Definition 1 requires no fully-empty row or column; true iff that
  /// holds and the table is non-degenerate (m ≥ 1, n ≥ 1).
  bool IsWellFormed() const;

 private:
  std::vector<std::string> column_names_;
  std::vector<std::vector<EtCell>> rows_;
  std::vector<std::vector<std::vector<std::string>>> tokens_;
  std::vector<uint32_t> nonempty_masks_;
};

/// Every ET cell's tokens resolved against one database's TokenDict, built
/// once per discovery request. Predicates constructed from these carry id
/// vectors, so the thousands of existence queries a request evaluates never
/// re-hash a token string (unindexed tokens resolve to TokenDict::kNoToken,
/// keeping phrase positions aligned).
class EtTokenIds {
 public:
  EtTokenIds(const ExampleTable& et, const TokenDict& dict);

  /// Version-aware resolution: tokens absent from the base dictionary may
  /// resolve to the view's overlay dictionary (ids >= base size), so
  /// phrases only present in appended rows still match. With a plain view
  /// this is identical to the TokenDict constructor.
  EtTokenIds(const ExampleTable& et, const DbView& view);

  const std::vector<uint32_t>& CellIds(int row, int col) const {
    return ids_[row][col];
  }

 private:
  std::vector<std::vector<std::vector<uint32_t>>> ids_;
};

}  // namespace qbe

#endif  // QBE_CORE_EXAMPLE_TABLE_H_
