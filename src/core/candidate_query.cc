#include "core/candidate_query.h"

namespace qbe {

bool IsMinimalCandidate(const CandidateQuery& query,
                        const SchemaGraph& graph) {
  for (int leaf : query.tree.LeafVertices(graph)) {
    bool mapped = false;
    for (const ColumnRef& col : query.projection) {
      if (col.rel == leaf) {
        mapped = true;
        break;
      }
    }
    if (!mapped) return false;
  }
  return true;
}

std::vector<PhrasePredicate> RowPredicates(const CandidateQuery& query,
                                           const ExampleTable& et, int row) {
  std::vector<PhrasePredicate> predicates;
  RowPredicatesInto(query, et, nullptr, row, &predicates);
  return predicates;
}

void RowPredicatesInto(const CandidateQuery& query, const ExampleTable& et,
                       const EtTokenIds* et_ids, int row,
                       std::vector<PhrasePredicate>* out) {
  size_t n = 0;
  for (int c = 0; c < et.num_columns(); ++c) {
    const EtCell& cell = et.cell(row, c);
    if (cell.IsEmpty()) continue;
    if (out->size() == n) out->emplace_back();
    PhrasePredicate& pred = (*out)[n++];
    pred.column = query.projection[c];
    pred.tokens = et.CellTokens(row, c);
    pred.exact = cell.exact;
    if (et_ids != nullptr) {
      pred.ids = et_ids->CellIds(row, c);
    } else {
      pred.ids.clear();
    }
  }
  out->resize(n);
}

std::string CandidateToString(const CandidateQuery& query, const Database& db,
                              const SchemaGraph& graph,
                              const ExampleTable& et) {
  std::string out = JoinTreeToString(query.tree, graph, db);
  out += " | ";
  for (int c = 0; c < et.num_columns(); ++c) {
    if (c > 0) out += ", ";
    std::string name = et.column_name(c);
    if (name.empty()) name = std::string(1, static_cast<char>('A' + c));
    out += name + "->" + db.QualifiedColumnName(query.projection[c]);
  }
  return out;
}

}  // namespace qbe
