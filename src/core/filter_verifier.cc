#include "core/filter_verifier.h"

#include <algorithm>
#include <cstdlib>
#include <queue>
#include <unordered_map>

#include "core/parallel_verify.h"
#include "shard/shard_exec.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace qbe {
namespace {

enum class FilterState : uint8_t { kUnknown, kSuccess, kFailed };

/// All mutable bookkeeping of one Algorithm 1 run.
struct AdaptiveState {
  const FilterUniverse& u;
  const VerifyContext& ctx;
  double failure_prior;
  bool adaptive_prior = false;
  int evaluated = 0;
  int failed = 0;

  std::vector<FilterState> state;
  std::vector<char> in_fx;          // FX membership
  std::vector<char> alive;          // QX membership
  std::vector<bool> valid;
  std::vector<int> rem;             // |F(Q) ∩ FX| per query
  std::vector<int> basic_unresolved;  // basic filters not yet known-success
  std::vector<int> live_count;      // alive queries containing each filter
  std::vector<std::vector<int>> basic_owners;  // filter -> queries it's basic for
  int num_alive;

  // Per-filter selection cost under the configured cost model (the
  // counters always charge the paper's tree-size cost so metrics stay
  // comparable; the model only steers selection).
  std::vector<double> selection_cost;

  AdaptiveState(const FilterUniverse& universe, const VerifyContext& context,
                double prior)
      : u(universe), ctx(context), failure_prior(prior) {
    int nf = u.num_filters();
    int nq = static_cast<int>(ctx.candidates.size());
    state.assign(nf, FilterState::kUnknown);
    in_fx.assign(nf, 1);
    alive.assign(nq, 1);
    valid.assign(nq, false);
    rem.resize(nq);
    basic_unresolved.resize(nq);
    live_count.assign(nf, 0);
    basic_owners.resize(nf);
    num_alive = nq;
    for (int q = 0; q < nq; ++q) {
      rem[q] = static_cast<int>(u.filters_of_query[q].size());
      basic_unresolved[q] =
          static_cast<int>(u.basic_filters_of_query[q].size());
      for (int f : u.filters_of_query[q]) live_count[f] += 1;
      for (int f : u.basic_filters_of_query[q]) basic_owners[f].push_back(q);
    }
  }

  double FailureProbability(int f) const {
    double prior = failure_prior;
    if (adaptive_prior) {
      // Bayes-smoothed running failure rate, clamped away from the
      // degenerate extremes; the model keeps the paper's "constant p̂"
      // structure, only the constant tracks the workload.
      prior = std::clamp((1.0 + failed) / (2.0 + evaluated), 0.02, 0.9);
    }
    return prior * u.filters[f].NumConstrainedCells() /
           ctx.et.num_columns();
  }

  void RecordOutcome(bool success) {
    ++evaluated;
    failed += success ? 0 : 1;
  }

  /// E[W(F | ...)] / cost(F), Eqs. (5)-(7) and (9). W+ counts the
  /// (query, filter) pairs whose success would be implied; W- counts the
  /// remaining unevaluated filters of every query the failure would kill.
  double Score(int f) const {
    double w_plus = live_count[f];  // F implies its own success trivially
    for (int sub : u.subs_of[f]) {
      if (in_fx[sub]) w_plus += live_count[sub];
    }
    double w_minus = 0;
    for (int q : u.queries_of_filter[f]) {
      if (alive[q]) w_minus += rem[q];
    }
    double p = FailureProbability(f);
    double expected = (1.0 - p) * w_plus + p * w_minus;
    return expected / selection_cost[f];
  }

  void RemoveFromFx(int f) {
    if (!in_fx[f]) return;
    in_fx[f] = 0;
    for (int q : u.queries_of_filter[f]) {
      if (alive[q]) rem[q] -= 1;
    }
  }

  void ResolveQuery(int q, bool is_valid) {
    if (!alive[q]) return;
    alive[q] = 0;
    valid[q] = is_valid;
    num_alive -= 1;
    for (int f : u.filters_of_query[q]) live_count[f] -= 1;
  }

  void MarkSuccess(int f) {
    if (state[f] != FilterState::kUnknown) return;
    state[f] = FilterState::kSuccess;
    RemoveFromFx(f);
    for (int q : basic_owners[f]) {
      if (!alive[q]) continue;
      if (--basic_unresolved[q] == 0) ResolveQuery(q, /*is_valid=*/true);
    }
  }

  void MarkFailure(int f) {
    if (state[f] != FilterState::kUnknown) return;
    state[f] = FilterState::kFailed;
    RemoveFromFx(f);
    for (int q : u.queries_of_filter[f]) ResolveQuery(q, /*is_valid=*/false);
  }

  /// Applies an evaluation outcome with full dependency propagation; the
  /// sub/super lists are transitively closed by construction (the
  /// sub-filter relation is transitive), so one pass suffices.
  void Apply(int f, bool success) {
    if (success) {
      MarkSuccess(f);
      for (int sub : u.subs_of[f]) MarkSuccess(sub);  // Lemma 4
    } else {
      MarkFailure(f);
      for (int super : u.supers_of[f]) MarkFailure(super);  // Lemma 3
    }
  }

  /// Fallback selection when every score degenerates to zero: any basic
  /// filter of an alive query still awaiting evaluation (one always exists
  /// while QX is non-empty; see class invariants).
  int FallbackSelection() const {
    for (size_t q = 0; q < alive.size(); ++q) {
      if (!alive[q]) continue;
      for (int f : u.basic_filters_of_query[q]) {
        if (in_fx[f]) return f;
      }
    }
    return -1;
  }
};

int SelectExact(const AdaptiveState& s) {
  int best = -1;
  double best_score = 0.0;
  for (int f = 0; f < s.u.num_filters(); ++f) {
    if (!s.in_fx[f]) continue;
    double score = s.Score(f);
    if (score > best_score) {
      best_score = score;
      best = f;
    }
  }
  return best >= 0 ? best : s.FallbackSelection();
}

/// Top-k of the exact greedy criterion in selection order (score desc,
/// index asc — the same tie-break SelectExact's strict `>` scan produces).
/// Falls back to one basic filter when every score degenerates to zero.
std::vector<int> SelectExactBatch(const AdaptiveState& s, int k) {
  std::vector<std::pair<double, int>> scored;
  for (int f = 0; f < s.u.num_filters(); ++f) {
    if (!s.in_fx[f]) continue;
    double score = s.Score(f);
    if (score > 0.0) scored.emplace_back(score, f);
  }
  if (scored.empty()) {
    int fallback = s.FallbackSelection();
    return fallback >= 0 ? std::vector<int>{fallback} : std::vector<int>{};
  }
  size_t take = std::min(scored.size(), static_cast<size_t>(k));
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int> chosen;
  chosen.reserve(take);
  for (size_t i = 0; i < take; ++i) chosen.push_back(scored[i].second);
  return chosen;
}

/// Up to k distinct filters off the lazy heap, in pop order. Scores do not
/// move during a round (no outcome is applied until the whole batch is
/// evaluated), so the serial pop-rescore-accept loop applies unchanged;
/// chosen filters simply stay out of the heap.
std::vector<int> SelectLazyBatch(
    AdaptiveState& s, std::priority_queue<std::pair<double, int>>& heap,
    int k) {
  std::vector<int> chosen;
  while (static_cast<int>(chosen.size()) < k) {
    int pick = -1;
    while (!heap.empty()) {
      auto [stale, f] = heap.top();
      heap.pop();
      if (!s.in_fx[f]) continue;
      double fresh = s.Score(f);
      if (heap.empty() || fresh >= heap.top().first) {
        pick = f;
        break;
      }
      heap.emplace(fresh, f);
    }
    if (pick < 0) break;
    chosen.push_back(pick);
  }
  if (chosen.empty()) {
    int fallback = s.FallbackSelection();
    if (fallback >= 0) chosen.push_back(fallback);
  }
  return chosen;
}

}  // namespace

std::vector<bool> FilterVerifier::Verify(const VerifyContext& ctx,
                                         VerificationCounters* counters) {
  Stopwatch timer;
  VerifyPoolHandle pool(ctx);
  Executor::SubtreeMemo subtree_memo;
  Executor::SubtreeMemo* memo_ptr =
      ctx.verify.subtree_memo ? &subtree_memo : nullptr;
  counters->threads_used = std::max(counters->threads_used, pool.threads());
  EvalEngine engine(ctx, counters, memo_ptr);
  FilterUniverse universe =
      BuildFilterUniverse(ctx.graph, ctx.et, ctx.candidates);
  AdaptiveState s(universe, ctx, options_.failure_prior);
  s.adaptive_prior = options_.adaptive_prior;
  s.selection_cost.resize(universe.num_filters());
  for (int f = 0; f < universe.num_filters(); ++f) {
    const Filter& filter = universe.filters[f];
    if (options_.cost_model == FilterCostModel::kEstimated) {
      QBE_CHECK_MSG(options_.stats != nullptr,
                    "kEstimated cost model requires Options::stats");
      s.selection_cost[f] = options_.stats->EstimateProbeCost(
          ctx.graph, filter.tree, FilterPredicates(filter, ctx.et));
    } else {
      s.selection_cost[f] = filter.Cost();
    }
  }

  // Trivially successful filters (see Filter::IsTriviallySuccessful) are
  // resolved up front: candidate generation already proved them, so no
  // verification is spent and the greedy never gambles on them.
  for (int f = 0; f < universe.num_filters(); ++f) {
    const Filter& filter = universe.filters[f];
    if (!filter.IsTriviallySuccessful()) continue;
    // Sharded mode: emptiness is a global property — a relation can be
    // empty in shard 0 yet populated elsewhere, so the check must sum
    // live rows across the whole shard set (DESIGN.md §15).
    const uint64_t live_rows =
        ctx.shards != nullptr
            ? ctx.shards->TotalLiveRows(filter.tree.verts.First())
            : DbView(ctx.db, ctx.delta).LiveRows(filter.tree.verts.First());
    if (live_rows > 0) s.MarkSuccess(f);
  }

  if (pool.pool() != nullptr) {
    // Batched Algorithm 1 (the parallel engine): per round, select up to
    // batch_size filters under the greedy criterion *without* applying
    // outcomes (the selections of one round do not see each other's
    // results), evaluate them concurrently, then record outcomes and run
    // the Lemma 2/3/4 propagation in canonical selection order — the same
    // order a single thread would apply them, so the filter statistics
    // driving later rounds are independent of the thread count. Batching
    // trades a slightly less adaptive greedy (a few extra evaluations) for
    // parallel evaluation; the valid set is unchanged.
    int k = std::max(1, ctx.verify.batch_size);
    std::priority_queue<std::pair<double, int>> heap;
    if (options_.lazy_greedy) {
      for (int f = 0; f < universe.num_filters(); ++f) {
        heap.emplace(s.Score(f), f);
      }
    }
    // Round-level memo for predicate-free filters (outcome depends only on
    // the join tree); maintained in canonical order so its contents are
    // deterministic. Mirrors EvalEngine's per-engine memo, which cannot be
    // shared across the round's per-slot engines.
    std::unordered_map<JoinTree, bool, JoinTreeHash> empty_join_memo;
    while (s.num_alive > 0) {
      std::vector<int> chosen = options_.lazy_greedy
                                    ? SelectLazyBatch(s, heap, k)
                                    : SelectExactBatch(s, k);
      QBE_CHECK(!chosen.empty());

      struct Slot {
        int filter = -1;
        bool predicate_free = false;
        bool resolved = false;  // outcome known without evaluation
        bool outcome = false;
        VerificationCounters counters;
      };
      std::vector<Slot> slots(chosen.size());
      std::vector<int> to_eval;
      for (size_t i = 0; i < chosen.size(); ++i) {
        Slot& slot = slots[i];
        slot.filter = chosen[i];
        slot.predicate_free =
            universe.filters[chosen[i]].constrained_mask == 0;
        if (slot.predicate_free) {
          auto it = empty_join_memo.find(universe.filters[chosen[i]].tree);
          if (it != empty_join_memo.end()) {
            slot.resolved = true;
            slot.outcome = it->second;
            continue;
          }
        }
        to_eval.push_back(static_cast<int>(i));
      }
      ParallelFor(pool.pool(), static_cast<int>(to_eval.size()),
                  [&](int j) {
                    Slot& slot = slots[to_eval[j]];
                    EvalEngine slot_engine(ctx, &slot.counters, memo_ptr);
                    slot.outcome = slot_engine.EvaluateFilter(
                        universe.filters[slot.filter]);
                  });
      // Canonical-order merge: counters, the empty-join memo, and the
      // statistics/propagation updates all land in selection order.
      for (Slot& slot : slots) {
        counters->Add(slot.counters);
        if (!slot.resolved && slot.predicate_free) {
          empty_join_memo.emplace(universe.filters[slot.filter].tree,
                                  slot.outcome);
        }
        s.RecordOutcome(slot.outcome);
        s.Apply(slot.filter, slot.outcome);
      }
    }
  } else if (options_.lazy_greedy) {
    // Max-heap of (stale score, filter). Scores are adaptively diminishing,
    // so a stale entry is an upper bound: pop, rescore, and accept when the
    // fresh score still dominates the next entry's stale bound.
    std::priority_queue<std::pair<double, int>> heap;
    for (int f = 0; f < universe.num_filters(); ++f) {
      heap.emplace(s.Score(f), f);
    }
    while (s.num_alive > 0) {
      int chosen = -1;
      while (!heap.empty()) {
        auto [stale, f] = heap.top();
        heap.pop();
        if (!s.in_fx[f]) continue;
        double fresh = s.Score(f);
        if (heap.empty() || fresh >= heap.top().first) {
          chosen = f;
          break;
        }
        heap.emplace(fresh, f);
      }
      if (chosen < 0) chosen = s.FallbackSelection();
      QBE_CHECK(chosen >= 0);
      bool ok = engine.EvaluateFilter(universe.filters[chosen]);
      s.RecordOutcome(ok);
      s.Apply(chosen, ok);
    }
  } else {
    const bool debug = std::getenv("QBE_FILTER_DEBUG") != nullptr;
    while (s.num_alive > 0) {
      int chosen = SelectExact(s);
      QBE_CHECK(chosen >= 0);
      int alive_before = s.num_alive;
      bool ok = engine.EvaluateFilter(universe.filters[chosen]);
      s.RecordOutcome(ok);
      s.Apply(chosen, ok);
      if (debug) {
        const Filter& f = universe.filters[chosen];
        std::fprintf(stderr,
                     "[filter] size=%d nF=%d row=%d shared=%zu -> %s "
                     "killed=%d alive=%d\n",
                     f.tree.NumVertices(), f.NumConstrainedCells(), f.row,
                     universe.queries_of_filter[chosen].size(),
                     ok ? "ok" : "FAIL", alive_before - s.num_alive,
                     s.num_alive);
      }
    }
  }

  counters->subtree_memo_hits += subtree_memo.hits();
  counters->subtree_memo_lookups += subtree_memo.lookups();
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return s.valid;
}

}  // namespace qbe
