#include "core/filter_verifier.h"

#include <algorithm>
#include <cstdlib>
#include <queue>

#include "util/check.h"
#include "util/stopwatch.h"

namespace qbe {
namespace {

enum class FilterState : uint8_t { kUnknown, kSuccess, kFailed };

/// All mutable bookkeeping of one Algorithm 1 run.
struct AdaptiveState {
  const FilterUniverse& u;
  const VerifyContext& ctx;
  double failure_prior;
  bool adaptive_prior = false;
  int evaluated = 0;
  int failed = 0;

  std::vector<FilterState> state;
  std::vector<char> in_fx;          // FX membership
  std::vector<char> alive;          // QX membership
  std::vector<bool> valid;
  std::vector<int> rem;             // |F(Q) ∩ FX| per query
  std::vector<int> basic_unresolved;  // basic filters not yet known-success
  std::vector<int> live_count;      // alive queries containing each filter
  std::vector<std::vector<int>> basic_owners;  // filter -> queries it's basic for
  int num_alive;

  // Per-filter selection cost under the configured cost model (the
  // counters always charge the paper's tree-size cost so metrics stay
  // comparable; the model only steers selection).
  std::vector<double> selection_cost;

  AdaptiveState(const FilterUniverse& universe, const VerifyContext& context,
                double prior)
      : u(universe), ctx(context), failure_prior(prior) {
    int nf = u.num_filters();
    int nq = static_cast<int>(ctx.candidates.size());
    state.assign(nf, FilterState::kUnknown);
    in_fx.assign(nf, 1);
    alive.assign(nq, 1);
    valid.assign(nq, false);
    rem.resize(nq);
    basic_unresolved.resize(nq);
    live_count.assign(nf, 0);
    basic_owners.resize(nf);
    num_alive = nq;
    for (int q = 0; q < nq; ++q) {
      rem[q] = static_cast<int>(u.filters_of_query[q].size());
      basic_unresolved[q] =
          static_cast<int>(u.basic_filters_of_query[q].size());
      for (int f : u.filters_of_query[q]) live_count[f] += 1;
      for (int f : u.basic_filters_of_query[q]) basic_owners[f].push_back(q);
    }
  }

  double FailureProbability(int f) const {
    double prior = failure_prior;
    if (adaptive_prior) {
      // Bayes-smoothed running failure rate, clamped away from the
      // degenerate extremes; the model keeps the paper's "constant p̂"
      // structure, only the constant tracks the workload.
      prior = std::clamp((1.0 + failed) / (2.0 + evaluated), 0.02, 0.9);
    }
    return prior * u.filters[f].NumConstrainedCells() /
           ctx.et.num_columns();
  }

  void RecordOutcome(bool success) {
    ++evaluated;
    failed += success ? 0 : 1;
  }

  /// E[W(F | ...)] / cost(F), Eqs. (5)-(7) and (9). W+ counts the
  /// (query, filter) pairs whose success would be implied; W- counts the
  /// remaining unevaluated filters of every query the failure would kill.
  double Score(int f) const {
    double w_plus = live_count[f];  // F implies its own success trivially
    for (int sub : u.subs_of[f]) {
      if (in_fx[sub]) w_plus += live_count[sub];
    }
    double w_minus = 0;
    for (int q : u.queries_of_filter[f]) {
      if (alive[q]) w_minus += rem[q];
    }
    double p = FailureProbability(f);
    double expected = (1.0 - p) * w_plus + p * w_minus;
    return expected / selection_cost[f];
  }

  void RemoveFromFx(int f) {
    if (!in_fx[f]) return;
    in_fx[f] = 0;
    for (int q : u.queries_of_filter[f]) {
      if (alive[q]) rem[q] -= 1;
    }
  }

  void ResolveQuery(int q, bool is_valid) {
    if (!alive[q]) return;
    alive[q] = 0;
    valid[q] = is_valid;
    num_alive -= 1;
    for (int f : u.filters_of_query[q]) live_count[f] -= 1;
  }

  void MarkSuccess(int f) {
    if (state[f] != FilterState::kUnknown) return;
    state[f] = FilterState::kSuccess;
    RemoveFromFx(f);
    for (int q : basic_owners[f]) {
      if (!alive[q]) continue;
      if (--basic_unresolved[q] == 0) ResolveQuery(q, /*is_valid=*/true);
    }
  }

  void MarkFailure(int f) {
    if (state[f] != FilterState::kUnknown) return;
    state[f] = FilterState::kFailed;
    RemoveFromFx(f);
    for (int q : u.queries_of_filter[f]) ResolveQuery(q, /*is_valid=*/false);
  }

  /// Applies an evaluation outcome with full dependency propagation; the
  /// sub/super lists are transitively closed by construction (the
  /// sub-filter relation is transitive), so one pass suffices.
  void Apply(int f, bool success) {
    if (success) {
      MarkSuccess(f);
      for (int sub : u.subs_of[f]) MarkSuccess(sub);  // Lemma 4
    } else {
      MarkFailure(f);
      for (int super : u.supers_of[f]) MarkFailure(super);  // Lemma 3
    }
  }

  /// Fallback selection when every score degenerates to zero: any basic
  /// filter of an alive query still awaiting evaluation (one always exists
  /// while QX is non-empty; see class invariants).
  int FallbackSelection() const {
    for (size_t q = 0; q < alive.size(); ++q) {
      if (!alive[q]) continue;
      for (int f : u.basic_filters_of_query[q]) {
        if (in_fx[f]) return f;
      }
    }
    return -1;
  }
};

int SelectExact(const AdaptiveState& s) {
  int best = -1;
  double best_score = 0.0;
  for (int f = 0; f < s.u.num_filters(); ++f) {
    if (!s.in_fx[f]) continue;
    double score = s.Score(f);
    if (score > best_score) {
      best_score = score;
      best = f;
    }
  }
  return best >= 0 ? best : s.FallbackSelection();
}

}  // namespace

std::vector<bool> FilterVerifier::Verify(const VerifyContext& ctx,
                                         VerificationCounters* counters) {
  Stopwatch timer;
  EvalEngine engine(ctx, counters);
  FilterUniverse universe =
      BuildFilterUniverse(ctx.graph, ctx.et, ctx.candidates);
  AdaptiveState s(universe, ctx, options_.failure_prior);
  s.adaptive_prior = options_.adaptive_prior;
  s.selection_cost.resize(universe.num_filters());
  for (int f = 0; f < universe.num_filters(); ++f) {
    const Filter& filter = universe.filters[f];
    if (options_.cost_model == FilterCostModel::kEstimated) {
      QBE_CHECK_MSG(options_.stats != nullptr,
                    "kEstimated cost model requires Options::stats");
      s.selection_cost[f] = options_.stats->EstimateProbeCost(
          ctx.graph, filter.tree, FilterPredicates(filter, ctx.et));
    } else {
      s.selection_cost[f] = filter.Cost();
    }
  }

  // Trivially successful filters (see Filter::IsTriviallySuccessful) are
  // resolved up front: candidate generation already proved them, so no
  // verification is spent and the greedy never gambles on them.
  for (int f = 0; f < universe.num_filters(); ++f) {
    const Filter& filter = universe.filters[f];
    if (filter.IsTriviallySuccessful() &&
        ctx.db.relation(filter.tree.verts.First()).num_rows() > 0) {
      s.MarkSuccess(f);
    }
  }

  if (options_.lazy_greedy) {
    // Max-heap of (stale score, filter). Scores are adaptively diminishing,
    // so a stale entry is an upper bound: pop, rescore, and accept when the
    // fresh score still dominates the next entry's stale bound.
    std::priority_queue<std::pair<double, int>> heap;
    for (int f = 0; f < universe.num_filters(); ++f) {
      heap.emplace(s.Score(f), f);
    }
    while (s.num_alive > 0) {
      int chosen = -1;
      while (!heap.empty()) {
        auto [stale, f] = heap.top();
        heap.pop();
        if (!s.in_fx[f]) continue;
        double fresh = s.Score(f);
        if (heap.empty() || fresh >= heap.top().first) {
          chosen = f;
          break;
        }
        heap.emplace(fresh, f);
      }
      if (chosen < 0) chosen = s.FallbackSelection();
      QBE_CHECK(chosen >= 0);
      bool ok = engine.EvaluateFilter(universe.filters[chosen]);
      s.RecordOutcome(ok);
      s.Apply(chosen, ok);
    }
  } else {
    const bool debug = std::getenv("QBE_FILTER_DEBUG") != nullptr;
    while (s.num_alive > 0) {
      int chosen = SelectExact(s);
      QBE_CHECK(chosen >= 0);
      int alive_before = s.num_alive;
      bool ok = engine.EvaluateFilter(universe.filters[chosen]);
      s.RecordOutcome(ok);
      s.Apply(chosen, ok);
      if (debug) {
        const Filter& f = universe.filters[chosen];
        std::fprintf(stderr,
                     "[filter] size=%d nF=%d row=%d shared=%zu -> %s "
                     "killed=%d alive=%d\n",
                     f.tree.NumVertices(), f.NumConstrainedCells(), f.row,
                     universe.queries_of_filter[chosen].size(),
                     ok ? "ok" : "FAIL", alive_before - s.num_alive,
                     s.num_alive);
      }
    }
  }

  counters->elapsed_seconds += timer.ElapsedSeconds();
  return s.valid;
}

}  // namespace qbe
