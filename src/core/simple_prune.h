#ifndef QBE_CORE_SIMPLE_PRUNE_H_
#define QBE_CORE_SIMPLE_PRUNE_H_

#include "core/verifier.h"

namespace qbe {

/// SIMPLEPRUNE (§4.2): VERIFYALL plus candidate-level failure-dependency
/// pruning (Lemma 1). Candidates are processed in ascending join-tree size
/// — small trees are likelier to be subtrees of later ones — and every
/// failed (candidate, row) verification is recorded; a new candidate is
/// pruned without any verification when a recorded failure implies its own.
class SimplePrune : public CandidateVerifier {
 public:
  explicit SimplePrune(RowOrder row_order = RowOrder::kDenseFirst)
      : row_order_(row_order) {}

  std::string name() const override { return "SimplePrune"; }

  std::vector<bool> Verify(const VerifyContext& ctx,
                           VerificationCounters* counters) override;

 private:
  RowOrder row_order_;
};

}  // namespace qbe

#endif  // QBE_CORE_SIMPLE_PRUNE_H_
