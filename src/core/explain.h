#ifndef QBE_CORE_EXPLAIN_H_
#define QBE_CORE_EXPLAIN_H_

#include <map>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/example_table.h"
#include "storage/database.h"

namespace qbe {

/// Structured trace of one discovery run — the system's EXPLAIN. Exposes
/// what each pipeline stage decided so users can understand *why* a query
/// was (not) returned: which base columns each ET column could map to
/// (Eq. 3), how the candidate set distributes over join-tree sizes, how
/// large the filter universe was, and what verification cost each stage
/// incurred.
struct DiscoveryExplain {
  struct EtColumnInfo {
    std::string name;
    /// Qualified candidate projection columns ("Customer.CustName").
    std::vector<std::string> candidate_columns;
  };

  std::vector<EtColumnInfo> et_columns;
  size_t num_candidates = 0;
  /// Candidate count per join-tree size (index = #relations).
  std::map<int, size_t> candidates_by_tree_size;
  size_t num_valid = 0;
  /// Deduplicated filters across all candidates (§5.2's F).
  size_t num_filters = 0;
  /// Filters resolvable without any verification (column-constraint
  /// trivial successes).
  size_t num_trivial_filters = 0;
  VerificationCounters counters;
  std::vector<DiscoveredQuery> queries;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Runs discovery with full tracing (same results as DiscoverQueries with
/// the same options; slower only by the bookkeeping).
DiscoveryExplain ExplainDiscovery(const Database& db, const ExampleTable& et,
                                  const DiscoveryOptions& options = {});

}  // namespace qbe

#endif  // QBE_CORE_EXPLAIN_H_
