#ifndef QBE_CORE_FILTER_UNIVERSE_H_
#define QBE_CORE_FILTER_UNIVERSE_H_

#include <vector>

#include "core/candidate_query.h"
#include "core/example_table.h"
#include "core/filter.h"
#include "schema/schema_graph.h"

namespace qbe {

/// The deduplicated set F = ∪_Q F(Q) of all filters of all candidates
/// (§5.2), with the bipartite membership structure and the sub-filter
/// dependency lists needed by Algorithm 1:
///
///  * queries_of_filter[f]  — Q→−(F): candidates Q with F ∈ F(Q); a failed
///    filter invalidates exactly these (Lemma 2).
///  * filters_of_query[q]   — F(Q).
///  * basic_filters_of_query[q] — FB(Q): one filter per ET row (J' = J).
///  * supers_of[f] — F→−(F) \ {F}: failure of f implies failure of these
///    (Lemma 3).
///  * subs_of[f]   — F→+(F) \ {F}: success of f implies success of these
///    (Lemma 4).
struct FilterUniverse {
  std::vector<Filter> filters;
  std::vector<std::vector<int>> queries_of_filter;
  std::vector<std::vector<int>> filters_of_query;
  std::vector<std::vector<int>> basic_filters_of_query;
  std::vector<std::vector<int>> supers_of;
  std::vector<std::vector<int>> subs_of;

  int num_filters() const { return static_cast<int>(filters.size()); }
};

/// Builds the universe: enumerates the connected subtrees of every
/// candidate's join tree × every ET row, deduplicates filters shared across
/// candidates, and materializes the dependency lists.
FilterUniverse BuildFilterUniverse(const SchemaGraph& graph,
                                   const ExampleTable& et,
                                   const std::vector<CandidateQuery>&
                                       candidates);

}  // namespace qbe

#endif  // QBE_CORE_FILTER_UNIVERSE_H_
