#ifndef QBE_CORE_EXECUTE_ALL_H_
#define QBE_CORE_EXECUTE_ALL_H_

#include <cstddef>

#include "core/verifier.h"

namespace qbe {

/// EXECUTEALL — the naive strategy §4.1 opens with and rejects: "execute
/// [the candidate] and check whether its output contains all the rows in
/// the ET. This is typically very expensive, hence we do not follow this
/// approach." Implemented as a comparator so the claim is measurable: one
/// full materialization per candidate, then an in-memory containment check
/// of every ET row against the projected output.
///
/// Counters: one verification per candidate; estimated cost charges the
/// join-tree size once per materialized output tuple (executing the whole
/// join rather than a TOP-1 probe), which is what makes this approach lose
/// even though its verification *count* is the smallest possible.
class ExecuteAll : public CandidateVerifier {
 public:
  /// `output_cap` bounds the materialized output per candidate as a safety
  /// valve; verification falls back to per-row existence checks for
  /// candidates whose output exceeds it (keeping results exact).
  explicit ExecuteAll(size_t output_cap = 2000000) : cap_(output_cap) {}

  std::string name() const override { return "ExecuteAll"; }

  std::vector<bool> Verify(const VerifyContext& ctx,
                           VerificationCounters* counters) override;

 private:
  size_t cap_;
};

}  // namespace qbe

#endif  // QBE_CORE_EXECUTE_ALL_H_
