#include "core/example_table.h"

#include "ingest/db_view.h"
#include "text/tokenizer.h"
#include "util/check.h"

namespace qbe {

ExampleTable::ExampleTable(std::vector<std::string> column_names)
    : column_names_(std::move(column_names)) {
  QBE_CHECK(!column_names_.empty());
  QBE_CHECK_MSG(column_names_.size() <= 32,
                "example tables are limited to 32 columns");
}

ExampleTable ExampleTable::WithColumns(int n) {
  return ExampleTable(std::vector<std::string>(n));
}

void ExampleTable::AddRow(const std::vector<std::string>& cells) {
  std::vector<EtCell> row;
  row.reserve(cells.size());
  for (const std::string& text : cells) row.push_back(EtCell{text, false});
  AddRowCells(std::move(row));
}

void ExampleTable::AddRowCells(std::vector<EtCell> cells) {
  QBE_CHECK(cells.size() == column_names_.size());
  std::vector<std::vector<std::string>> row_tokens;
  uint32_t mask = 0;
  row_tokens.reserve(cells.size());
  for (size_t c = 0; c < cells.size(); ++c) {
    row_tokens.push_back(Tokenize(cells[c].text));
    if (!cells[c].IsEmpty()) mask |= uint32_t{1} << c;
  }
  rows_.push_back(std::move(cells));
  tokens_.push_back(std::move(row_tokens));
  nonempty_masks_.push_back(mask);
}

int ExampleTable::NonEmptyCellCount(int row) const {
  int n = 0;
  for (const EtCell& cell : rows_[row])
    if (!cell.IsEmpty()) ++n;
  return n;
}

double ExampleTable::Sparsity() const {
  if (rows_.empty()) return 0.0;
  int empty = 0;
  for (int r = 0; r < num_rows(); ++r)
    empty += num_columns() - NonEmptyCellCount(r);
  return static_cast<double>(empty) / (num_rows() * num_columns());
}

EtTokenIds::EtTokenIds(const ExampleTable& et, const TokenDict& dict) {
  ids_.resize(et.num_rows());
  for (int r = 0; r < et.num_rows(); ++r) {
    ids_[r].resize(et.num_columns());
    for (int c = 0; c < et.num_columns(); ++c) {
      ids_[r][c] = dict.IdsOf(et.CellTokens(r, c));
    }
  }
}

EtTokenIds::EtTokenIds(const ExampleTable& et, const DbView& view) {
  ids_.resize(et.num_rows());
  for (int r = 0; r < et.num_rows(); ++r) {
    ids_[r].resize(et.num_columns());
    for (int c = 0; c < et.num_columns(); ++c) {
      ids_[r][c] = view.IdsOf(et.CellTokens(r, c));
    }
  }
}

bool ExampleTable::IsWellFormed() const {
  if (rows_.empty()) return false;
  uint32_t column_union = 0;
  for (int r = 0; r < num_rows(); ++r) {
    if (nonempty_masks_[r] == 0) return false;  // empty row
    column_union |= nonempty_masks_[r];
  }
  uint32_t all = num_columns() == 32
                     ? ~uint32_t{0}
                     : (uint32_t{1} << num_columns()) - 1;
  return column_union == all;  // no empty column
}

}  // namespace qbe
