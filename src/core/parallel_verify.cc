#include "core/parallel_verify.h"

#include <condition_variable>
#include <mutex>

namespace qbe {
namespace {

/// Completion latch for one ParallelFor round.
class WaitGroup {
 public:
  explicit WaitGroup(int count) : remaining_(count) {}

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;
};

}  // namespace

VerifyPoolHandle::VerifyPoolHandle(const VerifyContext& ctx) {
  threads_ = ctx.verify.threads;
  if (threads_ <= 1) {
    threads_ = 1;
    return;  // serial path
  }
  if (ctx.pool != nullptr) {
    pool_ = ctx.pool;
    return;
  }
  // Transient per-call pool. The queue is sized so a whole fan-out round
  // enqueues without blocking the submitting thread against its own tasks
  // (Submit blocks when full, but workers drain independently, so this is
  // back-pressure, not deadlock).
  owned_ = std::make_unique<ThreadPool>(threads_, /*max_queue_depth=*/1024);
  pool_ = owned_.get();
}

void ParallelFor(ThreadPool* pool, int n,
                 const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  WaitGroup done(n);
  for (int i = 0; i < n; ++i) {
    bool submitted = pool->Submit([&fn, &done, i] {
      fn(i);
      done.Done();
    });
    if (!submitted) {
      // Pool is shutting down (service drain): degrade to inline execution
      // so the round still completes deterministically.
      fn(i);
      done.Done();
    }
  }
  done.Wait();
}

}  // namespace qbe
