#include "core/session.h"

#include "util/check.h"

namespace qbe {

DiscoverySession::DiscoverySession(const Database& db,
                                   const DiscoveryOptions& options)
    : DiscoverySession(db, options, nullptr) {}

DiscoverySession::DiscoverySession(const Database& db,
                                   const DiscoveryOptions& options,
                                   EvalCacheBase* shared_cache)
    : db_(db),
      options_(options),
      graph_(db),
      exec_(db, graph_),
      cache_(shared_cache != nullptr ? shared_cache : &own_cache_) {
  options_.cache = cache_;
}

void DiscoverySession::SetTable(ExampleTable et) {
  column_names_.clear();
  for (int c = 0; c < et.num_columns(); ++c) {
    column_names_.push_back(et.column_name(c));
  }
  rows_.clear();
  for (int r = 0; r < et.num_rows(); ++r) {
    std::vector<EtCell> row;
    for (int c = 0; c < et.num_columns(); ++c) row.push_back(et.cell(r, c));
    rows_.push_back(std::move(row));
  }
  RebuildTable();
}

void DiscoverySession::AddRow(const std::vector<std::string>& cells) {
  if (column_names_.empty()) {
    column_names_.assign(cells.size(), "");
  }
  QBE_CHECK_MSG(cells.size() == column_names_.size(),
                "row width does not match the session's column count");
  std::vector<EtCell> row;
  row.reserve(cells.size());
  for (const std::string& text : cells) row.push_back(EtCell{text, false});
  rows_.push_back(std::move(row));
  RebuildTable();
}

void DiscoverySession::RemoveLastRow() {
  QBE_CHECK(!rows_.empty());
  rows_.pop_back();
  RebuildTable();
}

void DiscoverySession::RebuildTable() {
  et_ = std::make_unique<ExampleTable>(column_names_);
  for (const std::vector<EtCell>& row : rows_) et_->AddRowCells(row);
}

DiscoveryResult DiscoverySession::Discover() {
  QBE_CHECK_MSG(et_ != nullptr && et_->num_rows() > 0,
                "add at least one example row first");
  DiscoveryResult result = DiscoverQueries(db_, *et_, options_);
  total_verifications_ += result.counters.verifications;
  return result;
}

const ExampleTable& DiscoverySession::table() const {
  QBE_CHECK(et_ != nullptr);
  return *et_;
}

int DiscoverySession::num_rows() const {
  return static_cast<int>(rows_.size());
}

}  // namespace qbe
