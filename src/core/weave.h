#ifndef QBE_CORE_WEAVE_H_
#define QBE_CORE_WEAVE_H_

#include <cstddef>

#include "core/verifier.h"

namespace qbe {

/// WEAVE — the sample-driven schema-mapping comparator (Qian et al.,
/// SIGMOD 2012) evaluated in §6.3, in its memory-friendly *join-tree*
/// variant: column constraints are pushed down as in our approaches (the
/// paper's "fair" implementation), the candidate set is fixed, and
/// verification proceeds row-major — all candidates are verified for row 1,
/// the survivors for row 2, and so on. Unlike FILTER it never shares work
/// across candidates nor weighs cost against benefit, which is why Table 4
/// reports ~10× more verifications.
class JoinTreeWeave : public CandidateVerifier {
 public:
  std::string name() const override { return "Weave"; }

  std::vector<bool> Verify(const VerifyContext& ctx,
                           VerificationCounters* counters) override;
};

/// WEAVE in its original *tuple-tree* form: for every candidate and row the
/// matching joined tuple combinations (tuple trees) are materialized and
/// retained in memory while the candidate is still alive — the behaviour
/// whose footprint Figure 16 charts. `peak_memory_bytes` tracks the largest
/// simultaneous materialization.
class TupleTreeWeave : public CandidateVerifier {
 public:
  /// `per_query_row_cap` bounds the tuple trees materialized per
  /// (candidate, row) pair, mirroring how our reimplementation of [18]
  /// spilled to temporary tables once memory thrashed (§6.3).
  explicit TupleTreeWeave(size_t per_query_row_cap = 100000)
      : cap_(per_query_row_cap) {}

  std::string name() const override { return "Weave(tuple)"; }

  std::vector<bool> Verify(const VerifyContext& ctx,
                           VerificationCounters* counters) override;

 private:
  size_t cap_;
};

}  // namespace qbe

#endif  // QBE_CORE_WEAVE_H_
