#include "core/keyword_search.h"

#include "util/check.h"

namespace qbe {

DiscoveryResult DiscoverByKeywords(const Database& db,
                                   const std::vector<std::string>& keywords,
                                   const DiscoveryOptions& options) {
  QBE_CHECK_MSG(!keywords.empty(), "at least one keyword required");
  ExampleTable et =
      ExampleTable::WithColumns(static_cast<int>(keywords.size()));
  et.AddRow(keywords);
  QBE_CHECK_MSG(et.IsWellFormed(), "keywords must be non-empty strings");
  return DiscoverQueries(db, et, options);
}

}  // namespace qbe
