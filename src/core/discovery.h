#ifndef QBE_CORE_DISCOVERY_H_
#define QBE_CORE_DISCOVERY_H_

#include <string>
#include <vector>

#include "core/candidate_gen.h"
#include "core/candidate_query.h"
#include "core/example_table.h"
#include "core/verifier.h"
#include "storage/database.h"

namespace qbe {

class TraceContext;

/// Which candidate-verification algorithm drives discovery. All produce
/// identical valid sets; they differ in cost (§2.3).
enum class Algorithm {
  kVerifyAll,
  kSimplePrune,
  kFilter,
  kFilterExact,
  kWeave,
};

struct DiscoveryOptions {
  /// Maximal join length l (Table 3 default).
  int max_join_tree_size = 4;

  Algorithm algorithm = Algorithm::kFilter;

  /// Row order for the baseline algorithms.
  RowOrder row_order = RowOrder::kDenseFirst;

  /// p̂ of FILTER's probabilistic model (§5.3.1).
  double failure_prior = 0.1;

  /// Seed for any randomized choices (e.g., RowOrder::kRandom).
  uint64_t seed = 42;

  /// Relaxed validity (paper §8 future work): when ≥ 0, a query is
  /// reported if it contains at least this many ET rows in its output
  /// instead of all of them. −1 keeps the paper's strict semantics.
  int min_row_support = -1;

  /// Rank the valid queries (paper §8 future work): simpler join trees and
  /// more selective projection columns first.
  bool rank_results = true;

  size_t max_candidates = 200000;

  /// Optional shared verification-outcome cache (see EvalCacheBase); used
  /// by DiscoverySession to make incremental refinement cheap and by
  /// DiscoveryService to share outcomes across concurrent requests. Not
  /// owned. Must be a thread-safe implementation (ConcurrentEvalCache)
  /// when discoveries run concurrently.
  EvalCacheBase* cache = nullptr;

  /// Optional cooperative deadline/cancellation token (per-request timeout
  /// in DiscoveryService). Polled between CQ-row verifications; an expired
  /// run returns DiscoveryResult::timed_out with no queries. Not owned.
  const DeadlineToken* deadline = nullptr;

  /// Intra-request parallel + batched verification knobs (threads,
  /// batch_size, subtree memo). threads > 1 requires `cache` to be null or
  /// thread-safe. Defaults keep the serial reference path.
  VerifyOptions verify;

  /// Optional shared worker pool for verify.threads > 1 (not owned).
  /// DiscoveryService points every request at its verify pool so requests
  /// borrow idle workers; when null, each request spins up a transient
  /// pool.
  ThreadPool* verify_pool = nullptr;

  /// Shares (column, phrase-ids) → row-set match results across every
  /// existence query of this request (see exec/match_cache.h). Purely an
  /// execution-cost optimization: outcomes, verification counts, and the
  /// valid set are bit-identical with it on or off, at any thread count.
  bool use_match_cache = true;

  /// Optional request-scoped trace (obs/trace.h, DESIGN.md §13): discovery
  /// records per-phase spans (candidate generation, per-algorithm verify,
  /// text matching, cache lookups) and counters into it. Not owned.
  /// Tracing is observation-only: outcomes, verification counts, and the
  /// valid set are bit-identical with it armed or null.
  TraceContext* trace = nullptr;
};

/// One discovered query: the minimal valid project-join query, its SQL
/// rendering, the rows it matched, and a ranking score (higher = better).
struct DiscoveredQuery {
  CandidateQuery query;
  std::string sql;
  int matched_rows = 0;
  double score = 0.0;
};

struct DiscoveryResult {
  std::vector<DiscoveredQuery> queries;
  /// All minimal candidate queries considered (Figure 3's denominator).
  size_t num_candidates = 0;
  /// Per-ET-column candidate projection column counts.
  std::vector<size_t> candidate_columns_per_et_column;
  double candidate_gen_seconds = 0.0;
  VerificationCounters counters;
  /// Empty on success; otherwise why discovery refused the input (e.g. an
  /// example table with a fully-empty row or column, Definition 1).
  std::string error;
  /// True when the run was cut short by DiscoveryOptions::deadline; error
  /// is set and `queries` is empty.
  bool timed_out = false;

  bool ok() const { return error.empty(); }
};

/// End-to-end query discovery (the system task of §2.2): candidate
/// generation (§3.2) followed by candidate verification with the selected
/// algorithm. The database must have its indexes built.
DiscoveryResult DiscoverQueries(const Database& db, const ExampleTable& et,
                                const DiscoveryOptions& options = {});

/// Version-aware discovery over a pinned live-database epoch (base +
/// delta overlay; DESIGN.md §12). With a plain view and data_epoch 0 this
/// is exactly the Database overload (which forwards here). `data_epoch`
/// namespaces shared eval-cache outcomes per data version — pass the
/// pinned DbVersion's epoch when serving over a LiveDatabase.
DiscoveryResult DiscoverQueries(const DbView& view, const ExampleTable& et,
                                const DiscoveryOptions& options,
                                uint64_t data_epoch);

}  // namespace qbe

#endif  // QBE_CORE_DISCOVERY_H_
