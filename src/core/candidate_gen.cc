#include "core/candidate_gen.h"

#include <algorithm>

#include "ingest/db_view.h"
#include "kernels/kernels.h"
#include "schema/subtree_enum.h"
#include "util/check.h"

namespace qbe {
namespace {

/// Folds the per-row "columns containing this cell" gid lists of ET column
/// `c` into their intersection — the candidate projection columns of
/// Eq. 3. The one shared accumulator behind both the plain-Database and
/// DbView retrieval paths; row lists come from `matches_for_row` (sorted
/// ascending) and the intersection runs on the dispatched kernel layer
/// (DESIGN.md §14).
template <typename MatchesForRow>
std::vector<int> IntersectColumnsOverRows(const ExampleTable& et, int c,
                                          MatchesForRow&& matches_for_row) {
  std::vector<int> gids;
  std::vector<int> scratch;
  bool first = true;
  for (int r = 0; r < et.num_rows() && (first || !gids.empty()); ++r) {
    if (et.cell(r, c).IsEmpty()) continue;
    if (first) {
      gids = matches_for_row(r);
      first = false;
    } else {
      kernels::IntersectSortedInPlace(&gids, matches_for_row(r), &scratch);
    }
  }
  // A well-formed ET has at least one non-empty cell per column, so
  // `first` is false here (Definition 1 forbids empty columns).
  QBE_CHECK_MSG(!first, "example table has an empty column");
  return gids;
}

}  // namespace

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumns(
    const Database& db, const ExampleTable& et) {
  const ColumnIndex& ci = db.column_index();
  std::vector<std::vector<ColumnRef>> result(et.num_columns());
  for (int c = 0; c < et.num_columns(); ++c) {
    std::vector<int> gids = IntersectColumnsOverRows(et, c, [&](int r) {
      return ci.ColumnsContaining(et.CellTokens(r, c));
    });
    for (int gid : gids) result[c].push_back(db.TextColumnByGid(gid));
  }
  return result;
}

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsRelaxed(
    const Database& db, const ExampleTable& et, int min_row_support) {
  const ColumnIndex& ci = db.column_index();
  int need = std::min(min_row_support, et.num_rows());
  std::vector<std::vector<ColumnRef>> result(et.num_columns());
  for (int c = 0; c < et.num_columns(); ++c) {
    // Per-column compatible-row counts; empty cells are compatible with
    // every column and contribute a base count instead.
    std::vector<int> counts(db.TotalTextColumns(), 0);
    int empty_rows = 0;
    for (int r = 0; r < et.num_rows(); ++r) {
      if (et.cell(r, c).IsEmpty()) {
        ++empty_rows;
        continue;
      }
      for (int gid : ci.ColumnsContaining(et.CellTokens(r, c))) {
        counts[gid] += 1;
      }
    }
    for (int gid = 0; gid < db.TotalTextColumns(); ++gid) {
      if (counts[gid] + empty_rows >= need) {
        result[c].push_back(db.TextColumnByGid(gid));
      }
    }
  }
  return result;
}

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumns(
    const DbView& view, const ExampleTable& et) {
  if (view.plain()) return RetrieveCandidateColumns(view.base(), et);
  std::vector<std::vector<ColumnRef>> result(et.num_columns());
  std::vector<uint32_t> ids;
  std::vector<int> matches;
  for (int c = 0; c < et.num_columns(); ++c) {
    std::vector<int> gids =
        IntersectColumnsOverRows(et, c, [&](int r) -> const std::vector<int>& {
          view.IdsOfInto(et.CellTokens(r, c), &ids);
          view.ColumnsContainingIdsInto(ids, &matches);
          return matches;
        });
    for (int gid : gids) result[c].push_back(view.TextColumnByGid(gid));
  }
  return result;
}

std::vector<std::vector<ColumnRef>> RetrieveCandidateColumnsRelaxed(
    const DbView& view, const ExampleTable& et, int min_row_support) {
  if (view.plain()) {
    return RetrieveCandidateColumnsRelaxed(view.base(), et, min_row_support);
  }
  const Database& db = view.base();
  int need = std::min(min_row_support, et.num_rows());
  std::vector<std::vector<ColumnRef>> result(et.num_columns());
  std::vector<uint32_t> ids;
  std::vector<int> matches;
  for (int c = 0; c < et.num_columns(); ++c) {
    std::vector<int> counts(db.TotalTextColumns(), 0);
    int empty_rows = 0;
    for (int r = 0; r < et.num_rows(); ++r) {
      if (et.cell(r, c).IsEmpty()) {
        ++empty_rows;
        continue;
      }
      view.IdsOfInto(et.CellTokens(r, c), &ids);
      view.ColumnsContainingIdsInto(ids, &matches);
      for (int gid : matches) counts[gid] += 1;
    }
    for (int gid = 0; gid < db.TotalTextColumns(); ++gid) {
      if (counts[gid] + empty_rows >= need) {
        result[c].push_back(db.TextColumnByGid(gid));
      }
    }
  }
  return result;
}

namespace {

/// Recursively assigns ET columns to candidate columns within the tree,
/// emitting every minimal assignment.
void AssignColumns(const Database& db, const SchemaGraph& graph,
                   const JoinTree& tree,
                   const std::vector<std::vector<ColumnRef>>& options,
                   size_t max_candidates, size_t column,
                   std::vector<ColumnRef>& assignment,
                   std::vector<CandidateQuery>& out) {
  if (out.size() >= max_candidates) return;
  if (column == options.size()) {
    CandidateQuery query{tree, assignment};
    if (IsMinimalCandidate(query, graph)) out.push_back(std::move(query));
    return;
  }
  for (const ColumnRef& choice : options[column]) {
    assignment[column] = choice;
    AssignColumns(db, graph, tree, options, max_candidates, column + 1,
                  assignment, out);
    if (out.size() >= max_candidates) return;
  }
}

}  // namespace

std::vector<CandidateQuery> EnumerateCandidateQueries(
    const Database& db, const SchemaGraph& graph, const ExampleTable& et,
    const std::vector<std::vector<ColumnRef>>& candidate_columns,
    const CandidateGenOptions& options) {
  (void)et;  // the ET's constraints arrive pre-digested in candidate_columns
  std::vector<CandidateQuery> out;
  // Relations hosting at least one candidate projection column; every
  // useful join tree touches one, and all its leaves must lie in this set.
  RelationSet hosting;
  for (const auto& cols : candidate_columns) {
    if (cols.empty()) return out;  // some ET column is unmatchable
    for (const ColumnRef& col : cols) hosting.Set(col.rel);
  }

  for (const JoinTree& tree :
       EnumerateSubtrees(graph, options.max_join_tree_size, &hosting)) {
    // Minimality requires every leaf to host a mapped column; leaves
    // outside `hosting` can never be mapped, so skip such trees outright.
    bool leaves_ok = true;
    for (int leaf : tree.LeafVertices(graph)) {
      if (!hosting.Test(leaf)) {
        leaves_ok = false;
        break;
      }
    }
    if (!leaves_ok) continue;

    // Restrict each ET column's options to columns inside this tree.
    std::vector<std::vector<ColumnRef>> in_tree(candidate_columns.size());
    bool feasible = true;
    for (size_t c = 0; c < candidate_columns.size() && feasible; ++c) {
      for (const ColumnRef& col : candidate_columns[c]) {
        if (tree.verts.Test(col.rel)) in_tree[c].push_back(col);
      }
      feasible = !in_tree[c].empty();
    }
    if (!feasible) continue;

    std::vector<ColumnRef> assignment(candidate_columns.size());
    AssignColumns(db, graph, tree, in_tree, options.max_candidates, 0,
                  assignment, out);
    if (out.size() >= options.max_candidates) break;
  }
  return out;
}

std::vector<CandidateQuery> GenerateCandidates(
    const Database& db, const SchemaGraph& graph, const ExampleTable& et,
    const CandidateGenOptions& options) {
  return EnumerateCandidateQueries(db, graph, et,
                                   RetrieveCandidateColumns(db, et), options);
}

}  // namespace qbe
