#ifndef QBE_CORE_VERIFIER_H_
#define QBE_CORE_VERIFIER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/candidate_query.h"
#include "core/example_table.h"
#include "core/filter.h"
#include "exec/executor.h"
#include "obs/trace.h"
#include "schema/schema_graph.h"
#include "storage/database.h"
#include "util/check.h"
#include "util/deadline.h"

namespace qbe {

class ThreadPool;
class ShardExecSet;

/// Row orderings for the baseline verifiers (§4.1): as given, uniformly
/// shuffled, or densest row first (candidates are likelier to fail on
/// densely populated rows, enabling early elimination).
enum class RowOrder { kGiven, kRandom, kDenseFirst };

/// Knobs of the intra-request parallel + batched verification engine.
///
/// Determinism contract (see DESIGN.md §9): for a fixed batch_size the
/// verifier's outputs — the validity vector, the sequence of evaluated
/// existence queries, and every counter except elapsed time — are identical
/// for every thread count, including threads == 1. Batch size may change
/// *which* evaluations are spent (a batched greedy selects without seeing
/// same-batch outcomes) but never the resulting valid set, which is the
/// paper's invariant across all algorithms anyway.
struct VerifyOptions {
  /// Worker threads fanning out CQ-row / filter evaluations. 1 = the serial
  /// reference path. Values > 1 require VerifyContext::cache to be null or
  /// a thread-safe implementation (ConcurrentEvalCache).
  int threads = 1;

  /// Independent evaluations grouped per parallel round: candidates per
  /// task for VERIFYALL/SIMPLEPRUNE, greedy selections per round for
  /// FILTER.
  int batch_size = 8;

  /// Shares reduced predicate-free join subtrees across the candidates of
  /// one request (they are subtrees of one schema graph and overlap
  /// heavily). Purely an execution-cost optimization; outcomes and
  /// verification counts are unaffected.
  bool subtree_memo = true;
};

/// Performance accounting shared by all verification algorithms; these are
/// the metrics of §6.1 (number of verifications, total estimated cost = sum
/// of join-tree sizes, execution time) plus the tuple-tree memory footprint
/// of Figure 16.
struct VerificationCounters {
  int64_t verifications = 0;
  int64_t estimated_cost = 0;
  double elapsed_seconds = 0.0;
  int64_t pruned_without_verification = 0;
  size_t peak_memory_bytes = 0;
  /// Set when a DeadlineToken expired mid-run: the validity vector is not
  /// trustworthy (remaining evaluations were reported as failures without
  /// executing) and the caller must discard the results.
  bool aborted = false;
  /// Shared join-subtree memo traffic (Executor::SubtreeMemo): lookups and
  /// hits for reduced predicate-free subtrees reused across candidates.
  int64_t subtree_memo_hits = 0;
  int64_t subtree_memo_lookups = 0;
  /// Shared (column, phrase-ids) → row-set cache traffic (MatchCache):
  /// posting-list scans saved inside SeedNode. Execution-cost only; the
  /// verification counters above are charged identically with or without
  /// the cache.
  int64_t match_cache_hits = 0;
  int64_t match_cache_lookups = 0;
  /// Worker threads the verifier actually used (1 = serial path).
  int threads_used = 1;

  void Add(const VerificationCounters& other) {
    verifications += other.verifications;
    estimated_cost += other.estimated_cost;
    elapsed_seconds += other.elapsed_seconds;
    pruned_without_verification += other.pruned_without_verification;
    if (other.peak_memory_bytes > peak_memory_bytes) {
      peak_memory_bytes = other.peak_memory_bytes;
    }
    aborted = aborted || other.aborted;
    subtree_memo_hits += other.subtree_memo_hits;
    subtree_memo_lookups += other.subtree_memo_lookups;
    match_cache_hits += other.match_cache_hits;
    match_cache_lookups += other.match_cache_lookups;
    if (other.threads_used > threads_used) threads_used = other.threads_used;
  }

  double SubtreeMemoHitRate() const {
    return subtree_memo_lookups == 0
               ? 0.0
               : static_cast<double>(subtree_memo_hits) /
                     static_cast<double>(subtree_memo_lookups);
  }
};

/// Cross-run cache of verification outcomes. A filter's result is fully
/// determined by its join tree and predicate set (the ET row is only a
/// source of predicate values), so outcomes can be reused across reruns,
/// across incremental discovery steps (DiscoverySession: adding a new ET
/// row leaves every prior row's evaluations valid), and across concurrent
/// requests over the same database (§5's filter sharing, lifted from one
/// run to the whole serving process).
///
/// Implementations: EvalCache below (single-threaded), and
/// ConcurrentEvalCache in src/service/concurrent_eval_cache.h (sharded,
/// thread-safe, shared by DiscoveryService workers).
class EvalCacheBase {
 public:
  virtual ~EvalCacheBase() = default;

  /// The cached outcome for `key`, or nullopt. A found entry counts as a
  /// hit; every call counts as a lookup.
  virtual std::optional<bool> Lookup(const std::string& key) = 0;

  virtual void Insert(const std::string& key, bool outcome) = 0;

  /// Lookups served from the cache / total lookups / entries stored.
  virtual int64_t hits() const = 0;
  virtual int64_t lookups() const = 0;
  virtual size_t size() const = 0;
};

/// Single-threaded EvalCacheBase backed by one unordered_map. NOT
/// thread-safe: its reuse contract is one thread at a time, enforced in
/// debug builds by a thread-affinity check (first use pins the owning
/// thread). Concurrent sessions must share a ConcurrentEvalCache instead.
class EvalCache : public EvalCacheBase {
 public:
  std::optional<bool> Lookup(const std::string& key) override {
    CheckAffinity();
    ++lookups_;
    auto it = outcomes_.find(key);
    if (it == outcomes_.end()) return std::nullopt;
    ++hits_;
    return it->second;
  }

  void Insert(const std::string& key, bool outcome) override {
    CheckAffinity();
    outcomes_.emplace(key, outcome);
  }

  int64_t hits() const override { return hits_; }
  int64_t lookups() const override { return lookups_; }
  size_t size() const override { return outcomes_.size(); }

 private:
  void CheckAffinity() const {
#ifndef NDEBUG
    if (owner_ == std::thread::id()) owner_ = std::this_thread::get_id();
    QBE_CHECK_MSG(owner_ == std::this_thread::get_id(),
                  "EvalCache used from a second thread; share a "
                  "ConcurrentEvalCache across threads instead");
#endif
  }

  std::unordered_map<std::string, bool> outcomes_;
  int64_t hits_ = 0;
  int64_t lookups_ = 0;
#ifndef NDEBUG
  mutable std::thread::id owner_;
#endif
};

/// Everything a verification algorithm needs; all references must outlive
/// the call.
struct VerifyContext {
  const Database& db;
  const SchemaGraph& graph;
  const Executor& exec;
  const ExampleTable& et;
  const std::vector<CandidateQuery>& candidates;
  uint64_t seed = 42;
  /// Optional shared outcome cache; cached answers are served without a
  /// verification (and without charging the counters).
  EvalCacheBase* cache = nullptr;
  /// Optional cooperative deadline, polled between CQ-row verifications.
  /// When it expires, remaining evaluations report failure without
  /// executing (and without polluting the cache) and counters.aborted is
  /// set — callers must treat the run's output as void.
  const DeadlineToken* deadline = nullptr;
  /// Parallel/batched engine knobs; defaults keep the serial path.
  VerifyOptions verify;
  /// Optional shared worker pool for verify.threads > 1 (not owned; e.g.
  /// DiscoveryService's verify pool, so requests borrow idle workers).
  /// Null with threads > 1 makes each Verify call spin up a transient pool.
  ThreadPool* pool = nullptr;
  /// Optional per-request ET-cell token ids (resolved once against the
  /// database's TokenDict). When set, predicates are built with id vectors
  /// and the executor skips all per-call token resolution.
  const EtTokenIds* et_ids = nullptr;
  /// Optional per-request (column, phrase-ids) → row-set cache shared by
  /// every worker (thread-safe, outcome-neutral; see exec/match_cache.h).
  MatchCache* match_cache = nullptr;
  /// Epoch of the pinned data version when verifying over a live database
  /// (DESIGN.md §12). 0 = the plain immutable database. Nonzero epochs
  /// prefix every eval-cache key so outcomes never leak across versions
  /// whose data differs.
  uint64_t data_epoch = 0;
  /// Delta overlay of the pinned version (null = plain base). Verifiers
  /// that consult row counts directly (e.g. FILTER's trivial-success check)
  /// must count live rows through DbView(db, delta), not db alone.
  const DeltaView* delta = nullptr;
  /// Optional request trace (obs/trace.h); EvalEngine records cache-lookup
  /// and execution spans into it. Observation-only — never changes
  /// outcomes or counters. Not owned.
  TraceContext* trace = nullptr;
  /// Parent for spans opened on verify-pool worker threads, whose lanes
  /// have no enclosing span: discovery points this at the per-algorithm
  /// verify span so fan-out evaluations stitch under it.
  SpanRef trace_parent = kNullSpan;
  /// Non-null in sharded mode (src/shard/, DESIGN.md §15): EvalEngine
  /// routes each logical existence query through the shard set's
  /// canonical-order scatter-gather probe instead of `exec`, charging the
  /// counters once per logical query — outcomes and verification counts
  /// stay bit-identical to the unsharded engine. Verifiers that consult
  /// row counts directly must use the set's global TotalLiveRows. Not
  /// owned.
  ShardExecSet* shards = nullptr;
};

/// Counting wrapper around the executor: evaluates one filter / CQ-row
/// verification (they are the same operation — a candidate-row check is the
/// candidate's basic filter) and charges the counters. Filters with no
/// predicates depend only on the join tree, so their outcome is memoized —
/// re-asking whether a join is non-empty is free, exactly as a DBMS would
/// answer from cache.
class EvalEngine {
 public:
  /// `memo` optionally shares reduced predicate-free join subtrees with
  /// other engines of the same request (thread-safe; see
  /// Executor::SubtreeMemo). Not owned; may be null.
  EvalEngine(const VerifyContext& ctx, VerificationCounters* counters,
             Executor::SubtreeMemo* memo = nullptr)
      : ctx_(ctx), counters_(counters), memo_(memo) {}

  /// Evaluates `filter` (Definition 6). Returns true on success.
  bool EvaluateFilter(const Filter& filter);

  /// Evaluates candidate `q` for ET row `row` (§4.1's CQ-row verification).
  bool EvaluateCandidateRow(int q, int row);

 private:
  /// Executes (or serves from the shared cache) an existence query.
  bool Execute(const JoinTree& tree,
               const std::vector<PhrasePredicate>& predicates, int cost);

  const VerifyContext& ctx_;
  VerificationCounters* counters_;
  Executor::SubtreeMemo* memo_ = nullptr;
  std::unordered_map<JoinTree, bool, JoinTreeHash> empty_join_cache_;
  /// Reused predicate buffer: one engine evaluates thousands of CQ-rows /
  /// filters, and rebuilding the vector each time was the dominant
  /// allocation of the verify hot path.
  std::vector<PhrasePredicate> preds_scratch_;
};

/// Canonical cache key for an existence query: join-tree identity plus the
/// sorted predicate set. Exposed for tests.
std::string EvalCacheKey(const Database& db, const JoinTree& tree,
                         const std::vector<PhrasePredicate>& predicates);

/// Returns row indices in the requested order (deterministic given `seed`).
std::vector<int> MakeRowOrder(const ExampleTable& et, RowOrder order,
                              uint64_t seed);

/// Interface implemented by VERIFYALL, SIMPLEPRUNE, FILTER and WEAVE. All
/// implementations return the same validity vector (the correct set of
/// minimal valid queries); they differ only in cost — the paper's central
/// framing.
class CandidateVerifier {
 public:
  virtual ~CandidateVerifier() = default;
  virtual std::string name() const = 0;

  /// Returns valid[i] = whether candidates[i] is valid w.r.t. the whole ET,
  /// and fills `counters`.
  virtual std::vector<bool> Verify(const VerifyContext& ctx,
                                   VerificationCounters* counters) = 0;
};

}  // namespace qbe

#endif  // QBE_CORE_VERIFIER_H_
