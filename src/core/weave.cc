#include "core/weave.h"

#include "util/stopwatch.h"

namespace qbe {

std::vector<bool> JoinTreeWeave::Verify(const VerifyContext& ctx,
                                        VerificationCounters* counters) {
  Stopwatch timer;
  EvalEngine engine(ctx, counters);
  std::vector<bool> alive(ctx.candidates.size(), true);
  // Row-major: weave each row's constraints through the surviving set.
  for (int row = 0; row < ctx.et.num_rows(); ++row) {
    for (size_t q = 0; q < ctx.candidates.size(); ++q) {
      if (!alive[q]) continue;
      if (!engine.EvaluateCandidateRow(static_cast<int>(q), row)) {
        alive[q] = false;
      }
    }
  }
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return alive;
}

std::vector<bool> TupleTreeWeave::Verify(const VerifyContext& ctx,
                                         VerificationCounters* counters) {
  Stopwatch timer;
  std::vector<bool> alive(ctx.candidates.size(), true);
  // Bytes of tuple trees currently held per candidate; an assignment costs
  // one row id per join-tree vertex.
  std::vector<size_t> held_bytes(ctx.candidates.size(), 0);
  size_t current_bytes = 0;

  for (int row = 0; row < ctx.et.num_rows(); ++row) {
    for (size_t q = 0; q < ctx.candidates.size(); ++q) {
      if (!alive[q]) continue;
      const CandidateQuery& query = ctx.candidates[q];
      counters->verifications += 1;
      counters->estimated_cost += query.tree.NumVertices();
      std::vector<int> order;
      std::vector<std::vector<uint32_t>> trees =
          ctx.exec.MaterializeAssignments(
              query.tree, RowPredicates(query, ctx.et, row), cap_, &order);
      if (trees.empty()) {
        // Candidate dies: release everything retained for it.
        alive[q] = false;
        current_bytes -= held_bytes[q];
        held_bytes[q] = 0;
        continue;
      }
      size_t bytes = trees.size() * order.size() * sizeof(uint32_t);
      held_bytes[q] += bytes;
      current_bytes += bytes;
      if (current_bytes > counters->peak_memory_bytes) {
        counters->peak_memory_bytes = current_bytes;
      }
    }
  }
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return alive;
}

}  // namespace qbe
