#include "core/simple_prune.h"

#include <algorithm>
#include <numeric>

#include "core/parallel_verify.h"
#include "util/stopwatch.h"

namespace qbe {

std::vector<bool> SimplePrune::Verify(const VerifyContext& ctx,
                                      VerificationCounters* counters) {
  Stopwatch timer;
  std::vector<int> row_order = MakeRowOrder(ctx.et, row_order_, ctx.seed);

  // Ascending join-tree size maximizes later subtree-of-supertree hits.
  std::vector<int> order(ctx.candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ctx.candidates[a].tree.NumVertices() <
           ctx.candidates[b].tree.NumVertices();
  });

  struct FailedVerification {
    int query;
    int row;
  };
  std::vector<FailedVerification> failed;

  VerifyPoolHandle pool(ctx);
  Executor::SubtreeMemo memo;
  Executor::SubtreeMemo* memo_ptr =
      ctx.verify.subtree_memo ? &memo : nullptr;
  counters->threads_used = std::max(counters->threads_used, pool.threads());

  // Lemma 1 check against every recorded failure: the cost of these
  // subtree tests is negligible next to executing verifications (§4.2).
  auto implied_failed = [&](int q) {
    for (const FailedVerification& f : failed) {
      if (QueryFailureImplies(ctx.candidates[f.query], ctx.candidates[q],
                              ctx.et, f.row)) {
        return true;
      }
    }
    return false;
  };

  std::vector<bool> valid(ctx.candidates.size(), false);

  if (pool.pool() == nullptr) {
    EvalEngine engine(ctx, counters, memo_ptr);
    for (int q : order) {
      if (implied_failed(q)) {
        counters->pruned_without_verification += 1;
        continue;
      }
      bool ok = true;
      for (int row : row_order) {
        if (!engine.EvaluateCandidateRow(q, row)) {
          failed.push_back(FailedVerification{q, row});
          ok = false;
          break;
        }
      }
      valid[q] = ok;
    }
  } else {
    // Batched variant: prune the batch against all failures recorded so far
    // (serially — the list mutates), verify the survivors in parallel, then
    // append the batch's failures in canonical (sorted-order) position.
    // Within a batch candidates cannot prune each other, so this spends a
    // few more verifications than the serial path, but the valid set is
    // unchanged — pruning only ever skips evaluations whose outcome is
    // already implied false — and the whole schedule is independent of the
    // thread count.
    int batch = std::max(1, ctx.verify.batch_size);
    struct Slot {
      int query = -1;
      bool ok = false;
      int failed_row = -1;
      VerificationCounters counters;
    };
    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(batch)) {
      size_t end =
          std::min(order.size(), start + static_cast<size_t>(batch));
      std::vector<Slot> slots;
      for (size_t i = start; i < end; ++i) {
        int q = order[i];
        if (implied_failed(q)) {
          counters->pruned_without_verification += 1;
          continue;
        }
        Slot slot;
        slot.query = q;
        slots.push_back(slot);
      }
      ParallelFor(pool.pool(), static_cast<int>(slots.size()), [&](int i) {
        Slot& slot = slots[i];
        EvalEngine engine(ctx, &slot.counters, memo_ptr);
        slot.ok = true;
        for (int row : row_order) {
          if (!engine.EvaluateCandidateRow(slot.query, row)) {
            slot.ok = false;
            slot.failed_row = row;
            break;
          }
        }
      });
      for (const Slot& slot : slots) {
        counters->Add(slot.counters);
        if (slot.ok) {
          valid[slot.query] = true;
        } else {
          failed.push_back(FailedVerification{slot.query, slot.failed_row});
        }
      }
    }
  }

  counters->subtree_memo_hits += memo.hits();
  counters->subtree_memo_lookups += memo.lookups();
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return valid;
}

}  // namespace qbe
