#include "core/simple_prune.h"

#include <algorithm>
#include <numeric>

#include "util/stopwatch.h"

namespace qbe {

std::vector<bool> SimplePrune::Verify(const VerifyContext& ctx,
                                      VerificationCounters* counters) {
  Stopwatch timer;
  EvalEngine engine(ctx, counters);
  std::vector<int> row_order = MakeRowOrder(ctx.et, row_order_, ctx.seed);

  // Ascending join-tree size maximizes later subtree-of-supertree hits.
  std::vector<int> order(ctx.candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return ctx.candidates[a].tree.NumVertices() <
           ctx.candidates[b].tree.NumVertices();
  });

  struct FailedVerification {
    int query;
    int row;
  };
  std::vector<FailedVerification> failed;

  std::vector<bool> valid(ctx.candidates.size(), false);
  for (int q : order) {
    const CandidateQuery& query = ctx.candidates[q];
    // Lemma 1 check against every recorded failure: the cost of these
    // subtree tests is negligible next to executing verifications (§4.2).
    bool pruned = false;
    for (const FailedVerification& f : failed) {
      if (QueryFailureImplies(ctx.candidates[f.query], query, ctx.et,
                              f.row)) {
        pruned = true;
        break;
      }
    }
    if (pruned) {
      counters->pruned_without_verification += 1;
      continue;
    }
    bool ok = true;
    for (int row : row_order) {
      if (!engine.EvaluateCandidateRow(q, row)) {
        failed.push_back(FailedVerification{q, row});
        ok = false;
        break;
      }
    }
    valid[q] = ok;
  }
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return valid;
}

}  // namespace qbe
