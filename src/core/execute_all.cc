#include "core/execute_all.h"

#include "text/tokenizer.h"
#include "util/stopwatch.h"

namespace qbe {

std::vector<bool> ExecuteAll::Verify(const VerifyContext& ctx,
                                     VerificationCounters* counters) {
  Stopwatch timer;
  std::vector<bool> valid(ctx.candidates.size(), false);
  for (size_t q = 0; q < ctx.candidates.size(); ++q) {
    const CandidateQuery& query = ctx.candidates[q];
    counters->verifications += 1;

    // Execute the whole project-join query (no predicates pushed).
    std::vector<std::vector<std::string>> output = ctx.exec.Materialize(
        query.tree, {}, query.projection, cap_ + 1);
    if (output.size() > cap_) {
      // Output too large to hold: fall back to per-row TOP-1 probes so the
      // result stays exact (still charged as expensive work below).
      counters->estimated_cost +=
          static_cast<int64_t>(output.size()) * query.tree.NumVertices();
      bool ok = true;
      for (int row = 0; row < ctx.et.num_rows() && ok; ++row) {
        ok = ctx.exec.Exists(query.tree, RowPredicates(query, ctx.et, row));
      }
      valid[q] = ok;
      continue;
    }
    counters->estimated_cost +=
        static_cast<int64_t>(output.size()) * query.tree.NumVertices();

    // Tokenize the output once, then containment-check every ET row.
    std::vector<std::vector<std::vector<std::string>>> output_tokens;
    output_tokens.reserve(output.size());
    for (const auto& tuple : output) {
      std::vector<std::vector<std::string>> cols;
      cols.reserve(tuple.size());
      for (const std::string& cell : tuple) cols.push_back(Tokenize(cell));
      output_tokens.push_back(std::move(cols));
    }
    bool all_rows = true;
    for (int row = 0; row < ctx.et.num_rows() && all_rows; ++row) {
      bool found = false;
      for (const auto& tuple : output_tokens) {
        bool matches = true;
        for (int c = 0; c < ctx.et.num_columns() && matches; ++c) {
          const EtCell& cell = ctx.et.cell(row, c);
          if (cell.IsEmpty()) continue;
          matches = cell.exact
                        ? tuple[c] == ctx.et.CellTokens(row, c)
                        : IsTokenSubsequence(ctx.et.CellTokens(row, c),
                                             tuple[c]);
        }
        if (matches) {
          found = true;
          break;
        }
      }
      all_rows = found;
    }
    valid[q] = all_rows;
  }
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return valid;
}

}  // namespace qbe
