#ifndef QBE_CORE_KEYWORD_SEARCH_H_
#define QBE_CORE_KEYWORD_SEARCH_H_

#include <string>
#include <vector>

#include "core/discovery.h"
#include "storage/database.h"

namespace qbe {

/// Keyword search over joins — the single-tuple special case the related
/// work (DISCOVER-style systems, §7) solves, expressed through this
/// library: each keyword/phrase becomes one column of a one-row example
/// table, and the minimal valid project-join queries are exactly the join
/// trees containing one joined row that mentions every keyword. Exposed
/// because it is a genuinely useful degenerate mode (m = 1 means no column
/// constraints beyond the single row, hence the largest candidate sets —
/// where the FILTER algorithm matters most).
DiscoveryResult DiscoverByKeywords(const Database& db,
                                   const std::vector<std::string>& keywords,
                                   const DiscoveryOptions& options = {});

}  // namespace qbe

#endif  // QBE_CORE_KEYWORD_SEARCH_H_
