#include "core/verify_all.h"

#include <algorithm>
#include <numeric>

#include "core/parallel_verify.h"
#include "shard/shard_exec.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace qbe {

std::string EvalCacheKey(const Database& db, const JoinTree& tree,
                         const std::vector<PhrasePredicate>& predicates) {
  std::string key;
  tree.verts.ForEach([&](int v) { key += 'v' + std::to_string(v); });
  tree.edges.ForEach([&](int e) { key += 'e' + std::to_string(e); });
  std::vector<std::string> parts;
  parts.reserve(predicates.size());
  for (const PhrasePredicate& pred : predicates) {
    std::string part =
        std::to_string(db.TextColumnGid(pred.column)) + (pred.exact ? "!" : ":");
    for (const std::string& token : pred.tokens) part += token + ' ';
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  for (const std::string& part : parts) {
    key += '|';
    key += part;
  }
  return key;
}

bool EvalEngine::Execute(const JoinTree& tree,
                         const std::vector<PhrasePredicate>& predicates,
                         int cost) {
  if (ctx_.deadline != nullptr && ctx_.deadline->Expired()) {
    // Abort point between CQ-row checks: report failure without executing
    // and without caching — a fabricated "false" written to a shared cache
    // would outlive this request and corrupt every other session.
    counters_->aborted = true;
    return false;
  }
  // One *logical* existence query: charged to the counters exactly once
  // regardless of how it runs. In sharded mode (DESIGN.md §15) the shard
  // set answers it by probing shard-local executors in canonical order —
  // FK co-location makes the OR over shards equal to the unsharded answer,
  // so cached outcomes stay logical-level and interchangeable with
  // unsharded entries.
  auto run_exec = [&]() {
    counters_->verifications += 1;
    counters_->estimated_cost += cost;
    ScopedSpan exec_span(ctx_.trace, SpanKind::kEvalExec, ctx_.trace_parent);
    if (ctx_.shards != nullptr) {
      int shard = -1;
      bool found = ctx_.shards->Exists(tree, predicates, ctx_.trace, &shard);
      if (ctx_.trace != nullptr && shard >= 0) {
        ctx_.trace->AnnotateShard(exec_span.ref(), shard);
      }
      return found;
    }
    return ctx_.exec.Exists(tree, predicates, memo_, ctx_.match_cache,
                            ctx_.trace);
  };
  if (ctx_.cache != nullptr) {
    std::string key = EvalCacheKey(ctx_.db, tree, predicates);
    // Outcomes are only reusable within one data version: epoch 0 (the
    // plain database) keeps the historical key shape, any pinned live
    // epoch gets its own namespace so appends/tombstones can never serve
    // a stale cached answer.
    if (ctx_.data_epoch != 0) {
      key.insert(0, '@' + std::to_string(ctx_.data_epoch) + '#');
    }
    std::optional<bool> cached;
    {
      ScopedSpan lookup_span(ctx_.trace, SpanKind::kEvalCacheLookup,
                             ctx_.trace_parent);
      cached = ctx_.cache->Lookup(key);
    }
    if (ctx_.trace != nullptr) {
      ctx_.trace->Count(TraceCounter::kEvalCacheLookups, 1);
      if (cached.has_value()) {
        ctx_.trace->Count(TraceCounter::kEvalCacheHits, 1);
      }
    }
    if (cached.has_value()) return *cached;
    bool ok = run_exec();
    ctx_.cache->Insert(key, ok);
    return ok;
  }
  return run_exec();
}

bool EvalEngine::EvaluateFilter(const Filter& filter) {
  FilterPredicatesInto(filter, ctx_.et, ctx_.et_ids, &preds_scratch_);
  if (preds_scratch_.empty()) {
    // Outcome depends only on the join tree; memoize (see class comment).
    auto it = empty_join_cache_.find(filter.tree);
    if (it != empty_join_cache_.end()) return it->second;
    bool ok = Execute(filter.tree, preds_scratch_, filter.Cost());
    empty_join_cache_.emplace(filter.tree, ok);
    return ok;
  }
  return Execute(filter.tree, preds_scratch_, filter.Cost());
}

bool EvalEngine::EvaluateCandidateRow(int q, int row) {
  const CandidateQuery& query = ctx_.candidates[q];
  RowPredicatesInto(query, ctx_.et, ctx_.et_ids, row, &preds_scratch_);
  return Execute(query.tree, preds_scratch_, query.tree.NumVertices());
}

std::vector<int> MakeRowOrder(const ExampleTable& et, RowOrder order,
                              uint64_t seed) {
  std::vector<int> rows(et.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  switch (order) {
    case RowOrder::kGiven:
      break;
    case RowOrder::kRandom: {
      Rng rng(seed);
      rng.Shuffle(rows);
      break;
    }
    case RowOrder::kDenseFirst:
      std::stable_sort(rows.begin(), rows.end(), [&](int a, int b) {
        return et.NonEmptyCellCount(a) > et.NonEmptyCellCount(b);
      });
      break;
  }
  return rows;
}

std::vector<bool> VerifyAll::Verify(const VerifyContext& ctx,
                                    VerificationCounters* counters) {
  Stopwatch timer;
  std::vector<int> row_order = MakeRowOrder(ctx.et, row_order_, ctx.seed);
  int n = static_cast<int>(ctx.candidates.size());
  std::vector<bool> valid(ctx.candidates.size(), false);

  VerifyPoolHandle pool(ctx);
  Executor::SubtreeMemo memo;
  Executor::SubtreeMemo* memo_ptr =
      ctx.verify.subtree_memo ? &memo : nullptr;
  counters->threads_used = std::max(counters->threads_used, pool.threads());

  // Evaluates candidate q with early exit at its first failing row.
  auto check_candidate = [&](EvalEngine& engine, int q) {
    for (int row : row_order) {
      if (!engine.EvaluateCandidateRow(q, row)) return false;
    }
    return true;
  };

  if (pool.pool() == nullptr) {
    EvalEngine engine(ctx, counters, memo_ptr);
    for (int q = 0; q < n; ++q) valid[q] = check_candidate(engine, q);
  } else {
    // Candidates are independent, so fan batches of them out and merge the
    // per-batch counters in canonical batch order. Results land in a byte
    // vector — vector<bool> packs bits, so concurrent writes to distinct
    // candidates would race on shared bytes.
    int batch = std::max(1, ctx.verify.batch_size);
    int num_batches = (n + batch - 1) / batch;
    std::vector<uint8_t> ok_bytes(ctx.candidates.size(), 0);
    std::vector<VerificationCounters> batch_counters(num_batches);
    ParallelFor(pool.pool(), num_batches, [&](int b) {
      EvalEngine engine(ctx, &batch_counters[b], memo_ptr);
      int end = std::min(n, (b + 1) * batch);
      for (int q = b * batch; q < end; ++q) {
        ok_bytes[q] = check_candidate(engine, q) ? 1 : 0;
      }
    });
    for (const VerificationCounters& c : batch_counters) counters->Add(c);
    for (int q = 0; q < n; ++q) valid[q] = ok_bytes[q] != 0;
  }

  counters->subtree_memo_hits += memo.hits();
  counters->subtree_memo_lookups += memo.lookups();
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return valid;
}

}  // namespace qbe
