#include "core/verify_all.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"
#include "util/stopwatch.h"

namespace qbe {

std::string EvalCacheKey(const Database& db, const JoinTree& tree,
                         const std::vector<PhrasePredicate>& predicates) {
  std::string key;
  tree.verts.ForEach([&](int v) { key += 'v' + std::to_string(v); });
  tree.edges.ForEach([&](int e) { key += 'e' + std::to_string(e); });
  std::vector<std::string> parts;
  parts.reserve(predicates.size());
  for (const PhrasePredicate& pred : predicates) {
    std::string part =
        std::to_string(db.TextColumnGid(pred.column)) + (pred.exact ? "!" : ":");
    for (const std::string& token : pred.tokens) part += token + ' ';
    parts.push_back(std::move(part));
  }
  std::sort(parts.begin(), parts.end());
  for (const std::string& part : parts) {
    key += '|';
    key += part;
  }
  return key;
}

bool EvalEngine::Execute(const JoinTree& tree,
                         const std::vector<PhrasePredicate>& predicates,
                         int cost) {
  if (ctx_.deadline != nullptr && ctx_.deadline->Expired()) {
    // Abort point between CQ-row checks: report failure without executing
    // and without caching — a fabricated "false" written to a shared cache
    // would outlive this request and corrupt every other session.
    counters_->aborted = true;
    return false;
  }
  if (ctx_.cache != nullptr) {
    std::string key = EvalCacheKey(ctx_.db, tree, predicates);
    if (std::optional<bool> cached = ctx_.cache->Lookup(key)) return *cached;
    counters_->verifications += 1;
    counters_->estimated_cost += cost;
    bool ok = ctx_.exec.Exists(tree, predicates);
    ctx_.cache->Insert(key, ok);
    return ok;
  }
  counters_->verifications += 1;
  counters_->estimated_cost += cost;
  return ctx_.exec.Exists(tree, predicates);
}

bool EvalEngine::EvaluateFilter(const Filter& filter) {
  std::vector<PhrasePredicate> predicates = FilterPredicates(filter, ctx_.et);
  if (predicates.empty()) {
    // Outcome depends only on the join tree; memoize (see class comment).
    auto it = empty_join_cache_.find(filter.tree);
    if (it != empty_join_cache_.end()) return it->second;
    bool ok = Execute(filter.tree, predicates, filter.Cost());
    empty_join_cache_.emplace(filter.tree, ok);
    return ok;
  }
  return Execute(filter.tree, predicates, filter.Cost());
}

bool EvalEngine::EvaluateCandidateRow(int q, int row) {
  const CandidateQuery& query = ctx_.candidates[q];
  return Execute(query.tree, RowPredicates(query, ctx_.et, row),
                 query.tree.NumVertices());
}

std::vector<int> MakeRowOrder(const ExampleTable& et, RowOrder order,
                              uint64_t seed) {
  std::vector<int> rows(et.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  switch (order) {
    case RowOrder::kGiven:
      break;
    case RowOrder::kRandom: {
      Rng rng(seed);
      rng.Shuffle(rows);
      break;
    }
    case RowOrder::kDenseFirst:
      std::stable_sort(rows.begin(), rows.end(), [&](int a, int b) {
        return et.NonEmptyCellCount(a) > et.NonEmptyCellCount(b);
      });
      break;
  }
  return rows;
}

std::vector<bool> VerifyAll::Verify(const VerifyContext& ctx,
                                    VerificationCounters* counters) {
  Stopwatch timer;
  EvalEngine engine(ctx, counters);
  std::vector<int> row_order = MakeRowOrder(ctx.et, row_order_, ctx.seed);
  std::vector<bool> valid(ctx.candidates.size(), false);
  for (size_t q = 0; q < ctx.candidates.size(); ++q) {
    bool ok = true;
    for (int row : row_order) {
      if (!engine.EvaluateCandidateRow(static_cast<int>(q), row)) {
        ok = false;
        break;  // eliminated; skip remaining rows
      }
    }
    valid[q] = ok;
  }
  counters->elapsed_seconds += timer.ElapsedSeconds();
  return valid;
}

}  // namespace qbe
