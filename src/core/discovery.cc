#include "core/discovery.h"

#include <algorithm>
#include <memory>

#include "core/filter_verifier.h"
#include "core/simple_prune.h"
#include "core/verify_all.h"
#include "core/weave.h"
#include "exec/executor.h"
#include "exec/sql_render.h"
#include "obs/trace.h"
#include "schema/schema_graph.h"
#include "util/stopwatch.h"

namespace qbe {
namespace {

SpanKind VerifySpanKind(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kVerifyAll: return SpanKind::kVerifyAll;
    case Algorithm::kSimplePrune: return SpanKind::kSimplePrune;
    case Algorithm::kFilter: return SpanKind::kFilter;
    case Algorithm::kFilterExact: return SpanKind::kFilterExact;
    case Algorithm::kWeave: return SpanKind::kWeave;
  }
  return SpanKind::kVerifyAll;
}

std::unique_ptr<CandidateVerifier> MakeVerifier(
    const DiscoveryOptions& options) {
  switch (options.algorithm) {
    case Algorithm::kVerifyAll:
      return std::make_unique<VerifyAll>(options.row_order);
    case Algorithm::kSimplePrune:
      return std::make_unique<SimplePrune>(options.row_order);
    case Algorithm::kFilter: {
      FilterVerifier::Options fo;
      fo.failure_prior = options.failure_prior;
      return std::make_unique<FilterVerifier>(fo);
    }
    case Algorithm::kFilterExact:
      // Exact greedy argmax (the lazy accelerated scan is the default).
      return std::make_unique<FilterVerifier>(options.failure_prior, false);
    case Algorithm::kWeave:
      return std::make_unique<JoinTreeWeave>();
  }
  return nullptr;
}

/// Ranking score (§8 future work): prefer fewer joins (simpler
/// explanations) and more selective projection columns (mappings where the
/// ET values pin down few base rows are likelier to reflect user intent).
double RankScore(const DbView& view, const ExampleTable& et,
                 const EtTokenIds& et_ids, const CandidateQuery& query) {
  double selectivity_sum = 0.0;
  int cells = 0;
  for (int c = 0; c < et.num_columns(); ++c) {
    const ColumnRef& col = query.projection[c];
    const uint32_t live_rows = view.LiveRows(col.rel);
    for (int r = 0; r < et.num_rows(); ++r) {
      if (et.cell(r, c).IsEmpty()) continue;
      size_t matches = view.MatchCount(col, et_ids.CellIds(r, c));
      selectivity_sum += live_rows == 0
                             ? 0.0
                             : static_cast<double>(matches) /
                                   static_cast<double>(live_rows);
      ++cells;
    }
  }
  double avg_selectivity = cells == 0 ? 0.0 : selectivity_sum / cells;
  return 1.0 / query.tree.NumVertices() + 0.5 * (1.0 - avg_selectivity);
}

}  // namespace

namespace {

bool DeadlineExpired(const DiscoveryOptions& options) {
  return options.deadline != nullptr && options.deadline->Expired();
}

DiscoveryResult& MarkTimedOut(DiscoveryResult& result) {
  result.timed_out = true;
  result.error = "deadline exceeded before verification finished";
  result.queries.clear();
  return result;
}

}  // namespace

DiscoveryResult DiscoverQueries(const Database& db, const ExampleTable& et,
                                const DiscoveryOptions& options) {
  return DiscoverQueries(DbView(db), et, options, 0);
}

DiscoveryResult DiscoverQueries(const DbView& view, const ExampleTable& et,
                                const DiscoveryOptions& options,
                                uint64_t data_epoch) {
  const Database& db = view.base();
  DiscoveryResult result;
  if (!et.IsWellFormed()) {
    result.error =
        "example table must be non-empty with no fully-empty row or column";
    return result;
  }
  if (DeadlineExpired(options)) return MarkTimedOut(result);

  // The schema (relations, FK edges) is immutable across epochs, so the
  // graph and join-tree enumeration are overlay-independent; only row-level
  // reads go through the view.
  SchemaGraph graph(db);
  Executor exec(view, graph);

  TraceContext* trace = options.trace;
  if (trace != nullptr && view.delta() != nullptr) {
    trace->Count(TraceCounter::kDeltaRows,
                 static_cast<int64_t>(view.delta()->appended_total));
    trace->Count(TraceCounter::kDeltaTombstones,
                 static_cast<int64_t>(view.delta()->tombstones_total));
  }

  Stopwatch gen_timer;
  SpanRef gen_span =
      trace == nullptr ? kNullSpan : trace->OpenSpan(SpanKind::kCandidateGen);
  CandidateGenOptions gen_options;
  gen_options.max_join_tree_size = options.max_join_tree_size;
  gen_options.max_candidates = options.max_candidates;
  std::vector<std::vector<ColumnRef>> candidate_columns =
      options.min_row_support >= 0
          ? RetrieveCandidateColumnsRelaxed(view, et, options.min_row_support)
          : RetrieveCandidateColumns(view, et);
  for (const auto& cols : candidate_columns) {
    result.candidate_columns_per_et_column.push_back(cols.size());
  }
  std::vector<CandidateQuery> candidates = EnumerateCandidateQueries(
      db, graph, et, candidate_columns, gen_options);
  result.candidate_gen_seconds = gen_timer.ElapsedSeconds();
  result.num_candidates = candidates.size();
  if (trace != nullptr) {
    trace->CloseSpan(gen_span);
    trace->Count(TraceCounter::kCandidatesGenerated,
                 static_cast<int64_t>(candidates.size()));
  }
  if (candidates.empty()) return result;

  if (DeadlineExpired(options)) return MarkTimedOut(result);

  // Resolve the ET's tokens against the version's dictionary once (base
  // dictionary plus overlay tokens); every predicate this request builds
  // carries id vectors from here on.
  SpanRef resolve_span =
      trace == nullptr ? kNullSpan
                       : trace->OpenSpan(SpanKind::kEtTokenResolve);
  EtTokenIds et_ids(et, view);
  if (trace != nullptr) trace->CloseSpan(resolve_span);
  MatchCache match_cache;
  VerifyContext ctx{db,           graph,         exec,
                    et,           candidates,    options.seed,
                    options.cache, options.deadline,
                    options.verify, options.verify_pool,
                    &et_ids,
                    options.use_match_cache ? &match_cache : nullptr,
                    data_epoch,   view.delta(),
                    trace};

  // Per-algorithm verification span; evaluations fanned out to verify-pool
  // workers hang off it via ctx.trace_parent.
  SpanRef verify_span =
      trace == nullptr
          ? kNullSpan
          : trace->OpenSpan(options.min_row_support >= 0
                                ? SpanKind::kRelaxedVerify
                                : VerifySpanKind(options.algorithm));
  ctx.trace_parent = verify_span;

  std::vector<int> matched(candidates.size(), 0);
  std::vector<bool> keep(candidates.size(), false);
  if (options.min_row_support >= 0) {
    // Relaxed validity: count matching rows per candidate (no early
    // elimination — every row's outcome matters) and keep those meeting
    // the support threshold.
    int need = std::min(options.min_row_support, et.num_rows());
    EvalEngine engine(ctx, &result.counters);
    Stopwatch timer;
    for (size_t q = 0; q < candidates.size(); ++q) {
      for (int r = 0; r < et.num_rows(); ++r) {
        // Early exit only when the threshold is provably unreachable.
        int remaining = et.num_rows() - r;
        if (matched[q] + remaining < need) break;
        if (engine.EvaluateCandidateRow(static_cast<int>(q), r)) {
          matched[q] += 1;
        }
      }
      keep[q] = matched[q] >= need;
    }
    result.counters.elapsed_seconds += timer.ElapsedSeconds();
  } else {
    std::unique_ptr<CandidateVerifier> verifier = MakeVerifier(options);
    std::vector<bool> valid = verifier->Verify(ctx, &result.counters);
    for (size_t q = 0; q < candidates.size(); ++q) {
      keep[q] = valid[q];
      matched[q] = valid[q] ? et.num_rows() : 0;
    }
  }
  result.counters.match_cache_hits +=
      static_cast<int64_t>(match_cache.hits());
  result.counters.match_cache_lookups +=
      static_cast<int64_t>(match_cache.lookups());
  if (trace != nullptr) {
    trace->CloseSpan(verify_span);
    trace->Count(TraceCounter::kQueriesVerified,
                 result.counters.verifications);
    trace->Count(TraceCounter::kMatchCacheHits,
                 result.counters.match_cache_hits);
    trace->Count(TraceCounter::kMatchCacheLookups,
                 result.counters.match_cache_lookups);
    trace->Count(TraceCounter::kSubtreeMemoHits,
                 result.counters.subtree_memo_hits);
    trace->Count(TraceCounter::kSubtreeMemoLookups,
                 result.counters.subtree_memo_lookups);
  }

  // An aborted run's validity vector is fabricated from the abort point on;
  // surface the timeout instead of a wrong answer.
  if (result.counters.aborted) return MarkTimedOut(result);

  ScopedSpan rank_span(trace, SpanKind::kRank);
  std::vector<std::string> labels;
  for (int c = 0; c < et.num_columns(); ++c)
    labels.push_back(et.column_name(c));
  for (size_t q = 0; q < candidates.size(); ++q) {
    if (!keep[q]) continue;
    DiscoveredQuery out;
    out.query = candidates[q];
    out.sql = RenderProjectJoinSql(db, graph, candidates[q].tree,
                                   candidates[q].projection, labels);
    out.matched_rows = matched[q];
    out.score =
        options.rank_results ? RankScore(view, et, et_ids, candidates[q]) : 0.0;
    result.queries.push_back(std::move(out));
  }
  if (options.rank_results) {
    std::stable_sort(result.queries.begin(), result.queries.end(),
                     [](const DiscoveredQuery& a, const DiscoveredQuery& b) {
                       return a.score > b.score;
                     });
  }
  if (trace != nullptr) {
    trace->Count(TraceCounter::kValidQueries,
                 static_cast<int64_t>(result.queries.size()));
  }
  return result;
}

}  // namespace qbe
