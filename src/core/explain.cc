#include "core/explain.h"

#include "core/candidate_gen.h"
#include "core/filter_universe.h"
#include "schema/schema_graph.h"

namespace qbe {

DiscoveryExplain ExplainDiscovery(const Database& db, const ExampleTable& et,
                                  const DiscoveryOptions& options) {
  DiscoveryExplain explain;

  // Stage 1: candidate projection columns.
  std::vector<std::vector<ColumnRef>> candidate_columns =
      options.min_row_support >= 0
          ? RetrieveCandidateColumnsRelaxed(db, et, options.min_row_support)
          : RetrieveCandidateColumns(db, et);
  for (int c = 0; c < et.num_columns(); ++c) {
    DiscoveryExplain::EtColumnInfo info;
    info.name = et.column_name(c).empty()
                    ? std::string(1, static_cast<char>('A' + c))
                    : et.column_name(c);
    for (const ColumnRef& col : candidate_columns[c]) {
      info.candidate_columns.push_back(db.QualifiedColumnName(col));
    }
    explain.et_columns.push_back(std::move(info));
  }

  // Stage 2: candidate enumeration statistics.
  SchemaGraph graph(db);
  CandidateGenOptions gen_options;
  gen_options.max_join_tree_size = options.max_join_tree_size;
  gen_options.max_candidates = options.max_candidates;
  std::vector<CandidateQuery> candidates = EnumerateCandidateQueries(
      db, graph, et, candidate_columns, gen_options);
  explain.num_candidates = candidates.size();
  for (const CandidateQuery& q : candidates) {
    explain.candidates_by_tree_size[q.tree.NumVertices()] += 1;
  }

  // Stage 3: filter universe statistics (what FILTER would build).
  if (!candidates.empty()) {
    FilterUniverse universe = BuildFilterUniverse(graph, et, candidates);
    explain.num_filters = universe.filters.size();
    for (const Filter& f : universe.filters) {
      if (f.IsTriviallySuccessful()) explain.num_trivial_filters += 1;
    }
  }

  // Stage 4: the actual discovery (shares nothing with the above; results
  // must match a plain DiscoverQueries call).
  DiscoveryResult result = DiscoverQueries(db, et, options);
  explain.num_valid = result.queries.size();
  explain.counters = result.counters;
  explain.queries = std::move(result.queries);
  return explain;
}

std::string DiscoveryExplain::ToString() const {
  std::string out = "discovery explain\n";
  out += "  candidate projection columns (Eq. 3):\n";
  for (const EtColumnInfo& info : et_columns) {
    out += "    " + info.name + " -> ";
    if (info.candidate_columns.empty()) {
      out += "(none)";
    } else {
      for (size_t i = 0; i < info.candidate_columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += info.candidate_columns[i];
      }
    }
    out += "\n";
  }
  out += "  candidates: " + std::to_string(num_candidates) + " (by tree size:";
  for (const auto& [size, count] : candidates_by_tree_size) {
    out += " " + std::to_string(size) + "->" + std::to_string(count);
  }
  out += ")\n";
  out += "  filter universe: " + std::to_string(num_filters) + " filters, " +
         std::to_string(num_trivial_filters) + " trivially successful\n";
  out += "  verifications: " + std::to_string(counters.verifications) +
         " (estimated cost " + std::to_string(counters.estimated_cost) +
         ")\n";
  out += "  valid queries: " + std::to_string(num_valid) + "\n";
  for (const DiscoveredQuery& q : queries) {
    out += "    " + q.sql + "\n";
  }
  return out;
}

}  // namespace qbe
