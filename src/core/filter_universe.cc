#include "core/filter_universe.h"

#include <unordered_map>

#include "schema/subtree_enum.h"
#include "util/check.h"

namespace qbe {

FilterUniverse BuildFilterUniverse(
    const SchemaGraph& graph, const ExampleTable& et,
    const std::vector<CandidateQuery>& candidates) {
  FilterUniverse u;
  u.filters_of_query.resize(candidates.size());
  u.basic_filters_of_query.resize(candidates.size());

  // Candidates frequently share join trees (only φ differs), so the
  // connected-subtree enumeration is cached per distinct tree.
  std::unordered_map<JoinTree, std::vector<JoinTree>, JoinTreeHash>
      subtree_cache;
  std::unordered_map<Filter, int, FilterHash> filter_ids;

  for (size_t q = 0; q < candidates.size(); ++q) {
    const CandidateQuery& query = candidates[q];
    auto it = subtree_cache.find(query.tree);
    if (it == subtree_cache.end()) {
      it = subtree_cache
               .emplace(query.tree,
                        EnumerateSubtreesOfTree(query.tree, graph))
               .first;
    }
    for (int row = 0; row < et.num_rows(); ++row) {
      for (const JoinTree& subtree : it->second) {
        Filter f = MakeFilter(query, subtree, et, row);
        bool is_basic = subtree == query.tree;
        auto [fit, inserted] =
            filter_ids.emplace(std::move(f), u.num_filters());
        if (inserted) {
          u.filters.push_back(fit->first);
          u.queries_of_filter.emplace_back();
        }
        int fid = fit->second;
        u.filters_of_query[q].push_back(fid);
        u.queries_of_filter[fid].push_back(static_cast<int>(q));
        if (is_basic) u.basic_filters_of_query[q].push_back(fid);
      }
    }
    QBE_CHECK(static_cast<int>(u.basic_filters_of_query[q].size()) ==
              et.num_rows());
  }

  // Dependency lists. First the subtree relation on the (few) distinct
  // trees, then per-row filter buckets refined by the φ-agreement test.
  std::unordered_map<JoinTree, int, JoinTreeHash> tree_ids;
  std::vector<const JoinTree*> trees;
  std::vector<std::vector<std::vector<int>>> buckets;  // [row][tree] -> fids
  buckets.resize(et.num_rows());
  for (int f = 0; f < u.num_filters(); ++f) {
    const Filter& filter = u.filters[f];
    auto [tit, inserted] =
        tree_ids.emplace(filter.tree, static_cast<int>(trees.size()));
    if (inserted) {
      trees.push_back(&tit->first);
      for (auto& per_row : buckets) per_row.emplace_back();
    }
    buckets[filter.row][tit->second].push_back(f);
  }

  u.supers_of.resize(u.num_filters());
  u.subs_of.resize(u.num_filters());
  for (size_t t1 = 0; t1 < trees.size(); ++t1) {
    for (size_t t2 = 0; t2 < trees.size(); ++t2) {
      if (!trees[t1]->IsSubtreeOf(*trees[t2])) continue;
      for (int row = 0; row < et.num_rows(); ++row) {
        for (int f1 : buckets[row][t1]) {
          for (int f2 : buckets[row][t2]) {
            if (f1 == f2) continue;
            if (IsSubFilterOf(u.filters[f1], u.filters[f2])) {
              u.supers_of[f1].push_back(f2);
              u.subs_of[f2].push_back(f1);
            }
          }
        }
      }
    }
  }
  return u;
}

}  // namespace qbe
