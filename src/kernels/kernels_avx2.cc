// AVX2 kernels: 8×u32 / 4×u64 shuffle-compare blocks with cross-lane
// compaction via permutevar8x32 lookup tables. Compiled with -mavx2 (see
// src/CMakeLists.txt); reached strictly after the CPUID dispatch check,
// and only the kernel_impl entry points are exported — no inline helpers
// that could leak AVX2 code into other TUs through comdat folding.

#include "kernels/kernel_impl.h"

#if defined(QBE_KERNELS_X86) && !defined(__AVX2__)
// x86 build without -mavx2 on this TU (unexpected toolchain config): keep
// the symbols, forward to the scalar oracle — dispatch still works, just
// without the speedup.
namespace qbe::kernel_impl::avx2 {
size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out) {
  return scalar::IntersectU32(a, na, b, nb, out);
}
size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out) {
  return scalar::IntersectShiftedU64(cand, nc, span, ns, shift, out);
}
void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words) {
  scalar::BitmapAnd(words, other, num_words);
}
size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out) {
  return scalar::BitmapEmit(words, num_words, out);
}
}  // namespace qbe::kernel_impl::avx2
#elif defined(QBE_KERNELS_X86)

#include <immintrin.h>

namespace qbe::kernel_impl::avx2 {
namespace {

/// kCompact8.idx[m] is a permutevar8x32 control compacting the 32-bit
/// lanes whose bit is set in the 8-bit mask m to the front (trailing lanes
/// read lane 0; their stores land past the logical result and are
/// overwritten or trimmed — the kIntersectPad32 slack contract).
struct Compact8Table {
  alignas(32) int idx[256][8];
};

constexpr Compact8Table MakeCompact8() {
  Compact8Table t{};
  for (int m = 0; m < 256; ++m) {
    int out = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((m >> lane) & 1) t.idx[m][out++] = lane;
    }
    for (; out < 8; ++out) t.idx[m][out] = 0;
  }
  return t;
}

constexpr Compact8Table kCompact8 = MakeCompact8();

/// kCompact4x64.idx[m] compacts 64-bit lanes (as 32-bit index pairs) whose
/// bit is set in the 4-bit movemask_pd mask m.
struct Compact4x64Table {
  alignas(32) int idx[16][8];
};

constexpr Compact4x64Table MakeCompact4x64() {
  Compact4x64Table t{};
  for (int m = 0; m < 16; ++m) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m >> lane) & 1) {
        t.idx[m][out * 2] = lane * 2;
        t.idx[m][out * 2 + 1] = lane * 2 + 1;
        ++out;
      }
    }
    for (; out < 4; ++out) {
      t.idx[m][out * 2] = 0;
      t.idx[m][out * 2 + 1] = 1;
    }
  }
  return t;
}

constexpr Compact4x64Table kCompact4x64 = MakeCompact4x64();

}  // namespace

size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // Compare va against every rotation of vb: sorted-unique inputs make
    // each common value match exactly once. Rotations come from one
    // half-swap plus in-lane alignr's — rotate-by-r of [L,H] is
    // alignr(swap,vb,4r) for r<4 and alignr(vb,swap,4(r-4)) above — which
    // is far cheaper than seven lane-crossing vpermd's on cores that split
    // cross-lane shuffles into multiple µops.
    const __m256i swap = _mm256_permute2x128_si256(vb, vb, 0x01);
    __m256i cmp = _mm256_cmpeq_epi32(va, vb);
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(swap, vb, 4)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(swap, vb, 8)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(swap, vb, 12)));
    cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi32(va, swap));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(vb, swap, 4)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(vb, swap, 8)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_alignr_epi8(vb, swap, 12)));
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(cmp));
    if (mask != 0) {  // skip table load + compress + store on empty blocks
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompact8.idx[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + n),
                          _mm256_permutevar8x32_epi32(va, perm));
      n += static_cast<size_t>(__builtin_popcount(
          static_cast<unsigned>(mask)));
    }
    // Branchless advance: the <= comparisons are data-dependent coin flips
    // on dense inputs, and a mispredict per block would cost more than the
    // whole compare network.
    const uint32_t amax = a[i + 7], bmax = b[j + 7];
    i += static_cast<size_t>(amax <= bmax) * 8;
    j += static_cast<size_t>(bmax <= amax) * 8;
  }
  while (i < na && j < nb) {
    const uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      ++i;
    } else if (va > vb) {
      ++j;
    } else {
      out[n++] = va;
      ++i;
      ++j;
    }
  }
  return n;
}

size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out) {
  size_t i = 0, j = 0, n = 0;
  const __m256i vshift = _mm256_set1_epi64x(static_cast<long long>(shift));
  while (i + 4 <= nc && j + 4 <= ns) {
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cand + i));
    const __m256i want = _mm256_add_epi64(vc, vshift);
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(span + j));
    // The three rotations of [s0..s3] via one half-swap + two in-lane
    // alignr's (same trick as IntersectU32; vpermq is multi-µop on some
    // cores).
    const __m256i swap = _mm256_permute2x128_si256(vs, vs, 0x01);
    __m256i cmp = _mm256_cmpeq_epi64(want, vs);
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi64(want, _mm256_alignr_epi8(swap, vs, 8)));
    cmp = _mm256_or_si256(cmp, _mm256_cmpeq_epi64(want, swap));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi64(want, _mm256_alignr_epi8(vs, swap, 8)));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(cmp));
    if (mask != 0) {
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompact4x64.idx[mask]));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + n),
          _mm256_permutevar8x32_epi32(vc, perm));
      n += static_cast<size_t>(__builtin_popcount(
          static_cast<unsigned>(mask)));
    }
    const uint64_t cmax = cand[i + 3] + shift, smax = span[j + 3];
    i += static_cast<size_t>(cmax <= smax) * 4;
    j += static_cast<size_t>(smax <= cmax) * 4;
  }
  while (i < nc && j < ns) {
    const uint64_t want = cand[i] + shift;
    if (want < span[j]) {
      ++i;
    } else if (want > span[j]) {
      ++j;
    } else {
      out[n++] = cand[i];
      ++i;
      ++j;
    }
  }
  return n;
}

void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words) {
  size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(other + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + w),
                        _mm256_and_si256(a, b));
  }
  for (; w < num_words; ++w) words[w] &= other[w];
}

size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out) {
  size_t n = 0, w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (_mm256_testz_si256(v, v)) continue;  // skip all-zero 256-bit blocks
    for (size_t k = w; k < w + 4; ++k) {
      uint64_t word = words[k];
      while (word != 0) {
        out[n++] = static_cast<uint32_t>(
            k * 64 + static_cast<size_t>(__builtin_ctzll(word)));
        word &= word - 1;
      }
    }
  }
  for (; w < num_words; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      out[n++] = static_cast<uint32_t>(
          w * 64 + static_cast<size_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
  return n;
}

}  // namespace qbe::kernel_impl::avx2

#endif  // QBE_KERNELS_X86
