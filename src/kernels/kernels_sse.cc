// SSE4.2 kernels: 4×u32 / 2×u64 shuffle-compare blocks. Compiled with
// -msse4.2 (see src/CMakeLists.txt); nothing in this TU is reachable
// before the CPUID dispatch check, and only the kernel_impl entry points
// are exported — no inline helpers that could leak SSE4.2 code into other
// TUs through comdat folding. Only C arrays and intrinsics on purpose.

#include "kernels/kernel_impl.h"

#if defined(QBE_KERNELS_X86) && !defined(__SSE4_2__)
// x86 build without -msse4.2 on this TU (unexpected toolchain config):
// keep the symbols, forward to the scalar oracle — dispatch still works,
// just without the speedup.
namespace qbe::kernel_impl::sse {
size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out) {
  return scalar::IntersectU32(a, na, b, nb, out);
}
size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out) {
  return scalar::IntersectShiftedU64(cand, nc, span, ns, shift, out);
}
void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words) {
  scalar::BitmapAnd(words, other, num_words);
}
size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out) {
  return scalar::BitmapEmit(words, num_words, out);
}
}  // namespace qbe::kernel_impl::sse
#elif defined(QBE_KERNELS_X86)

#include <immintrin.h>

namespace qbe::kernel_impl::sse {
namespace {

/// kCompact4.bytes[m] is an _mm_shuffle_epi8 control that compacts the
/// 32-bit lanes whose bit is set in the 4-bit mask m to the front of the
/// vector (0x80 = zero-fill the rest).
struct Compact4Table {
  alignas(16) unsigned char bytes[16][16];
};

constexpr Compact4Table MakeCompact4() {
  Compact4Table t{};
  for (int m = 0; m < 16; ++m) {
    int out = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m >> lane) & 1) {
        for (int b = 0; b < 4; ++b) {
          t.bytes[m][out * 4 + b] =
              static_cast<unsigned char>(lane * 4 + b);
        }
        ++out;
      }
    }
    for (; out < 4; ++out) {
      for (int b = 0; b < 4; ++b) t.bytes[m][out * 4 + b] = 0x80;
    }
  }
  return t;
}

constexpr Compact4Table kCompact4 = MakeCompact4();

}  // namespace

size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    // Compare va against every rotation of vb: sorted-unique inputs make
    // each common value match exactly once.
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2,
                                                                   1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3,
                                                                   2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0,
                                                                   3))));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(cmp));
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kCompact4.bytes[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n),
                     _mm_shuffle_epi8(va, shuf));
    n += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
    // Branchless advance — data-dependent coin flips mispredict (see the
    // AVX2 kernel for the rationale).
    const uint32_t amax = a[i + 3], bmax = b[j + 3];
    i += static_cast<size_t>(amax <= bmax) * 4;
    j += static_cast<size_t>(bmax <= amax) * 4;
  }
  while (i < na && j < nb) {
    const uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      ++i;
    } else if (va > vb) {
      ++j;
    } else {
      out[n++] = va;
      ++i;
      ++j;
    }
  }
  return n;
}

size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out) {
  size_t i = 0, j = 0, n = 0;
  const __m128i vshift = _mm_set1_epi64x(static_cast<long long>(shift));
  while (i + 2 <= nc && j + 2 <= ns) {
    const __m128i vc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cand + i));
    const __m128i want = _mm_add_epi64(vc, vshift);
    const __m128i vs =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(span + j));
    __m128i cmp = _mm_cmpeq_epi64(want, vs);
    cmp = _mm_or_si128(
        cmp,
        _mm_cmpeq_epi64(want, _mm_shuffle_epi32(vs, _MM_SHUFFLE(1, 0, 3,
                                                                2))));
    const int mask = _mm_movemask_pd(_mm_castsi128_pd(cmp));
    if (mask & 1) out[n++] = cand[i];
    if (mask & 2) out[n++] = cand[i + 1];
    const uint64_t cmax = cand[i + 1] + shift, smax = span[j + 1];
    if (cmax <= smax) i += 2;
    if (smax <= cmax) j += 2;
  }
  while (i < nc && j < ns) {
    const uint64_t want = cand[i] + shift;
    if (want < span[j]) {
      ++i;
    } else if (want > span[j]) {
      ++j;
    } else {
      out[n++] = cand[i];
      ++i;
      ++j;
    }
  }
  return n;
}

void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words) {
  size_t w = 0;
  for (; w + 2 <= num_words; w += 2) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + w));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(other + w));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(words + w),
                     _mm_and_si128(a, b));
  }
  for (; w < num_words; ++w) words[w] &= other[w];
}

size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out) {
  size_t n = 0, w = 0;
  for (; w + 2 <= num_words; w += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(words + w));
    if (_mm_testz_si128(v, v)) continue;  // skip all-zero 128-bit blocks
    for (size_t k = w; k < w + 2; ++k) {
      uint64_t word = words[k];
      while (word != 0) {
        out[n++] = static_cast<uint32_t>(
            k * 64 + static_cast<size_t>(__builtin_ctzll(word)));
        word &= word - 1;
      }
    }
  }
  for (; w < num_words; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      out[n++] = static_cast<uint32_t>(
          w * 64 + static_cast<size_t>(__builtin_ctzll(word)));
      word &= word - 1;
    }
  }
  return n;
}

}  // namespace qbe::kernel_impl::sse

#endif  // QBE_KERNELS_X86
