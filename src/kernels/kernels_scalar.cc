// Portable scalar kernels — the oracle every vector level must match
// bit-for-bit, and the dispatch floor on CPUs (or architectures) without
// SSE4.2/AVX2. Plain two-pointer merges and ctz word scans; the compiler
// is free to autovectorize, but correctness never depends on it.

#include <bit>

#include "kernels/kernel_impl.h"

namespace qbe::kernel_impl::scalar {

size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i < na && j < nb) {
    const uint32_t va = a[i], vb = b[j];
    if (va < vb) {
      ++i;
    } else if (va > vb) {
      ++j;
    } else {
      out[n++] = va;
      ++i;
      ++j;
    }
  }
  return n;
}

size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out) {
  size_t i = 0, j = 0, n = 0;
  while (i < nc && j < ns) {
    const uint64_t want = cand[i] + shift;
    if (want < span[j]) {
      ++i;
    } else if (want > span[j]) {
      ++j;
    } else {
      out[n++] = cand[i];
      ++i;
      ++j;
    }
  }
  return n;
}

void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words) {
  for (size_t w = 0; w < num_words; ++w) words[w] &= other[w];
}

size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out) {
  size_t n = 0;
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      out[n++] = static_cast<uint32_t>(w * 64 + std::countr_zero(word));
      word &= word - 1;  // clear lowest set bit
    }
  }
  return n;
}

}  // namespace qbe::kernel_impl::scalar
