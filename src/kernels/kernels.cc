#include "kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "kernels/kernel_impl.h"
#include "util/check.h"

namespace qbe {
namespace {

constexpr KernelOps kScalarOps = {
    kernel_impl::scalar::IntersectU32,
    kernel_impl::scalar::IntersectShiftedU64,
    kernel_impl::scalar::BitmapAnd,
    kernel_impl::scalar::BitmapEmit,
};

#ifdef QBE_KERNELS_X86
constexpr KernelOps kSseOps = {
    kernel_impl::sse::IntersectU32,
    // Two 64-bit lanes per block don't beat the scalar two-pointer merge
    // (measured ~10% slower on the phrase micro), so the SSE level keeps
    // the scalar shifted-span kernel. Per-entry selection is the point of
    // the ops table: each level ships its fastest correct mix.
    kernel_impl::scalar::IntersectShiftedU64,
    kernel_impl::sse::BitmapAnd,
    kernel_impl::sse::BitmapEmit,
};

constexpr KernelOps kAvx2Ops = {
    kernel_impl::avx2::IntersectU32,
    kernel_impl::avx2::IntersectShiftedU64,
    kernel_impl::avx2::BitmapAnd,
    kernel_impl::avx2::BitmapEmit,
};
#endif  // QBE_KERNELS_X86

/// Widest level this CPU can run, probed once (CPUID via the compiler's
/// cpu_supports runtime).
KernelLevel DetectWidestLevel() {
#ifdef QBE_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return KernelLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return KernelLevel::kSse;
#endif
  return KernelLevel::kScalar;
}

KernelLevel WidestSupported() {
  static const KernelLevel widest = DetectWidestLevel();
  return widest;
}

/// Startup resolution: widest supported unless QBE_KERNEL narrows it.
/// Unknown values and levels this CPU lacks degrade gracefully (stderr
/// note, never a crash) — the scalar fallback acceptance criterion.
KernelLevel ResolveStartupLevel() {
  const KernelLevel widest = WidestSupported();
  const char* env = std::getenv("QBE_KERNEL");
  if (env == nullptr || *env == '\0') return widest;
  KernelLevel requested;
  if (!ParseKernelLevel(env, &requested)) {
    std::fprintf(stderr,
                 "qbe: unknown QBE_KERNEL=\"%s\" (want scalar|sse|avx2); "
                 "using %s\n",
                 env, KernelLevelName(widest));
    return widest;
  }
  if (!KernelLevelSupported(requested)) {
    std::fprintf(stderr,
                 "qbe: QBE_KERNEL=%s not supported by this CPU; using %s\n",
                 KernelLevelName(requested), KernelLevelName(widest));
    return widest;
  }
  return requested;
}

std::atomic<int>& ActiveLevelSlot() {
  static std::atomic<int> slot{static_cast<int>(ResolveStartupLevel())};
  return slot;
}

}  // namespace

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar: return "scalar";
    case KernelLevel::kSse: return "sse";
    case KernelLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

bool KernelLevelSupported(KernelLevel level) {
  return static_cast<int>(level) <= static_cast<int>(WidestSupported());
}

bool ParseKernelLevel(const char* value, KernelLevel* level) {
  if (value == nullptr) return false;
  if (std::strcmp(value, "scalar") == 0) {
    *level = KernelLevel::kScalar;
  } else if (std::strcmp(value, "sse") == 0) {
    *level = KernelLevel::kSse;
  } else if (std::strcmp(value, "avx2") == 0) {
    *level = KernelLevel::kAvx2;
  } else {
    return false;
  }
  return true;
}

KernelLevel ActiveKernelLevel() {
  return static_cast<KernelLevel>(
      ActiveLevelSlot().load(std::memory_order_relaxed));
}

void ForceKernelLevel(KernelLevel level) {
  QBE_CHECK_MSG(KernelLevelSupported(level),
                "ForceKernelLevel: level not supported on this CPU");
  ActiveLevelSlot().store(static_cast<int>(level),
                          std::memory_order_relaxed);
}

const KernelOps& KernelOpsFor(KernelLevel level) {
  QBE_CHECK_MSG(KernelLevelSupported(level),
                "KernelOpsFor: level not supported on this CPU");
  switch (level) {
    case KernelLevel::kScalar: return kScalarOps;
#ifdef QBE_KERNELS_X86
    case KernelLevel::kSse: return kSseOps;
    case KernelLevel::kAvx2: return kAvx2Ops;
#else
    case KernelLevel::kSse:
    case KernelLevel::kAvx2: break;
#endif
  }
  return kScalarOps;
}

const KernelOps& ActiveKernelOps() {
  return KernelOpsFor(ActiveKernelLevel());
}

namespace kernels {

namespace {

/// Skew threshold shared by every adaptive path: gallop when the larger
/// side is ≥16x the smaller — the shape semijoin reductions and selective
/// predicate seeds hit constantly. tests/kernels_test.cc probes both sides
/// of this boundary at every level.
constexpr size_t kGallopSkew = 16;

}  // namespace

void IntersectSortedInto(std::span<const uint32_t> a,
                         std::span<const uint32_t> b,
                         std::vector<uint32_t>* out) {
  out->clear();
  const std::span<const uint32_t> small = a.size() <= b.size() ? a : b;
  const std::span<const uint32_t> large = a.size() <= b.size() ? b : a;
  if (small.empty()) return;
  if (large.size() / kGallopSkew >= small.size()) {
    // Binary-probe the large side with a shrinking search window.
    const uint32_t* lo = large.data();
    const uint32_t* end = large.data() + large.size();
    for (uint32_t v : small) {
      lo = std::lower_bound(lo, end, v);
      if (lo == end) break;
      if (*lo == v) out->push_back(v);
    }
    return;
  }
  out->resize(small.size() + kIntersectPad32);
  const size_t n = ActiveKernelOps().intersect_u32(
      small.data(), small.size(), large.data(), large.size(), out->data());
  out->resize(n);
}

void IntersectSortedInPlace(std::vector<uint32_t>* a,
                            std::span<const uint32_t> b,
                            std::vector<uint32_t>* scratch) {
  IntersectSortedInto(*a, b, scratch);
  std::swap(*a, *scratch);
}

void IntersectSortedInto(std::span<const int> a, std::span<const int> b,
                         std::vector<int>* out) {
  // Sorted non-negative ints order identically to their uint32 bit
  // patterns, so the u32 kernels apply unchanged.
  static_assert(sizeof(int) == sizeof(uint32_t));
  out->clear();
  const std::span<const int> small = a.size() <= b.size() ? a : b;
  const std::span<const int> large = a.size() <= b.size() ? b : a;
  if (small.empty()) return;
  if (large.size() / kGallopSkew >= small.size()) {
    const int* lo = large.data();
    const int* end = large.data() + large.size();
    for (int v : small) {
      lo = std::lower_bound(lo, end, v);
      if (lo == end) break;
      if (*lo == v) out->push_back(v);
    }
    return;
  }
  out->resize(small.size() + kIntersectPad32);
  const size_t n = ActiveKernelOps().intersect_u32(
      reinterpret_cast<const uint32_t*>(small.data()), small.size(),
      reinterpret_cast<const uint32_t*>(large.data()), large.size(),
      reinterpret_cast<uint32_t*>(out->data()));
  out->resize(n);
}

void IntersectSortedInPlace(std::vector<int>* a, std::span<const int> b,
                            std::vector<int>* scratch) {
  IntersectSortedInto(*a, b, scratch);
  std::swap(*a, *scratch);
}

void IntersectShiftedInPlace(std::vector<uint64_t>* cand,
                             std::span<const uint64_t> span, uint64_t shift,
                             std::vector<uint64_t>* scratch) {
  scratch->clear();
  if (!cand->empty()) {
    if (span.size() / kGallopSkew >= cand->size()) {
      // Gallop from the candidate side with an advancing lower bound.
      const uint64_t* lo = span.data();
      const uint64_t* end = span.data() + span.size();
      for (uint64_t c : *cand) {
        const uint64_t want = c + shift;
        lo = std::lower_bound(lo, end, want);
        if (lo == end) break;
        if (*lo == want) scratch->push_back(c);
      }
    } else {
      scratch->resize(cand->size() + kIntersectPad64);
      const size_t n = ActiveKernelOps().intersect_shifted_u64(
          cand->data(), cand->size(), span.data(), span.size(), shift,
          scratch->data());
      scratch->resize(n);
    }
  }
  std::swap(*cand, *scratch);
}

void BitmapSetBatch(std::vector<uint64_t>* bits,
                    std::span<const uint32_t> rows) {
  uint64_t* words = bits->data();
  for (uint32_t row : rows) {
    words[row >> 6] |= uint64_t{1} << (row & 63);
  }
}

void BitmapAnd(std::vector<uint64_t>* bits,
               std::span<const uint64_t> other) {
  const size_t n = std::min(bits->size(), other.size());
  ActiveKernelOps().bitmap_and(bits->data(), other.data(), n);
  // A shorter `other` implicitly zero-extends.
  if (other.size() < bits->size()) {
    std::fill(bits->begin() + other.size(), bits->end(), 0);
  }
}

void BitmapEmitInto(const std::vector<uint64_t>& bits,
                    std::vector<uint32_t>* out) {
  size_t total = 0;
  for (uint64_t word : bits) total += std::popcount(word);
  out->resize(total);
  const size_t n =
      ActiveKernelOps().bitmap_emit(bits.data(), bits.size(), out->data());
  QBE_DCHECK(n == total);
  (void)n;
}

}  // namespace kernels

}  // namespace qbe
