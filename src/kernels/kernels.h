#ifndef QBE_KERNELS_KERNELS_H_
#define QBE_KERNELS_KERNELS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace qbe {

/// CPU-feature runtime-dispatched kernels under the verification hot path
/// (DESIGN.md §14). Every scalar loop that dominates CQ-row verification —
/// sorted-uint32 set intersection, the positional shifted-span merge behind
/// phrase matching, and the semijoin row bitmaps — funnels through one of
/// the function pointers in KernelOps. The table is selected once at
/// startup from CPUID (AVX2 → SSE4.2 → portable scalar), overridable with
/// QBE_KERNEL=scalar|sse|avx2 for testing and A/B benching.
///
/// Contract: every kernel is bit-identical to the scalar oracle — same
/// output values in the same order for any input — so the dispatch level
/// can never change discovery output, verification counts, or cache key
/// sets. tests/kernels_test.cc enforces this differentially, and the golden
/// harness (tests/golden/verify_counts.json) pins the end-to-end counts.

/// Dispatch levels, widest last. On non-x86 builds only kScalar exists.
enum class KernelLevel : int {
  kScalar = 0,
  kSse = 1,   // SSE4.2: 4×32-bit / 2×64-bit shuffle-compare blocks
  kAvx2 = 2,  // AVX2: 8×32-bit / 4×64-bit blocks + 256-bit bitmap ops
};

const char* KernelLevelName(KernelLevel level);

/// True when this CPU (and this build) can run `level`. kScalar is always
/// supported.
bool KernelLevelSupported(KernelLevel level);

/// The level the process is currently dispatching to. Resolved once on
/// first use: the widest supported level, unless QBE_KERNEL requests a
/// narrower one (an unsupported or unknown request falls back to the widest
/// supported level with a stderr note — a service must never crash on a
/// config typo, and a CPU without AVX2 silently gets the graceful scalar /
/// SSE fallback).
KernelLevel ActiveKernelLevel();

/// Test/bench seam: swaps the active dispatch table. QBE_CHECKs that
/// `level` is supported. Not thread-safe against in-flight requests — call
/// between requests only (tests and the A/B bench driver do).
void ForceKernelLevel(KernelLevel level);

/// Parses a QBE_KERNEL-style value ("scalar"|"sse"|"avx2"). Returns false
/// on anything else. Exposed for unit tests.
bool ParseKernelLevel(const char* value, KernelLevel* level);

/// Raw per-level entry points. All array variants may read/write full
/// vector blocks, so destination buffers need the documented slack; the
/// IntersectSortedInto-style wrappers below handle sizing and are what
/// product code calls.
struct KernelOps {
  /// Sorted-unique u32 intersection (dense linear/SIMD merge; the gallop
  /// hybrid for skewed inputs lives in the wrapper). Writes the ascending
  /// intersection to `out` and returns its length. `out` must hold
  /// min(na, nb) + kIntersectPad32 elements and must not alias a/b.
  size_t (*intersect_u32)(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out);
  /// Phrase-match kernel: keeps every `cand` value c whose shifted witness
  /// c + shift occurs in `span` (both sorted unique u64). Returns the
  /// number kept; `out` needs nc + kIntersectPad64 elements, no aliasing.
  size_t (*intersect_shifted_u64)(const uint64_t* cand, size_t nc,
                                  const uint64_t* span, size_t ns,
                                  uint64_t shift, uint64_t* out);
  /// words[i] &= other[i] for i < num_words.
  void (*bitmap_and)(uint64_t* words, const uint64_t* other,
                     size_t num_words);
  /// Emits the set bit positions of a word array in ascending order via
  /// ctz (satellite of ISSUE 8: never tests bits one by one); the wide
  /// levels additionally skip all-zero blocks 256 bits at a time. Returns
  /// the number of positions written; `out` must hold 64 * num_words.
  size_t (*bitmap_emit)(const uint64_t* words, size_t num_words,
                        uint32_t* out);
};

/// Vector-block slack the raw intersect kernels may write past their
/// logical result (full-width compressed stores).
inline constexpr size_t kIntersectPad32 = 8;  // one AVX2 8×u32 block
inline constexpr size_t kIntersectPad64 = 4;  // one AVX2 4×u64 block

/// The dispatch table for `level` (QBE_CHECKs support) and the active one.
const KernelOps& KernelOpsFor(KernelLevel level);
const KernelOps& ActiveKernelOps();

namespace kernels {

/// Intersection of two sorted, deduplicated uint32 row sets into `*out`
/// (cleared first; capacity is reused). When one side is ≥16x smaller,
/// gallops — binary-probes the larger side with a shrinking window — which
/// is the shape semijoin reductions and selective-predicate seeds hit
/// constantly; otherwise the dispatched dense merge kernel runs.
void IntersectSortedInto(std::span<const uint32_t> a,
                         std::span<const uint32_t> b,
                         std::vector<uint32_t>* out);

/// In-place variant: *a ∩= b, using *scratch as the output buffer (both
/// vectors keep their capacity — no steady-state allocation).
void IntersectSortedInPlace(std::vector<uint32_t>* a,
                            std::span<const uint32_t> b,
                            std::vector<uint32_t>* scratch);

/// `int` compatibility overloads for the sorted non-negative column-gid
/// lists of ColumnIndex / candidate generation: the bit patterns of
/// non-negative ints order identically to uint32, so they reuse the same
/// kernels.
void IntersectSortedInto(std::span<const int> a, std::span<const int> b,
                         std::vector<int>* out);
void IntersectSortedInPlace(std::vector<int>* a, std::span<const int> b,
                            std::vector<int>* scratch);

/// Phrase positional merge: *cand = {c ∈ cand : c + shift ∈ span}, with
/// *scratch as the output buffer. Gallops when span is ≥16x larger than
/// cand (per-candidate binary probe), dense kernel otherwise — the same
/// adaptive split the CSR phrase matcher has always used.
void IntersectShiftedInPlace(std::vector<uint64_t>* cand,
                             std::span<const uint64_t> span, uint64_t shift,
                             std::vector<uint64_t>* scratch);

/// Semijoin row-bitmap helpers over a uint64-word bitmap sized by
/// BitmapClear. Set/Test are single-instruction inlines (nothing to
/// dispatch); And/Emit go through the active kernel table.
inline void BitmapClear(std::vector<uint64_t>* bits, size_t num_rows) {
  bits->assign((num_rows + 63) / 64, 0);
}

inline void BitmapSet(std::vector<uint64_t>* bits, uint32_t row) {
  (*bits)[row >> 6] |= uint64_t{1} << (row & 63);
}

inline bool BitmapTest(const std::vector<uint64_t>& bits, uint32_t row) {
  return (bits[row >> 6] >> (row & 63)) & 1;
}

/// Sets one bit per row; rows need not be sorted or distinct.
void BitmapSetBatch(std::vector<uint64_t>* bits,
                    std::span<const uint32_t> rows);

void BitmapAnd(std::vector<uint64_t>* bits,
               std::span<const uint64_t> other);

/// Emits the set rows of `bits` into `*out` in ascending order — the
/// sorted-distinct row set without a sort, O(rows/64 + |set|).
void BitmapEmitInto(const std::vector<uint64_t>& bits,
                    std::vector<uint32_t>* out);

}  // namespace kernels

}  // namespace qbe

#endif  // QBE_KERNELS_KERNELS_H_
