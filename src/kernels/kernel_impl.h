#ifndef QBE_KERNELS_KERNEL_IMPL_H_
#define QBE_KERNELS_KERNEL_IMPL_H_

#include <cstddef>
#include <cstdint>

/// Internal: raw per-level kernel entry points, linked into the dispatch
/// table by kernels.cc. Each level lives in its own translation unit so the
/// vector TUs can be compiled with their ISA flags (-msse4.2 / -mavx2)
/// without leaking wide instructions into code that runs before dispatch —
/// the only symbols in those TUs are these entry points, reached strictly
/// after the CPUID check.
///
/// QBE_KERNELS_X86 gates the vector levels: on other architectures only
/// the scalar entries exist and dispatch resolves to them.

#if defined(__x86_64__) || defined(__i386__)
#define QBE_KERNELS_X86 1
#endif

namespace qbe::kernel_impl {

namespace scalar {
size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out);
size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out);
void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words);
size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out);
}  // namespace scalar

#ifdef QBE_KERNELS_X86
namespace sse {
size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out);
size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out);
void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words);
size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out);
}  // namespace sse

namespace avx2 {
size_t IntersectU32(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out);
size_t IntersectShiftedU64(const uint64_t* cand, size_t nc,
                           const uint64_t* span, size_t ns, uint64_t shift,
                           uint64_t* out);
void BitmapAnd(uint64_t* words, const uint64_t* other, size_t num_words);
size_t BitmapEmit(const uint64_t* words, size_t num_words, uint32_t* out);
}  // namespace avx2
#endif  // QBE_KERNELS_X86

}  // namespace qbe::kernel_impl

#endif  // QBE_KERNELS_KERNEL_IMPL_H_
