#ifndef QBE_EXEC_STATS_H_
#define QBE_EXEC_STATS_H_

#include <string>
#include <vector>

#include "exec/predicate.h"
#include "schema/join_tree.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

/// System-R-style cardinality and cost estimation over the FTS and join
/// indexes. The paper notes that "the cost of evaluating a filter is hard
/// to estimate in general" and falls back to join count; this module
/// provides the index-statistics alternative — phrase selectivities from
/// posting lists and per-edge fanouts from the FK indexes — which backs
/// FILTER's optional estimated-cost model (ablated in
/// bench_ablation_filter).
class Statistics {
 public:
  /// Snapshot of the database's statistics; the database must have its
  /// indexes built and outlive this object.
  explicit Statistics(const Database& db);

  /// Estimated number of rows of `column`'s relation whose cell contains
  /// the phrase: the minimum of the tokens' document frequencies (a phrase
  /// never matches more rows than its rarest token).
  double EstimatePhraseMatches(const ColumnRef& column,
                               const std::vector<std::string>& tokens) const;

  /// Selectivity (fraction of rows) of one predicate on its relation.
  double PredicateSelectivity(const PhrasePredicate& predicate) const;

  /// Estimated output cardinality of the join of `tree` under
  /// `predicates`: Π relation sizes × Π per-edge FK-join selectivities ×
  /// Π predicate selectivities (independence assumed, as usual).
  double EstimateJoinCardinality(
      const SchemaGraph& graph, const JoinTree& tree,
      const std::vector<PhrasePredicate>& predicates) const;

  /// Estimated work of a TOP-1 existence probe over `tree`: the seed set
  /// (rows matching the most selective predicate, or the smallest relation
  /// when unconstrained) expanded across the joins. This is the
  /// estimated-cost alternative to the paper's "number of joins" proxy.
  double EstimateProbeCost(
      const SchemaGraph& graph, const JoinTree& tree,
      const std::vector<PhrasePredicate>& predicates) const;

  double relation_rows(int rel) const { return relation_rows_[rel]; }

  /// Average referencing rows per referenced key on `edge`.
  double edge_fanout(int edge) const { return edge_fanout_[edge]; }

 private:
  const Database& db_;
  std::vector<double> relation_rows_;
  std::vector<double> edge_fanout_;
};

}  // namespace qbe

#endif  // QBE_EXEC_STATS_H_
