#ifndef QBE_EXEC_MATCH_CACHE_H_
#define QBE_EXEC_MATCH_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace qbe {

/// Per-request cache of phrase-match results: (text column gid, exact?,
/// token ids) → sorted row set. The same handful of ET-cell phrases is
/// probed by SeedNode across thousands of candidate trees per request, so
/// the cache turns repeated posting-list scans into one shared lookup.
///
/// Thread-safe via sharding (one mutex per shard, keyed by the key hash).
/// Values are computed OUTSIDE the shard lock and inserted idempotently: a
/// match result is a pure function of the immutable database, so when two
/// threads race on the same key both compute identical vectors and either
/// insert wins — results are bit-identical at any thread count, preserving
/// the determinism contract of the verify pool (DESIGN.md §9).
class MatchCache {
 public:
  explicit MatchCache(size_t shards = 16);
  MatchCache(const MatchCache&) = delete;
  MatchCache& operator=(const MatchCache&) = delete;

  /// Returns the cached row set for (column_gid, exact, ids), computing it
  /// with `compute` on miss. `compute` must write the sorted result into the
  /// vector it is handed; it may run concurrently with other computes (never
  /// under a shard lock).
  std::shared_ptr<const std::vector<uint32_t>> GetOrCompute(
      int column_gid, bool exact, std::span<const uint32_t> ids,
      const std::function<void(std::vector<uint32_t>*)>& compute);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    int gid;
    bool exact;
    std::vector<uint32_t> ids;
  };
  struct KeyView {
    int gid;
    bool exact;
    std::span<const uint32_t> ids;
  };
  struct Hash {
    using is_transparent = void;
    static size_t Mix(int gid, bool exact, std::span<const uint32_t> ids) {
      uint64_t h = 1469598103934665603ull ^ static_cast<uint64_t>(gid) ^
                   (exact ? 0x9e3779b97f4a7c15ull : 0);
      for (uint32_t id : ids) {
        h ^= id;
        h *= 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
    size_t operator()(const Key& k) const { return Mix(k.gid, k.exact, k.ids); }
    size_t operator()(const KeyView& k) const {
      return Mix(k.gid, k.exact, k.ids);
    }
  };
  struct Eq {
    using is_transparent = void;
    static bool Same(int ag, bool ae, std::span<const uint32_t> ai, int bg,
                     bool be, std::span<const uint32_t> bi) {
      return ag == bg && ae == be && ai.size() == bi.size() &&
             std::equal(ai.begin(), ai.end(), bi.begin());
    }
    bool operator()(const Key& a, const Key& b) const {
      return Same(a.gid, a.exact, a.ids, b.gid, b.exact, b.ids);
    }
    bool operator()(const KeyView& a, const Key& b) const {
      return Same(a.gid, a.exact, a.ids, b.gid, b.exact, b.ids);
    }
    bool operator()(const Key& a, const KeyView& b) const {
      return Same(a.gid, a.exact, a.ids, b.gid, b.exact, b.ids);
    }
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, std::shared_ptr<const std::vector<uint32_t>>,
                       Hash, Eq>
        map;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> lookups_{0};
};

}  // namespace qbe

#endif  // QBE_EXEC_MATCH_CACHE_H_
