#include "exec/sql_render.h"

#include "util/string_util.h"

namespace qbe {
namespace {

std::string FromClause(const Database& db, const JoinTree& tree) {
  std::vector<std::string> names;
  tree.verts.ForEach([&](int v) { names.push_back(db.relation(v).name()); });
  return JoinStrings(names, ", ");
}

std::vector<std::string> JoinConditions(const Database& db,
                                        const JoinTree& tree) {
  std::vector<std::string> conds;
  tree.edges.ForEach([&](int e) {
    const ForeignKey& fk = db.foreign_key(e);
    conds.push_back(
        db.QualifiedColumnName(ColumnRef{fk.from_rel, fk.from_col}) + " = " +
        db.QualifiedColumnName(ColumnRef{fk.to_rel, fk.to_col}));
  });
  return conds;
}

std::string DefaultLabel(size_t i) {
  std::string label;
  // A, B, ..., Z, AA, AB, ... like spreadsheet columns.
  size_t n = i;
  do {
    label.insert(label.begin(), static_cast<char>('A' + n % 26));
    n = n / 26;
  } while (n-- > 0);
  return label;
}

}  // namespace

std::string RenderProjectJoinSql(const Database& db, const SchemaGraph& graph,
                                 const JoinTree& tree,
                                 const std::vector<ColumnRef>& projection,
                                 const std::vector<std::string>&
                                     column_labels) {
  (void)graph;
  std::vector<std::string> select_items;
  for (size_t i = 0; i < projection.size(); ++i) {
    std::string label = i < column_labels.size() && !column_labels[i].empty()
                            ? column_labels[i]
                            : DefaultLabel(i);
    select_items.push_back(db.QualifiedColumnName(projection[i]) + " AS " +
                           label);
  }
  std::string sql =
      "SELECT " + JoinStrings(select_items, ", ") + " FROM " +
      FromClause(db, tree);
  std::vector<std::string> conds = JoinConditions(db, tree);
  if (!conds.empty()) sql += " WHERE " + JoinStrings(conds, " AND ");
  return sql;
}

std::string RenderVerificationSql(const Database& db, const SchemaGraph& graph,
                                  const JoinTree& tree,
                                  const std::vector<PhrasePredicate>&
                                      predicates) {
  (void)graph;
  std::string sql = "SELECT TOP 1 * FROM " + FromClause(db, tree);
  std::vector<std::string> conds = JoinConditions(db, tree);
  for (const PhrasePredicate& pred : predicates) {
    conds.push_back((pred.exact ? std::string("EQUALS(") : "CONTAINS(") +
                    db.QualifiedColumnName(pred.column) + ", '" +
                    JoinStrings(pred.tokens, " ") + "')");
  }
  if (!conds.empty()) sql += " WHERE " + JoinStrings(conds, " AND ");
  return sql;
}

}  // namespace qbe
