#include "exec/executor.h"

#include <algorithm>
#include <unordered_set>

#include "kernels/kernels.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/intersect.h"

namespace qbe {
namespace {

/// Reusable per-thread buffers for the seed/semijoin hot path. Exists is
/// called thousands of times per request; with these, its steady state
/// allocates nothing — clear() keeps vector capacity.
/// Safe because SeedNode/Semijoin never recurse: each use is bracketed
/// within one call, even though Reduce recurses around them.
struct ExecScratch {
  std::vector<uint32_t> ids;      // resolved token ids of one predicate
  std::vector<uint32_t> matches;  // one predicate's match rows
  std::vector<uint32_t> tmp;      // semijoin/seed result being built
  std::vector<uint32_t> tmp2;     // intersection output buffer
  std::vector<uint64_t> bits;     // row bitmap for semijoin dedup/membership
  std::vector<uint32_t> edge_rows;  // overlay-merged span backing (DbView)
};

ExecScratch& Scratch() {
  thread_local ExecScratch scratch;
  return scratch;
}

// The semijoin bitmaps run on the dispatched kernel layer (DESIGN.md §14):
// ClearBitmap/SetBit/TestBit are single-op inlines, EmitBitmap scans set
// words with ctz (wide levels skip all-zero 256-bit blocks) instead of
// testing bits one by one.
using kernels::BitmapClear;
using kernels::BitmapSet;
using kernels::BitmapTest;

}  // namespace

bool Executor::SeedNode(int vertex,
                        const std::vector<const PhrasePredicate*>& predicates,
                        NodeState* state, MatchCache* match_cache,
                        TraceContext* trace) const {
  state->rel = vertex;
  state->full = true;
  state->rows.clear();
  ExecScratch& scratch = Scratch();
  // Text-match phase span: covers every phrase probe of this node. Null
  // context (or a predicate-free seed) records nothing.
  ScopedSpan match_span(predicates.empty() ? nullptr : trace,
                        SpanKind::kTextMatch);
  for (const PhrasePredicate* pred : predicates) {
    // Predicates built by the discovery pipeline carry ids resolved once
    // per request; hand-built ones fall back to a per-call dictionary
    // lookup (heterogeneous — no string is materialized). Resolution goes
    // through the view so overlay-only vocabulary still gets real ids.
    std::span<const uint32_t> ids;
    if (pred->ids.size() == pred->tokens.size()) {
      ids = pred->ids;
    } else {
      view_.IdsOfInto(pred->tokens, &scratch.ids);
      ids = scratch.ids;
    }
    // Exact match is answered from the index (occurrence at position 0
    // covering the whole cell) — the cell is never re-tokenized.
    const std::vector<uint32_t>* matches = nullptr;
    std::shared_ptr<const std::vector<uint32_t>> cached;
    if (match_cache != nullptr) {
      cached = match_cache->GetOrCompute(
          view_.TextColumnGid(pred->column), pred->exact, ids,
          [&](std::vector<uint32_t>* out) {
            if (pred->exact) {
              view_.MatchExactIdsInto(pred->column, ids, out);
            } else {
              view_.MatchPhraseIdsInto(pred->column, ids, out);
            }
          });
      matches = cached.get();
    } else {
      if (pred->exact) {
        view_.MatchExactIdsInto(pred->column, ids, &scratch.matches);
      } else {
        view_.MatchPhraseIdsInto(pred->column, ids, &scratch.matches);
      }
      matches = &scratch.matches;
    }
    if (state->full) {
      state->full = false;
      state->rows.assign(matches->begin(), matches->end());
    } else {
      IntersectSortedInPlace(&state->rows, *matches, &scratch.tmp2);
    }
    if (state->Empty()) return false;
  }
  return true;
}

void Executor::Semijoin(NodeState* parent, int edge,
                        const NodeState& child) const {
  const ForeignKey& fk = view_.foreign_key(edge);
  ExecScratch& scratch = Scratch();

  if (fk.from_rel == parent->rel) {
    // Parent holds the FK, child is the PK side.
    if (child.full) {
      if (view_.EdgeHasNoDangling(edge)) return;  // every FK row has a partner
      const std::span<const uint32_t> valid =
          view_.ValidFromRows(edge, &scratch.edge_rows);
      if (parent->full) {
        parent->full = false;
        parent->rows.assign(valid.begin(), valid.end());
      } else {
        IntersectSortedInPlace(&parent->rows, valid, &scratch.tmp2);
      }
      return;
    }
    if (parent->full) {
      // Expand: referencing rows of each surviving child row. The spans of
      // distinct child rows are disjoint (every FK row references exactly
      // one PK row), so a bitmap emits the union already sorted — no
      // sort+unique pass.
      BitmapClear(&scratch.bits, view_.TotalRows(fk.from_rel));
      for (uint32_t child_row : child.rows) {
        for (uint32_t row :
             view_.ChildRowsOf(edge, child_row, &scratch.edge_rows)) {
          BitmapSet(&scratch.bits, row);
        }
      }
      kernels::BitmapEmitInto(scratch.bits, &scratch.tmp);
      parent->full = false;
      std::swap(parent->rows, scratch.tmp);
      return;
    }
    // Filter parent rows: keep those whose referenced row survived in the
    // child. Child membership is a bitmap test; the referenced row is an
    // O(1) join-index read (no key extraction, no hashing).
    BitmapClear(&scratch.bits, view_.TotalRows(fk.to_rel));
    kernels::BitmapSetBatch(&scratch.bits, child.rows);
    scratch.tmp.clear();
    for (uint32_t row : parent->rows) {
      int32_t referenced = view_.ParentRowOf(edge, row);
      if (referenced >= 0 &&
          BitmapTest(scratch.bits, static_cast<uint32_t>(referenced))) {
        scratch.tmp.push_back(row);
      }
    }
    std::swap(parent->rows, scratch.tmp);
    return;
  }

  // Parent is the PK side; child holds the FK.
  QBE_DCHECK(fk.to_rel == parent->rel);
  if (child.full) {
    const std::span<const uint32_t> referenced =
        view_.ReferencedRows(edge, &scratch.edge_rows);
    if (parent->full) {
      parent->full = false;
      parent->rows.assign(referenced.begin(), referenced.end());
    } else {
      IntersectSortedInPlace(&parent->rows, referenced, &scratch.tmp2);
    }
    return;
  }
  // Rows referenced by the surviving child rows, deduplicated in ascending
  // order via the bitmap (many child rows share a parent).
  BitmapClear(&scratch.bits, view_.TotalRows(fk.to_rel));
  for (uint32_t child_row : child.rows) {
    int32_t referenced = view_.ParentRowOf(edge, child_row);
    if (referenced >= 0) {
      BitmapSet(&scratch.bits, static_cast<uint32_t>(referenced));
    }
  }
  kernels::BitmapEmitInto(scratch.bits, &scratch.tmp);
  if (parent->full) {
    parent->full = false;
    std::swap(parent->rows, scratch.tmp);
  } else {
    IntersectSortedInPlace(&parent->rows, scratch.tmp, &scratch.tmp2);
  }
}

namespace {

/// Collects the subtree of `tree` reachable from `vertex` without crossing
/// `via_edge`, and whether any of its vertices carries a predicate. The
/// (root, verts, edges) triple is the memo identity of the subtree.
struct SubtreeScan {
  RelationSet verts;
  EdgeSet edges;
  bool has_predicates = false;
};

void ScanSubtree(const SchemaGraph& graph, const JoinTree& tree, int vertex,
                 int via_edge,
                 const std::vector<std::vector<const PhrasePredicate*>>&
                     preds_by_vertex,
                 SubtreeScan* scan) {
  scan->verts.Set(vertex);
  if (!preds_by_vertex[vertex].empty()) scan->has_predicates = true;
  for (int e : graph.IncidentEdges(vertex)) {
    if (e == via_edge || !tree.edges.Test(e) || scan->edges.Test(e)) continue;
    scan->edges.Set(e);
    ScanSubtree(graph, tree, graph.OtherEnd(e, vertex), e, preds_by_vertex,
                scan);
  }
}

}  // namespace

Executor::NodeState Executor::Reduce(
    const JoinTree& tree, int vertex, int via_edge,
    const std::vector<std::vector<const PhrasePredicate*>>& preds_by_vertex,
    bool* feasible, SubtreeMemo* memo, MatchCache* match_cache,
    TraceContext* trace) const {
  NodeState state;
  if (!SeedNode(vertex, preds_by_vertex[vertex], &state, match_cache,
                trace)) {
    *feasible = false;
    return state;
  }
  for (int e : graph_.IncidentEdges(vertex)) {
    if (e == via_edge || !tree.edges.Test(e)) continue;
    int child_vertex = graph_.OtherEnd(e, vertex);

    if (memo != nullptr) {
      SubtreeScan scan;
      ScanSubtree(graph_, tree, child_vertex, e, preds_by_vertex, &scan);
      if (!scan.has_predicates) {
        // Predicate-free subtree: its reduced root state depends only on
        // (root, verts, edges) and the database — reuse it across every
        // candidate and ET row of the request. An infeasible subtree is
        // stored as the canonical empty state so replay reproduces the
        // serial feasibility outcome.
        SubtreeKey key{child_vertex, scan.verts, scan.edges};
        std::shared_ptr<const NodeState> cached = memo->Lookup(key);
        if (cached == nullptr) {
          bool child_feasible = true;
          NodeState fresh = Reduce(tree, child_vertex, e, preds_by_vertex,
                                   &child_feasible, memo, match_cache,
                                   trace);
          if (!child_feasible) {
            fresh.full = false;
            fresh.rows.clear();
            fresh.rel = child_vertex;
          }
          cached = std::make_shared<const NodeState>(std::move(fresh));
          memo->Insert(key, cached);
        }
        if (cached->Empty()) {
          *feasible = false;
          return state;
        }
        Semijoin(&state, e, *cached);
        if (state.Empty()) {
          *feasible = false;
          return state;
        }
        continue;
      }
    }

    NodeState child = Reduce(tree, child_vertex, e, preds_by_vertex, feasible,
                             memo, match_cache, trace);
    if (!*feasible) return state;
    Semijoin(&state, e, child);
    if (state.Empty()) {
      *feasible = false;
      return state;
    }
  }
  return state;
}

bool Executor::Exists(const JoinTree& tree,
                      const std::vector<PhrasePredicate>& predicates,
                      SubtreeMemo* memo, MatchCache* match_cache,
                      TraceContext* trace) const {
  // Bucket predicates by vertex without copying them; the per-thread bucket
  // vectors keep their capacity across calls.
  thread_local std::vector<std::vector<const PhrasePredicate*>>
      preds_by_vertex;
  if (preds_by_vertex.size() < static_cast<size_t>(graph_.num_vertices())) {
    preds_by_vertex.resize(graph_.num_vertices());
  }
  for (auto& bucket : preds_by_vertex) bucket.clear();
  int root = -1;
  for (const PhrasePredicate& pred : predicates) {
    QBE_CHECK_MSG(tree.verts.Test(pred.column.rel),
                  "predicate column outside join tree");
    preds_by_vertex[pred.column.rel].push_back(&pred);
    root = pred.column.rel;  // root at some predicate node
  }
  if (root < 0) root = tree.verts.First();
  QBE_CHECK(root >= 0);
  bool feasible = true;
  NodeState state = Reduce(tree, root, -1, preds_by_vertex, &feasible, memo,
                           match_cache, trace);
  if (!feasible) return false;
  if (state.full) return view_.LiveRows(root) > 0;
  return !state.rows.empty();
}

std::vector<std::vector<uint32_t>> Executor::MaterializeAssignments(
    const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
    size_t limit, std::vector<int>* vertex_order) const {
  std::vector<std::vector<uint32_t>> results;
  if (limit == 0) return results;

  std::vector<std::vector<const PhrasePredicate*>> preds_by_vertex(
      graph_.num_vertices());
  for (const PhrasePredicate& pred : predicates) {
    QBE_CHECK(tree.verts.Test(pred.column.rel));
    preds_by_vertex[pred.column.rel].push_back(&pred);
  }

  // Seed every node; remember per-node candidate sets for filtering.
  std::vector<int> vertices = tree.Vertices();
  std::vector<NodeState> seeded(graph_.num_vertices());
  for (int v : vertices) {
    if (!SeedNode(v, preds_by_vertex[v], &seeded[v], nullptr, nullptr))
      return results;
  }

  // Root at the most selective node (fewest candidate rows; an
  // unconstrained node counts its full relation).
  int root = vertices[0];
  size_t best = SIZE_MAX;
  for (int v : vertices) {
    size_t sz = seeded[v].full ? static_cast<size_t>(view_.LiveRows(v))
                               : seeded[v].rows.size();
    if (sz < best || (sz == best && !seeded[v].full)) {
      best = sz;
      root = v;
    }
  }

  // BFS order from root; each vertex is joined via the edge to its parent.
  std::vector<int> order = {root};
  std::vector<int> via_edge = {-1};
  std::vector<int> parent_pos = {-1};
  {
    RelationSet visited;
    visited.Set(root);
    for (size_t i = 0; i < order.size(); ++i) {
      int v = order[i];
      for (int e : graph_.IncidentEdges(v)) {
        if (!tree.edges.Test(e)) continue;
        int other = graph_.OtherEnd(e, v);
        if (visited.Test(other)) continue;
        visited.Set(other);
        order.push_back(other);
        via_edge.push_back(e);
        parent_pos.push_back(static_cast<int>(i));
      }
    }
  }
  if (vertex_order != nullptr) *vertex_order = order;

  // Membership filters for non-root nodes.
  std::vector<std::unordered_set<uint32_t>> allowed(order.size());
  for (size_t i = 1; i < order.size(); ++i) {
    const NodeState& s = seeded[order[i]];
    if (!s.full) allowed[i] = {s.rows.begin(), s.rows.end()};
  }

  std::vector<uint32_t> assignment(order.size(), 0);
  // Depth-first assignment with early exit at `limit`.
  auto assign = [&](auto&& self, size_t pos) -> bool {
    if (pos == order.size()) {
      results.push_back(assignment);
      return results.size() >= limit;
    }
    int v = order[pos];
    int e = via_edge[pos];
    const ForeignKey& fk = view_.foreign_key(e);
    uint32_t parent_row = assignment[parent_pos[pos]];
    const NodeState& seed = seeded[v];
    auto try_row = [&](uint32_t row) -> bool {
      if (!seed.full && allowed[pos].count(row) == 0) return false;
      assignment[pos] = row;
      return self(self, pos + 1);
    };
    if (fk.from_rel == v) {
      // Child rows referencing the parent row (row-level join index). A
      // recursion-local buffer: the overlay-merged span must survive the
      // nested self() calls, unlike the executor's flat scratch.
      std::vector<uint32_t> merged;
      for (uint32_t row : view_.ChildRowsOf(e, parent_row, &merged)) {
        if (try_row(row)) return true;
      }
    } else {
      // Child is the PK side of the parent's FK: at most one partner row.
      int32_t row = view_.ParentRowOf(e, parent_row);
      if (row >= 0 && try_row(static_cast<uint32_t>(row))) return true;
    }
    return false;
  };

  const NodeState& root_seed = seeded[root];
  if (root_seed.full) {
    uint32_t n = view_.TotalRows(root);
    for (uint32_t row = 0; row < n; ++row) {
      if (!view_.IsLive(root, row)) continue;
      assignment[0] = row;
      if (assign(assign, 1)) break;
    }
  } else {
    for (uint32_t row : root_seed.rows) {
      assignment[0] = row;
      if (assign(assign, 1)) break;
    }
  }
  return results;
}

std::vector<std::vector<std::string>> Executor::Materialize(
    const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
    const std::vector<ColumnRef>& projection, size_t limit) const {
  std::vector<int> order;
  std::vector<std::vector<uint32_t>> assignments =
      MaterializeAssignments(tree, predicates, limit, &order);

  std::vector<int> vertex_pos(graph_.num_vertices(), -1);
  for (size_t i = 0; i < order.size(); ++i) vertex_pos[order[i]] = i;

  std::vector<std::vector<std::string>> rows;
  rows.reserve(assignments.size());
  for (const std::vector<uint32_t>& assignment : assignments) {
    std::vector<std::string> row;
    row.reserve(projection.size());
    for (const ColumnRef& col : projection) {
      int pos = vertex_pos[col.rel];
      QBE_CHECK_MSG(pos >= 0, "projection column outside join tree");
      row.emplace_back(view_.TextAt(col.rel, col.col, assignment[pos]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace qbe
