#include "exec/executor.h"

#include <algorithm>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/check.h"

namespace qbe {
namespace {

/// Sorted-vector intersection in place.
void IntersectSorted(std::vector<uint32_t>* a, const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a->begin(), a->end(), b.begin(), b.end(),
                        std::back_inserter(out));
  *a = std::move(out);
}

void SortUnique(std::vector<uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

bool Executor::SeedNode(int vertex,
                        const std::vector<PhrasePredicate>& predicates,
                        NodeState* state) const {
  state->rel = vertex;
  state->full = true;
  state->rows.clear();
  for (const PhrasePredicate& pred : predicates) {
    const InvertedIndex& index = db_.TextIndex(pred.column);
    std::vector<uint32_t> matches = index.MatchPhrase(pred.tokens);
    if (pred.exact) {
      const Relation& rel = db_.relation(pred.column.rel);
      std::vector<uint32_t> exact_rows;
      for (uint32_t row : matches) {
        if (Tokenize(rel.TextAt(pred.column.col, row)) == pred.tokens) {
          exact_rows.push_back(row);
        }
      }
      matches = std::move(exact_rows);
    }
    if (state->full) {
      state->full = false;
      state->rows = std::move(matches);
    } else {
      IntersectSorted(&state->rows, matches);
    }
    if (state->Empty()) return false;
  }
  return true;
}

void Executor::Semijoin(NodeState* parent, int edge,
                        const NodeState& child) const {
  const ForeignKey& fk = db_.foreign_key(edge);
  const Relation& to_rel = db_.relation(fk.to_rel);
  const Relation& from_rel = db_.relation(fk.from_rel);

  if (fk.from_rel == parent->rel) {
    // Parent holds the FK, child is the PK side.
    if (child.full) {
      if (db_.EdgeHasNoDangling(edge)) return;  // every FK row has a partner
      const std::vector<uint32_t>& valid = db_.ValidFromRows(edge);
      if (parent->full) {
        parent->full = false;
        parent->rows = valid;
      } else {
        IntersectSorted(&parent->rows, valid);
      }
      return;
    }
    if (parent->full) {
      // Expand: referencing rows of each surviving child PK value.
      std::vector<uint32_t> result;
      for (uint32_t child_row : child.rows) {
        int64_t pk = to_rel.IdAt(fk.to_col, child_row);
        if (const std::vector<uint32_t>* rows = db_.FkLookup(edge, pk)) {
          result.insert(result.end(), rows->begin(), rows->end());
        }
      }
      SortUnique(&result);
      parent->full = false;
      parent->rows = std::move(result);
      return;
    }
    // Filter parent rows by FK-value membership in the child's PK values.
    std::unordered_set<int64_t> child_keys;
    child_keys.reserve(child.rows.size() * 2);
    for (uint32_t child_row : child.rows) {
      child_keys.insert(to_rel.IdAt(fk.to_col, child_row));
    }
    std::vector<uint32_t> kept;
    for (uint32_t row : parent->rows) {
      if (child_keys.count(from_rel.IdAt(fk.from_col, row)) > 0) {
        kept.push_back(row);
      }
    }
    parent->rows = std::move(kept);
    return;
  }

  // Parent is the PK side; child holds the FK.
  QBE_DCHECK(fk.to_rel == parent->rel);
  if (child.full) {
    const std::vector<uint32_t>& referenced = db_.ReferencedRows(edge);
    if (parent->full) {
      parent->full = false;
      parent->rows = referenced;
    } else {
      IntersectSorted(&parent->rows, referenced);
    }
    return;
  }
  std::vector<uint32_t> partners;
  partners.reserve(child.rows.size());
  for (uint32_t child_row : child.rows) {
    int64_t key = from_rel.IdAt(fk.from_col, child_row);
    int64_t row = db_.PkLookup(fk.to_rel, fk.to_col, key);
    if (row >= 0) partners.push_back(static_cast<uint32_t>(row));
  }
  SortUnique(&partners);
  if (parent->full) {
    parent->full = false;
    parent->rows = std::move(partners);
  } else {
    IntersectSorted(&parent->rows, partners);
  }
}

namespace {

/// Collects the subtree of `tree` reachable from `vertex` without crossing
/// `via_edge`, and whether any of its vertices carries a predicate. The
/// (root, verts, edges) triple is the memo identity of the subtree.
struct SubtreeScan {
  RelationSet verts;
  EdgeSet edges;
  bool has_predicates = false;
};

void ScanSubtree(const SchemaGraph& graph, const JoinTree& tree, int vertex,
                 int via_edge,
                 const std::vector<std::vector<PhrasePredicate>>&
                     preds_by_vertex,
                 SubtreeScan* scan) {
  scan->verts.Set(vertex);
  if (!preds_by_vertex[vertex].empty()) scan->has_predicates = true;
  for (int e : graph.IncidentEdges(vertex)) {
    if (e == via_edge || !tree.edges.Test(e) || scan->edges.Test(e)) continue;
    scan->edges.Set(e);
    ScanSubtree(graph, tree, graph.OtherEnd(e, vertex), e, preds_by_vertex,
                scan);
  }
}

}  // namespace

Executor::NodeState Executor::Reduce(
    const JoinTree& tree, int vertex, int via_edge,
    const std::vector<std::vector<PhrasePredicate>>& preds_by_vertex,
    bool* feasible, SubtreeMemo* memo) const {
  NodeState state;
  if (!SeedNode(vertex, preds_by_vertex[vertex], &state)) {
    *feasible = false;
    return state;
  }
  for (int e : graph_.IncidentEdges(vertex)) {
    if (e == via_edge || !tree.edges.Test(e)) continue;
    int child_vertex = graph_.OtherEnd(e, vertex);

    if (memo != nullptr) {
      SubtreeScan scan;
      ScanSubtree(graph_, tree, child_vertex, e, preds_by_vertex, &scan);
      if (!scan.has_predicates) {
        // Predicate-free subtree: its reduced root state depends only on
        // (root, verts, edges) and the database — reuse it across every
        // candidate and ET row of the request. An infeasible subtree is
        // stored as the canonical empty state so replay reproduces the
        // serial feasibility outcome.
        SubtreeKey key{child_vertex, scan.verts, scan.edges};
        std::shared_ptr<const NodeState> cached = memo->Lookup(key);
        if (cached == nullptr) {
          bool child_feasible = true;
          NodeState fresh = Reduce(tree, child_vertex, e, preds_by_vertex,
                                   &child_feasible, memo);
          if (!child_feasible) {
            fresh.full = false;
            fresh.rows.clear();
            fresh.rel = child_vertex;
          }
          cached = std::make_shared<const NodeState>(std::move(fresh));
          memo->Insert(key, cached);
        }
        if (cached->Empty()) {
          *feasible = false;
          return state;
        }
        Semijoin(&state, e, *cached);
        if (state.Empty()) {
          *feasible = false;
          return state;
        }
        continue;
      }
    }

    NodeState child =
        Reduce(tree, child_vertex, e, preds_by_vertex, feasible, memo);
    if (!*feasible) return state;
    Semijoin(&state, e, child);
    if (state.Empty()) {
      *feasible = false;
      return state;
    }
  }
  return state;
}

bool Executor::Exists(const JoinTree& tree,
                      const std::vector<PhrasePredicate>& predicates,
                      SubtreeMemo* memo) const {
  std::vector<std::vector<PhrasePredicate>> preds_by_vertex(
      graph_.num_vertices());
  int root = -1;
  for (const PhrasePredicate& pred : predicates) {
    QBE_CHECK_MSG(tree.verts.Test(pred.column.rel),
                  "predicate column outside join tree");
    preds_by_vertex[pred.column.rel].push_back(pred);
    root = pred.column.rel;  // root at some predicate node
  }
  if (root < 0) root = tree.verts.First();
  QBE_CHECK(root >= 0);
  bool feasible = true;
  NodeState state = Reduce(tree, root, -1, preds_by_vertex, &feasible, memo);
  if (!feasible) return false;
  if (state.full) return db_.relation(root).num_rows() > 0;
  return !state.rows.empty();
}

std::vector<std::vector<uint32_t>> Executor::MaterializeAssignments(
    const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
    size_t limit, std::vector<int>* vertex_order) const {
  std::vector<std::vector<uint32_t>> results;
  if (limit == 0) return results;

  std::vector<std::vector<PhrasePredicate>> preds_by_vertex(
      graph_.num_vertices());
  for (const PhrasePredicate& pred : predicates) {
    QBE_CHECK(tree.verts.Test(pred.column.rel));
    preds_by_vertex[pred.column.rel].push_back(pred);
  }

  // Seed every node; remember per-node candidate sets for filtering.
  std::vector<int> vertices = tree.Vertices();
  std::vector<NodeState> seeded(graph_.num_vertices());
  for (int v : vertices) {
    if (!SeedNode(v, preds_by_vertex[v], &seeded[v])) return results;
  }

  // Root at the most selective node (fewest candidate rows; an
  // unconstrained node counts its full relation).
  int root = vertices[0];
  size_t best = SIZE_MAX;
  for (int v : vertices) {
    size_t sz = seeded[v].full
                    ? static_cast<size_t>(db_.relation(v).num_rows())
                    : seeded[v].rows.size();
    if (sz < best || (sz == best && !seeded[v].full)) {
      best = sz;
      root = v;
    }
  }

  // BFS order from root; each vertex is joined via the edge to its parent.
  std::vector<int> order = {root};
  std::vector<int> via_edge = {-1};
  std::vector<int> parent_pos = {-1};
  {
    RelationSet visited;
    visited.Set(root);
    for (size_t i = 0; i < order.size(); ++i) {
      int v = order[i];
      for (int e : graph_.IncidentEdges(v)) {
        if (!tree.edges.Test(e)) continue;
        int other = graph_.OtherEnd(e, v);
        if (visited.Test(other)) continue;
        visited.Set(other);
        order.push_back(other);
        via_edge.push_back(e);
        parent_pos.push_back(static_cast<int>(i));
      }
    }
  }
  if (vertex_order != nullptr) *vertex_order = order;

  // Membership filters for non-root nodes.
  std::vector<std::unordered_set<uint32_t>> allowed(order.size());
  for (size_t i = 1; i < order.size(); ++i) {
    const NodeState& s = seeded[order[i]];
    if (!s.full) allowed[i] = {s.rows.begin(), s.rows.end()};
  }

  std::vector<uint32_t> assignment(order.size(), 0);
  // Depth-first assignment with early exit at `limit`.
  auto assign = [&](auto&& self, size_t pos) -> bool {
    if (pos == order.size()) {
      results.push_back(assignment);
      return results.size() >= limit;
    }
    int v = order[pos];
    int e = via_edge[pos];
    const ForeignKey& fk = db_.foreign_key(e);
    uint32_t parent_row = assignment[parent_pos[pos]];
    const NodeState& seed = seeded[v];
    auto try_row = [&](uint32_t row) -> bool {
      if (!seed.full && allowed[pos].count(row) == 0) return false;
      assignment[pos] = row;
      return self(self, pos + 1);
    };
    if (fk.from_rel == v) {
      // Child rows reference the parent's PK value.
      int parent_vertex = order[parent_pos[pos]];
      int64_t key = db_.relation(parent_vertex).IdAt(fk.to_col, parent_row);
      if (const std::vector<uint32_t>* rows = db_.FkLookup(e, key)) {
        for (uint32_t row : *rows) {
          if (try_row(row)) return true;
        }
      }
    } else {
      // Child is the PK side of the parent's FK: at most one partner row.
      int parent_vertex = order[parent_pos[pos]];
      int64_t key =
          db_.relation(parent_vertex).IdAt(fk.from_col, parent_row);
      int64_t row = db_.PkLookup(fk.to_rel, fk.to_col, key);
      if (row >= 0 && try_row(static_cast<uint32_t>(row))) return true;
    }
    return false;
  };

  const NodeState& root_seed = seeded[root];
  if (root_seed.full) {
    uint32_t n = db_.relation(root).num_rows();
    for (uint32_t row = 0; row < n; ++row) {
      assignment[0] = row;
      if (assign(assign, 1)) break;
    }
  } else {
    for (uint32_t row : root_seed.rows) {
      assignment[0] = row;
      if (assign(assign, 1)) break;
    }
  }
  return results;
}

std::vector<std::vector<std::string>> Executor::Materialize(
    const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
    const std::vector<ColumnRef>& projection, size_t limit) const {
  std::vector<int> order;
  std::vector<std::vector<uint32_t>> assignments =
      MaterializeAssignments(tree, predicates, limit, &order);

  std::vector<int> vertex_pos(graph_.num_vertices(), -1);
  for (size_t i = 0; i < order.size(); ++i) vertex_pos[order[i]] = i;

  std::vector<std::vector<std::string>> rows;
  rows.reserve(assignments.size());
  for (const std::vector<uint32_t>& assignment : assignments) {
    std::vector<std::string> row;
    row.reserve(projection.size());
    for (const ColumnRef& col : projection) {
      int pos = vertex_pos[col.rel];
      QBE_CHECK_MSG(pos >= 0, "projection column outside join tree");
      row.push_back(db_.relation(col.rel).TextAt(col.col, assignment[pos]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace qbe
