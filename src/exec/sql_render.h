#ifndef QBE_EXEC_SQL_RENDER_H_
#define QBE_EXEC_SQL_RENDER_H_

#include <string>
#include <vector>

#include "exec/predicate.h"
#include "schema/join_tree.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

/// Renders the project-join query (J, C, φ) as SQL in the paper's style:
///
///   SELECT Customer.CustName AS A, ... FROM Sales, Customer, ...
///   WHERE Sales.CustId = Customer.CustId AND ...
///
/// `projection[i]` is the base-table column mapped from ET column i;
/// `column_labels[i]` is the ET column's display name (defaults to A, B, …
/// when empty). This is the system's user-facing output.
std::string RenderProjectJoinSql(const Database& db, const SchemaGraph& graph,
                                 const JoinTree& tree,
                                 const std::vector<ColumnRef>& projection,
                                 const std::vector<std::string>&
                                     column_labels = {});

/// Renders the CQ-row / filter verification query of §4.1:
///
///   SELECT TOP 1 * FROM ... WHERE <joins> AND CONTAINS(col, 'phrase') ...
std::string RenderVerificationSql(const Database& db, const SchemaGraph& graph,
                                  const JoinTree& tree,
                                  const std::vector<PhrasePredicate>&
                                      predicates);

}  // namespace qbe

#endif  // QBE_EXEC_SQL_RENDER_H_
