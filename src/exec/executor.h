#ifndef QBE_EXEC_EXECUTOR_H_
#define QBE_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/predicate.h"
#include "schema/join_tree.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

/// Join-tree executor: the stand-in for the paper's SQL Server backend.
/// Evaluates existence queries
///
///   SELECT TOP 1 * FROM V(J) WHERE E(J) AND ⋀ CONTAINS(col, phrase)
///
/// with one bottom-up semijoin pass over the join tree (exact for acyclic
/// queries, per Yannakakis), seeded from the FTS indexes, and full
/// materialization for ET-matrix construction and tuple-tree weaving.
class Executor {
 public:
  Executor(const Database& db, const SchemaGraph& graph)
      : db_(db), graph_(graph) {}

  /// True iff the join of `tree` has at least one result row satisfying all
  /// `predicates` (which must reference text columns of tree relations).
  /// This is the engine behind every CQ-row and filter verification.
  bool Exists(const JoinTree& tree,
              const std::vector<PhrasePredicate>& predicates) const;

  /// Materializes up to `limit` result tuples of the join of `tree` under
  /// `predicates`, projected onto `projection` (text columns). Used to build
  /// the ET-generation matrices (§6.1).
  std::vector<std::vector<std::string>> Materialize(
      const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
      const std::vector<ColumnRef>& projection, size_t limit) const;

  /// Materializes up to `limit` *tuple trees*: complete row assignments, one
  /// row id per tree vertex. `vertex_order` receives the vertex ids in the
  /// order used by each assignment. Used by the tuple-tree WEAVE comparator
  /// whose memory footprint Figure 16 charts.
  std::vector<std::vector<uint32_t>> MaterializeAssignments(
      const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
      size_t limit, std::vector<int>* vertex_order) const;

 private:
  struct NodeState {
    int rel = -1;
    bool full = true;                // no restriction yet
    std::vector<uint32_t> rows;      // sorted, meaningful iff !full
    bool Empty() const { return !full && rows.empty(); }
  };

  /// Applies this node's own predicates; returns false if unsatisfiable.
  bool SeedNode(int vertex, const std::vector<PhrasePredicate>& predicates,
                NodeState* state) const;

  /// Reduces `parent` to the rows having at least one join partner in
  /// `child` via `edge` (a semijoin). Exactness relies on tree-shaped joins.
  void Semijoin(NodeState* parent, int edge, const NodeState& child) const;

  /// Bottom-up reduction of the subtree rooted at `vertex` (entered from
  /// `via_edge`, -1 at the root). Returns the reduced root state.
  NodeState Reduce(const JoinTree& tree, int vertex, int via_edge,
                   const std::vector<std::vector<PhrasePredicate>>&
                       preds_by_vertex,
                   bool* feasible) const;

  const Database& db_;
  const SchemaGraph& graph_;
};

}  // namespace qbe

#endif  // QBE_EXEC_EXECUTOR_H_
