#ifndef QBE_EXEC_EXECUTOR_H_
#define QBE_EXEC_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/match_cache.h"
#include "exec/predicate.h"
#include "ingest/db_view.h"
#include "schema/join_tree.h"
#include "schema/schema_graph.h"
#include "storage/database.h"

namespace qbe {

class TraceContext;

/// Join-tree executor: the stand-in for the paper's SQL Server backend.
/// Evaluates existence queries
///
///   SELECT TOP 1 * FROM V(J) WHERE E(J) AND ⋀ CONTAINS(col, phrase)
///
/// with one bottom-up semijoin pass over the join tree (exact for acyclic
/// queries, per Yannakakis), seeded from the FTS indexes, and full
/// materialization for ET-matrix construction and tuple-tree weaving.
class Executor {
 public:
  /// The reduced row set of one join-tree node during the bottom-up
  /// semijoin pass: either unrestricted (`full`) or an explicit sorted row
  /// list. Public because SubtreeMemo stores reduced subtree roots.
  struct NodeState {
    int rel = -1;
    bool full = true;                // no restriction yet
    std::vector<uint32_t> rows;      // sorted, meaningful iff !full
    bool Empty() const { return !full && rows.empty(); }
  };

  /// Identity of a predicate-free subtree hanging off one entry vertex: the
  /// reduction result depends only on this triple and the database.
  struct SubtreeKey {
    int root = -1;
    RelationSet verts;
    EdgeSet edges;

    friend bool operator==(const SubtreeKey& a, const SubtreeKey& b) {
      return a.root == b.root && a.verts == b.verts && a.edges == b.edges;
    }
  };

  struct SubtreeKeyHash {
    size_t operator()(const SubtreeKey& k) const {
      return (k.verts.Hash() * 1000003 + k.edges.Hash()) * 31 +
             static_cast<size_t>(k.root);
    }
  };

  /// Per-request memo of reduced predicate-free join subtrees. Candidate
  /// queries of one request are subtrees of one schema graph and overlap
  /// heavily on join structure while differing mostly in predicates, so the
  /// predicate-free branches of their existence queries repeat across
  /// candidates (and across ET rows): materialize each once per request
  /// instead of once per evaluation. Thread-safe — one memo is shared by
  /// every worker of a parallel verification; values are deterministic
  /// functions of the database, so concurrent inserts are idempotent.
  class SubtreeMemo {
   public:
    /// The memoized reduced root state, or null. Counts a lookup (and a hit
    /// when found).
    std::shared_ptr<const NodeState> Lookup(const SubtreeKey& key) {
      lookups_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) return nullptr;
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }

    void Insert(const SubtreeKey& key,
                std::shared_ptr<const NodeState> state) {
      std::lock_guard<std::mutex> lock(mu_);
      map_.emplace(key, std::move(state));
    }

    int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    int64_t lookups() const {
      return lookups_.load(std::memory_order_relaxed);
    }
    size_t size() const {
      std::lock_guard<std::mutex> lock(mu_);
      return map_.size();
    }

   private:
    mutable std::mutex mu_;
    std::unordered_map<SubtreeKey, std::shared_ptr<const NodeState>,
                       SubtreeKeyHash>
        map_;
    std::atomic<int64_t> hits_{0};
    std::atomic<int64_t> lookups_{0};
  };

  Executor(const Database& db, const SchemaGraph& graph)
      : view_(db), graph_(graph) {}

  /// Version-aware executor: reads go through `view` (base + optional delta
  /// overlay), so a pinned ingestion epoch evaluates exactly like a cold
  /// load of the merged data. The view must outlive the executor.
  Executor(const DbView& view, const SchemaGraph& graph)
      : view_(view), graph_(graph) {}

  /// True iff the join of `tree` has at least one result row satisfying all
  /// `predicates` (which must reference text columns of tree relations).
  /// This is the engine behind every CQ-row and filter verification. A
  /// non-null `memo` shares reduced predicate-free subtrees across calls; a
  /// non-null `match_cache` shares per-(column, phrase) row sets across
  /// calls (both thread-safe and outcome-neutral). A non-null `trace`
  /// records text-match spans (obs/trace.h); observation-only.
  bool Exists(const JoinTree& tree,
              const std::vector<PhrasePredicate>& predicates,
              SubtreeMemo* memo = nullptr,
              MatchCache* match_cache = nullptr,
              TraceContext* trace = nullptr) const;

  /// Materializes up to `limit` result tuples of the join of `tree` under
  /// `predicates`, projected onto `projection` (text columns). Used to build
  /// the ET-generation matrices (§6.1).
  std::vector<std::vector<std::string>> Materialize(
      const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
      const std::vector<ColumnRef>& projection, size_t limit) const;

  /// Materializes up to `limit` *tuple trees*: complete row assignments, one
  /// row id per tree vertex. `vertex_order` receives the vertex ids in the
  /// order used by each assignment. Used by the tuple-tree WEAVE comparator
  /// whose memory footprint Figure 16 charts.
  std::vector<std::vector<uint32_t>> MaterializeAssignments(
      const JoinTree& tree, const std::vector<PhrasePredicate>& predicates,
      size_t limit, std::vector<int>* vertex_order) const;

 private:
  /// Applies this node's own predicates; returns false if unsatisfiable.
  /// Match row sets come from `match_cache` when provided.
  bool SeedNode(int vertex,
                const std::vector<const PhrasePredicate*>& predicates,
                NodeState* state, MatchCache* match_cache,
                TraceContext* trace) const;

  /// Reduces `parent` to the rows having at least one join partner in
  /// `child` via `edge` (a semijoin). Exactness relies on tree-shaped joins.
  void Semijoin(NodeState* parent, int edge, const NodeState& child) const;

  /// Bottom-up reduction of the subtree rooted at `vertex` (entered from
  /// `via_edge`, -1 at the root). Returns the reduced root state.
  /// Predicate-free child subtrees are served from `memo` when provided.
  NodeState Reduce(const JoinTree& tree, int vertex, int via_edge,
                   const std::vector<std::vector<const PhrasePredicate*>>&
                       preds_by_vertex,
                   bool* feasible, SubtreeMemo* memo,
                   MatchCache* match_cache, TraceContext* trace) const;

  DbView view_;
  const SchemaGraph& graph_;
};

}  // namespace qbe

#endif  // QBE_EXEC_EXECUTOR_H_
