#include "exec/stats.h"

#include <algorithm>
#include <cmath>

namespace qbe {

Statistics::Statistics(const Database& db) : db_(db) {
  relation_rows_.resize(db.num_relations());
  for (int r = 0; r < db.num_relations(); ++r) {
    relation_rows_[r] = static_cast<double>(db.relation(r).num_rows());
  }
  edge_fanout_.resize(db.foreign_keys().size());
  for (const ForeignKey& fk : db.foreign_keys()) {
    double from_rows = relation_rows_[fk.from_rel];
    double distinct = static_cast<double>(db.FkDistinctValues(fk.id));
    edge_fanout_[fk.id] = distinct > 0 ? from_rows / distinct : 0.0;
  }
}

double Statistics::EstimatePhraseMatches(
    const ColumnRef& column, const std::vector<std::string>& tokens) const {
  const InvertedIndex& index = db_.TextIndex(column);
  if (tokens.empty()) return static_cast<double>(index.num_rows());
  double best = static_cast<double>(index.num_rows());
  for (const std::string& token : tokens) {
    best = std::min(best, static_cast<double>(index.TokenRowCount(token)));
  }
  return best;
}

double Statistics::PredicateSelectivity(
    const PhrasePredicate& predicate) const {
  double rows = relation_rows_[predicate.column.rel];
  if (rows <= 0) return 0.0;
  return EstimatePhraseMatches(predicate.column, predicate.tokens) / rows;
}

double Statistics::EstimateJoinCardinality(
    const SchemaGraph& graph, const JoinTree& tree,
    const std::vector<PhrasePredicate>& predicates) const {
  (void)graph;
  double cardinality = 1.0;
  tree.verts.ForEach([&](int v) { cardinality *= relation_rows_[v]; });
  // Each FK join keeps at most one PK partner per referencing row:
  // selectivity 1/rows(pk side).
  tree.edges.ForEach([&](int e) {
    double pk_rows = relation_rows_[db_.foreign_key(e).to_rel];
    cardinality *= pk_rows > 0 ? 1.0 / pk_rows : 0.0;
  });
  for (const PhrasePredicate& predicate : predicates) {
    cardinality *= PredicateSelectivity(predicate);
  }
  return cardinality;
}

double Statistics::EstimateProbeCost(
    const SchemaGraph& graph, const JoinTree& tree,
    const std::vector<PhrasePredicate>& predicates) const {
  (void)graph;
  // Seed: the most selective access path available.
  double seed = -1.0;
  for (const PhrasePredicate& predicate : predicates) {
    double matches =
        EstimatePhraseMatches(predicate.column, predicate.tokens);
    if (seed < 0 || matches < seed) seed = matches;
  }
  if (seed < 0) {
    // No predicate: the executor scans the smallest relation.
    tree.verts.ForEach([&](int v) {
      if (seed < 0 || relation_rows_[v] < seed) seed = relation_rows_[v];
    });
  }
  // Each join step touches the frontier once; reverse edges multiply by
  // the fanout. A coarse but monotone model: seed × (1 + Σ per-edge
  // expansion), floored at 1 so cost ratios stay finite.
  double expansion = 0.0;
  tree.edges.ForEach([&](int e) { expansion += 1.0 + edge_fanout_[e]; });
  return std::max(1.0, seed * (1.0 + expansion * 0.1) + expansion);
}

}  // namespace qbe
