#include "exec/match_cache.h"

#include <algorithm>

namespace qbe {

MatchCache::MatchCache(size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const std::vector<uint32_t>> MatchCache::GetOrCompute(
    int column_gid, bool exact, std::span<const uint32_t> ids,
    const std::function<void(std::vector<uint32_t>*)>& compute) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const KeyView view{column_gid, exact, ids};
  const size_t hash = Hash{}(view);
  Shard& shard = *shards_[hash % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(view);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  auto value = std::make_shared<std::vector<uint32_t>>();
  compute(value.get());
  std::shared_ptr<const std::vector<uint32_t>> result = std::move(value);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(
        Key{column_gid, exact, std::vector<uint32_t>(ids.begin(), ids.end())},
        result);
    if (!inserted) return it->second;  // lost the race; results identical
  }
  return result;
}

}  // namespace qbe
