#ifndef QBE_EXEC_PREDICATE_H_
#define QBE_EXEC_PREDICATE_H_

#include <string>
#include <vector>

#include "storage/database.h"

namespace qbe {

/// A keyphrase containment predicate — the `CONTAINS(column, 'phrase')`
/// conjunct of a CQ-row verification query (§4.1). `tokens` is the
/// tokenized ET cell value; when `exact` is set the phrase must equal the
/// whole cell (the paper's exact-match extension for numbers, §2.2
/// Remarks).
struct PhrasePredicate {
  ColumnRef column;
  std::vector<std::string> tokens;
  bool exact = false;
};

}  // namespace qbe

#endif  // QBE_EXEC_PREDICATE_H_
