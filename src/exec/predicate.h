#ifndef QBE_EXEC_PREDICATE_H_
#define QBE_EXEC_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/database.h"

namespace qbe {

/// A keyphrase containment predicate — the `CONTAINS(column, 'phrase')`
/// conjunct of a CQ-row verification query (§4.1). `tokens` is the
/// tokenized ET cell value; when `exact` is set the phrase must equal the
/// whole cell (the paper's exact-match extension for numbers, §2.2
/// Remarks).
///
/// `ids` optionally carries the phrase pre-resolved against the database's
/// TokenDict; it is considered resolved iff ids.size() == tokens.size()
/// (position-aligned, TokenDict::kNoToken for unindexed tokens). The
/// executor uses the ids directly when present and falls back to a per-call
/// dictionary lookup otherwise, so hand-built predicates keep working.
struct PhrasePredicate {
  ColumnRef column;
  std::vector<std::string> tokens;
  bool exact = false;
  std::vector<uint32_t> ids;
};

}  // namespace qbe

#endif  // QBE_EXEC_PREDICATE_H_
