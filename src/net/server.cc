#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "service/discovery_service.h"
#include "util/socket.h"

namespace qbe {

namespace {

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ServiceResponse → the wire projection the acceptance checks compare
/// bit-exactly (SQL, scores, matched rows, candidate/verification counts).
WireResponse ProjectResponse(uint64_t id, const ServiceResponse& response) {
  WireResponse wire;
  wire.id = id;
  wire.status = ToString(response.status);
  wire.error = response.result.error;
  wire.timed_out = response.result.timed_out;
  wire.latency_seconds = response.latency_seconds;
  wire.queue_seconds = response.queue_seconds;
  wire.num_candidates = response.result.num_candidates;
  wire.verifications = response.result.counters.verifications;
  wire.estimated_cost = response.result.counters.estimated_cost;
  wire.pruned_without_verification =
      response.result.counters.pruned_without_verification;
  wire.queries.reserve(response.result.queries.size());
  for (const DiscoveredQuery& query : response.result.queries) {
    WireQuery wq;
    wq.sql = query.sql;
    wq.matched_rows = static_cast<uint32_t>(query.matched_rows);
    wq.score = query.score;
    wire.queries.push_back(std::move(wq));
  }
  return wire;
}

}  // namespace

/// Per-connection state. Socket-side fields (buffers, flags, spans) are
/// owned by the epoll thread; only `done` — the out-of-order completion
/// map — is shared with service workers, under `done_mu`.
struct NetServer::Connection {
  int fd = -1;
  uint64_t id = 0;

  std::string inbuf;       // unconsumed request bytes
  std::string outbuf;      // response bytes not yet accepted by the socket
  size_t out_offset = 0;   // how much of outbuf is already sent

  /// Pipelining bookkeeping: requests are numbered in arrival order and
  /// responses flush strictly in that order, no matter how the worker
  /// pool finishes them.
  uint64_t next_request_seq = 0;
  uint64_t next_flush_seq = 0;
  int64_t in_flight = 0;  // dispatched, response not yet moved to outbuf

  bool peer_closed = false;       // read saw EOF; flush what's owed, then close
  bool close_after_flush = false; // poisoned (protocol fault / idle / drain)
  bool epollout_armed = false;
  int64_t last_active_ms = 0;

  std::mutex done_mu;
  std::map<uint64_t, std::string> done;  // seq → encoded response frame

  /// Sampled connections record net_read/net_write spans under this root.
  std::unique_ptr<TraceContext> trace;
  SpanRef root_span = kNullSpan;
};

NetServer::NetServer(DiscoveryService* service, NetServerOptions options)
    : service_(service), options_(options) {
  sampler_.rate = options_.trace_sample;
  sampler_.seed = options_.trace_seed;

  ListenSocket listener = OpenLoopbackListener(options_.port, /*backlog=*/128);
  if (!listener.ok()) {
    error_ = listener.error;
    return;
  }
  listen_fd_ = listener.fd;
  port_ = listener.port;
  if (!SetNonBlocking(listen_fd_, &error_)) {
    CloseFd(&listen_fd_);
    return;
  }
  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    error_ = std::string(epoll_fd_ < 0 ? "epoll_create1: " : "eventfd: ") +
             std::strerror(errno);
    CloseFd(&listen_fd_);
    CloseFd(&epoll_fd_);
    CloseFd(&wake_fd_);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  thread_ = std::thread([this] { Loop(); });
}

NetServer::~NetServer() { Stop(); }

void NetServer::Stop() {
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    Wake();
    thread_.join();
  }
  // No callback may outlive the server: every dispatched request's
  // completion has run (the service always delivers, even on shutdown).
  std::unique_lock<std::mutex> lock(in_flight_mu_);
  in_flight_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();
  CloseFd(&listen_fd_);
  CloseFd(&epoll_fd_);
  CloseFd(&wake_fd_);
  stopped_ = true;
}

std::vector<Trace> NetServer::RecentNetTraces() const {
  std::lock_guard<std::mutex> lock(traces_mu_);
  return {recent_traces_.begin(), recent_traces_.end()};
}

void NetServer::Count(const char* name, int64_t delta) {
  service_->metrics().GetCounter(name).Increment(delta);
}

void NetServer::Wake() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void NetServer::Loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int64_t drain_deadline_ms = -1;
  bool accepting = true;

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && accepting) {
      // Drain begins: no new connections; in-flight work gets
      // drain_timeout_ms to finish and flush.
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      accepting = false;
      drain_deadline_ms = NowMillis() + options_.drain_timeout_ms;
    }
    if (stopping) {
      bool all_flushed = true;
      for (const auto& [fd, conn] : connections_) {
        std::lock_guard<std::mutex> lock(conn->done_mu);
        if (conn->in_flight > 0 || !conn->done.empty() ||
            conn->out_offset < conn->outbuf.size()) {
          all_flushed = false;
          break;
        }
      }
      if ((all_flushed &&
           in_flight_.load(std::memory_order_acquire) == 0) ||
          NowMillis() >= drain_deadline_ms) {
        break;
      }
    }

    int timeout_ms = -1;
    if (stopping) {
      timeout_ms = 20;
    } else if (options_.idle_timeout_ms > 0) {
      timeout_ms = std::min(options_.idle_timeout_ms, 500);
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        if (accepting) HandleAccept();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) HandleReadable(conn);
      if (conn->fd >= 0 && (events[i].events & EPOLLOUT) != 0) {
        HandleWritable(conn);
      }
    }
    DrainCompletions();
    if (options_.idle_timeout_ms > 0 && !stopping) SweepIdle();
    service_->metrics().SetGauge("net_active_connections",
                                 static_cast<double>(connections_.size()));
  }

  // Loop exit: close whatever is left (drain either completed or timed
  // out; late completions park in their connection's map and are freed
  // with it).
  std::vector<std::shared_ptr<Connection>> leftover;
  leftover.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) leftover.push_back(conn);
  for (const auto& conn : leftover) CloseConnection(conn);
  service_->metrics().SetGauge("net_active_connections", 0.0);
}

void NetServer::HandleAccept() {
  for (;;) {
    int client = AcceptRetry(listen_fd_);
    if (client < 0) return;  // EAGAIN (or transient failure)
    if (connections_.size() >= options_.max_connections) {
      // Over the cap: the peer still gets a typed answer, not a dropped
      // connection. The fd is fresh and blocking, so this tiny frame
      // lands in the socket buffer without stalling the loop.
      std::string frame;
      EncodeErrorFrame({0, WireFault::kServerBusy,
                        "connection cap of " +
                            std::to_string(options_.max_connections) +
                            " reached; retry later"},
                       &frame);
      WriteAll(client, frame.data(), frame.size());
      ::close(client);
      Count("net_connections_rejected");
      continue;
    }
    std::string nb_error;
    if (!SetNonBlocking(client, &nb_error)) {
      ::close(client);
      continue;
    }
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_shared<Connection>();
    conn->fd = client;
    conn->id = next_connection_id_++;
    conn->last_active_ms = NowMillis();
    if (options_.trace_sample > 0.0 && sampler_.Sample(conn->id)) {
      conn->trace = std::make_unique<TraceContext>();
      conn->trace->set_request_id(conn->id);
      conn->root_span = conn->trace->OpenSpan(SpanKind::kRequest);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = client;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev);
    connections_.emplace(client, std::move(conn));
    Count("net_connections_accepted");
  }
}

void NetServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  int64_t total = 0;
  bool hard_error = false;
  {
    // The span covers only the socket drain + framing; it must be closed
    // before any path that might close the connection (closing stitches
    // the trace, and the root span has to outlive its children).
    ScopedSpan span(conn->trace.get(), SpanKind::kNetRead, conn->root_span);
    for (;;) {
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(n));
        total += n;
        continue;
      }
      if (n == 0) {
        conn->peer_closed = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      hard_error = true;
      break;
    }
  }
  if (hard_error) {
    CloseConnection(conn);
    return;
  }
  if (total > 0) {
    conn->last_active_ms = NowMillis();
    Count("net_bytes_read", total);
  }
  ProcessFrames(conn);
  if (conn->fd >= 0) PumpConnection(conn);
}

void NetServer::ProcessFrames(const std::shared_ptr<Connection>& conn) {
  size_t consumed = 0;
  while (!conn->close_after_flush) {
    FrameView frame;
    WireFault fault = WireFault::kNone;
    std::string detail;
    FrameStatus status =
        TryExtractFrame(conn->inbuf.data() + consumed,
                        conn->inbuf.size() - consumed, &frame, &fault,
                        &detail);
    if (status == FrameStatus::kNeedMore) break;
    if (status == FrameStatus::kFault) {
      // The byte stream can no longer be trusted: answer with the typed
      // fault, drop the rest of the buffer, close once it flushes.
      Count("net_protocol_errors");
      QueueError(conn, fault, detail, 0, /*close_after=*/true);
      consumed = conn->inbuf.size();
      break;
    }
    if (frame.type == WireType::kDiscoverRequest) {
      WireRequest request;
      std::string decode_error;
      if (!DecodeRequestPayload(frame.payload, frame.payload_bytes, &request,
                                &decode_error)) {
        Count("net_protocol_errors");
        QueueError(conn, WireFault::kBadPayload, decode_error, 0,
                   /*close_after=*/true);
        consumed = conn->inbuf.size();
        break;
      }
      if (stopping_.load(std::memory_order_acquire)) {
        QueueError(conn, WireFault::kShuttingDown,
                   "server is draining; no new requests", request.id,
                   /*close_after=*/false);
      } else {
        DispatchRequest(conn, std::move(request));
      }
    } else {
      // Responses/errors flow server→client only.
      Count("net_protocol_errors");
      QueueError(conn, WireFault::kBadType,
                 "clients may only send discover requests", 0,
                 /*close_after=*/true);
      consumed = conn->inbuf.size();
      break;
    }
    consumed += frame.frame_bytes;
  }
  if (consumed > 0) conn->inbuf.erase(0, consumed);
}

void NetServer::DispatchRequest(const std::shared_ptr<Connection>& conn,
                                WireRequest request) {
  const uint64_t seq = conn->next_request_seq++;
  conn->in_flight++;
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  Count("net_requests");

  std::optional<std::chrono::milliseconds> timeout;
  if (request.deadline_ms > 0) {
    timeout = std::chrono::milliseconds(request.deadline_ms);
  }
  const uint64_t wire_id = request.id;
  service_->SubmitAsync(
      request.ToExampleTable(), timeout,
      [this, conn, seq, wire_id](ServiceResponse response) {
        std::string frame;
        EncodeResponseFrame(ProjectResponse(wire_id, response), &frame);
        {
          std::lock_guard<std::mutex> lock(conn->done_mu);
          conn->done.emplace(seq, std::move(frame));
        }
        {
          std::lock_guard<std::mutex> lock(completions_mu_);
          completed_.push_back(conn);
        }
        Wake();
        {
          // Notify while holding the mutex: Stop()'s waiter cannot return
          // from wait() (and destroy the cv) until this thread has fully
          // left notify_all() and released the lock.
          std::lock_guard<std::mutex> lock(in_flight_mu_);
          in_flight_.fetch_sub(1, std::memory_order_acq_rel);
          in_flight_cv_.notify_all();
        }
      });
}

void NetServer::QueueError(const std::shared_ptr<Connection>& conn,
                           WireFault fault, const std::string& message,
                           uint64_t request_id, bool close_after) {
  EncodeErrorFrame({request_id, fault, message}, &conn->outbuf);
  if (close_after) conn->close_after_flush = true;
}

void NetServer::DrainCompletions() {
  std::vector<std::shared_ptr<Connection>> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completed_);
  }
  for (const auto& conn : batch) {
    if (conn->fd < 0) continue;  // closed meanwhile; response is dropped
    PumpConnection(conn);
  }
}

void NetServer::PumpConnection(const std::shared_ptr<Connection>& conn) {
  // Move every in-order completed response into the socket buffer —
  // pipelined responses leave in exactly the order their requests came.
  {
    std::lock_guard<std::mutex> lock(conn->done_mu);
    for (auto it = conn->done.find(conn->next_flush_seq);
         it != conn->done.end();
         it = conn->done.find(conn->next_flush_seq)) {
      conn->outbuf.append(it->second);
      conn->done.erase(it);
      conn->next_flush_seq++;
      conn->in_flight--;
      Count("net_responses");
    }
  }
  TryFlush(conn);
}

void NetServer::HandleWritable(const std::shared_ptr<Connection>& conn) {
  TryFlush(conn);
}

void NetServer::TryFlush(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  int64_t total = 0;
  bool hard_error = false;
  bool socket_full = false;
  {
    // Span scoped to the send loop only: it must close before any
    // CloseConnection below stitches the trace.
    ScopedSpan span(conn->trace.get(), SpanKind::kNetWrite, conn->root_span);
    while (conn->out_offset < conn->outbuf.size()) {
      ssize_t w = ::send(conn->fd, conn->outbuf.data() + conn->out_offset,
                         conn->outbuf.size() - conn->out_offset, MSG_NOSIGNAL);
      if (w > 0) {
        conn->out_offset += static_cast<size_t>(w);
        total += w;
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        socket_full = true;
        break;
      }
      hard_error = true;
      break;
    }
  }
  if (total > 0) {
    conn->last_active_ms = NowMillis();
    Count("net_bytes_written", total);
  }
  if (hard_error) {
    CloseConnection(conn);
    return;
  }
  if (socket_full) {
    // Keep the unsent tail buffered and let EPOLLOUT resume it.
    if (!conn->epollout_armed) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.fd = conn->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      conn->epollout_armed = true;
    }
    return;
  }
  // Fully flushed: reclaim the buffer and disarm EPOLLOUT.
  conn->outbuf.clear();
  conn->out_offset = 0;
  if (conn->epollout_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
    conn->epollout_armed = false;
  }
  bool owes_nothing;
  {
    std::lock_guard<std::mutex> lock(conn->done_mu);
    owes_nothing = conn->in_flight == 0 && conn->done.empty();
  }
  if (conn->close_after_flush || (conn->peer_closed && owes_nothing)) {
    CloseConnection(conn);
  }
}

void NetServer::SweepIdle() {
  const int64_t now = NowMillis();
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [fd, conn] : connections_) {
    if (now - conn->last_active_ms < options_.idle_timeout_ms) continue;
    bool owes_nothing;
    {
      std::lock_guard<std::mutex> lock(conn->done_mu);
      owes_nothing = conn->in_flight == 0 && conn->done.empty();
    }
    // A connection mid-request is busy, not idle, however long the
    // discovery takes.
    if (owes_nothing && conn->out_offset >= conn->outbuf.size()) {
      idle.push_back(conn);
    }
  }
  for (const auto& conn : idle) {
    Count("net_idle_timeouts");
    QueueError(conn, WireFault::kIdleTimeout,
               "idle longer than " + std::to_string(options_.idle_timeout_ms) +
                   " ms",
               0, /*close_after=*/true);
    TryFlush(conn);
  }
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  const int fd = conn->fd;
  ::close(conn->fd);
  conn->fd = -1;
  connections_.erase(fd);
  Count("net_connections_closed");
  if (conn->trace != nullptr) {
    conn->trace->CloseSpan(conn->root_span);
    Trace stitched = conn->trace->Stitch();
    std::lock_guard<std::mutex> lock(traces_mu_);
    recent_traces_.push_back(std::move(stitched));
    while (recent_traces_.size() > options_.trace_keep) {
      recent_traces_.pop_front();
    }
  }
}

}  // namespace qbe
