#include "net/wire.h"

#include <cstring>

#include "util/hash64.h"

namespace qbe {
namespace {

// --- little put/get primitives (same memcpy discipline as ingest/wal.cc) ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over untrusted payload bytes.
struct Cursor {
  const char* p;
  size_t remaining;

  bool U8(uint8_t* v) {
    if (remaining < 1) return false;
    *v = static_cast<uint8_t>(*p);
    ++p;
    --remaining;
    return true;
  }
  bool U16(uint16_t* v) { return Fixed(v, 2); }
  bool U32(uint32_t* v) { return Fixed(v, 4); }
  bool U64(uint64_t* v) { return Fixed(v, 8); }
  bool I64(int64_t* v) { return Fixed(v, 8); }
  bool F64(double* v) { return Fixed(v, 8); }
  bool Str(std::string* out) {
    uint32_t n = 0;
    if (!U32(&n) || remaining < n) return false;
    out->assign(p, n);
    p += n;
    remaining -= n;
    return true;
  }

 private:
  template <typename T>
  bool Fixed(T* v, size_t n) {
    if (remaining < n) return false;
    std::memcpy(v, p, n);
    p += n;
    remaining -= n;
    return true;
  }
};

void AppendFrame(WireType type, const std::string& payload, std::string* out) {
  std::string frame;
  frame.reserve(kWireHeaderBytes + payload.size() + kWireTrailerBytes);
  PutU32(&frame, kWireMagic);
  PutU16(&frame, kWireVersion);
  PutU16(&frame, static_cast<uint16_t>(type));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  const uint64_t checksum = Hash64(frame.data(), frame.size());
  out->append(frame);
  PutU64(out, checksum);
}

}  // namespace

const char* WireFaultName(WireFault fault) {
  switch (fault) {
    case WireFault::kNone: return "none";
    case WireFault::kBadMagic: return "bad_magic";
    case WireFault::kBadVersion: return "bad_version";
    case WireFault::kBadChecksum: return "bad_checksum";
    case WireFault::kBadType: return "bad_type";
    case WireFault::kTooLarge: return "too_large";
    case WireFault::kBadPayload: return "bad_payload";
    case WireFault::kServerBusy: return "server_busy";
    case WireFault::kIdleTimeout: return "idle_timeout";
    case WireFault::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

ExampleTable WireRequest::ToExampleTable() const {
  ExampleTable et(column_names);
  for (const std::vector<EtCell>& row : rows) et.AddRowCells(row);
  return et;
}

WireRequest WireRequest::FromExampleTable(const ExampleTable& et, uint64_t id,
                                          uint32_t deadline_ms) {
  WireRequest request;
  request.id = id;
  request.deadline_ms = deadline_ms;
  for (int c = 0; c < et.num_columns(); ++c) {
    request.column_names.push_back(et.column_name(c));
  }
  for (int r = 0; r < et.num_rows(); ++r) {
    std::vector<EtCell> row;
    row.reserve(static_cast<size_t>(et.num_columns()));
    for (int c = 0; c < et.num_columns(); ++c) row.push_back(et.cell(r, c));
    request.rows.push_back(std::move(row));
  }
  return request;
}

void EncodeRequestFrame(const WireRequest& request, std::string* out) {
  std::string payload;
  PutU64(&payload, request.id);
  PutU32(&payload, request.deadline_ms);
  PutU32(&payload, static_cast<uint32_t>(request.column_names.size()));
  for (const std::string& name : request.column_names) {
    PutString(&payload, name);
  }
  PutU32(&payload, static_cast<uint32_t>(request.rows.size()));
  for (const std::vector<EtCell>& row : request.rows) {
    for (const EtCell& cell : row) {
      PutU8(&payload, cell.exact ? 1 : 0);
      PutString(&payload, cell.text);
    }
  }
  AppendFrame(WireType::kDiscoverRequest, payload, out);
}

void EncodeResponseFrame(const WireResponse& response, std::string* out) {
  std::string payload;
  PutU64(&payload, response.id);
  PutString(&payload, response.status);
  PutString(&payload, response.error);
  PutU8(&payload, response.timed_out ? 1 : 0);
  PutF64(&payload, response.latency_seconds);
  PutF64(&payload, response.queue_seconds);
  PutU64(&payload, response.num_candidates);
  PutI64(&payload, response.verifications);
  PutI64(&payload, response.estimated_cost);
  PutI64(&payload, response.pruned_without_verification);
  PutU32(&payload, static_cast<uint32_t>(response.queries.size()));
  for (const WireQuery& query : response.queries) {
    PutString(&payload, query.sql);
    PutU32(&payload, query.matched_rows);
    PutF64(&payload, query.score);
  }
  AppendFrame(WireType::kDiscoverResponse, payload, out);
}

void EncodeErrorFrame(const WireErrorMsg& error, std::string* out) {
  std::string payload;
  PutU64(&payload, error.id);
  PutU16(&payload, static_cast<uint16_t>(error.fault));
  PutString(&payload, error.message);
  AppendFrame(WireType::kError, payload, out);
}

FrameStatus TryExtractFrame(const char* data, size_t len, FrameView* frame,
                            WireFault* fault, std::string* detail) {
  auto fail = [&](WireFault f, const std::string& why) {
    *fault = f;
    if (detail != nullptr) *detail = why;
    return FrameStatus::kFault;
  };
  // Magic is checked the moment 4 bytes exist: a desynced or non-protocol
  // stream is rejected without waiting for a phantom "rest of the frame".
  if (len < 4) return FrameStatus::kNeedMore;
  uint32_t magic = 0;
  std::memcpy(&magic, data, 4);
  if (magic != kWireMagic) {
    return fail(WireFault::kBadMagic, "frame does not start with QBEW");
  }
  if (len < kWireHeaderBytes) return FrameStatus::kNeedMore;
  uint16_t version = 0, type = 0;
  uint32_t payload_bytes = 0;
  std::memcpy(&version, data + 4, 2);
  std::memcpy(&type, data + 6, 2);
  std::memcpy(&payload_bytes, data + 8, 4);
  // Length plausibility comes before the checksum: an absurd length would
  // otherwise make us wait forever for bytes that never come.
  if (payload_bytes > kMaxWirePayload) {
    return fail(WireFault::kTooLarge,
                "declared payload of " + std::to_string(payload_bytes) +
                    " bytes exceeds the " +
                    std::to_string(kMaxWirePayload) + "-byte cap");
  }
  const size_t frame_bytes =
      kWireHeaderBytes + payload_bytes + kWireTrailerBytes;
  if (len < frame_bytes) return FrameStatus::kNeedMore;
  uint64_t stored = 0;
  std::memcpy(&stored, data + kWireHeaderBytes + payload_bytes, 8);
  const uint64_t computed =
      Hash64(data, kWireHeaderBytes + payload_bytes);
  if (stored != computed) {
    return fail(WireFault::kBadChecksum, "frame fails its XXH64 checksum");
  }
  // Version/type checks run on a checksum-clean frame so the error names
  // the real condition (skew, unknown type) rather than line noise.
  if (version != kWireVersion) {
    return fail(WireFault::kBadVersion,
                "peer speaks protocol version " + std::to_string(version) +
                    ", this build speaks " + std::to_string(kWireVersion));
  }
  if (type != static_cast<uint16_t>(WireType::kDiscoverRequest) &&
      type != static_cast<uint16_t>(WireType::kDiscoverResponse) &&
      type != static_cast<uint16_t>(WireType::kError)) {
    return fail(WireFault::kBadType,
                "unknown message type " + std::to_string(type));
  }
  frame->type = static_cast<WireType>(type);
  frame->payload = data + kWireHeaderBytes;
  frame->payload_bytes = payload_bytes;
  frame->frame_bytes = frame_bytes;
  return FrameStatus::kFrame;
}

bool DecodeRequestPayload(const char* data, size_t len, WireRequest* out,
                          std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  Cursor cur{data, len};
  uint32_t num_columns = 0, num_rows = 0;
  if (!cur.U64(&out->id) || !cur.U32(&out->deadline_ms) ||
      !cur.U32(&num_columns)) {
    return fail("request header truncated");
  }
  // Each column name costs at least its 4-byte length; each cell at least
  // its flag byte + length. Counts the payload cannot possibly hold are
  // rejected before any reservation (the WAL decoder's rule).
  if (num_columns > len / 4) return fail("column count exceeds payload");
  out->column_names.clear();
  out->column_names.reserve(num_columns);
  for (uint32_t c = 0; c < num_columns; ++c) {
    std::string name;
    if (!cur.Str(&name)) return fail("column name truncated");
    out->column_names.push_back(std::move(name));
  }
  if (!cur.U32(&num_rows)) return fail("row count truncated");
  if (num_columns == 0 && num_rows != 0) {
    return fail("rows without columns");
  }
  if (num_rows != 0 && num_rows > len / num_columns) {
    return fail("row count exceeds payload");
  }
  out->rows.clear();
  out->rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    std::vector<EtCell> row;
    row.reserve(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      uint8_t flags = 0;
      EtCell cell;
      if (!cur.U8(&flags) || flags > 1 || !cur.Str(&cell.text)) {
        return fail("cell (" + std::to_string(r) + ", " + std::to_string(c) +
                    ") truncated or has bad flags");
      }
      cell.exact = flags != 0;
      row.push_back(std::move(cell));
    }
    out->rows.push_back(std::move(row));
  }
  if (cur.remaining != 0) return fail("trailing bytes after request");
  return true;
}

bool DecodeResponsePayload(const char* data, size_t len, WireResponse* out,
                           std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  Cursor cur{data, len};
  uint8_t timed_out = 0;
  uint32_t num_queries = 0;
  if (!cur.U64(&out->id) || !cur.Str(&out->status) || !cur.Str(&out->error) ||
      !cur.U8(&timed_out) || timed_out > 1 ||
      !cur.F64(&out->latency_seconds) || !cur.F64(&out->queue_seconds) ||
      !cur.U64(&out->num_candidates) || !cur.I64(&out->verifications) ||
      !cur.I64(&out->estimated_cost) ||
      !cur.I64(&out->pruned_without_verification) || !cur.U32(&num_queries)) {
    return fail("response header truncated");
  }
  out->timed_out = timed_out != 0;
  // A query costs at least its three fixed fields (4 + 4 + 8 bytes).
  if (num_queries > len / 16) return fail("query count exceeds payload");
  out->queries.clear();
  out->queries.reserve(num_queries);
  for (uint32_t q = 0; q < num_queries; ++q) {
    WireQuery query;
    if (!cur.Str(&query.sql) || !cur.U32(&query.matched_rows) ||
        !cur.F64(&query.score)) {
      return fail("query " + std::to_string(q) + " truncated");
    }
    out->queries.push_back(std::move(query));
  }
  if (cur.remaining != 0) return fail("trailing bytes after response");
  return true;
}

bool DecodeErrorPayload(const char* data, size_t len, WireErrorMsg* out,
                        std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  Cursor cur{data, len};
  uint16_t fault = 0;
  if (!cur.U64(&out->id) || !cur.U16(&fault) || !cur.Str(&out->message)) {
    return fail("error frame truncated");
  }
  if (fault == 0 || fault > static_cast<uint16_t>(WireFault::kShuttingDown)) {
    return fail("unknown fault code " + std::to_string(fault));
  }
  out->fault = static_cast<WireFault>(fault);
  if (cur.remaining != 0) return fail("trailing bytes after error");
  return true;
}

}  // namespace qbe
