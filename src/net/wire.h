#ifndef QBE_NET_WIRE_H_
#define QBE_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/discovery.h"
#include "core/example_table.h"

namespace qbe {

/// The qbe discovery wire protocol (DESIGN.md §16): versioned,
/// length-framed, XXH64-checksummed binary frames carrying discovery
/// requests and responses between qbe_loadgen / QbeClient and the epoll
/// server behind `qbe_serve --listen`.
///
/// Frame layout (all integers little-endian, like the snapshot and WAL
/// formats; doubles are their 8 IEEE-754 bytes, so scores round-trip
/// bit-exactly):
///
///   offset  0  u32  magic "QBEW"
///   offset  4  u16  protocol version (kWireVersion)
///   offset  6  u16  message type (WireType)
///   offset  8  u32  payload length in bytes
///   offset 12  payload
///   then       u64  XXH64 over header + payload
///
/// Every decode treats the bytes as untrusted input (the PR 4 snapshot
/// reader discipline): bounds-checked cursor, element counts validated
/// against the payload size before any reservation, no trailing garbage
/// accepted, and a corrupted frame yields a *typed* WireFault — never a
/// crash, never a silently wrong message.

inline constexpr uint32_t kWireMagic = 0x57454251;  // "QBEW"
inline constexpr uint16_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 12;
inline constexpr size_t kWireTrailerBytes = 8;
/// Hard cap on a frame's payload; a length field beyond it is rejected
/// before any buffering, so a corrupt length can't balloon memory.
inline constexpr size_t kMaxWirePayload = 16u << 20;

/// Message types. Unknown values are a typed fault.
enum class WireType : uint16_t {
  kDiscoverRequest = 1,
  kDiscoverResponse = 2,
  kError = 3,
};

/// Protocol-level fault taxonomy. Faults about the *byte stream*
/// (kBadMagic..kBadPayload) mean the stream can no longer be trusted and
/// the connection closes after the error frame; server-state faults
/// (kServerBusy..) leave framing intact.
enum class WireFault : uint16_t {
  kNone = 0,
  kBadMagic,      // stream desync or not speaking this protocol
  kBadVersion,    // version skew: peer must upgrade/downgrade
  kBadChecksum,   // frame corrupted in flight
  kBadType,       // unknown message type
  kTooLarge,      // declared payload exceeds the cap
  kBadPayload,    // payload fails structural validation
  kServerBusy,    // connection cap reached — retry later
  kIdleTimeout,   // server closed an idle keep-alive connection
  kShuttingDown,  // server is draining
};

const char* WireFaultName(WireFault fault);

/// A discovery request on the wire: the example table plus the per-request
/// knobs a remote client may set. `id` is client-chosen and echoed back
/// verbatim, so pipelined responses can be matched to their requests.
struct WireRequest {
  uint64_t id = 0;
  /// Per-request deadline in ms; 0 = the server's default.
  uint32_t deadline_ms = 0;
  std::vector<std::string> column_names;
  std::vector<std::vector<EtCell>> rows;

  ExampleTable ToExampleTable() const;
  static WireRequest FromExampleTable(const ExampleTable& et, uint64_t id,
                                      uint32_t deadline_ms = 0);
};

/// One ranked query of a response.
struct WireQuery {
  std::string sql;
  uint32_t matched_rows = 0;
  double score = 0.0;
};

/// A discovery response: the service-level status string (RequestStatus
/// names — "ok", "rejected", "timed_out", ...), the ranked queries, and
/// the per-request metrics the acceptance checks compare bit-exactly.
struct WireResponse {
  uint64_t id = 0;
  std::string status = "ok";
  std::string error;
  bool timed_out = false;
  double latency_seconds = 0.0;
  double queue_seconds = 0.0;
  uint64_t num_candidates = 0;
  int64_t verifications = 0;
  int64_t estimated_cost = 0;
  int64_t pruned_without_verification = 0;
  std::vector<WireQuery> queries;
};

/// A typed protocol error. `id` is the offending request's id when known
/// (0 otherwise — e.g. the frame never decoded far enough to have one).
struct WireErrorMsg {
  uint64_t id = 0;
  WireFault fault = WireFault::kNone;
  std::string message;
};

// --- encoding --------------------------------------------------------------

void EncodeRequestFrame(const WireRequest& request, std::string* out);
void EncodeResponseFrame(const WireResponse& response, std::string* out);
void EncodeErrorFrame(const WireErrorMsg& error, std::string* out);

// --- incremental frame extraction ------------------------------------------

enum class FrameStatus {
  kNeedMore,  // buffer holds a frame prefix; read more bytes
  kFrame,     // one whole valid frame extracted
  kFault,     // stream-level fault; *fault / *detail say why
};

/// A validated frame inside the caller's buffer (payload is a borrowed
/// pointer — valid until the buffer is consumed/moved).
struct FrameView {
  WireType type = WireType::kError;
  const char* payload = nullptr;
  size_t payload_bytes = 0;
  /// Total bytes this frame occupies; consume this many from the buffer.
  size_t frame_bytes = 0;
};

/// Tries to extract one frame from the front of `data`. Validation order:
/// magic (as soon as 4 bytes exist), version/type/length plausibility (at
/// a full header), checksum (at a full frame). kFault fills `*fault` and,
/// if non-null, `*detail`.
FrameStatus TryExtractFrame(const char* data, size_t len, FrameView* frame,
                            WireFault* fault, std::string* detail = nullptr);

// --- payload decoding (all bounds-checked; false = reject) -----------------

bool DecodeRequestPayload(const char* data, size_t len, WireRequest* out,
                          std::string* error);
bool DecodeResponsePayload(const char* data, size_t len, WireResponse* out,
                           std::string* error);
bool DecodeErrorPayload(const char* data, size_t len, WireErrorMsg* out,
                        std::string* error);

}  // namespace qbe

#endif  // QBE_NET_WIRE_H_
