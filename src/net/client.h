#ifndef QBE_NET_CLIENT_H_
#define QBE_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/wire.h"

namespace qbe {

/// What one wire exchange produced: either a discovery response or a typed
/// protocol error frame from the server.
struct ClientReply {
  bool is_error = false;
  WireResponse response;  // valid when !is_error
  WireErrorMsg error;     // valid when is_error
};

/// Blocking client for the wire protocol (DESIGN.md §16). One TCP
/// connection, two usage styles:
///
///  - request/response: Call() sends one request and waits for its reply;
///  - pipelined: any number of Send() calls followed by matching Receive()
///    calls — the server guarantees replies come back in request order, so
///    the k-th Receive answers the k-th Send.
///
/// Not thread-safe; one NetClient per thread. After any method returns
/// false the connection is dead (error() says why) and the client must be
/// discarded — the stream position can no longer be trusted.
class NetClient {
 public:
  /// Connects (blocking) to host:port. Check ok() before use.
  NetClient(const std::string& host, uint16_t port);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  bool ok() const { return fd_ >= 0 && error_.empty(); }
  const std::string& error() const { return error_; }

  /// One blocking round trip: Send + Receive.
  bool Call(const WireRequest& request, ClientReply* reply);

  /// Writes one encoded request frame to the socket (blocking, complete).
  bool Send(const WireRequest& request);

  /// Blocks until the next complete frame arrives and decodes it. Returns
  /// false on socket EOF/error or an undecodable/corrupt frame.
  bool Receive(ClientReply* reply);

  /// Bounded-wait receive for open-loop pacing: delivers a reply if a
  /// complete frame is buffered or arrives within `wait_ms` (0 = poll).
  /// Sets *got=false — not an error — when none is available in time.
  /// Returns false only on socket EOF/error or a corrupt frame.
  bool TryReceive(ClientReply* reply, bool* got, int wait_ms = 0);

  void Close();

 private:
  /// Extracts one frame from buffer_ if complete; reads more otherwise.
  bool ReadFrame(FrameView* frame);
  /// Decodes an extracted frame into *reply and consumes its bytes.
  bool DecodeReply(const FrameView& frame, ClientReply* reply);

  int fd_ = -1;
  std::string error_;
  std::string buffer_;   // received-but-unconsumed bytes
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
};

}  // namespace qbe

#endif  // QBE_NET_CLIENT_H_
