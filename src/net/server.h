#ifndef QBE_NET_SERVER_H_
#define QBE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "obs/trace.h"

namespace qbe {

class DiscoveryService;

struct NetServerOptions {
  /// Loopback port to bind (0 = ephemeral; see NetServer::port()).
  uint16_t port = 0;
  /// Connection cap: an accept beyond it gets a typed kServerBusy error
  /// frame and an immediate close — never a silent drop.
  size_t max_connections = 256;
  /// Keep-alive connections idle longer than this get a typed
  /// kIdleTimeout error frame and are closed; 0 disables the sweep.
  int idle_timeout_ms = 60'000;
  /// Per-frame payload cap enforced by the decoder (see kMaxWirePayload).
  size_t max_frame_payload = kMaxWirePayload;
  /// On Stop(), in-flight requests get this long to finish and flush
  /// before the loop gives up and closes connections anyway.
  int drain_timeout_ms = 30'000;

  /// Fraction of *connections* whose socket IO is traced (net_read /
  /// net_write spans under a per-connection root), using the same
  /// deterministic sampler as request tracing: connection n is traced iff
  /// splitmix64(seed, n) < rate·2^64. Stitched connection traces are kept
  /// in a bounded ring (RecentNetTraces) and merged into `qbe_serve
  /// --trace-out` output.
  double trace_sample = 0.0;
  uint64_t trace_seed = 42;
  size_t trace_keep = 16;
};

/// The networked serving layer (DESIGN.md §16): one epoll thread owning
/// every socket, nonblocking reads/writes with partial-IO buffering, and
/// keep-alive pipelining — a client may stream any number of request
/// frames without waiting; responses come back in request order per
/// connection no matter how the service's workers interleave.
///
/// Requests dispatch into the existing DiscoveryService through
/// SubmitAsync, so bounded-queue admission control, per-request deadlines
/// and graceful drain apply end-to-end: an admission rejection travels
/// back as a normal response frame with status "rejected"; protocol-level
/// trouble (corrupt frame, version skew, connection cap, idle timeout,
/// shutdown) travels back as a typed kError frame — never a dropped
/// connection without an answer.
///
/// Threading: the epoll thread owns all socket state. Service worker
/// threads only encode the finished response, park it in the
/// connection's completion map, and wake the loop through an eventfd;
/// the loop moves in-order completions into the socket buffer and
/// flushes. Connections are shared_ptr so a late completion for a
/// closed connection parks harmlessly.
class NetServer {
 public:
  /// Binds 127.0.0.1:port and starts the loop thread. On failure ok() is
  /// false and error() says why. `service` must outlive the server.
  NetServer(DiscoveryService* service, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  uint16_t port() const { return port_; }

  /// Graceful drain: stop accepting, let in-flight requests finish and
  /// their responses flush (bounded by drain_timeout_ms), close
  /// everything, join the loop thread. Idempotent.
  void Stop();

  /// Stitched traces of sampled connections, oldest first.
  std::vector<Trace> RecentNetTraces() const;

 private:
  struct Connection;

  void Loop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Extracts and dispatches every complete frame in conn's read buffer.
  void ProcessFrames(const std::shared_ptr<Connection>& conn);
  void DispatchRequest(const std::shared_ptr<Connection>& conn,
                       WireRequest request);
  /// Queues a typed error frame; `close_after` poisons the connection so
  /// it closes once the frame is flushed.
  void QueueError(const std::shared_ptr<Connection>& conn, WireFault fault,
                  const std::string& message, uint64_t request_id,
                  bool close_after);
  /// Moves in-order completed responses into the socket buffer.
  void DrainCompletions();
  void PumpConnection(const std::shared_ptr<Connection>& conn);
  /// Writes as much buffered output as the socket takes; arms EPOLLOUT on
  /// partial writes, closes on error or when a drained connection is done.
  void TryFlush(const std::shared_ptr<Connection>& conn);
  void SweepIdle();
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void Wake();
  /// service_->metrics() counter shorthand ("net_*" taxonomy).
  void Count(const char* name, int64_t delta = 1);

  DiscoveryService* service_;
  NetServerOptions options_;
  std::string error_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // Stop() ran to completion (main thread only)

  // Epoll-thread-only state.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 0;

  // Completion queue: worker threads push, the loop drains on wake.
  std::mutex completions_mu_;
  std::vector<std::shared_ptr<Connection>> completed_;

  // Requests dispatched whose service callback has not yet run; Stop()
  // waits for zero so no callback can outlive the server.
  std::atomic<int64_t> in_flight_{0};
  std::mutex in_flight_mu_;
  std::condition_variable in_flight_cv_;

  TraceSampler sampler_;
  mutable std::mutex traces_mu_;
  std::deque<Trace> recent_traces_;  // newest at the back

  std::thread thread_;
};

}  // namespace qbe

#endif  // QBE_NET_SERVER_H_
