#include "net/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/socket.h"

namespace qbe {

NetClient::NetClient(const std::string& host, uint16_t port) {
  fd_ = ConnectTcp(host, port, &error_);
}

NetClient::~NetClient() { Close(); }

void NetClient::Close() { CloseFd(&fd_); }

bool NetClient::Call(const WireRequest& request, ClientReply* reply) {
  return Send(request) && Receive(reply);
}

bool NetClient::Send(const WireRequest& request) {
  if (!ok()) return false;
  std::string frame;
  EncodeRequestFrame(request, &frame);
  if (!WriteAll(fd_, frame.data(), frame.size())) {
    error_ = std::string("send: ") + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

bool NetClient::ReadFrame(FrameView* frame) {
  for (;;) {
    WireFault fault = WireFault::kNone;
    std::string detail;
    FrameStatus status =
        TryExtractFrame(buffer_.data() + consumed_, buffer_.size() - consumed_,
                        frame, &fault, &detail);
    if (status == FrameStatus::kFrame) return true;
    if (status == FrameStatus::kFault) {
      error_ = "corrupt frame from server (" +
               std::string(WireFaultName(fault)) + "): " + detail;
      Close();
      return false;
    }
    // Incomplete: first reclaim the consumed prefix, then block for more.
    if (consumed_ > 0) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    char chunk[64 * 1024];
    ssize_t n = ReadRetry(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    error_ = n == 0 ? "connection closed by server"
                    : std::string("recv: ") + std::strerror(errno);
    Close();
    return false;
  }
}

bool NetClient::DecodeReply(const FrameView& frame, ClientReply* reply) {
  bool decoded = false;
  std::string decode_error;
  if (frame.type == WireType::kDiscoverResponse) {
    reply->is_error = false;
    decoded = DecodeResponsePayload(frame.payload, frame.payload_bytes,
                                    &reply->response, &decode_error);
  } else if (frame.type == WireType::kError) {
    reply->is_error = true;
    decoded = DecodeErrorPayload(frame.payload, frame.payload_bytes,
                                 &reply->error, &decode_error);
  } else {
    decode_error = "unexpected frame type from server";
  }
  consumed_ += frame.frame_bytes;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  if (!decoded) {
    error_ = "undecodable frame from server: " + decode_error;
    Close();
    return false;
  }
  return true;
}

bool NetClient::Receive(ClientReply* reply) {
  if (!ok()) return false;
  FrameView frame;
  if (!ReadFrame(&frame)) return false;
  return DecodeReply(frame, reply);
}

bool NetClient::TryReceive(ClientReply* reply, bool* got, int wait_ms) {
  *got = false;
  if (!ok()) return false;
  for (;;) {
    FrameView frame;
    WireFault fault = WireFault::kNone;
    std::string detail;
    FrameStatus status =
        TryExtractFrame(buffer_.data() + consumed_, buffer_.size() - consumed_,
                        &frame, &fault, &detail);
    if (status == FrameStatus::kFrame) {
      if (!DecodeReply(frame, reply)) return false;
      *got = true;
      return true;
    }
    if (status == FrameStatus::kFault) {
      error_ = "corrupt frame from server (" +
               std::string(WireFaultName(fault)) + "): " + detail;
      Close();
      return false;
    }
    // Incomplete: wait for readability at most once, then only drain what
    // is already pending (poll 0), so a partial frame never blocks us.
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, wait_ms);
    wait_ms = 0;
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return true;  // nothing (more) available: *got stays false
    if (consumed_ > 0) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    char chunk[64 * 1024];
    ssize_t n = ReadRetry(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    error_ = n == 0 ? "connection closed by server"
                    : std::string("recv: ") + std::strerror(errno);
    Close();
    return false;
  }
}

}  // namespace qbe
