#ifndef QBE_TEXT_TOKENIZER_H_
#define QBE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace qbe {

/// Splits `text` into lowercase alphanumeric tokens. This defines the token
/// model for the whole library: the paper's string containment "x ⊆ y" holds
/// iff Tokenize(x) occurs as a consecutive subsequence of Tokenize(y)
/// (Definition 2 Remarks).
std::vector<std::string> Tokenize(std::string_view text);

/// True iff `needle` occurs consecutively within `haystack`. An empty needle
/// is contained in everything.
bool IsTokenSubsequence(const std::vector<std::string>& needle,
                        const std::vector<std::string>& haystack);

/// Phrase containment on raw strings: tokenizes both sides and applies
/// IsTokenSubsequence. This is the reference (index-free) implementation of
/// the paper's containment predicate, used by tests to validate the indexes.
bool ContainsPhrase(std::string_view haystack, std::string_view needle);

}  // namespace qbe

#endif  // QBE_TEXT_TOKENIZER_H_
