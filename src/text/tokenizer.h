#ifndef QBE_TEXT_TOKENIZER_H_
#define QBE_TEXT_TOKENIZER_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace qbe {

/// Splits `text` into lowercase alphanumeric tokens. This defines the token
/// model for the whole library: the paper's string containment "x ⊆ y" holds
/// iff Tokenize(x) occurs as a consecutive subsequence of Tokenize(y)
/// (Definition 2 Remarks).
std::vector<std::string> Tokenize(std::string_view text);

/// Calls fn(std::string_view) once per token of `text`, in order, without
/// materializing a token vector — the index-build path uses this to intern
/// straight into a TokenDict. The view points into an internal buffer that
/// is invalidated when fn returns; copy it if it must outlive the call.
template <typename Fn>
void ForEachToken(std::string_view text, Fn&& fn) {
  std::string buf;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      buf += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!buf.empty()) {
      fn(std::string_view(buf));
      buf.clear();
    }
  }
  if (!buf.empty()) fn(std::string_view(buf));
}

/// True iff `needle` occurs consecutively within `haystack`. An empty needle
/// is contained in everything.
bool IsTokenSubsequence(const std::vector<std::string>& needle,
                        const std::vector<std::string>& haystack);

/// Phrase containment on raw strings: tokenizes both sides and applies
/// IsTokenSubsequence. This is the reference (index-free) implementation of
/// the paper's containment predicate, used by tests to validate the indexes.
bool ContainsPhrase(std::string_view haystack, std::string_view needle);

}  // namespace qbe

#endif  // QBE_TEXT_TOKENIZER_H_
