#ifndef QBE_TEXT_COLUMN_INDEX_H_
#define QBE_TEXT_COLUMN_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "text/inverted_index.h"
#include "text/token_dict.h"

namespace qbe {

/// Master inverted index over all text columns in the database — the
/// "column index" CI of §3.1. Given a phrase W, CI(W) reports the distinct
/// text columns containing W; candidate projection-column retrieval (Eq. 3)
/// intersects these sets across the non-empty cells of each ET column.
///
/// Columns are identified by dense global ids assigned by the catalog. The
/// token→column-set directory is keyed by TokenDict id and fed from each
/// per-column index's own distinct-token set, so registration re-reads no
/// cell and probes hash integers, not strings.
class ColumnIndex {
 public:
  ColumnIndex() = default;

  /// Registers the column with global id `column_gid`. Ids must be dense
  /// starting at 0 in registration order. The index pointer must outlive
  /// this object (it is owned by the Database); all registered indexes must
  /// share one TokenDict.
  void RegisterColumn(int column_gid, const InvertedIndex* index);

  /// Global ids of the distinct columns containing the phrase (as token
  /// ids), ascending. An empty phrase matches every column with at least
  /// one row.
  std::vector<int> ColumnsContainingIds(std::span<const uint32_t> ids) const;

  /// String-phrase compat wrapper; tokens resolve through the shared
  /// dictionary's heterogeneous lookup.
  std::vector<int> ColumnsContaining(
      const std::vector<std::string>& phrase) const;

  int num_columns() const { return static_cast<int>(columns_.size()); }

  size_t MemoryBytes() const;

 private:
  const TokenDict* dict_ = nullptr;  // shared; set by first RegisterColumn
  std::vector<const InvertedIndex*> columns_;
  // token id -> sorted list of column gids whose cells contain the token.
  std::unordered_map<uint32_t, std::vector<int>> token_columns_;
};

}  // namespace qbe

#endif  // QBE_TEXT_COLUMN_INDEX_H_
