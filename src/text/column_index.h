#ifndef QBE_TEXT_COLUMN_INDEX_H_
#define QBE_TEXT_COLUMN_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "text/inverted_index.h"

namespace qbe {

/// Master inverted index over all text columns in the database — the
/// "column index" CI of §3.1. Given a phrase W, CI(W) reports the distinct
/// text columns containing W; candidate projection-column retrieval (Eq. 3)
/// intersects these sets across the non-empty cells of each ET column.
///
/// Columns are identified by dense global ids assigned by the catalog. A
/// token→column-set directory makes the common case (rare token) touch only
/// the columns that can possibly match; phrase verification then runs on the
/// per-column positional indexes.
class ColumnIndex {
 public:
  ColumnIndex() = default;

  /// Registers the column with global id `column_gid`. Ids must be dense
  /// starting at 0 in registration order. The index pointer must outlive
  /// this object (it is owned by the Database).
  void RegisterColumn(int column_gid, const InvertedIndex* index,
                      const std::vector<std::string>& cells);

  /// Global ids of the distinct columns containing `phrase` (tokenized),
  /// ascending. An empty phrase matches every column with at least one row.
  std::vector<int> ColumnsContaining(
      const std::vector<std::string>& phrase) const;

  int num_columns() const { return static_cast<int>(columns_.size()); }

  size_t MemoryBytes() const;

 private:
  std::vector<const InvertedIndex*> columns_;
  // token -> sorted list of column gids whose cells contain the token.
  std::unordered_map<std::string, std::vector<int>> token_columns_;
};

}  // namespace qbe

#endif  // QBE_TEXT_COLUMN_INDEX_H_
