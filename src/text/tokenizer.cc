#include "text/tokenizer.h"

#include <cctype>

namespace qbe {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current +=
          static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool IsTokenSubsequence(const std::vector<std::string>& needle,
                        const std::vector<std::string>& haystack) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t start = 0; start + needle.size() <= haystack.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < needle.size(); ++i) {
      if (haystack[start + i] != needle[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool ContainsPhrase(std::string_view haystack, std::string_view needle) {
  return IsTokenSubsequence(Tokenize(needle), Tokenize(haystack));
}

}  // namespace qbe
