#ifndef QBE_TEXT_INVERTED_INDEX_H_
#define QBE_TEXT_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/text_column.h"
#include "text/token_dict.h"
#include "util/span_or_vec.h"

namespace qbe {

/// Positional full-text index over the cells of one text column — the
/// equivalent of the per-column FTS index the paper builds in SQL Server
/// (§3.1). Postings record (row, token position) so phrase queries
/// ("tokens appear consecutively", Definition 2) are answered exactly.
///
/// Storage is CSR keyed by TokenDict id: one contiguous posting array
/// (row<<32|position, ascending) plus per-token spans, so a probe is a
/// hash-free id→span lookup — no std::string construction, no per-lookup
/// allocation, and TokenRowCount is a precomputed O(1) read. The id→span
/// table is a dense direct map when the shared dictionary is small relative
/// to this column's token set, and a sorted id array with binary search
/// otherwise (both allocation-free).
///
/// Every CSR array is SpanOrVec: built from cells it is owned heap, loaded
/// from a snapshot it aliases the mmap'd file (zero-copy cold start).
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds the index over `cells`; cell i belongs to row i. Tokens are
  /// interned into `dict` (the database-wide dictionary); with a null dict
  /// the index owns a private one — the standalone single-column mode used
  /// by tests and tools.
  void Build(const std::vector<std::string>& cells, TokenDict* dict = nullptr);

  /// Arena-backed overload (the Database build path).
  void Build(const TextColumnStore& cells, TokenDict* dict = nullptr);

  // --- id-keyed API (the executor hot path) -------------------------------

  /// Rows whose cell contains the phrase given as token ids, sorted
  /// ascending, deduplicated, written into `*rows` (cleared first; capacity
  /// is reused). An empty phrase matches every indexed row; a phrase
  /// containing TokenDict::kNoToken matches nothing.
  void MatchPhraseIdsInto(std::span<const uint32_t> ids,
                          std::vector<uint32_t>* rows) const;
  std::vector<uint32_t> MatchPhraseIds(std::span<const uint32_t> ids) const;

  /// Rows whose whole cell tokenizes exactly to `ids` (the exact-match
  /// predicate of §2.2 Remarks): the phrase starts at position 0 and the
  /// cell has exactly ids.size() tokens. No cell re-tokenization.
  void MatchExactIdsInto(std::span<const uint32_t> ids,
                         std::vector<uint32_t>* rows) const;

  /// True iff at least one row matches; stops at the first hit.
  bool AnyMatchIds(std::span<const uint32_t> ids) const;

  /// Number of distinct rows containing the token (0 if absent) — O(1),
  /// precomputed at build.
  size_t TokenRowCountId(uint32_t token_id) const;

  /// Sorted distinct token ids of this column. ColumnIndex builds its
  /// token→column directory from this instead of re-tokenizing every cell.
  std::span<const uint32_t> distinct_token_ids() const {
    return token_ids_.span();
  }

  /// The dictionary this index was built against (shared or owned).
  const TokenDict& dict() const { return *dict_; }

  /// Token count of `row`'s cell (backs exact-match without re-tokenizing).
  /// Stored as uint16 — half the per-row footprint of the old layout; the
  /// rare cell with ≥ 65535 tokens spills to a side map.
  uint32_t RowTokenCount(uint32_t row) const {
    const uint16_t count = row_token_counts_[row];
    return count == kLongRow ? long_rows_.at(row) : count;
  }

  // --- string API (compat wrappers over the id-keyed core) ----------------

  /// Rows whose cell contains the phrase (already-tokenized), sorted
  /// ascending, deduplicated. Tokens are resolved through the dictionary's
  /// heterogeneous lookup — no per-probe std::string is built.
  std::vector<uint32_t> MatchPhrase(
      const std::vector<std::string>& phrase) const;

  /// Rows whose cell contains *every* phrase in `phrases` (conjunction of
  /// CONTAINS predicates on the same column).
  std::vector<uint32_t> MatchAllPhrases(
      const std::vector<std::vector<std::string>>& phrases) const;

  /// True iff at least one row matches the phrase; cheaper than MatchPhrase
  /// when only existence is needed.
  bool AnyMatch(const std::vector<std::string>& phrase) const;

  /// Number of rows containing `token` (0 if absent). Used as a selectivity
  /// hint by the executor.
  size_t TokenRowCount(std::string_view token) const;

  size_t num_rows() const { return num_rows_; }

  /// Approximate heap footprint, for the harness's memory accounting. The
  /// shared dictionary is excluded (Database accounts for it once); an
  /// owned dictionary (standalone mode) is included. Mapped snapshot
  /// sections are not heap and count as 0.
  size_t MemoryBytes() const;

 private:
  friend class SnapshotReader;
  friend class SnapshotWriter;

  static constexpr uint32_t kNoSlot = UINT32_MAX;
  static constexpr uint16_t kLongRow = UINT16_MAX;  // count spilled to map

  /// Shared implementation of the two Build overloads: `cell_at(row)`
  /// yields row's cell text.
  template <typename CellAt>
  void BuildImpl(size_t num_cells, const CellAt& cell_at, TokenDict* dict);

  /// Snapshot load: adopt mapped CSR arrays (validated by the reader).
  /// `long_row_pairs` is (row, count) pairs for cells clamped at kLongRow.
  void LoadMapped(const TokenDict* dict, size_t num_rows,
                  SpanOrVec<uint64_t> postings, SpanOrVec<uint32_t> token_ids,
                  SpanOrVec<uint32_t> offsets, SpanOrVec<uint32_t> row_counts,
                  SpanOrVec<uint32_t> slot_of_id,
                  SpanOrVec<uint16_t> row_token_counts,
                  std::span<const uint32_t> long_row_pairs);

  /// Slot of a token id, or kNoSlot. Hash-free: direct table or binary
  /// search depending on the build-time density decision.
  uint32_t SlotOf(uint32_t token_id) const;

  static uint64_t PackPosting(uint32_t row, uint32_t position) {
    return (static_cast<uint64_t>(row) << 32) | position;
  }

  const TokenDict* dict_ = nullptr;
  std::unique_ptr<TokenDict> owned_dict_;  // standalone mode only

  // CSR payload: postings_[offsets_[s] .. offsets_[s+1]) are the packed
  // (row, position) postings of token token_ids_[s], ascending.
  SpanOrVec<uint64_t> postings_;
  SpanOrVec<uint32_t> token_ids_;   // slot → global token id, ascending
  SpanOrVec<uint32_t> offsets_;     // slot → postings begin; size slots+1
  SpanOrVec<uint32_t> row_counts_;  // slot → distinct-row count
  // Dense id→slot map; empty when binary search over token_ids_ is the
  // cheaper layout (a small column under a large shared dictionary).
  SpanOrVec<uint32_t> slot_of_id_;
  SpanOrVec<uint16_t> row_token_counts_;  // row → token count (clamped)
  std::unordered_map<uint32_t, uint32_t> long_rows_;  // kLongRow overflow
  size_t num_rows_ = 0;
};

}  // namespace qbe

#endif  // QBE_TEXT_INVERTED_INDEX_H_
